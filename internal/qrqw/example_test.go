package qrqw_test

import (
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/qrqw"
)

// The QRQW queue rule: a step costs its maximum location contention.
func ExampleStep_Cost() {
	// Four virtual processors; three access location 9 concurrently.
	st := qrqw.Step{Accesses: [][]uint64{{9}, {9}, {9}, {4}}}
	fmt.Printf("ops=%d κ=%d cost=%d\n", st.MaxOps(), st.Contention(), st.Cost())
	// Output:
	// ops=1 κ=3 cost=3
}

// Emulating a QRQW program on a machine whose expansion beats its delay
// is work-preserving: the slowdown matches the slackness v/p.
func ExampleEmulate() {
	m := core.Machine{Name: "m", Procs: 8, Banks: 512, D: 8, G: 1, L: 0}
	st := qrqw.Step{Accesses: make([][]uint64, 128)}
	for i := range st.Accesses {
		st.Accesses[i] = []uint64{uint64(i)} // contention-free step
	}
	prog := qrqw.Program{V: 128, Steps: []qrqw.Step{st}}
	res, err := qrqw.Emulate(prog, m, nil, qrqw.Analytic)
	if err != nil {
		panic(err)
	}
	fmt.Printf("qrqw time %d, emulated %.0f cycles, slowdown %.0f = v/p = %d\n",
		res.QRQWTime, res.Cycles, res.Slowdown(), prog.V/m.Procs)
	// Output:
	// qrqw time 1, emulated 16 cycles, slowdown 16 = v/p = 16
}

// The inevitable d/x work overhead when banks are scarce (x < d).
func ExampleInevitableWorkOverhead() {
	scarce := core.Machine{Name: "s", Procs: 8, Banks: 16, D: 16, G: 1} // x = 2
	ample := core.Machine{Name: "a", Procs: 8, Banks: 512, D: 16, G: 1} // x = 64
	fmt.Println(qrqw.InevitableWorkOverhead(scarce))
	fmt.Println(qrqw.InevitableWorkOverhead(ample))
	// Output:
	// 8
	// 1
}
