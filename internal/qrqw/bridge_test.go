package qrqw

import (
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

func TestProgramFromTraces(t *testing.T) {
	steps := [][]uint64{
		{1, 2, 3, 1, 1},
		{7, 7},
		{},
	}
	prog := ProgramFromTraces(steps, 4)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(prog.Steps) != 3 {
		t.Fatalf("steps = %d", len(prog.Steps))
	}
	if prog.TotalRequests() != 7 {
		t.Errorf("TotalRequests = %d", prog.TotalRequests())
	}
	ks := prog.StepContentions()
	if ks[0] != 3 || ks[1] != 2 || ks[2] != 0 {
		t.Errorf("StepContentions = %v", ks)
	}
	if prog.MaxContention() != 3 {
		t.Errorf("MaxContention = %d", prog.MaxContention())
	}
	// Round-robin: vp0 gets addrs 1 and 1 in step 0.
	if got := prog.Steps[0].Accesses[0]; len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Errorf("vp0 accesses = %v", got)
	}
}

func TestProgramFromTracesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ProgramFromTraces(nil, 0)
}

func TestBridgedProgramEmulates(t *testing.T) {
	// A captured trace (here synthesized) must flow through Emulate.
	g := rng.New(1)
	var steps [][]uint64
	for s := 0; s < 3; s++ {
		addrs := make([]uint64, 1024)
		for i := range addrs {
			addrs[i] = g.Uint64n(1 << 20)
		}
		steps = append(steps, addrs)
	}
	prog := ProgramFromTraces(steps, 1024)
	m := core.Machine{Name: "b", Procs: 8, Banks: 128, D: 8, G: 1, L: 32}
	res, err := Emulate(prog, m, nil, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || len(res.PerStep) != 3 {
		t.Errorf("result = %+v", res)
	}
}
