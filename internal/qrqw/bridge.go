package qrqw

import "fmt"

// This file bridges captured algorithm traces into QRQW programs: each
// bulk memory operation recorded from a vector-machine run becomes one
// QRQW step, so real algorithms can be costed on the QRQW PRAM and
// re-emulated onto arbitrary (d,x)-BSP machines.

// ProgramFromTraces builds a V-processor QRQW program from a sequence of
// bulk operations, each given as its flat address stream. The addresses
// of each step are distributed round-robin over the virtual processors
// (virtual processor i performs the i-th, (i+V)-th, ... accesses).
func ProgramFromTraces(steps [][]uint64, v int) Program {
	if v <= 0 {
		panic(fmt.Sprintf("qrqw: ProgramFromTraces with v=%d", v))
	}
	prog := Program{V: v}
	for _, addrs := range steps {
		st := Step{Accesses: make([][]uint64, v)}
		for i, a := range addrs {
			p := i % v
			st.Accesses[p] = append(st.Accesses[p], a)
		}
		prog.Steps = append(prog.Steps, st)
	}
	return prog
}

// StepContentions returns κ for every step — the contention profile of
// the program, the quantity the paper's algorithm studies report.
func (p Program) StepContentions() []int {
	out := make([]int, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.Contention()
	}
	return out
}

// MaxContention returns the largest per-step contention in the program.
func (p Program) MaxContention() int {
	m := 0
	for _, s := range p.Steps {
		if c := s.Contention(); c > m {
			m = c
		}
	}
	return m
}

// TotalRequests returns the total number of memory accesses.
func (p Program) TotalRequests() int {
	n := 0
	for _, s := range p.Steps {
		n += s.Requests()
	}
	return n
}
