package qrqw

import (
	"fmt"
	"math"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

// This file covers the EREW side of Section 5: the paper explores mapping
// both the EREW PRAM and the QRQW PRAM onto high-bandwidth machines. An
// EREW program is a QRQW program whose every step has contention κ = 1,
// so Emulate applies unchanged; what differs is the analysis — with no
// location contention, the only bank hot-spots come from the random
// mapping itself (plain balls-in-bins, no Raghavan–Spencer weighting),
// so the slackness required for work preservation is smaller and does
// not depend on step contention.

// IsEREW reports whether every step of the program has contention at most
// 1 — i.e. the program is a legal EREW PRAM program.
func (p Program) IsEREW() bool {
	for _, s := range p.Steps {
		if s.Contention() > 1 {
			return false
		}
	}
	return true
}

// EREWProgram returns a program of the given number of steps in which
// each of v virtual processors accesses a distinct location per step (a
// random permutation of a disjoint address block), so κ = 1 everywhere.
func EREWProgram(v, steps int, g *rng.Xoshiro256) Program {
	prog := Program{V: v}
	for s := 0; s < steps; s++ {
		base := uint64(s) << 32
		perm := g.Perm(v)
		st := Step{Accesses: make([][]uint64, v)}
		for i := 0; i < v; i++ {
			st.Accesses[i] = []uint64{base + uint64(perm[i])}
		}
		prog.Steps = append(prog.Steps, st)
	}
	return prog
}

// MinSlacknessEREW returns the smallest slackness s = v/p for which the
// plain Chernoff balls-in-bins analysis guarantees, with probability at
// least 1 - 1/banks, that no bank receives more than alpha*s/x requests
// in an EREW step (v distinct locations hashed uniformly over x*p
// banks), making the emulation work-preserving with overhead alpha*d/
// (g*x) — i.e. fully work-preserving once alpha*d <= g*x.
//
// Derivation: a bank's load is Binomial(v, 1/(xp)) with mean s/x.
// Chernoff: Pr[load > alpha*(s/x)] < exp(-(s/x)*h(alpha-1)) with
// h(δ) = (1+δ)ln(1+δ)-δ; a union bound over x*p banks needs
// (s/x)*h(alpha-1) >= 2*ln(banks).
//
// Note the normalization differs from MinSlacknessWorkPreserving: here
// alpha multiplies the MEAN bank load (so any alpha > 1 is achievable
// with enough slackness), while the QRQW bound's alpha multiplies the
// delay-adjusted target s*t/d (so alpha <= d/x is impossible). The two
// numbers are not directly comparable.
func MinSlacknessEREW(m core.Machine, alpha float64) float64 {
	if alpha <= 1 {
		return math.Inf(1)
	}
	x := m.Expansion()
	h := BernoulliH(alpha - 1)
	return 2 * x * math.Log(float64(m.Banks)) / h
}

// EmulateEREW is Emulate restricted to EREW programs: it returns an error
// if any step has contention above 1, making accidental contention in a
// supposedly exclusive-access program a detected bug rather than a silent
// cost.
func EmulateEREW(prog Program, m core.Machine, bm core.BankMap, mode Mode) (Result, error) {
	for i, s := range prog.Steps {
		if c := s.Contention(); c > 1 {
			return Result{}, fmt.Errorf("qrqw: EmulateEREW: step %d has contention %d (not EREW)", i, c)
		}
	}
	return Emulate(prog, m, bm, mode)
}
