package qrqw

import (
	"dxbsp/internal/rng"
)

// This file generates synthetic QRQW programs for the emulation
// experiments (F8/F9): programs with one access per virtual processor per
// step and a controlled contention profile.

// RandomProgram returns a program of the given number of steps in which
// each of v virtual processors makes one access per step to a location
// drawn uniformly from [0, space). With space >= v the expected contention
// per step is O(log v / log log v) — a low-contention program.
func RandomProgram(v, steps int, space uint64, g *rng.Xoshiro256) Program {
	prog := Program{V: v}
	for s := 0; s < steps; s++ {
		st := Step{Accesses: make([][]uint64, v)}
		for i := 0; i < v; i++ {
			st.Accesses[i] = []uint64{g.Uint64n(space)}
		}
		prog.Steps = append(prog.Steps, st)
	}
	return prog
}

// ContentionProgram returns a program in which every step has maximum
// location contention exactly k: the v processors access v/k distinct
// locations, k processors per location. Locations are drawn from a fresh
// random offset per step so banks vary, and are spaced stride apart so
// distinct locations do not share a bank under interleaving.
func ContentionProgram(v, steps, k int, stride uint64, g *rng.Xoshiro256) Program {
	if k <= 0 || v%k != 0 {
		panic("qrqw: ContentionProgram: k must divide v")
	}
	if stride == 0 {
		stride = 1
	}
	prog := Program{V: v}
	m := v / k
	for s := 0; s < steps; s++ {
		base := g.Uint64n(1 << 40)
		st := Step{Accesses: make([][]uint64, v)}
		for i := 0; i < v; i++ {
			st.Accesses[i] = []uint64{base + uint64(i%m)*stride}
		}
		prog.Steps = append(prog.Steps, st)
	}
	return prog
}
