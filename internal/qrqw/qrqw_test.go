package qrqw

import (
	"math"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/rng"
)

func TestStepCost(t *testing.T) {
	// 4 procs; two access location 5, one accesses 6, one does two ops.
	st := Step{Accesses: [][]uint64{{5}, {5}, {6}, {7, 8}}}
	if got := st.MaxOps(); got != 2 {
		t.Errorf("MaxOps = %d", got)
	}
	if got := st.Contention(); got != 2 {
		t.Errorf("Contention = %d", got)
	}
	if got := st.Cost(); got != 2 {
		t.Errorf("Cost = %d", got)
	}
	if got := st.Requests(); got != 5 {
		t.Errorf("Requests = %d", got)
	}
}

func TestStepCostContentionDominates(t *testing.T) {
	st := Step{Accesses: [][]uint64{{1}, {1}, {1}, {1}}}
	if got := st.Cost(); got != 4 {
		t.Errorf("Cost = %d, want contention 4", got)
	}
}

func TestProgramTimeWork(t *testing.T) {
	p := Program{
		V: 4,
		Steps: []Step{
			{Accesses: [][]uint64{{1}, {1}, {2}, {3}}}, // cost 2
			{Accesses: [][]uint64{{1}, {2}, {3}, {4}}}, // cost 1
		},
	}
	if p.Time() != 3 {
		t.Errorf("Time = %d", p.Time())
	}
	if p.Work() != 12 {
		t.Errorf("Work = %d", p.Work())
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := Program{V: 3, Steps: []Step{{Accesses: [][]uint64{{1}}}}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched step accepted")
	}
	if err := (Program{V: 0}).Validate(); err == nil {
		t.Error("V=0 accepted")
	}
}

func TestRandomProgramShape(t *testing.T) {
	g := rng.New(1)
	p := RandomProgram(64, 5, 1<<20, g)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 5 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	for _, st := range p.Steps {
		if st.MaxOps() != 1 {
			t.Fatalf("MaxOps = %d, want 1", st.MaxOps())
		}
		// Over a 2^20 space with 64 procs, contention should be tiny.
		if st.Contention() > 3 {
			t.Errorf("random program contention = %d", st.Contention())
		}
	}
}

func TestContentionProgramExact(t *testing.T) {
	g := rng.New(2)
	for _, k := range []int{1, 4, 16, 64} {
		p := ContentionProgram(64, 3, k, 1, g)
		for i, st := range p.Steps {
			if got := st.Contention(); got != k {
				t.Errorf("k=%d step %d: contention %d", k, i, got)
			}
			if st.Cost() != maxInt(1, k) {
				t.Errorf("k=%d: cost %d", k, st.Cost())
			}
		}
	}
}

func TestContentionProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k not dividing v")
		}
	}()
	ContentionProgram(10, 1, 3, 1, rng.New(1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func emulationMachine(banks int) core.Machine {
	return core.Machine{Name: "emu", Procs: 8, Banks: banks, D: 8, G: 1, L: 64}
}

func hashedMap(banks int, seed uint64) core.BankMap {
	return hashfn.Map{F: hashfn.NewLinear(hashfn.Log2Banks(banks), rng.New(seed))}
}

func TestEmulateLowContentionIsWorkEfficient(t *testing.T) {
	// High slackness, low contention, x = 16 >= d = 8: the emulation
	// should be work-preserving within a small constant.
	m := emulationMachine(128) // x = 16
	v := 8192                  // slackness 1024
	prog := RandomProgram(v, 4, 1<<30, rng.New(3))
	res, err := Emulate(prog, m, hashedMap(m.Banks, 7), Analytic)
	if err != nil {
		t.Fatal(err)
	}
	if res.QRQWTime == 0 {
		t.Fatal("zero QRQW time")
	}
	over := res.WorkOverhead()
	if over > 4 {
		t.Errorf("work overhead %v too high for x >= d with large slackness", over)
	}
	if over < 0.9 {
		t.Errorf("work overhead %v below 1 — accounting bug?", over)
	}
}

func TestEmulateLowExpansionPaysDOverX(t *testing.T) {
	// x = 2 < d = 8: work overhead should approach d/x = 4 on
	// contention-free programs (bank bandwidth is the bottleneck).
	m := emulationMachine(16) // x = 2
	v := 8192
	prog := RandomProgram(v, 4, 1<<30, rng.New(4))
	res, err := Emulate(prog, m, hashedMap(m.Banks, 9), Analytic)
	if err != nil {
		t.Fatal(err)
	}
	over := res.WorkOverhead()
	want := InevitableWorkOverhead(m) // 4
	if want != 4 {
		t.Fatalf("InevitableWorkOverhead = %v, want 4", want)
	}
	if over < want*0.8 || over > want*2.5 {
		t.Errorf("work overhead %v, want near %v", over, want)
	}
}

func TestEmulateSimulateAgreesWithAnalytic(t *testing.T) {
	m := emulationMachine(128)
	prog := RandomProgram(2048, 2, 1<<30, rng.New(5))
	bm := hashedMap(m.Banks, 11)
	a, err := Emulate(prog, m, bm, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Emulate(prog, m, bm, Simulate)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := s.Cycles / a.Cycles; ratio < 0.5 || ratio > 2 {
		t.Errorf("simulate/analytic = %v", ratio)
	}
}

func TestEmulateContentionSlowsProportionally(t *testing.T) {
	// Emulated time of a κ-contention step should grow ~linearly in κ
	// once d*κ dominates, and the QRQW cost grows linearly too, so the
	// slowdown stays bounded — the queue rule models the machine.
	m := emulationMachine(128)
	v := 4096
	g := rng.New(6)
	var prevSlow float64
	for i, k := range []int{64, 256, 1024, 4096} {
		prog := ContentionProgram(v, 2, k, uint64(m.Banks+1), g)
		res, err := Emulate(prog, m, hashedMap(m.Banks, 13), Analytic)
		if err != nil {
			t.Fatal(err)
		}
		slow := res.Slowdown()
		if i > 0 && slow > prevSlow*1.7 {
			t.Errorf("k=%d: slowdown %v jumped from %v; queue rule should keep it stable", k, slow, prevSlow)
		}
		prevSlow = slow
	}
}

func TestEmulateErrors(t *testing.T) {
	m := emulationMachine(128)
	if _, err := Emulate(Program{V: 0}, m, nil, Analytic); err == nil {
		t.Error("invalid program accepted")
	}
	if _, err := Emulate(RandomProgram(8, 1, 100, rng.New(1)), core.Machine{}, nil, Analytic); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestInevitableWorkOverheadClamp(t *testing.T) {
	m := emulationMachine(1024) // x = 128 >> d = 8
	if got := InevitableWorkOverhead(m); got != 1 {
		t.Errorf("high expansion overhead = %v, want 1", got)
	}
}

func TestBernoulliH(t *testing.T) {
	if h := BernoulliH(0); h != 0 {
		t.Errorf("h(0) = %v", h)
	}
	if h := BernoulliH(1); math.Abs(h-(2*math.Log(2)-1)) > 1e-12 {
		t.Errorf("h(1) = %v", h)
	}
	if !math.IsInf(BernoulliH(-1.5), 1) {
		t.Error("h(<-1) should be +Inf")
	}
	// Monotone increasing for δ > 0.
	prev := 0.0
	for d := 0.5; d < 10; d += 0.5 {
		h := BernoulliH(d)
		if h <= prev {
			t.Fatalf("h not increasing at %v", d)
		}
		prev = h
	}
}

func TestMinSlacknessBehaviour(t *testing.T) {
	m := emulationMachine(128) // x=16, d=8
	// Target overhead below d/x is impossible.
	if s := MinSlacknessWorkPreserving(m, 0.4); !math.IsInf(s, 1) {
		t.Errorf("alpha below d/x should need infinite slackness, got %v", s)
	}
	// Achievable target: finite, and decreasing in alpha.
	s2 := MinSlacknessWorkPreserving(m, 2)
	s4 := MinSlacknessWorkPreserving(m, 4)
	if math.IsInf(s2, 1) || s2 <= 0 {
		t.Fatalf("s(alpha=2) = %v", s2)
	}
	if s4 >= s2 {
		t.Errorf("slackness should fall as alpha rises: s(2)=%v s(4)=%v", s2, s4)
	}
	// More expansion (same d): less slackness needed for the same alpha.
	mBig := emulationMachine(1024) // x = 128
	if sBig := MinSlacknessWorkPreserving(mBig, 2); sBig >= s2 {
		t.Errorf("expansion should reduce required slackness: x=16 %v vs x=128 %v", s2, sBig)
	}
}

func TestStepTimeBoundHolds(t *testing.T) {
	// Empirical check of the Theorem 5.2 shape: with slackness at least
	// MinSlacknessWorkPreserving(alpha), the emulated per-step time stays
	// below the bound for random low-contention steps.
	m := emulationMachine(128)
	alpha := 2.0
	sMin := MinSlacknessWorkPreserving(m, alpha)
	v := int(math.Ceil(sMin)) * m.Procs * 2
	prog := RandomProgram(v, 3, 1<<30, rng.New(8))
	res, err := Emulate(prog, m, hashedMap(m.Banks, 17), Analytic)
	if err != nil {
		t.Fatal(err)
	}
	slack := float64(v) / float64(m.Procs)
	for i, c := range res.PerStep {
		bound := StepTimeBoundHighExpansion(m, slack, alpha, prog.Steps[i].Cost())
		if c > bound {
			t.Errorf("step %d: emulated %v exceeds bound %v", i, c, bound)
		}
	}
}
