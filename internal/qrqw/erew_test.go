package qrqw

import (
	"math"
	"testing"

	"dxbsp/internal/rng"
)

func TestEREWProgramHasNoContention(t *testing.T) {
	prog := EREWProgram(256, 4, rng.New(1))
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if !prog.IsEREW() {
		t.Fatal("EREWProgram produced contention")
	}
	for i, s := range prog.Steps {
		if s.Contention() != 1 {
			t.Errorf("step %d contention %d", i, s.Contention())
		}
	}
}

func TestIsEREW(t *testing.T) {
	con := ContentionProgram(16, 1, 4, 1, rng.New(2))
	if con.IsEREW() {
		t.Error("contended program classified EREW")
	}
}

func TestEmulateEREWRejectsContention(t *testing.T) {
	m := emulationMachine(128)
	con := ContentionProgram(64, 1, 8, 1, rng.New(3))
	if _, err := EmulateEREW(con, m, nil, Analytic); err == nil {
		t.Error("contended program accepted by EmulateEREW")
	}
}

func TestEmulateEREWWorkPreserving(t *testing.T) {
	// x = 16 >= d = 8: EREW emulation with high slackness is
	// work-preserving within a small constant.
	m := emulationMachine(128)
	prog := EREWProgram(8192, 3, rng.New(4))
	res, err := EmulateEREW(prog, m, hashedMap(m.Banks, 5), Analytic)
	if err != nil {
		t.Fatal(err)
	}
	if over := res.WorkOverhead(); over > 3 {
		t.Errorf("EREW work overhead %v", over)
	}
}

func TestMinSlacknessEREWBehaviour(t *testing.T) {
	m := emulationMachine(128)
	if s := MinSlacknessEREW(m, 1); !math.IsInf(s, 1) {
		t.Error("alpha=1 should be impossible")
	}
	s2 := MinSlacknessEREW(m, 2)
	s4 := MinSlacknessEREW(m, 4)
	if math.IsInf(s2, 1) || s2 <= 0 {
		t.Fatalf("s(2) = %v", s2)
	}
	if s4 >= s2 {
		t.Errorf("slackness should fall with alpha: %v vs %v", s2, s4)
	}
	// More expansion (same target multiple of the mean): less slackness
	// needed, because the per-bank mean load s/x carries the union bound.
	big := emulationMachine(1024)
	if sBig := MinSlacknessEREW(big, 2); sBig <= s2 {
		// The bound is 2x·ln(xp)/h(1): linear in x, so MORE banks need
		// MORE virtual parallelism to keep every bank loaded — that is
		// the slackness direction the literature states (enough
		// parallelism that each bank receives multiple requests).
		t.Errorf("slackness should grow with banks: x=16 %v vs x=128 %v", s2, sBig)
	}
}

func TestEREWVsQRQWEmulationCost(t *testing.T) {
	// On the same machine with the same v, an EREW program of the same
	// size is never costlier than a contended program.
	m := emulationMachine(128)
	v := 4096
	erew := EREWProgram(v, 2, rng.New(6))
	qr := ContentionProgram(v, 2, 512, uint64(m.Banks+1), rng.New(6))
	bm := hashedMap(m.Banks, 7)
	re, err := Emulate(erew, m, bm, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := Emulate(qr, m, bm, Analytic)
	if err != nil {
		t.Fatal(err)
	}
	if re.Cycles > rq.Cycles {
		t.Errorf("EREW %v costlier than contended %v", re.Cycles, rq.Cycles)
	}
}
