// Package qrqw implements the Queue-Read Queue-Write PRAM of Gibbons,
// Matias and Ramachandran [GMR94b] and its emulation onto the (d,x)-BSP,
// reproducing Section 5 of the paper.
//
// The QRQW PRAM allows concurrent reads and writes to a shared memory
// location, but charges a step by its maximum location contention: a step
// in which each of v virtual processors performs at most t operations, and
// at most κ of them address any single location, costs max(t, κ) time
// units. This queue rule sits between the EREW rule (contention forbidden)
// and the CRCW rule (contention free) and — the paper argues — matches
// what high-bandwidth machines actually provide, once the bank delay d is
// accounted for.
//
// The emulation maps v virtual processors onto p << v physical processors
// (slackness s = v/p) and hashes memory pseudo-randomly across the x*p
// banks. Each QRQW step becomes one (d,x)-BSP superstep whose cost the
// host machine's cost law determines. The package provides both the
// executable emulation (analytic or simulated charging) and the slowdown/
// work bounds of the paper's Theorems 5.1 (x <= d) and 5.2 (x >= d); the
// exact constants in the theorem statements are not recoverable from the
// captured text, so the bound functions reconstruct the stated *forms*
// (the (d/x) inevitable overhead, and the Raghavan–Spencer condition that
// makes the large-expansion emulation work-preserving).
package qrqw

import (
	"fmt"
	"math"

	"dxbsp/internal/core"
	"dxbsp/internal/sim"
)

// Step is one QRQW PRAM step: for each virtual processor, the shared-
// memory locations it accesses (reads and writes are costed identically by
// the queue rule, so they are not distinguished here).
type Step struct {
	Accesses [][]uint64
}

// MaxOps returns the maximum number of operations by any virtual
// processor in the step.
func (s Step) MaxOps() int {
	m := 0
	for _, a := range s.Accesses {
		if len(a) > m {
			m = len(a)
		}
	}
	return m
}

// Contention returns κ, the maximum number of accesses to any single
// location in the step.
func (s Step) Contention() int {
	counts := make(map[uint64]int)
	maxC := 0
	for _, a := range s.Accesses {
		for _, addr := range a {
			counts[addr]++
			if counts[addr] > maxC {
				maxC = counts[addr]
			}
		}
	}
	return maxC
}

// Cost returns the QRQW time of the step: max(MaxOps, Contention).
func (s Step) Cost() int {
	ops, k := s.MaxOps(), s.Contention()
	if k > ops {
		return k
	}
	return ops
}

// Requests returns the total number of memory requests in the step.
func (s Step) Requests() int {
	n := 0
	for _, a := range s.Accesses {
		n += len(a)
	}
	return n
}

// Program is a sequence of QRQW steps executed by V virtual processors.
type Program struct {
	V     int
	Steps []Step
}

// Time returns the QRQW PRAM time of the program: the sum of step costs.
func (p Program) Time() int {
	t := 0
	for _, s := range p.Steps {
		t += s.Cost()
	}
	return t
}

// Work returns V * Time, the processor-time product the emulation must
// preserve up to constants.
func (p Program) Work() int { return p.V * p.Time() }

// Validate checks that every step has exactly V access lists.
func (p Program) Validate() error {
	if p.V <= 0 {
		return fmt.Errorf("qrqw: program has V=%d virtual processors", p.V)
	}
	for i, s := range p.Steps {
		if len(s.Accesses) != p.V {
			return fmt.Errorf("qrqw: step %d has %d access lists, want V=%d", i, len(s.Accesses), p.V)
		}
	}
	return nil
}

// Mode selects how emulated supersteps are charged.
type Mode int

const (
	// Analytic uses the (d,x)-BSP closed-form cost.
	Analytic Mode = iota
	// Simulate runs the bank simulator on every emulated superstep.
	Simulate
)

// Result reports an emulation run.
type Result struct {
	// Cycles is the total emulated time on the (d,x)-BSP.
	Cycles float64
	// PerStep is the emulated cost of each QRQW step.
	PerStep []float64
	// QRQWTime is the program's cost on the QRQW PRAM itself.
	QRQWTime int
	// Procs is the number of physical processors used.
	Procs int
	// V is the number of virtual processors emulated.
	V int
}

// Slowdown returns emulated time divided by QRQW time. A work-preserving
// emulation achieves slowdown O(V/Procs).
func (r Result) Slowdown() float64 {
	if r.QRQWTime == 0 {
		return 0
	}
	return r.Cycles / float64(r.QRQWTime)
}

// WorkOverhead returns the emulation's work inflation:
// (Procs * Cycles) / (V * QRQWTime). Work preservation means this is O(1);
// for x < d it cannot beat d/(g*x).
func (r Result) WorkOverhead() float64 {
	w := float64(r.V) * float64(r.QRQWTime)
	if w == 0 {
		return 0
	}
	return float64(r.Procs) * r.Cycles / w
}

// Emulate runs program prog on machine m, assigning virtual processors
// round-robin to the machine's physical processors and mapping locations
// to banks with bm (nil = interleave, but a hashed map is what the theory
// assumes). Each QRQW step is executed as one superstep.
func Emulate(prog Program, m core.Machine, bm core.BankMap, mode Mode) (Result, error) {
	if err := prog.Validate(); err != nil {
		return Result{}, err
	}
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if bm == nil {
		bm = core.InterleaveMap{Banks: m.Banks}
	}
	res := Result{QRQWTime: prog.Time(), Procs: m.Procs, V: prog.V}
	for si, st := range prog.Steps {
		// Physical processor i issues the accesses of virtual processors
		// i, i+p, i+2p, ...
		per := make([][]uint64, m.Procs)
		for vp, acc := range st.Accesses {
			phys := vp % m.Procs
			per[phys] = append(per[phys], acc...)
		}
		pt := core.Pattern{PerProc: per}
		var cycles float64
		switch mode {
		case Simulate:
			r, err := sim.Run(sim.Config{Machine: m, BankMap: bm}, pt)
			if err != nil {
				return Result{}, fmt.Errorf("qrqw: step %d: %w", si, err)
			}
			cycles = r.Cycles + m.L
		default:
			prof := core.ComputeProfileCompact(pt, bm)
			cycles = m.PredictDXBSP(prof)
		}
		res.PerStep = append(res.PerStep, cycles)
		res.Cycles += cycles
	}
	return res, nil
}

// InevitableWorkOverhead returns d/(g*x) clamped below at 1: the factor by
// which any emulation's work must exceed the QRQW work when the aggregate
// bank bandwidth (x*p/d requests per cycle) falls short of the aggregate
// processor bandwidth (p/g). This is the "(d/x) is an inevitable work
// overhead" observation for the x <= d case (Theorem 5.1's regime).
func InevitableWorkOverhead(m core.Machine) float64 {
	o := m.D / (m.G * m.Expansion())
	if o < 1 {
		return 1
	}
	return o
}

// SlowdownBoundLowExpansion returns the Theorem 5.1-form bound on the
// emulation slowdown for x <= d with slackness s = v/p:
//
//	slowdown <= c * (d/x) * s * g   (+ lower-order L terms)
//
// i.e. work-optimal up to the inevitable (d/x) factor. The constant c is
// not recoverable from the captured text; callers compare shapes, so the
// bound is returned with c = 1 and the additive L term included.
func SlowdownBoundLowExpansion(m core.Machine, slackness float64) float64 {
	return InevitableWorkOverhead(m)*slackness*m.G + m.L
}

// BernoulliH is the function h(δ) = (1+δ)ln(1+δ) - δ appearing in the
// Raghavan–Spencer tail bound for weighted sums of Bernoulli trials
// [Rag88], which the paper's Theorem 5.2 analysis uses to bound the
// maximum weighted bank load under random hashing.
func BernoulliH(delta float64) float64 {
	if delta <= -1 {
		return math.Inf(1)
	}
	return (1+delta)*math.Log(1+delta) - delta
}

// MinSlacknessWorkPreserving returns the smallest slackness s = v/p for
// which the Theorem 5.2 analysis guarantees, with probability at least
// 1 - 1/banks, that the maximum *weighted* bank load of a QRQW step of
// cost t is at most alpha*s*t/d — so that the bank term d*maxload of the
// emulated superstep is at most alpha * s * t, making the emulation
// work-preserving with overhead alpha.
//
// Derivation (reconstructing the appendix's Raghavan–Spencer argument):
// normalize location weights by t (each location's contention is <= t).
// A bank's normalized expected load is E = s/x per unit step cost. With
// δ = alpha*x/d - 1, Raghavan–Spencer gives
//
//	Pr[load > (1+δ)E] < exp(-E * h(δ))
//
// and a union bound over the x*p banks requires E * h(δ) >= ln(banks^2),
// i.e. s >= 2x * ln(banks) / h(alpha*x/d - 1).
//
// The returned slackness is +Inf when alpha <= d/x (the target overhead is
// below the inevitable one, so no slackness suffices): the nonlinearity of
// the slowdown in d and x that the abstract advertises lives exactly here.
func MinSlacknessWorkPreserving(m core.Machine, alpha float64) float64 {
	x := m.Expansion()
	delta := alpha*x/m.D - 1
	if delta <= 0 {
		return math.Inf(1)
	}
	h := BernoulliH(delta)
	return 2 * x * math.Log(float64(m.Banks)) / h
}

// StepTimeBoundHighExpansion returns the Theorem 5.2-form bound on the
// emulated time of one QRQW step of cost t, with slackness s and overhead
// target alpha: max(g*s, alpha*s) * t + L.
func StepTimeBoundHighExpansion(m core.Machine, slackness, alpha float64, stepCost int) float64 {
	per := math.Max(m.G*slackness, alpha*slackness)
	return per*float64(stepCost) + m.L
}
