package experiments

import (
	"context"
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/qrqw"
	"dxbsp/internal/rng"
	"dxbsp/internal/tablefmt"
)

// This file regenerates the QRQW emulation studies of Section 5:
// F8 (x <= d: the inevitable d/x work overhead is achieved) and
// F9 (x >= d: work-preserving emulation; slowdown a nonlinear function of
// d and x via the Raghavan–Spencer slackness requirement).

func emulationBankMap(banks int, seed uint64) core.BankMap {
	return hashfn.Map{F: hashfn.NewLinear(hashfn.Log2Banks(banks), rng.New(seed))}
}

// expF8 sweeps the expansion factor x at fixed bank delay d >= x and
// compares the measured emulation work overhead against the inevitable d/x
// factor of Theorem 5.1. One point per x; every input is reseeded from
// cfg.Seed, so points are independent.
func expF8() Experiment {
	const d = 16.0
	return sweep("F8", "QRQW emulation overhead for x <= d",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F8: QRQW emulation, x <= d (d=%g, p=%d, v=%d)", d, 8, cfg.N/2),
				"x", "work overhead (meas)", "d/x bound", "slowdown", "work-optimal slowdown v/p")
		},
		func(cfg Config) []Point {
			var pts []Point
			for _, x := range []int{1, 2, 4, 8, 16} {
				x := x
				pts = append(pts, newPoint(fmt.Sprintf("x=%d", x), func(_ context.Context, cfg Config) (tableRows, error) {
					p := 8
					v := cfg.N / 2
					steps := 4
					if cfg.Quick {
						steps = 2
					}
					m := core.Machine{Name: "emu", Procs: p, Banks: p * x, D: d, G: 1, L: 64}
					prog := qrqw.RandomProgram(v, steps, 1<<34, rng.New(cfg.Seed))
					res, err := qrqw.Emulate(prog, m, emulationBankMap(m.Banks, cfg.Seed^7), qrqw.Analytic)
					if err != nil {
						return nil, err
					}
					return oneRow(x, res.WorkOverhead(), qrqw.InevitableWorkOverhead(m),
						res.Slowdown(), float64(v)/float64(p)), nil
				}))
			}
			return pts
		})
}

// expF9 sweeps the bank delay d at fixed large expansion x >= d. The
// measured slowdown stays near the work-optimal v/p — expansion
// compensates for delay — while the theoretical slackness required for
// work preservation (the Raghavan–Spencer condition) grows nonlinearly as
// d approaches x.
func expF9() Experiment {
	const x = 64
	const alpha = 2.0
	return sweep("F9", "QRQW emulation slowdown for x >= d",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F9: QRQW emulation, x >= d (x=%d, p=%d, v=%d, alpha=%g)", x, 8, cfg.N/2, alpha),
				"d", "slowdown (meas)", "v/p", "work overhead", "min slackness (Thm 5.2)")
		},
		func(cfg Config) []Point {
			var pts []Point
			for _, d := range []float64{2, 4, 8, 16, 32, 64} {
				d := d
				pts = append(pts, newPoint(fmt.Sprintf("d=%g", d), func(_ context.Context, cfg Config) (tableRows, error) {
					p := 8
					v := cfg.N / 2
					steps := 4
					if cfg.Quick {
						steps = 2
					}
					m := core.Machine{Name: "emu", Procs: p, Banks: p * x, D: d, G: 1, L: 64}
					prog := qrqw.RandomProgram(v, steps, 1<<34, rng.New(cfg.Seed))
					res, err := qrqw.Emulate(prog, m, emulationBankMap(m.Banks, cfg.Seed^11), qrqw.Analytic)
					if err != nil {
						return nil, err
					}
					return oneRow(d, res.Slowdown(), float64(v)/float64(p), res.WorkOverhead(),
						qrqw.MinSlacknessWorkPreserving(m, alpha)), nil
				}))
			}
			return pts
		})
}
