package experiments

import (
	"context"
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/tablefmt"
)

// This file regenerates the bank-expansion and random-mapping studies:
// F6 (effect of the expansion factor) and F7 (module-map contention).

// expF6 reproduces the expansion study: simulated scatter time of a random
// pattern as the number of banks per processor grows, for both bank
// delays. The paper's second headline result: performance keeps improving
// past the "natural" choice x = d, because extra banks thin the tail of
// the bank-load distribution. One point per expansion factor; the address
// array is drawn once and shared read-only by every point.
func expF6() Experiment {
	return sweep("F6", "Effect of the expansion factor",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F6: random scatter vs expansion factor (n=%d, p=8, cycles/element)", cfg.N),
				"x", "d=6 sim", "d=6 (d,x)-BSP", "d=14 sim", "d=14 (d,x)-BSP", "flat bound")
		},
		func(cfg Config) []Point {
			n := cfg.N
			g := rng.New(cfg.Seed)
			addrs := patterns.Uniform(n, 1<<40, g)
			xs := []float64{1, 2, 4, 8, 16, 32, 64, 128}
			if cfg.Quick {
				xs = []float64{1, 4, 16, 64}
			}
			var pts []Point
			for _, x := range xs {
				x := x
				pts = append(pts, newPoint(fmt.Sprintf("x=%g", x), func(ctx context.Context, cfg Config) (tableRows, error) {
					row := []interface{}{x}
					for _, d := range []float64{6, 14} {
						m := core.Machine{Name: "exp", Procs: 8, Banks: int(8 * x), D: d, G: 1, L: 0}
						pt := core.NewPattern(addrs, m.Procs)
						prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
						r, err := cfg.RunSim(ctx, sim.Config{Machine: m}, pt)
						if err != nil {
							return nil, err
						}
						row = append(row,
							core.CyclesPerElement(r.Cycles, n, m.Procs),
							core.CyclesPerElement(m.PredictDXBSP(prof), n, m.Procs))
					}
					row = append(row, 1.0) // g cycles/element: the no-contention asymptote
					return tableRows{row}, nil
				}))
			}
			return pts
		})
}

// expF7 reproduces the module-map contention study: for the worst-case
// reference pattern (distinct addresses that hardware interleaving would
// serialize into one bank), the ratio of time under a random linear hash
// map to the time with module-map contention excluded, as a function of
// the expansion factor. The per-trial hash draws come from one shared
// stream, so Points splits a generator per trial in sweep order.
func expF7() Experiment {
	return sweep("F7", "Module-map contention ratio vs expansion",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F7: module-map contention under random hashing (n=%d, p=8)", cfg.N),
				"x", "banks", "identity ratio", "hashed ratio (mean)", "hashed time/elem", "ideal time/elem")
		},
		func(cfg Config) []Point {
			n := cfg.N
			trials := 5
			if cfg.Quick {
				trials = 2
			}
			g := rng.New(cfg.Seed)
			mBitsList := []uint{3, 5, 7, 9, 11, 13}
			if cfg.Quick {
				mBitsList = []uint{5, 9, 13}
			}
			var pts []Point
			for _, mBits := range mBitsList {
				mBits := mBits
				splits := make([]*rng.Xoshiro256, trials)
				for tr := range splits {
					splits[tr] = g.Split()
				}
				pts = append(pts, newPoint(fmt.Sprintf("banks=%d", 1<<mBits), func(ctx context.Context, cfg Config) (tableRows, error) {
					banks := 1 << mBits
					m := core.Machine{Name: "map", Procs: 8, Banks: banks, D: 6, G: 1, L: 0}
					addrs := patterns.WorstCaseBank(n, banks)

					// Time with module-map contention excluded: locations
					// perfectly spread, max bank load = ceil(n/banks).
					ideal := m.SuperstepCost((n+m.Procs-1)/m.Procs, (n+banks-1)/banks)

					// Identity mapping: fully serialized.
					ptI := core.NewPattern(addrs, m.Procs)
					rI, err := cfg.RunSim(ctx, sim.Config{Machine: m}, ptI)
					if err != nil {
						return nil, err
					}

					// Random linear hashing, averaged over draws.
					var hashed float64
					for _, sp := range splits {
						bm := hashfn.Map{F: hashfn.NewLinear(mBits, sp.Clone())}
						r, err := cfg.RunSim(ctx, sim.Config{Machine: m, BankMap: bm}, ptI)
						if err != nil {
							return nil, err
						}
						hashed += r.Cycles
					}
					hashed /= float64(trials)

					return oneRow(float64(banks)/8, banks,
						rI.Cycles/ideal, hashed/ideal,
						core.CyclesPerElement(hashed, n, m.Procs),
						core.CyclesPerElement(ideal, n, m.Procs)), nil
				}))
			}
			return pts
		})
}
