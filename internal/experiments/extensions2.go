package experiments

import (
	"context"
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/patterns"
	"dxbsp/internal/pipe"
	"dxbsp/internal/qrqw"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/tablefmt"
	"dxbsp/internal/vector"
)

// expX10 re-derives the hash-cost table (T3) from the chime-level vector
// pipeline model instead of raw operation counts: with chaining, the
// linear hash hides entirely behind the address load — pseudo-random bank
// mapping is essentially free on these machines, which is why the paper
// can recommend it so broadly. One point per hash family, drawn in
// catalogue order from the shared stream.
func expX10() Experiment {
	return sweep("X10", "Extension: hash cost via the vector pipeline model",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X10: hash cost via the vector pipeline model (n=%d)", cfg.N),
				"hash", "op-count model", "J90 pipeline (VL=64)", "C90 pipeline (VL=128, 2 ports)")
		},
		func(cfg Config) []Point {
			n := cfg.N
			g := rng.New(cfg.Seed)
			var pts []Point
			for _, f := range hashfn.Families(10, g) {
				f := f
				pts = append(pts, newPoint(f.Name(), func(context.Context, Config) (tableRows, error) {
					ops := f.Ops()
					k := pipe.HashKernel(ops.Mul, ops.Add, ops.Shift)
					j, err := pipe.Run(pipe.J90Unit(), k, n)
					if err != nil {
						return nil, err
					}
					c, err := pipe.Run(pipe.C90Unit(), k, n)
					if err != nil {
						return nil, err
					}
					return oneRow(f.Name(), ops.Cost(), j.CyclesPerElement(n), c.CyclesPerElement(n)), nil
				}))
			}
			return pts
		})
}

// expX11 is the capstone pipeline: capture the access trace of a real
// algorithm run (connected components), convert it into a QRQW program,
// and re-emulate it on machines with different bank delays and expansion
// factors — predicting how the same code would behave on hardware that
// was never built. The trace capture and the re-emulations are one
// sequential pipeline, so this stays a single point.
func expX11() Experiment {
	return single("X11", "Extension: re-emulating a captured algorithm trace", func(cfg Config) (Renderable, error) {
		nVerts := cfg.N / 8
		gr := algos.RandomGraph(nVerts, 2*nVerts, rng.New(cfg.Seed))

		// Capture every irregular superstep's address multiset. Addresses are
		// reconstructed from the profile via a capture trace on the VM.
		var steps [][]uint64
		vm := vector.New(core.J90(), vector.WithCapture(func(op string, addrs []uint64) {
			cp := make([]uint64, len(addrs))
			copy(cp, addrs)
			steps = append(steps, cp)
		}))
		algos.ConnectedComponents(vm, gr, rng.New(cfg.Seed^0x77))

		v := 4096
		prog := qrqw.ProgramFromTraces(steps, v)
		t := tablefmt.New(fmt.Sprintf("X11: connected-components trace re-emulated (%d steps, v=%d, κmax=%d)",
			len(prog.Steps), v, prog.MaxContention()),
			"machine (d, x)", "emulated cycles", "slowdown", "work overhead")
		for _, m := range []core.Machine{
			{Name: "d=6 x=128", Procs: 8, Banks: 1024, D: 6, G: 1, L: 64},
			{Name: "d=14 x=64", Procs: 8, Banks: 512, D: 14, G: 1, L: 64},
			{Name: "d=14 x=4", Procs: 8, Banks: 32, D: 14, G: 1, L: 64},
			{Name: "d=64 x=64", Procs: 8, Banks: 512, D: 64, G: 1, L: 64},
		} {
			bm := hashfn.Map{F: hashfn.NewLinear(hashfn.Log2Banks(m.Banks), rng.New(cfg.Seed^9))}
			res, err := qrqw.Emulate(prog, m, bm, qrqw.Analytic)
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Name, res.Cycles, res.Slowdown(), res.WorkOverhead())
		}
		return t, nil
	})
}

// expX12 compares mapping the two high-level models onto the same machines:
// an EREW program (no contention by construction) and a QRQW program with
// per-step contention κ, emulated across bank delays at fixed expansion.
// The EREW emulation depends on d only through the d/x bandwidth floor;
// the QRQW emulation adds the d*κ term — quantifying what the exclusive-
// access discipline buys, and what the queue discipline charges for. Both
// programs are drawn once in Points and shared read-only by every per-d
// point (Emulate never mutates its program).
func expX12() Experiment {
	return sweep("X12", "Extension: EREW vs QRQW emulation across bank delays",
		func(cfg Config) *tablefmt.Table {
			v := cfg.N / 8
			return tablefmt.New(fmt.Sprintf("X12: EREW vs QRQW emulation (x=64, v=%d, κ=%d)", v, v/32),
				"d", "EREW cycles", "QRQW cycles", "QRQW/EREW", "EREW slack for α=2 (Chernoff)")
		},
		func(cfg Config) []Point {
			p := 8
			v := cfg.N / 8
			kappa := v / 32
			g := rng.New(cfg.Seed)
			erew := qrqw.EREWProgram(v, 2, g)
			qr := qrqw.ContentionProgram(v, 2, kappa, uint64(8*64+1), g)
			ds := []float64{2, 8, 32, 64}
			if cfg.Quick {
				ds = []float64{2, 32}
			}
			var pts []Point
			for _, d := range ds {
				d := d
				pts = append(pts, newPoint(fmt.Sprintf("d=%g", d), func(_ context.Context, cfg Config) (tableRows, error) {
					m := core.Machine{Name: "emu", Procs: p, Banks: p * 64, D: d, G: 1, L: 64}
					bm := emulationBankMap(m.Banks, cfg.Seed^3)
					re, err := qrqw.EmulateEREW(erew, m, bm, qrqw.Analytic)
					if err != nil {
						return nil, err
					}
					rq, err := qrqw.Emulate(qr, m, bm, qrqw.Analytic)
					if err != nil {
						return nil, err
					}
					return oneRow(d, re.Cycles, rq.Cycles, rq.Cycles/re.Cycles,
						qrqw.MinSlacknessEREW(m, 2)), nil
				}))
			}
			return pts
		})
}

// expX13 studies latency hiding: the same random scatter executed with a
// bounded per-processor window of outstanding requests (the Tera-style
// multithreading knob) at substantial network latency, simulated and
// predicted with the M/D/1 windowed model. Vectorization (an effectively
// unbounded window) is what lets the Crays ignore latency; the sweep
// shows how much window is enough. Every point re-derives the open-window
// baseline, which the runner's memo cache collapses to one simulation.
func expX13() Experiment {
	return sweep("X13", "Extension: latency hiding vs issue window",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X13: latency hiding vs issue window (n=%d, J90, net delay 50)", cfg.N/4),
				"window", "sim cycles", "queueing model", "sim/model", "slowdown vs open")
		},
		func(cfg Config) []Point {
			n := cfg.N / 4
			g := rng.New(cfg.Seed)
			addrs := patterns.Uniform(n, 1<<30, g)
			windows := []int{1, 2, 4, 8, 16, 64, 256}
			if cfg.Quick {
				windows = []int{1, 8, 256}
			}
			var pts []Point
			for _, w := range windows {
				w := w
				pts = append(pts, newPoint(fmt.Sprintf("w=%d", w), func(ctx context.Context, cfg Config) (tableRows, error) {
					m := core.J90()
					m.L = 100 // netDelay = 50 each way
					pt := core.NewPattern(addrs, m.Procs)
					open, err := cfg.RunSim(ctx, sim.Config{Machine: m}, pt)
					if err != nil {
						return nil, err
					}
					r, err := cfg.RunSim(ctx, sim.Config{Machine: m, Window: w}, pt)
					if err != nil {
						return nil, err
					}
					pred := m.PredictWindowed(n, w, 50)
					return oneRow(w, r.Cycles, pred, r.Cycles/pred, r.Cycles/open.Cycles), nil
				}))
			}
			return pts
		})
}
