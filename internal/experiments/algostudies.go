package experiments

import (
	"context"
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/tablefmt"
	"dxbsp/internal/vector"
)

// This file regenerates the algorithm studies of Section 6:
// F10 (binary search), F11 (random permutation), F12 (sparse
// matrix–vector multiplication) and F13 (connected components).

func newJ90VM() *vector.Machine { return vector.New(core.J90()) }

// expF10 compares the replicated-tree QRQW binary search against the naive
// unreplicated descent and the sort-based EREW lookup, sweeping the number
// of queries n against a fixed large dictionary. The dictionary and every
// query batch are drawn from one shared stream, so Points materializes
// them in sweep order; the dictionary is shared read-only by every point.
func expF10() Experiment {
	return sweep("F10", "Binary search: QRQW replicated tree vs EREW sort",
		func(cfg Config) *tablefmt.Table {
			mDict := 1 << 17
			if cfg.Quick {
				mDict = 1 << 13
			}
			return tablefmt.New(fmt.Sprintf("F10: binary search in a dictionary of %d keys (cycles)", mDict-1),
				"n queries", "QRQW replicated r=256", "naive r=1", "EREW sort-based")
		},
		func(cfg Config) []Point {
			mDict := 1 << 17
			if cfg.Quick {
				mDict = 1 << 13
			}
			g := rng.New(cfg.Seed)
			dict := make([]int64, mDict-1)
			for i := range dict {
				dict[i] = int64(g.Intn(1 << 20))
			}
			sortInt64sQuick(dict)

			sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
			if cfg.Quick {
				sizes = []int{1 << 8, 1 << 10}
			}
			var pts []Point
			for _, n := range sizes {
				n := n
				queries := make([]int64, n)
				for i := range queries {
					queries[i] = int64(g.Intn(1 << 20))
				}
				pts = append(pts, newPoint(fmt.Sprintf("n=%d", n), func(_ context.Context, cfg Config) (tableRows, error) {
					cy := func(r int) float64 {
						vm := newJ90VM()
						tree := algos.BuildSearchTree(vm, dict, r)
						vm.Reset()
						tree.Search(queries, rng.New(cfg.Seed^uint64(n)))
						return vm.Cycles()
					}
					vmE := newJ90VM()
					algos.SearchEREW(vmE, dict, queries, 1<<20)
					return oneRow(n, cy(256), cy(1), vmE.Cycles()), nil
				}))
			}
			return pts
		})
}

func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// expF11 reproduces Figure 11: the QRQW dart-throwing random permutation
// against the EREW radix-sort permutation across problem sizes. Every
// input reseeds from cfg.Seed^n, so points are independent.
func expF11() Experiment {
	return sweep("F11", "Random permutation: QRQW darts vs EREW radix sort",
		func(Config) *tablefmt.Table {
			return tablefmt.New("F11: random permutation generation (J90, cycles)",
				"n", "QRQW darts", "rounds", "darts contention", "EREW radix sort", "EREW/QRQW")
		},
		func(cfg Config) []Point {
			sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
			if cfg.Quick {
				sizes = []int{1 << 8, 1 << 10, 1 << 12}
			}
			var pts []Point
			for _, n := range sizes {
				n := n
				pts = append(pts, newPoint(fmt.Sprintf("n=%d", n), func(_ context.Context, cfg Config) (tableRows, error) {
					vmQ := newJ90VM()
					q := algos.RandomPermuteQRQW(vmQ, n, rng.New(cfg.Seed^uint64(n)))
					vmE := newJ90VM()
					algos.RandomPermuteEREW(vmE, n, 40, rng.New(cfg.Seed^uint64(n)))
					return oneRow(n, vmQ.Cycles(), q.Rounds, q.MaxContention, vmE.Cycles(),
						vmE.Cycles()/vmQ.Cycles()), nil
				}))
			}
			return pts
		})
}

// expF12 reproduces Figure 12: sparse matrix–vector multiply time as a
// function of the dense column length, with BSP and (d,x)-BSP predictions
// of the gather superstep alongside the full measured cost. The dense
// vector and the per-length matrix generators come from one shared
// stream, split off in sweep order.
func expF12() Experiment {
	const nnzPerRow = 4
	return sweep("F12", "Sparse matrix-vector multiply vs dense column length",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F12: SpMV, %d rows x %d nnz/row (J90, cycles)", cfg.N, nnzPerRow),
				"dense column len", "total (vm)", "gather (d,x)-BSP", "gather BSP", "gather contention")
		},
		func(cfg Config) []Point {
			rows := cfg.N
			lens := []int{1, 16, 256, 4096, rows}
			if cfg.Quick {
				lens = []int{1, 64, rows}
			}
			g := rng.New(cfg.Seed)
			x := make([]int64, 1024)
			for i := range x {
				x[i] = int64(g.Intn(100))
			}
			var pts []Point
			for _, dl := range lens {
				dl := dl
				sub := g.Split()
				pts = append(pts, newPoint(fmt.Sprintf("len=%d", dl), func(context.Context, Config) (tableRows, error) {
					a := algos.RandomCSR(rows, len(x), nnzPerRow, dl, sub.Clone())
					vm := newJ90VM()
					res := algos.SpMV(vm, a, x)
					return oneRow(dl, vm.Cycles(), res.PredictedDXBSP, res.PredictedBSP, res.GatherContention), nil
				}))
			}
			return pts
		})
}

// expF13 reproduces the connected-components study: per-phase cycles and
// contention for three graph families with very different contention
// structure. One point per graph family; each builds its own graph from a
// fresh generator.
func expF13() Experiment {
	return sweep("F13", "Connected components: per-phase contention",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F13: connected components phases (J90, n=%d vertices)", cfg.N/4),
				"graph", "rounds", "phase", "supersteps", "cycles", "max contention")
		},
		func(cfg Config) []Point {
			n := cfg.N / 4
			graphs := []struct {
				name string
				mk   func() *algos.Graph
			}{
				{"random m=2n", func() *algos.Graph { return algos.RandomGraph(n, 2*n, rng.New(cfg.Seed)) }},
				{"star", func() *algos.Graph { return algos.StarGraph(n) }},
				{"path", func() *algos.Graph { return algos.PathGraph(n) }},
			}
			var pts []Point
			for _, gr := range graphs {
				gr := gr
				pts = append(pts, newPoint(gr.name, func(_ context.Context, cfg Config) (tableRows, error) {
					vm := newJ90VM()
					res := algos.ConnectedComponents(vm, gr.mk(), rng.New(cfg.Seed^0x99))
					var rows tableRows
					for _, phase := range []string{"hook", "shortcut", "contract"} {
						st := res.Phases[phase]
						rows = append(rows, []interface{}{gr.name, res.Rounds, phase, st.Supersteps, st.Cycles, st.MaxContention})
					}
					return rows, nil
				}))
			}
			return pts
		})
}
