package experiments

import (
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/tablefmt"
	"dxbsp/internal/vector"
)

// This file regenerates the algorithm studies of Section 6:
// F10 (binary search), F11 (random permutation), F12 (sparse
// matrix–vector multiplication) and F13 (connected components).

func newJ90VM() *vector.Machine { return vector.New(core.J90()) }

// F10 compares the replicated-tree QRQW binary search against the naive
// unreplicated descent and the sort-based EREW lookup, sweeping the number
// of queries n against a fixed large dictionary.
func F10(cfg Config) *tablefmt.Table {
	mDict := 1 << 17
	if cfg.Quick {
		mDict = 1 << 13
	}
	g := rng.New(cfg.Seed)
	dict := make([]int64, mDict-1)
	for i := range dict {
		dict[i] = int64(g.Intn(1 << 20))
	}
	sortInt64s(dict)

	t := tablefmt.New(fmt.Sprintf("F10: binary search in a dictionary of %d keys (cycles)", len(dict)),
		"n queries", "QRQW replicated r=256", "naive r=1", "EREW sort-based")
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 8, 1 << 10}
	}
	for _, n := range sizes {
		queries := make([]int64, n)
		for i := range queries {
			queries[i] = int64(g.Intn(1 << 20))
		}
		cy := func(r int) float64 {
			vm := newJ90VM()
			tree := algos.BuildSearchTree(vm, dict, r)
			vm.Reset()
			tree.Search(queries, rng.New(cfg.Seed^uint64(n)))
			return vm.Cycles()
		}
		vmE := newJ90VM()
		algos.SearchEREW(vmE, dict, queries, 1<<20)
		t.AddRow(n, cy(256), cy(1), vmE.Cycles())
	}
	return t
}

func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// F11 reproduces Figure 11: the QRQW dart-throwing random permutation
// against the EREW radix-sort permutation across problem sizes.
func F11(cfg Config) *tablefmt.Table {
	t := tablefmt.New("F11: random permutation generation (J90, cycles)",
		"n", "QRQW darts", "rounds", "darts contention", "EREW radix sort", "EREW/QRQW")
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	if cfg.Quick {
		sizes = []int{1 << 8, 1 << 10, 1 << 12}
	}
	for _, n := range sizes {
		vmQ := newJ90VM()
		q := algos.RandomPermuteQRQW(vmQ, n, rng.New(cfg.Seed^uint64(n)))
		vmE := newJ90VM()
		algos.RandomPermuteEREW(vmE, n, 40, rng.New(cfg.Seed^uint64(n)))
		t.AddRow(n, vmQ.Cycles(), q.Rounds, q.MaxContention, vmE.Cycles(),
			vmE.Cycles()/vmQ.Cycles())
	}
	return t
}

// F12 reproduces Figure 12: sparse matrix–vector multiply time as a
// function of the dense column length, with BSP and (d,x)-BSP predictions
// of the gather superstep alongside the full measured cost.
func F12(cfg Config) *tablefmt.Table {
	rows := cfg.N
	nnzPerRow := 4
	t := tablefmt.New(fmt.Sprintf("F12: SpMV, %d rows x %d nnz/row (J90, cycles)", rows, nnzPerRow),
		"dense column len", "total (vm)", "gather (d,x)-BSP", "gather BSP", "gather contention")
	lens := []int{1, 16, 256, 4096, rows}
	if cfg.Quick {
		lens = []int{1, 64, rows}
	}
	g := rng.New(cfg.Seed)
	x := make([]int64, 1024)
	for i := range x {
		x[i] = int64(g.Intn(100))
	}
	for _, dl := range lens {
		a := algos.RandomCSR(rows, len(x), nnzPerRow, dl, g.Split())
		vm := newJ90VM()
		res := algos.SpMV(vm, a, x)
		t.AddRow(dl, vm.Cycles(), res.PredictedDXBSP, res.PredictedBSP, res.GatherContention)
	}
	return t
}

// F13 reproduces the connected-components study: per-phase cycles and
// contention for three graph families with very different contention
// structure.
func F13(cfg Config) *tablefmt.Table {
	n := cfg.N / 4
	t := tablefmt.New(fmt.Sprintf("F13: connected components phases (J90, n=%d vertices)", n),
		"graph", "rounds", "phase", "supersteps", "cycles", "max contention")
	graphs := []struct {
		name string
		g    *algos.Graph
	}{
		{"random m=2n", algos.RandomGraph(n, 2*n, rng.New(cfg.Seed))},
		{"star", algos.StarGraph(n)},
		{"path", algos.PathGraph(n)},
	}
	for _, gr := range graphs {
		vm := newJ90VM()
		res := algos.ConnectedComponents(vm, gr.g, rng.New(cfg.Seed^0x99))
		for _, phase := range []string{"hook", "shortcut", "contract"} {
			st := res.Phases[phase]
			t.AddRow(gr.name, res.Rounds, phase, st.Supersteps, st.Cycles, st.MaxContention)
		}
	}
	return t
}
