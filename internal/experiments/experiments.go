// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated machines: the machine catalogue (T1), the
// model calibration (T2), hash function costs (T3), the model-validation
// figures (F1–F5), the expansion and random-mapping studies (F6–F7), the
// QRQW emulation studies (F8–F9), and the algorithm studies (F10–F13).
//
// Each experiment is a pure function from a Config to a renderable result,
// shared by the cmd/dxbench harness and the repository's testing.B
// benchmarks. DESIGN.md maps each experiment ID to the paper's figure or
// table and states the shape it is expected to reproduce; EXPERIMENTS.md
// records the outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"dxbsp/internal/core"
	"dxbsp/internal/tablefmt"
)

// Config controls experiment scale.
type Config struct {
	// N is the bulk operation size; the paper uses S = 64K elements.
	N int
	// Seed makes every experiment deterministic.
	Seed uint64
	// Quick shrinks sweeps for use in unit tests.
	Quick bool
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{N: 1 << 16, Seed: 0xd5bcf95, Quick: false}
}

// QuickConfig returns a fast configuration for tests.
func QuickConfig() Config {
	return Config{N: 1 << 12, Seed: 0xd5bcf95, Quick: true}
}

// Renderable is anything an experiment can produce.
type Renderable interface {
	Render(w io.Writer)
}

// Experiment couples an ID with its regenerator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) Renderable
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Machines with more banks than processors", func(c Config) Renderable { return T1(c) }},
		{"T2", "(d,x)-BSP parameters measured on the simulated machines", func(c Config) Renderable { return T2(c) }},
		{"T3", "Hash function evaluation cost", func(c Config) Renderable { return T3(c) }},
		{"F1", "Predicted vs measured time, connected-components patterns", func(c Config) Renderable { return F1(c) }},
		{"F2", "Experiment 1: scatter time vs location contention", func(c Config) Renderable { return F2(c) }},
		{"F3", "Experiment 2: scatter time vs random-pattern range", func(c Config) Renderable { return F3(c) }},
		{"F4", "Experiment 3: scatter time on entropy distributions", func(c Config) Renderable { return F4(c) }},
		{"F5", "Multiprocessor versions (a)/(b)/(c): section congestion", func(c Config) Renderable { return F5(c) }},
		{"F6", "Effect of the expansion factor", func(c Config) Renderable { return F6(c) }},
		{"F7", "Module-map contention ratio vs expansion", func(c Config) Renderable { return F7(c) }},
		{"F8", "QRQW emulation overhead for x <= d", func(c Config) Renderable { return F8(c) }},
		{"F9", "QRQW emulation slowdown for x >= d", func(c Config) Renderable { return F9(c) }},
		{"F10", "Binary search: QRQW replicated tree vs EREW sort", func(c Config) Renderable { return F10(c) }},
		{"F11", "Random permutation: QRQW darts vs EREW radix sort", func(c Config) Renderable { return F11(c) }},
		{"F12", "Sparse matrix-vector multiply vs dense column length", func(c Config) Renderable { return F12(c) }},
		{"F13", "Connected components: per-phase contention", func(c Config) Renderable { return F13(c) }},
		{"X1", "Extension: model validation across the whole catalogue", func(c Config) Renderable { return X1(c) }},
		{"X2", "Extension: cached-DRAM banks [HS93] vs contention", func(c Config) Renderable { return X2(c) }},
		{"X3", "Extension: multiprefix [She93] under key skew", func(c Config) Renderable { return X3(c) }},
		{"X4", "Extension: Wyllie list ranking [RM94] contention pile-up", func(c Config) Renderable { return X4(c) }},
		{"X5", "Extension: (d,x)-LogP vs LogP predictions", func(c Config) Renderable { return X5(c) }},
		{"X6", "Extension: merge crossover vs key width", func(c Config) Renderable { return X6(c) }},
		{"X7", "Extension: naive vs replicated broadcast", func(c Config) Renderable { return X7(c) }},
		{"X8", "Extension: Zipf reference distributions", func(c Config) Renderable { return X8(c) }},
		{"X9", "Extension: BFS across graph families", func(c Config) Renderable { return X9(c) }},
		{"X10", "Extension: hash cost via the vector pipeline model", func(c Config) Renderable { return X10(c) }},
		{"X11", "Extension: algorithm trace re-emulated on other machines", func(c Config) Renderable { return X11(c) }},
		{"X12", "Extension: EREW vs QRQW emulation across bank delays", func(c Config) Renderable { return X12(c) }},
		{"X13", "Extension: latency hiding vs issue window (queueing model)", func(c Config) Renderable { return X13(c) }},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// T1 renders the machine catalogue: the Table 1 premise that real machines
// provide many more banks than processors, with bank delays above the
// clock.
func T1(Config) *tablefmt.Table {
	t := tablefmt.New("T1: high-bandwidth machines (representative figures)",
		"machine", "procs", "banks", "expansion x", "bank delay d", "d/x", "bandwidth matched")
	ms := core.Catalogue()
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	for _, m := range ms {
		t.AddRow(m.Name, m.Procs, m.Banks, m.Expansion(), m.D,
			m.EffectiveBankGap(), fmt.Sprintf("%v", m.BandwidthMatched()))
	}
	return t
}
