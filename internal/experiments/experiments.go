// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated machines: the machine catalogue (T1), the
// model calibration (T2), hash function costs (T3), the model-validation
// figures (F1–F5), the expansion and random-mapping studies (F6–F7), the
// QRQW emulation studies (F8–F9), and the algorithm studies (F10–F13).
//
// Each experiment is decomposed into three pure stages so a scheduler can
// parallelize inside an experiment, not just across experiments:
//
//   - Points(cfg) enumerates the independent units of the sweep. Any state
//     that the old serial loops threaded through a shared RNG is drawn here,
//     in the original order, so the decomposition is value-identical to the
//     serial code.
//   - RunPoint(ctx, cfg, p) executes one unit. Points never communicate, so
//     they can run in any order, on any number of goroutines.
//   - Assemble(cfg, results) combines the results — ordered by Point.Index,
//     not completion order — into the Renderable, which makes output
//     byte-identical regardless of scheduling.
//
// Run stitches the three together serially for tests and benchmarks;
// internal/runner fans RunPoint out over a worker pool and memoizes
// simulator calls made through Config.RunSim. DESIGN.md maps each
// experiment ID to the paper's figure or table and states the shape it is
// expected to reproduce; EXPERIMENTS.md records the outcomes.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"dxbsp/internal/core"
	"dxbsp/internal/sim"
	"dxbsp/internal/tablefmt"
)

// Config controls experiment scale.
type Config struct {
	// N is the bulk operation size; the paper uses S = 64K elements.
	N int
	// Seed makes every experiment deterministic.
	Seed uint64
	// Quick shrinks sweeps for use in unit tests.
	Quick bool
	// Sim, when non-nil, handles every simulator invocation made through
	// RunSim instead of calling sim.Run directly. The dxbench runner
	// installs a memoizing implementation here so identical simulations
	// shared between sweep points — and between experiments — execute once.
	Sim SimRunner
}

// SimRunner abstracts sim.RunContext so a scheduler can interpose a cache
// or a fault injector. Implementations must be safe for concurrent use and
// must honor ctx: a cancelled context interrupts the simulation mid-flight.
type SimRunner interface {
	RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error)
}

// SimRunnerFunc adapts a function to the SimRunner interface, the way
// http.HandlerFunc adapts handlers.
type SimRunnerFunc func(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error)

// RunSim implements SimRunner.
func (f SimRunnerFunc) RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	return f(ctx, cfg, pt)
}

// RunSim routes one simulation through the configured SimRunner, or
// directly to sim.RunContext when none is installed.
func (c Config) RunSim(ctx context.Context, sc sim.Config, pt core.Pattern) (sim.Result, error) {
	if c.Sim != nil {
		return c.Sim.RunSim(ctx, sc, pt)
	}
	return sim.RunContext(ctx, sc, pt)
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{N: 1 << 16, Seed: 0xd5bcf95, Quick: false}
}

// QuickConfig returns a fast configuration for tests.
func QuickConfig() Config {
	return Config{N: 1 << 12, Seed: 0xd5bcf95, Quick: true}
}

// Renderable is anything an experiment can produce; it is an alias for
// tablefmt.Renderer so experiment results, tables and series satisfy the
// output interfaces uniformly.
type Renderable = tablefmt.Renderer

// Point is one independently executable unit of an experiment's sweep.
// Points carry their precomputed inputs (drawn deterministically by
// Points), so executing them in any order yields identical results.
type Point struct {
	// Index is the point's position in the sweep; Assemble orders results
	// by it.
	Index int
	// Label names the point for progress reporting and error messages.
	Label string

	run func(context.Context, Config) (interface{}, error)
}

// PointResult is the outcome of one point.
type PointResult struct {
	Index int
	// Label names the point. The serial path leaves it empty; the runner
	// fills it for failed points so Assemble can footnote the cell.
	Label string
	// Value is the experiment-specific payload. Table-shaped sweeps store
	// the rows ([][]interface{}) the point contributes.
	Value interface{}
	// Err, when non-nil, marks a point that failed after the runner's
	// retry budget. Value is nil and Assemble renders the failure as a
	// footnoted cell instead of data rows (degraded mode).
	Err error
}

// Experiment couples an ID with its three-stage regenerator.
type Experiment struct {
	ID    string
	Title string
	// Points enumerates the sweep. It is deterministic in cfg and performs
	// all shared-RNG input generation.
	Points func(Config) []Point
	// RunPoint executes one point. Implementations must not mutate shared
	// state: concurrent invocations on distinct points must be safe.
	RunPoint func(context.Context, Config, Point) (PointResult, error)
	// Assemble combines the point results, ordered by Index, into the
	// final result.
	Assemble func(Config, []PointResult) Renderable
}

// Run executes the experiment serially: Points, then RunPoint in sweep
// order, then Assemble. The parallel path in internal/runner produces
// byte-identical output.
func (e Experiment) Run(ctx context.Context, cfg Config) (Renderable, error) {
	pts := e.Points(cfg)
	results := make([]PointResult, len(pts))
	for i, p := range pts {
		r, err := e.RunPoint(ctx, cfg, p)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", e.ID, p.Label, err)
		}
		results[i] = r
	}
	return e.Assemble(cfg, results), nil
}

// MustRun is Run with a background context, panicking on error — the
// convenience used by tests and benchmarks.
func (e Experiment) MustRun(cfg Config) Renderable {
	r, err := e.Run(context.Background(), cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", e.ID, err))
	}
	return r
}

// tableRows is the Value stored by sweep points: the rows the point
// contributes to the experiment's table, in order.
type tableRows [][]interface{}

// oneRow wraps a single row as a point's tableRows.
func oneRow(cells ...interface{}) tableRows { return tableRows{cells} }

// newPoint builds a sweep point from its label and body. Index is assigned
// by the sweep builder.
func newPoint(label string, run func(context.Context, Config) (tableRows, error)) Point {
	return Point{Label: label, run: func(ctx context.Context, cfg Config) (interface{}, error) {
		return run(ctx, cfg)
	}}
}

// runPoint is the shared RunPoint implementation: it honors cancellation
// and tags the result with the point's index.
func runPoint(ctx context.Context, cfg Config, p Point) (PointResult, error) {
	if err := ctx.Err(); err != nil {
		return PointResult{}, err
	}
	v, err := p.run(ctx, cfg)
	if err != nil {
		return PointResult{}, err
	}
	return PointResult{Index: p.Index, Value: v}, nil
}

// failedCell footnotes a failed point on t and returns the marker cell
// rendered in its place. The footnote carries the point's label and the
// final error; the cell carries the reference.
func failedCell(t *tablefmt.Table, r PointResult) string {
	n := t.AddFootnote(fmt.Sprintf("%s: %v", r.Label, r.Err))
	return fmt.Sprintf("%s FAILED [%d]", r.Label, n)
}

// sweep builds a table-shaped Experiment: mkTable returns the empty titled
// table, points enumerates the sweep, and Assemble appends each point's
// rows in sweep order. Failed points (degraded runs) render as footnoted
// marker rows in the position their data would have occupied.
func sweep(id, title string, mkTable func(Config) *tablefmt.Table, points func(Config) []Point) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Points: func(cfg Config) []Point {
			pts := points(cfg)
			for i := range pts {
				pts[i].Index = i
			}
			return pts
		},
		RunPoint: runPoint,
		Assemble: func(cfg Config, results []PointResult) Renderable {
			t := mkTable(cfg)
			for _, r := range results {
				if r.Err != nil {
					t.AddRow(failedCell(t, r))
					continue
				}
				rows, _ := r.Value.(tableRows)
				for _, row := range rows {
					t.AddRow(row...)
				}
			}
			return t
		},
	}
}

// single wraps an indivisible experiment (trace captures, whole-algorithm
// studies) as a one-point Experiment.
func single(id, title string, run func(Config) (Renderable, error)) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Points: func(Config) []Point {
			return []Point{{Label: "all", run: func(_ context.Context, cfg Config) (interface{}, error) {
				return run(cfg)
			}}}
		},
		RunPoint: runPoint,
		Assemble: func(_ Config, results []PointResult) Renderable {
			if r := results[0]; r.Err != nil {
				t := tablefmt.New(fmt.Sprintf("%s: %s", id, title), "status")
				t.AddRow(failedCell(t, r))
				return t
			}
			return results[0].Value.(Renderable)
		},
	}
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		expT1(), expT2(), expT3(),
		expF1(), expF2(), expF3(), expF4(), expF5(),
		expF6(), expF7(),
		expF8(), expF9(),
		expF10(), expF11(), expF12(), expF13(),
		expX1(), expX2(), expX3(), expX4(), expX5(), expX6(), expX7(),
		expX8(), expX9(), expX10(), expX11(), expX12(), expX13(),
		expD1(), expD2(), expD3(),
	}
}

// Lookup returns the experiment with the given ID, searching the main
// registry and the huge-grid registry.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range Huge() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// expT1 renders the machine catalogue: the Table 1 premise that real
// machines provide many more banks than processors, with bank delays above
// the clock.
func expT1() Experiment {
	return single("T1", "Machines with more banks than processors", func(Config) (Renderable, error) {
		t := tablefmt.New("T1: high-bandwidth machines (representative figures)",
			"machine", "procs", "banks", "expansion x", "bank delay d", "d/x", "bandwidth matched")
		ms := core.Catalogue()
		sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
		for _, m := range ms {
			t.AddRow(m.Name, m.Procs, m.Banks, m.Expansion(), m.D,
				m.EffectiveBankGap(), fmt.Sprintf("%v", m.BandwidthMatched()))
		}
		return t, nil
	})
}
