package experiments

import (
	"strings"
	"testing"

	"dxbsp/internal/tablefmt"
)

func render(t *testing.T, r Renderable) string {
	t.Helper()
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"T1", "T2", "T3", "F1", "F2", "F3", "F4", "F5",
		"F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13",
		"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11", "X12", "X13"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestLookup(t *testing.T) {
	if e, ok := Lookup("F6"); !ok || e.ID != "F6" {
		t.Errorf("Lookup(F6) = %+v, %v", e, ok)
	}
	if _, ok := Lookup("F99"); ok {
		t.Error("Lookup(F99) should fail")
	}
}

// Every experiment must run at quick scale and produce non-empty output.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := QuickConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := render(t, e.Run(cfg))
			if len(out) < 40 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, out)
			}
			if tbl, ok := e.Run(cfg).(*tablefmt.Table); ok && tbl.NumRows() == 0 {
				t.Errorf("%s produced an empty table", e.ID)
			}
		})
	}
}

func TestT1ShowsExpansion(t *testing.T) {
	out := render(t, T1(QuickConfig()))
	for _, want := range []string{"Cray C90", "Tera", "expansion"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 missing %q:\n%s", want, out)
		}
	}
}

func TestT2CalibrationAccurate(t *testing.T) {
	// The measured g and d must be close to the configured ones — this is
	// the "framework is a good predictor" claim in microcosm.
	tbl := T2(QuickConfig())
	out := renderTable(tbl)
	if !strings.Contains(out, "J90") || !strings.Contains(out, "C90") {
		t.Fatalf("T2 missing machines:\n%s", out)
	}
}

func renderTable(tbl *tablefmt.Table) string {
	var b strings.Builder
	tbl.Render(&b)
	return b.String()
}

func TestF2ShapeContentionBound(t *testing.T) {
	// Structural check on F2's data: it must contain the k=1 row and the
	// k=n row, and render both machine columns.
	cfg := QuickConfig()
	out := renderTable(F2(cfg))
	if !strings.Contains(out, "J90 sim") || !strings.Contains(out, "C90 sim") {
		t.Errorf("F2 missing machines:\n%s", out)
	}
}

func TestF5VersionCIsOffModel(t *testing.T) {
	out := renderTable(F5(QuickConfig()))
	if !strings.Contains(out, "(a)") || !strings.Contains(out, "(c)") {
		t.Errorf("F5 missing versions:\n%s", out)
	}
}
