package experiments

import (
	"context"
	"strings"
	"testing"

	"dxbsp/internal/tablefmt"
)

func render(t *testing.T, r Renderable) string {
	t.Helper()
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

func mustRunID(t *testing.T, id string, cfg Config) Renderable {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	return e.MustRun(cfg)
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Points == nil || e.RunPoint == nil || e.Assemble == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"T1", "T2", "T3", "F1", "F2", "F3", "F4", "F5",
		"F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13",
		"X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11", "X12", "X13"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestLookup(t *testing.T) {
	if e, ok := Lookup("F6"); !ok || e.ID != "F6" {
		t.Errorf("Lookup(F6) = %+v, %v", e, ok)
	}
	if _, ok := Lookup("F99"); ok {
		t.Error("Lookup(F99) should fail")
	}
}

// Every experiment must run at quick scale and produce non-empty output.
func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := QuickConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := render(t, e.MustRun(cfg))
			if len(out) < 40 {
				t.Errorf("%s output suspiciously short:\n%s", e.ID, out)
			}
			if tbl, ok := e.MustRun(cfg).(*tablefmt.Table); ok && tbl.NumRows() == 0 {
				t.Errorf("%s produced an empty table", e.ID)
			}
		})
	}
}

// Running an experiment's points in reverse order must assemble the same
// output as sweep order: the contract the parallel runner depends on.
// T3 is excluded because one of its columns is a wall-clock measurement.
func TestPointOrderIndependence(t *testing.T) {
	cfg := QuickConfig()
	ctx := context.Background()
	for _, e := range All() {
		if e.ID == "T3" {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			want := render(t, e.MustRun(cfg))

			pts := e.Points(cfg)
			results := make([]PointResult, len(pts))
			for i := len(pts) - 1; i >= 0; i-- {
				r, err := e.RunPoint(ctx, cfg, pts[i])
				if err != nil {
					t.Fatalf("%s/%s: %v", e.ID, pts[i].Label, err)
				}
				results[i] = r
			}
			got := render(t, e.Assemble(cfg, results))
			if got != want {
				t.Errorf("%s: reverse-order run differs from sweep order\n--- sweep ---\n%s\n--- reverse ---\n%s",
					e.ID, want, got)
			}
		})
	}
}

// A canceled context must stop the run with the context's error.
func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, _ := Lookup("F2")
	if _, err := e.Run(ctx, QuickConfig()); err == nil {
		t.Error("Run with canceled context succeeded")
	}
}

func TestT1ShowsExpansion(t *testing.T) {
	out := render(t, mustRunID(t, "T1", QuickConfig()))
	for _, want := range []string{"Cray C90", "Tera", "expansion"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 missing %q:\n%s", want, out)
		}
	}
}

func TestT2CalibrationAccurate(t *testing.T) {
	// The measured g and d must be close to the configured ones — this is
	// the "framework is a good predictor" claim in microcosm.
	out := render(t, mustRunID(t, "T2", QuickConfig()))
	if !strings.Contains(out, "J90") || !strings.Contains(out, "C90") {
		t.Fatalf("T2 missing machines:\n%s", out)
	}
}

func TestF2ShapeContentionBound(t *testing.T) {
	// Structural check on F2's data: it must contain the k=1 row and the
	// k=n row, and render both machine columns.
	out := render(t, mustRunID(t, "F2", QuickConfig()))
	if !strings.Contains(out, "J90 sim") || !strings.Contains(out, "C90 sim") {
		t.Errorf("F2 missing machines:\n%s", out)
	}
}

func TestF5VersionCIsOffModel(t *testing.T) {
	out := render(t, mustRunID(t, "F5", QuickConfig()))
	if !strings.Contains(out, "(a)") || !strings.Contains(out, "(c)") {
		t.Errorf("F5 missing versions:\n%s", out)
	}
}
