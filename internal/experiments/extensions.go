package experiments

import (
	"context"
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/tablefmt"
	"dxbsp/internal/vector"
)

// This file holds the extension experiments beyond the paper's own
// figures: the refinements and future-work items the paper names
// explicitly (cached banks [HS93], multiprefix [She93], list ranking
// [RM94], the LogP extension) plus a whole-catalogue validation sweep.

// expX1 validates the model against the simulator for every machine in
// the Table 1 catalogue, not just the two experiment machines: a random
// pattern and a contended pattern per machine, with sim/model ratios. One
// point per machine; the per-machine random streams split off in
// catalogue order.
func expX1() Experiment {
	return sweep("X1", "Extension: model validation across the whole catalogue",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X1: model validation across the catalogue (n=%d)", cfg.N),
				"machine", "random sim/model", "contended sim/model")
		},
		func(cfg Config) []Point {
			n := cfg.N
			g := rng.New(cfg.Seed)
			var pts []Point
			for _, m := range core.Catalogue() {
				m := m
				m.L = 0
				sub := g.Split()
				pts = append(pts, newPoint(m.Name, func(ctx context.Context, cfg Config) (tableRows, error) {
					rand := patterns.Uniform(n, 1<<34, sub.Clone())
					k := n / 64
					cont := patterns.Contention(n, k, 1)
					ratio := func(addrs []uint64) (float64, error) {
						pt := core.NewPattern(addrs, m.Procs)
						prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
						r, err := cfg.RunSim(ctx, sim.Config{Machine: m}, pt)
						if err != nil {
							return 0, err
						}
						return r.Cycles / m.PredictDXBSP(prof), nil
					}
					rr, err := ratio(rand)
					if err != nil {
						return nil, err
					}
					rc, err := ratio(cont)
					if err != nil {
						return nil, err
					}
					return oneRow(m.Name, rr, rc), nil
				}))
			}
			return pts
		})
}

// expX2 measures the cached-DRAM bank organization of Hsu and Smith
// [HS93] — the refinement the paper cites but does not model — on the
// contention sweep of F2: a row buffer turns repeated hits on one location
// from d-cycle services into 1-cycle services, collapsing the contention
// penalty the (d,x)-BSP charges.
func expX2() Experiment {
	return sweep("X2", "Extension: cached-DRAM banks [HS93] vs contention",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X2: cached banks [HS93] on the contention sweep (n=%d, J90, cycles/element)", cfg.N),
				"k", "uncached sim", "cached sim", "row hit rate", "(d,x)-BSP (uncached)")
		},
		func(cfg Config) []Point {
			n := cfg.N
			step := 8
			if cfg.Quick {
				step = 64
			}
			var pts []Point
			for k := 1; k <= n; k *= step {
				k := k
				pts = append(pts, newPoint(fmt.Sprintf("k=%d", k), func(ctx context.Context, cfg Config) (tableRows, error) {
					m := core.J90()
					a := patterns.Contention(n, k, 1)
					pt := core.NewPattern(a, m.Procs)
					prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
					plain, err := cfg.RunSim(ctx, sim.Config{Machine: m}, pt)
					if err != nil {
						return nil, err
					}
					cached, err := cfg.RunSim(ctx, sim.Config{Machine: m, BankCacheLines: 4}, pt)
					if err != nil {
						return nil, err
					}
					return oneRow(k,
						core.CyclesPerElement(plain.Cycles, n, m.Procs),
						core.CyclesPerElement(cached.Cycles, n, m.Procs),
						float64(cached.RowHits)/float64(n),
						core.CyclesPerElement(m.PredictDXBSP(prof), n, m.Procs)), nil
				}))
			}
			return pts
		})
}

// expX3 runs the multiprefix operation [She93] under increasing key skew:
// the direct (privatized-bucket) formulation against the sort-based one.
// Skew erodes the direct variant's advantage exactly as the contention
// accounting predicts. The value array is drawn once and shared read-only;
// the per-round key arrays reseed from cfg.Seed^round.
func expX3() Experiment {
	const numKeys = 64
	return sweep("X3", "Extension: multiprefix [She93] under key skew",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X3: multiprefix under key skew (n=%d, %d keys, J90, cycles)", cfg.N/2, numKeys),
				"skew (AND rounds)", "max key freq", "direct", "sorted", "sorted/direct")
		},
		func(cfg Config) []Point {
			n := cfg.N / 2
			g := rng.New(cfg.Seed)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(g.Intn(10))
			}
			rounds := []int{0, 1, 2, 4, 8}
			if cfg.Quick {
				rounds = []int{0, 2, 8}
			}
			var pts []Point
			for _, r := range rounds {
				r := r
				pts = append(pts, newPoint(fmt.Sprintf("rounds=%d", r), func(_ context.Context, cfg Config) (tableRows, error) {
					raw := patterns.Entropy(n, uint64(numKeys), r, rng.New(cfg.Seed^uint64(r)))
					keys := make([]int64, n)
					for i, v := range raw {
						keys[i] = int64(v)
					}
					freq := patterns.MaxContention(raw)

					vmD := vector.New(core.J90())
					algos.MultiprefixDirect(vmD, keys, vals, numKeys)
					vmS := vector.New(core.J90())
					algos.MultiprefixSorted(vmS, keys, vals, numKeys)
					return oneRow(r, freq, vmD.Cycles(), vmS.Cycles(), vmS.Cycles()/vmD.Cycles()), nil
				}))
			}
			return pts
		})
}

// expX4 runs Wyllie list ranking [RM94]: per-round running contention and
// the cycle cost of the geometric pile-up onto the tail, against a
// BSP-style prediction that cannot see it. The rounds of one run are
// sequentially dependent, so this is a single-point experiment.
func expX4() Experiment {
	return single("X4", "Extension: Wyllie list ranking [RM94] contention pile-up", func(cfg Config) (Renderable, error) {
		n := cfg.N / 2
		m := core.J90()
		vm := vector.New(m)
		perm := rng.New(cfg.Seed).Perm(n)
		p64 := make([]int64, n)
		for i, v := range perm {
			p64[i] = int64(v)
		}
		next := algos.MakeList(p64)

		res := algos.ListRankWyllie(vm, next)
		t := tablefmt.New(fmt.Sprintf("X4: Wyllie list ranking (n=%d, J90)", n),
			"round", "running max contention", "contention/n")
		for r, c := range res.RoundContention {
			t.AddRow(r+1, c, float64(c)/float64(n))
		}
		return t, nil
	})
}

// expX5 demonstrates the (d,x)-LogP extension the paper says is
// straightforward: the same contention sweep as F2 predicted by plain
// LogP and by (d,x)-LogP, against simulation. The plain simulations are
// shared with X2 point-for-point, which the runner's memo cache exploits.
func expX5() Experiment {
	return sweep("X5", "Extension: (d,x)-LogP vs LogP predictions",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X5: (d,x)-LogP vs LogP on the contention sweep (n=%d, o=0.5)", cfg.N),
				"k", "sim", "(d,x)-LogP", "LogP")
		},
		func(cfg Config) []Point {
			n := cfg.N
			step := 8
			if cfg.Quick {
				step = 64
			}
			var pts []Point
			for k := 1; k <= n; k *= step {
				k := k
				pts = append(pts, newPoint(fmt.Sprintf("k=%d", k), func(ctx context.Context, cfg Config) (tableRows, error) {
					m := core.J90()
					lp := core.FromMachine(m, 0.5) // modest per-message overhead
					a := patterns.Contention(n, k, 1)
					pt := core.NewPattern(a, m.Procs)
					prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
					r, err := cfg.RunSim(ctx, sim.Config{Machine: m}, pt)
					if err != nil {
						return nil, err
					}
					return oneRow(k,
						core.CyclesPerElement(r.Cycles, n, m.Procs),
						core.CyclesPerElement(lp.BulkCostProfile(prof), n, m.Procs),
						core.CyclesPerElement(lp.LogPBulkCost(prof.MaxH), n, m.Procs)), nil
				}))
			}
			return pts
		})
}

// expX6 sweeps key width for merging two sorted sequences: the
// cross-ranking (replicated binary search) merge does lg(n) levels
// regardless of key width, while the radix-sort merge pays one pass per
// digit — so the winner crosses over as keys widen. Merging is the last
// algorithm on the paper's "currently looking into" list. Three generator
// splits per point, taken in sweep order.
func expX6() Experiment {
	return sweep("X6", "Extension: merge crossover vs key width",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X6: merge of two %d-element runs vs key width (J90, cycles)", cfg.N/8),
				"key bits", "cross-rank merge (QRQW)", "radix-sort merge (EREW)", "EREW/QRQW")
		},
		func(cfg Config) []Point {
			n := cfg.N / 8
			g := rng.New(cfg.Seed)
			bitsList := []uint{11, 22, 33, 44, 60}
			if cfg.Quick {
				bitsList = []uint{11, 44}
			}
			var pts []Point
			for _, bits := range bitsList {
				bits := bits
				spA, spB, spM := g.Split(), g.Split(), g.Split()
				pts = append(pts, newPoint(fmt.Sprintf("bits=%d", bits), func(context.Context, Config) (tableRows, error) {
					maxKey := int64(1)<<bits - 1
					a := sortedKeys(n, maxKey, spA.Clone())
					b := sortedKeys(n, maxKey, spB.Clone())
					vmQ := newJ90VM()
					algos.MergeQRQW(vmQ, a, b, 256, spM.Clone())
					vmE := newJ90VM()
					algos.MergeEREW(vmE, a, b, maxKey)
					return oneRow(bits, vmQ.Cycles(), vmE.Cycles(), vmE.Cycles()/vmQ.Cycles()), nil
				}))
			}
			return pts
		})
}

func sortedKeys(n int, maxKey int64, g *rng.Xoshiro256) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(g.Uint64n(uint64(maxKey) + 1))
	}
	sortInt64sQuick(xs)
	return xs
}

// sortInt64sQuick is an in-place quicksort (the insertion sort used for
// small fixtures elsewhere is quadratic and too slow here).
func sortInt64sQuick(xs []int64) {
	if len(xs) < 16 {
		sortInt64s(xs)
		return
	}
	pivot := xs[len(xs)/2]
	lo, hi := 0, len(xs)-1
	for lo <= hi {
		for xs[lo] < pivot {
			lo++
		}
		for xs[hi] > pivot {
			hi--
		}
		if lo <= hi {
			xs[lo], xs[hi] = xs[hi], xs[lo]
			lo++
			hi--
		}
	}
	sortInt64sQuick(xs[:hi+1])
	sortInt64sQuick(xs[lo:])
}

// expX7 measures broadcasting one value to n readers: the naive broadcast
// is a contention-n gather; replicating the value across p slots first
// (the same idea as the replicated search tree) removes it.
func expX7() Experiment {
	return sweep("X7", "Extension: naive vs replicated broadcast",
		func(Config) *tablefmt.Table {
			return tablefmt.New("X7: broadcast cost, naive vs replicated (J90, cycles)",
				"n readers", "naive", "replicated", "naive/replicated")
		},
		func(cfg Config) []Point {
			sizes := []int{1 << 10, 1 << 13, 1 << 16}
			if cfg.Quick {
				sizes = []int{1 << 8, 1 << 11}
			}
			var pts []Point
			for _, n := range sizes {
				n := n
				pts = append(pts, newPoint(fmt.Sprintf("n=%d", n), func(context.Context, Config) (tableRows, error) {
					vmN := newJ90VM()
					src := vmN.AllocInit([]int64{42})
					dst := vmN.Alloc(n)
					vmN.Reset()
					vmN.Broadcast(dst, src, 0)

					vmR := newJ90VM()
					src2 := vmR.AllocInit([]int64{42})
					dst2 := vmR.Alloc(n)
					scratch := vmR.Alloc(vmR.Mach().Procs)
					vmR.Reset()
					vmR.ReplicatedBroadcast(dst2, src2, 0, scratch)

					return oneRow(n, vmN.Cycles(), vmR.Cycles(), vmN.Cycles()/vmR.Cycles()), nil
				}))
			}
			return pts
		})
}

// expX8 sweeps the Zipf exponent of the reference distribution: the
// smooth knob between the paper's uniform (Experiment 2) and iterated-AND
// (Experiment 3) families, with predictions alongside.
func expX8() Experiment {
	return sweep("X8", "Extension: Zipf reference distributions",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X8: Zipf(s) reference distributions (n=%d, J90, cycles/element)", cfg.N),
				"s", "contention κ", "sim", "(d,x)-BSP", "BSP")
		},
		func(cfg Config) []Point {
			exps := []float64{0, 0.5, 0.8, 1.0, 1.2, 1.5, 2.0}
			if cfg.Quick {
				exps = []float64{0, 1.0, 2.0}
			}
			var pts []Point
			for _, s := range exps {
				s := s
				pts = append(pts, newPoint(fmt.Sprintf("s=%g", s), func(ctx context.Context, cfg Config) (tableRows, error) {
					n := cfg.N
					m := core.J90()
					a := patterns.Zipf(n, n, s, rng.New(cfg.Seed))
					kappa := patterns.MaxContention(a)
					simC, dx, bsp, err := runScatter(ctx, cfg, m, a, false)
					if err != nil {
						return nil, err
					}
					return oneRow(s, kappa,
						core.CyclesPerElement(simC, n, m.Procs),
						core.CyclesPerElement(dx, n, m.Procs),
						core.CyclesPerElement(bsp, n, m.Procs)), nil
				}))
			}
			return pts
		})
}

// expX9 runs breadth-first search over graph families with rising degree
// skew and reports the traversal's cost and contention — the paper's
// contention framework applied to the canonical frontier algorithm. One
// point per graph family.
func expX9() Experiment {
	return sweep("X9", "Extension: BFS across graph families",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("X9: BFS across graph families (J90, n=%d vertices)", cfg.N/4),
				"graph", "levels", "max degree", "cycles", "max contention")
		},
		func(cfg Config) []Point {
			n := cfg.N / 4
			graphs := []struct {
				name string
				mk   func() *algos.Graph
				src  int64
			}{
				{"path", func() *algos.Graph { return algos.PathGraph(n) }, 0},
				{"random m=2n", func() *algos.Graph { return algos.RandomGraph(n, 2*n, rng.New(cfg.Seed)) }, 0},
				{"random m=8n", func() *algos.Graph { return algos.RandomGraph(n, 8*n, rng.New(cfg.Seed)) }, 0},
				{"star (from leaf)", func() *algos.Graph { return algos.StarGraph(n) }, 1},
			}
			var pts []Point
			for _, gr := range graphs {
				gr := gr
				pts = append(pts, newPoint(gr.name, func(context.Context, Config) (tableRows, error) {
					a := algos.BuildAdj(gr.mk())
					vm := newJ90VM()
					res := algos.BFS(vm, a, gr.src)
					return oneRow(gr.name, res.Levels, a.MaxDegree(), vm.Cycles(), res.MaxContention), nil
				}))
			}
			return pts
		})
}
