package experiments

import (
	"context"
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/tablefmt"
)

// This file holds the discipline studies (D1–D3): one experiment family
// per non-FIFO bank service discipline, exercising the scenarios the
// Discipline API opens beyond the paper's plain-FIFO banks. dxbench
// -discipline selects a family via ForDiscipline.

// ForDiscipline returns the experiment family that exercises one bank
// service discipline. FIFO maps to the paper's own calibration plus the
// HS93 row-buffer ablation, which ran on FIFO banks before the
// discipline API existed.
func ForDiscipline(d sim.Discipline) []Experiment {
	switch d {
	case sim.FIFO:
		return []Experiment{expT2(), expX2()}
	case sim.DRAM:
		return []Experiment{expD1()}
	case sim.Regulated:
		return []Experiment{expD2()}
	case sim.GPUShared:
		return []Experiment{expD3()}
	default:
		return nil
	}
}

// expD1 sweeps access stride under the DRAM discipline: strided scatters
// walk each bank's address space at 512*stride words per visit (the J90
// interleaves 512 banks), so with 4096-word rows the row-buffer hit rate
// decays as 1 - stride/8 until stride 8 kills all reuse. FIFO banks charge
// every access d cycles regardless; DRAM banks collapse toward HitDelay
// on sequential strides and degrade to MissDelay-dominated beyond.
func expD1() Experiment {
	return sweep("D1", "Discipline: DRAM row-buffer locality vs access stride",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("D1: DRAM row locality vs stride (n=%d, J90, 4096-word rows)", cfg.N),
				"stride (words)", "dram cyc/elt", "fifo cyc/elt", "row hit rate", "row conflicts")
		},
		func(cfg Config) []Point {
			n := cfg.N
			strides := []uint64{1, 3, 5, 7, 9, 17}
			if cfg.Quick {
				strides = []uint64{1, 7}
			}
			var pts []Point
			for _, s := range strides {
				s := s
				pts = append(pts, newPoint(fmt.Sprintf("stride=%d", s), func(ctx context.Context, cfg Config) (tableRows, error) {
					m := core.J90()
					pt := core.NewPattern(patterns.Strided(n, 0, s), m.Procs)
					dram, err := cfg.RunSim(ctx, sim.Config{Machine: m,
						Bank: sim.BankConfig{Discipline: sim.DRAM, RowWords: 4096}}, pt)
					if err != nil {
						return nil, err
					}
					fifo, err := cfg.RunSim(ctx, sim.Config{Machine: m}, pt)
					if err != nil {
						return nil, err
					}
					return oneRow(s,
						core.CyclesPerElement(dram.Cycles, n, m.Procs),
						core.CyclesPerElement(fifo.Cycles, n, m.Procs),
						float64(dram.RowHits)/float64(n),
						dram.RowConflicts), nil
				}))
			}
			return pts
		})
}

// expD2 sweeps the per-bank service budget of the Regulated discipline
// over a uniform pattern and a hot-bank mix (every second request hits
// bank 0). Uniform traffic rarely exhausts a window, so regulation is
// nearly free; the hot bank overdraws every window and is deferred, which
// is the isolation/QoS trade the discipline models. The "unlimited" row
// is the plain FIFO bank, the budget→∞ limit.
func expD2() Experiment {
	return sweep("D2", "Discipline: bandwidth-regulated banks under a hot-bank mix",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("D2: regulated banks, budget per 4d-cycle window (n=%d, J90)", cfg.N),
				"budget", "uniform cyc/elt", "mix cyc/elt", "mix stalls", "mix stall cyc/req")
		},
		func(cfg Config) []Point {
			n := cfg.N
			// 0 is the unlimited sentinel: plain FIFO banks.
			budgets := []int{0, 16, 8, 4, 2, 1}
			if cfg.Quick {
				budgets = []int{0, 4, 1}
			}
			// The shared draws happen here, before the fan-out, so the sweep
			// is value-identical for any worker count.
			uniform := patterns.Uniform(n, 1<<30, rng.New(cfg.Seed))
			mix := make([]uint64, n)
			for i, a := range uniform {
				if i%2 == 0 {
					mix[i] = a
				}
				// Odd slots stay 0: every second request lands on bank 0.
			}
			var pts []Point
			for _, b := range budgets {
				b := b
				label := fmt.Sprintf("budget=%d", b)
				if b == 0 {
					label = "unlimited"
				}
				pts = append(pts, newPoint(label, func(ctx context.Context, cfg Config) (tableRows, error) {
					m := core.J90()
					sc := sim.Config{Machine: m}
					if b > 0 {
						sc.Bank = sim.BankConfig{Discipline: sim.Regulated, RegBudget: b}
					}
					ru, err := cfg.RunSim(ctx, sc, core.NewPattern(uniform, m.Procs))
					if err != nil {
						return nil, err
					}
					rm, err := cfg.RunSim(ctx, sc, core.NewPattern(mix, m.Procs))
					if err != nil {
						return nil, err
					}
					return oneRow(label,
						core.CyclesPerElement(ru.Cycles, n, m.Procs),
						core.CyclesPerElement(rm.Cycles, n, m.Procs),
						rm.ThrottleStalls,
						rm.ThrottleStallCycles/float64(n)), nil
				}))
			}
			return pts
		})
}

// smMachine is the GPU streaming-multiprocessor stand-in for the D3
// study: one warp scheduler over 32 word-interleaved shared-memory banks,
// single-cycle services, and a short fixed network latency. A single
// scheduler keeps the replay column a pure function of intra-warp
// conflicts (concurrent schedulers would add cross-warp queueing on the
// same banks and drown the stride signal).
func smMachine() core.Machine {
	return core.Machine{Name: "SM", Procs: 1, Banks: 32, D: 1, G: 1, L: 2}
}

// expD3 sweeps the word stride of a warp's access pattern under the
// GPUShared discipline — the canonical shared-memory bank-conflict
// experiment. With 32 banks, a stride-s warp touches 32/gcd(s,32)
// distinct banks, so gcd(s,32) lanes serialize on each (the conflict
// degree); odd strides are conflict-free and power-of-two strides are
// the worst case. Replays per warp count the serialized lanes directly.
func expD3() Experiment {
	return sweep("D3", "Discipline: GPU shared-memory bank conflicts vs word stride",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("D3: GPU shared-memory conflicts vs word stride (n=%d, 32-lane warps, 32 banks)", cfg.N),
				"word stride", "conflict degree", "cycles/elt", "replays/warp", "slowdown vs stride 1")
		},
		func(cfg Config) []Point {
			n := cfg.N
			strides := []uint64{1, 2, 4, 8, 16, 32}
			if cfg.Quick {
				strides = []uint64{1, 8, 32}
			}
			var pts []Point
			for _, s := range strides {
				s := s
				pts = append(pts, newPoint(fmt.Sprintf("stride=%d", s), func(ctx context.Context, cfg Config) (tableRows, error) {
					m := smMachine()
					run := func(stride uint64) (sim.Result, error) {
						// Each processor is one warp scheduler replaying the
						// same strided stream; addresses are in bytes, words
						// are 4 bytes (bank = addr/4 mod 32).
						lanes := n / m.Procs
						addrs := make([]uint64, lanes)
						for i := range addrs {
							addrs[i] = uint64(i) * stride * 4
						}
						per := make([][]uint64, m.Procs)
						for p := range per {
							per[p] = addrs
						}
						return cfg.RunSim(ctx, sim.Config{Machine: m,
							Bank: sim.BankConfig{Discipline: sim.GPUShared}}, core.Pattern{PerProc: per})
					}
					r, err := run(s)
					if err != nil {
						return nil, err
					}
					base, err := run(1) // memoized across points by the cache
					if err != nil {
						return nil, err
					}
					warps := float64(n) / 32
					return oneRow(s, gcd(int(s), 32),
						core.CyclesPerElement(r.Cycles, n, m.Procs),
						float64(r.WarpReplays)/warps,
						r.Cycles/base.Cycles), nil
				}))
			}
			return pts
		})
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
