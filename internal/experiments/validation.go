package experiments

import (
	"fmt"
	"time"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/tablefmt"
	"dxbsp/internal/vector"
)

// This file regenerates the model-validation experiments: T2 (parameter
// calibration), T3 (hash costs), and figures F1–F5.

// runScatter simulates a scatter of the addresses on machine m and returns
// (simulated cycles, (d,x)-BSP prediction, BSP prediction).
func runScatter(m core.Machine, addrs []uint64, useSections bool) (simC, dx, bsp float64) {
	pt := core.NewPattern(addrs, m.Procs)
	prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
	r, err := sim.Run(sim.Config{Machine: m, UseSections: useSections}, pt)
	if err != nil {
		panic(err)
	}
	return r.Cycles, m.PredictDXBSP(prof), m.PredictBSP(prof)
}

// T2 calibrates the simulated machines the way the paper calibrated the
// Crays: microbenchmarks measure the effective gap (unit-stride scatter),
// the effective bank delay (single-bank scatter), and the contention
// crossover, and the table compares them with the configured parameters.
func T2(cfg Config) *tablefmt.Table {
	t := tablefmt.New("T2: measured (d,x)-BSP parameters of the simulated machines",
		"machine", "g (cfg)", "g (meas)", "d (cfg)", "d (meas)", "x", "crossover k* (pred)", "crossover k* (meas)")
	n := cfg.N
	for _, m := range []core.Machine{core.C90(), core.J90()} {
		// Effective gap: unit-stride addresses, bandwidth bound.
		flat := patterns.Strided(n, 0, 1)
		simFlat, _, _ := runScatter(m, flat, false)
		gMeas := simFlat * float64(m.Procs) / float64(n)

		// Effective delay: all requests to one location.
		hot := patterns.AllSame(n/8, 0)
		simHot, _, _ := runScatter(m, hot, false)
		dMeas := simHot / float64(n/8)

		// Crossover: smallest k whose simulated time exceeds the flat
		// time by 50%.
		kMeas := 0
		for k := 1; k <= n; k *= 2 {
			a := patterns.Contention(n, k, 1)
			s, _, _ := runScatter(m, a, false)
			if s > 1.5*simFlat {
				kMeas = k
				break
			}
		}
		t.AddRow(m.Name, m.G, gMeas, m.D, dMeas, m.Expansion(),
			m.ContentionCrossover(n), kMeas)
	}
	return t
}

// T3 reports the evaluation cost of the bank-mapping hash functions: the
// chime-count model (vector cycles per element, the paper's metric) and a
// measured Go ns/element for scale.
func T3(cfg Config) *tablefmt.Table {
	t := tablefmt.New("T3: hash function evaluation cost per element",
		"hash", "mults", "adds", "shifts", "model cycles/elem", "measured ns/elem")
	g := rng.New(cfg.Seed)
	n := cfg.N
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = g.Uint64()
	}
	for _, f := range hashfn.Families(10, g) {
		ops := f.Ops()
		start := time.Now()
		var sink uint64
		for _, x := range xs {
			sink ^= f.Hash(x)
		}
		elapsed := time.Since(start)
		_ = sink
		t.AddRow(f.Name(), ops.Mul, ops.Add, ops.Shift, ops.Cost(),
			float64(elapsed.Nanoseconds())/float64(n))
	}
	return t
}

// F1 reproduces Figure 1: access patterns extracted from a run of the
// connected-components algorithm are replayed as scatters on the J90, and
// simulated time per element is compared against the BSP and (d,x)-BSP
// predictions as a function of the pattern's contention.
func F1(cfg Config) *tablefmt.Table {
	m := core.J90()
	nVerts := cfg.N / 4
	gr := algos.RandomGraph(nVerts, nVerts*2, rng.New(cfg.Seed))

	// Capture the contention profile of every irregular superstep of the
	// algorithm, with simulated charging so "measured" is queueing-exact.
	type point struct {
		kappa    int
		simPer   float64
		dxPer    float64
		bspPer   float64
		requests int
	}
	var pts []point
	vm := vector.New(m, vector.WithMode(vector.Simulate),
		vector.WithTrace(func(op string, prof core.Profile, cycles float64) {
			if prof.N == 0 {
				return
			}
			pts = append(pts, point{
				kappa:    prof.MaxLoc,
				simPer:   core.CyclesPerElement(cycles, prof.N, m.Procs),
				dxPer:    core.CyclesPerElement(m.PredictDXBSP(prof), prof.N, m.Procs),
				bspPer:   core.CyclesPerElement(m.PredictBSP(prof), prof.N, m.Procs),
				requests: prof.N,
			})
		}))
	algos.ConnectedComponents(vm, gr, rng.New(cfg.Seed^0x55))

	// Bucket by contention and average, as the figure does.
	t := tablefmt.New("F1: connected-components patterns on the J90 (cycles/element)",
		"contention κ", "patterns", "measured (sim)", "(d,x)-BSP", "BSP")
	buckets := map[int][]point{}
	for _, p := range pts {
		k := 1
		for k < p.kappa {
			k *= 4
		}
		buckets[k] = append(buckets[k], p)
	}
	keys := make([]int, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sortInts(keys)
	for _, k := range keys {
		var s, dx, bsp float64
		for _, p := range buckets[k] {
			s += p.simPer
			dx += p.dxPer
			bsp += p.bspPer
		}
		c := float64(len(buckets[k]))
		t.AddRow(k, len(buckets[k]), s/c, dx/c, bsp/c)
	}
	return t
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// F2 reproduces Experiment 1: a scatter whose maximum location contention
// is exactly k, for k from 1 to n, on both simulated machines.
func F2(cfg Config) *tablefmt.Table {
	n := cfg.N
	t := tablefmt.New(fmt.Sprintf("F2: scatter with location contention k (n=%d, cycles/element)", n),
		"k", "J90 sim", "J90 (d,x)-BSP", "J90 BSP", "C90 sim", "C90 (d,x)-BSP")
	j90, c90 := core.J90(), core.C90()
	step := 4
	if cfg.Quick {
		step = 16
	}
	for k := 1; k <= n; k *= step {
		a := patterns.Contention(n, k, 1)
		js, jdx, jbsp := runScatter(j90, a, false)
		cs, cdx, _ := runScatter(c90, a, false)
		p := func(c float64, m core.Machine) float64 { return core.CyclesPerElement(c, n, m.Procs) }
		t.AddRow(k, p(js, j90), p(jdx, j90), p(jbsp, j90), p(cs, c90), p(cdx, c90))
	}
	return t
}

// F3 reproduces Experiment 2: scatters to addresses drawn uniformly from
// [0, m) for a range of m, exercising the balls-in-bins regime of the
// predictor.
func F3(cfg Config) *tablefmt.Table {
	n := cfg.N
	t := tablefmt.New(fmt.Sprintf("F3: scatter to uniform random addresses in [0,m) (n=%d, J90, cycles/element)", n),
		"m", "sim", "(d,x)-BSP", "BSP", "max bank load")
	m := core.J90()
	g := rng.New(cfg.Seed)
	lo := 64
	if cfg.Quick {
		lo = 256
	}
	for sz := lo; sz <= n*16; sz *= 16 {
		a := patterns.Uniform(n, uint64(sz), g.Split())
		pt := core.NewPattern(a, m.Procs)
		prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
		s, dx, bsp := runScatter(m, a, false)
		t.AddRow(sz,
			core.CyclesPerElement(s, n, m.Procs),
			core.CyclesPerElement(dx, n, m.Procs),
			core.CyclesPerElement(bsp, n, m.Procs),
			prof.MaxK)
	}
	return t
}

// F4 reproduces Experiment 3: the Thearling–Smith entropy family, scatter
// time as the distribution degrades from uniform to constant.
func F4(cfg Config) *tablefmt.Table {
	n := cfg.N
	t := tablefmt.New(fmt.Sprintf("F4: entropy-family scatters (n=%d, J90, cycles/element)", n),
		"AND rounds", "entropy (bits)", "contention κ", "sim", "(d,x)-BSP", "BSP")
	m := core.J90()
	rounds := []int{0, 1, 2, 3, 4, 6, 8, 10}
	if cfg.Quick {
		rounds = []int{0, 2, 6, 10}
	}
	for _, r := range rounds {
		a := patterns.Entropy(n, uint64(n), r, rng.New(cfg.Seed))
		h := patterns.MeasureEntropy(a)
		kappa := patterns.MaxContention(a)
		s, dx, bsp := runScatter(m, a, false)
		t.AddRow(r, h, kappa,
			core.CyclesPerElement(s, n, m.Procs),
			core.CyclesPerElement(dx, n, m.Procs),
			core.CyclesPerElement(bsp, n, m.Procs))
	}
	return t
}

// F5 reproduces the multiprocessor placement experiment: the same random
// scatter with addresses (a) spread over all of memory, (b) interleaved
// across sections, and (c) confined to the banks of a single network
// section. Versions (a) and (b) match the model; version (c) exceeds it
// because of section congestion the (d,x)-BSP does not capture (the paper
// saw up to 2.5x).
func F5(cfg Config) *tablefmt.Table {
	n := cfg.N
	m := core.J90()
	t := tablefmt.New(fmt.Sprintf("F5: placement versions on the J90 with section bandwidth (n=%d)", n),
		"version", "sim cycles/elem", "(d,x)-BSP", "sim/model ratio")
	g := rng.New(cfg.Seed)
	banksPerSection := m.Banks / m.Sections

	mk := func(version string) []uint64 {
		a := make([]uint64, n)
		for i := range a {
			switch version {
			case "a": // spread across all banks
				a[i] = g.Uint64n(uint64(8 * m.Banks))
			case "b": // explicitly interleaved across sections
				sec := i % m.Sections
				off := g.Uint64n(uint64(8 * banksPerSection))
				a[i] = uint64(sec*banksPerSection) + (off/uint64(banksPerSection))*uint64(m.Banks) + off%uint64(banksPerSection)
			default: // "c": confined to section 0's banks
				off := g.Uint64n(uint64(8 * banksPerSection))
				a[i] = (off/uint64(banksPerSection))*uint64(m.Banks) + off%uint64(banksPerSection)
			}
		}
		return a
	}
	for _, v := range []string{"a", "b", "c"} {
		a := mk(v)
		pt := core.NewPattern(a, m.Procs)
		prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
		r, err := sim.Run(sim.Config{Machine: m, UseSections: true}, pt)
		if err != nil {
			panic(err)
		}
		dx := m.PredictDXBSP(prof)
		t.AddRow("("+v+")",
			core.CyclesPerElement(r.Cycles, n, m.Procs),
			core.CyclesPerElement(dx, n, m.Procs),
			r.Cycles/dx)
	}
	return t
}
