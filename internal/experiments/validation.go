package experiments

import (
	"context"
	"fmt"
	"time"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/tablefmt"
	"dxbsp/internal/vector"
)

// This file regenerates the model-validation experiments: T2 (parameter
// calibration), T3 (hash costs), and figures F1–F5.

// runScatter simulates a scatter of the addresses on machine m and returns
// (simulated cycles, (d,x)-BSP prediction, BSP prediction). The simulation
// routes through cfg.RunSim so the runner's memo cache sees it.
func runScatter(ctx context.Context, cfg Config, m core.Machine, addrs []uint64, useSections bool) (simC, dx, bsp float64, err error) {
	pt := core.NewPattern(addrs, m.Procs)
	prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
	r, err := cfg.RunSim(ctx, sim.Config{Machine: m, UseSections: useSections}, pt)
	if err != nil {
		return 0, 0, 0, err
	}
	return r.Cycles, m.PredictDXBSP(prof), m.PredictBSP(prof), nil
}

// expT2 calibrates the simulated machines the way the paper calibrated the
// Crays: microbenchmarks measure the effective gap (unit-stride scatter),
// the effective bank delay (single-bank scatter), and the contention
// crossover, and the table compares them with the configured parameters.
// One point per machine; the crossover search is inherently sequential so
// it stays inside the point.
func expT2() Experiment {
	return sweep("T2", "(d,x)-BSP parameters measured on the simulated machines",
		func(Config) *tablefmt.Table {
			return tablefmt.New("T2: measured (d,x)-BSP parameters of the simulated machines",
				"machine", "g (cfg)", "g (meas)", "d (cfg)", "d (meas)", "x", "crossover k* (pred)", "crossover k* (meas)")
		},
		func(cfg Config) []Point {
			var pts []Point
			for _, m := range []core.Machine{core.C90(), core.J90()} {
				m := m
				pts = append(pts, newPoint(m.Name, func(ctx context.Context, cfg Config) (tableRows, error) {
					n := cfg.N
					// Effective gap: unit-stride addresses, bandwidth bound.
					flat := patterns.Strided(n, 0, 1)
					simFlat, _, _, err := runScatter(ctx, cfg, m, flat, false)
					if err != nil {
						return nil, err
					}
					gMeas := simFlat * float64(m.Procs) / float64(n)

					// Effective delay: all requests to one location.
					hot := patterns.AllSame(n/8, 0)
					simHot, _, _, err := runScatter(ctx, cfg, m, hot, false)
					if err != nil {
						return nil, err
					}
					dMeas := simHot / float64(n/8)

					// Crossover: smallest k whose simulated time exceeds the
					// flat time by 50%.
					kMeas := 0
					for k := 1; k <= n; k *= 2 {
						a := patterns.Contention(n, k, 1)
						s, _, _, err := runScatter(ctx, cfg, m, a, false)
						if err != nil {
							return nil, err
						}
						if s > 1.5*simFlat {
							kMeas = k
							break
						}
					}
					return oneRow(m.Name, m.G, gMeas, m.D, dMeas, m.Expansion(),
						m.ContentionCrossover(n), kMeas), nil
				}))
			}
			return pts
		})
}

// expT3 reports the evaluation cost of the bank-mapping hash functions:
// the chime-count model (vector cycles per element, the paper's metric)
// and a measured Go ns/element for scale. The measured column is wall
// clock, so it is the one number in the suite that is not bit-reproducible
// across runs (the determinism tests mask it).
func expT3() Experiment {
	return sweep("T3", "Hash function evaluation cost",
		func(Config) *tablefmt.Table {
			return tablefmt.New("T3: hash function evaluation cost per element",
				"hash", "mults", "adds", "shifts", "model cycles/elem", "measured ns/elem")
		},
		func(cfg Config) []Point {
			g := rng.New(cfg.Seed)
			n := cfg.N
			xs := make([]uint64, n)
			for i := range xs {
				xs[i] = g.Uint64()
			}
			var pts []Point
			for _, f := range hashfn.Families(10, g) {
				f := f
				pts = append(pts, newPoint(f.Name(), func(context.Context, Config) (tableRows, error) {
					ops := f.Ops()
					start := time.Now()
					var sink uint64
					for _, x := range xs {
						sink ^= f.Hash(x)
					}
					elapsed := time.Since(start)
					_ = sink
					return oneRow(f.Name(), ops.Mul, ops.Add, ops.Shift, ops.Cost(),
						float64(elapsed.Nanoseconds())/float64(n)), nil
				}))
			}
			return pts
		})
}

// expF1 reproduces Figure 1: access patterns extracted from a run of the
// connected-components algorithm are replayed as scatters on the J90, and
// simulated time per element is compared against the BSP and (d,x)-BSP
// predictions as a function of the pattern's contention. The trace capture
// is one indivisible computation, so this is a single-point experiment.
func expF1() Experiment {
	return single("F1", "Predicted vs measured time, connected-components patterns", func(cfg Config) (Renderable, error) {
		m := core.J90()
		nVerts := cfg.N / 4
		gr := algos.RandomGraph(nVerts, nVerts*2, rng.New(cfg.Seed))

		// Capture the contention profile of every irregular superstep of the
		// algorithm, with simulated charging so "measured" is queueing-exact.
		type point struct {
			kappa    int
			simPer   float64
			dxPer    float64
			bspPer   float64
			requests int
		}
		var pts []point
		vm := vector.New(m, vector.WithMode(vector.Simulate),
			vector.WithTrace(func(op string, prof core.Profile, cycles float64) {
				if prof.N == 0 {
					return
				}
				pts = append(pts, point{
					kappa:    prof.MaxLoc,
					simPer:   core.CyclesPerElement(cycles, prof.N, m.Procs),
					dxPer:    core.CyclesPerElement(m.PredictDXBSP(prof), prof.N, m.Procs),
					bspPer:   core.CyclesPerElement(m.PredictBSP(prof), prof.N, m.Procs),
					requests: prof.N,
				})
			}))
		algos.ConnectedComponents(vm, gr, rng.New(cfg.Seed^0x55))

		// Bucket by contention and average, as the figure does.
		t := tablefmt.New("F1: connected-components patterns on the J90 (cycles/element)",
			"contention κ", "patterns", "measured (sim)", "(d,x)-BSP", "BSP")
		buckets := map[int][]point{}
		for _, p := range pts {
			k := 1
			for k < p.kappa {
				k *= 4
			}
			buckets[k] = append(buckets[k], p)
		}
		keys := make([]int, 0, len(buckets))
		for k := range buckets {
			keys = append(keys, k)
		}
		sortInts(keys)
		for _, k := range keys {
			var s, dx, bsp float64
			for _, p := range buckets[k] {
				s += p.simPer
				dx += p.dxPer
				bsp += p.bspPer
			}
			c := float64(len(buckets[k]))
			t.AddRow(k, len(buckets[k]), s/c, dx/c, bsp/c)
		}
		return t, nil
	})
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// expF2 reproduces Experiment 1: a scatter whose maximum location
// contention is exactly k, for k from 1 to n, on both simulated machines.
// One point per k.
func expF2() Experiment {
	return sweep("F2", "Experiment 1: scatter time vs location contention",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F2: scatter with location contention k (n=%d, cycles/element)", cfg.N),
				"k", "J90 sim", "J90 (d,x)-BSP", "J90 BSP", "C90 sim", "C90 (d,x)-BSP")
		},
		func(cfg Config) []Point {
			n := cfg.N
			step := 4
			if cfg.Quick {
				step = 16
			}
			var pts []Point
			for k := 1; k <= n; k *= step {
				k := k
				pts = append(pts, newPoint(fmt.Sprintf("k=%d", k), func(ctx context.Context, cfg Config) (tableRows, error) {
					j90, c90 := core.J90(), core.C90()
					a := patterns.Contention(n, k, 1)
					js, jdx, jbsp, err := runScatter(ctx, cfg, j90, a, false)
					if err != nil {
						return nil, err
					}
					cs, cdx, _, err := runScatter(ctx, cfg, c90, a, false)
					if err != nil {
						return nil, err
					}
					p := func(c float64, m core.Machine) float64 { return core.CyclesPerElement(c, n, m.Procs) }
					return oneRow(k, p(js, j90), p(jdx, j90), p(jbsp, j90), p(cs, c90), p(cdx, c90)), nil
				}))
			}
			return pts
		})
}

// expF3 reproduces Experiment 2: scatters to addresses drawn uniformly
// from [0, m) for a range of m, exercising the balls-in-bins regime of the
// predictor. The per-size generators are split off the shared stream in
// sweep order at Points time, so the addresses are identical to the serial
// code no matter how points are scheduled.
func expF3() Experiment {
	return sweep("F3", "Experiment 2: scatter time vs random-pattern range",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F3: scatter to uniform random addresses in [0,m) (n=%d, J90, cycles/element)", cfg.N),
				"m", "sim", "(d,x)-BSP", "BSP", "max bank load")
		},
		func(cfg Config) []Point {
			n := cfg.N
			g := rng.New(cfg.Seed)
			lo := 64
			if cfg.Quick {
				lo = 256
			}
			var pts []Point
			for sz := lo; sz <= n*16; sz *= 16 {
				sz := sz
				sub := g.Split()
				pts = append(pts, newPoint(fmt.Sprintf("m=%d", sz), func(ctx context.Context, cfg Config) (tableRows, error) {
					m := core.J90()
					a := patterns.Uniform(n, uint64(sz), sub.Clone())
					pt := core.NewPattern(a, m.Procs)
					prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
					s, dx, bsp, err := runScatter(ctx, cfg, m, a, false)
					if err != nil {
						return nil, err
					}
					return oneRow(sz,
						core.CyclesPerElement(s, n, m.Procs),
						core.CyclesPerElement(dx, n, m.Procs),
						core.CyclesPerElement(bsp, n, m.Procs),
						prof.MaxK), nil
				}))
			}
			return pts
		})
}

// expF4 reproduces Experiment 3: the Thearling–Smith entropy family,
// scatter time as the distribution degrades from uniform to constant. Each
// round seeds its own generator, so points are independent by construction.
func expF4() Experiment {
	return sweep("F4", "Experiment 3: scatter time on entropy distributions",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F4: entropy-family scatters (n=%d, J90, cycles/element)", cfg.N),
				"AND rounds", "entropy (bits)", "contention κ", "sim", "(d,x)-BSP", "BSP")
		},
		func(cfg Config) []Point {
			rounds := []int{0, 1, 2, 3, 4, 6, 8, 10}
			if cfg.Quick {
				rounds = []int{0, 2, 6, 10}
			}
			var pts []Point
			for _, r := range rounds {
				r := r
				pts = append(pts, newPoint(fmt.Sprintf("rounds=%d", r), func(ctx context.Context, cfg Config) (tableRows, error) {
					n := cfg.N
					m := core.J90()
					a := patterns.Entropy(n, uint64(n), r, rng.New(cfg.Seed))
					h := patterns.MeasureEntropy(a)
					kappa := patterns.MaxContention(a)
					s, dx, bsp, err := runScatter(ctx, cfg, m, a, false)
					if err != nil {
						return nil, err
					}
					return oneRow(r, h, kappa,
						core.CyclesPerElement(s, n, m.Procs),
						core.CyclesPerElement(dx, n, m.Procs),
						core.CyclesPerElement(bsp, n, m.Procs)), nil
				}))
			}
			return pts
		})
}

// expF5 reproduces the multiprocessor placement experiment: the same
// random scatter with addresses (a) spread over all of memory, (b)
// interleaved across sections, and (c) confined to the banks of a single
// network section. Versions (a) and (b) match the model; version (c)
// exceeds it because of section congestion the (d,x)-BSP does not capture
// (the paper saw up to 2.5x). The three address arrays are drawn from one
// shared stream, so Points materializes them in order.
func expF5() Experiment {
	return sweep("F5", "Multiprocessor versions (a)/(b)/(c): section congestion",
		func(cfg Config) *tablefmt.Table {
			return tablefmt.New(fmt.Sprintf("F5: placement versions on the J90 with section bandwidth (n=%d)", cfg.N),
				"version", "sim cycles/elem", "(d,x)-BSP", "sim/model ratio")
		},
		func(cfg Config) []Point {
			n := cfg.N
			m := core.J90()
			g := rng.New(cfg.Seed)
			banksPerSection := m.Banks / m.Sections

			mk := func(version string) []uint64 {
				a := make([]uint64, n)
				for i := range a {
					switch version {
					case "a": // spread across all banks
						a[i] = g.Uint64n(uint64(8 * m.Banks))
					case "b": // explicitly interleaved across sections
						sec := i % m.Sections
						off := g.Uint64n(uint64(8 * banksPerSection))
						a[i] = uint64(sec*banksPerSection) + (off/uint64(banksPerSection))*uint64(m.Banks) + off%uint64(banksPerSection)
					default: // "c": confined to section 0's banks
						off := g.Uint64n(uint64(8 * banksPerSection))
						a[i] = (off/uint64(banksPerSection))*uint64(m.Banks) + off%uint64(banksPerSection)
					}
				}
				return a
			}
			var pts []Point
			for _, v := range []string{"a", "b", "c"} {
				v := v
				a := mk(v)
				pts = append(pts, newPoint("("+v+")", func(ctx context.Context, cfg Config) (tableRows, error) {
					pt := core.NewPattern(a, m.Procs)
					prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
					r, err := cfg.RunSim(ctx, sim.Config{Machine: m, UseSections: true}, pt)
					if err != nil {
						return nil, err
					}
					dx := m.PredictDXBSP(prof)
					return oneRow("("+v+")",
						core.CyclesPerElement(r.Cycles, n, m.Procs),
						core.CyclesPerElement(dx, n, m.Procs),
						r.Cycles/dx), nil
				}))
			}
			return pts
		})
}
