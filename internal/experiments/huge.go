// The huge-grid family: sweeps sized beyond what event simulation can
// serve interactively, built to run under the runner's surrogate
// routing (`dxbench -surrogate auto`). They live in their own Huge()
// registry so `dxbench -all` and the CI tiers keep their existing cost;
// Lookup finds them by ID like any other experiment.

package experiments

import (
	"context"
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/tablefmt"
)

// Huge returns the experiments excluded from All() because their
// production scale is not event-simulatable interactively. Run them
// with surrogate routing enabled; cells answered by the closed form are
// marked with a trailing '*'.
func Huge() []Experiment {
	return []Experiment{expF14()}
}

// expF14 scales the F6 scatter study to modern machine sizes: processor
// counts to 4096 and expansions to 64, with the request count growing
// with the machine (64 requests per processor). At the top corner one
// point alone is a quarter-million-request simulation; under
// `-surrogate auto` the large points route to the closed form (marked
// '*') while the small ones keep the simulator's exact answer, so the
// grid stays interactive end to end.
func expF14() Experiment {
	ps := []int{64, 256, 1024, 4096}
	xs := []int{1, 4, 16, 64}
	reqsPerProc := 64
	return sweep("F14", "Huge scatter grid (surrogate-routable)",
		func(cfg Config) *tablefmt.Table {
			cols := []string{"p"}
			for _, x := range hugeXs(cfg, xs) {
				cols = append(cols, fmt.Sprintf("x=%d", x))
			}
			return tablefmt.New(
				"F14: random scatter at scale (d=6, g=1, cycles/element; '*' = closed-form surrogate)",
				cols...)
		},
		func(cfg Config) []Point {
			gps := ps
			if cfg.Quick {
				gps = []int{8, 16}
			}
			var pts []Point
			for _, p := range gps {
				p := p
				pts = append(pts, newPoint(fmt.Sprintf("p=%d", p), func(ctx context.Context, cfg Config) (tableRows, error) {
					n := p * reqsPerProc
					if cfg.Quick {
						n = p * 16
					}
					row := []interface{}{p}
					for _, x := range hugeXs(cfg, xs) {
						m := core.Machine{Name: "huge", Procs: p, Banks: p * x, D: 6, G: 1, L: 16}
						// Per-point seed: points are independent, so each draws
						// its own stream instead of splitting a shared one.
						g := rng.New(cfg.Seed ^ (uint64(p)<<32 | uint64(x)))
						pt := core.NewPattern(patterns.Uniform(n, 1<<40, g), p)
						r, err := cfg.RunSim(ctx, sim.Config{Machine: m}, pt)
						if err != nil {
							return nil, err
						}
						cpe := core.CyclesPerElement(r.Cycles, n, p)
						if r.Analytic {
							row = append(row, fmt.Sprintf("%.3f*", cpe))
						} else {
							row = append(row, fmt.Sprintf("%.3f", cpe))
						}
					}
					return tableRows{row}, nil
				}))
			}
			return pts
		})
}

func hugeXs(cfg Config, xs []int) []int {
	if cfg.Quick {
		return []int{1, 4}
	}
	return xs
}
