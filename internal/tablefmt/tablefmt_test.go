package tablefmt

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := New("Machines", "name", "procs", "banks")
	tbl.AddRow("C90", 16, 1024)
	tbl.AddRow("J90", 32, 1024)
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"== Machines ==", "name", "C90", "1024", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := New("", "v")
	tbl.AddRow(0.0)
	tbl.AddRow(1234567.0)
	tbl.AddRow(0.0001234)
	tbl.AddRow(3.14159)
	tbl.AddRow(250.5)
	var b strings.Builder
	tbl.Render(&b)
	out := b.String()
	for _, want := range []string{"0\n", "1.23e+06", "0.000123", "3.142", "250.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := New("", "a")
	tbl.AddRow(1)
	var b strings.Builder
	tbl.Render(&b)
	if strings.Contains(b.String(), "==") {
		t.Error("untitled table rendered a title")
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("Fig 1", "contention", []float64{1, 2, 4})
	s.Add("measured", []float64{10, 20, 40})
	s.Add("predicted", []float64{11, 19, 42})
	var b strings.Builder
	s.Render(&b)
	out := b.String()
	for _, want := range []string{"Fig 1", "contention", "measured", "predicted", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := New("x", "name", "value")
	tbl.AddRow("plain", 1)
	tbl.AddRow("with,comma", 2)
	tbl.AddRow(`with"quote`, 3)
	var b strings.Builder
	tbl.RenderCSV(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"with,comma",2` {
		t.Errorf("comma row = %q", lines[2])
	}
	if lines[3] != `"with""quote",3` {
		t.Errorf("quote row = %q", lines[3])
	}
}

func TestSeriesRenderCSV(t *testing.T) {
	s := NewSeries("f", "x", []float64{1, 2})
	s.Add("y", []float64{10, 20})
	var b strings.Builder
	s.RenderCSV(&b)
	out := b.String()
	if !strings.HasPrefix(out, "x,y\n") || !strings.Contains(out, "2.000,20.000") {
		t.Errorf("series CSV = %q", out)
	}
}

func TestSeriesLengthMismatchPanics(t *testing.T) {
	s := NewSeries("x", "x", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	s.Add("bad", []float64{1})
}

// Footnotes render after the rows, numbered in insertion order, in both
// text and CSV (as comments, so the stream stays machine-parseable).
func TestTableFootnotes(t *testing.T) {
	tb := New("t", "a", "b")
	n1 := tb.AddFootnote("first note")
	tb.AddRow("x", fmt.Sprintf("FAILED [%d]", n1))
	n2 := tb.AddFootnote("second note")
	tb.AddRow("y", fmt.Sprintf("FAILED [%d]", n2))
	if n1 != 1 || n2 != 2 {
		t.Fatalf("refs = %d, %d", n1, n2)
	}
	if tb.NumFootnotes() != 2 {
		t.Errorf("NumFootnotes = %d", tb.NumFootnotes())
	}

	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	if !strings.Contains(out, "FAILED [1]") || !strings.Contains(out, "\n[1] first note\n") {
		t.Errorf("text render:\n%s", out)
	}
	if idx1, idx2 := strings.Index(out, "[1] first note"), strings.Index(out, "[2] second note"); idx1 > idx2 {
		t.Error("footnotes out of order")
	}

	var c strings.Builder
	tb.RenderCSV(&c)
	if !strings.Contains(c.String(), "# [1] first note\n") || !strings.Contains(c.String(), "# [2] second note\n") {
		t.Errorf("csv render:\n%s", c.String())
	}
}

// A table without footnotes renders exactly as before.
func TestTableNoFootnotes(t *testing.T) {
	tb := New("t", "a")
	tb.AddRow("x")
	var b strings.Builder
	tb.Render(&b)
	if strings.Contains(b.String(), "[1]") {
		t.Errorf("phantom footnote:\n%s", b.String())
	}
}
