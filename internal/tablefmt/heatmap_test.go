package tablefmt

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapRender(t *testing.T) {
	h := NewHeatmap("bank occupancy", "bank position")
	h.AddRow("load", []float64{0, 1, 2, 4})
	h.AddRow("busy", []float64{8, 8, 8, 8})
	var b strings.Builder
	h.Render(&b)
	out := b.String()

	for _, want := range []string{
		"== bank occupancy ==",
		"load |",
		"busy |@@@@| max=8",
		"x: bank position",
		"scale:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The hottest cell of each row renders as the top glyph; a zero cell
	// as the bottom glyph.
	lines := strings.Split(out, "\n")
	var loadLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "load") {
			loadLine = l
		}
	}
	cells := loadLine[strings.Index(loadLine, "|")+1 : strings.LastIndex(loadLine, "|")]
	if len(cells) != 4 {
		t.Fatalf("load row has %d cells, want 4: %q", len(cells), loadLine)
	}
	if cells[0] != ' ' {
		t.Errorf("zero cell renders %q, want space", cells[0])
	}
	if cells[3] != '@' {
		t.Errorf("max cell renders %q, want '@'", cells[3])
	}
	// Monotone values must render with non-decreasing glyph weight.
	for i := 1; i < len(cells); i++ {
		if strings.IndexByte(heatRamp, cells[i]) < strings.IndexByte(heatRamp, cells[i-1]) {
			t.Errorf("glyph weight decreased across ascending values: %q", cells)
		}
	}
}

func TestHeatmapEmpty(t *testing.T) {
	var b strings.Builder
	NewHeatmap("t", "").Render(&b)
	if !strings.Contains(b.String(), "(no data)") {
		t.Errorf("empty heatmap output: %q", b.String())
	}
}

func TestHeatmapDegenerateCells(t *testing.T) {
	h := NewHeatmap("", "")
	h.AddRow("r", []float64{math.NaN(), -1, 0, math.Inf(1)})
	var b strings.Builder
	h.Render(&b)
	out := b.String()
	line := strings.SplitN(out, "\n", 2)[0]
	cells := line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
	// NaN, negative and zero all floor to the lowest glyph; +Inf is the
	// row max and takes the top glyph.
	if cells[0] != ' ' || cells[1] != ' ' || cells[2] != ' ' {
		t.Errorf("degenerate cells not floored: %q", cells)
	}
	if cells[3] != '@' {
		t.Errorf("+Inf cell renders %q, want '@'", cells[3])
	}
}

func TestHeatmapFlatRow(t *testing.T) {
	h := NewHeatmap("", "")
	h.AddRow("flat", []float64{0, 0, 0})
	var b strings.Builder
	h.Render(&b)
	if !strings.Contains(b.String(), "|   | max=0") {
		t.Errorf("flat row render: %q", b.String())
	}
}

func TestHeatmapDeterministic(t *testing.T) {
	mk := func() string {
		h := NewHeatmap("t", "x")
		h.AddRow("a", []float64{1, 2, 3})
		h.AddRow("b", []float64{3, 2, 1})
		var b strings.Builder
		h.Render(&b)
		return b.String()
	}
	if mk() != mk() {
		t.Error("heatmap render not deterministic")
	}
}
