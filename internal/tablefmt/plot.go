package tablefmt

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// This file renders a Series as an ASCII line plot, so dxbench can show
// the paper's figures as actual figures in a terminal. Each line gets a
// glyph; points are plotted on a character grid with optional log axes
// (most of the paper's figures are log-log).

// PlotOptions controls RenderPlot.
type PlotOptions struct {
	// Width and Height are the plot area in characters (excluding axis
	// labels). Zero values default to 64x16.
	Width, Height int
	// LogX / LogY use log10 scales (points must be positive on that
	// axis).
	LogX, LogY bool
}

var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// RenderPlot draws the series as an ASCII chart. Non-positive values are
// clamped to the axis minimum under log scaling.
func (s *Series) RenderPlot(w io.Writer, opt PlotOptions) {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	if len(s.X) == 0 || len(s.lines) == 0 {
		fmt.Fprintf(w, "== %s == (no data)\n", s.Title)
		return
	}

	xmin, xmax := rangeOf(s.X, opt.LogX)
	var ally []float64
	for _, l := range s.lines {
		ally = append(ally, l.y...)
	}
	ymin, ymax := rangeOf(ally, opt.LogY)

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for li, l := range s.lines {
		g := plotGlyphs[li%len(plotGlyphs)]
		for i, x := range s.X {
			cx := scale(x, xmin, xmax, opt.Width-1, opt.LogX)
			cy := scale(l.y[i], ymin, ymax, opt.Height-1, opt.LogY)
			row := opt.Height - 1 - cy
			grid[row][cx] = g
		}
	}

	if s.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", s.Title)
	}
	topLabel := axisLabel(ymax, opt.LogY)
	botLabel := axisLabel(ymin, opt.LogY)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for r := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = padLeft(topLabel, labelW)
		case opt.Height - 1:
			label = padLeft(botLabel, labelW)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", opt.Width))
	fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", labelW),
		axisLabel(xmin, opt.LogX),
		strings.Repeat(" ", maxInt(1, opt.Width-len(axisLabel(xmin, opt.LogX))-len(axisLabel(xmax, opt.LogX)))),
		axisLabel(xmax, opt.LogX))
	for li, l := range s.lines {
		fmt.Fprintf(w, "  %c %s\n", plotGlyphs[li%len(plotGlyphs)], l.label)
	}
	fmt.Fprintf(w, "  x: %s\n", s.XLabel)
}

func rangeOf(xs []float64, logScale bool) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if logScale && x <= 0 {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if math.IsInf(lo, 1) { // all values invalid for log: fall back
		lo, hi = 1, 10
	}
	if lo == hi {
		hi = lo + 1
	}
	return lo, hi
}

func scale(v, lo, hi float64, steps int, logScale bool) int {
	if logScale {
		if v <= 0 {
			v = lo
		}
		v, lo, hi = math.Log10(v), math.Log10(lo), math.Log10(hi)
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return int(math.Round(f * float64(steps)))
}

func axisLabel(v float64, logScale bool) string {
	_ = logScale
	return formatFloat(v)
}

func padLeft(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PlotTable renders selected numeric columns of a table as a plot, using
// column 0 as the x axis. Column indexes out of range are skipped; rows
// whose cells fail to parse are skipped. It returns false if nothing
// plottable was found.
func PlotTable(w io.Writer, t *Table, yCols []int, opt PlotOptions) bool {
	if len(t.rows) == 0 || len(t.Headers) < 2 {
		return false
	}
	if len(yCols) == 0 {
		for c := 1; c < len(t.Headers); c++ {
			yCols = append(yCols, c)
		}
	}
	var xs []float64
	ys := make([][]float64, len(yCols))
	for _, row := range t.rows {
		x, okx := parseCell(row, 0)
		if !okx {
			continue
		}
		vals := make([]float64, len(yCols))
		ok := true
		for i, c := range yCols {
			v, okv := parseCell(row, c)
			if !okv {
				ok = false
				break
			}
			vals[i] = v
		}
		if !ok {
			continue
		}
		xs = append(xs, x)
		for i := range yCols {
			ys[i] = append(ys[i], vals[i])
		}
	}
	if len(xs) < 2 {
		return false
	}
	s := NewSeries(t.Title, t.Headers[0], xs)
	for i, c := range yCols {
		s.Add(t.Headers[c], ys[i])
	}
	s.RenderPlot(w, opt)
	return true
}

func parseCell(row []string, c int) (float64, bool) {
	if c >= len(row) {
		return 0, false
	}
	var v float64
	_, err := fmt.Sscanf(strings.TrimSpace(row[c]), "%g", &v)
	return v, err == nil
}
