package tablefmt

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Heatmap renders a dense row-by-column grid of non-negative intensities
// as ASCII, one glyph per cell. dxbench uses it for the bank-occupancy
// view: rows are quantities (requests served, busy cycles, queue
// high-water mark), columns are relative bank positions, and each row is
// normalized to its own maximum — the quantities have different units, so
// cross-row shading would be meaningless. What the eye should compare
// across rows is the *shape* (which banks are hot), not the magnitude;
// magnitudes are printed per row.
type Heatmap struct {
	Title  string
	XLabel string // meaning of the column axis

	rows []heatRow
	cols int
}

type heatRow struct {
	label  string
	values []float64
}

// heatRamp orders glyphs by visual weight; cell intensity indexes into it
// after per-row normalization.
const heatRamp = " .:-=+*#%@"

// NewHeatmap returns an empty heatmap.
func NewHeatmap(title, xLabel string) *Heatmap {
	return &Heatmap{Title: title, XLabel: xLabel}
}

// AddRow appends one labeled row of cell intensities. Rows may have
// different lengths; shorter rows render ragged.
func (h *Heatmap) AddRow(label string, values []float64) {
	h.rows = append(h.rows, heatRow{label: label, values: values})
	if len(values) > h.cols {
		h.cols = len(values)
	}
}

// Render draws the heatmap. Each row shows its glyph strip bracketed by
// pipes, followed by the row's maximum (the value an '@' cell stands
// for). Negative and NaN cells render as the lowest glyph.
func (h *Heatmap) Render(w io.Writer) {
	if h.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", h.Title)
	}
	if len(h.rows) == 0 || h.cols == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	labelW := 0
	for _, r := range h.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	for _, r := range h.rows {
		max := 0.0
		for _, v := range r.values {
			if v > max { // NaN fails the comparison and is ignored
				max = v
			}
		}
		cells := make([]byte, len(r.values))
		for i, v := range r.values {
			cells[i] = heatGlyph(v, max)
		}
		fmt.Fprintf(w, "%s |%s| max=%s\n", padLeft(r.label, labelW), string(cells), formatFloat(max))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", labelW), axisTicks(h.cols))
	if h.XLabel != "" {
		fmt.Fprintf(w, "%s  x: %s\n", strings.Repeat(" ", labelW), h.XLabel)
	}
	fmt.Fprintf(w, "%s  scale: %q low..high, per row\n", strings.Repeat(" ", labelW), heatRamp)
}

// heatGlyph maps v in [0, max] onto the ramp. A flat row (max == 0)
// renders entirely as the lowest glyph.
func heatGlyph(v, max float64) byte {
	if !(v > 0) || max <= 0 { // v <= 0 or NaN
		return heatRamp[0]
	}
	if v >= max { // also covers +Inf/+Inf, whose ratio would be NaN
		return heatRamp[len(heatRamp)-1]
	}
	i := int(math.Ceil(v / max * float64(len(heatRamp)-1)))
	if i < 1 {
		i = 1 // any positive cell is visibly non-blank
	}
	if i >= len(heatRamp) {
		i = len(heatRamp) - 1
	}
	return heatRamp[i]
}

// axisTicks draws a sparse 0-based column ruler: a "0" at the left edge
// and the last column index at the right edge.
func axisTicks(cols int) string {
	last := fmt.Sprintf("%d", cols-1)
	if cols <= len(last)+1 {
		return "0"
	}
	return "0" + strings.Repeat(" ", cols-1-len(last)) + last
}
