package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderPlotBasic(t *testing.T) {
	s := NewSeries("fig", "k", []float64{1, 2, 3, 4})
	s.Add("measured", []float64{1, 2, 3, 4})
	s.Add("predicted", []float64{4, 3, 2, 1})
	var b strings.Builder
	s.RenderPlot(&b, PlotOptions{Width: 20, Height: 8})
	out := b.String()
	for _, want := range []string{"== fig ==", "*", "o", "measured", "predicted", "x: k"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// 8 grid rows + axis + labels: rows with the | margin.
	if got := strings.Count(out, "|"); got != 8 {
		t.Errorf("grid rows = %d, want 8:\n%s", got, out)
	}
}

func TestRenderPlotLogScales(t *testing.T) {
	s := NewSeries("log", "n", []float64{1, 10, 100, 1000})
	s.Add("y", []float64{1, 10, 100, 1000})
	var b strings.Builder
	s.RenderPlot(&b, PlotOptions{Width: 31, Height: 11, LogX: true, LogY: true})
	out := b.String()
	// Under log-log a power law is a straight diagonal: the corner points
	// must be present in the first and last grid columns.
	lines := strings.Split(out, "\n")
	var gridLines []string
	for _, ln := range lines {
		if strings.Contains(ln, "|") {
			gridLines = append(gridLines, ln[strings.Index(ln, "|")+1:])
		}
	}
	if len(gridLines) != 11 {
		t.Fatalf("grid lines = %d:\n%s", len(gridLines), out)
	}
	if gridLines[0][len(gridLines[0])-1] != '*' {
		t.Errorf("top-right corner missing:\n%s", out)
	}
	if gridLines[10][0] != '*' {
		t.Errorf("bottom-left corner missing:\n%s", out)
	}
}

func TestRenderPlotEmpty(t *testing.T) {
	s := NewSeries("empty", "x", nil)
	var b strings.Builder
	s.RenderPlot(&b, PlotOptions{})
	if !strings.Contains(b.String(), "no data") {
		t.Errorf("empty plot output: %q", b.String())
	}
}

func TestRenderPlotConstantSeries(t *testing.T) {
	// Constant y must not divide by zero.
	s := NewSeries("const", "x", []float64{1, 2})
	s.Add("y", []float64{5, 5})
	var b strings.Builder
	s.RenderPlot(&b, PlotOptions{Width: 10, Height: 4})
	if !strings.Contains(b.String(), "*") {
		t.Error("constant series lost its points")
	}
}

func TestPlotTable(t *testing.T) {
	tbl := New("tab", "k", "sim", "pred", "notes")
	tbl.AddRow(1, 10.0, 11.0, "a")
	tbl.AddRow(2, 20.0, 21.0, "b")
	tbl.AddRow(4, 40.0, 39.0, "c")
	var b strings.Builder
	if !PlotTable(&b, tbl, []int{1, 2}, PlotOptions{Width: 16, Height: 6}) {
		t.Fatal("PlotTable returned false")
	}
	out := b.String()
	if !strings.Contains(out, "sim") || !strings.Contains(out, "pred") {
		t.Errorf("plot missing legends:\n%s", out)
	}
}

func TestPlotTableDefaultsAndFailure(t *testing.T) {
	tbl := New("t", "name", "v")
	tbl.AddRow("a", 1)
	tbl.AddRow("b", 2)
	var b strings.Builder
	// Non-numeric x column: nothing plottable.
	if PlotTable(&b, tbl, nil, PlotOptions{}) {
		t.Error("non-numeric table should not plot")
	}
	if PlotTable(&b, New("e", "x", "y"), nil, PlotOptions{}) {
		t.Error("empty table should not plot")
	}
}
