// Package tablefmt renders the experiment harness's output: fixed-width
// text tables (for the paper's tables) and aligned x/y series (for its
// figures), written to any io.Writer.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Renderer is anything that can render itself as fixed-width text. Every
// experiment result satisfies it; Table and Series are the canonical
// implementations.
type Renderer interface {
	Render(w io.Writer)
}

// CSVRenderer is a Renderer that can also emit itself as RFC-4180 CSV.
// Output consumers (cmd/dxbench's -format csv) type-assert against this
// interface instead of falling back to text silently.
type CSVRenderer interface {
	Renderer
	RenderCSV(w io.Writer)
}

var (
	_ CSVRenderer = (*Table)(nil)
	_ CSVRenderer = (*Series)(nil)
)

// Table accumulates rows and renders them with aligned columns. Footnotes
// added with AddFootnote render after the rows; degraded experiment runs
// use them to annotate failed cells.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	notes   []string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added.
func (t *Table) NumRows() int { return len(t.rows) }

// AddFootnote records a footnote rendered after the table's rows and
// returns its 1-based reference number, for use in a cell.
func (t *Table) AddFootnote(text string) int {
	t.notes = append(t.notes, text)
	return len(t.notes)
}

// NumFootnotes returns the number of footnotes added.
func (t *Table) NumFootnotes() int { return len(t.notes) }

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	for i, n := range t.notes {
		fmt.Fprintf(w, "[%d] %s\n", i+1, n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table as RFC-4180-style CSV (header row first).
// Cells containing commas, quotes or newlines are quoted. Footnotes are
// emitted as trailing # comments so the stream stays machine-parseable.
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
	for i, n := range t.notes {
		fmt.Fprintf(w, "# [%d] %s\n", i+1, n)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

// Series is a labeled set of y-values over shared x-values — one "figure".
type Series struct {
	Title  string
	XLabel string
	X      []float64
	lines  []seriesLine
}

type seriesLine struct {
	label string
	y     []float64
}

// NewSeries returns a figure with the given x axis.
func NewSeries(title, xLabel string, x []float64) *Series {
	return &Series{Title: title, XLabel: xLabel, X: x}
}

// Add appends a named line; y must match the x axis in length.
func (s *Series) Add(label string, y []float64) {
	if len(y) != len(s.X) {
		panic(fmt.Sprintf("tablefmt: series %q: %d points for %d x-values", label, len(y), len(s.X)))
	}
	s.lines = append(s.lines, seriesLine{label: label, y: y})
}

// Render writes the series as a table with one row per x-value.
func (s *Series) Render(w io.Writer) {
	s.toTable().Render(w)
}

// RenderCSV writes the series as CSV.
func (s *Series) RenderCSV(w io.Writer) {
	s.toTable().RenderCSV(w)
}

func (s *Series) toTable() *Table {
	headers := make([]string, 0, len(s.lines)+1)
	headers = append(headers, s.XLabel)
	for _, l := range s.lines {
		headers = append(headers, l.label)
	}
	t := New(s.Title, headers...)
	for i, x := range s.X {
		cells := make([]interface{}, 0, len(headers))
		cells = append(cells, x)
		for _, l := range s.lines {
			cells = append(cells, l.y[i])
		}
		t.AddRow(cells...)
	}
	return t
}
