package pipe

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Config{VL: 0}).Validate(); err == nil {
		t.Error("VL=0 accepted")
	}
	if err := (Config{VL: 64, Startup: -1}).Validate(); err == nil {
		t.Error("negative startup accepted")
	}
	if err := J90Unit().Validate(); err != nil {
		t.Error(err)
	}
	if err := C90Unit().Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunEmpty(t *testing.T) {
	c, err := Run(J90Unit(), nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 0 {
		t.Errorf("empty kernel cycles = %v", c.Cycles)
	}
	c, err = Run(J90Unit(), ElementwiseKernel(1, 0, 1, 0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 0 || c.Strips != 0 {
		t.Errorf("n=0: %+v", c)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}, nil, 10); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Run(J90Unit(), nil, -1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := Run(J90Unit(), Kernel{{Unit: Unit(99)}}, 10); err == nil {
		t.Error("bad unit accepted")
	}
}

func TestChainedSingleInstruction(t *testing.T) {
	// One vload over exactly 10 strips: 10*VL + 10*startup cycles.
	cfg := J90Unit()
	n := 10 * cfg.VL
	c, err := Run(cfg, ElementwiseKernel(1, 0, 0, 0, 0), n)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) + 10*cfg.Startup
	if c.Cycles != want {
		t.Errorf("cycles = %v, want %v", c.Cycles, want)
	}
	if c.Strips != 10 {
		t.Errorf("strips = %d", c.Strips)
	}
	if c.Bottleneck != UnitLoad {
		t.Errorf("bottleneck = %v", c.Bottleneck)
	}
}

func TestChainingOverlapsClasses(t *testing.T) {
	// load+mul+add+store, one of each, chained: cost per strip = one
	// class's VL (all overlap), so ~1 cycle/element.
	cfg := J90Unit()
	n := 64 * 64
	k := Kernel{
		{UnitLoad, "vload"}, {UnitMul, "vmul"},
		{UnitAdd, "vadd"}, {UnitStore, "vstore"},
	}
	c, err := Run(cfg, k, n)
	if err != nil {
		t.Fatal(err)
	}
	per := c.CyclesPerElement(n)
	if per < 1.0 || per > 1.2 {
		t.Errorf("chained mixed kernel %v cycles/element, want ~1", per)
	}

	// Unchained: 4 serial instructions → ~4 cycles/element.
	cfg.Chaining = false
	c, err = Run(cfg, k, n)
	if err != nil {
		t.Fatal(err)
	}
	per = c.CyclesPerElement(n)
	if per < 4.0 || per > 4.5 {
		t.Errorf("unchained kernel %v cycles/element, want ~4", per)
	}
}

func TestPortPressure(t *testing.T) {
	// Two loads on the J90's single port: 2 cycles/element. Same kernel
	// on the C90's two ports: 1 cycle/element.
	k := ElementwiseKernel(2, 0, 0, 0, 0)
	n := 1 << 14
	j, err := Run(J90Unit(), k, n)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(C90Unit(), k, n)
	if err != nil {
		t.Fatal(err)
	}
	jPer, cPer := j.CyclesPerElement(n), c.CyclesPerElement(n)
	if jPer < 2.0 || jPer > 2.3 {
		t.Errorf("J90 two-load kernel = %v, want ~2", jPer)
	}
	if cPer < 1.0 || cPer > 1.2 {
		t.Errorf("C90 two-load kernel = %v, want ~1", cPer)
	}
	if j.Bottleneck != UnitLoad {
		t.Errorf("bottleneck = %v", j.Bottleneck)
	}
}

func TestHashKernelOrdering(t *testing.T) {
	// Pipeline costs of the hash kernels must be non-decreasing in degree
	// and strictly separate cubic from linear. Note the pipeline-model
	// finding: with chaining, the LINEAR hash is free — its one multiply
	// and one shift hide entirely behind the address load, so h1 costs
	// the same as no hashing at all. Higher degrees saturate the multiply
	// unit and surface in the cost, as in the paper's Table 3.
	cfg := J90Unit()
	n := 1 << 14
	var costs []float64
	for _, mix := range [][3]int{{0, 0, 0}, {1, 0, 1}, {2, 2, 1}, {3, 3, 1}} {
		c, err := Run(cfg, HashKernel(mix[0], mix[1], mix[2]), n)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, c.CyclesPerElement(n))
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] < costs[i-1] {
			t.Errorf("cost decreased at mix %d: %v", i, costs)
		}
	}
	if costs[0] != costs[1] {
		t.Errorf("chained linear hash should be free: identity %v vs linear %v", costs[0], costs[1])
	}
	if costs[3] <= costs[1]*1.5 {
		t.Errorf("cubic %v should clearly exceed linear %v", costs[3], costs[1])
	}
}

func TestPartialStrip(t *testing.T) {
	// n = VL + 1: one full strip plus a 1-element strip.
	cfg := J90Unit()
	cfg.Startup = 0
	n := cfg.VL + 1
	c, err := Run(cfg, ElementwiseKernel(1, 0, 0, 0, 0), n)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(cfg.VL) + float64(cfg.VL)*1/float64(cfg.VL)
	if math.Abs(c.Cycles-want) > 1e-9 {
		t.Errorf("partial strip cycles = %v, want %v", c.Cycles, want)
	}
}

func TestUnitString(t *testing.T) {
	if UnitMul.String() != "mul" || UnitStore.String() != "store" {
		t.Error("unit names wrong")
	}
	if Unit(42).String() != "unit(42)" {
		t.Error("unknown unit name")
	}
}

func TestRunMonotoneProperty(t *testing.T) {
	// More instructions never make a kernel faster; more elements never
	// cost less.
	cfg := J90Unit()
	f := func(loads, adds uint8, nRaw uint16) bool {
		l, a := int(loads%4), int(adds%4)
		n := int(nRaw%4096) + 1
		base, err := Run(cfg, ElementwiseKernel(l, 0, a, 0, 0), n)
		if err != nil {
			return false
		}
		more, err := Run(cfg, ElementwiseKernel(l+1, 0, a+1, 0, 1), n)
		if err != nil {
			return false
		}
		if more.Cycles < base.Cycles {
			return false
		}
		bigger, err := Run(cfg, ElementwiseKernel(l+1, 0, a, 0, 0), n*2)
		if err != nil {
			return false
		}
		smaller, err := Run(cfg, ElementwiseKernel(l+1, 0, a, 0, 0), n)
		if err != nil {
			return false
		}
		return bigger.Cycles >= smaller.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
