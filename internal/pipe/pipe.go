// Package pipe models the processor side of the paper's machines: a
// vector unit executing chained vector instructions over strips of VL
// elements (VL = 64 on the J90, 128 on the C90). The memory-system model
// (internal/sim) answers "how long do the banks take"; this package
// answers "how fast can one processor issue work" — the origin of the
// per-element costs the vector layer charges for elementwise code and the
// evaluation costs in the hash-function table (T3).
//
// The model is deliberately chime-level, the granularity the paper and
// [ZB91] reason at: a kernel is a straight-line sequence of vector
// instructions; each instruction occupies one functional unit and (for
// memory ops) one port for ceil(n/VL) chimes of VL cycles each; chaining
// lets a dependent instruction start in the same chime as its producer,
// so the kernel cost per strip is driven by the most heavily used
// resource, plus a startup term per instruction.
package pipe

import "fmt"

// Unit identifies a functional unit class.
type Unit int

const (
	// UnitAdd is the vector integer add/logical unit.
	UnitAdd Unit = iota
	// UnitMul is the vector multiply unit.
	UnitMul
	// UnitShift is the vector shift unit.
	UnitShift
	// UnitLoad is a memory load port.
	UnitLoad
	// UnitStore is a memory store port.
	UnitStore
	numUnits
)

// String implements fmt.Stringer.
func (u Unit) String() string {
	switch u {
	case UnitAdd:
		return "add"
	case UnitMul:
		return "mul"
	case UnitShift:
		return "shift"
	case UnitLoad:
		return "load"
	case UnitStore:
		return "store"
	}
	return fmt.Sprintf("unit(%d)", int(u))
}

// Config describes one processor's vector unit.
type Config struct {
	// VL is the vector register length in elements.
	VL int
	// Copies[u] is the number of functional units of each class; memory
	// classes count ports. Zero entries default to 1.
	Copies [5]int
	// Chaining allows a dependent instruction to overlap its producer
	// within a strip. Without chaining each instruction finishes its
	// strip before the next begins.
	Chaining bool
	// Startup is the per-instruction pipeline fill cost in cycles
	// (applied once per strip per instruction when not hidden by
	// chaining; a single aggregate term in this model).
	Startup float64
}

// J90Unit returns the vector-unit configuration of the simulated J90:
// VL=64, one unit per class, one load and one store port, chaining on.
func J90Unit() Config {
	return Config{VL: 64, Chaining: true, Startup: 5}
}

// C90Unit returns the configuration of the simulated C90: VL=128, two
// load ports (the C90 could sustain two loads and a store per clock),
// chaining on.
func C90Unit() Config {
	c := Config{VL: 128, Chaining: true, Startup: 5}
	c.Copies[UnitLoad] = 2
	return c
}

func (c Config) copies(u Unit) int {
	if c.Copies[u] <= 0 {
		return 1
	}
	return c.Copies[u]
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.VL <= 0 {
		return fmt.Errorf("pipe: VL=%d", c.VL)
	}
	if c.Startup < 0 {
		return fmt.Errorf("pipe: negative startup")
	}
	return nil
}

// Instr is one vector instruction in a kernel.
type Instr struct {
	Unit Unit
	// Name is for diagnostics only.
	Name string
}

// Kernel is a straight-line vector instruction sequence applied to every
// element of a stream (e.g. the body of a vectorized loop).
type Kernel []Instr

// Common kernel builders.

// ElementwiseKernel returns a kernel with the given per-element
// instruction mix: loads inputs, does the arithmetic, stores the result.
func ElementwiseKernel(loads, muls, adds, shifts, stores int) Kernel {
	var k Kernel
	for i := 0; i < loads; i++ {
		k = append(k, Instr{UnitLoad, "vload"})
	}
	for i := 0; i < muls; i++ {
		k = append(k, Instr{UnitMul, "vmul"})
	}
	for i := 0; i < adds; i++ {
		k = append(k, Instr{UnitAdd, "vadd"})
	}
	for i := 0; i < shifts; i++ {
		k = append(k, Instr{UnitShift, "vshift"})
	}
	for i := 0; i < stores; i++ {
		k = append(k, Instr{UnitStore, "vstore"})
	}
	return k
}

// HashKernel returns the vectorized evaluation kernel of a polynomial
// hash with the given operation counts (see hashfn.OpCounts): load the
// address stream, do the arithmetic, keep the result in register (no
// store; the consumer chains from it).
func HashKernel(muls, adds, shifts int) Kernel {
	var k Kernel
	k = append(k, Instr{UnitLoad, "vload addr"})
	for i := 0; i < muls; i++ {
		k = append(k, Instr{UnitMul, "vmul"})
	}
	for i := 0; i < adds; i++ {
		k = append(k, Instr{UnitAdd, "vadd"})
	}
	for i := 0; i < shifts; i++ {
		k = append(k, Instr{UnitShift, "vshift"})
	}
	return k
}

// Cost reports the simulated execution of a kernel over n elements.
type Cost struct {
	Cycles     float64
	Strips     int
	Bottleneck Unit // the unit class that bounds throughput
}

// CyclesPerElement returns the throughput figure.
func (c Cost) CyclesPerElement(n int) float64 {
	if n == 0 {
		return 0
	}
	return c.Cycles / float64(n)
}

// Run simulates kernel k over n elements on unit cfg.
//
// With chaining, a strip's cost is bounded by the busiest unit class:
// each class u with m_u instructions and c_u copies needs
// ceil(m_u/c_u)*VL cycles per strip, all classes overlapping, plus one
// startup per strip (the chain fill). Without chaining the strip is the
// serial sum over instructions of VL + startup.
func Run(cfg Config, k Kernel, n int) (Cost, error) {
	if err := cfg.Validate(); err != nil {
		return Cost{}, err
	}
	if n < 0 {
		return Cost{}, fmt.Errorf("pipe: n=%d", n)
	}
	var counts [numUnits]int
	for _, ins := range k {
		if ins.Unit < 0 || ins.Unit >= numUnits {
			return Cost{}, fmt.Errorf("pipe: bad unit %d in %q", ins.Unit, ins.Name)
		}
		counts[ins.Unit]++
	}
	strips := (n + cfg.VL - 1) / cfg.VL
	cost := Cost{Strips: strips}
	if n == 0 || len(k) == 0 {
		return cost, nil
	}

	if cfg.Chaining {
		perStrip := 0.0
		for u := Unit(0); u < numUnits; u++ {
			passes := (counts[u] + cfg.copies(u) - 1) / cfg.copies(u)
			t := float64(passes * cfg.VL)
			if t > perStrip {
				perStrip = t
				cost.Bottleneck = u
			}
		}
		lastStripVL := n - (strips-1)*cfg.VL
		// Full strips at perStrip; the final partial strip at its
		// proportional cost; one startup per strip.
		cost.Cycles = float64(strips-1)*perStrip +
			perStrip*float64(lastStripVL)/float64(cfg.VL) +
			float64(strips)*cfg.Startup
		return cost, nil
	}

	// Unchained: serial instruction execution per strip.
	perFull := 0.0
	for u := Unit(0); u < numUnits; u++ {
		passes := (counts[u] + cfg.copies(u) - 1) / cfg.copies(u)
		perFull += float64(passes * cfg.VL)
	}
	lastStripVL := n - (strips-1)*cfg.VL
	cost.Cycles = float64(strips-1)*perFull +
		perFull*float64(lastStripVL)/float64(cfg.VL) +
		float64(strips*len(k))*cfg.Startup
	// Bottleneck is meaningless serially; report the largest class.
	best := 0
	for u := Unit(0); u < numUnits; u++ {
		if counts[u] > best {
			best = counts[u]
			cost.Bottleneck = u
		}
	}
	return cost, nil
}
