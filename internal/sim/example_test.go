package sim_test

import (
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/sim"
)

// Simulate a maximum-contention scatter and compare against the model.
func ExampleRun() {
	m := core.J90()
	n := 1024
	pt := core.NewPattern(patterns.AllSame(n, 0), m.Procs)
	r, err := sim.Run(sim.Config{Machine: m}, pt)
	if err != nil {
		panic(err)
	}
	prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
	fmt.Printf("simulated %.0f, predicted %.0f cycles\n", r.Cycles, m.PredictDXBSP(prof))
	fmt.Printf("one bank served %d requests\n", r.MaxBankServed)
	// Output:
	// simulated 14336, predicted 14336 cycles
	// one bank served 1024 requests
}

// The cached-DRAM bank extension collapses repeated hits on one row.
func ExampleConfig_bankCache() {
	m := core.J90()
	pt := core.NewPattern(patterns.AllSame(1024, 0), m.Procs)
	plain, _ := sim.Run(sim.Config{Machine: m}, pt)
	cached, _ := sim.Run(sim.Config{Machine: m, BankCacheLines: 4}, pt)
	fmt.Printf("row hits: %d, speedup ≈ %.0fx\n",
		cached.RowHits, plain.Cycles/cached.Cycles)
	// Output:
	// row hits: 1023, speedup ≈ 14x
}
