package sim_test

import (
	"context"
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/sim"
)

// Simulate a maximum-contention scatter and compare against the model.
func ExampleRun() {
	m := core.J90()
	n := 1024
	pt := core.NewPattern(patterns.AllSame(n, 0), m.Procs)
	r, err := sim.Run(sim.Config{Machine: m}, pt)
	if err != nil {
		panic(err)
	}
	prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
	fmt.Printf("simulated %.0f, predicted %.0f cycles\n", r.Cycles, m.PredictDXBSP(prof))
	fmt.Printf("one bank served %d requests\n", r.MaxBankServed)
	// Output:
	// simulated 14336, predicted 14336 cycles
	// one bank served 1024 requests
}

// Holding a pooled engine across runs amortizes the simulator's internal
// allocations over a whole sweep; each Run is byte-identical to sim.Run.
func ExampleAcquireEngine() {
	e := sim.AcquireEngine()
	defer sim.ReleaseEngine(e)
	m := core.J90()
	for _, k := range []int{1, 16, 1024} {
		pt := core.NewPattern(patterns.Contention(1024, k, 1), m.Procs)
		r, err := e.Run(context.Background(), sim.Config{Machine: m}, pt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("k=%-4d %5.0f cycles\n", k, r.Cycles)
	}
	// Output:
	// k=1      141 cycles
	// k=16     231 cycles
	// k=1024 14336 cycles
}

// The DRAM discipline models open-row hits against row conflicts: a
// sequential scatter walks each bank's rows in order, so most accesses hit
// the open row and only row crossings pay the miss penalty.
func ExampleBankConfig() {
	m := core.J90()
	pt := core.NewPattern(patterns.Strided(8192, 0, 1), m.Procs)
	r, err := sim.Run(sim.Config{Machine: m,
		Bank: sim.BankConfig{Discipline: sim.DRAM, RowWords: 4096}}, pt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("row hits %d, row conflicts %d\n", r.RowHits, r.RowConflicts)
	// Output:
	// row hits 7168, row conflicts 1024
}

// Under the GPUShared discipline a 32-lane warp issues together over 32
// word-interleaved banks; lanes that collide on a bank serialize as
// replays. Odd word strides are conflict-free, power-of-two strides
// serialize gcd(stride, 32) lanes per bank.
func ExampleBankConfig_gpuShared() {
	sm := core.Machine{Name: "SM", Procs: 1, Banks: 32, D: 1, G: 1, L: 2}
	for _, stride := range []uint64{1, 2, 32} {
		addrs := make([]uint64, 32) // one warp, byte addresses, 4-byte words
		for i := range addrs {
			addrs[i] = uint64(i) * stride * 4
		}
		r, err := sim.Run(sim.Config{Machine: sm,
			Bank: sim.BankConfig{Discipline: sim.GPUShared}}, core.NewPattern(addrs, 1))
		if err != nil {
			panic(err)
		}
		fmt.Printf("stride %2d: %2d replays\n", stride, r.WarpReplays)
	}
	// Output:
	// stride  1:  0 replays
	// stride  2: 16 replays
	// stride 32: 31 replays
}

// The cached-DRAM bank extension collapses repeated hits on one row.
func ExampleConfig_bankCache() {
	m := core.J90()
	pt := core.NewPattern(patterns.AllSame(1024, 0), m.Procs)
	plain, _ := sim.Run(sim.Config{Machine: m}, pt)
	cached, _ := sim.Run(sim.Config{Machine: m, BankCacheLines: 4}, pt)
	fmt.Printf("row hits: %d, speedup ≈ %.0fx\n",
		cached.RowHits, plain.Cycles/cached.Cycles)
	// Output:
	// row hits: 1023, speedup ≈ 14x
}
