// Package sim is a deterministic, cycle-level, discrete-event simulator of
// the memory system of a high-bandwidth shared-memory multiprocessor — the
// stand-in for the Cray C90 and J90 on which the paper's experiments ran.
//
// # The simulated machine
//
//   - p processors, each issuing the requests of a bulk (vectorized)
//     scatter/gather in order, one injection every g cycles;
//   - a network that delivers a request to its memory bank after a fixed
//     transit delay, optionally passing through one of a small number of
//     network sections, each of which can accept at most one request every
//     SectionGap cycles (this finite section bandwidth reproduces the
//     paper's "version (c)" congestion anomaly);
//   - x*p memory banks, each a server that is busy for a service time per
//     request (optionally combining simultaneous requests to the same
//     address, which the paper's machines do NOT do — the switch exists for
//     the ablation study);
//   - responses that return to the issuing processor after the same transit
//     delay, closing the loop when a per-processor window of outstanding
//     requests is configured.
//
// The simulator is event-driven with deterministic tie-breaking, so a given
// configuration and pattern always produce the identical cycle count.
//
// # Bank service disciplines
//
// How a bank turns an arrival into a service time and a completion is a
// pluggable discipline, selected by Config.Bank (see BankConfig):
//
//   - FIFO (the zero value): the paper's bank — every access holds the bank
//     for d cycles, in arrival order. With CacheLines > 0 it becomes the
//     Hsu–Smith cached-DRAM ablation (row-buffer hits served in HitDelay).
//   - DRAM: an explicit row-buffer model — open-row hits cost HitDelay, row
//     conflicts cost MissDelay, and banks optionally share per-group issue
//     bandwidth (Groups/GroupGap), as in DDR bank groups.
//   - Regulated: each bank may serve at most RegBudget requests per
//     RegWindow cycles; overdraft defers service to the next window. This
//     models bandwidth regulation / QoS throttling at the controller.
//   - GPUShared: a GPU shared-memory model — 32-lane warps issue together
//     over word-interleaved banks (bank = addr/4 mod banks), and lanes that
//     conflict on a bank serialize as warp replays.
//
// Dispatch is resolved once per Engine.Reset and the event loop switches on
// a discipline tag, so adding disciplines costs the FIFO hot path nothing;
// TestEngineReuseZeroAllocs and the SimScatter64K benchmark gate pin this.
// RunReference implements every discipline independently as a per-clock
// oracle, and differential fuzzing keeps the two in agreement.
//
// # Entry points
//
// Run simulates one superstep; RunSupersteps chains several with a barrier
// between each. Both are thin wrappers over their context variants
// (RunContext, RunSuperstepsContext), which add cooperative cancellation.
// These entry points execute on pooled engines, so steady-state runs
// allocate nothing.
//
// Callers that manage their own reuse — a benchmark harness, a worker pool
// with per-worker engines — can hold an Engine directly: NewEngine for an
// unpooled instance, or AcquireEngine/ReleaseEngine to borrow from the
// package pool that Run itself uses.
package sim
