package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

// The event queue must pop events in exactly the (time, kind, seq) order
// the old container/heap implementation used — the engine's byte-identical
// determinism rests on it.

func TestEventQueueOrdersLikeSort(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		g := rng.New(seed)
		n := int(nRaw%500) + 1
		events := make([]event, n)
		for i := range events {
			// Deliberately collide times and kinds so the tie-breaks are
			// exercised; seq stays unique as in the engine.
			events[i] = event{
				time: float64(g.Intn(16)),
				kind: eventKind(g.Intn(5)),
				seq:  i,
				proc: int32(g.Intn(8)),
			}
		}
		var q eventQueue
		q.init(0) // force growth from empty
		for _, ev := range events {
			q.push(ev)
		}
		want := append([]event(nil), events...)
		sort.Slice(want, func(i, j int) bool { return eventLess(&want[i], &want[j]) })
		for i := range want {
			got := q.pop()
			if got != want[i] {
				return false
			}
		}
		return q.len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEventQueueInterleavedPushPop(t *testing.T) {
	// Pops interleaved with pushes must always yield the current minimum.
	g := rng.New(42)
	var q eventQueue
	q.init(4)
	live := 0
	lastPopped := event{time: -1}
	seq := 0
	for step := 0; step < 5000; step++ {
		if live == 0 || g.Intn(3) != 0 {
			seq++
			q.push(event{time: float64(g.Intn(64)), kind: eventKind(g.Intn(5)), seq: seq})
			live++
		} else {
			ev := q.pop()
			live--
			// A popped event may not precede an event popped before a push
			// that could reorder — but the queue-wide invariant that holds
			// unconditionally is: ev is <= everything still queued.
			for i := 0; i < q.len(); i++ {
				if eventLess(&q.ev[i], &ev) {
					t.Fatalf("step %d: popped %+v but %+v still queued", step, ev, q.ev[i])
				}
			}
			_ = lastPopped
			lastPopped = ev
		}
	}
}

func TestEventLessTotalOrderFields(t *testing.T) {
	a := event{time: 1, kind: evInject, seq: 5}
	b := event{time: 2, kind: evInject, seq: 1}
	if !eventLess(&a, &b) {
		t.Error("earlier time must win")
	}
	c := event{time: 1, kind: evComplete, seq: 1}
	if !eventLess(&a, &c) {
		t.Error("lower kind must win on equal time")
	}
	d := event{time: 1, kind: evInject, seq: 6}
	if !eventLess(&a, &d) || eventLess(&d, &a) {
		t.Error("lower seq must win on equal time and kind")
	}
}
