package sim

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

// Property-based tests of the simulator's global invariants.

func randPattern(seed uint64, nRaw uint16, m core.Machine) core.Pattern {
	n := int(nRaw%2000) + 1
	g := rng.New(seed)
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = g.Uint64n(1 << 20)
	}
	return core.NewPattern(addrs, m.Procs)
}

// Conservation: every request is serviced exactly once (no combining),
// and busy time equals services * d.
func TestPropertyConservation(t *testing.T) {
	m := testMachine()
	f := func(seed uint64, nRaw uint16) bool {
		pt := randPattern(seed, nRaw, m)
		r, err := Run(Config{Machine: m}, pt)
		if err != nil {
			return false
		}
		if r.BankServices != pt.N() || r.Requests != pt.N() {
			return false
		}
		return r.BankBusy == float64(pt.N())*m.D
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Lower bounds: completion time is at least the issue-rate bound and at
// least the hottest bank's service demand.
func TestPropertyLowerBounds(t *testing.T) {
	m := testMachine()
	f := func(seed uint64, nRaw uint16) bool {
		pt := randPattern(seed, nRaw, m)
		prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
		r, err := Run(Config{Machine: m}, pt)
		if err != nil {
			return false
		}
		if r.Cycles < m.D*float64(prof.MaxK)-1e-9 {
			return false
		}
		return r.Cycles >= m.G*float64(prof.MaxH)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Upper bound: completion never exceeds full serialization at one bank
// plus the pipeline fill.
func TestPropertyUpperBound(t *testing.T) {
	m := testMachine()
	f := func(seed uint64, nRaw uint16) bool {
		pt := randPattern(seed, nRaw, m)
		r, err := Run(Config{Machine: m}, pt)
		if err != nil {
			return false
		}
		serial := m.D*float64(pt.N()) + m.G*float64(pt.N()) + 2*m.L + 1
		return r.Cycles <= serial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Monotonicity in d: raising the bank delay never speeds a pattern up.
func TestPropertyMonotoneInDelay(t *testing.T) {
	base := testMachine()
	f := func(seed uint64, nRaw uint16) bool {
		pt := randPattern(seed, nRaw, base)
		prev := -1.0
		for _, d := range []float64{1, 2, 4, 8} {
			m := base
			m.D = d
			r, err := Run(Config{Machine: m}, pt)
			if err != nil {
				return false
			}
			if r.Cycles < prev-1e-9 {
				return false
			}
			prev = r.Cycles
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// The (d,x)-BSP prediction is always within a constant factor of the
// simulation for patterns without module-map pathologies.
func TestPropertyModelEnvelope(t *testing.T) {
	m := core.J90()
	f := func(seed uint64, nRaw uint16) bool {
		pt := randPattern(seed, nRaw, m)
		prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
		r, err := Run(Config{Machine: m}, pt)
		if err != nil {
			return false
		}
		pred := m.PredictDXBSP(prof)
		ratio := r.Cycles / pred
		return ratio > 0.5 && ratio < 3.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Combining preserves per-address last-writer semantics is a vector-layer
// concern; at the sim layer, combining must never serve MORE services
// than requests, and without duplicates it changes nothing.
func TestPropertyCombiningBounds(t *testing.T) {
	m := testMachine()
	f := func(seed uint64, nRaw uint16) bool {
		pt := randPattern(seed, nRaw, m)
		plain, err := Run(Config{Machine: m}, pt)
		if err != nil {
			return false
		}
		comb, err := Run(Config{Machine: m, Combining: true}, pt)
		if err != nil {
			return false
		}
		if comb.BankServices > plain.BankServices {
			return false
		}
		return comb.Cycles <= plain.Cycles+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Permutation patterns (all addresses distinct, spread) complete in
// near-bandwidth time on a bandwidth-matched machine.
func TestPropertyPermutationFast(t *testing.T) {
	m := core.C90() // x=128 >> d=6
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 4096
		perm := g.Perm(n)
		addrs := make([]uint64, n)
		for i, v := range perm {
			addrs[i] = uint64(v)
		}
		pt := core.NewPattern(addrs, m.Procs)
		r, err := Run(Config{Machine: m}, pt)
		if err != nil {
			return false
		}
		bound := m.G * float64(n) / float64(m.Procs)
		return r.Cycles <= bound*1.3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
