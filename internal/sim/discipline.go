package sim

import (
	"fmt"
	"math/bits"

	"dxbsp/internal/core"
)

// Discipline selects the bank service discipline: the rule deciding how
// long a request occupies its bank and when a deliverable request may
// start service. The paper's machines are plain FIFO servers busy for d
// cycles per request; the other disciplines open the same (p, x, d, g, L)
// skeleton to modern-memory scenarios.
//
// Dispatch is resolved once per Engine.Reset into a tag the event loop
// switches on — never an interface call per event — so every discipline
// inherits the engine's allocation-free steady state (see DESIGN.md §12).
type Discipline uint8

const (
	// FIFO is the paper's bank model: each service occupies the bank for
	// d cycles (or Bank.HitDelay on a row-buffer hit when Bank.CacheLines
	// enables the HS93 cached-DRAM ablation). The zero value, so legacy
	// configs run unchanged.
	FIFO Discipline = iota

	// DRAM is a row-buffer DRAM model after Kim et al.: each bank keeps
	// Bank.CacheLines open rows; a hit is serviced in Bank.HitDelay
	// cycles, a row conflict in Bank.MissDelay. Banks may additionally be
	// partitioned into Bank.Groups bank groups whose shared internal bus
	// admits one service start per Bank.GroupGap cycles.
	DRAM

	// Regulated is a bandwidth-regulated bank after Sullivan et al.: each
	// bank may start at most Bank.RegBudget services per Bank.RegWindow
	// cycles; a request arriving at an exhausted bank is deferred to the
	// next regulation window.
	Regulated

	// GPUShared is a GPU shared-memory model (SNIPPETS.md puzzle 32):
	// word-interleaved banks with bank = (addr/4) % banks, warp-synchronous
	// issue — each processor injects Bank.WarpSize consecutive requests as
	// one warp and issues the next warp only after every lane of the
	// current one has completed — and bank conflicts serialized as warp
	// replays. Requires the open loop (Window == 0) and no Combining.
	GPUShared
)

// Disciplines lists every discipline in tag order.
func Disciplines() []Discipline {
	return []Discipline{FIFO, DRAM, Regulated, GPUShared}
}

// String returns the canonical lower-case name used by CLI flags and the
// runner's cache fingerprint.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case DRAM:
		return "dram"
	case Regulated:
		return "regulated"
	case GPUShared:
		return "gpu"
	default:
		return fmt.Sprintf("discipline(%d)", uint8(d))
	}
}

// ParseDiscipline maps a CLI name to its Discipline. It accepts the
// canonical String names plus the common aliases "gpushared" and
// "gpu-shared".
func ParseDiscipline(s string) (Discipline, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "dram":
		return DRAM, nil
	case "regulated":
		return Regulated, nil
	case "gpu", "gpushared", "gpu-shared":
		return GPUShared, nil
	default:
		return FIFO, fmt.Errorf("sim: unknown discipline %q (want fifo, dram, regulated or gpu)", s)
	}
}

// BankConfig parameterizes the bank service discipline. Every field is a
// scalar so Config stays comparable; a zero field means "unset — apply
// the discipline's documented default" (Normalize fills them in), which
// is what makes a genuine 1-word row representable: RowWords: 1 is an
// explicit setting, RowWords: 0 the request for the default.
type BankConfig struct {
	Discipline Discipline

	// CacheLines is the number of rows each bank keeps open (LRU).
	// Under FIFO, 0 disables row buffers entirely (the paper's machines)
	// and > 0 enables the HS93 cached-DRAM ablation. Under DRAM it
	// defaults to 1 (a single open row per bank).
	CacheLines int

	// HitDelay is the service time of a row-buffer hit (FIFO with
	// CacheLines > 0, and DRAM). Defaults to 1.
	HitDelay float64

	// RowWords is the row size in words: addresses sharing
	// addr / RowWords are in the same row. Must be a power of two.
	// 0 means unset and defaults to 32; RowWords: 1 is a genuine
	// one-word row.
	RowWords int

	// MissDelay is the DRAM row-conflict service time. 0 means unset and
	// defaults to Machine.D.
	MissDelay float64

	// Groups partitions the banks into that many bank groups (DRAM only);
	// 0 disables grouping. Banks are grouped contiguously,
	// ceil(Banks/Groups) per group.
	Groups int

	// GroupGap is the minimum spacing between service starts within one
	// bank group (DRAM only; meaningful when Groups > 0).
	GroupGap float64

	// RegWindow is the regulation window length in cycles (Regulated
	// only). 0 means unset and defaults to 4*Machine.D.
	RegWindow float64

	// RegBudget is the number of service starts each bank may make per
	// regulation window (Regulated only). 0 means unset and defaults
	// to 2.
	RegBudget int

	// WarpSize is the number of consecutive requests a processor issues
	// as one warp (GPUShared only). 0 means unset and defaults to 32.
	WarpSize int
}

// normalize applies the per-discipline defaults. Idempotent: normalizing
// a normalized BankConfig is the identity.
func (b BankConfig) normalize(m core.Machine) BankConfig {
	switch b.Discipline {
	case FIFO:
		if b.CacheLines > 0 {
			if b.HitDelay == 0 {
				b.HitDelay = 1
			}
			if b.RowWords == 0 {
				b.RowWords = 32
			}
		}
	case DRAM:
		if b.CacheLines == 0 {
			b.CacheLines = 1
		}
		if b.HitDelay == 0 {
			b.HitDelay = 1
		}
		if b.RowWords == 0 {
			b.RowWords = 32
		}
		if b.MissDelay == 0 {
			b.MissDelay = m.D
		}
	case Regulated:
		if b.RegWindow == 0 {
			b.RegWindow = 4 * m.D
		}
		if b.RegBudget == 0 {
			b.RegBudget = 2
		}
	case GPUShared:
		if b.WarpSize == 0 {
			b.WarpSize = 32
		}
	}
	return b
}

// validate checks the (normalized) bank sub-config against the rest of
// the configuration. Knobs set on a discipline that does not read them
// are rejected rather than silently ignored, so a typo'd config fails
// loudly instead of simulating something else.
func (c Config) validateBank() error {
	b := c.Bank
	if b.Discipline > GPUShared {
		return &ConfigError{Field: "Bank.Discipline", Reason: fmt.Sprintf("unknown discipline tag %d", b.Discipline)}
	}
	if b.CacheLines < 0 {
		return &ConfigError{Field: "Bank.CacheLines", Reason: fmt.Sprintf("must be >= 0, got %d", b.CacheLines)}
	}
	if b.HitDelay < 0 {
		return &ConfigError{Field: "Bank.HitDelay", Reason: fmt.Sprintf("must be >= 0, got %g", b.HitDelay)}
	}
	if b.RowWords < 0 || (b.RowWords > 0 && b.RowWords&(b.RowWords-1) != 0) {
		return &ConfigError{Field: "Bank.RowWords", Reason: fmt.Sprintf("must be 0 (default) or a power of two, got %d", b.RowWords)}
	}
	if b.Discipline != DRAM {
		switch {
		case b.MissDelay != 0:
			return &ConfigError{Field: "Bank.MissDelay", Reason: "only meaningful for the DRAM discipline"}
		case b.Groups != 0:
			return &ConfigError{Field: "Bank.Groups", Reason: "only meaningful for the DRAM discipline"}
		case b.GroupGap != 0:
			return &ConfigError{Field: "Bank.GroupGap", Reason: "only meaningful for the DRAM discipline"}
		}
	}
	if b.Discipline != Regulated && (b.RegWindow != 0 || b.RegBudget != 0) {
		return &ConfigError{Field: "Bank.RegWindow", Reason: "regulation knobs are only meaningful for the Regulated discipline"}
	}
	if b.Discipline != GPUShared && b.WarpSize != 0 {
		return &ConfigError{Field: "Bank.WarpSize", Reason: "only meaningful for the GPUShared discipline"}
	}
	switch b.Discipline {
	case DRAM:
		switch {
		case b.MissDelay < 0:
			return &ConfigError{Field: "Bank.MissDelay", Reason: fmt.Sprintf("must be >= 0, got %g", b.MissDelay)}
		case b.Groups < 0 || b.Groups > c.Machine.Banks:
			return &ConfigError{Field: "Bank.Groups", Reason: fmt.Sprintf("must be in [0, Banks=%d], got %d", c.Machine.Banks, b.Groups)}
		case b.GroupGap < 0:
			return &ConfigError{Field: "Bank.GroupGap", Reason: fmt.Sprintf("must be >= 0, got %g", b.GroupGap)}
		case b.GroupGap > 0 && b.Groups == 0:
			return &ConfigError{Field: "Bank.GroupGap", Reason: "requires Bank.Groups > 0"}
		}
	case Regulated:
		switch {
		case b.CacheLines != 0:
			return &ConfigError{Field: "Bank.CacheLines", Reason: "row buffers are not supported under the Regulated discipline"}
		case b.RegWindow <= 0:
			return &ConfigError{Field: "Bank.RegWindow", Reason: fmt.Sprintf("must be > 0, got %g", b.RegWindow)}
		case b.RegBudget <= 0:
			return &ConfigError{Field: "Bank.RegBudget", Reason: fmt.Sprintf("must be > 0, got %d", b.RegBudget)}
		}
	case GPUShared:
		switch {
		case b.CacheLines != 0:
			return &ConfigError{Field: "Bank.CacheLines", Reason: "row buffers are not supported under the GPUShared discipline"}
		case b.WarpSize <= 0:
			return &ConfigError{Field: "Bank.WarpSize", Reason: fmt.Sprintf("must be > 0, got %d", b.WarpSize)}
		case c.Window != 0:
			return &ConfigError{Field: "Window", Reason: "GPUShared issue is warp-synchronous; Window must be 0"}
		case c.Combining:
			return &ConfigError{Field: "Combining", Reason: "not supported under the GPUShared discipline"}
		case c.UseSections && c.Machine.Sections > 1:
			return &ConfigError{Field: "UseSections", Reason: "network sections are not modeled under the GPUShared discipline"}
		}
	}
	return nil
}

// rowShiftOf returns log2 of the (power-of-two, validated) row size, the
// shift that maps an address to its row tag.
func rowShiftOf(rowWords int) uint {
	if rowWords <= 1 {
		return 0
	}
	return uint(bits.TrailingZeros(uint(rowWords)))
}
