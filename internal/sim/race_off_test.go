//go:build !race

package sim

// raceEnabled mirrors race_on_test.go for non-race builds.
const raceEnabled = false
