package sim

// eventQueue is the engine's pending-event set: a monomorphic 4-ary
// min-heap over concrete event values, ordered by (time, kind, seq).
//
// It replaces container/heap, which costs an interface{} boxing
// allocation on every Push and an interface unbox on every Pop — on the
// hot path that was one allocation per simulated event. The ordering key
// is a strict total order (every event has a distinct (kind, seq) pair:
// seq identifies a request or an injection slot, and each request
// produces at most one event of each kind), so ANY correct heap pops
// events in exactly the same sequence and the simulation stays
// byte-identical across heap implementations. This invariant is load-
// bearing: the runner's memo cache and checkpoint journal key on the
// simulated cycle counts. See DESIGN.md §9.
//
// 4-ary beats binary here: events are wide (48 bytes), so sift-down
// comparisons are cache-resident within a node's children and the tree
// is half as deep, trading a few extra comparisons for fewer swaps of
// wide values.
type eventQueue struct {
	ev []event
}

// init preallocates capacity so that a steady-state run performs no heap
// growth. Exceeding the hint is not an error — push grows the backing
// array by amortized doubling.
func (q *eventQueue) init(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	q.ev = make([]event, 0, capacity)
}

func (q *eventQueue) len() int { return len(q.ev) }

// eventLess is the (time, kind, seq) ordering shared by every event
// structure in the engine. Do not reorder the tie-breaks: kind before
// seq makes a bank's completion visible before the arrival that would
// queue behind it at the same instant, which is what makes the engine
// agree with the time-stepped RunReference oracle.
func eventLess(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// push inserts e, sifting up.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(&q.ev[i], &q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

// pop removes and returns the minimum event. Call only when len() > 0.
func (q *eventQueue) pop() event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev = q.ev[:last]
	i := 0
	for {
		first := i<<2 + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if eventLess(&q.ev[c], &q.ev[min]) {
				min = c
			}
		}
		if !eventLess(&q.ev[min], &q.ev[i]) {
			break
		}
		q.ev[i], q.ev[min] = q.ev[min], q.ev[i]
		i = min
	}
	return top
}
