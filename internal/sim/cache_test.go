package sim

import (
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

// Tests for the cached-DRAM bank extension ([HS93]).

func TestBankCacheHotSpotCollapses(t *testing.T) {
	// All requests to one address: with a row buffer, only the first
	// access pays d; the rest hit at BankHitDelay.
	m := testMachine() // d = 6
	n := 512
	pt := core.NewPattern(constAddrs(n, 9), m.Procs)
	cold, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Run(Config{Machine: m, BankCacheLines: 4}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if hot.RowHits != n-1 {
		t.Errorf("RowHits = %d, want %d", hot.RowHits, n-1)
	}
	// Service cost drops from ~n*d to ~n*1.
	if hot.Cycles > cold.Cycles/3 {
		t.Errorf("cached hot spot %v vs uncached %v", hot.Cycles, cold.Cycles)
	}
}

func TestBankCacheRowGranularity(t *testing.T) {
	// Addresses within one 32-word row hit; addresses in different rows
	// alternate and (with 1 line) always miss.
	m := testMachine()
	sameRow := make([]uint64, 64)
	for i := range sameRow {
		sameRow[i] = uint64(i % 32) // one row at shift 5... all map to banks 0..31 though
	}
	// Use a single bank's row: addresses differing by banks*k keep the
	// same bank (64 banks), rows differ every 32 words.
	for i := range sameRow {
		sameRow[i] = 0 // same word: same row, same bank
	}
	pt := core.NewPattern(sameRow, m.Procs)
	r, err := Run(Config{Machine: m, BankCacheLines: 1}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowHits != len(sameRow)-1 {
		t.Errorf("same-row hits = %d, want %d", r.RowHits, len(sameRow)-1)
	}

	// Two alternating rows, one line: every access misses after the first
	// (thrash). Rows at addr 0 and addr 64*32 (same bank 0 under 64-bank
	// interleave, different rows).
	alt := make([]uint64, 64)
	for i := range alt {
		if i%2 == 0 {
			alt[i] = 0
		} else {
			alt[i] = 64 * 32
		}
	}
	pt = core.NewPattern(alt, 1) // single proc: strictly alternating arrival
	r, err = Run(Config{Machine: m, BankCacheLines: 1}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowHits != 0 {
		t.Errorf("thrash hits = %d, want 0", r.RowHits)
	}
	// With two lines both rows fit: all but the first two hit.
	r, err = Run(Config{Machine: m, BankCacheLines: 2}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowHits != len(alt)-2 {
		t.Errorf("2-line hits = %d, want %d", r.RowHits, len(alt)-2)
	}
}

func TestBankCacheOffByDefault(t *testing.T) {
	m := testMachine()
	pt := core.NewPattern(constAddrs(32, 5), m.Procs)
	r, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if r.RowHits != 0 {
		t.Errorf("RowHits = %d with caching disabled", r.RowHits)
	}
}

func TestBankCacheRandomPatternNeutral(t *testing.T) {
	// A wide random pattern rarely hits the row buffer, so caching should
	// neither help much nor hurt.
	m := testMachine()
	g := rng.New(4)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = g.Uint64n(1 << 30)
	}
	pt := core.NewPattern(addrs, m.Procs)
	off, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(Config{Machine: m, BankCacheLines: 4}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if on.Cycles > off.Cycles*1.01 {
		t.Errorf("caching hurt a random pattern: %v vs %v", on.Cycles, off.Cycles)
	}
	if float64(on.RowHits) > 0.05*float64(len(addrs)) {
		t.Errorf("implausible hit count %d on random pattern", on.RowHits)
	}
}

func TestBankCacheDeterministic(t *testing.T) {
	m := testMachine()
	g := rng.New(5)
	addrs := make([]uint64, 2000)
	for i := range addrs {
		addrs[i] = g.Uint64n(1 << 12)
	}
	pt := core.NewPattern(addrs, m.Procs)
	cfg := Config{Machine: m, BankCacheLines: 2, BankHitDelay: 2, BankRowShift: 4}
	a, err := Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic with caching: %+v vs %+v", a, b)
	}
}
