package sim

import (
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

// FuzzSimVsReference is the differential property test behind the engine
// rewrite: the event-driven engine and the independent time-stepped
// RunReference oracle must agree exactly — cycle for cycle — on every
// configuration in the oracle's supported subset (open loop, no
// combining, no sections, integral delays), over randomized machine
// shapes, every bank service discipline, and both uniform and
// conflict-heavy address patterns.
//
// Under `go test` the seed corpus runs as a regression suite; under
// `go test -fuzz FuzzSimVsReference ./internal/sim/` the mutator explores
// the (p, x, d, g, NetDelay, discipline, pattern) space.
func FuzzSimVsReference(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(7), uint8(4), uint8(0), uint8(3), uint16(200), uint8(0), uint8(0))
	f.Add(uint64(2), uint8(0), uint8(0), uint8(0), uint8(1), uint8(0), uint16(1), uint8(1), uint8(0))
	f.Add(uint64(3), uint8(7), uint8(15), uint8(11), uint8(3), uint8(15), uint16(999), uint8(2), uint8(0))
	f.Add(uint64(4), uint8(1), uint8(2), uint8(5), uint8(2), uint8(8), uint16(500), uint8(1), uint8(1))
	f.Add(uint64(5), uint8(5), uint8(1), uint8(1), uint8(0), uint8(0), uint16(333), uint8(2), uint8(2))
	f.Add(uint64(6), uint8(3), uint8(3), uint8(6), uint8(1), uint8(2), uint16(400), uint8(1), uint8(3))
	f.Add(uint64(7), uint8(2), uint8(4), uint8(2), uint8(0), uint8(4), uint16(600), uint8(0), uint8(4))
	f.Add(uint64(8), uint8(6), uint8(2), uint8(9), uint8(2), uint8(1), uint16(250), uint8(2), uint8(9))

	f.Fuzz(func(t *testing.T, seed uint64, pRaw, xRaw, dRaw, gRaw, ndRaw uint8, nRaw uint16, shape, discRaw uint8) {
		p := int(pRaw%8) + 1
		banks := p * (int(xRaw%16) + 1)
		d := float64(dRaw%12 + 1)
		g := float64(gRaw%4 + 1)
		nd := float64(ndRaw % 16)
		n := int(nRaw%1000) + 1

		rg := rng.New(seed)
		// Draw a bank discipline within the oracle's supported subset:
		// integral delays, no DRAM bank groups (the wheel-vs-heap
		// differential covers those), NetDelay >= 1 under GPUShared.
		var bank BankConfig
		switch discRaw % 5 {
		case 0: // the paper's FIFO bank
		case 1: // FIFO with the HS93 row-buffer ablation
			bank = BankConfig{
				CacheLines: 1 + rg.Intn(4),
				HitDelay:   float64(1 + rg.Intn(3)),
				RowWords:   1 << rg.Intn(7),
			}
		case 2: // row-buffer DRAM
			bank = BankConfig{
				Discipline: DRAM,
				CacheLines: 1 + rg.Intn(2),
				HitDelay:   float64(1 + rg.Intn(3)),
				MissDelay:  float64(1 + rg.Intn(16)),
				RowWords:   1 << rg.Intn(7),
			}
		case 3: // bandwidth-regulated banks
			bank = BankConfig{
				Discipline: Regulated,
				RegWindow:  float64(1 + rg.Intn(32)),
				RegBudget:  1 + rg.Intn(4),
			}
		case 4: // GPU shared memory
			bank = BankConfig{Discipline: GPUShared, WarpSize: 1 + rg.Intn(32)}
			if nd < 1 {
				nd = 1
			}
		}
		// L = 2*NetDelay keeps the explicit NetDelay and the Normalize
		// default (L/2) consistent, and keeps it integral for the oracle.
		m := core.Machine{Name: "fuzz", Procs: p, Banks: banks, D: d, G: g, L: 2 * nd}
		addrs := make([]uint64, n)
		for i := range addrs {
			switch shape % 3 {
			case 0: // uniform over a range much wider than the banks
				addrs[i] = rg.Uint64n(1 << 20)
			case 1: // conflict-heavy: a handful of hot locations
				addrs[i] = rg.Uint64n(uint64(banks)/4 + 1)
			default: // bank-bursty: long runs on one bank
				addrs[i] = uint64(banks) * uint64(i/8)
			}
		}
		pt := core.NewPattern(addrs, p)
		cfg := Config{Machine: m, NetDelay: nd, Bank: bank}

		ev, err := Run(cfg, pt)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		ref, err := RunReference(cfg, pt)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if ev.Cycles != ref.Cycles {
			t.Errorf("p=%d banks=%d d=%g g=%g nd=%g n=%d shape=%d disc=%s: engine %v cycles, reference %v",
				p, banks, d, g, nd, n, shape%3, bank.Discipline, ev.Cycles, ref.Cycles)
		}
		if ev.BankServices != ref.BankServices || ev.BankBusy != ref.BankBusy || ev.Requests != ref.Requests {
			t.Errorf("p=%d banks=%d d=%g g=%g nd=%g n=%d shape=%d disc=%s: accounting mismatch: engine %+v vs reference %+v",
				p, banks, d, g, nd, n, shape%3, bank.Discipline, ev, ref)
		}
		if ev.RowHits != ref.RowHits || ev.RowConflicts != ref.RowConflicts ||
			ev.ThrottleStalls != ref.ThrottleStalls || ev.ThrottleStallCycles != ref.ThrottleStallCycles ||
			ev.WarpReplays != ref.WarpReplays {
			t.Errorf("p=%d banks=%d d=%g g=%g nd=%g n=%d shape=%d disc=%s: discipline counters mismatch: engine %+v vs reference %+v",
				p, banks, d, g, nd, n, shape%3, bank.Discipline, ev, ref)
		}
	})
}
