package sim

import (
	"context"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
)

// TestWheelVsHeapDifferential is the tentpole equivalence check for the
// calendar-queue scheduler: the same engine run twice — once forced onto
// the retained 4-ary heap, once on the wheel — over a broad sweep of
// random (p, x, d, g, Window, NetDelay, sections, combining, discipline)
// configurations, asserting byte-identical Results. The pop order is
// load-bearing (memo cache, checkpoint journal key on cycle counts), so
// any divergence here is a correctness bug, not a tolerance question.
// Half the configs run a non-FIFO discipline with fully random knobs —
// including fractional delays and DRAM bank groups, which the
// time-stepped oracle cannot model — so this is the broadest coverage of
// the discipline hot paths.
func TestWheelVsHeapDifferential(t *testing.T) {
	g := rng.New(0xD1FFE12E)
	const configs = 160 // ≥ 64 per the regression contract, ~20 per discipline
	for i := 0; i < configs; i++ {
		p := 1 + g.Intn(16)
		x := 1 + g.Intn(16)
		m := core.Machine{
			Name:  "diff",
			Procs: p,
			Banks: p * x,
			// Fractional quarters exercise non-integer event times; the
			// wheel's power-of-two bucket width must floor them exactly.
			D: float64(1+g.Intn(48)) / 4,
			G: float64(1+g.Intn(16)) / 4,
			L: float64(g.Intn(64)) / 2,
		}
		if g.Intn(2) == 1 {
			m.Sections = 2 + g.Intn(6)
			if m.Sections > m.Banks {
				m.Sections = m.Banks
			}
			m.SectionGap = float64(1+g.Intn(8)) / 4
		}
		cfg := Config{
			Machine:     m,
			Window:      []int{0, 0, 1 + g.Intn(32)}[g.Intn(3)],
			NetDelay:    float64(g.Intn(32)) / 4,
			UseSections: m.Sections > 1,
			Combining:   g.Intn(4) == 0,
		}
		if g.Intn(4) == 0 {
			cfg.BankCacheLines = 1 + g.Intn(4)
			cfg.BankHitDelay = float64(1+g.Intn(4)) / 2
		}
		// Half the configs swap in a non-FIFO discipline; the draws respect
		// Validate's per-discipline knob rules (no legacy cache fields, and
		// GPUShared forbids windows, combining and sections).
		switch g.Intn(8) {
		case 0, 1:
			cfg.BankCacheLines, cfg.BankHitDelay = 0, 0
			cfg.Bank = BankConfig{
				Discipline: DRAM,
				CacheLines: 1 + g.Intn(3),
				HitDelay:   float64(1+g.Intn(8)) / 4,
				MissDelay:  float64(1+g.Intn(64)) / 4,
				RowWords:   1 << g.Intn(7),
			}
			if g.Intn(2) == 0 {
				cfg.Bank.Groups = 1 + g.Intn(cfg.Machine.Banks)
				cfg.Bank.GroupGap = float64(1+g.Intn(8)) / 4
			}
		case 2, 3:
			cfg.BankCacheLines, cfg.BankHitDelay = 0, 0
			cfg.Bank = BankConfig{
				Discipline: Regulated,
				RegWindow:  float64(1+g.Intn(64)) / 4,
				RegBudget:  1 + g.Intn(4),
			}
		case 4, 5:
			cfg.Machine.Sections, cfg.Machine.SectionGap = 0, 0
			cfg.Window, cfg.Combining, cfg.UseSections = 0, false, false
			cfg.BankCacheLines, cfg.BankHitDelay = 0, 0
			cfg.Bank = BankConfig{Discipline: GPUShared, WarpSize: 1 + g.Intn(32)}
		}
		n := 1 << (6 + g.Intn(6))
		pt := core.NewPattern(patterns.Uniform(n, 1<<20, g.Split()), p)

		var wheelE, heapE Engine
		heapE.eng.useHeap = true
		got, err := wheelE.Run(context.Background(), cfg, pt)
		if err != nil {
			t.Fatalf("config %d: wheel run: %v", i, err)
		}
		want, err := heapE.Run(context.Background(), cfg, pt)
		if err != nil {
			t.Fatalf("config %d: heap run: %v", i, err)
		}
		if got != want {
			t.Fatalf("config %d (%+v, n=%d): wheel and heap disagree:\n wheel: %+v\n heap:  %+v",
				i, cfg, n, got, want)
		}
	}
}

// TestWheelVsHeapQueueLevel drives the two queue implementations directly
// through a long random push/pop interleaving that respects the engine's
// scheduling discipline (pushes land at or after the last pop, within the
// horizon) and asserts the pop sequences are identical event for event.
// This exercises the wheel's cursor wrap and bitmap advance over many
// laps, which whole-engine runs only hit incidentally.
func TestWheelVsHeapQueueLevel(t *testing.T) {
	cfg := Config{Machine: core.Machine{Procs: 4, Banks: 16, D: 10, G: 1, L: 20}}.Normalize()
	h := schedHorizon(cfg) // 1 + 10 + 2*10 = 31

	g := rng.New(42)
	var w wheel
	w.reset(cfg, cfg.Machine.Procs)
	var q eventQueue
	q.init(0)

	last := 0.0
	seq := 0
	for step := 0; step < 200000; step++ {
		if q.len() == 0 || (w.len() < 256 && g.Intn(2) == 0) {
			seq++
			// Quantized offsets in [0, h) so times collide across pushes
			// and tie-breaking is exercised; strictly under the horizon.
			ev := event{
				time: last + float64(g.Intn(int(h*8)))/8,
				seq:  seq,
				kind: eventKind(g.Intn(5)),
				proc: int32(g.Intn(4)),
			}
			w.push(ev)
			q.push(ev)
			continue
		}
		got, want := w.pop(), q.pop()
		if got != want {
			t.Fatalf("step %d: wheel popped %+v, heap popped %+v", step, got, want)
		}
		last = got.time
	}
	for q.len() > 0 {
		got, want := w.pop(), q.pop()
		if got != want {
			t.Fatalf("drain: wheel popped %+v, heap popped %+v", got, want)
		}
	}
	if w.len() != 0 {
		t.Fatalf("wheel reports %d events after drain", w.len())
	}
}

// TestWheelPanics pins the wheel's refusal to misorder: scheduling outside
// the bounded horizon and popping an empty queue both panic rather than
// silently corrupting the pop order.
func TestWheelPanics(t *testing.T) {
	cfg := Config{Machine: core.Machine{Procs: 4, Banks: 16, D: 10, G: 1, L: 0}}.Normalize()

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}

	mustPanic("beyond horizon", func() {
		var w wheel
		w.reset(cfg, cfg.Machine.Procs)
		w.push(event{time: 1e9, seq: 1, kind: evInject})
	})
	mustPanic("into the past", func() {
		var w wheel
		w.reset(cfg, cfg.Machine.Procs)
		w.push(event{time: 8, seq: 1, kind: evInject})
		w.pop()
		w.push(event{time: 0, seq: 2, kind: evInject})
	})
	mustPanic("pop empty", func() {
		var w wheel
		w.reset(cfg, cfg.Machine.Procs)
		w.pop()
	})
}

// TestEngineReuseZeroAllocs pins the cross-run reuse contract: after one
// warm-up run, re-running the same shape on the same Engine performs zero
// allocations — the wheel buckets, server rings, processor slice and
// bookkeeping arrays are all retained and re-armed in place.
func TestEngineReuseZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement under -short")
	}
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<13, 1<<30, rng.New(7)), m.Procs)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"open-loop", Config{Machine: m}},
		{"windowed", Config{Machine: m, Window: 8}},
		{"sections", Config{Machine: m, UseSections: true}},
		{"dram", Config{Machine: m, Bank: BankConfig{Discipline: DRAM, Groups: 16, GroupGap: 0.5}}},
		{"regulated", Config{Machine: m, Bank: BankConfig{Discipline: Regulated}}},
		{"gpu", Config{Machine: m, Bank: BankConfig{Discipline: GPUShared}}},
	} {
		e := NewEngine()
		if _, err := e.Run(context.Background(), tc.cfg, pt); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := e.Run(context.Background(), tc.cfg, pt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per re-run on a warm engine, want 0", tc.name, allocs)
		}
	}
}

// TestEngineReuseAcrossShapes verifies that reusing one Engine across
// different machine shapes and feature sets — growing, shrinking,
// toggling caching and sections, surviving a cancelled run — always
// produces results byte-identical to a fresh engine's.
func TestEngineReuseAcrossShapes(t *testing.T) {
	g := rng.New(99)
	e := NewEngine()
	shapes := []Config{
		{Machine: core.Machine{Procs: 8, Banks: 64, D: 6, G: 1, L: 8}},
		{Machine: core.Machine{Procs: 2, Banks: 8, D: 3, G: 1, L: 0}, Window: 4},
		{Machine: core.Machine{Procs: 16, Banks: 256, D: 14, G: 1, L: 16, Sections: 8, SectionGap: 0.5}, UseSections: true},
		{Machine: core.Machine{Procs: 4, Banks: 32, D: 6, G: 2, L: 4}, BankCacheLines: 2},
		{Machine: core.Machine{Procs: 8, Banks: 64, D: 6, G: 1, L: 8}}, // back to the first shape, caching now off
	}
	for round := 0; round < 3; round++ {
		for i, cfg := range shapes {
			pt := core.NewPattern(patterns.Uniform(1<<10, 1<<20, g.Split()), cfg.Machine.Procs)
			got, err := e.Run(context.Background(), cfg, pt)
			if err != nil {
				t.Fatal(err)
			}
			var fresh Engine
			want, err := fresh.Run(context.Background(), cfg, pt)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("round %d shape %d: reused engine %+v, fresh engine %+v", round, i, got, want)
			}
		}
		// Abandon a run mid-flight so the next reset must clear stale
		// wheel contents; a cancelled context leaves events queued.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		pt := core.NewPattern(patterns.Uniform(1<<12, 1<<20, g.Split()), shapes[0].Machine.Procs)
		if _, err := e.Run(ctx, shapes[0], pt); err == nil {
			t.Fatal("cancelled run unexpectedly succeeded")
		}
	}
}
