package sim

// server is a FIFO service station — one memory bank or one network
// section. The waiting line is a growable ring buffer with power-of-two
// capacity, so enqueue/dequeue are mask-and-index with no allocation and
// no slice shifting in steady state.
//
// The previous implementation kept a plain slice and dequeued with
// `s.queue = s.queue[1:]`. That had two costs: every enqueue after a
// dequeue appended past the old elements (the backing array could never
// be reused, churning the allocator), and — worse — the re-slice pinned
// the FULL backing array for the life of the run, because the slice
// header kept pointing into it while head elements became unreachable
// garbage the collector could not free. The ring buffer removes both;
// TestEventLoopSteadyStateAllocs guards the fix.
type server struct {
	busy bool
	maxQ int // high-water mark of the waiting line (excludes in-service)

	buf  []request // ring storage; len(buf) is always zero or a power of two
	head int       // index of the oldest queued request
	n    int       // number of queued requests
}

// qlen returns the current waiting-line length.
func (s *server) qlen() int { return s.n }

// enqueue appends r to the waiting line.
func (s *server) enqueue(r request) {
	if s.n == len(s.buf) {
		s.grow(s.n + 1)
	}
	s.buf[(s.head+s.n)&(len(s.buf)-1)] = r
	s.n++
	if s.n > s.maxQ {
		s.maxQ = s.n
	}
}

// dequeue removes and returns the oldest queued request.
func (s *server) dequeue() (request, bool) {
	if s.n == 0 {
		return request{}, false
	}
	r := s.buf[s.head]
	s.head = (s.head + 1) & (len(s.buf) - 1)
	s.n--
	return r, true
}

// extractAddr removes every queued request for addr, appending them to
// out in FIFO order, and compacts the remainder without reordering. Used
// by the combining ablation; out is caller-owned scratch so the steady
// state stays allocation-free.
func (s *server) extractAddr(addr uint64, out []request) []request {
	if s.n == 0 {
		return out
	}
	mask := len(s.buf) - 1
	kept := 0
	for i := 0; i < s.n; i++ {
		r := s.buf[(s.head+i)&mask]
		if r.addr == addr {
			out = append(out, r)
		} else {
			s.buf[(s.head+kept)&mask] = r
			kept++
		}
	}
	s.n = kept
	return out
}

// grow relinearizes the ring into a buffer of at least need slots.
func (s *server) grow(need int) {
	capacity := 8
	for capacity < need {
		capacity <<= 1
	}
	buf := make([]request, capacity)
	if s.n > 0 {
		mask := len(s.buf) - 1
		for i := 0; i < s.n; i++ {
			buf[i] = s.buf[(s.head+i)&mask]
		}
	}
	s.buf = buf
	s.head = 0
}
