package sim

import (
	"context"
	"fmt"

	"dxbsp/internal/core"
)

// Engine is a reusable simulator instance. A fresh Engine behaves exactly
// like Run; the difference is lifecycle: Reset re-arms the same instance
// for another run while retaining every internal allocation — the
// calendar-queue buckets, the per-bank and per-section rings, the
// processor and bank bookkeeping slices — so a sweep that runs thousands
// of same-shaped simulations through one Engine allocates only on the
// first (TestEngineReuseZeroAllocs pins the second run at zero).
//
// An Engine is single-run at a time and not safe for concurrent use;
// pools (the runner keeps one per worker via sync.Pool) must hand an
// Engine to one goroutine at a time.
type Engine struct {
	eng engine

	// defMap caches the boxed default BankMap (interleave, or the GPU
	// word-interleaved map under the GPUShared discipline) so repeated
	// runs of a BankMap-less config do not re-box it into the interface
	// every Reset (one allocation per run otherwise). Engine-owned and
	// stateless, so it survives release and pins nothing.
	defMap   core.BankMap
	defBanks int
	defGPU   bool
}

// NewEngine returns an empty Engine. The first Run (or Reset) sizes its
// storage to the configuration; later runs reuse it whenever the shape
// still fits.
func NewEngine() *Engine { return &Engine{} }

// Reset validates cfg and pt and re-arms the engine for one run of pt
// under cfg, reusing retained storage. It performs the same checks as
// Run and returns the same errors. Callers normally use Run, which is
// Reset plus the event loop; Reset exists separately so a pool can
// pre-warm an engine's allocations ahead of the timed region.
func (E *Engine) Reset(cfg Config, pt core.Pattern) error {
	if err := cfg.Machine.Validate(); err != nil {
		return err
	}
	if cfg.BankMap == nil {
		gpu := cfg.Bank.Discipline == GPUShared
		if E.defMap == nil || E.defBanks != cfg.Machine.Banks || E.defGPU != gpu {
			if gpu {
				E.defMap = core.GPUSharedMap{Banks: cfg.Machine.Banks}
			} else {
				E.defMap = core.InterleaveMap{Banks: cfg.Machine.Banks}
			}
			E.defBanks = cfg.Machine.Banks
			E.defGPU = gpu
		}
		cfg.BankMap = E.defMap
	}
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if pt.Procs() > cfg.Machine.Procs {
		return fmt.Errorf("sim: pattern has %d processor streams but machine has %d processors",
			pt.Procs(), cfg.Machine.Procs)
	}
	E.eng.reset(cfg, pt)
	return nil
}

// Run resets the engine and simulates one superstep of pt under cfg,
// with the same cancellation contract as RunContext. Results are
// byte-identical to Run/RunContext for the same inputs regardless of
// what the engine simulated before.
func (E *Engine) Run(ctx context.Context, cfg Config, pt core.Pattern) (Result, error) {
	if err := E.Reset(cfg, pt); err != nil {
		return Result{}, err
	}
	return E.eng.simulate(ctx)
}

// release drops every reference the engine borrowed from its last run's
// inputs — the per-processor address slices, the probe, the bank map —
// so a pooled engine pins only its own arenas while parked, never the
// caller's pattern. The arenas themselves (wheel buckets, rings,
// bookkeeping slices) are deliberately kept; they are the point of
// pooling.
func (e *engine) release() {
	for i := range e.procs {
		e.procs[i].addrs = nil
	}
	e.rp = nil
	e.bm = nil
	e.cfg = Config{}
}

// reset re-arms e for one run of pt under the normalized, validated cfg.
// Every slice is reused when its capacity still fits the new shape and
// reinitialized over its full new length (not just the previously active
// region), so state from an earlier — possibly larger, possibly
// cancelled — run can never leak into this one.
func (e *engine) reset(cfg Config, pt core.Pattern) {
	e.cfg = cfg
	e.bm = cfg.BankMap
	e.bmKind, e.bmArg = resolveMap(cfg.BankMap)
	e.seq = 0
	e.lastDone = 0
	e.res = Result{}
	e.rp = nil
	if cfg.Probe != nil {
		e.rp = cfg.Probe.RunStart(cfg, pt)
	}

	// Resolve the discipline dispatch once; the event loop switches on
	// the tag and never takes an interface call per event. GPUShared is
	// the one discipline that needs per-request completions even in the
	// open loop (the warp barrier is driven from complete), so it opts
	// out of the collapsed fast path.
	b := cfg.Bank
	e.disc = b.Discipline
	e.openLoop = cfg.Window == 0 && b.Discipline != GPUShared
	e.warpSize = b.WarpSize

	// Row buffers (FIFO's HS93 ablation and the DRAM discipline). Row
	// storage is retained even across runs that have row buffers off
	// (rowsOn gates its use), so alternating configurations do not churn.
	e.rowsOn = b.CacheLines > 0
	e.rowLines = b.CacheLines
	e.rowShift = rowShiftOf(b.RowWords)
	if e.rowsOn {
		if cap(e.bankRows) >= cfg.Machine.Banks {
			e.bankRows = e.bankRows[:cfg.Machine.Banks]
			for i := range e.bankRows {
				e.bankRows[i] = e.bankRows[i][:0]
			}
		} else {
			e.bankRows = make([][]uint64, cfg.Machine.Banks)
		}
	}

	// DRAM bank-group gating.
	e.groupGapOn = b.Discipline == DRAM && b.Groups > 0 && b.GroupGap > 0
	if e.groupGapOn {
		e.banksPerGroup = (cfg.Machine.Banks + b.Groups - 1) / b.Groups
		if cap(e.groupReady) >= b.Groups {
			e.groupReady = e.groupReady[:b.Groups]
			for i := range e.groupReady {
				e.groupReady[i] = 0
			}
		} else {
			e.groupReady = make([]float64, b.Groups)
		}
	}

	// Regulated window accounting.
	if b.Discipline == Regulated {
		e.regWindow = b.RegWindow
		e.regBudget = int32(b.RegBudget)
		nb := cfg.Machine.Banks
		if cap(e.regEpoch) >= nb && cap(e.regUsed) >= nb {
			e.regEpoch = e.regEpoch[:nb]
			e.regUsed = e.regUsed[:nb]
			for i := range e.regEpoch {
				e.regEpoch[i] = 0
				e.regUsed[i] = 0
			}
		} else {
			e.regEpoch = make([]int64, nb)
			e.regUsed = make([]int32, nb)
		}
	}

	if cap(e.procs) >= pt.Procs() {
		e.procs = e.procs[:pt.Procs()]
		for i := range e.procs {
			e.procs[i] = procState{}
		}
	} else {
		e.procs = make([]procState, pt.Procs())
	}

	nSections := 1
	if cfg.UseSections && cfg.Machine.Sections > 1 {
		nSections = cfg.Machine.Sections
	}
	e.banksPerSection = (cfg.Machine.Banks + nSections - 1) / nSections

	// Server rings. On reuse each server keeps whatever ring it grew to
	// (server.grow relinearizes into head=0, so a cleared ring is valid
	// storage for the next run); on first build one slab supplies every
	// server's initial ring, so a run performs O(1) queue allocations
	// rather than one per bank that ever queues.
	if cap(e.banks) >= cfg.Machine.Banks && cap(e.sections) >= nSections {
		e.banks = e.banks[:cfg.Machine.Banks]
		e.sections = e.sections[:nSections]
		for i := range e.banks {
			s := &e.banks[i]
			s.busy, s.maxQ, s.head, s.n = false, 0, 0, 0
		}
		for i := range e.sections {
			s := &e.sections[i]
			s.busy, s.maxQ, s.head, s.n = false, 0, 0, 0
		}
	} else {
		e.banks = make([]server, cfg.Machine.Banks)
		e.sections = make([]server, nSections)
		const initialRing = 8 // power of two, as the ring requires
		slab := make([]request, (cfg.Machine.Banks+nSections)*initialRing)
		for i := range e.banks {
			e.banks[i].buf = slab[:initialRing:initialRing]
			slab = slab[initialRing:]
		}
		for i := range e.sections {
			e.sections[i].buf = slab[:initialRing:initialRing]
			slab = slab[initialRing:]
		}
	}

	if cap(e.bankServe) >= cfg.Machine.Banks {
		e.bankServe = e.bankServe[:cfg.Machine.Banks]
		for i := range e.bankServe {
			e.bankServe[i] = 0
		}
	} else {
		e.bankServe = make([]int, cfg.Machine.Banks)
	}

	if e.useHeap {
		// Size the heap off the pattern and machine so steady state never
		// grows it: the live event population is bounded by one pending
		// injection per processor, one *Done per busy bank and section,
		// plus the requests in network transit (which scale with
		// NetDelay/G, not with N). Small runs cap the hint at one event
		// per request.
		hint := pt.Procs() + cfg.Machine.Banks + nSections
		if n := pt.N() + pt.Procs(); n < hint {
			hint = n
		}
		e.heapq.init(hint)
	} else {
		e.events.reset(cfg, cfg.Machine.Procs)
	}

	total := 0
	for i, addrs := range pt.PerProc {
		e.procs[i].addrs = addrs
		total += len(addrs)
		if len(addrs) > 0 {
			e.sched(event{time: 0, seq: e.nextSeq(), kind: evInject, proc: int32(i)})
		}
	}
	e.res.Requests = total
}
