package sim

import (
	"errors"
	"testing"

	"dxbsp/internal/core"
)

func TestDisciplineStringParseRoundTrip(t *testing.T) {
	for _, d := range Disciplines() {
		got, err := ParseDiscipline(d.String())
		if err != nil {
			t.Errorf("ParseDiscipline(%q): %v", d.String(), err)
		}
		if got != d {
			t.Errorf("ParseDiscipline(%q) = %v, want %v", d.String(), got, d)
		}
	}
	for _, alias := range []string{"gpushared", "gpu-shared"} {
		if d, err := ParseDiscipline(alias); err != nil || d != GPUShared {
			t.Errorf("ParseDiscipline(%q) = %v, %v; want GPUShared", alias, d, err)
		}
	}
	if _, err := ParseDiscipline("lifo"); err == nil {
		t.Error("ParseDiscipline accepted an unknown name")
	}
	if s := Discipline(9).String(); s != "discipline(9)" {
		t.Errorf("unknown tag renders as %q", s)
	}
}

// The one-word-row regression (satellite bugfix): the deprecated
// BankRowShift could not express a 1-word row — Normalize turned shift 0
// into the default 5. Bank.RowWords encodes set/unset explicitly, so
// RowWords: 1 survives Normalize and actually simulates one-word rows,
// while the legacy zero still means "default 32 words".
func TestOneWordRowRepresentable(t *testing.T) {
	m := core.Machine{Name: "row", Procs: 1, Banks: 1, D: 4, G: 1, L: 0}
	pt := core.NewPattern([]uint64{0, 1, 0, 1}, 1)

	one := Config{Machine: m, Bank: BankConfig{CacheLines: 1, RowWords: 1}}
	if n := one.Normalize(); n.Bank.RowWords != 1 {
		t.Fatalf("Normalize rewrote RowWords 1 to %d", n.Bank.RowWords)
	}
	r1, err := Run(one, pt)
	if err != nil {
		t.Fatal(err)
	}
	// Addresses 0 and 1 are distinct one-word rows; with a single line
	// they evict each other, so nothing ever hits.
	if r1.RowHits != 0 {
		t.Errorf("one-word rows: %d row hits, want 0", r1.RowHits)
	}

	// The legacy encoding (BankRowShift 0 = default) keeps its historical
	// meaning: 32-word rows, so 0 and 1 share a row and three accesses hit.
	legacy := Config{Machine: m, BankCacheLines: 1}
	if n := legacy.Normalize(); n.Bank.RowWords != 32 {
		t.Fatalf("legacy fold produced RowWords %d, want 32", n.Bank.RowWords)
	}
	r32, err := Run(legacy, pt)
	if err != nil {
		t.Fatal(err)
	}
	if r32.RowHits != 3 {
		t.Errorf("legacy default rows: %d row hits, want 3", r32.RowHits)
	}
}

// DRAM row accounting on a hand-traced pattern: one processor, one bank,
// rows of 4 words, a single open row. Accesses 0, 1, 4, 0 are rows
// 0, 0, 1, 0 — miss, hit, conflict, conflict — serialized on the bank:
// 8 + 1 + 8 + 8 = 25 cycles of busy time and a last done at 25.
func TestDRAMRowHitAndConflictCounting(t *testing.T) {
	cfg := Config{
		Machine: core.Machine{Name: "dram", Procs: 1, Banks: 1, D: 8, G: 1, L: 0},
		Bank:    BankConfig{Discipline: DRAM, CacheLines: 1, HitDelay: 1, MissDelay: 8, RowWords: 4},
	}
	r, err := Run(cfg, core.NewPattern([]uint64{0, 1, 4, 0}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.RowHits != 1 || r.RowConflicts != 3 {
		t.Errorf("hits=%d conflicts=%d, want 1 and 3", r.RowHits, r.RowConflicts)
	}
	if r.Cycles != 25 || r.BankBusy != 25 {
		t.Errorf("cycles=%g busy=%g, want 25 and 25", r.Cycles, r.BankBusy)
	}
}

// Bank-group gating: four banks in one group with a 2-cycle start gap.
// Four simultaneous arrivals to distinct banks start at 0, 2, 4, 6 instead
// of all at 0, so the last of the 4-cycle services finishes at 10.
func TestDRAMBankGroupGating(t *testing.T) {
	m := core.Machine{Name: "grp", Procs: 4, Banks: 4, D: 4, G: 1, L: 0}
	pt := core.NewPattern([]uint64{0, 1, 2, 3}, 4)

	grouped := Config{Machine: m, Bank: BankConfig{Discipline: DRAM, MissDelay: 4, Groups: 1, GroupGap: 2}}
	rg, err := Run(grouped, pt)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Cycles != 10 {
		t.Errorf("grouped cycles = %g, want 10", rg.Cycles)
	}

	flat := Config{Machine: m, Bank: BankConfig{Discipline: DRAM, MissDelay: 4}}
	rf, err := Run(flat, pt)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Cycles != 4 {
		t.Errorf("ungrouped cycles = %g, want 4", rf.Cycles)
	}
}

// Regulated budget math, hand-traced: one bank, 2-cycle services, budget 2
// per 10-cycle window, five back-to-back requests. Services 1 and 2 run at
// 0 and 2; service 3 exhausts window 0 and is deferred to 10 (a 6-cycle
// stall); service 4 runs at 12; service 5 exhausts window 1 and is
// deferred to 20 (another 6-cycle stall), finishing at 22.
func TestRegulatedBudgetAccounting(t *testing.T) {
	cfg := Config{
		Machine: core.Machine{Name: "reg", Procs: 1, Banks: 1, D: 2, G: 1, L: 0},
		Bank:    BankConfig{Discipline: Regulated, RegWindow: 10, RegBudget: 2},
	}
	r, err := Run(cfg, core.NewPattern([]uint64{0, 0, 0, 0, 0}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.ThrottleStalls != 2 || r.ThrottleStallCycles != 12 {
		t.Errorf("stalls=%d stallCycles=%g, want 2 and 12", r.ThrottleStalls, r.ThrottleStallCycles)
	}
	if r.Cycles != 22 {
		t.Errorf("cycles = %g, want 22", r.Cycles)
	}
}

// GPU shared-memory conflict degrees: one warp of 8 lanes over 32 banks
// (D=1, G=1, NetDelay=1). With word stride s, lanes hit 32/gcd... —
// concretely, the warp's completion time grows by one cycle per extra
// lane serialized on the most-conflicted bank, and every lane that could
// not start on arrival counts as a replay.
func TestGPUSharedConflictSerialization(t *testing.T) {
	m := core.Machine{Name: "sm", Procs: 1, Banks: 32, D: 1, G: 1, L: 2}
	bank := BankConfig{Discipline: GPUShared, WarpSize: 8}
	warp := func(strideWords uint64) core.Pattern {
		addrs := make([]uint64, 8)
		for i := range addrs {
			addrs[i] = uint64(i) * strideWords * 4 // byte addresses, 4-byte words
		}
		return core.NewPattern(addrs, 1)
	}
	for _, tc := range []struct {
		stride  uint64
		degree  int // lanes serialized on each touched bank
		cycles  float64
		replays int
	}{
		{1, 1, 3, 0},   // conflict-free: issue 0, arrive 1, done 2, respond 3
		{16, 4, 6, 6},  // banks 0 and 16, four lanes each
		{32, 8, 10, 7}, // all eight lanes on bank 0
	} {
		r, err := Run(Config{Machine: m, Bank: bank}, warp(tc.stride))
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != tc.cycles || r.WarpReplays != tc.replays {
			t.Errorf("stride %d (degree %d): cycles=%g replays=%d, want %g and %d",
				tc.stride, tc.degree, r.Cycles, r.WarpReplays, tc.cycles, tc.replays)
		}
	}
}

// The warp barrier: with WarpSize 4 and eight conflict-free accesses, the
// second warp issues only after the first warp's last response (cycle 3),
// so the run takes exactly two warp round-trips.
func TestGPUSharedWarpBarrier(t *testing.T) {
	m := core.Machine{Name: "sm", Procs: 1, Banks: 32, D: 1, G: 1, L: 2}
	cfg := Config{Machine: m, Bank: BankConfig{Discipline: GPUShared, WarpSize: 4}}
	addrs := make([]uint64, 8)
	for i := range addrs {
		addrs[i] = uint64(i) * 4
	}
	r, err := Run(cfg, core.NewPattern(addrs, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 6 {
		t.Errorf("cycles = %g, want 6 (two 3-cycle warp round-trips)", r.Cycles)
	}
	if r.WarpReplays != 0 {
		t.Errorf("conflict-free warps counted %d replays", r.WarpReplays)
	}
}

// validateBank names the offending field: knobs set on a discipline that
// does not read them fail loudly instead of simulating something else.
func TestValidateBankErrorFields(t *testing.T) {
	m := core.Machine{Name: "v", Procs: 2, Banks: 8, D: 2, G: 1, L: 0}
	sectioned := core.Machine{Name: "vs", Procs: 2, Banks: 8, D: 2, G: 1, L: 0, Sections: 2, SectionGap: 1}
	for _, tc := range []struct {
		name  string
		field string
		cfg   Config
	}{
		{"unknown tag", "Bank.Discipline", Config{Machine: m, Bank: BankConfig{Discipline: Discipline(9)}}},
		{"negative cache", "Bank.CacheLines", Config{Machine: m, Bank: BankConfig{CacheLines: -1}}},
		{"negative hit", "Bank.HitDelay", Config{Machine: m, Bank: BankConfig{CacheLines: 1, HitDelay: -1}}},
		{"non-power-of-two row", "Bank.RowWords", Config{Machine: m, Bank: BankConfig{CacheLines: 1, RowWords: 3}}},
		{"fifo miss delay", "Bank.MissDelay", Config{Machine: m, Bank: BankConfig{MissDelay: 2}}},
		{"fifo groups", "Bank.Groups", Config{Machine: m, Bank: BankConfig{Groups: 2}}},
		{"fifo group gap", "Bank.GroupGap", Config{Machine: m, Bank: BankConfig{GroupGap: 1}}},
		{"fifo regulation", "Bank.RegWindow", Config{Machine: m, Bank: BankConfig{RegWindow: 4}}},
		{"fifo warp size", "Bank.WarpSize", Config{Machine: m, Bank: BankConfig{WarpSize: 8}}},
		{"gap without groups", "Bank.GroupGap", Config{Machine: m, Bank: BankConfig{Discipline: DRAM, GroupGap: 1}}},
		{"groups over banks", "Bank.Groups", Config{Machine: m, Bank: BankConfig{Discipline: DRAM, Groups: 99}}},
		{"negative miss", "Bank.MissDelay", Config{Machine: m, Bank: BankConfig{Discipline: DRAM, MissDelay: -1}}},
		{"regulated cache", "Bank.CacheLines", Config{Machine: m, Bank: BankConfig{Discipline: Regulated, CacheLines: 1}}},
		{"negative window", "Bank.RegWindow", Config{Machine: m, Bank: BankConfig{Discipline: Regulated, RegWindow: -1}}},
		{"negative budget", "Bank.RegBudget", Config{Machine: m, Bank: BankConfig{Discipline: Regulated, RegBudget: -1}}},
		{"gpu cache", "Bank.CacheLines", Config{Machine: m, Bank: BankConfig{Discipline: GPUShared, CacheLines: 1}}},
		{"gpu window", "Window", Config{Machine: m, Window: 4, Bank: BankConfig{Discipline: GPUShared}}},
		{"gpu combining", "Combining", Config{Machine: m, Combining: true, Bank: BankConfig{Discipline: GPUShared}}},
		{"gpu sections", "UseSections", Config{Machine: sectioned, UseSections: true, Bank: BankConfig{Discipline: GPUShared}}},
		{"gpu negative warp", "Bank.WarpSize", Config{Machine: m, Bank: BankConfig{Discipline: GPUShared, WarpSize: -1}}},
	} {
		err := tc.cfg.Normalize().Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: %v is not a *ConfigError", tc.name, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q", tc.name, ce.Field, tc.field)
		}
	}
}
