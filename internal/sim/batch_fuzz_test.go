package sim

import (
	"context"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

// FuzzBatchVsScalar is the batch engine's differential property test:
// for a randomized lane count, per-lane machine shapes (d, x, g,
// NetDelay), per-lane bank disciplines and ragged per-lane issue
// windows, every lane of one batch run must equal — field for field —
// the scalar engine run of that lane alone. This covers the whole
// lockstep regime (open- and closed-loop FIFO, ungrouped single-row
// DRAM, Regulated — including lanes that window-stall into the per-lane
// replay) and the embedded scalar fallback (grouped or multi-row DRAM,
// GPUShared, row-buffered FIFO) in the same batch, over the same
// address-pattern shapes FuzzSimVsReference draws.
//
// Under `go test` the seed corpus runs as a regression suite; under
// `go test -fuzz FuzzBatchVsScalar ./internal/sim/` the mutator explores
// the (K, p, lane params, discipline mix, window mix, pattern) space.
func FuzzBatchVsScalar(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(3), uint16(200), uint8(0))
	f.Add(uint64(2), uint8(4), uint8(0), uint16(64), uint8(1))
	f.Add(uint64(3), uint8(8), uint8(7), uint16(999), uint8(2))
	f.Add(uint64(4), uint8(2), uint8(5), uint16(1), uint8(0))
	f.Add(uint64(5), uint8(16), uint8(2), uint16(500), uint8(1))
	f.Add(uint64(6), uint8(6), uint8(6), uint16(333), uint8(2))
	f.Add(uint64(7), uint8(3), uint8(1), uint16(777), uint8(2))
	f.Add(uint64(8), uint8(12), uint8(4), uint16(128), uint8(0))
	f.Add(uint64(9), uint8(5), uint8(3), uint16(400), uint8(0))
	f.Add(uint64(10), uint8(9), uint8(6), uint16(900), uint8(1))
	f.Add(uint64(11), uint8(15), uint8(2), uint16(650), uint8(2))

	f.Fuzz(func(t *testing.T, seed uint64, kRaw, pRaw uint8, nRaw uint16, shape uint8) {
		k := int(kRaw%16) + 1
		p := int(pRaw%8) + 1
		n := int(nRaw%1000) + 1
		rg := rng.New(seed)

		cfgs := make([]Config, k)
		for i := range cfgs {
			banks := p * (rg.Intn(16) + 1)
			d := float64(rg.Intn(12) + 1)
			g := float64(rg.Intn(4) + 1)
			nd := float64(rg.Intn(16))
			var bank BankConfig
			switch rg.Intn(7) {
			case 0, 1: // the paper's FIFO bank — the lockstep fast path
			case 2: // FIFO with row buffers: scalar fallback
				bank = BankConfig{
					CacheLines: 1 + rg.Intn(4),
					HitDelay:   float64(1 + rg.Intn(3)),
					RowWords:   1 << rg.Intn(7),
				}
			case 3: // row-buffer DRAM with bank groups: scalar fallback
				groups := 1 + rg.Intn(4)
				if groups > banks {
					groups = banks
				}
				bank = BankConfig{
					Discipline: DRAM,
					CacheLines: 1 + rg.Intn(2),
					HitDelay:   float64(1 + rg.Intn(3)),
					MissDelay:  float64(1 + rg.Intn(16)),
					RowWords:   1 << rg.Intn(7),
					Groups:     groups,
					GroupGap:   float64(rg.Intn(3)),
				}
			case 4: // ungrouped single-row DRAM: the lockstep DRAM class
				bank = BankConfig{
					Discipline: DRAM,
					CacheLines: rg.Intn(2), // 0 defaults to 1: both spellings eligible
					HitDelay:   float64(1 + rg.Intn(3)),
					MissDelay:  float64(1 + rg.Intn(16)),
					RowWords:   1 << rg.Intn(7),
				}
			case 5: // bandwidth-regulated banks: the lockstep Regulated class
				bank = BankConfig{
					Discipline: Regulated,
					RegWindow:  float64(1 + rg.Intn(32)),
					RegBudget:  1 + rg.Intn(4),
				}
			case 6: // GPU shared memory: scalar fallback
				bank = BankConfig{Discipline: GPUShared, WarpSize: 1 + rg.Intn(32)}
				if nd < 1 {
					nd = 1
				}
			}
			// Ragged issue windows: roughly two thirds of the non-GPU lanes
			// run closed-loop, each with its own window — tight windows
			// stall into the per-lane replay almost immediately.
			window := 0
			if bank.Discipline != GPUShared && rg.Intn(3) > 0 {
				window = 1 + rg.Intn(12)
			}
			cfgs[i] = Config{
				Machine:  core.Machine{Name: "fuzz", Procs: p, Banks: banks, D: d, G: g, L: 2 * nd},
				Window:   window,
				NetDelay: nd,
				Bank:     bank,
			}
		}

		addrs := make([]uint64, n)
		maxBanks := 0
		for _, c := range cfgs {
			if c.Machine.Banks > maxBanks {
				maxBanks = c.Machine.Banks
			}
		}
		for i := range addrs {
			switch shape % 3 {
			case 0: // uniform over a range much wider than the banks
				addrs[i] = rg.Uint64n(1 << 20)
			case 1: // conflict-heavy: a handful of hot locations
				addrs[i] = rg.Uint64n(uint64(maxBanks)/4 + 1)
			default: // bank-bursty: long runs on one bank
				addrs[i] = uint64(maxBanks) * uint64(i/8)
			}
		}
		pt := core.NewPattern(addrs, p)

		got, err := RunBatch(context.Background(), cfgs, pt)
		if err != nil {
			t.Fatalf("RunBatch: %v", err)
		}
		for i, cfg := range cfgs {
			want, err := Run(cfg, pt)
			if err != nil {
				t.Fatalf("lane %d scalar: %v", i, err)
			}
			if got[i] != want {
				t.Errorf("lane %d/%d (disc=%s banks=%d d=%g g=%g nd=%g fast=%t): batch %+v != scalar %+v",
					i, k, cfg.Bank.Discipline, cfg.Machine.Banks, cfg.Machine.D, cfg.Machine.G,
					cfg.NetDelay, BatchEligible(cfg), got[i], want)
			}
		}
	})
}
