package sim

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

// Cross-validation: the event-driven engine and the time-stepped
// reference must agree exactly on the supported configuration subset.

func TestReferenceAgreesWithEngine(t *testing.T) {
	m := core.Machine{Name: "xv", Procs: 4, Banks: 32, D: 5, G: 1, L: 8}
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		g := rng.New(seed)
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = g.Uint64n(256)
		}
		pt := core.NewPattern(addrs, m.Procs)
		ev, err := Run(Config{Machine: m}, pt)
		if err != nil {
			return false
		}
		ref, err := RunReference(Config{Machine: m}, pt)
		if err != nil {
			return false
		}
		return ev.Cycles == ref.Cycles &&
			ev.BankServices == ref.BankServices &&
			ev.BankBusy == ref.BankBusy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReferenceAgreesOnCanonicalPatterns(t *testing.T) {
	m := core.Machine{Name: "xv", Procs: 8, Banks: 64, D: 6, G: 1, L: 0}
	cases := map[string][]uint64{
		"allsame": make([]uint64, 200), // zeros
		"stride":  {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
		"onebank": {0, 64, 128, 192, 256, 320},
	}
	for name, addrs := range cases {
		pt := core.NewPattern(addrs, m.Procs)
		ev, err := Run(Config{Machine: m}, pt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := RunReference(Config{Machine: m}, pt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ev.Cycles != ref.Cycles {
			t.Errorf("%s: engine %v vs reference %v cycles", name, ev.Cycles, ref.Cycles)
		}
	}
}

func TestReferenceRejectsUnsupported(t *testing.T) {
	m := core.Machine{Name: "xv", Procs: 2, Banks: 8, D: 2, G: 1, L: 0}
	pt := core.NewPattern([]uint64{1, 2}, 2)
	for name, cfg := range map[string]Config{
		"window":         {Machine: m, Window: 2},
		"combining":      {Machine: m, Combining: true},
		"sections":       {Machine: core.Machine{Name: "s", Procs: 2, Banks: 8, D: 2, G: 1, L: 0, Sections: 2, SectionGap: 1}, UseSections: true},
		"fractional":     {Machine: core.Machine{Name: "f", Procs: 2, Banks: 8, D: 2.5, G: 1, L: 0}},
		"fractional hit": {Machine: m, Bank: BankConfig{CacheLines: 2, HitDelay: 0.5}},
		"bank groups":    {Machine: m, Bank: BankConfig{Discipline: DRAM, Groups: 2, GroupGap: 1}},
		"gpu no delay":   {Machine: m, Bank: BankConfig{Discipline: GPUShared}},
	} {
		if _, err := RunReference(cfg, pt); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReferenceEmpty(t *testing.T) {
	m := core.Machine{Name: "xv", Procs: 2, Banks: 8, D: 2, G: 1, L: 0}
	r, err := RunReference(Config{Machine: m}, core.NewPattern(nil, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 0 || r.Requests != 0 {
		t.Errorf("empty = %+v", r)
	}
}
