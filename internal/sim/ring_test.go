package sim

import (
	"testing"

	"dxbsp/internal/rng"
)

func TestServerRingFIFO(t *testing.T) {
	var s server
	if _, ok := s.dequeue(); ok {
		t.Fatal("dequeue on empty server succeeded")
	}
	for i := 0; i < 100; i++ {
		s.enqueue(request{seq: i})
	}
	if s.maxQ != 100 {
		t.Errorf("maxQ = %d, want 100", s.maxQ)
	}
	for i := 0; i < 100; i++ {
		r, ok := s.dequeue()
		if !ok || r.seq != i {
			t.Fatalf("dequeue %d = %+v, %v", i, r, ok)
		}
	}
	if _, ok := s.dequeue(); ok {
		t.Fatal("dequeue on drained server succeeded")
	}
}

// The ring must survive arbitrary interleavings of enqueue and dequeue,
// including wrap-around, and agree with a plain slice model.
func TestServerRingMatchesSliceModel(t *testing.T) {
	g := rng.New(7)
	var s server
	var model []request
	seq := 0
	for step := 0; step < 20000; step++ {
		if len(model) == 0 || g.Intn(2) == 0 {
			seq++
			r := request{seq: seq, addr: g.Uint64n(8)}
			s.enqueue(r)
			model = append(model, r)
		} else {
			got, ok := s.dequeue()
			if !ok {
				t.Fatalf("step %d: dequeue failed with %d queued", step, len(model))
			}
			if got != model[0] {
				t.Fatalf("step %d: dequeue = %+v, want %+v", step, got, model[0])
			}
			model = model[1:]
		}
		if s.qlen() != len(model) {
			t.Fatalf("step %d: qlen = %d, model %d", step, s.qlen(), len(model))
		}
	}
}

func TestServerExtractAddrPreservesOrder(t *testing.T) {
	var s server
	// Force a wrapped ring: fill, drain halfway, refill.
	for i := 0; i < 6; i++ {
		s.enqueue(request{seq: i, addr: uint64(i % 2)})
	}
	for i := 0; i < 3; i++ {
		s.dequeue()
	}
	for i := 6; i < 12; i++ {
		s.enqueue(request{seq: i, addr: uint64(i % 2)})
	}
	// Queue now holds seqs 3..11; extract the odd-address ones.
	out := s.extractAddr(1, nil)
	wantOut := []int{3, 5, 7, 9, 11}
	if len(out) != len(wantOut) {
		t.Fatalf("extracted %d requests, want %d", len(out), len(wantOut))
	}
	for i, r := range out {
		if r.seq != wantOut[i] {
			t.Errorf("extracted[%d].seq = %d, want %d", i, r.seq, wantOut[i])
		}
	}
	wantKept := []int{4, 6, 8, 10}
	for i, want := range wantKept {
		r, ok := s.dequeue()
		if !ok || r.seq != want {
			t.Errorf("kept[%d] = %+v (ok=%v), want seq %d", i, r, ok, want)
		}
	}
	if s.qlen() != 0 {
		t.Errorf("queue not drained: %d left", s.qlen())
	}
}

func TestServerExtractAddrEmptyAndMiss(t *testing.T) {
	var s server
	if out := s.extractAddr(1, nil); len(out) != 0 {
		t.Errorf("extract from empty = %d", len(out))
	}
	s.enqueue(request{seq: 1, addr: 5})
	if out := s.extractAddr(99, nil); len(out) != 0 || s.qlen() != 1 {
		t.Errorf("miss changed queue: out=%d qlen=%d", len(out), s.qlen())
	}
}
