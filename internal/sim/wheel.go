package sim

import (
	"math"
	"math/bits"
)

// wheel is the engine's pending-event set: a bounded-horizon calendar
// queue (timing wheel) that replaces the 4-ary heap on the hot path.
//
// The structural fact it exploits: every event the engine schedules lands
// within a fixed horizon of the event being dispatched — an injection is
// G ahead, a network hop NetDelay, a section slot SectionGap, a bank
// completion at most max(D, BankHitDelay) + NetDelay (service plus the
// response transit pushed from the service start). schedHorizon sums
// these, so with buckets of width w covering more than horizon/w + slack
// buckets, the pending ticks (tick = floor(time/w)) always span fewer
// than len(buckets)-1 values and every bucket holds events of exactly one
// tick. Push and pop are then O(1) amortized: push appends to
// buckets[tick%nb], pop scans the cursor bucket for the (time, kind, seq)
// minimum and otherwise walks the occupancy bitmap to the next tick.
//
// The pop sequence is the exact (time, kind, seq) total order the heap
// produced — load-bearing for the runner's memo cache and checkpoint
// journal, which key on the simulated cycle counts. Three facts make it
// exact rather than approximate:
//
//   - the bucket width is a power of two, so tick = time * (1/w) is an
//     exact floating-point scaling and floor(time/w) is computed without
//     rounding for every representable time;
//   - tick is monotone in time, and all events sharing a time share a
//     bucket, so cross-bucket order is by tick and within a bucket the
//     scan compares full (time, kind, seq) keys;
//   - the engine never schedules into the past (every push is at or after
//     the event being dispatched), so the cursor never passes a pending
//     event. push enforces the horizon invariant and panics on violation
//     rather than silently misordering.
//
// TestWheelVsHeapDifferential and FuzzSimVsReference enforce equivalence
// with the retained heap; see DESIGN.md §11.
type wheel struct {
	buckets [][]event // one slice per tick bucket; len is a power of two
	occ     []uint64  // occupancy bitmap: bit b set iff buckets[b] non-empty
	mask    int       // len(buckets) - 1
	invW    float64   // 1/w where w is the bucket width, an exact power of two
	cur     int64     // tick of the last popped event (cursor)
	n       int       // pending events
}

const (
	wheelMinBuckets = 64
	wheelMaxBuckets = 4096
	// wheelSlack keeps the bucket count strictly above horizon/w + 1 so
	// pending ticks can never wrap onto the cursor's lap, even with the
	// +1 tick a bucket-boundary-straddling interval can span.
	wheelSlack = 4
)

// schedHorizon bounds how far ahead of the event being dispatched any
// newly scheduled event can land, for the normalized config. The bound is
// the sum of every per-hop increment rather than their max, trading a
// slightly wider wheel for immunity to any one increment being combined
// with another (a bank completion is service + NetDelay from the start
// that scheduled it).
//
// Disciplines that defer a service start beyond the dispatching event
// widen the horizon by their worst-case deferral: a Regulated bank holds
// a request at most one full regulation window; a DRAM bank group can
// chain at most one GroupGap deferral per bank in the group before the
// chained starts are themselves in the future (each start advances the
// group's ready time by GroupGap, and a bank contributes at most one
// start per instant because it stays busy through its own service).
func schedHorizon(cfg Config) float64 {
	b := cfg.Bank
	service := cfg.Machine.D
	hold := 0.0
	switch b.Discipline {
	case FIFO:
		if b.CacheLines > 0 && b.HitDelay > service {
			service = b.HitDelay
		}
	case DRAM:
		service = b.HitDelay
		if b.MissDelay > service {
			service = b.MissDelay
		}
		if b.Groups > 0 && b.GroupGap > 0 {
			banksPerGroup := (cfg.Machine.Banks + b.Groups - 1) / b.Groups
			hold = float64(banksPerGroup) * b.GroupGap
		}
	case Regulated:
		hold = b.RegWindow
	}
	h := cfg.Machine.G + service + hold + 2*cfg.NetDelay
	if cfg.UseSections && cfg.Machine.Sections > 1 {
		h += cfg.Machine.SectionGap
	}
	return h
}

// reset prepares the wheel for one run of the normalized cfg, retaining
// bucket storage from previous runs whenever it still fits (the engine
// reuse contract: a steady-state sweep re-resets the same shapes and
// allocates nothing).
func (q *wheel) reset(cfg Config, procs int) {
	// A cancelled run abandons events mid-flight; clear the full backing
	// capacity, not just the last run's active region, so a later regrow
	// within capacity cannot resurrect stale events or occupancy bits.
	if q.n > 0 {
		b := q.buckets[:cap(q.buckets)]
		for i := range b {
			b[i] = b[i][:0]
		}
		o := q.occ[:cap(q.occ)]
		for i := range o {
			o[i] = 0
		}
	}
	q.n = 0
	q.cur = 0

	// Ideal bucket width ~ G/(2p): processors inject p requests every G
	// cycles and each request produces a handful of events, so this keeps
	// the expected bucket occupancy at one or two events. Widen (halving
	// the bucket count) until the horizon fits the bucket cap.
	if procs < 1 {
		procs = 1
	}
	h := schedHorizon(cfg)
	_, exp := math.Frexp(cfg.Machine.G / float64(2*procs))
	e := exp - 1 // floor(log2(G/2p)); w = 2^e
	need := wheelNeed(h, e)
	for need > wheelMaxBuckets {
		e++
		need = wheelNeed(h, e)
	}
	nb := wheelMinBuckets
	for nb < need {
		nb <<= 1
	}
	q.invW = math.Ldexp(1, -e)
	q.mask = nb - 1

	words := nb / 64
	if cap(q.buckets) >= nb && cap(q.occ) >= words {
		q.buckets = q.buckets[:nb]
		q.occ = q.occ[:words]
		return
	}
	q.buckets = make([][]event, nb)
	q.occ = make([]uint64, words)
	// One slab supplies every bucket's initial storage; only a bucket
	// that ever exceeds it reallocates (amortized, and retained across
	// resets).
	const per = 4
	slab := make([]event, nb*per)
	for i := range q.buckets {
		q.buckets[i] = slab[:0:per]
		slab = slab[per:]
	}
}

// wheelNeed returns the bucket count required to cover horizon h with
// bucket width 2^e.
func wheelNeed(h float64, e int) int {
	return int(math.Ceil(math.Ldexp(h, -e))) + wheelSlack
}

func (q *wheel) len() int { return q.n }

// push inserts ev. ev.time must be at or after the last popped event's
// time and within the configured horizon of it — the engine's scheduling
// discipline guarantees both; violations panic rather than misorder.
//
// Each bucket is kept as a binary min-heap on the (time, kind, seq) key,
// so extracting the bucket minimum is O(log B) instead of a linear scan.
// In the common FIFO regime buckets hold one or two events and the sift
// loops are a single comparison; the payoff is warp-synchronous issue
// (GPUShared), which lands WarpSize×procs same-time events in one bucket
// and turned the old scan quadratic — 85% of the GPU bench's profile.
// Keys are unique ((kind, seq) never repeats), so the heap pops the
// strict minimum and the pop sequence is unchanged.
func (q *wheel) push(ev event) {
	tick := int64(ev.time * q.invW)
	if d := tick - q.cur; d < 0 || d >= int64(q.mask) {
		panic("sim: event scheduled outside the wheel horizon")
	}
	b := int(tick) & q.mask
	bk := append(q.buckets[b], ev)
	i := len(bk) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&bk[i], &bk[parent]) {
			break
		}
		bk[i], bk[parent] = bk[parent], bk[i]
		i = parent
	}
	q.buckets[b] = bk
	q.occ[b>>6] |= 1 << uint(b&63)
	q.n++
}

// pop removes and returns the (time, kind, seq)-minimum pending event.
// Call only when len() > 0.
func (q *wheel) pop() event {
	b := int(q.cur) & q.mask
	bk := q.buckets[b]
	if len(bk) == 0 {
		b = q.advance(b)
		bk = q.buckets[b]
	}
	ev := bk[0]
	last := len(bk) - 1
	if last > 0 {
		bk[0] = bk[last]
		i := 0
		for {
			l := 2*i + 1
			if l >= last {
				break
			}
			if r := l + 1; r < last && eventLess(&bk[r], &bk[l]) {
				l = r
			}
			if !eventLess(&bk[l], &bk[i]) {
				break
			}
			bk[i], bk[l] = bk[l], bk[i]
			i = l
		}
	}
	q.buckets[b] = bk[:last]
	if last == 0 {
		q.occ[b>>6] &^= 1 << uint(b&63)
	}
	q.n--
	return ev
}

// advance walks the occupancy bitmap from bucket b (known empty) to the
// next occupied bucket, moves the cursor to that bucket's tick, and
// returns its index. Because pending ticks span fewer than len(buckets)-1
// values, the first occupied bucket in circular order holds exactly the
// minimum pending tick.
func (q *wheel) advance(b int) int {
	words := len(q.occ)
	wi := (b + 1) >> 6
	off := uint((b + 1) & 63)
	if wi == words {
		wi, off = 0, 0
	}
	word := q.occ[wi] & (^uint64(0) << off)
	for range q.occ {
		if word != 0 {
			f := wi<<6 + bits.TrailingZeros64(word)
			q.cur += int64((f - b) & q.mask)
			return f
		}
		wi++
		if wi == words {
			wi = 0
		}
		word = q.occ[wi]
	}
	// One extra look at the first word's low bits, reachable only after a
	// full wrap (the cursor sat near the end of that word).
	if word != 0 {
		f := wi<<6 + bits.TrailingZeros64(word)
		q.cur += int64((f - b) & q.mask)
		return f
	}
	panic("sim: wheel.pop on an empty queue")
}
