package sim

import (
	"context"
	"fmt"
	"sync"

	"dxbsp/internal/core"
)

// Config describes one simulation run.
type Config struct {
	Machine core.Machine
	BankMap core.BankMap // defaults to interleave over Machine.Banks

	// Window is the maximum number of outstanding requests per processor.
	// 0 means unlimited (open-loop vector pipeline, the default: latency
	// is hidden by vectorization, as on the Cray).
	Window int

	// Combining makes banks satisfy all queued requests for the same
	// address with a single d-cycle service. The machines modeled by the
	// paper do not combine (the paper explicitly excludes Ranade-style
	// combining); this switch exists for the ablation bench.
	Combining bool

	// NetDelay is the one-way transit time between a processor and a bank.
	// It defaults to Machine.L/2 and affects only latency, not bandwidth.
	NetDelay float64

	// UseSections enables the network-section bottleneck when
	// Machine.Sections > 1.
	UseSections bool

	// Bank selects and parameterizes the bank service discipline; the
	// zero value is the paper's FIFO bank. See BankConfig.
	Bank BankConfig

	// BankCacheLines enables the cached-DRAM bank organization studied by
	// Hsu and Smith [HS93] (and available on the Tera), which the paper
	// cites as a refinement the (d,x)-BSP omits: each bank keeps an LRU
	// buffer of the most recent BankCacheLines rows; an access that hits a
	// buffered row is serviced in BankHitDelay cycles instead of d.
	// 0 disables caching (the paper's machines).
	//
	// Deprecated: set Bank.CacheLines. Normalize folds this field into
	// the Bank sub-config (it is ignored when Bank already configures row
	// buffers), so existing callers and cache fingerprints are unchanged.
	BankCacheLines int

	// BankHitDelay is the service time of a row-buffer hit. Defaults to 1.
	//
	// Deprecated: set Bank.HitDelay; see BankCacheLines.
	BankHitDelay float64

	// BankRowShift is log2 of the row size in words: addresses sharing
	// addr>>BankRowShift are in the same row. Defaults to 5 (32 words).
	//
	// Deprecated: set Bank.RowWords, whose explicit set/unset encoding
	// (0 = default) also makes the 1-word row this field could not
	// express representable; see BankCacheLines.
	BankRowShift uint

	// Probe, when non-nil, receives per-event observations of the run
	// (see Probe). It is results-neutral by contract — attaching a probe
	// never changes Result — and it is deliberately excluded from the
	// runner's cache identity, which fingerprints the behavioral knobs
	// field by field.
	Probe Probe
}

// ConfigError reports an invalid simulation configuration. It names the
// offending Config field so callers can distinguish misconfiguration from
// runtime failures (use errors.As).
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid Config.%s: %s", e.Field, e.Reason)
}

// Normalize returns a copy of c with the documented defaults applied in one
// place: a BankMap over Machine.Banks (interleaved, or GPU word-interleaved
// under the GPUShared discipline), NetDelay = Machine.L/2, the deprecated
// BankCacheLines/BankHitDelay/BankRowShift fields folded into the Bank
// sub-config, and the per-discipline Bank defaults (see BankConfig).
// Run normalizes internally; callers that fingerprint or compare configs
// (the runner's memo cache) call Normalize so that a default-valued config
// and an explicitly-defaulted one are identical.
func (c Config) Normalize() Config {
	if c.BankMap == nil {
		if c.Bank.Discipline == GPUShared {
			c.BankMap = core.GPUSharedMap{Banks: c.Machine.Banks}
		} else {
			c.BankMap = core.InterleaveMap{Banks: c.Machine.Banks}
		}
	}
	if c.NetDelay == 0 {
		c.NetDelay = c.Machine.L / 2
	}
	// Fold the deprecated HS93 fields into the sub-config. The fold fires
	// only when the sub-config does not already configure row buffers, so
	// normalizing twice is the identity and an explicit Bank setting wins.
	if c.Bank.Discipline == FIFO && c.Bank.CacheLines == 0 && c.BankCacheLines > 0 {
		c.Bank.CacheLines = c.BankCacheLines
		if c.Bank.HitDelay == 0 {
			c.Bank.HitDelay = c.BankHitDelay
		}
		if c.Bank.RowWords == 0 && c.BankRowShift > 0 && c.BankRowShift < 64 {
			c.Bank.RowWords = 1 << c.BankRowShift
		}
	}
	c.Bank = c.Bank.normalize(c.Machine)
	return c
}

// Validate rejects configurations Run cannot execute faithfully. It checks
// the (normalized) simulator knobs; the machine itself is checked by
// core.Machine.Validate. Invalid knobs return a *ConfigError rather than
// being silently clamped.
func (c Config) Validate() error {
	switch {
	case c.Window < 0:
		return &ConfigError{Field: "Window", Reason: fmt.Sprintf("must be >= 0 (0 = open loop), got %d", c.Window)}
	case c.NetDelay < 0:
		return &ConfigError{Field: "NetDelay", Reason: fmt.Sprintf("must be >= 0, got %g", c.NetDelay)}
	case c.BankCacheLines < 0:
		return &ConfigError{Field: "BankCacheLines", Reason: fmt.Sprintf("must be >= 0 (0 = uncached), got %d", c.BankCacheLines)}
	case c.BankCacheLines > 0 && c.BankHitDelay < 0:
		return &ConfigError{Field: "BankHitDelay", Reason: fmt.Sprintf("must be >= 0, got %g", c.BankHitDelay)}
	case c.BankCacheLines > 0 && c.BankRowShift >= 64:
		return &ConfigError{Field: "BankRowShift", Reason: fmt.Sprintf("must be < 64, got %d", c.BankRowShift)}
	}
	if err := c.validateBank(); err != nil {
		return err
	}
	if c.BankMap != nil && c.BankMap.NumBanks() != c.Machine.Banks {
		return &ConfigError{Field: "BankMap", Reason: fmt.Sprintf("covers %d banks, machine has %d",
			c.BankMap.NumBanks(), c.Machine.Banks)}
	}
	return nil
}

// Result reports the outcome of simulating one superstep.
type Result struct {
	// Cycles is the completion time of the bulk operation: the cycle at
	// which the last response arrives back at its processor.
	Cycles float64
	// Requests is the number of requests simulated.
	Requests int
	// BankServices is the number of bank service occupations; equal to
	// Requests unless combining merged some.
	BankServices int
	// MaxBankServed is the largest number of requests handled by one bank.
	MaxBankServed int
	// MaxBankQueue is the high-water mark of any bank's queue length.
	MaxBankQueue int
	// MaxSectionQueue is the high-water mark of any section queue.
	MaxSectionQueue int
	// BankBusy is the total busy time summed over banks.
	BankBusy float64
	// RowHits counts bank services satisfied from the row buffer (always 0
	// unless row buffers are on: FIFO with Bank.CacheLines > 0, or DRAM).
	RowHits int
	// RowConflicts counts DRAM services that missed every open row and
	// paid Bank.MissDelay (always 0 outside the DRAM discipline).
	RowConflicts int
	// ThrottleStalls counts bank services the Regulated discipline
	// deferred to the next regulation window; ThrottleStallCycles is the
	// total time those services waited (always 0 outside Regulated).
	ThrottleStalls      int
	ThrottleStallCycles float64
	// WarpReplays counts GPUShared services that had to replay — wait in
	// a bank's line behind a conflicting lane of the same or an earlier
	// warp — rather than start on arrival (always 0 outside GPUShared).
	WarpReplays int
	// Analytic marks a result produced by the closed-form surrogate
	// (internal/surrogate) instead of event simulation. The simulator
	// never sets it; renderers and metrics use it to tag mixed
	// sim/surrogate sweeps.
	Analytic bool
}

// CyclesPerElement returns processor-cycles per element, the unit the
// paper's graphs use.
func (r Result) CyclesPerElement(p int) float64 {
	if r.Requests == 0 {
		return 0
	}
	return r.Cycles * float64(p) / float64(r.Requests)
}

type request struct {
	proc int
	seq  int // global issue sequence for deterministic ties
	addr uint64
	bank int
}

type eventKind uint8

const (
	evInject      eventKind = iota // processor attempts next injection
	evSectionDone                  // section finished forwarding a request
	evBankArrive                   // request arrives at its bank
	evBankDone                     // bank finished a service
	evComplete                     // response arrives back at processor
)

// event is one scheduled state transition. It is a flat 40-byte value —
// the request fields are inlined rather than nested, and the processor,
// bank and section indices are int32 (they are bounded by the machine
// shape), so the scheduler moves and compares narrow values with no
// indirection. Which fields are meaningful depends on kind; see dispatch.
type event struct {
	time float64
	seq  int    // tie-break: FIFO by issue order (unique per (kind, seq))
	addr uint64 // request address (routing events)
	proc int32  // issuing processor (evInject, evComplete, routing events)
	bank int32  // destination bank (routing events)
	idx  int32  // section or bank index for *Done events
	kind eventKind
}

// req reconstructs the in-flight request carried by a routing event.
func (ev *event) req() request {
	return request{proc: int(ev.proc), seq: ev.seq, addr: ev.addr, bank: int(ev.bank)}
}

type procState struct {
	addrs       []uint64
	next        int
	outstanding int
	blocked     bool
	blockedAt   float64 // when the window block began (valid while blocked)
	nextIssueAt float64
	completed   int
}

// engine holds all mutable simulation state. It is built once and re-armed
// by reset: the calendar-queue buckets, the per-server rings and the
// processor/bank bookkeeping slices are all retained across runs, so a
// reused engine performs zero steady-state allocations per run
// (TestEngineReuseZeroAllocs pins this; TestEventLoopSteadyStateAllocs
// pins that the event loop itself never allocates per event).
type engine struct {
	cfg Config
	bm  core.BankMap
	// bmKind/bmArg are the bank map resolved to an inline dispatch tag
	// (resolveMap) at reset: the two interleave families compute the bank
	// with one mask or modulo instead of an interface call per request —
	// which the GPU warp loop issues WarpSize at a time.
	bmKind   mapKind
	bmArg    uint64
	events   wheel
	procs    []procState
	sections []server
	banks    []server
	seq      int

	// useHeap forces the retained 4-ary heap scheduler instead of the
	// calendar queue. Test-only: the heap-vs-wheel differential
	// (TestWheelVsHeapDifferential) runs both over identical configs and
	// asserts byte-identical Results. One predictable branch per event.
	useHeap bool
	heapq   eventQueue

	// openLoop marks the Window == 0 fast path: no processor can ever
	// block, so per-request evComplete events are collapsed into direct
	// lastDone bookkeeping in respond.
	openLoop        bool
	banksPerSection int
	combineScratch  []request // reused by startBank's combining pass

	// rp is the per-run probe, nil for the (default) unobserved run.
	// Every hook site is nil-checked, so probes-off costs one predictable
	// branch per site and the steady state stays allocation-free.
	rp RunProbe

	res       Result
	bankServe []int
	// rowsOn gates the row-buffer paths (FIFO+CacheLines and DRAM);
	// bankRows storage is retained across resets even when a run has row
	// buffers off, so alternating configurations on a reused engine do
	// not reallocate. rowShift and rowLines are resolved from the Bank
	// sub-config at reset so rowAccess does no per-event config decoding.
	rowsOn   bool
	rowShift uint
	rowLines int
	bankRows [][]uint64 // per-bank LRU row buffer
	lastDone float64

	// disc is the service discipline tag, resolved once per reset; the
	// hot path switches on it and never makes an interface call per
	// event (DESIGN.md §12). The per-discipline state below is retained
	// across resets like every other arena.
	disc Discipline

	// DRAM bank-group gating: group g admits no service start before
	// groupReady[g].
	groupGapOn    bool
	banksPerGroup int
	groupReady    []float64

	// Regulated: per-bank window accounting. regEpoch[b] is the index of
	// the regulation window bank b last charged, regUsed[b] the services
	// started in it.
	regWindow float64
	regBudget int32
	regEpoch  []int64
	regUsed   []int32

	// GPUShared: lanes per warp.
	warpSize int
}

// sectionOf maps a bank to its network section.
func (e *engine) sectionOf(bank int) int { return bank / e.banksPerSection }

// pending returns the number of scheduled events.
func (e *engine) pending() int {
	if e.useHeap {
		return e.heapq.len()
	}
	return e.events.len()
}

// sched inserts ev into the active scheduler.
func (e *engine) sched(ev event) {
	if e.useHeap {
		e.heapq.push(ev)
		return
	}
	e.events.push(ev)
}

// next removes and returns the (time, kind, seq)-minimum event.
func (e *engine) next() event {
	if e.useHeap {
		return e.heapq.pop()
	}
	return e.events.pop()
}

// cancelCheckEvents is how many simulated events pass between context
// polls in RunContext. Power of two; small enough that even quick-scale
// simulations (tens of thousands of events) observe cancellation
// mid-flight, large enough that the poll is free on the hot path.
const cancelCheckEvents = 1024

// Run simulates one superstep of pattern pt under cfg and returns the
// result. It panics on an invalid machine; other misconfiguration returns
// an error. Run is RunContext without cancellation.
func Run(cfg Config, pt core.Pattern) (Result, error) {
	return RunContext(context.Background(), cfg, pt)
}

// enginePool recycles engines across RunContext calls so back-to-back
// runs — a sweep's workers all funnel through here — reuse the retained
// wheel buckets, rings and bookkeeping slices instead of rebuilding them
// per run. Engines are parked released (no borrowed references; see
// engine.release), so the pool never pins a caller's pattern or probe.
var enginePool = sync.Pool{New: func() any { return new(Engine) }}

// AcquireEngine borrows an Engine from the package pool that Run and
// RunContext draw from — warm in the steady state, so the borrow costs no
// allocation. Callers that issue many runs from one goroutine (a worker
// loop, a benchmark) can hold the engine across all of them instead of
// paying a pool round-trip per run. Every AcquireEngine must be paired
// with ReleaseEngine; an engine is single-run at a time (see Engine).
func AcquireEngine() *Engine {
	return enginePool.Get().(*Engine)
}

// ReleaseEngine returns an acquired engine to the package pool. It first
// drops every reference the engine borrowed from its last run's inputs
// (pattern slices, probe, bank map), so a parked engine pins only its own
// retained arenas, never the caller's data. The engine must not be used
// after release.
func ReleaseEngine(e *Engine) {
	e.eng.release()
	enginePool.Put(e)
}

// RunContext is Run with cooperative cancellation: the event loop polls
// ctx every cancelCheckEvents events, so timeouts, retries and chaos
// cancellation interrupt a simulation mid-flight instead of waiting for
// it to finish. Polling reads no simulation state, so an uncancelled
// RunContext produces cycle counts byte-identical to Run.
//
// Runs execute on pooled engines (AcquireEngine/ReleaseEngine):
// Engine.Reset re-arms every piece of retained state over its full new
// extent, so reuse is invisible — results are byte-identical to a fresh
// engine's — and the steady-state allocation cost of a run is ~0
// (TestProbesOffAllocBudget pins it).
func RunContext(ctx context.Context, cfg Config, pt core.Pattern) (Result, error) {
	e := AcquireEngine()
	res, err := e.Run(ctx, cfg, pt)
	ReleaseEngine(e)
	return res, err
}

// simulate drains the event queue and assembles the result.
func (e *engine) simulate(ctx context.Context) (Result, error) {
	processed := 0
	for e.pending() > 0 {
		processed++
		if processed%cancelCheckEvents == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("sim: cancelled after %d events: %w", processed, err)
			}
		}
		e.dispatch(e.next())
	}

	e.res.Cycles = e.lastDone
	for i, c := range e.bankServe {
		if c > e.res.MaxBankServed {
			e.res.MaxBankServed = c
		}
		if e.banks[i].maxQ > e.res.MaxBankQueue {
			e.res.MaxBankQueue = e.banks[i].maxQ
		}
	}
	for i := range e.sections {
		if e.sections[i].maxQ > e.res.MaxSectionQueue {
			e.res.MaxSectionQueue = e.sections[i].maxQ
		}
	}
	if e.rp != nil {
		e.rp.RunDone(e.res)
	}
	return e.res, nil
}

func (e *engine) nextSeq() int {
	e.seq++
	return e.seq
}

func (e *engine) dispatch(ev event) {
	switch ev.kind {
	case evInject:
		e.inject(int(ev.proc), ev.time)
	case evSectionDone:
		e.sectionDone(int(ev.idx), ev.req(), ev.time)
	case evBankArrive:
		e.bankArrive(ev.req(), ev.time)
	case evBankDone:
		e.bankDone(int(ev.idx), ev.time)
	case evComplete:
		e.complete(int(ev.proc), ev.time)
	}
}

func (e *engine) inject(p int, now float64) {
	if e.disc == GPUShared {
		e.injectWarp(p, now)
		return
	}
	ps := &e.procs[p]
	if ps.next >= len(ps.addrs) {
		return
	}
	if e.cfg.Window > 0 && ps.outstanding >= e.cfg.Window {
		ps.blocked = true
		ps.blockedAt = now
		return
	}
	addr := ps.addrs[ps.next]
	req := request{proc: p, seq: e.nextSeq(), addr: addr, bank: bankOf(e.bmKind, e.bmArg, e.bm, addr)}
	ps.next++
	ps.outstanding++
	ps.nextIssueAt = now + e.cfg.Machine.G

	// Route into the network: either straight to the bank, or through the
	// bank's section first.
	if len(e.sections) > 1 {
		sec := e.sectionOf(req.bank)
		e.arriveSection(sec, req, now+e.cfg.NetDelay)
	} else {
		e.sched(event{time: now + e.cfg.NetDelay, seq: req.seq, kind: evBankArrive,
			proc: int32(req.proc), addr: req.addr, bank: int32(req.bank)})
	}

	if ps.next < len(ps.addrs) {
		e.sched(event{time: ps.nextIssueAt, seq: e.nextSeq(), kind: evInject, proc: int32(p)})
	}
}

// injectWarp is the GPUShared issue rule: processor p injects the next
// WarpSize requests of its stream as one warp-synchronous memory access.
// All lanes enter the network at now; the next warp is scheduled from
// complete once every lane's response has returned (outstanding == 0),
// no earlier than one issue gap after this one. Sections and windows are
// rejected by Validate, so lanes route straight to their banks.
func (e *engine) injectWarp(p int, now float64) {
	ps := &e.procs[p]
	w := len(ps.addrs) - ps.next
	if w <= 0 {
		return
	}
	if w > e.warpSize {
		w = e.warpSize
	}
	ps.nextIssueAt = now + e.cfg.Machine.G
	for i := 0; i < w; i++ {
		addr := ps.addrs[ps.next]
		req := request{proc: p, seq: e.nextSeq(), addr: addr, bank: bankOf(e.bmKind, e.bmArg, e.bm, addr)}
		ps.next++
		ps.outstanding++
		e.sched(event{time: now + e.cfg.NetDelay, seq: req.seq, kind: evBankArrive,
			proc: int32(req.proc), addr: req.addr, bank: int32(req.bank)})
	}
}

func (e *engine) arriveSection(sec int, req request, now float64) {
	s := &e.sections[sec]
	if e.rp != nil {
		e.rp.SectionArrive(sec, now, s.qlen())
	}
	if s.busy {
		s.enqueue(req)
		return
	}
	e.startSection(sec, req, now, false)
}

func (e *engine) startSection(sec int, req request, now float64, queued bool) {
	s := &e.sections[sec]
	s.busy = true
	if e.rp != nil {
		e.rp.SectionStart(sec, now, queued)
	}
	done := now + e.cfg.Machine.SectionGap
	e.sched(event{time: done, seq: req.seq, kind: evSectionDone, idx: int32(sec),
		proc: int32(req.proc), addr: req.addr, bank: int32(req.bank)})
}

func (e *engine) sectionDone(sec int, req request, now float64) {
	// Forward to the bank, then start the next queued request.
	e.sched(event{time: now, seq: req.seq, kind: evBankArrive,
		proc: int32(req.proc), addr: req.addr, bank: int32(req.bank)})
	s := &e.sections[sec]
	if next, ok := s.dequeue(); ok {
		e.startSection(sec, next, now, true)
	} else {
		s.busy = false
	}
}

func (e *engine) bankArrive(req request, now float64) {
	b := &e.banks[req.bank]
	if e.rp != nil {
		e.rp.BankArrive(req.bank, now, b.qlen())
	}
	if b.busy {
		b.enqueue(req)
		return
	}
	e.startBank(req.bank, req, now, false)
}

// startBank begins a bank service. The discipline decides the service
// time and the actual start instant; the switch on e.disc is the whole
// dispatch — resolved to a tag at reset, monomorphic in the loop — so
// adding a discipline costs FIFO nothing (DESIGN.md §12). start may
// trail now when the discipline defers the request (a bank-group bus
// slot under DRAM, an exhausted regulation window under Regulated); the
// bank is occupied for the deferral, exactly as real hardware holds the
// banked resource while it waits for its turn.
func (e *engine) startBank(bank int, req request, now float64, queued bool) {
	b := &e.banks[bank]
	b.busy = true
	start := now
	service := e.cfg.Machine.D
	rowHit := false
	switch e.disc {
	case FIFO:
		if e.rowsOn && e.rowAccess(bank, req.addr) {
			service = e.cfg.Bank.HitDelay
			rowHit = true
			e.res.RowHits++
		}
	case DRAM:
		if e.rowAccess(bank, req.addr) {
			service = e.cfg.Bank.HitDelay
			rowHit = true
			e.res.RowHits++
		} else {
			service = e.cfg.Bank.MissDelay
			e.res.RowConflicts++
		}
		if e.groupGapOn {
			g := bank / e.banksPerGroup
			if t := e.groupReady[g]; t > start {
				start = t
			}
			e.groupReady[g] = start + e.cfg.Bank.GroupGap
		}
	case Regulated:
		ep := int64(now / e.regWindow)
		if ep > e.regEpoch[bank] {
			e.regEpoch[bank] = ep
			e.regUsed[bank] = 0
		}
		if e.regUsed[bank] >= e.regBudget {
			// Budget exhausted: hold the bank until the next window opens.
			e.regEpoch[bank]++
			e.regUsed[bank] = 0
			start = float64(e.regEpoch[bank]) * e.regWindow
			e.res.ThrottleStalls++
			e.res.ThrottleStallCycles += start - now
		}
		e.regUsed[bank]++
	case GPUShared:
		if queued {
			e.res.WarpReplays++
		}
	}
	done := start + service
	e.res.BankServices++
	e.res.BankBusy += service
	e.bankServe[bank]++

	// The request(s) complete at done; responses transit back.
	e.respond(req, done)
	combined := 0
	if e.cfg.Combining {
		// Serve every queued request for the same address in this service.
		e.combineScratch = b.extractAddr(req.addr, e.combineScratch[:0])
		combined = len(e.combineScratch)
		for _, q := range e.combineScratch {
			e.bankServe[bank]++
			e.respond(q, done)
		}
	}
	if e.rp != nil {
		e.rp.BankStart(bank, start, service, start-now, rowHit, queued, combined)
	}
	e.sched(event{time: done, seq: req.seq, kind: evBankDone, idx: int32(bank)})
}

// respond delivers the response for a request whose bank service finishes
// at done. In the open-loop default (Window == 0) no processor can ever
// block, so the response's only observable effect is advancing the
// completion clock — the per-request evComplete heap event is collapsed
// into a direct max, removing one push+pop per request from the dominant
// configuration. The resulting cycle counts are byte-identical: the
// closed-loop complete handler under Window == 0 only ever updates
// lastDone with the same now = done + NetDelay (outstanding/completed
// feed the Window check alone and blocked is never set). See DESIGN.md §9.
func (e *engine) respond(req request, done float64) {
	t := done + e.cfg.NetDelay
	if e.openLoop {
		if t > e.lastDone {
			e.lastDone = t
		}
		return
	}
	e.sched(event{time: t, seq: req.seq, kind: evComplete, proc: int32(req.proc)})
}

// rowAccess reports whether addr's row is in bank's row buffer and
// updates the LRU state (most recent row at the end).
func (e *engine) rowAccess(bank int, addr uint64) bool {
	row := addr >> e.rowShift
	rows := e.bankRows[bank]
	for i, r := range rows {
		if r == row {
			// Move to MRU position.
			copy(rows[i:], rows[i+1:])
			rows[len(rows)-1] = row
			return true
		}
	}
	if len(rows) < e.rowLines {
		e.bankRows[bank] = append(rows, row)
	} else {
		copy(rows, rows[1:])
		rows[len(rows)-1] = row
	}
	return false
}

func (e *engine) bankDone(bank int, now float64) {
	b := &e.banks[bank]
	if next, ok := b.dequeue(); ok {
		e.startBank(bank, next, now, true)
	} else {
		b.busy = false
	}
}

func (e *engine) complete(p int, now float64) {
	ps := &e.procs[p]
	ps.outstanding--
	ps.completed++
	if now > e.lastDone {
		e.lastDone = now
	}
	if e.disc == GPUShared {
		// Warp barrier: the next warp issues only once every lane of the
		// current one has returned, no earlier than the issue gap allows.
		if ps.outstanding == 0 && ps.next < len(ps.addrs) {
			t := now
			if ps.nextIssueAt > t {
				t = ps.nextIssueAt
			}
			e.sched(event{time: t, seq: e.nextSeq(), kind: evInject, proc: int32(p)})
		}
		return
	}
	if ps.blocked {
		ps.blocked = false
		if e.rp != nil {
			e.rp.WindowStall(p, ps.blockedAt, now)
		}
		t := now
		if ps.nextIssueAt > t {
			t = ps.nextIssueAt
		}
		e.sched(event{time: t, seq: e.nextSeq(), kind: evInject, proc: int32(p)})
	}
}
