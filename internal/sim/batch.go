package sim

import (
	"context"
	"fmt"
	"sync"

	"dxbsp/internal/core"
)

// BatchEngine advances K simulation configurations ("lanes") over one
// shared access pattern in lockstep. Sweeps are fans of near-identical
// points — the same request stream under varying d, x, g, NetDelay or
// bank map — so the pattern walk, address decode and per-round control
// flow can be paid once and amortized across every lane instead of once
// per config (DESIGN.md §14).
//
// Lanes that satisfy BatchEligible run on the lockstep fast path over
// structure-of-arrays state: per-lane clocks and counters in [K]-dense
// slices, per-(lane,bank) service state in one lane-major arena indexed
// by off[lane]+bank. The fast path replays exactly the floating-point
// operations of the scalar event loop in exactly the scalar order (see
// the correctness argument on runFast), so every lane's Result is
// byte-identical to Engine.Run of that lane alone — pinned by the golden
// 128-config diff, TestBatchMatchesScalar and FuzzBatchVsScalar.
//
// Lanes outside the fast-path regime (windowed, combining, sectioned,
// row-buffered, probed, or non-FIFO disciplines) run sequentially on one
// retained scalar engine inside the batch — still one call, still
// byte-identical, just without the lockstep speedup.
//
// Like Engine, a BatchEngine is single-run at a time and retains every
// arena across Reset, so warm batches allocate nothing
// (TestBatchEngineReuseZeroAllocs pins it).
type BatchEngine struct {
	// Per-lane parameter SoA, all len K. fast marks lockstep lanes.
	cfgs []Config
	fast []bool

	g, nd, d []float64 // issue gap, one-way net delay, service time
	injT     []float64 // current round's injection time (accumulated += g)
	lastDone []float64 // completion clock (max response arrival)
	busyAcc  []float64 // total bank busy time (+= d per service)
	maxQ     []int32   // high-water queue depth over all banks
	off      []int32   // lane's base index into the bank arenas

	// Bank-map dispatch, resolved per lane at Reset: a tag plus argument
	// for the two interleave families, with the boxed interface retained
	// only for custom maps (mapGeneric).
	mk    []mapKind
	mkArg []uint64
	bms   []core.BankMap

	// Lane-major per-(lane,bank) arenas, sized sum of fast lanes' banks.
	// lastFin[i] is the finish time of the latest request at that bank;
	// frontStart[i]/qn[i] model the FIFO queue without storing it (see
	// runFast); serve[i] counts services for MaxBankServed.
	lastFin    []float64
	frontStart []float64
	qn         []int32
	serve      []int32

	laneIdx []int32 // fast lanes in order, rebuilt per Reset

	// Per-lane boxed-default-BankMap caches, mirroring Engine.defMap:
	// re-boxing the default interleave map every Reset would cost one
	// allocation per lane per batch.
	defMaps  []core.BankMap
	defBanks []int
	defGPU   []bool

	results []Result

	// scalar runs the non-fast lanes; retained so their arenas pool too.
	scalar Engine
}

// mapKind tags the bank-map families the hot loops inline instead of
// making an interface call per request. resolveMap classifies a map once
// per reset; bankOf dispatches on the tag.
type mapKind uint8

const (
	mapGeneric mapKind = iota // anything else: interface call
	mapMod                    // InterleaveMap: addr % banks
	mapMask                   // InterleaveMap, power-of-two banks: addr & mask
	mapGPUMod                 // GPUSharedMap: (addr / 4) % banks
	mapGPUMask                // GPUSharedMap, power-of-two banks: (addr >> 2) & mask
)

// resolveMap classifies bm into an inline-dispatch tag and argument.
// Unknown implementations fall back to the interface call (mapGeneric).
func resolveMap(bm core.BankMap) (mapKind, uint64) {
	switch m := bm.(type) {
	case core.InterleaveMap:
		b := uint64(m.Banks)
		if b&(b-1) == 0 {
			return mapMask, b - 1
		}
		return mapMod, b
	case core.GPUSharedMap:
		b := uint64(m.Banks)
		if b&(b-1) == 0 {
			return mapGPUMask, b - 1
		}
		return mapGPUMod, b
	}
	return mapGeneric, 0
}

// bankOf computes the bank for addr under a resolved map. The integer
// identities are exact ((addr/4)%2^k == (addr>>2)&(2^k-1)), so the tag
// paths return precisely what the interface call would.
func bankOf(kind mapKind, arg uint64, bm core.BankMap, addr uint64) int {
	switch kind {
	case mapMask:
		return int(addr & arg)
	case mapMod:
		return int(addr % arg)
	case mapGPUMask:
		return int((addr >> 2) & arg)
	case mapGPUMod:
		return int((addr / 4) % arg)
	}
	return bm.Bank(addr)
}

// BatchEligible reports whether cfg takes the lockstep fast path inside
// a BatchEngine. The regime is the open-loop FIFO bank — the paper's
// machines and the dominant sweep configuration: no window, no
// combining, no section bottleneck, no row buffers, no probe, FIFO
// discipline. Ineligible configs still run correctly in a batch (on the
// embedded scalar engine), they just don't share the lockstep pass;
// callers that group work (runner.Batcher) use this to batch only where
// batching pays.
func BatchEligible(cfg Config) bool {
	if cfg.Window != 0 || cfg.Combining || cfg.Probe != nil {
		return false
	}
	if cfg.UseSections && cfg.Machine.Sections > 1 {
		return false
	}
	if cfg.Bank.Discipline != FIFO {
		return false
	}
	if cfg.Bank.CacheLines > 0 || cfg.BankCacheLines > 0 {
		return false
	}
	return true
}

// NewBatchEngine returns an empty BatchEngine. The first Run sizes its
// arenas; later runs reuse them whenever the shape still fits.
func NewBatchEngine() *BatchEngine { return &BatchEngine{} }

// batchPool recycles BatchEngines exactly as enginePool recycles scalar
// engines: parked released, so a pooled batch engine pins only its own
// arenas.
var batchPool = sync.Pool{New: func() any { return new(BatchEngine) }}

// AcquireBatchEngine borrows a BatchEngine from the package pool. Pair
// with ReleaseBatchEngine.
func AcquireBatchEngine() *BatchEngine {
	return batchPool.Get().(*BatchEngine)
}

// ReleaseBatchEngine drops the engine's borrowed references (configs,
// bank maps, last results) and parks it. The engine — and the results
// slice its last Run returned — must not be used after release.
func ReleaseBatchEngine(b *BatchEngine) {
	b.release()
	batchPool.Put(b)
}

func (b *BatchEngine) release() {
	for i := range b.cfgs {
		b.cfgs[i] = Config{}
	}
	for i := range b.bms {
		b.bms[i] = nil
	}
	b.scalar.eng.release()
}

// RunBatch simulates pt under every config in cfgs on a pooled
// BatchEngine and returns one Result per lane, in lane order. The
// returned slice is freshly allocated (safe to retain); callers running
// many batches from one goroutine can hold an engine via
// AcquireBatchEngine and use BatchEngine.Run to avoid the copy.
func RunBatch(ctx context.Context, cfgs []Config, pt core.Pattern) ([]Result, error) {
	b := AcquireBatchEngine()
	res, err := b.Run(ctx, cfgs, pt)
	if err == nil {
		res = append([]Result(nil), res...)
	}
	ReleaseBatchEngine(b)
	return res, err
}

// Run simulates one superstep of pt under every config in cfgs and
// returns one Result per lane, in lane order. Each lane's Result is
// byte-identical to Engine.Run of that lane alone. Validation is
// all-or-nothing: any invalid lane fails the whole batch before any lane
// simulates, with the error naming the lane. The returned slice is owned
// by the engine and valid until the next Run or release.
func (b *BatchEngine) Run(ctx context.Context, cfgs []Config, pt core.Pattern) ([]Result, error) {
	if err := b.reset(cfgs, pt); err != nil {
		return nil, err
	}
	// Non-fast lanes run first on the embedded scalar engine; lane order
	// in the results is preserved regardless of execution order.
	for i := range b.cfgs {
		if b.fast[i] {
			continue
		}
		res, err := b.scalar.Run(ctx, b.cfgs[i], pt)
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		b.results[i] = res
	}
	if err := b.runFast(ctx, pt); err != nil {
		return nil, err
	}
	return b.results, nil
}

// reset validates every lane and re-arms the SoA state, reusing retained
// storage. Mirrors Engine.Reset lane by lane.
func (b *BatchEngine) reset(cfgs []Config, pt core.Pattern) error {
	k := len(cfgs)
	b.cfgs = growSlice(b.cfgs, k)
	b.fast = growSlice(b.fast, k)
	b.g = growSlice(b.g, k)
	b.nd = growSlice(b.nd, k)
	b.d = growSlice(b.d, k)
	b.injT = growSlice(b.injT, k)
	b.lastDone = growSlice(b.lastDone, k)
	b.busyAcc = growSlice(b.busyAcc, k)
	b.maxQ = growSlice(b.maxQ, k)
	b.off = growSlice(b.off, k)
	b.mk = growSlice(b.mk, k)
	b.mkArg = growSlice(b.mkArg, k)
	b.bms = growSlice(b.bms, k)
	b.results = growSlice(b.results, k)
	b.laneIdx = b.laneIdx[:0]
	if cap(b.defMaps) < k {
		b.defMaps = make([]core.BankMap, k)
		b.defBanks = make([]int, k)
		b.defGPU = make([]bool, k)
	}

	total := 0
	for i, cfg := range cfgs {
		if err := cfg.Machine.Validate(); err != nil {
			return fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		if cfg.BankMap == nil {
			gpu := cfg.Bank.Discipline == GPUShared
			if b.defMaps[i] == nil || b.defBanks[i] != cfg.Machine.Banks || b.defGPU[i] != gpu {
				if gpu {
					b.defMaps[i] = core.GPUSharedMap{Banks: cfg.Machine.Banks}
				} else {
					b.defMaps[i] = core.InterleaveMap{Banks: cfg.Machine.Banks}
				}
				b.defBanks[i] = cfg.Machine.Banks
				b.defGPU[i] = gpu
			}
			cfg.BankMap = b.defMaps[i]
		}
		cfg = cfg.Normalize()
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		if pt.Procs() > cfg.Machine.Procs {
			return fmt.Errorf("sim: batch lane %d: pattern has %d processor streams but machine has %d processors",
				i, pt.Procs(), cfg.Machine.Procs)
		}
		b.cfgs[i] = cfg
		b.fast[i] = BatchEligible(cfg)
		b.results[i] = Result{}
		if !b.fast[i] {
			continue
		}
		b.laneIdx = append(b.laneIdx, int32(i))
		b.g[i] = cfg.Machine.G
		b.nd[i] = cfg.NetDelay
		b.d[i] = cfg.Machine.D
		b.injT[i] = 0
		b.lastDone[i] = 0
		b.busyAcc[i] = 0
		b.maxQ[i] = 0
		b.off[i] = int32(total)
		b.mk[i], b.mkArg[i] = resolveMap(cfg.BankMap)
		b.bms[i] = cfg.BankMap
		total += cfg.Machine.Banks
	}

	b.lastFin = growSlice(b.lastFin, total)
	b.frontStart = growSlice(b.frontStart, total)
	b.qn = growSlice(b.qn, total)
	b.serve = growSlice(b.serve, total)
	for i := range b.lastFin {
		b.lastFin[i] = -1 // any arrival time is >= 0, so -1 reads as idle
		b.frontStart[i] = 0
		b.qn[i] = 0
		b.serve[i] = 0
	}
	return nil
}

// growSlice returns s resized to length n, reusing capacity and zeroing
// nothing (callers reinitialize the active region themselves).
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// batchPollRequests is how many (lane, request) services pass between
// context polls in runFast — the batch analogue of cancelCheckEvents.
const batchPollRequests = 4096

// runFast executes every fast lane in lockstep over the shared pattern.
//
// Correctness. In the open-loop FIFO regime the scalar event loop is
// fully determined:
//
//   - Processor p injects its r-th request at t_r, with t_0 = 0 and
//     t_{r+1} = t_r + G (inject accumulates nextIssueAt = now + G), so
//     injT replays the identical float sum. Within a round, injects fire
//     in processor order (their seqs were assigned in that order the
//     round before), so request seqs ascend (round, proc)-lexically.
//   - Every request arrives at its bank at a = t_r + NetDelay. Arrivals
//     at one bank are ordered by (time, seq); both orders agree with
//     (round, proc), so walking round-major then proc-major visits each
//     bank's arrivals in exactly the scalar service order.
//   - A bank is busy at arrival a iff the previous request's finish
//     f >= a: bank-done at time == a has event kind evBankDone >
//     evBankArrive, so the done fires after the arrival and the arrival
//     queues. A queued request starts when its predecessor finishes, so
//     finishes chain f_i = f_{i-1} + d — the same float op the scalar
//     engine performs — and an idle bank serves on arrival, f = a + d.
//   - Queue depth: the scalar ring's maxQ counts waiters excluding the
//     one in service. Rather than store the queue, we keep the oldest
//     waiter's start time (frontStart) and the waiter count (qn): a
//     waiter has left the queue by time a iff its start s < a (a start
//     at s == a comes from a done at s, kind evBankDone, which fires
//     after the arrival), and successive waiters' starts differ by
//     exactly += d, so popping replays the exact floats the scalar
//     engine computed.
//   - Responses only advance the completion clock (open loop collapses
//     evComplete): lastDone = max over requests of f + NetDelay, and
//     BankBusy accumulates += d per service — order-independent here
//     because d is constant within a lane.
func (b *BatchEngine) runFast(ctx context.Context, pt core.Pattern) error {
	lanes := b.laneIdx
	if len(lanes) == 0 {
		return nil
	}
	maxLen := 0
	for _, addrs := range pt.PerProc {
		if len(addrs) > maxLen {
			maxLen = len(addrs)
		}
	}
	processed := 0
	sincePoll := 0
	for r := 0; r < maxLen; r++ {
		if sincePoll >= batchPollRequests {
			sincePoll = 0
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: batch cancelled after %d lane-requests: %w", processed, err)
			}
		}
		for _, addrs := range pt.PerProc {
			if r >= len(addrs) {
				continue
			}
			addr := addrs[r]
			for _, li := range lanes {
				a := b.injT[li] + b.nd[li]
				bank := bankOf(b.mk[li], b.mkArg[li], b.bms[li], addr)
				idx := int(b.off[li]) + bank
				dl := b.d[li]
				var done float64
				if f := b.lastFin[idx]; f >= a {
					// Busy: drain waiters already started before a, then queue.
					fs, n := b.frontStart[idx], b.qn[idx]
					for n > 0 && fs < a {
						fs += dl
						n--
					}
					n++
					if n == 1 {
						fs = f
					}
					b.frontStart[idx] = fs
					b.qn[idx] = n
					if n > b.maxQ[li] {
						b.maxQ[li] = n
					}
					done = f + dl
				} else {
					b.qn[idx] = 0
					done = a + dl
				}
				b.lastFin[idx] = done
				b.serve[idx]++
				b.busyAcc[li] += dl
				if t := done + b.nd[li]; t > b.lastDone[li] {
					b.lastDone[li] = t
				}
			}
			processed += len(lanes)
			sincePoll += len(lanes)
		}
		for _, li := range lanes {
			b.injT[li] += b.g[li]
		}
	}

	n := pt.N()
	for _, li := range lanes {
		res := &b.results[li]
		res.Cycles = b.lastDone[li]
		res.Requests = n
		res.BankServices = n
		res.MaxBankQueue = int(b.maxQ[li])
		res.BankBusy = b.busyAcc[li]
		lo := int(b.off[li])
		hi := lo + b.cfgs[li].Machine.Banks
		for _, c := range b.serve[lo:hi] {
			if int(c) > res.MaxBankServed {
				res.MaxBankServed = int(c)
			}
		}
	}
	return nil
}
