package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"dxbsp/internal/core"
)

// BatchEngine advances K simulation configurations ("lanes") over one
// shared access pattern in lockstep. Sweeps are fans of near-identical
// points — the same request stream under varying d, x, g, NetDelay or
// bank map — so the pattern walk, address decode and per-round control
// flow can be paid once and amortized across every lane instead of once
// per config (DESIGN.md §14).
//
// Lanes that satisfy BatchEligible run on the lockstep fast path over
// structure-of-arrays state: per-lane clocks and counters in [K]-dense
// slices, per-(lane,bank) service state in one lane-major arena indexed
// by off[lane]+bank. The fast path replays exactly the floating-point
// operations of the scalar event loop in exactly the scalar order (see
// the correctness argument on runFast and DESIGN.md §16), so every
// lane's Result is byte-identical to Engine.Run of that lane alone —
// pinned by the golden 128-config diff, TestBatchMatchesScalar and
// FuzzBatchVsScalar.
//
// The eligible regime covers the open- and closed-loop (Window > 0)
// FIFO bank, the Regulated bank, and row-buffer DRAM without bank
// groups. A closed-loop lane advances in lockstep while no processor is
// window-blocked; at the first stall the lane alone detaches into a
// per-lane replay of the scalar engine's remaining events (runReplay) —
// it never falls back to the pooled scalar engine. Structurally
// ineligible lanes (combining, sections, probes, GPUShared, HS93 row
// caches, grouped or multi-row DRAM) run sequentially on one retained
// scalar engine inside the batch — still one call, still
// byte-identical, just without the lockstep speedup.
//
// Like Engine, a BatchEngine is single-run at a time and retains every
// arena across Reset, so warm batches allocate nothing
// (TestBatchEngineReuseZeroAllocs pins it).
type BatchEngine struct {
	// Per-lane parameter SoA, all len K. fast marks lockstep lanes.
	cfgs []Config
	fast []bool

	g, nd, d []float64 // issue gap, one-way net delay, service time
	injT     []float64 // current round's injection time (accumulated += g)
	lastDone []float64 // completion clock (max response arrival)
	busyAcc  []float64 // total bank busy time (+= service per service)
	maxQ     []int32   // high-water queue depth over all banks
	off      []int32   // lane's base index into the bank arenas

	// Bank-map dispatch, resolved per lane at Reset: a tag plus argument
	// for the two interleave families, with the boxed interface retained
	// only for custom maps (mapGeneric).
	mk    []mapKind
	mkArg []uint64
	bms   []core.BankMap

	// Lane-major per-(lane,bank) arenas, sized sum of fast lanes' banks.
	// lastFin[i] is the finish time of the latest request at that bank;
	// frontStart[i]/qn[i] model a constant-service FIFO queue without
	// storing it (see runFast); serve[i] counts services for
	// MaxBankServed.
	lastFin    []float64
	frontStart []float64
	qn         []int32
	serve      []int32

	// Per-lane discipline/loop classification (fast lanes only).
	cls   []laneClass
	win   []int32 // Window (0 = open loop)
	plain []bool  // open-loop FIFO: the original PR 8 inline path

	// Per-lane discipline parameters (fast lanes only; meaningful per
	// class). rowShiftL is the DRAM row shift; hitD/missD the DRAM
	// service times; regW/regB the Regulated window and budget.
	rowShiftL []uint8
	hitD      []float64
	missD     []float64
	regW      []float64
	regB      []int32

	// Per-lane request-sequence counters and result tallies for the
	// non-plain classes. seqCtr replays the scalar engine's nextSeq
	// stream exactly (blocked injection attempts consume none, every
	// schedule consumes one); the tallies are ints, so accumulation
	// order is free.
	seqCtr    []int32
	rowHitsL  []int32
	rowConfL  []int32
	thrStalls []int32

	// Per-(lane,bank) arena for the variable-service classes (DRAM,
	// Regulated), lane-major at vOff[lane] (-1 for FIFO lanes): the open
	// row tag, the regulation window accounting, the seq of the bank's
	// latest request (ordering key for deferred accumulation), and a
	// ring of waiter dequeue times replacing the constant-d frontStart
	// arithmetic (a waiter leaves the queue exactly when its predecessor
	// finishes, which is the value of lastFin at its enqueue).
	vOff     []int32
	rowTag   []uint64
	rowHas   []bool
	regEpoch []int64
	regUsed  []int32
	lastSeq  []int32
	ringBuf  [][]float64 // power-of-two rings, grown on demand, retained
	ringHead []int32
	ringN    []int32

	// Per-(lane,proc) arena for closed-loop lanes, lane-major at
	// wOff[lane] (-1 for open-loop lanes): requests in flight per
	// processor and the seq of the processor's pending inject event.
	wOff   []int32
	outst  []int32
	injSeq []int32

	// comp[lane] is a closed-loop lane's pending-completion min-heap
	// (ordered by time): a completion strictly before the next
	// injection grid point has been processed by the scalar engine
	// before that inject, so it drains outst at round start. busyEvs
	// [lane] collects float accumulations whose scalar order differs
	// from arrival order (DRAM BankBusy, Regulated ThrottleStallCycles);
	// they are sorted by scalar event key and summed at finalize.
	comp    [][]compEv
	busyEvs [][]busyEv

	// active marks lanes still in lockstep; a closed-loop lane that
	// window-stalls replays to completion and deactivates. runLanes is
	// the compactable working copy of laneIdx.
	active   []bool
	runLanes []int32

	// Replay scratch, sized to the pattern's processor count. Shared by
	// all detaching lanes: a detach replays to completion before
	// lockstep resumes. The replay keeps no global event queue — each
	// processor exposes at most one actionable candidate (its pending
	// injection attempt, or, when blocked, the head of its private
	// completion heap rComp[q]) and the main loop picks the scalar-order
	// minimum with a linear scan (see runReplay).
	rNext  []int32
	rNIA   []float64
	rCandT []float64 // candidate time, +Inf when the proc has none
	rCandA []int64   // candidate aux key: kind<<32 | seq
	rComp  [][]compEv

	laneIdx  []int32 // fast lanes in order, rebuilt per Reset
	allPlain bool    // every fast lane is open-loop FIFO

	beSorter busyEvSorter

	// Per-lane boxed-default-BankMap caches, mirroring Engine.defMap:
	// re-boxing the default interleave map every Reset would cost one
	// allocation per lane per batch.
	defMaps  []core.BankMap
	defBanks []int
	defGPU   []bool

	results []Result

	// scalar runs the non-fast lanes; retained so their arenas pool too.
	scalar Engine
}

// laneClass is a fast lane's service-discipline class, the per-arrival
// dispatch tag of the lockstep loop.
type laneClass uint8

const (
	lcFIFO laneClass = iota // constant-d FIFO service
	lcDRAM                  // single open row per bank, no bank groups
	lcReg                   // bandwidth-regulated bank
)

// compEv is one pending closed-loop completion: the response for request
// seq (issued by proc) arrives back at its processor at time t.
type compEv struct {
	t         float64
	seq, proc int32
}

// busyEv is one deferred float accumulation: value v added to a Result
// accumulator during the scalar event with time t and packed
// (kind, seq) key.
type busyEv struct {
	t   float64
	key uint64
	v   float64
}

type busyEvSorter struct{ s []busyEv }

func (b *busyEvSorter) Len() int      { return len(b.s) }
func (b *busyEvSorter) Swap(i, j int) { b.s[i], b.s[j] = b.s[j], b.s[i] }
func (b *busyEvSorter) Less(i, j int) bool {
	if b.s[i].t != b.s[j].t {
		return b.s[i].t < b.s[j].t
	}
	return b.s[i].key < b.s[j].key
}

// mapKind tags the bank-map families the hot loops inline instead of
// making an interface call per request. resolveMap classifies a map once
// per reset; bankOf dispatches on the tag.
type mapKind uint8

const (
	mapGeneric mapKind = iota // anything else: interface call
	mapMod                    // InterleaveMap: addr % banks
	mapMask                   // InterleaveMap, power-of-two banks: addr & mask
	mapGPUMod                 // GPUSharedMap: (addr / 4) % banks
	mapGPUMask                // GPUSharedMap, power-of-two banks: (addr >> 2) & mask
)

// resolveMap classifies bm into an inline-dispatch tag and argument.
// Unknown implementations fall back to the interface call (mapGeneric).
func resolveMap(bm core.BankMap) (mapKind, uint64) {
	switch m := bm.(type) {
	case core.InterleaveMap:
		b := uint64(m.Banks)
		if b&(b-1) == 0 {
			return mapMask, b - 1
		}
		return mapMod, b
	case core.GPUSharedMap:
		b := uint64(m.Banks)
		if b&(b-1) == 0 {
			return mapGPUMask, b - 1
		}
		return mapGPUMod, b
	}
	return mapGeneric, 0
}

// bankOf computes the bank for addr under a resolved map. The integer
// identities are exact ((addr/4)%2^k == (addr>>2)&(2^k-1)), so the tag
// paths return precisely what the interface call would.
func bankOf(kind mapKind, arg uint64, bm core.BankMap, addr uint64) int {
	switch kind {
	case mapMask:
		return int(addr & arg)
	case mapMod:
		return int(addr % arg)
	case mapGPUMask:
		return int((addr >> 2) & arg)
	case mapGPUMod:
		return int((addr / 4) % arg)
	}
	return bm.Bank(addr)
}

// BatchEligible reports whether cfg takes the lockstep fast path inside
// a BatchEngine: open- or closed-loop FIFO, Regulated, or ungrouped
// single-row DRAM, with no combining, no section bottleneck and no
// probe. Ineligible configs still run correctly in a batch (on the
// embedded scalar engine), they just don't share the lockstep pass;
// callers that group work (runner.Batcher) use this to batch only where
// batching pays. Equivalent to BatchFallbackReason(cfg) == "".
func BatchEligible(cfg Config) bool {
	return BatchFallbackReason(cfg) == ""
}

// BatchFallbackReason returns "" when cfg is lockstep-eligible, or a
// short stable label naming the structural reason it is not — the label
// set the runner's batch-efficacy metrics report. It is deterministic on
// raw and normalized configs alike (the runner's Batcher classifies raw
// configs), so the one default it must anticipate is DRAM's CacheLines,
// where unset means one open row.
func BatchFallbackReason(cfg Config) string {
	if cfg.Combining {
		return "combining"
	}
	if cfg.Probe != nil {
		return "probe"
	}
	if cfg.UseSections && cfg.Machine.Sections > 1 {
		return "sections"
	}
	switch cfg.Bank.Discipline {
	case FIFO:
		if cfg.Bank.CacheLines > 0 || cfg.BankCacheLines > 0 {
			return "row-cache"
		}
	case DRAM:
		if cfg.Bank.Groups > 0 {
			return "dram-groups"
		}
		if cfg.Bank.CacheLines > 1 {
			return "dram-multirow"
		}
	case Regulated:
		// Fully eligible: the window accounting is per-(lane,bank) state.
	default:
		return "gpu-shared"
	}
	return ""
}

// NewBatchEngine returns an empty BatchEngine. The first Run sizes its
// arenas; later runs reuse them whenever the shape still fits.
func NewBatchEngine() *BatchEngine { return &BatchEngine{} }

// batchPool recycles BatchEngines exactly as enginePool recycles scalar
// engines: parked released, so a pooled batch engine pins only its own
// arenas.
var batchPool = sync.Pool{New: func() any { return new(BatchEngine) }}

// AcquireBatchEngine borrows a BatchEngine from the package pool. Pair
// with ReleaseBatchEngine.
func AcquireBatchEngine() *BatchEngine {
	return batchPool.Get().(*BatchEngine)
}

// ReleaseBatchEngine drops the engine's borrowed references (configs,
// bank maps, last results) and parks it. The engine — and the results
// slice its last Run returned — must not be used after release.
func ReleaseBatchEngine(b *BatchEngine) {
	b.release()
	batchPool.Put(b)
}

func (b *BatchEngine) release() {
	for i := range b.cfgs {
		b.cfgs[i] = Config{}
	}
	for i := range b.bms {
		b.bms[i] = nil
	}
	b.scalar.eng.release()
}

// RunBatch simulates pt under every config in cfgs on a pooled
// BatchEngine and returns one Result per lane, in lane order. The
// returned slice is freshly allocated (safe to retain); callers running
// many batches from one goroutine can hold an engine via
// AcquireBatchEngine and use BatchEngine.Run to avoid the copy.
func RunBatch(ctx context.Context, cfgs []Config, pt core.Pattern) ([]Result, error) {
	b := AcquireBatchEngine()
	res, err := b.Run(ctx, cfgs, pt)
	if err == nil {
		res = append([]Result(nil), res...)
	}
	ReleaseBatchEngine(b)
	return res, err
}

// Run simulates one superstep of pt under every config in cfgs and
// returns one Result per lane, in lane order. Each lane's Result is
// byte-identical to Engine.Run of that lane alone. Validation is
// all-or-nothing: any invalid lane fails the whole batch before any lane
// simulates, with the error naming the lane. The returned slice is owned
// by the engine and valid until the next Run or release.
func (b *BatchEngine) Run(ctx context.Context, cfgs []Config, pt core.Pattern) ([]Result, error) {
	if err := b.reset(cfgs, pt); err != nil {
		return nil, err
	}
	// Non-fast lanes run first on the embedded scalar engine; lane order
	// in the results is preserved regardless of execution order.
	for i := range b.cfgs {
		if b.fast[i] {
			continue
		}
		res, err := b.scalar.Run(ctx, b.cfgs[i], pt)
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		b.results[i] = res
	}
	if err := b.runFast(ctx, pt); err != nil {
		return nil, err
	}
	return b.results, nil
}

// reset validates every lane and re-arms the SoA state, reusing retained
// storage. Mirrors Engine.Reset lane by lane.
func (b *BatchEngine) reset(cfgs []Config, pt core.Pattern) error {
	k := len(cfgs)
	np := pt.Procs()
	b.cfgs = growSlice(b.cfgs, k)
	b.fast = growSlice(b.fast, k)
	b.g = growSlice(b.g, k)
	b.nd = growSlice(b.nd, k)
	b.d = growSlice(b.d, k)
	b.injT = growSlice(b.injT, k)
	b.lastDone = growSlice(b.lastDone, k)
	b.busyAcc = growSlice(b.busyAcc, k)
	b.maxQ = growSlice(b.maxQ, k)
	b.off = growSlice(b.off, k)
	b.mk = growSlice(b.mk, k)
	b.mkArg = growSlice(b.mkArg, k)
	b.bms = growSlice(b.bms, k)
	b.cls = growSlice(b.cls, k)
	b.win = growSlice(b.win, k)
	b.plain = growSlice(b.plain, k)
	b.rowShiftL = growSlice(b.rowShiftL, k)
	b.hitD = growSlice(b.hitD, k)
	b.missD = growSlice(b.missD, k)
	b.regW = growSlice(b.regW, k)
	b.regB = growSlice(b.regB, k)
	b.seqCtr = growSlice(b.seqCtr, k)
	b.rowHitsL = growSlice(b.rowHitsL, k)
	b.rowConfL = growSlice(b.rowConfL, k)
	b.thrStalls = growSlice(b.thrStalls, k)
	b.vOff = growSlice(b.vOff, k)
	b.wOff = growSlice(b.wOff, k)
	b.active = growSlice(b.active, k)
	b.comp = growNested(b.comp, k)
	b.busyEvs = growNested(b.busyEvs, k)
	b.results = growSlice(b.results, k)
	b.laneIdx = b.laneIdx[:0]
	if cap(b.defMaps) < k {
		b.defMaps = make([]core.BankMap, k)
		b.defBanks = make([]int, k)
		b.defGPU = make([]bool, k)
	}

	// nonEmpty replays the scalar reset's initial injection scheduling:
	// one evInject seq per processor with a non-empty stream, assigned
	// in processor order.
	nonEmpty := int32(0)
	for _, addrs := range pt.PerProc {
		if len(addrs) > 0 {
			nonEmpty++
		}
	}

	total, vTotal, wTotal := 0, 0, 0
	b.allPlain = true
	for i, cfg := range cfgs {
		if err := cfg.Machine.Validate(); err != nil {
			return fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		if cfg.BankMap == nil {
			gpu := cfg.Bank.Discipline == GPUShared
			if b.defMaps[i] == nil || b.defBanks[i] != cfg.Machine.Banks || b.defGPU[i] != gpu {
				if gpu {
					b.defMaps[i] = core.GPUSharedMap{Banks: cfg.Machine.Banks}
				} else {
					b.defMaps[i] = core.InterleaveMap{Banks: cfg.Machine.Banks}
				}
				b.defBanks[i] = cfg.Machine.Banks
				b.defGPU[i] = gpu
			}
			cfg.BankMap = b.defMaps[i]
		}
		cfg = cfg.Normalize()
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		if pt.Procs() > cfg.Machine.Procs {
			return fmt.Errorf("sim: batch lane %d: pattern has %d processor streams but machine has %d processors",
				i, pt.Procs(), cfg.Machine.Procs)
		}
		b.cfgs[i] = cfg
		b.fast[i] = BatchEligible(cfg)
		b.results[i] = Result{}
		if !b.fast[i] {
			continue
		}
		b.laneIdx = append(b.laneIdx, int32(i))
		b.g[i] = cfg.Machine.G
		b.nd[i] = cfg.NetDelay
		b.d[i] = cfg.Machine.D
		b.injT[i] = 0
		b.lastDone[i] = 0
		b.busyAcc[i] = 0
		b.maxQ[i] = 0
		b.off[i] = int32(total)
		b.mk[i], b.mkArg[i] = resolveMap(cfg.BankMap)
		b.bms[i] = cfg.BankMap
		total += cfg.Machine.Banks

		b.win[i] = int32(cfg.Window)
		switch cfg.Bank.Discipline {
		case DRAM:
			b.cls[i] = lcDRAM
			b.rowShiftL[i] = uint8(rowShiftOf(cfg.Bank.RowWords))
			b.hitD[i] = cfg.Bank.HitDelay
			b.missD[i] = cfg.Bank.MissDelay
		case Regulated:
			b.cls[i] = lcReg
			b.regW[i] = cfg.Bank.RegWindow
			b.regB[i] = int32(cfg.Bank.RegBudget)
		default:
			b.cls[i] = lcFIFO
		}
		b.plain[i] = b.cls[i] == lcFIFO && cfg.Window == 0
		b.active[i] = true
		b.seqCtr[i] = 0
		b.rowHitsL[i] = 0
		b.rowConfL[i] = 0
		b.thrStalls[i] = 0
		if b.cls[i] != lcFIFO {
			b.vOff[i] = int32(vTotal)
			vTotal += cfg.Machine.Banks
			b.busyEvs[i] = b.busyEvs[i][:0]
		} else {
			b.vOff[i] = -1
		}
		if cfg.Window > 0 {
			b.wOff[i] = int32(wTotal)
			wTotal += np
			b.comp[i] = b.comp[i][:0]
		} else {
			b.wOff[i] = -1
		}
		if !b.plain[i] {
			b.allPlain = false
			b.seqCtr[i] = nonEmpty
		}
	}

	b.lastFin = growSlice(b.lastFin, total)
	b.frontStart = growSlice(b.frontStart, total)
	b.qn = growSlice(b.qn, total)
	b.serve = growSlice(b.serve, total)
	for i := range b.lastFin {
		b.lastFin[i] = -1 // any arrival time is >= 0, so -1 reads as idle
		b.frontStart[i] = 0
		b.qn[i] = 0
		b.serve[i] = 0
	}

	b.rowTag = growSlice(b.rowTag, vTotal)
	b.rowHas = growSlice(b.rowHas, vTotal)
	b.regEpoch = growSlice(b.regEpoch, vTotal)
	b.regUsed = growSlice(b.regUsed, vTotal)
	b.lastSeq = growSlice(b.lastSeq, vTotal)
	b.ringBuf = growNested(b.ringBuf, vTotal)
	b.ringHead = growSlice(b.ringHead, vTotal)
	b.ringN = growSlice(b.ringN, vTotal)
	for i := 0; i < vTotal; i++ {
		b.rowTag[i] = 0
		b.rowHas[i] = false
		b.regEpoch[i] = 0
		b.regUsed[i] = 0
		b.lastSeq[i] = 0
		b.ringHead[i] = 0
		b.ringN[i] = 0
	}

	b.outst = growSlice(b.outst, wTotal)
	b.injSeq = growSlice(b.injSeq, wTotal)
	for i := 0; i < wTotal; i++ {
		b.outst[i] = 0
		b.injSeq[i] = 0
	}

	// Closed-loop lanes replay the scalar reset's seq assignment for the
	// initial per-processor inject events.
	for _, li := range b.laneIdx {
		if b.win[li] == 0 {
			continue
		}
		wb := int(b.wOff[li])
		ctr := int32(0)
		for q, addrs := range pt.PerProc {
			if len(addrs) > 0 {
				ctr++
				b.injSeq[wb+q] = ctr
			}
		}
	}

	b.rNext = growSlice(b.rNext, np)
	b.rNIA = growSlice(b.rNIA, np)
	b.rCandT = growSlice(b.rCandT, np)
	b.rCandA = growSlice(b.rCandA, np)
	b.rComp = growNested(b.rComp, np)
	return nil
}

// growSlice returns s resized to length n, reusing capacity and zeroing
// nothing (callers reinitialize the active region themselves).
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// growNested resizes an outer slice of retained inner slices, carrying
// the grown inner buffers over so warm batches never re-allocate them.
func growNested[T any](s [][]T, n int) [][]T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([][]T, n)
	copy(ns, s[:cap(s)])
	return ns
}

// batchPollRequests is how many (lane, request) services pass between
// context polls in runFast — the batch analogue of cancelCheckEvents.
const batchPollRequests = 4096

// runFast executes every fast lane in lockstep over the shared pattern.
//
// Correctness. In the open-loop FIFO regime the scalar event loop is
// fully determined:
//
//   - Processor p injects its r-th request at t_r, with t_0 = 0 and
//     t_{r+1} = t_r + G (inject accumulates nextIssueAt = now + G), so
//     injT replays the identical float sum. Within a round, injects fire
//     in processor order (their seqs were assigned in that order the
//     round before), so request seqs ascend (round, proc)-lexically.
//   - Every request arrives at its bank at a = t_r + NetDelay. Arrivals
//     at one bank are ordered by (time, seq); both orders agree with
//     (round, proc), so walking round-major then proc-major visits each
//     bank's arrivals in exactly the scalar service order.
//   - A bank is busy at arrival a iff the previous request's finish
//     f >= a: bank-done at time == a has event kind evBankDone >
//     evBankArrive, so the done fires after the arrival and the arrival
//     queues. A queued request starts when its predecessor finishes, so
//     finishes chain f_i = f_{i-1} + d — the same float op the scalar
//     engine performs — and an idle bank serves on arrival, f = a + d.
//   - Queue depth: the scalar ring's maxQ counts waiters excluding the
//     one in service. Rather than store the queue, we keep the oldest
//     waiter's start time (frontStart) and the waiter count (qn): a
//     waiter has left the queue by time a iff its start s < a (a start
//     at s == a comes from a done at s, kind evBankDone, which fires
//     after the arrival), and successive waiters' starts differ by
//     exactly += d, so popping replays the exact floats the scalar
//     engine computed.
//   - Responses only advance the completion clock (open loop collapses
//     evComplete): lastDone = max over requests of f + NetDelay, and
//     BankBusy accumulates += d per service — order-independent here
//     because d is constant within a lane.
//
// The widened regime (DESIGN.md §16) keeps the same skeleton:
//
//   - Closed loop (Window > 0): while no processor of the lane is
//     window-blocked, the closed-loop scalar run performs exactly the
//     open-loop float ops — injections stay on the shared grid and
//     completions only drain the window. A completion strictly earlier
//     than an injection attempt has been processed before it (kind
//     evInject < evComplete breaks the time tie the other way), so
//     outst is drained from the pending-completion heap at each round
//     start with strict <. The first attempt that would block is
//     exactly where the scalar engine diverges from the grid, so the
//     lane detaches there and runReplay finishes it event-exactly.
//   - DRAM/Regulated service times vary per request, so the constant-d
//     frontStart/qn drain is replaced by a per-(lane,bank) ring of
//     waiter dequeue times (a waiter dequeues exactly when its
//     predecessor finishes — the value of lastFin at its enqueue), and
//     float accumulators whose scalar order is the global service-start
//     event order rather than arrival order (DRAM BankBusy, Regulated
//     ThrottleStallCycles) are deferred: recorded with their scalar
//     (time, kind, seq) event key, sorted, and summed at finalize so
//     the partial-sum rounding is bit-identical.
func (b *BatchEngine) runFast(ctx context.Context, pt core.Pattern) error {
	if len(b.laneIdx) == 0 {
		return nil
	}
	maxLen := 0
	for _, addrs := range pt.PerProc {
		if len(addrs) > maxLen {
			maxLen = len(addrs)
		}
	}
	var err error
	if b.allPlain {
		err = b.runPlain(ctx, pt, maxLen)
	} else {
		err = b.runMixed(ctx, pt, maxLen)
	}
	if err != nil {
		return err
	}
	b.finalize(pt)
	return nil
}

// runPlain is the PR 8 lockstep loop, unchanged: every fast lane is
// open-loop FIFO, so there is no per-lane class dispatch, no stall
// detection and no seq bookkeeping on the hot path.
func (b *BatchEngine) runPlain(ctx context.Context, pt core.Pattern, maxLen int) error {
	lanes := b.laneIdx
	processed := 0
	sincePoll := 0
	for r := 0; r < maxLen; r++ {
		if sincePoll >= batchPollRequests {
			sincePoll = 0
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: batch cancelled after %d lane-requests: %w", processed, err)
			}
		}
		for _, addrs := range pt.PerProc {
			if r >= len(addrs) {
				continue
			}
			addr := addrs[r]
			for _, li := range lanes {
				a := b.injT[li] + b.nd[li]
				bank := bankOf(b.mk[li], b.mkArg[li], b.bms[li], addr)
				idx := int(b.off[li]) + bank
				dl := b.d[li]
				var done float64
				if f := b.lastFin[idx]; f >= a {
					// Busy: drain waiters already started before a, then queue.
					fs, n := b.frontStart[idx], b.qn[idx]
					for n > 0 && fs < a {
						fs += dl
						n--
					}
					n++
					if n == 1 {
						fs = f
					}
					b.frontStart[idx] = fs
					b.qn[idx] = n
					if n > b.maxQ[li] {
						b.maxQ[li] = n
					}
					done = f + dl
				} else {
					b.qn[idx] = 0
					done = a + dl
				}
				b.lastFin[idx] = done
				b.serve[idx]++
				b.busyAcc[li] += dl
				if t := done + b.nd[li]; t > b.lastDone[li] {
					b.lastDone[li] = t
				}
			}
			processed += len(lanes)
			sincePoll += len(lanes)
		}
		for _, li := range lanes {
			b.injT[li] += b.g[li]
		}
	}
	return nil
}

// runMixed is the lockstep loop with per-lane class dispatch: open-loop
// FIFO lanes take the plain block, DRAM/Regulated lanes the
// variable-service block, and closed-loop lanes additionally track the
// in-flight window and detach into runReplay at their first stall.
func (b *BatchEngine) runMixed(ctx context.Context, pt core.Pattern, maxLen int) error {
	b.runLanes = append(b.runLanes[:0], b.laneIdx...)
	lanes := b.runLanes
	processed := 0
	sincePoll := 0
	for r := 0; r < maxLen && len(lanes) > 0; r++ {
		if sincePoll >= batchPollRequests {
			sincePoll = 0
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: batch cancelled after %d lane-requests: %w", processed, err)
			}
		}
		// A completion strictly before this round's injection grid point
		// precedes every one of the round's inject events in the scalar
		// order, so it has already released its window slot.
		for _, li := range lanes {
			if b.win[li] > 0 && len(b.comp[li]) > 0 {
				b.drainComp(li, b.injT[li])
			}
		}
		detached := false
		for p, addrs := range pt.PerProc {
			if r >= len(addrs) {
				continue
			}
			addr := addrs[r]
			for _, li := range lanes {
				if !b.active[li] {
					continue
				}
				if b.plain[li] {
					a := b.injT[li] + b.nd[li]
					bank := bankOf(b.mk[li], b.mkArg[li], b.bms[li], addr)
					idx := int(b.off[li]) + bank
					dl := b.d[li]
					var done float64
					if f := b.lastFin[idx]; f >= a {
						fs, n := b.frontStart[idx], b.qn[idx]
						for n > 0 && fs < a {
							fs += dl
							n--
						}
						n++
						if n == 1 {
							fs = f
						}
						b.frontStart[idx] = fs
						b.qn[idx] = n
						if n > b.maxQ[li] {
							b.maxQ[li] = n
						}
						done = f + dl
					} else {
						b.qn[idx] = 0
						done = a + dl
					}
					b.lastFin[idx] = done
					b.serve[idx]++
					b.busyAcc[li] += dl
					if t := done + b.nd[li]; t > b.lastDone[li] {
						b.lastDone[li] = t
					}
					continue
				}

				wb := -1
				if b.win[li] > 0 {
					wb = int(b.wOff[li])
					if b.outst[wb+p] >= b.win[li] {
						// Window stall: exactly where the scalar engine leaves
						// the shared injection grid. Replay this lane alone to
						// completion; the blocked attempt consumes no seq.
						if err := b.runReplay(ctx, li, pt, r, p); err != nil {
							return err
						}
						b.active[li] = false
						detached = true
						continue
					}
				}
				reqSeq := b.seqCtr[li] + 1
				ctr := reqSeq
				if r+1 < len(addrs) {
					ctr++
					if wb >= 0 {
						b.injSeq[wb+p] = ctr
					}
				}
				b.seqCtr[li] = ctr
				a := b.injT[li] + b.nd[li]
				bank := bankOf(b.mk[li], b.mkArg[li], b.bms[li], addr)
				done := b.serveLane(li, bank, a, addr, reqSeq, false)
				t := done + b.nd[li]
				if t > b.lastDone[li] {
					b.lastDone[li] = t
				}
				if wb >= 0 {
					b.outst[wb+p]++
					b.pushComp(li, compEv{t: t, seq: reqSeq, proc: int32(p)})
				}
			}
			processed += len(lanes)
			sincePoll += len(lanes)
		}
		for _, li := range lanes {
			if b.active[li] {
				b.injT[li] += b.g[li]
			}
		}
		if detached {
			kept := lanes[:0]
			for _, li := range lanes {
				if b.active[li] {
					kept = append(kept, li)
				}
			}
			lanes = kept
		}
	}
	return nil
}

// serveLane services one arrival for a non-plain lane: arrival time a,
// request sequence reqSeq, returning the service finish time. It
// replays the scalar startBank for the lane's class, including the
// queue bookkeeping.
//
// late marks an arrival the scalar engine processes after the bank-done
// events at its own timestamp have already fired: a replay re-inject at
// its completion's instant with NetDelay 0 (repEv kind 1). For such an
// arrival, a service finishing exactly at a has completed (the bank may
// be idle at f == a) and a waiter whose service starts exactly at a has
// left the queue — so the busy test and the dequeue drains tighten from
// strict to inclusive comparisons against a.
func (b *BatchEngine) serveLane(li int32, bank int, a float64, addr uint64, reqSeq int32, late bool) float64 {
	idx := int(b.off[li]) + bank
	if b.cls[li] == lcFIFO {
		// Closed-loop FIFO: service is the constant d, so the open-loop
		// frontStart/qn arithmetic applies verbatim.
		dl := b.d[li]
		var done float64
		if f := b.lastFin[idx]; f > a || (f == a && !late) {
			fs, n := b.frontStart[idx], b.qn[idx]
			for n > 0 && (fs < a || (late && fs == a)) {
				fs += dl
				n--
			}
			n++
			if n == 1 {
				fs = f
			}
			b.frontStart[idx] = fs
			b.qn[idx] = n
			if n > b.maxQ[li] {
				b.maxQ[li] = n
			}
			done = f + dl
		} else {
			b.qn[idx] = 0
			done = a + dl
		}
		b.lastFin[idx] = done
		b.serve[idx]++
		b.busyAcc[li] += dl
		return done
	}

	// Variable-service classes (DRAM, Regulated). The scalar start event
	// for a queued request is its predecessor's bank-done (kind
	// evBankDone, the predecessor's seq); for an idle bank it is the
	// arrival itself (kind evBankArrive, own seq). That key orders the
	// deferred float accumulations.
	vi := int(b.vOff[li]) + bank
	f := b.lastFin[idx]
	var start float64
	var key uint64
	if f > a || (f == a && !late) {
		// Busy: waiters dequeue exactly when their predecessors finish,
		// so the ring of recorded finishes replays the queue.
		buf := b.ringBuf[vi]
		h, n := int(b.ringHead[vi]), int(b.ringN[vi])
		if n > 0 {
			mask := len(buf) - 1
			for n > 0 && (buf[h] < a || (late && buf[h] == a)) {
				h = (h + 1) & mask
				n--
			}
		}
		if n == len(buf) {
			grown := make([]float64, max(8, 2*len(buf)))
			if n > 0 {
				mask := len(buf) - 1
				for i := 0; i < n; i++ {
					grown[i] = buf[(h+i)&mask]
				}
			}
			buf = grown
			h = 0
			b.ringBuf[vi] = buf
		}
		buf[(h+n)&(len(buf)-1)] = f
		n++
		b.ringHead[vi] = int32(h)
		b.ringN[vi] = int32(n)
		if int32(n) > b.maxQ[li] {
			b.maxQ[li] = int32(n)
		}
		start = f
		key = 3<<32 | uint64(uint32(b.lastSeq[vi]))
	} else {
		b.ringHead[vi] = 0
		b.ringN[vi] = 0
		start = a
		key = 2<<32 | uint64(uint32(reqSeq))
	}

	var service float64
	if b.cls[li] == lcDRAM {
		row := addr >> uint(b.rowShiftL[li])
		if b.rowHas[vi] && b.rowTag[vi] == row {
			service = b.hitD[li]
			b.rowHitsL[li]++
		} else {
			b.rowTag[vi] = row
			b.rowHas[vi] = true
			service = b.missD[li]
			b.rowConfL[li]++
		}
		// DRAM services vary (hit vs miss), so BankBusy's partial sums
		// depend on the scalar accumulation order; defer to finalize.
		b.busyEvs[li] = append(b.busyEvs[li], busyEv{t: start, key: key, v: service})
	} else {
		rw := b.regW[li]
		ep := int64(start / rw)
		if ep > b.regEpoch[vi] {
			b.regEpoch[vi] = ep
			b.regUsed[vi] = 0
		}
		if b.regUsed[vi] >= b.regB[li] {
			// Budget exhausted: hold the bank until the next window opens.
			b.regEpoch[vi]++
			b.regUsed[vi] = 0
			ns := float64(b.regEpoch[vi]) * rw
			b.thrStalls[li]++
			b.busyEvs[li] = append(b.busyEvs[li], busyEv{t: start, key: key, v: ns - start})
			start = ns
		}
		b.regUsed[vi]++
		service = b.d[li]
		b.busyAcc[li] += service
	}
	done := start + service
	b.lastFin[idx] = done
	b.lastSeq[vi] = reqSeq
	b.serve[idx]++
	return done
}

// drainComp pops lane li's pending completions strictly earlier than t,
// releasing their processors' window slots. Completion responses update
// the completion clock at push time (max, order-independent), so the
// drain only touches outst.
func (b *BatchEngine) drainComp(li int32, t float64) {
	h := b.comp[li]
	wb := int(b.wOff[li])
	for len(h) > 0 && h[0].t < t {
		b.outst[wb+int(h[0].proc)]--
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		// Sift down by time.
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && h[c+1].t < h[c].t {
				c++
			}
			if h[i].t <= h[c].t {
				break
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	b.comp[li] = h
}

// pushComp inserts a pending completion into lane li's min-heap.
func (b *BatchEngine) pushComp(li int32, e compEv) {
	h := append(b.comp[li], e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].t <= h[i].t {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	b.comp[li] = h
}

// Replay candidate aux keys: the scalar event kind packed above the
// request seq, so one int64 comparison resolves the (kind, seq)
// tie-break. Kind 0 is an injection attempt, 1 a late re-inject (see
// runReplay), 4 a completion — the scalar queue's evInject/evComplete
// tags. repAuxNone pairs with a +Inf candidate time to mark an idle
// processor; it compares greater than every live key.
const (
	repAuxLate = int64(1) << 32
	repAuxComp = int64(4) << 32
	repAuxNone = int64(math.MaxInt64)
)

// pcLess orders a processor's private replay completions by (time,
// seq) — the scalar queue's key restricted to one kind. Time alone is
// not enough: when two blocked processors hold same-time head
// completions, the smaller request seq unblocks first in the scalar
// engine, and the unblock order assigns the fresh re-inject seqs that
// order the re-arrivals at the banks.
func pcLess(a, x *compEv) bool {
	if a.t != x.t {
		return a.t < x.t
	}
	return a.seq < x.seq
}

// pushPC inserts a completion into one processor's replay min-heap.
func pushPC(h []compEv, e compEv) []compEv {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if pcLess(&h[parent], &h[i]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// popPC removes the heap head; the caller has already read it.
func popPC(h []compEv) []compEv {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && pcLess(&h[c+1], &h[c]) {
			c++
		}
		if pcLess(&h[i], &h[c]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return h
}

// runReplay finishes lane li alone after its first window stall: the
// processor p's injection attempt in round r found the window full, so
// from here on the lane's injection times leave the shared grid and the
// lockstep walk no longer matches the scalar event order for it.
//
// The replay is not the pooled scalar engine, and it keeps no global
// event queue either. Only two scalar event kinds still carry
// information — injection attempts (evInject) and completions
// (evComplete) — and of those, only injects and the completions that
// unblock a window-stalled processor have globally ordered effects.
// Each processor therefore exposes at most one candidate: its pending
// inject (kind 0, or 1 for a "late" re-inject, see below), or, when
// blocked, the head of its private (time, seq) completion heap
// (kind 4). The main loop picks the (time, kind, seq)-minimum candidate
// with a linear scan, which reproduces the scalar queue's pop order
// exactly: a non-unblocking completion only shrinks its own processor's
// in-flight window, which nothing reads until that processor's next
// injection attempt — so it is drained lazily, from the completions
// strictly earlier than the attempt (same-instant completions pop after
// the inject in the scalar queue, evInject < evComplete).
//
// Better still, an attempt's blocked/clear outcome is known the moment
// its candidate is created: a processor's private heap is already
// complete below its next inject time (only the processor's own injects
// add completions, and it has none pending), so the drain and the
// window check run at creation, and an attempt that will block never
// becomes a loop event — its candidate is directly the head completion
// that will clear it, with one seq burned for the inject event the
// scalar engine still pushes. The in-flight count is the private heap's
// length (every inject pushes one completion, every drain or unblock
// pops one), so the replay maintains no separate window counter.
//
// Bank arrivals need no events of their own: injects are processed in
// time order and NetDelay is constant within the lane, so applying each
// arrival at injection keeps every bank's service order identical to
// the scalar queue's, and bank-done times are the service chain the
// arenas already model. Window bookkeeping is exact: a blocked attempt
// consumes no seq, the completion that unblocks a processor consumes
// one fresh seq for the re-inject at max(completion time, nextIssueAt),
// and same-time completions unblock in seq order across processors —
// observable, because each re-inject's seq orders its bank arrival
// against simultaneous ones. A kind-1 ("late") re-inject is one
// scheduled at its own completion's instant with NetDelay 0: the scalar
// engine pushes it after the same-time bank-done events already popped
// (evBankDone < evComplete), so its arrival must see those dequeues
// applied — but it still fires before the remaining same-time
// completions (evInject < evComplete), hence kind 1 sorting between 0
// and 4. That order is scalar-exact because a late inject's seq is
// fresher than any same-time kind-0 inject's, so the scalar's seq
// tie-break already placed it last among them.
func (b *BatchEngine) runReplay(ctx context.Context, li int32, pt core.Pattern, r, p int) error {
	np := len(pt.PerProc)
	next, nia := b.rNext, b.rNIA
	candT, candA := b.rCandT, b.rCandA
	wb := int(b.wOff[li])
	G := b.g[li]
	nd := b.nd[li]
	win := int(b.win[li])
	t0 := b.injT[li]
	none := math.Inf(1)

	// Split the lane's shared completion heap into the private per-proc
	// (time, seq) heaps first: candidate creation below drains them.
	for q := 0; q < np; q++ {
		b.rComp[q] = b.rComp[q][:0]
	}
	for _, c := range b.comp[li] {
		b.rComp[c.proc] = pushPC(b.rComp[c.proc], c)
	}

	// Reconstruct per-processor state at the stall instant. Processors
	// before p already injected this round (their pending inject sits at
	// the next grid point); p's attempt just blocked (its pending inject
	// event is consumed), so its candidate is its earliest pending
	// completion; processors after p still hold this round's inject at
	// t0, with seqs assigned during round r-1.
	for q := 0; q < np; q++ {
		lq := len(pt.PerProc[q])
		var nq int
		if q < p {
			nq = r + 1
			nia[q] = t0 + G
		} else {
			nq = r
			nia[q] = t0
		}
		if nq > lq {
			nq = lq
		}
		next[q] = int32(nq)
		h := b.rComp[q]
		switch {
		case q == p:
			candT[q] = h[0].t
			candA[q] = repAuxComp | int64(h[0].seq)
		case nq < lq:
			ti := nia[q]
			for len(h) > 0 && h[0].t < ti {
				h = popPC(h)
			}
			b.rComp[q] = h
			if len(h) >= win {
				candT[q] = h[0].t
				candA[q] = repAuxComp | int64(h[0].seq)
			} else {
				candT[q] = ti
				candA[q] = int64(b.injSeq[wb+q])
			}
		default:
			candT[q] = none
			candA[q] = repAuxNone
		}
	}

	seqc := b.seqCtr[li]
	sincePoll := 0
	needScan := true
	best := -1
	bt, bt2 := none, none
	ba, ba2 := repAuxNone, repAuxNone
	for {
		if needScan {
			// Linear argmin over the per-processor candidates under the
			// scalar (time, kind, seq) key, tracking the runner-up. An
			// idle processor's sentinel (+Inf, repAuxNone) loses every
			// comparison, including against another sentinel, so an
			// all-idle scan leaves best at -1.
			needScan = false
			best = -1
			bt, ba = none, repAuxNone
			bt2, ba2 = none, repAuxNone
			for q := 0; q < np; q++ {
				t, a := candT[q], candA[q]
				if t < bt || (t == bt && a < ba) {
					bt2, ba2 = bt, ba
					best, bt, ba = q, t, a
				} else if t < bt2 || (t == bt2 && a < ba2) {
					bt2, ba2 = t, a
				}
			}
			if best < 0 {
				break
			}
		}
		sincePoll++
		if sincePoll >= batchPollRequests {
			sincePoll = 0
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: batch lane %d replay cancelled: %w", li, err)
			}
		}
		q := best
		if ba < repAuxComp {
			// Injection. The window was checked and the heap drained when
			// this candidate was created, so the inject just serves.
			addrs := pt.PerProc[q]
			addr := addrs[next[q]]
			seqc++
			reqSeq := seqc
			next[q]++
			nia[q] = bt + G
			a := bt + nd
			bank := bankOf(b.mk[li], b.mkArg[li], b.bms[li], addr)
			done := b.serveLane(li, bank, a, addr, reqSeq, ba >= repAuxLate)
			ct := done + nd
			if ct > b.lastDone[li] {
				b.lastDone[li] = ct
			}
			h := pushPC(b.rComp[q], compEv{t: ct, seq: reqSeq, proc: int32(q)})
			if int(next[q]) < len(addrs) {
				// Resolve the next attempt now: the heap is complete below
				// its time, so drain, burn the attempt's seq, and expose
				// either the inject or, if the window is full, the head
				// completion that will clear it (stable until it pops — a
				// blocked processor injects nothing, and nothing else
				// pushes into its heap).
				ti := nia[q]
				for len(h) > 0 && h[0].t < ti {
					h = popPC(h)
				}
				seqc++
				if len(h) >= win {
					candT[q] = h[0].t
					candA[q] = repAuxComp | int64(h[0].seq)
				} else {
					candT[q] = ti
					candA[q] = int64(seqc)
				}
			} else {
				candT[q] = none
				candA[q] = repAuxNone
			}
			b.rComp[q] = h
		} else {
			// Head completion of a blocked processor: unblock and
			// schedule the re-inject with a fresh seq. It cannot block —
			// the window just opened and only q's own injects refill it —
			// so drain below its time and expose it directly.
			ct := bt
			h := popPC(b.rComp[q])
			t2 := ct
			if nia[q] > t2 {
				t2 = nia[q]
			}
			for len(h) > 0 && h[0].t < t2 {
				h = popPC(h)
			}
			b.rComp[q] = h
			var aux int64
			if t2 == ct && nd == 0 {
				aux = repAuxLate
			}
			seqc++
			candT[q] = t2
			candA[q] = aux | int64(seqc)
		}
		// Only q's candidate changed. If it still beats the runner-up it
		// is still the minimum, and the next iteration skips the scan —
		// the common case in saturation, where an unblock, its re-inject
		// and the following blocked attempt land back to back.
		if t, a := candT[q], candA[q]; t < bt2 || (t == bt2 && a < ba2) {
			bt, ba = t, a
		} else {
			needScan = true
		}
	}
	b.seqCtr[li] = seqc
	return nil
}

// finalize assembles every fast lane's Result from the arenas. Deferred
// accumulations (DRAM BankBusy, Regulated ThrottleStallCycles) are
// sorted into the scalar event order here and summed left to right, so
// their partial-sum rounding matches the scalar engine bit for bit.
func (b *BatchEngine) finalize(pt core.Pattern) {
	n := pt.N()
	for _, li := range b.laneIdx {
		res := &b.results[li]
		res.Cycles = b.lastDone[li]
		res.Requests = n
		res.BankServices = n
		res.MaxBankQueue = int(b.maxQ[li])
		res.BankBusy = b.busyAcc[li]
		switch b.cls[li] {
		case lcDRAM:
			res.RowHits = int(b.rowHitsL[li])
			res.RowConflicts = int(b.rowConfL[li])
			b.beSorter.s = b.busyEvs[li]
			sort.Sort(&b.beSorter)
			var busy float64
			for _, e := range b.beSorter.s {
				busy += e.v
			}
			res.BankBusy = busy
			b.beSorter.s = nil
		case lcReg:
			res.ThrottleStalls = int(b.thrStalls[li])
			b.beSorter.s = b.busyEvs[li]
			sort.Sort(&b.beSorter)
			var stall float64
			for _, e := range b.beSorter.s {
				stall += e.v
			}
			res.ThrottleStallCycles = stall
			b.beSorter.s = nil
		}
		lo := int(b.off[li])
		hi := lo + b.cfgs[li].Machine.Banks
		for _, c := range b.serve[lo:hi] {
			if int(c) > res.MaxBankServed {
				res.MaxBankServed = int(c)
			}
		}
	}
}
