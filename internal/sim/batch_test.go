package sim

import (
	"context"
	"strings"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

// batchGoldenConfigs builds the 128-config golden grid: eight
// discipline/window variants × expansion x ∈ {1,8} × d ∈ {2,6,14,30} ×
// g ∈ {1,2}, the lane axes the batch engine varies crossed with every
// lockstep class — open- and closed-loop FIFO (including a Window=1
// lane that stalls almost immediately), eligible and ineligible DRAM,
// windowed Regulated — plus the structural scalar fallbacks (multi-row
// DRAM, GPUShared), with ragged windows across the batch.
func batchGoldenConfigs() []Config {
	variants := []struct {
		bank   BankConfig
		window int
	}{
		{BankConfig{}, 0},
		{BankConfig{}, 4},
		{BankConfig{}, 1},
		{BankConfig{Discipline: DRAM, HitDelay: 1, MissDelay: 8, RowWords: 32}, 0},
		{BankConfig{Discipline: DRAM, HitDelay: 2, MissDelay: 12, RowWords: 16}, 6},
		{BankConfig{Discipline: DRAM, CacheLines: 2, HitDelay: 1, MissDelay: 8, RowWords: 32}, 0},
		{BankConfig{Discipline: Regulated, RegWindow: 16, RegBudget: 2}, 3},
		{BankConfig{Discipline: GPUShared, WarpSize: 8}, 0},
	}
	var cfgs []Config
	for _, v := range variants {
		for _, x := range []int{1, 8} {
			for _, d := range []float64{2, 6, 14, 30} {
				for _, g := range []float64{1, 2} {
					cfgs = append(cfgs, Config{
						Machine: core.Machine{Name: "golden", Procs: 8, Banks: 8 * x, D: d, G: g, L: 4},
						Bank:    v.bank,
						Window:  v.window,
					})
				}
			}
		}
	}
	return cfgs
}

func batchGoldenPattern() core.Pattern {
	rg := rng.New(99)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = rg.Uint64n(1 << 30)
	}
	return core.NewPattern(addrs, 8)
}

// TestBatchMatchesScalarGolden128 is the golden differential: one
// 128-lane batch across all four disciplines, every lane compared
// field-for-field against the scalar engine run alone.
func TestBatchMatchesScalarGolden128(t *testing.T) {
	cfgs := batchGoldenConfigs()
	if len(cfgs) != 128 {
		t.Fatalf("golden grid has %d configs, want 128", len(cfgs))
	}
	pt := batchGoldenPattern()
	got, err := RunBatch(context.Background(), cfgs, pt)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("RunBatch returned %d results for %d lanes", len(got), len(cfgs))
	}
	fast := 0
	for i, cfg := range cfgs {
		if BatchEligible(cfg) {
			fast++
		}
		want, err := Run(cfg, pt)
		if err != nil {
			t.Fatalf("lane %d scalar: %v", i, err)
		}
		if got[i] != want {
			t.Errorf("lane %d (disc=%s x=%d d=%g g=%g): batch %+v != scalar %+v",
				i, cfg.Bank.Discipline, cfg.Machine.Banks/8, cfg.Machine.D, cfg.Machine.G, got[i], want)
		}
	}
	if fast != 96 {
		t.Fatalf("golden grid has %d fast-path lanes, want 96 (six of the eight variants)", fast)
	}
}

// TestBatchMatchesScalarCustomMapAndShapes covers what the golden grid
// does not: non-power-of-two bank counts (the modulo map paths), a
// custom BankMap (the mapGeneric interface fallback), ragged and empty
// processor streams, NetDelay = 0, and a single-lane batch.
func TestBatchMatchesScalarCustomMapAndShapes(t *testing.T) {
	pt := core.Pattern{PerProc: [][]uint64{
		{0, 3, 6, 9, 12, 15, 18, 21},
		{1, 1, 1, 1},
		{},
		{7, 14, 21, 28, 35, 42},
	}}
	cfgs := []Config{
		{Machine: core.Machine{Name: "odd", Procs: 4, Banks: 12, D: 5, G: 1, L: 0}},
		{Machine: core.Machine{Name: "odd", Procs: 4, Banks: 7, D: 3, G: 2, L: 6}},
		{Machine: core.Machine{Name: "custom", Procs: 4, Banks: 9, D: 4, G: 1, L: 2},
			BankMap: xorMap{banks: 9}},
		{Machine: core.Machine{Name: "one", Procs: 5, Banks: 16, D: 2, G: 1, L: 0}},
	}
	got, err := RunBatch(context.Background(), cfgs, pt)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i, cfg := range cfgs {
		if !BatchEligible(cfg) {
			t.Fatalf("lane %d unexpectedly ineligible", i)
		}
		want, err := Run(cfg, pt)
		if err != nil {
			t.Fatalf("lane %d scalar: %v", i, err)
		}
		if got[i] != want {
			t.Errorf("lane %d: batch %+v != scalar %+v", i, got[i], want)
		}
	}
}

// xorMap is a deliberately non-interleave BankMap: it must route through
// the mapGeneric interface path in both engines.
type xorMap struct{ banks int }

func (m xorMap) Bank(addr uint64) int { return int((addr ^ addr>>3) % uint64(m.banks)) }
func (m xorMap) NumBanks() int        { return m.banks }

// TestBatchLaneIsolation pins that lanes do not interact: the results of
// a batch's lanes are unchanged when a sibling lane is replaced with a
// completely different configuration, and an invalid lane fails the
// whole batch up front (all-or-nothing) while naming the lane.
func TestBatchLaneIsolation(t *testing.T) {
	pt := batchGoldenPattern()
	base := []Config{
		{Machine: core.Machine{Name: "a", Procs: 8, Banks: 16, D: 4, G: 1, L: 2}},
		{Machine: core.Machine{Name: "b", Procs: 8, Banks: 32, D: 8, G: 1, L: 2}},
		{Machine: core.Machine{Name: "c", Procs: 8, Banks: 64, D: 2, G: 2, L: 2}},
		{Machine: core.Machine{Name: "d", Procs: 8, Banks: 8, D: 30, G: 1, L: 2}},
	}
	before, err := RunBatch(context.Background(), base, pt)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}

	// Replace lane 1 with a wildly different config (different banks, a
	// scalar-fallback discipline); siblings must be bit-identical.
	mutated := append([]Config(nil), base...)
	mutated[1] = Config{
		Machine: core.Machine{Name: "x", Procs: 8, Banks: 8, D: 50, G: 1, L: 16},
		Bank:    BankConfig{Discipline: GPUShared, WarpSize: 4},
	}
	after, err := RunBatch(context.Background(), mutated, pt)
	if err != nil {
		t.Fatalf("RunBatch mutated: %v", err)
	}
	for _, i := range []int{0, 2, 3} {
		if before[i] != after[i] {
			t.Errorf("lane %d perturbed by sibling change: %+v vs %+v", i, before[i], after[i])
		}
	}

	// An invalid lane rejects the whole batch and names the lane.
	bad := append([]Config(nil), base...)
	bad[2].Window = -1
	if _, err := RunBatch(context.Background(), bad, pt); err == nil {
		t.Fatal("invalid lane accepted")
	} else if !strings.Contains(err.Error(), "lane 2") {
		t.Errorf("error does not name the offending lane: %v", err)
	}
}

// TestBatchCancellation pins that a cancelled context interrupts a batch
// mid-flight through the lockstep poll.
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{
		{Machine: core.Machine{Name: "a", Procs: 8, Banks: 16, D: 4, G: 1, L: 2}},
		{Machine: core.Machine{Name: "b", Procs: 8, Banks: 32, D: 8, G: 1, L: 2}},
	}
	if _, err := RunBatch(ctx, cfgs, batchGoldenPattern()); err == nil {
		t.Fatal("cancelled batch returned no error")
	}
}

// TestBatchEngineReuseZeroAllocs pins the pooling contract: once an
// engine has seen a shape, re-running batches — including shrinking the
// lane count, growing it back, and lanes whose disciplines force the
// embedded scalar engine through per-lane discipline changes — allocates
// nothing.
func TestBatchEngineReuseZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	rg := rng.New(7)
	addrs := make([]uint64, 2048)
	for i := range addrs {
		addrs[i] = rg.Uint64n(1 << 30)
	}
	pt := core.NewPattern(addrs, 8)

	mk := func(banks int, d float64, bank BankConfig) Config {
		return Config{Machine: core.Machine{Name: "z", Procs: 8, Banks: banks, D: d, G: 1, L: 2}, Bank: bank}
	}
	mkw := func(banks int, d float64, window int, bank BankConfig) Config {
		c := mk(banks, d, bank)
		c.Window = window
		return c
	}
	// Three shapes cycled per run: full mixed batch, a shrunk all-FIFO
	// prefix, and the full batch again (grow). Lane slots keep a stable
	// discipline so the per-slot default-map caches stay warm, while the
	// embedded scalar engine flips FIFO→DRAM→Regulated→GPU within every
	// full batch — the discipline-change Reset path. The windowed lanes
	// (tight FIFO and DRAM windows that stall into the per-lane replay,
	// a windowed Regulated lane) pin the closed-loop arenas — completion
	// heaps, dequeue rings, replay scratch — as retained too.
	full := []Config{
		mk(16, 2, BankConfig{}),
		mk(32, 6, BankConfig{}),
		mk(64, 14, BankConfig{}),
		mk(8, 30, BankConfig{}),
		mk(16, 4, BankConfig{Discipline: DRAM, CacheLines: 1, HitDelay: 1, MissDelay: 8}),
		mk(16, 4, BankConfig{Discipline: Regulated, RegWindow: 16, RegBudget: 2}),
		mk(16, 4, BankConfig{Discipline: GPUShared, WarpSize: 8}),
		mk(128, 6, BankConfig{}),
		mkw(16, 6, 2, BankConfig{}),
		mkw(8, 12, 1, BankConfig{Discipline: DRAM, CacheLines: 1, HitDelay: 1, MissDelay: 12}),
		mkw(16, 4, 3, BankConfig{Discipline: Regulated, RegWindow: 16, RegBudget: 2}),
	}
	shrunk := full[:4]

	b := NewBatchEngine()
	ctx := context.Background()
	run := func(cfgs []Config) {
		if _, err := b.Run(ctx, cfgs, pt); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	run(full) // warm every arena
	run(shrunk)
	run(full)

	allocs := testing.AllocsPerRun(5, func() {
		run(full)
		run(shrunk)
		run(full)
	})
	if allocs != 0 {
		t.Errorf("warm batch cycle allocated %.1f times, want 0", allocs)
	}
}

// TestRunBatchEmpty covers the degenerate shapes: zero lanes and a
// zero-request pattern.
func TestRunBatchEmpty(t *testing.T) {
	res, err := RunBatch(context.Background(), nil, batchGoldenPattern())
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(res))
	}
	cfg := Config{Machine: core.Machine{Name: "e", Procs: 4, Banks: 8, D: 2, G: 1, L: 0}}
	res, err = RunBatch(context.Background(), []Config{cfg}, core.Pattern{PerProc: [][]uint64{{}, {}}})
	if err != nil {
		t.Fatalf("empty pattern: %v", err)
	}
	if res[0].Cycles != 0 || res[0].Requests != 0 {
		t.Errorf("empty pattern result: %+v", res[0])
	}
}
