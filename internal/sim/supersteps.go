package sim

import (
	"context"
	"fmt"

	"dxbsp/internal/core"
)

// RunSupersteps simulates a sequence of supersteps (barrier between each)
// and returns the per-step results plus the total cycles including one L
// synchronization charge per superstep. It is RunSuperstepsContext
// without cancellation.
func RunSupersteps(cfg Config, steps []core.Pattern) ([]Result, float64, error) {
	return RunSuperstepsContext(context.Background(), cfg, steps)
}

// RunSuperstepsContext is RunSupersteps with cooperative cancellation,
// both between supersteps and — via RunContext's event-loop polling —
// within one, so a multi-superstep experiment honors per-point deadlines
// the same way a single-step one does. An uncancelled run returns results
// byte-identical to RunSupersteps.
func RunSuperstepsContext(ctx context.Context, cfg Config, steps []core.Pattern) ([]Result, float64, error) {
	results := make([]Result, 0, len(steps))
	total := 0.0
	for i, st := range steps {
		// A small superstep can finish before the event loop's first
		// cancellation poll; checking here bounds how far a cancelled
		// multi-step run can keep going.
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("sim: cancelled before superstep %d: %w", i, err)
		}
		r, err := RunContext(ctx, cfg, st)
		if err != nil {
			return nil, 0, fmt.Errorf("sim: superstep %d: %w", i, err)
		}
		results = append(results, r)
		total += r.Cycles + cfg.Machine.L
	}
	return results, total, nil
}
