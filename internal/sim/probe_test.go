package sim

import (
	"fmt"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
)

// countingProbe is a test double that records every hook invocation. It
// deliberately exercises every RunProbe method so the differential test
// below proves the full hook surface is results-neutral, not just the
// cheap-to-pass subset.
type countingProbe struct {
	runs []*countingRunProbe
}

func (p *countingProbe) RunStart(cfg Config, pt core.Pattern) RunProbe {
	rp := &countingRunProbe{
		bankArrivals: make(map[int]int),
		bankStarts:   make(map[int]int),
	}
	p.runs = append(p.runs, rp)
	return rp
}

type countingRunProbe struct {
	bankArrivals  map[int]int
	bankStarts    map[int]int
	bankBusy      float64
	bankStallCy   float64
	rowHits       int
	combined      int
	queuedBank    int
	sectArrivals  int
	sectStarts    int
	windowStalls  int
	windowStallCy float64
	maxBankDepth  int
	done          bool
	res           Result
}

func (rp *countingRunProbe) BankArrive(bank int, now float64, depth int) {
	rp.bankArrivals[bank]++
	if depth > rp.maxBankDepth {
		rp.maxBankDepth = depth
	}
}

func (rp *countingRunProbe) BankStart(bank int, now float64, service, stall float64, rowHit, queued bool, combined int) {
	rp.bankStarts[bank]++
	rp.bankBusy += service
	rp.bankStallCy += stall
	if rowHit {
		rp.rowHits++
	}
	if queued {
		rp.queuedBank++
	}
	rp.combined += combined
}

func (rp *countingRunProbe) SectionArrive(sec int, now float64, depth int) { rp.sectArrivals++ }

func (rp *countingRunProbe) SectionStart(sec int, now float64, queued bool) { rp.sectStarts++ }

func (rp *countingRunProbe) WindowStall(proc int, from, to float64) {
	rp.windowStalls++
	rp.windowStallCy += to - from
}

func (rp *countingRunProbe) RunDone(res Result) {
	rp.done = true
	rp.res = res
}

// sweepConfigs enumerates the 128-configuration sweep: every combination
// of seven binary knobs (machine scale, bank count, bank delay, section
// bottleneck, issue window, combining, bank row caching). The same sweep
// backs the probe differential test here and the determinism goldens.
func sweepConfigs() []Config {
	var cfgs []Config
	for _, procs := range []int{4, 16} {
		for _, banksPerProc := range []int{4, 16} {
			for _, d := range []float64{4, 12} {
				for _, sections := range []int{1, 4} {
					for _, window := range []int{0, 8} {
						for _, combining := range []bool{false, true} {
							for _, cache := range []int{0, 4} {
								m := core.Machine{
									Name:  "sweep",
									Procs: procs,
									Banks: procs * banksPerProc,
									D:     d, G: 1, L: 20,
									Sections:   sections,
									SectionGap: 0.5,
								}
								cfgs = append(cfgs, Config{
									Machine:        m,
									Window:         window,
									Combining:      combining,
									UseSections:    sections > 1,
									BankCacheLines: cache,
								})
							}
						}
					}
				}
			}
		}
	}
	return cfgs
}

// TestProbeDoesNotPerturbResults is the probe half of the determinism
// contract: across the full 128-config sweep, a run with a probe attached
// must produce a Result identical to the probes-off run, and the probe's
// own event counts must reconcile with that Result (so the hooks are both
// inert and truthful).
func TestProbeDoesNotPerturbResults(t *testing.T) {
	cfgs := sweepConfigs()
	if len(cfgs) != 128 {
		t.Fatalf("sweep has %d configs, want 128", len(cfgs))
	}
	for i, cfg := range cfgs {
		cfg := cfg
		name := fmt.Sprintf("cfg%03d_p%d_b%d_d%g_s%d_w%d_c%t_bc%d", i,
			cfg.Machine.Procs, cfg.Machine.Banks, cfg.Machine.D,
			cfg.Machine.Sections, cfg.Window, cfg.Combining, cfg.BankCacheLines)
		t.Run(name, func(t *testing.T) {
			pt := core.NewPattern(patterns.Uniform(1<<10, 1<<30, rng.New(uint64(i+1))), cfg.Machine.Procs)

			plain, err := Run(cfg, pt)
			if err != nil {
				t.Fatal(err)
			}

			probe := &countingProbe{}
			cfg.Probe = probe
			probed, err := Run(cfg, pt)
			if err != nil {
				t.Fatal(err)
			}

			if plain != probed {
				t.Errorf("probe changed the result:\n  plain:  %+v\n  probed: %+v", plain, probed)
			}
			if len(probe.runs) != 1 {
				t.Fatalf("RunStart called %d times, want 1", len(probe.runs))
			}
			rp := probe.runs[0]
			if !rp.done {
				t.Fatal("RunDone never fired")
			}
			if rp.res != probed {
				t.Errorf("RunDone result %+v != returned result %+v", rp.res, probed)
			}

			// Reconcile hook-level counts against the engine's own Result.
			starts := 0
			for _, n := range rp.bankStarts {
				starts += n
			}
			if starts != probed.BankServices {
				t.Errorf("BankStart fired %d times, Result.BankServices = %d", starts, probed.BankServices)
			}
			if rp.bankBusy != probed.BankBusy {
				t.Errorf("probe bank busy %g != Result.BankBusy %g", rp.bankBusy, probed.BankBusy)
			}
			if rp.rowHits != probed.RowHits {
				t.Errorf("probe row hits %d != Result.RowHits %d", rp.rowHits, probed.RowHits)
			}
			arrivals := 0
			for _, n := range rp.bankArrivals {
				arrivals += n
			}
			if arrivals != probed.Requests {
				t.Errorf("BankArrive fired %d times, Result.Requests = %d", arrivals, probed.Requests)
			}
			// Every request satisfied neither on arrival nor by combining
			// must have started from the queue.
			if want := probed.Requests - (starts - rp.queuedBank) - rp.combined; rp.queuedBank != want {
				t.Errorf("queued starts %d inconsistent: requests %d, unqueued starts %d, combined %d",
					rp.queuedBank, probed.Requests, starts-rp.queuedBank, rp.combined)
			}
			if rp.maxBankDepth > probed.MaxBankQueue {
				t.Errorf("probe saw bank depth %d beyond Result.MaxBankQueue %d", rp.maxBankDepth, probed.MaxBankQueue)
			}
			if cfg.UseSections && cfg.Machine.Sections > 1 {
				if rp.sectArrivals != probed.Requests {
					t.Errorf("SectionArrive fired %d times, want %d", rp.sectArrivals, probed.Requests)
				}
				if rp.sectStarts != probed.Requests {
					t.Errorf("SectionStart fired %d times, want %d", rp.sectStarts, probed.Requests)
				}
			} else if rp.sectArrivals != 0 || rp.sectStarts != 0 {
				t.Errorf("section hooks fired (%d arrive, %d start) with no section bottleneck",
					rp.sectArrivals, rp.sectStarts)
			}
			if cfg.Window == 0 && rp.windowStalls != 0 {
				t.Errorf("WindowStall fired %d times on an open-loop run", rp.windowStalls)
			}
			if rp.windowStallCy < 0 {
				t.Errorf("negative window stall time %g", rp.windowStallCy)
			}
		})
	}
}

// TestProbeCombiningAccounting pins the combining-specific probe fields:
// with all processors hammering one address, every service after the first
// arrival wave should combine queued requests, and the hook's combined
// total must equal BankServices' shortfall against Requests.
func TestProbeCombiningAccounting(t *testing.T) {
	m := core.Machine{Name: "hot", Procs: 8, Banks: 32, D: 8, G: 1, L: 16}
	addrs := make([]uint64, 512)
	for i := range addrs {
		addrs[i] = 42 // one hot address
	}
	probe := &countingProbe{}
	cfg := Config{Machine: m, Combining: true, Probe: probe}
	res, err := Run(cfg, core.NewPattern(addrs, m.Procs))
	if err != nil {
		t.Fatal(err)
	}
	rp := probe.runs[0]
	if rp.combined == 0 {
		t.Error("hot-address combining run reported no combined requests")
	}
	responded := 0
	for _, n := range rp.bankStarts {
		responded += n
	}
	if responded+rp.combined != res.Requests {
		t.Errorf("starts %d + combined %d != requests %d", responded, rp.combined, res.Requests)
	}
}
