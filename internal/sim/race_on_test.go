//go:build race

package sim

// raceEnabled reports whether this test binary was built with the race
// detector, which deliberately defeats sync.Pool caching (Get randomly
// misses so cross-goroutine reuse gets exercised); allocation pins on
// pooled paths only hold without it.
const raceEnabled = true
