package sim

import (
	"math"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

func testMachine() core.Machine {
	return core.Machine{
		Name: "test", Procs: 4, Banks: 64, D: 6, G: 1, L: 0,
		Sections: 4, SectionGap: 0.5,
	}
}

func seqAddrs(n int) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i)
	}
	return a
}

func constAddrs(n int, v uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = v
	}
	return a
}

func TestRunEmptyPattern(t *testing.T) {
	r, err := Run(Config{Machine: testMachine()}, core.NewPattern(nil, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 0 || r.Requests != 0 {
		t.Errorf("empty run: %+v", r)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Machine: core.Machine{}}, core.NewPattern(nil, 1)); err == nil {
		t.Error("invalid machine accepted")
	}
	m := testMachine()
	if _, err := Run(Config{Machine: m}, core.NewPattern(seqAddrs(8), 8)); err == nil {
		t.Error("pattern wider than machine accepted")
	}
	if _, err := Run(Config{Machine: m, BankMap: core.InterleaveMap{Banks: 3}}, core.NewPattern(seqAddrs(8), 2)); err == nil {
		t.Error("mismatched bank map accepted")
	}
}

func TestFullySerializedAtOneBank(t *testing.T) {
	// All n requests to one address: the single bank serves them one per d
	// cycles, so completion ~ n*d regardless of processors.
	m := testMachine()
	n := 256
	pt := core.NewPattern(constAddrs(n, 5), m.Procs)
	r, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * m.D
	if math.Abs(r.Cycles-want)/want > 0.05 {
		t.Errorf("serialized cycles = %v, want ≈ %v", r.Cycles, want)
	}
	if r.MaxBankServed != n {
		t.Errorf("MaxBankServed = %d, want %d", r.MaxBankServed, n)
	}
}

func TestBandwidthBoundFlatPattern(t *testing.T) {
	// Unit stride with x=16 >= d=6: completion ~ g*n/p.
	m := testMachine()
	n := 4096
	pt := core.NewPattern(seqAddrs(n), m.Procs)
	r, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := m.G * float64(n) / float64(m.Procs)
	if r.Cycles < want {
		t.Errorf("cycles %v below issue-rate bound %v", r.Cycles, want)
	}
	if r.Cycles > want*1.2 {
		t.Errorf("flat pattern cycles = %v, want ≈ %v (within 20%%)", r.Cycles, want)
	}
}

func TestSimMatchesModelAcrossContention(t *testing.T) {
	// The central validation: for k-contention patterns, simulated cycles
	// track the (d,x)-BSP prediction within a modest factor, while the BSP
	// prediction fails badly at high contention.
	m := core.J90()
	n := 8192
	for k := 1; k <= n; k *= 8 {
		addrs := make([]uint64, n)
		for i := range addrs {
			// k copies each of n/k distinct locations, spread over banks.
			addrs[i] = uint64(i % (n / k))
		}
		pt := core.NewPattern(addrs, m.Procs)
		prof := core.ComputeProfile(pt, core.InterleaveMap{Banks: m.Banks})
		r, err := Run(Config{Machine: m}, pt)
		if err != nil {
			t.Fatal(err)
		}
		pred := m.PredictDXBSP(prof)
		ratio := r.Cycles / pred
		if ratio < 0.7 || ratio > 2.0 {
			t.Errorf("k=%d: sim=%v dxbsp=%v ratio=%.2f outside [0.7,2.0]", k, r.Cycles, pred, ratio)
		}
		if k == n {
			bsp := m.PredictBSP(prof)
			if r.Cycles < 5*bsp {
				t.Errorf("k=n: BSP prediction %v should be wildly below sim %v", bsp, r.Cycles)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	m := testMachine()
	g := rng.New(3)
	addrs := make([]uint64, 2000)
	for i := range addrs {
		addrs[i] = g.Uint64n(512)
	}
	pt := core.NewPattern(addrs, m.Procs)
	cfg := Config{Machine: m, UseSections: true, Window: 32}
	r1, err := Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func TestWindowLimitsSlowsNothingWhenLatencyZero(t *testing.T) {
	// With zero net delay, even a tiny window should not change completion
	// much for a flat pattern (responses return instantly).
	m := testMachine()
	pt := core.NewPattern(seqAddrs(1024), m.Procs)
	open, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	win, err := Run(Config{Machine: m, Window: 4}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if win.Cycles > open.Cycles*1.5 {
		t.Errorf("window=4 cycles %v vs open %v", win.Cycles, open.Cycles)
	}
}

func TestWindowWithLatencyThrottles(t *testing.T) {
	// With substantial latency and window=1, the processor issues one
	// request per round trip: completion ~ h * (2*netDelay + d).
	m := testMachine()
	m.L = 100 // netDelay = 50 each way
	n := 64
	pt := core.NewPattern(seqAddrs(n), 1)
	r, err := Run(Config{Machine: m, Window: 1}, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * (100 + m.D)
	if math.Abs(r.Cycles-want)/want > 0.1 {
		t.Errorf("window=1 cycles = %v, want ≈ %v", r.Cycles, want)
	}
}

func TestCombiningCollapsesHotSpot(t *testing.T) {
	m := testMachine()
	n := 512
	pt := core.NewPattern(constAddrs(n, 9), m.Procs)
	plain, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := Run(Config{Machine: m, Combining: true}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if comb.Cycles >= plain.Cycles/4 {
		t.Errorf("combining should collapse the hot spot: %v vs %v", comb.Cycles, plain.Cycles)
	}
	if comb.BankServices >= plain.BankServices {
		t.Errorf("combining should reduce bank services: %d vs %d", comb.BankServices, plain.BankServices)
	}
}

func TestSectionCongestion(t *testing.T) {
	// All requests to banks in one section, with section bandwidth below
	// aggregate processor bandwidth: section becomes the bottleneck.
	m := core.Machine{
		Name: "sec", Procs: 8, Banks: 64, D: 1, G: 1, L: 0,
		Sections: 8, SectionGap: 1, // one request/cycle per section
	}
	n := 2048
	// Banks 0..7 are section 0; spread addresses over banks 0..7 only.
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i % 8)
	}
	// Use distinct locations within the section's banks to avoid location
	// serialization: addr = (i%8) + 64*k maps to bank (i%8).
	for i := range addrs {
		addrs[i] = uint64(i%8) + 64*uint64(i/8)
	}
	pt := core.NewPattern(addrs, m.Procs)

	free, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	cong, err := Run(Config{Machine: m, UseSections: true}, pt)
	if err != nil {
		t.Fatal(err)
	}
	// Without sections: 8 banks at d=1 serve 8/cycle, processors feed
	// 8/cycle → ~n/8 cycles. With one section at 1/cycle → ~n cycles.
	if cong.Cycles < 4*free.Cycles {
		t.Errorf("section congestion missing: congested=%v free=%v", cong.Cycles, free.Cycles)
	}
}

func TestBankBusyAccounting(t *testing.T) {
	m := testMachine()
	n := 100
	pt := core.NewPattern(seqAddrs(n), m.Procs)
	r, err := Run(Config{Machine: m}, pt)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(n) * m.D; r.BankBusy != want {
		t.Errorf("BankBusy = %v, want %v", r.BankBusy, want)
	}
	if r.BankServices != n {
		t.Errorf("BankServices = %d, want %d", r.BankServices, n)
	}
}

func TestRunSupersteps(t *testing.T) {
	m := testMachine()
	m.L = 50
	steps := []core.Pattern{
		core.NewPattern(seqAddrs(128), m.Procs),
		core.NewPattern(constAddrs(64, 3), m.Procs),
	}
	results, total, err := RunSupersteps(Config{Machine: m}, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	sum := 0.0
	for _, r := range results {
		sum += r.Cycles + m.L
	}
	if math.Abs(total-sum) > 1e-9 {
		t.Errorf("total = %v, want %v", total, sum)
	}
}

func TestCyclesPerElement(t *testing.T) {
	r := Result{Cycles: 1000, Requests: 500}
	if got := r.CyclesPerElement(8); got != 16 {
		t.Errorf("CyclesPerElement = %v", got)
	}
	if got := (Result{}).CyclesPerElement(8); got != 0 {
		t.Errorf("empty CyclesPerElement = %v", got)
	}
}

func TestMoreBanksNeverSlower(t *testing.T) {
	// Expansion ablation at small scale: doubling banks should not slow a
	// random pattern down (the property behind experiment F6).
	g := rng.New(11)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = g.Uint64()
	}
	prev := math.Inf(1)
	for _, banks := range []int{8, 16, 32, 64, 128} {
		m := core.Machine{Name: "exp", Procs: 8, Banks: banks, D: 6, G: 1, L: 0}
		pt := core.NewPattern(addrs, m.Procs)
		r, err := Run(Config{Machine: m, BankMap: core.InterleaveMap{Banks: banks}}, pt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles > prev*1.02 {
			t.Errorf("banks=%d: %v cycles, slower than fewer banks (%v)", banks, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}
