package sim

import (
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
)

// Regression test for the event loop's steady-state allocation behavior.
//
// Two historical bugs are pinned here. First, the pre-ring-buffer server
// dequeued with `s.queue = s.queue[1:]`, which both prevented the backing
// array from ever being reused (every enqueue after a dequeue grew a new
// tail) and pinned the full backing array for the life of the run.
// Second, container/heap boxed every pushed event into an interface{},
// costing one allocation per simulated event. With both fixed, the number
// of allocations per run is dominated by setup (O(procs + banks)) and
// must NOT scale with the number of requests: an 8x bigger pattern may
// only add the logarithmic handful of amortized ring/heap growths.
func TestEventLoopSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement under -short")
	}
	m := core.J90()
	mk := func(n int) core.Pattern {
		return core.NewPattern(patterns.Uniform(n, 1<<30, rng.New(7)), m.Procs)
	}
	measure := func(pt core.Pattern, cfg Config) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(cfg, pt); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := mk(1<<11), mk(1<<14)

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"open-loop", Config{Machine: m}},
		{"windowed", Config{Machine: m, Window: 8}},
	} {
		aSmall := measure(small, tc.cfg)
		aBig := measure(big, tc.cfg)
		// Slack covers amortized doubling of the event queue and of the
		// per-bank rings between the two sizes; per-event allocations
		// would show up as thousands.
		if aBig > aSmall+64 {
			t.Errorf("%s: allocs grew with pattern size: %.0f at n=2^11 vs %.0f at n=2^14 (event loop is allocating per event)",
				tc.name, aSmall, aBig)
		}
		t.Logf("%s: %.0f allocs at n=2^11, %.0f at n=2^14", tc.name, aSmall, aBig)
	}
}

// TestProbesOffAllocBudget pins the absolute steady-state budget: with no
// probe attached, a warm run through the pooled engine performs zero
// allocations — Run draws a recycled Engine whose wheel buckets, rings
// and bookkeeping slices are re-armed in place. The budget of 8 (the
// pre-pooling per-run setup cost) leaves room for pool misses under GC
// pressure. The observability hooks are nil-checked pointer tests, so
// probes-off must not add a single allocation — if this fails after
// touching the hot path, a hook site is allocating (closure capture,
// interface conversion, fmt call) even when disabled, or reset stopped
// retaining a slab.
func TestProbesOffAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement under -short")
	}
	if raceEnabled {
		t.Skip("race mode defeats sync.Pool caching, so the pooled-run budget cannot hold")
	}
	const budget = 8
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<14, 1<<30, rng.New(7)), m.Procs)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"open-loop", Config{Machine: m}},
		{"windowed", Config{Machine: m, Window: 8}},
	} {
		// One warm-up run is included in AllocsPerRun's own averaging;
		// rings and the event queue reach their high-water marks on the
		// first of the 10 runs, so growth is amortized below one alloc
		// and the average floors at the per-run setup cost.
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := Run(tc.cfg, pt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > budget {
			t.Errorf("%s: %.1f allocs per probes-off run, budget is %d", tc.name, allocs, budget)
		}
		t.Logf("%s: %.1f allocs per run (budget %d)", tc.name, allocs, budget)
	}
}
