package sim

import (
	"context"
	"errors"
	"testing"

	"dxbsp/internal/core"
)

func superstepFixture() (Config, []core.Pattern) {
	m := testMachine()
	m.L = 25
	steps := []core.Pattern{
		core.NewPattern(seqAddrs(256), m.Procs),
		core.NewPattern(constAddrs(128, 3), m.Procs),
		core.NewPattern(seqAddrs(64), m.Procs),
	}
	return Config{Machine: m}, steps
}

// RunSuperstepsContext with a background context must be byte-identical
// to RunSupersteps.
func TestRunSuperstepsContextMatchesRunSupersteps(t *testing.T) {
	cfg, steps := superstepFixture()
	wantRes, wantTotal, err := RunSupersteps(cfg, steps)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, gotTotal, err := RunSuperstepsContext(context.Background(), cfg, steps)
	if err != nil {
		t.Fatal(err)
	}
	if gotTotal != wantTotal {
		t.Errorf("total = %v, want %v", gotTotal, wantTotal)
	}
	if len(gotRes) != len(wantRes) {
		t.Fatalf("len = %d, want %d", len(gotRes), len(wantRes))
	}
	for i := range gotRes {
		if gotRes[i] != wantRes[i] {
			t.Errorf("step %d: %+v != %+v", i, gotRes[i], wantRes[i])
		}
	}
}

// A cancelled context stops a multi-superstep run before the next step
// starts, with the context error surfaced.
func TestRunSuperstepsContextCancelled(t *testing.T) {
	cfg, steps := superstepFixture()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunSuperstepsContext(ctx, cfg, steps)
	if err == nil {
		t.Fatal("cancelled multi-superstep run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// Cancellation also interrupts WITHIN a big superstep via the event
// loop's polling, not only at the barriers.
func TestRunSuperstepsContextCancelledMidStep(t *testing.T) {
	cfg, _ := superstepFixture()
	big := []core.Pattern{core.NewPattern(seqAddrs(4*cancelCheckEvents), cfg.Machine.Procs)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The pre-step check fires first here; what matters is that the error
	// path is exercised and wraps the context error either way.
	_, _, err := RunSuperstepsContext(ctx, cfg, big)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// An error in a later superstep reports which step failed and returns no
// partial results.
func TestRunSuperstepsContextStepError(t *testing.T) {
	cfg, steps := superstepFixture()
	steps = append(steps, core.NewPattern(seqAddrs(8), cfg.Machine.Procs+1)) // too wide
	res, _, err := RunSuperstepsContext(context.Background(), cfg, steps)
	if err == nil {
		t.Fatal("over-wide pattern accepted")
	}
	if res != nil {
		t.Errorf("partial results returned: %d", len(res))
	}
}
