package sim

import (
	"errors"
	"strings"
	"testing"

	"dxbsp/internal/core"
)

func TestNormalizeAppliesDefaults(t *testing.T) {
	m := core.Machine{Name: "n", Procs: 4, Banks: 32, D: 4, G: 1, L: 10}
	c := Config{Machine: m}.Normalize()
	bm, ok := c.BankMap.(core.InterleaveMap)
	if !ok || bm.Banks != m.Banks {
		t.Errorf("BankMap = %#v, want InterleaveMap{%d}", c.BankMap, m.Banks)
	}
	if c.NetDelay != m.L/2 {
		t.Errorf("NetDelay = %g, want %g", c.NetDelay, m.L/2)
	}
	// Bank-cache defaults apply only when caching is on.
	if c.Bank.HitDelay != 0 || c.Bank.RowWords != 0 {
		t.Errorf("cache knobs defaulted while caching off: %+v", c)
	}
	// The deprecated HS93 fields fold into the Bank sub-config, with the
	// same defaults the old fields had (hit delay 1, 32-word rows).
	cc := Config{Machine: m, BankCacheLines: 2}.Normalize()
	if cc.Bank.CacheLines != 2 || cc.Bank.HitDelay != 1 || cc.Bank.RowWords != 32 {
		t.Errorf("cache defaults = %+v, want lines 2, hit 1, rows 32", cc.Bank)
	}
}

func TestNormalizeKeepsExplicitValues(t *testing.T) {
	m := core.Machine{Name: "n", Procs: 4, Banks: 32, D: 4, G: 1, L: 10}
	c := Config{Machine: m, NetDelay: 3, BankCacheLines: 2, BankHitDelay: 2, BankRowShift: 8}.Normalize()
	if c.NetDelay != 3 || c.Bank.HitDelay != 2 || c.Bank.RowWords != 1<<8 {
		t.Errorf("Normalize overwrote explicit values: %+v", c)
	}
	// An explicit Bank sub-config wins over the deprecated fields.
	d := Config{Machine: m, BankCacheLines: 4, BankHitDelay: 3,
		Bank: BankConfig{CacheLines: 1, HitDelay: 2, RowWords: 1}}.Normalize()
	if d.Bank.CacheLines != 1 || d.Bank.HitDelay != 2 || d.Bank.RowWords != 1 {
		t.Errorf("deprecated fields overrode the Bank sub-config: %+v", d.Bank)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	m := core.Machine{Name: "n", Procs: 4, Banks: 32, D: 4, G: 1, L: 10}
	once := Config{Machine: m, BankCacheLines: 1}.Normalize()
	if twice := once.Normalize(); twice != once {
		t.Errorf("Normalize not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
}

func TestValidateRejectsBadKnobs(t *testing.T) {
	m := core.Machine{Name: "n", Procs: 4, Banks: 32, D: 4, G: 1, L: 10}
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"negative window", Config{Machine: m, Window: -1}, "Window"},
		{"negative net delay", Config{Machine: m, NetDelay: -2}, "NetDelay"},
		{"negative cache lines", Config{Machine: m, BankCacheLines: -1}, "BankCacheLines"},
		{"negative hit delay", Config{Machine: m, BankCacheLines: 1, BankHitDelay: -1}, "BankHitDelay"},
		{"huge row shift", Config{Machine: m, BankCacheLines: 1, BankRowShift: 64}, "BankRowShift"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Normalize().Validate()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("Field = %q, want %q", ce.Field, tc.field)
			}
			if !strings.Contains(ce.Error(), tc.field) {
				t.Errorf("message %q does not name the field", ce.Error())
			}
		})
	}
}

// Run must reject what Validate rejects, as a typed error.
func TestRunReturnsConfigError(t *testing.T) {
	m := core.Machine{Name: "n", Procs: 4, Banks: 32, D: 4, G: 1, L: 10}
	_, err := Run(Config{Machine: m, Window: -3}, core.NewPattern(seqAddrs(8), 2))
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Window" {
		t.Errorf("Run error = %v, want ConfigError on Window", err)
	}
}
