package sim

import (
	"fmt"
	"math"

	"dxbsp/internal/core"
)

// RunReference is an independent, deliberately naive time-stepped
// implementation of the same machine semantics as Run: it advances a
// global clock one cycle at a time and moves requests between explicit
// queues. It exists purely as a correctness oracle for the event-driven
// engine — the two are written against the same informal spec but share
// no code, so agreement is meaningful evidence. O(cycles * resources):
// use small inputs.
//
// Supported subset: open-loop issue (no Window), no combining, no
// sections, integral G, D and NetDelay.
func RunReference(cfg Config, pt core.Pattern) (Result, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Window != 0 || cfg.Combining || cfg.UseSections || cfg.BankCacheLines != 0 {
		return Result{}, fmt.Errorf("sim: RunReference supports only the basic configuration")
	}
	m := cfg.Machine
	if m.G != math.Trunc(m.G) || m.D != math.Trunc(m.D) {
		return Result{}, fmt.Errorf("sim: RunReference needs integral G and D")
	}
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	netDelay := int(cfg.NetDelay)
	bm := cfg.BankMap

	type flight struct {
		bank   int
		arrive int
	}
	var inFlight []flight
	bankQueue := make([][]int, m.Banks) // queued arrival markers (counts suffice)
	bankBusyUntil := make([]int, m.Banks)
	res := Result{Requests: pt.N()}
	if pt.N() == 0 {
		return res, nil
	}

	g := int(m.G)
	d := int(m.D)
	next := make([]int, pt.Procs()) // next index to issue per proc
	remaining := pt.N()
	completions := 0
	lastDone := 0

	for clock := 0; completions < pt.N(); clock++ {
		if clock > pt.N()*(d+g+netDelay+4)+1000 {
			return Result{}, fmt.Errorf("sim: RunReference did not converge")
		}
		// 1. Issue: each processor injects one request every g cycles.
		if clock%g == 0 && remaining > 0 {
			for p := range pt.PerProc {
				if next[p] < len(pt.PerProc[p]) {
					addr := pt.PerProc[p][next[p]]
					next[p]++
					remaining--
					inFlight = append(inFlight, flight{bank: bm.Bank(addr), arrive: clock + netDelay})
				}
			}
		}
		// 2. Arrivals join bank queues.
		kept := inFlight[:0]
		for _, f := range inFlight {
			if f.arrive == clock {
				bankQueue[f.bank] = append(bankQueue[f.bank], clock)
				if len(bankQueue[f.bank]) > res.MaxBankQueue {
					res.MaxBankQueue = len(bankQueue[f.bank])
				}
			} else {
				kept = append(kept, f)
			}
		}
		inFlight = kept
		// 3. Banks start services.
		for b := range bankQueue {
			if len(bankQueue[b]) > 0 && bankBusyUntil[b] <= clock {
				bankQueue[b] = bankQueue[b][1:]
				bankBusyUntil[b] = clock + d
				res.BankServices++
				res.BankBusy += m.D
				done := clock + d + netDelay
				if done > lastDone {
					lastDone = done
				}
				completions++
			}
		}
	}
	res.Cycles = float64(lastDone)
	return res, nil
}
