package sim

import (
	"fmt"
	"math"
	"sort"

	"dxbsp/internal/core"
)

// RunReference is an independent, deliberately naive time-stepped
// implementation of the same machine semantics as Run: it advances a
// global clock one cycle at a time and moves requests between explicit
// queues. It exists purely as a correctness oracle for the event-driven
// engine — the two are written against the same informal spec but share
// no code, so agreement is meaningful evidence. O(cycles * resources):
// use small inputs.
//
// Supported subset: open-loop issue (no Window), no combining, no
// sections, and integral G, D, NetDelay and discipline delays. Every
// discipline is covered — FIFO (cached or not), DRAM (without bank
// groups, whose cross-bank coupling the differential wheel-vs-heap test
// covers instead), Regulated, and GPUShared (which needs NetDelay >= 1
// so a warp enabled by a same-cycle response is not re-issued a cycle
// late relative to the engine's event ordering).
func RunReference(cfg Config, pt core.Pattern) (Result, error) {
	if err := cfg.Machine.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Window != 0 || cfg.Combining || cfg.UseSections {
		return Result{}, fmt.Errorf("sim: RunReference supports only the basic configuration")
	}
	m := cfg.Machine
	if m.G != math.Trunc(m.G) || m.D != math.Trunc(m.D) {
		return Result{}, fmt.Errorf("sim: RunReference needs integral G and D")
	}
	cfg = cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.NetDelay != math.Trunc(cfg.NetDelay) {
		return Result{}, fmt.Errorf("sim: RunReference needs integral NetDelay")
	}
	bc := cfg.Bank
	rowsOn := bc.CacheLines > 0
	hit, miss := int(bc.HitDelay), int(bc.MissDelay)
	regW, regB := int(bc.RegWindow), bc.RegBudget
	warp := bc.WarpSize
	switch bc.Discipline {
	case FIFO, DRAM:
		if rowsOn && bc.HitDelay != math.Trunc(bc.HitDelay) {
			return Result{}, fmt.Errorf("sim: RunReference needs an integral Bank.HitDelay")
		}
		if bc.Discipline == DRAM {
			if bc.MissDelay != math.Trunc(bc.MissDelay) {
				return Result{}, fmt.Errorf("sim: RunReference needs an integral Bank.MissDelay")
			}
			if bc.Groups > 0 {
				return Result{}, fmt.Errorf("sim: RunReference does not model bank groups")
			}
		}
	case Regulated:
		if bc.RegWindow != math.Trunc(bc.RegWindow) {
			return Result{}, fmt.Errorf("sim: RunReference needs an integral Bank.RegWindow")
		}
	case GPUShared:
		if cfg.NetDelay < 1 {
			return Result{}, fmt.Errorf("sim: RunReference needs NetDelay >= 1 under GPUShared")
		}
	}

	netDelay := int(cfg.NetDelay)
	bm := cfg.BankMap
	gpu := bc.Discipline == GPUShared

	type reqRef struct {
		proc int
		seq  int
		addr uint64
	}
	type flight struct {
		reqRef
		bank   int
		arrive int
	}
	type response struct {
		proc int
		seq  int
		due  int
	}
	var inFlight []flight
	var responses []response
	bankQueue := make([][]reqRef, m.Banks)
	bankBusyUntil := make([]int, m.Banks)
	bankBusy := make([]bool, m.Banks)
	bankRows := make([][]uint64, m.Banks)
	regEpoch := make([]int, m.Banks)
	regUsed := make([]int, m.Banks)
	rowShift := rowShiftOf(bc.RowWords)

	res := Result{Requests: pt.N()}
	if pt.N() == 0 {
		return res, nil
	}

	g := int(m.G)
	d := int(m.D)
	next := make([]int, pt.Procs())        // next index to issue per proc
	outstanding := make([]int, pt.Procs()) // GPU: lanes awaiting responses
	nextIssueAt := make([]int, pt.Procs()) // GPU: earliest next warp issue
	type pendingInject struct {
		proc    int
		issueAt int
	}
	// GPU warps issue in the order their injections were enabled (the
	// engine's inject events carry the sequence numbers of their
	// scheduling), starting with every processor at clock 0.
	var injects []pendingInject
	if gpu {
		for p := 0; p < pt.Procs(); p++ {
			if len(pt.PerProc[p]) > 0 {
				injects = append(injects, pendingInject{proc: p})
			}
		}
	}

	// rowAccess mirrors the engine's per-bank LRU open-row bookkeeping,
	// reimplemented naively on purpose.
	rowAccess := func(b int, addr uint64) bool {
		row := addr >> rowShift
		rows := bankRows[b]
		for i, r := range rows {
			if r == row {
				bankRows[b] = append(append(rows[:i:i], rows[i+1:]...), row)
				return true
			}
		}
		if len(rows) >= bc.CacheLines {
			rows = rows[1:]
		}
		bankRows[b] = append(rows, row)
		return false
	}

	seq := 0
	served := 0
	lastDone := 0

	// start begins one bank service at clock and performs the discipline's
	// accounting; deferred starts (Regulated) hold the bank through the
	// wait exactly as the engine does.
	start := func(b int, r reqRef, clock int, queued bool) {
		at := clock
		service := d
		switch bc.Discipline {
		case FIFO:
			if rowsOn && rowAccess(b, r.addr) {
				service = hit
				res.RowHits++
			}
		case DRAM:
			if rowAccess(b, r.addr) {
				service = hit
				res.RowHits++
			} else {
				service = miss
				res.RowConflicts++
			}
		case Regulated:
			if ep := clock / regW; ep > regEpoch[b] {
				regEpoch[b] = ep
				regUsed[b] = 0
			}
			if regUsed[b] >= regB {
				regEpoch[b]++
				regUsed[b] = 0
				at = regEpoch[b] * regW
				res.ThrottleStalls++
				res.ThrottleStallCycles += float64(at - clock)
			}
			regUsed[b]++
		case GPUShared:
			if queued {
				res.WarpReplays++
			}
		}
		bankBusy[b] = true
		bankBusyUntil[b] = at + service
		res.BankServices++
		res.BankBusy += float64(service)
		served++
		done := at + service + netDelay
		if done > lastDone {
			lastDone = done
		}
		if gpu {
			responses = append(responses, response{proc: r.proc, seq: r.seq, due: done})
		}
	}

	for clock := 0; served < pt.N(); clock++ {
		// Non-termination guard only: netDelay counts twice because the
		// closed-loop GPU path pays it on the request and again on the
		// response before a conflicting lane can replay, so a fully
		// serialized single-bank warp legitimately needs ~N*(d+2*netDelay).
		if clock > pt.N()*(d+hit+miss+regW+g+2*netDelay+8)+1000 {
			return Result{}, fmt.Errorf("sim: RunReference did not converge")
		}
		// 1. Responses arrive back (GPU only — elsewhere they have no
		// feedback). The engine dispatches same-cycle completions in
		// request order, and a warp whose last lane returns now may issue
		// again this very cycle.
		if gpu && len(responses) > 0 {
			var due []response
			kept := responses[:0]
			for _, r := range responses {
				if r.due == clock {
					due = append(due, r)
				} else {
					kept = append(kept, r)
				}
			}
			responses = kept
			sort.Slice(due, func(i, j int) bool { return due[i].seq < due[j].seq })
			for _, r := range due {
				outstanding[r.proc]--
				if outstanding[r.proc] == 0 && next[r.proc] < len(pt.PerProc[r.proc]) {
					at := clock
					if nextIssueAt[r.proc] > at {
						at = nextIssueAt[r.proc]
					}
					injects = append(injects, pendingInject{proc: r.proc, issueAt: at})
				}
			}
		}
		// 2. Issue. Legacy open loop: each processor injects one request
		// every g cycles. GPU: enabled warps inject WarpSize lanes at once,
		// in enablement order.
		if gpu {
			kept := injects[:0]
			for _, in := range injects {
				if in.issueAt > clock {
					kept = append(kept, in)
					continue
				}
				p := in.proc
				w := len(pt.PerProc[p]) - next[p]
				if w > warp {
					w = warp
				}
				nextIssueAt[p] = clock + g
				for i := 0; i < w; i++ {
					addr := pt.PerProc[p][next[p]]
					seq++
					next[p]++
					outstanding[p]++
					inFlight = append(inFlight, flight{
						reqRef: reqRef{proc: p, seq: seq, addr: addr},
						bank:   bm.Bank(addr), arrive: clock + netDelay,
					})
				}
			}
			injects = kept
		} else if clock%g == 0 {
			for p := range pt.PerProc {
				if next[p] < len(pt.PerProc[p]) {
					addr := pt.PerProc[p][next[p]]
					seq++
					next[p]++
					inFlight = append(inFlight, flight{
						reqRef: reqRef{proc: p, seq: seq, addr: addr},
						bank:   bm.Bank(addr), arrive: clock + netDelay,
					})
				}
			}
		}
		// 3. Arrivals: an idle bank starts serving on the spot; a busy one
		// (including one whose service ends this very cycle — the engine
		// orders arrivals before completions) queues the request.
		kept := inFlight[:0]
		for _, f := range inFlight {
			if f.arrive != clock {
				kept = append(kept, f)
				continue
			}
			if bankBusy[f.bank] {
				bankQueue[f.bank] = append(bankQueue[f.bank], f.reqRef)
				if len(bankQueue[f.bank]) > res.MaxBankQueue {
					res.MaxBankQueue = len(bankQueue[f.bank])
				}
			} else {
				start(f.bank, f.reqRef, clock, false)
			}
		}
		inFlight = kept
		// 4. Banks finish services and pull from their queues; a zero-cycle
		// service chain drains within the cycle, as the engine's same-time
		// done events do.
		for b := range bankQueue {
			for bankBusy[b] && bankBusyUntil[b] == clock {
				if len(bankQueue[b]) > 0 {
					r := bankQueue[b][0]
					bankQueue[b] = bankQueue[b][1:]
					start(b, r, clock, true)
				} else {
					bankBusy[b] = false
				}
			}
		}
	}
	res.Cycles = float64(lastDone)
	return res, nil
}
