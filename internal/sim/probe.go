package sim

import "dxbsp/internal/core"

// Probe is the simulator's observability hook. A Probe attached to
// Config.Probe is asked for one RunProbe per simulation run; the engine
// then reports bank/section/window events to that RunProbe as they are
// dispatched.
//
// The contract, enforced by TestProbeDoesNotPerturbResults and the alloc
// regression tests:
//
//   - Attaching a probe NEVER changes simulation results. Hooks receive
//     copies of engine state and have no channel back into the engine.
//   - A nil Config.Probe costs one pointer test per hook site; the
//     probes-off event loop stays allocation-free in steady state.
//   - RunDone fires exactly once per successfully completed run, after
//     the Result is fully assembled. A cancelled run never reaches
//     RunDone, so collectors that commit state there observe only
//     completed simulations (this is what keeps aggregated metrics
//     deterministic under retries and chaos).
//
// Hooks run on the simulating goroutine; a RunProbe needs no internal
// locking against the engine, only against its own readers.
type Probe interface {
	// RunStart is called once per run after config normalization and
	// validation, before the first event dispatches. The returned
	// RunProbe receives every event of that run.
	RunStart(cfg Config, pt core.Pattern) RunProbe
}

// RunProbe receives the per-event observations of one simulation run.
type RunProbe interface {
	// BankArrive reports a request reaching bank at time now. depth is
	// the waiting-line length just before this arrival (excluding the
	// request in service, if any).
	BankArrive(bank int, now float64, depth int)

	// BankStart reports bank beginning a service at now that will hold
	// the bank for service cycles. stall is how long the discipline held
	// the request beyond its dispatch before letting it start — a
	// bank-group bus wait under DRAM, a regulation-window wait under
	// Regulated, 0 elsewhere. rowHit is true when the access was
	// satisfied from the bank's row buffer; queued is true when the
	// request waited in the bank's line rather than starting on arrival;
	// combined is the number of additional queued requests satisfied by
	// this same service (nonzero only under Config.Combining).
	BankStart(bank int, now float64, service, stall float64, rowHit, queued bool, combined int)

	// SectionArrive reports a request reaching network section sec at
	// now; depth as for BankArrive. Only fires when the section
	// bottleneck is active (Config.UseSections and Machine.Sections > 1).
	SectionArrive(sec int, now float64, depth int)

	// SectionStart reports section sec beginning to forward a request at
	// now; queued as for BankStart.
	SectionStart(sec int, now float64, queued bool)

	// WindowStall reports that processor proc, blocked on its
	// outstanding-request window since from, was unblocked at to.
	// Only fires when Config.Window > 0.
	WindowStall(proc int, from, to float64)

	// RunDone reports the completed run's Result. It is the commit
	// point: it fires only when the run finished (never on
	// cancellation), exactly once, after all other hooks.
	RunDone(res Result)
}
