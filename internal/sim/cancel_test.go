package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"dxbsp/internal/core"
)

// A pattern big enough to guarantee several cancellation polls (the
// simulator checks every cancelCheckEvents dispatched events, and each
// request contributes multiple events).
func bigPattern() core.Pattern {
	return core.NewPattern(seqAddrs(4*cancelCheckEvents), 4)
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{Machine: testMachine()}, bigPattern())
	if err == nil {
		t.Fatal("cancelled simulation succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// An expired deadline must surface as context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := RunContext(ctx, Config{Machine: testMachine()}, bigPattern())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// Cancellation polling must not perturb the simulation: an uncancelled
// RunContext and plain Run agree exactly.
func TestRunContextMatchesRun(t *testing.T) {
	cfg := Config{Machine: testMachine(), Window: 8}
	pt := bigPattern()
	want, err := Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunContext = %+v, Run = %+v", got, want)
	}
}

// A small simulation may finish before the first poll; it must succeed
// even under a cancelled context only if it never reaches a poll — and
// either way must never return a partial result silently.
func TestRunContextSmallPattern(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := RunContext(ctx, Config{Machine: testMachine()}, core.NewPattern(seqAddrs(8), 4))
	if err == nil {
		want, werr := Run(Config{Machine: testMachine()}, core.NewPattern(seqAddrs(8), 4))
		if werr != nil {
			t.Fatal(werr)
		}
		if r != want {
			t.Errorf("uncancelled-completion result %+v differs from Run's %+v", r, want)
		}
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}
