// Package sweep shards an experiment suite's point grid across processes
// and merges the resulting checkpoint journals back into one
// deterministic result — the coordination substrate that makes the
// paper's expensive sweeps (expansion studies at large p, every hash
// family, every bank discipline) feasible across machines.
//
// The package builds on two invariants the rest of the system already
// guarantees. First, every experiment enumerates its points
// deterministically: Points(cfg) performs all shared-RNG draws, so two
// processes with the same Config enumerate the identical grid and may
// split it by index. Second, every simulation a point issues is journaled
// under a content key (runner.SimKey) whose value is a pure function of
// the request — so journals written by different processes can be merged
// by key, and a final -resume run replays the merged journal into output
// byte-identical to a single-process run, re-executing nothing.
//
// Two execution modes share that foundation:
//
//   - Static sharding: `dxbench -shard i/n -checkpoint dir` runs the
//     points with Index ≡ i (mod n), journaling into a per-shard file;
//     `dxbench -merge dir` combines the shard journals into the canonical
//     journal.jsonl.
//   - Dynamic coordination: a Coordinator writes a Manifest of point
//     ranges into a shared directory; Workers claim ranges through
//     atomically created lease files, renew them by heartbeat, and mark
//     ranges done; the coordinator reclaims leases whose heartbeat
//     expired, so a `kill -9` of any worker loses at most its in-flight
//     points — another worker re-runs the reclaimed range, and
//     determinism makes the re-run's records identical.
//
// Retry behavior is shard-invariant by construction: the runner's backoff
// schedule derives from (policy seed, experiment ID, point index,
// attempt), and filtering preserves each point's global Index, so a point
// retries on the same schedule no matter which process runs it
// (TestBackoffScheduleShardInvariant pins this).
package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"dxbsp/internal/experiments"
)

// UsageError marks a sweep misconfiguration the caller should surface as
// a usage failure (exit code 1), never as a degraded run: a bad shard
// spec silently running zero points would look like success.
type UsageError struct{ msg string }

func (e *UsageError) Error() string { return e.msg }

func usageErrorf(format string, args ...interface{}) *UsageError {
	return &UsageError{msg: fmt.Sprintf(format, args...)}
}

// Shard identifies one of Count deterministic partitions of a sweep's
// point grid. The zero value means "not sharded".
type Shard struct {
	// Index is this shard's number in [0, Count).
	Index int
	// Count is the total number of shards.
	Count int
}

// ParseShard parses an "i/n" shard specification. Errors are typed
// *UsageError: i and n must be integers with 0 <= i < n and n >= 1 —
// "0/0" and "i >= n" are configuration mistakes that would otherwise run
// zero points and report success.
func ParseShard(spec string) (Shard, error) {
	is, ns, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, usageErrorf("sweep: bad shard spec %q (want i/n, e.g. 0/4)", spec)
	}
	i, err := strconv.Atoi(strings.TrimSpace(is))
	if err != nil {
		return Shard{}, usageErrorf("sweep: bad shard index in %q: %v", spec, err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(ns))
	if err != nil {
		return Shard{}, usageErrorf("sweep: bad shard count in %q: %v", spec, err)
	}
	if n < 1 {
		return Shard{}, usageErrorf("sweep: shard count %d in %q must be >= 1", n, spec)
	}
	if i < 0 || i >= n {
		return Shard{}, usageErrorf("sweep: shard index %d in %q outside [0, %d)", i, spec, n)
	}
	return Shard{Index: i, Count: n}, nil
}

// Enabled reports whether s selects a real partition.
func (s Shard) Enabled() bool { return s.Count > 0 }

// Owns reports whether the point with the given global index belongs to
// this shard. Points are dealt round-robin so every shard sees a cross-
// section of each sweep rather than one contiguous (and possibly
// uniformly expensive) slab.
func (s Shard) Owns(index int) bool {
	if s.Count <= 1 {
		return true
	}
	return index%s.Count == s.Index
}

// String renders the spec form, "i/n".
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// FilterPoints returns the subset of pts owned by s, preserving each
// point's global Index — retry backoff schedules and progress labels key
// on it, so re-indexing would change behavior across shards.
func FilterPoints(pts []experiments.Point, s Shard) []experiments.Point {
	if !s.Enabled() || s.Count == 1 {
		return pts
	}
	out := make([]experiments.Point, 0, (len(pts)+s.Count-1)/s.Count)
	for _, p := range pts {
		if s.Owns(p.Index) {
			out = append(out, p)
		}
	}
	return out
}

// FilterRange returns the points with global Index in [start, end),
// preserving indices — the dynamic worker's unit of claimed work.
func FilterRange(pts []experiments.Point, start, end int) []experiments.Point {
	out := make([]experiments.Point, 0, end-start)
	for _, p := range pts {
		if p.Index >= start && p.Index < end {
			out = append(out, p)
		}
	}
	return out
}

// Apply wraps e so its Points stage enumerates only the points owned by
// s. The full grid is still generated first (the shared-RNG draws must
// happen in sweep order on every shard), then filtered; Assemble sees
// only the owned subset, so shard-mode callers journal rather than render.
func Apply(e experiments.Experiment, s Shard) experiments.Experiment {
	if !s.Enabled() || s.Count == 1 {
		return e
	}
	inner := e.Points
	e.Points = func(cfg experiments.Config) []experiments.Point {
		return FilterPoints(inner(cfg), s)
	}
	return e
}

// ApplyRange wraps e so its Points stage enumerates only the points with
// global Index in [start, end).
func ApplyRange(e experiments.Experiment, start, end int) experiments.Experiment {
	inner := e.Points
	e.Points = func(cfg experiments.Config) []experiments.Point {
		return FilterRange(inner(cfg), start, end)
	}
	return e
}
