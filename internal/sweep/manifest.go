package sweep

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"dxbsp/internal/experiments"
)

// manifestFile is the manifest's name inside the shared journal directory.
const manifestFile = "manifest.json"

// Range is one contiguous run of a single experiment's points — the unit
// of work a dynamic worker claims, executes, and marks done. Ranges never
// span experiments: a range is fully described by (experiment, [Start,
// End)) over that experiment's deterministic point enumeration.
type Range struct {
	// ID names the range for lease and done-marker files, e.g. "F6.0-4".
	ID string `json:"id"`
	// Experiment is the experiment the points belong to.
	Experiment string `json:"experiment"`
	// Start and End bound the global point indices, half-open.
	Start int `json:"start"`
	End   int `json:"end"`
}

// Manifest is the coordinator's statement of the whole sweep: which
// configuration it runs under (as a fingerprint every worker must match)
// and the ranges the point grid decomposes into. It is written once,
// atomically, and never modified — progress lives in lease and done
// files, so a coordinator restart re-reads the same plan.
type Manifest struct {
	// Config fingerprints the sweep configuration; see Fingerprint.
	Config string `json:"config"`
	// Experiments lists the experiment IDs in execution order.
	Experiments []string `json:"experiments"`
	// Chunk is the range size the grid was cut into.
	Chunk int `json:"chunk"`
	// Ranges is the full work list.
	Ranges []Range `json:"ranges"`
}

// Fingerprint digests everything that determines the point grid and its
// results: scale, seed, quick mode, and the experiment set with each
// experiment's point count. Two processes agree on the fingerprint iff
// they enumerate the identical grid, so it is the guard that keeps a
// worker configured with different flags from journaling records into
// someone else's sweep.
func Fingerprint(cfg experiments.Config, exps []experiments.Experiment) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "n=%d|seed=%d|quick=%t", cfg.N, cfg.Seed, cfg.Quick)
	for _, e := range exps {
		fmt.Fprintf(h, "|%s:%d", e.ID, len(e.Points(cfg)))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// BuildManifest cuts the experiment set's point grid into ranges of at
// most chunk points (chunk < 1 selects a default of 4). The decomposition
// is deterministic in (cfg, exps, chunk).
func BuildManifest(cfg experiments.Config, exps []experiments.Experiment, chunk int) Manifest {
	if chunk < 1 {
		chunk = 4
	}
	m := Manifest{Config: Fingerprint(cfg, exps), Chunk: chunk}
	for _, e := range exps {
		n := len(e.Points(cfg))
		m.Experiments = append(m.Experiments, e.ID)
		for start := 0; start < n; start += chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			m.Ranges = append(m.Ranges, Range{
				ID:         fmt.Sprintf("%s.%d-%d", e.ID, start, end),
				Experiment: e.ID,
				Start:      start,
				End:        end,
			})
		}
	}
	return m
}

// WriteManifest publishes m into dir atomically (temp file + rename). If
// a manifest already exists it must carry the same fingerprint — that is
// a coordinator restart resuming the same sweep, and the existing
// manifest (the one workers may already hold ranges from) wins. A
// fingerprint mismatch is a typed usage error: two differently configured
// sweeps must not share a directory.
func WriteManifest(dir string, m Manifest) (Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("sweep: %w", err)
	}
	if existing, err := LoadManifest(dir); err == nil {
		if existing.Config != m.Config {
			return Manifest{}, usageErrorf("sweep: %s holds a manifest for a different sweep (config %s, this run is %s)",
				dir, existing.Config, m.Config)
		}
		return existing, nil
	}
	path := filepath.Join(dir, manifestFile)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Manifest{}, fmt.Errorf("sweep: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return Manifest{}, fmt.Errorf("sweep: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return Manifest{}, fmt.Errorf("sweep: %w", err)
	}
	return m, nil
}

// LoadManifest reads the manifest published in dir.
func LoadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("sweep: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("sweep: bad manifest in %s: %w", dir, err)
	}
	if len(m.Ranges) == 0 {
		return Manifest{}, fmt.Errorf("sweep: manifest in %s lists no ranges", dir)
	}
	return m, nil
}

// VerifyConfig checks that a worker's configuration matches the manifest
// it is about to work from; a mismatch is a typed usage error.
func (m Manifest) VerifyConfig(cfg experiments.Config, exps []experiments.Experiment) error {
	if got := Fingerprint(cfg, exps); got != m.Config {
		return usageErrorf("sweep: worker configuration (fingerprint %s) does not match the manifest (%s); run the worker with the coordinator's flags", got, m.Config)
	}
	return nil
}
