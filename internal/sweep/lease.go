package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Dir is the shared journal directory seen as a coordination medium. All
// inter-process state — the manifest, per-range lease files, per-range
// done markers, per-worker journals — lives in this one directory, and
// every mutation is an atomic filesystem operation (O_EXCL-equivalent
// link for claims, rename for renewals and markers), so the protocol
// tolerates arbitrary process death at any instruction boundary:
//
//   - A lease is claimed by hard-linking a fully written temp file to
//     lease.<id>.json; the link either exists afterwards or it does not.
//   - A heartbeat renewal atomically replaces the lease with one carrying
//     a later deadline.
//   - A done marker (done.<id>) is renamed into place only after the
//     worker's journal has been fsynced, so a visible marker always
//     vouches for durable records.
//   - Reclaiming an expired lease is a plain remove; if the "dead" worker
//     was merely slow and finishes anyway, its records are byte-identical
//     to the replacement's (simulation is deterministic), so duplicated
//     execution is wasted work, never wrong output.
type Dir struct {
	// Path is the shared directory.
	Path string
	// TTL is how long a claimed lease stays valid without renewal.
	// Defaults to 10s.
	TTL time.Duration
	// Grace pads expiry before the coordinator reclaims, absorbing
	// clock skew between processes. Defaults to TTL/2.
	Grace time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// Lease is the content of one lease file.
type Lease struct {
	// Worker is the claiming worker's id.
	Worker string `json:"worker"`
	// Deadline is when the lease expires unless renewed, unix nanos.
	Deadline int64 `json:"deadline"`
}

func (d *Dir) now() time.Time {
	if d.Now != nil {
		return d.Now()
	}
	return time.Now()
}

func (d *Dir) ttl() time.Duration {
	if d.TTL <= 0 {
		return 10 * time.Second
	}
	return d.TTL
}

func (d *Dir) grace() time.Duration {
	if d.Grace <= 0 {
		return d.ttl() / 2
	}
	return d.Grace
}

// fsSafe maps a range id to a filesystem-safe token.
func fsSafe(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.', r == '_':
			return r
		}
		return '_'
	}, id)
}

func (d *Dir) leasePath(id string) string {
	return filepath.Join(d.Path, "lease."+fsSafe(id)+".json")
}

func (d *Dir) donePath(id string) string {
	return filepath.Join(d.Path, "done."+fsSafe(id))
}

func (d *Dir) writeTemp(prefix string, data []byte) (string, error) {
	f, err := os.CreateTemp(d.Path, prefix)
	if err != nil {
		return "", err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(f.Name())
		return "", werr
	}
	return f.Name(), nil
}

// Claim attempts to acquire the lease on range id for worker. It returns
// true iff this call created the lease. The lease file is fully written
// before it becomes visible (temp + hard link), so a concurrent reader
// never observes a half-written lease.
func (d *Dir) Claim(id, worker string) (bool, error) {
	content, _ := json.Marshal(Lease{Worker: worker, Deadline: d.now().Add(d.ttl()).UnixNano()})
	tmp, err := d.writeTemp("claim-", append(content, '\n'))
	if err != nil {
		return false, fmt.Errorf("sweep: claim %s: %w", id, err)
	}
	defer os.Remove(tmp)
	if err := os.Link(tmp, d.leasePath(id)); err != nil {
		if os.IsExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("sweep: claim %s: %w", id, err)
	}
	return true, nil
}

// Renew extends worker's lease on id by TTL from now. If the lease has
// been reclaimed and re-claimed by someone else, Renew reports lost=true
// and leaves the other worker's lease alone; the caller may finish its
// in-flight range (results are deterministic, duplication is safe) but
// must stop renewing.
func (d *Dir) Renew(id, worker string) (lost bool, err error) {
	cur, ok, err := d.Holder(id)
	if err != nil {
		return false, err
	}
	if ok && cur.Worker != worker {
		return true, nil
	}
	// Missing lease: it expired and was reclaimed but nobody re-claimed
	// yet; re-assert it (rename is atomic either way).
	content, _ := json.Marshal(Lease{Worker: worker, Deadline: d.now().Add(d.ttl()).UnixNano()})
	tmp, err := d.writeTemp("renew-", append(content, '\n'))
	if err != nil {
		return false, fmt.Errorf("sweep: renew %s: %w", id, err)
	}
	if err := os.Rename(tmp, d.leasePath(id)); err != nil {
		os.Remove(tmp)
		return false, fmt.Errorf("sweep: renew %s: %w", id, err)
	}
	return false, nil
}

// Release removes the lease on id; missing is fine (already reclaimed).
func (d *Dir) Release(id string) error {
	if err := os.Remove(d.leasePath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("sweep: release %s: %w", id, err)
	}
	return nil
}

// Holder reads the current lease on id.
func (d *Dir) Holder(id string) (Lease, bool, error) {
	data, err := os.ReadFile(d.leasePath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return Lease{}, false, nil
		}
		return Lease{}, false, fmt.Errorf("sweep: lease %s: %w", id, err)
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		// Unreadable lease content should be impossible (writes are
		// atomic); treat it as held-with-unknown-deadline so reclaim falls
		// back to the file's age rather than stealing a live range.
		return Lease{}, true, nil
	}
	return l, true, nil
}

// MarkDone publishes the done marker for id. Callers must have made the
// range's journal records durable first. Idempotent: two workers that
// both executed a reclaimed range both mark it done.
func (d *Dir) MarkDone(id, worker string) error {
	tmp, err := d.writeTemp("done-", []byte(worker+"\n"))
	if err != nil {
		return fmt.Errorf("sweep: done %s: %w", id, err)
	}
	if err := os.Rename(tmp, d.donePath(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: done %s: %w", id, err)
	}
	return nil
}

// IsDone reports whether id's done marker exists.
func (d *Dir) IsDone(id string) bool {
	_, err := os.Stat(d.donePath(id))
	return err == nil
}

// CountDone returns how many of the given ranges are done.
func (d *Dir) CountDone(ranges []Range) int {
	n := 0
	for _, r := range ranges {
		if d.IsDone(r.ID) {
			n++
		}
	}
	return n
}

// ReclaimExpired removes leases whose deadline (plus grace) has passed on
// ranges that are not done, returning the reclaimed range ids sorted for
// deterministic reporting. A lease with unreadable content is reclaimed
// only on a missing deadline AND a stale mtime — the conservative side.
func (d *Dir) ReclaimExpired(ranges []Range) ([]string, error) {
	now := d.now()
	var reclaimed []string
	for _, r := range ranges {
		if d.IsDone(r.ID) {
			continue
		}
		l, held, err := d.Holder(r.ID)
		if err != nil {
			return reclaimed, err
		}
		if !held {
			continue
		}
		expired := false
		if l.Deadline > 0 {
			expired = now.After(time.Unix(0, l.Deadline).Add(d.grace()))
		} else if st, err := os.Stat(d.leasePath(r.ID)); err == nil {
			expired = now.Sub(st.ModTime()) > d.ttl()+d.grace()
		}
		if !expired {
			continue
		}
		if err := d.Release(r.ID); err != nil {
			return reclaimed, err
		}
		reclaimed = append(reclaimed, r.ID)
	}
	sort.Strings(reclaimed)
	return reclaimed, nil
}
