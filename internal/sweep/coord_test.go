package sweep

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// The coordinator/worker protocol end to end, compressed in time: a dead
// worker's lease (claimed, never renewed, never marked done) is reclaimed
// by the coordinator and its range re-executed by a live worker, and the
// sweep completes with every range done exactly once in the done-marker
// sense even though one range ran under two claims.
func TestCoordinatorReclaimsAbandonedLease(t *testing.T) {
	d := &Dir{Path: t.TempDir(), TTL: 50 * time.Millisecond}
	man := Manifest{
		Config: "cafe",
		Chunk:  2,
		Ranges: []Range{
			{ID: "A.0-2", Experiment: "A", Start: 0, End: 2},
			{ID: "A.2-4", Experiment: "A", Start: 2, End: 4},
			{ID: "B.0-2", Experiment: "B", Start: 0, End: 2},
		},
	}
	// A worker that died immediately after claiming: the lease exists, no
	// heartbeat will ever renew it, no done marker will appear.
	if ok, err := d.Claim("A.2-4", "dead"); err != nil || !ok {
		t.Fatalf("dead worker claim: ok=%v err=%v", ok, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var mu sync.Mutex
	executed := map[string]int{}
	w := &Worker{
		Dir:      d,
		Manifest: man,
		ID:       "live",
		Exec: func(ctx context.Context, rg Range) error {
			mu.Lock()
			executed[rg.ID]++
			mu.Unlock()
			return nil
		},
	}

	coordDone := make(chan CoordStats, 1)
	coordErr := make(chan error, 1)
	go func() {
		c := &Coordinator{Dir: d, Manifest: man}
		st, err := c.Run(ctx)
		coordDone <- st
		coordErr <- err
	}()

	completed, err := w.Run(ctx)
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	st := <-coordDone
	if err := <-coordErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	if completed != len(man.Ranges) {
		t.Errorf("live worker completed %d ranges, want %d", completed, len(man.Ranges))
	}
	if st.Reclaimed != 1 {
		t.Errorf("reclaimed %d leases, want 1", st.Reclaimed)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, rg := range man.Ranges {
		if executed[rg.ID] != 1 {
			t.Errorf("range %s executed %d times by the live worker", rg.ID, executed[rg.ID])
		}
		if !d.IsDone(rg.ID) {
			t.Errorf("range %s has no done marker", rg.ID)
		}
	}
}

// Two live workers split the manifest without overlap: done markers and
// leases make every range execute exactly once when nobody dies. Run with
// -race in CI.
func TestWorkersShareManifestWithoutOverlap(t *testing.T) {
	d := &Dir{Path: t.TempDir(), TTL: time.Minute} // no reclaim in this test
	var ranges []Range
	for i := 0; i < 12; i += 2 {
		ranges = append(ranges, Range{ID: rangeID("A", i, i+2), Experiment: "A", Start: i, End: i + 2})
	}
	man := Manifest{Config: "cafe", Chunk: 2, Ranges: ranges}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var mu sync.Mutex
	executed := map[string]int{}
	mkWorker := func(id string) *Worker {
		return &Worker{Dir: d, Manifest: man, ID: id,
			Exec: func(ctx context.Context, rg Range) error {
				mu.Lock()
				executed[rg.ID]++
				mu.Unlock()
				return nil
			}}
	}

	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2", "w3"} {
		w := mkWorker(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, rg := range ranges {
		if executed[rg.ID] != 1 {
			t.Errorf("range %s executed %d times", rg.ID, executed[rg.ID])
		}
	}
}

// A stalled-heartbeat worker (chaos) keeps executing but never renews, so
// the coordinator reclaims its lease out from under a live process; the
// stalled worker's MarkDone is still safe because done markers are
// idempotent and results deterministic.
func TestStallHeartbeatLosesLease(t *testing.T) {
	d := &Dir{Path: t.TempDir(), TTL: 40 * time.Millisecond}
	man := Manifest{Config: "cafe", Chunk: 2,
		Ranges: []Range{{ID: "A.0-2", Experiment: "A", Start: 0, End: 2}}}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	release := make(chan struct{})
	w := &Worker{Dir: d, Manifest: man, ID: "stalled", StallHeartbeat: true,
		Exec: func(ctx context.Context, rg Range) error {
			<-release // hold the range past TTL + grace
			return nil
		}}
	done := make(chan error, 1)
	go func() {
		_, err := w.Run(ctx)
		done <- err
	}()

	// Wait out TTL + grace, then the coordinator-side reclaim must succeed
	// even though the claiming process is alive.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ids, err := d.ReclaimExpired(man.Ranges)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled worker's lease never became reclaimable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("stalled worker: %v", err)
	}
	if !d.IsDone("A.0-2") {
		t.Fatal("stalled worker failed to publish its done marker")
	}
}

func rangeID(exp string, start, end int) string {
	return fmt.Sprintf("%s.%d-%d", exp, start, end)
}
