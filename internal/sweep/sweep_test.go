package sweep

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dxbsp/internal/experiments"
	"dxbsp/internal/runner"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		spec string
		want Shard
		ok   bool
	}{
		{"0/4", Shard{0, 4}, true},
		{"3/4", Shard{3, 4}, true},
		{"0/1", Shard{0, 1}, true},
		{" 1 / 2 ", Shard{1, 2}, true},
		{"0/0", Shard{}, false},  // n must be >= 1
		{"4/4", Shard{}, false},  // i >= n
		{"-1/4", Shard{}, false}, // i < 0
		{"2/-3", Shard{}, false},
		{"1", Shard{}, false},
		{"a/b", Shard{}, false},
		{"1/b", Shard{}, false},
		{"", Shard{}, false},
	}
	for _, c := range cases {
		got, err := ParseShard(c.spec)
		if c.ok {
			if err != nil {
				t.Errorf("ParseShard(%q): unexpected error %v", c.spec, err)
			} else if got != c.want {
				t.Errorf("ParseShard(%q) = %v, want %v", c.spec, got, c.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseShard(%q) accepted, got %v", c.spec, got)
			continue
		}
		var ue *UsageError
		if !errors.As(err, &ue) {
			t.Errorf("ParseShard(%q) error is %T, want *UsageError", c.spec, err)
		}
	}
}

// Every point belongs to exactly one shard, for any shard count.
func TestShardPartition(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for index := 0; index < 100; index++ {
			owners := 0
			for i := 0; i < n; i++ {
				if (Shard{Index: i, Count: n}).Owns(index) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("point %d owned by %d shards of %d", index, owners, n)
			}
		}
	}
}

// fakeExperiment enumerates `points` labelled points whose RunPoint is
// never called in these tests.
func fakeExperiment(id string, points int) experiments.Experiment {
	return experiments.Experiment{
		ID: id,
		Points: func(experiments.Config) []experiments.Point {
			pts := make([]experiments.Point, points)
			for i := range pts {
				pts[i] = experiments.Point{Index: i, Label: fmt.Sprintf("p%d", i)}
			}
			return pts
		},
		RunPoint: func(ctx context.Context, cfg experiments.Config, p experiments.Point) (experiments.PointResult, error) {
			return experiments.PointResult{Index: p.Index}, nil
		},
	}
}

// Filtering must preserve each point's global Index and, across all shards,
// cover the grid exactly once.
func TestApplyPreservesGlobalIndex(t *testing.T) {
	cfg := experiments.Config{}
	e := fakeExperiment("FX", 37)
	for n := 1; n <= 5; n++ {
		seen := map[int]string{}
		for i := 0; i < n; i++ {
			for _, p := range Apply(e, Shard{Index: i, Count: n}).Points(cfg) {
				if !(Shard{Index: i, Count: n}).Owns(p.Index) {
					t.Fatalf("shard %d/%d enumerated foreign point %d", i, n, p.Index)
				}
				if prev, dup := seen[p.Index]; dup {
					t.Fatalf("point %d in shard %d/%d and %s", p.Index, i, n, prev)
				}
				seen[p.Index] = fmt.Sprintf("%d/%d", i, n)
				if want := fmt.Sprintf("p%d", p.Index); p.Label != want {
					t.Fatalf("point re-labelled: %q at index %d", p.Label, p.Index)
				}
			}
		}
		if len(seen) != 37 {
			t.Fatalf("%d-way sharding covered %d of 37 points", n, len(seen))
		}
	}
}

func TestFilterRange(t *testing.T) {
	cfg := experiments.Config{}
	pts := ApplyRange(fakeExperiment("FX", 10), 3, 7).Points(cfg)
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if p.Index != 3+i {
			t.Fatalf("point %d has index %d, want %d", i, p.Index, 3+i)
		}
	}
}

// The satellite property: a point's seeded-jitter backoff schedule is a
// pure function of (policy seed, experiment ID, global point index), so it
// is identical whether the point runs single-process or in any shard i/n —
// because filtering preserves the global Index. A regression that
// re-indexes filtered points would change retry timing across shards and
// break run-to-run determinism of the event log.
func TestBackoffScheduleShardInvariant(t *testing.T) {
	cfg := experiments.Config{}
	e := fakeExperiment("F6", 29)
	for _, seed := range []uint64{1, 0xd5bcf95, 1 << 40} {
		policy := runner.RetryPolicy{MaxAttempts: 5, Seed: seed}
		schedule := func(index int) [4]int64 {
			var s [4]int64
			for a := 1; a <= 4; a++ {
				s[a-1] = int64(policy.Backoff(e.ID, index, a))
			}
			return s
		}
		want := map[string][4]int64{}
		for _, p := range e.Points(cfg) {
			want[p.Label] = schedule(p.Index)
		}
		for n := 1; n <= 6; n++ {
			for i := 0; i < n; i++ {
				for _, p := range Apply(e, Shard{Index: i, Count: n}).Points(cfg) {
					if got := schedule(p.Index); got != want[p.Label] {
						t.Fatalf("seed %#x shard %d/%d: point %s backoff %v, single-process %v",
							seed, i, n, p.Label, got, want[p.Label])
					}
				}
			}
		}
	}
}

func TestManifestFingerprintSensitivity(t *testing.T) {
	cfg := experiments.Config{N: 4096, Seed: 7, Quick: true}
	exps := []experiments.Experiment{fakeExperiment("A", 5), fakeExperiment("B", 3)}
	base := Fingerprint(cfg, exps)
	if got := Fingerprint(cfg, exps); got != base {
		t.Fatalf("fingerprint not deterministic: %s vs %s", got, base)
	}
	for name, other := range map[string]string{
		"n":           Fingerprint(experiments.Config{N: 8192, Seed: 7, Quick: true}, exps),
		"seed":        Fingerprint(experiments.Config{N: 4096, Seed: 8, Quick: true}, exps),
		"quick":       Fingerprint(experiments.Config{N: 4096, Seed: 7}, exps),
		"experiments": Fingerprint(cfg, exps[:1]),
		"points":      Fingerprint(cfg, []experiments.Experiment{fakeExperiment("A", 6), exps[1]}),
	} {
		if other == base {
			t.Errorf("fingerprint insensitive to %s", name)
		}
	}
}

func TestBuildManifestRanges(t *testing.T) {
	cfg := experiments.Config{}
	exps := []experiments.Experiment{fakeExperiment("A", 9), fakeExperiment("B", 4)}
	m := BuildManifest(cfg, exps, 4)
	wantIDs := []string{"A.0-4", "A.4-8", "A.8-9", "B.0-4"}
	if len(m.Ranges) != len(wantIDs) {
		t.Fatalf("got %d ranges %v, want %d", len(m.Ranges), m.Ranges, len(wantIDs))
	}
	for i, want := range wantIDs {
		if m.Ranges[i].ID != want {
			t.Errorf("range %d = %s, want %s", i, m.Ranges[i].ID, want)
		}
	}
	if m.Ranges[2].Start != 8 || m.Ranges[2].End != 9 {
		t.Errorf("tail range = [%d,%d), want [8,9)", m.Ranges[2].Start, m.Ranges[2].End)
	}
}

func TestWriteManifestRestartAndMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := experiments.Config{N: 4096, Seed: 7}
	exps := []experiments.Experiment{fakeExperiment("A", 5)}
	m := BuildManifest(cfg, exps, 2)
	if _, err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	// Coordinator restart with the same config reuses the published plan.
	again, err := WriteManifest(dir, BuildManifest(cfg, exps, 2))
	if err != nil {
		t.Fatalf("restart rejected: %v", err)
	}
	if again.Config != m.Config || len(again.Ranges) != len(m.Ranges) {
		t.Fatalf("restart returned a different plan: %+v", again)
	}
	// A differently configured sweep must not share the directory.
	other := BuildManifest(experiments.Config{N: 8192, Seed: 7}, exps, 2)
	_, err = WriteManifest(dir, other)
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("mismatched manifest: got %v, want *UsageError", err)
	}
	// Worker-side guard sees the same mismatch.
	loaded, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.VerifyConfig(experiments.Config{N: 8192, Seed: 7}, exps); !errors.As(err, &ue) {
		t.Fatalf("VerifyConfig: got %v, want *UsageError", err)
	}
	if err := loaded.VerifyConfig(cfg, exps); err != nil {
		t.Fatalf("VerifyConfig rejected matching config: %v", err)
	}
}
