package sweep

import (
	"context"
	"fmt"
	"time"

	"dxbsp/internal/runner"
)

// Worker claims manifest ranges from the shared directory and executes
// them until every range is done. The worker owns no state the sweep
// depends on: everything it produces lands in its own journal file before
// the range's done marker becomes visible, so killing a worker at any
// point loses at most the points of its in-flight range.
type Worker struct {
	// Dir is the shared coordination directory.
	Dir *Dir
	// Manifest is the sweep plan (already verified against this process's
	// configuration).
	Manifest Manifest
	// ID names this worker in leases, events, and its journal file name.
	ID string
	// Exec executes one claimed range: run its points and journal every
	// simulation durably (Journal.Sync) before returning. The CLI wires
	// this to a runner over the range-filtered experiment.
	Exec func(ctx context.Context, rg Range) error
	// Events, when non-nil, receives range_claimed / range_done /
	// worker_done events.
	Events *runner.EventLog
	// Poll is the wait between claim sweeps when nothing was claimable;
	// defaults to TTL/4.
	Poll time.Duration
	// StallHeartbeat is chaos: claim ranges but never renew the lease, so
	// the coordinator must reclaim them out from under a live process.
	StallHeartbeat bool
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return w.Dir.ttl() / 4
}

// Run executes ranges until the sweep completes, returning the number of
// ranges this worker finished. It returns early only on context
// cancellation or an execution error; "another worker holds everything"
// is a wait, not an error.
func (w *Worker) Run(ctx context.Context) (int, error) {
	completed := 0
	for {
		if err := ctx.Err(); err != nil {
			return completed, err
		}
		allDone, claimedAny := true, false
		for _, rg := range w.Manifest.Ranges {
			if err := ctx.Err(); err != nil {
				return completed, err
			}
			if w.Dir.IsDone(rg.ID) {
				continue
			}
			allDone = false
			ok, err := w.Dir.Claim(rg.ID, w.ID)
			if err != nil {
				return completed, err
			}
			if !ok {
				continue
			}
			claimedAny = true
			w.Events.Emit(runner.Event{Type: "range_claimed", Worker: w.ID, Range: rg.ID, Experiment: rg.Experiment})
			if err := w.runRange(ctx, rg); err != nil {
				// Give the range back: the failure may be ours alone.
				_ = w.Dir.Release(rg.ID)
				return completed, fmt.Errorf("sweep: range %s: %w", rg.ID, err)
			}
			completed++
			w.Events.Emit(runner.Event{Type: "range_done", Worker: w.ID, Range: rg.ID, Experiment: rg.Experiment,
				Points: rg.End - rg.Start})
		}
		if allDone {
			w.Events.Emit(runner.Event{Type: "worker_done", Worker: w.ID, Ranges: completed})
			return completed, nil
		}
		if !claimedAny {
			// Everything undone is leased to someone else; wait for either
			// a done marker or a coordinator reclaim.
			select {
			case <-time.After(w.poll()):
			case <-ctx.Done():
				return completed, ctx.Err()
			}
		}
	}
}

// runRange executes one claimed range under a heartbeat that renews the
// lease at TTL/3 intervals, then publishes the done marker and releases
// the lease. Exec must have made the range's records durable before it
// returns; the marker is what tells the rest of the fleet "these points
// need no re-execution".
func (w *Worker) runRange(ctx context.Context, rg Range) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	if !w.StallHeartbeat {
		go func() {
			tick := time.NewTicker(w.Dir.ttl() / 3)
			defer tick.Stop()
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-tick.C:
					if lost, err := w.Dir.Renew(rg.ID, w.ID); err != nil || lost {
						// Lost the lease (reclaimed and re-claimed): keep
						// executing — duplicate results are identical — but
						// stop touching the other worker's lease.
						return
					}
				}
			}
		}()
	}
	if err := w.Exec(ctx, rg); err != nil {
		return err
	}
	stopHB()
	if err := w.Dir.MarkDone(rg.ID, w.ID); err != nil {
		return err
	}
	return w.Dir.Release(rg.ID)
}
