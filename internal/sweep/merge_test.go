package sweep

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dxbsp/internal/runner"
	"dxbsp/internal/sim"
)

func writeJournal(t *testing.T, dir, name string, hdr *runner.JournalHeader, entries map[string]sim.Result) {
	t.Helper()
	if err := runner.WriteJournalFile(filepath.Join(dir, name), hdr, entries); err != nil {
		t.Fatal(err)
	}
}

func res(cycles float64) sim.Result { return sim.Result{Cycles: cycles} }

func TestMergeCombinesShards(t *testing.T) {
	dir := t.TempDir()
	hdr := func(i int) *runner.JournalHeader {
		return &runner.JournalHeader{Shard: i, Of: 2, Config: "cafe"}
	}
	writeJournal(t, dir, runner.ShardJournalName(0, 2), hdr(0),
		map[string]sim.Result{"k0": res(1), "k2": res(3), "shared": res(9)})
	writeJournal(t, dir, runner.ShardJournalName(1, 2), hdr(1),
		map[string]sim.Result{"k1": res(2), "shared": res(9)})

	st, err := Merge(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 2 || st.Records != 4 || st.Duplicates != 1 || st.Skipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	entries, _, skipped, err := runner.ReadJournalFile(filepath.Join(dir, "journal.jsonl"), nil)
	if err != nil || skipped != 0 {
		t.Fatalf("read merged: skipped=%d err=%v", skipped, err)
	}
	if len(entries) != 4 || entries["shared"] != res(9) {
		t.Fatalf("merged entries: %v", entries)
	}
}

// Merging is deterministic: the same inputs produce byte-identical output,
// and re-merging (which now includes the canonical journal itself) is a
// fixpoint.
func TestMergeDeterministicAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, runner.ShardJournalName(0, 2), nil, map[string]sim.Result{"b": res(2), "a": res(1)})
	writeJournal(t, dir, runner.ShardJournalName(1, 2), nil, map[string]sim.Result{"c": res(3)})
	if _, err := Merge(dir, nil); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(dir, nil); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("re-merge changed the canonical journal")
	}
}

func TestMergeRejectsConflictingResults(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, runner.ShardJournalName(0, 2), nil, map[string]sim.Result{"k": res(1)})
	writeJournal(t, dir, runner.ShardJournalName(1, 2), nil, map[string]sim.Result{"k": res(2)})
	_, err := Merge(dir, nil)
	if err == nil || !strings.Contains(err.Error(), "determinism violation") {
		t.Fatalf("conflicting results merged: %v", err)
	}
}

func TestMergeRejectsForeignSweep(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, runner.ShardJournalName(0, 2),
		&runner.JournalHeader{Config: "cafe"}, map[string]sim.Result{"a": res(1)})
	writeJournal(t, dir, runner.ShardJournalName(1, 2),
		&runner.JournalHeader{Config: "beef"}, map[string]sim.Result{"b": res(2)})
	_, err := Merge(dir, nil)
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("foreign journal merged: %v", err)
	}
}

func TestMergeEmptyDirIsUsageError(t *testing.T) {
	_, err := Merge(t.TempDir(), nil)
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("empty merge: got %v, want *UsageError", err)
	}
}

// Torn records in an input journal are skipped (and counted), never
// propagated into the canonical journal.
func TestMergeSkipsTornRecords(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, runner.ShardJournalName(0, 1), nil, map[string]sim.Result{"a": res(1), "b": res(2)})
	path := filepath.Join(dir, runner.ShardJournalName(0, 1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-15], 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings strings.Builder
	st, err := Merge(dir, &warnings)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 || st.Skipped != 1 {
		t.Fatalf("stats = %+v, want 1 record 1 skipped", st)
	}
	if !strings.Contains(warnings.String(), "skipped") {
		t.Fatalf("no warning for torn record:\n%s", warnings.String())
	}
}
