package sweep

import (
	"context"
	"fmt"
	"io"
	"time"

	"dxbsp/internal/runner"
)

// Coordinator supervises a sweep: it publishes the manifest, watches the
// shared directory's done markers, and reclaims leases whose heartbeat
// expired so ranges held by dead (or stalled) workers get reassigned. The
// coordinator executes nothing itself; it is restartable at any time
// because all progress lives in the directory.
type Coordinator struct {
	// Dir is the shared coordination directory.
	Dir *Dir
	// Manifest is the published plan.
	Manifest Manifest
	// Events, when non-nil, receives lease_reclaimed and sweep_done events.
	Events *runner.EventLog
	// Progress, when non-nil, gets a one-line update whenever the done
	// count changes.
	Progress io.Writer
	// Poll is the supervision interval; defaults to TTL/4.
	Poll time.Duration
}

// CoordStats summarizes a completed supervision run.
type CoordStats struct {
	// Ranges is the manifest's range count.
	Ranges int
	// Reclaimed counts leases reclaimed from expired workers.
	Reclaimed int
}

func (c *Coordinator) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return c.Dir.ttl() / 4
}

// Run supervises until every range is done or ctx is cancelled.
func (c *Coordinator) Run(ctx context.Context) (CoordStats, error) {
	st := CoordStats{Ranges: len(c.Manifest.Ranges)}
	lastDone := -1
	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		done := c.Dir.CountDone(c.Manifest.Ranges)
		if done != lastDone {
			lastDone = done
			if c.Progress != nil {
				fmt.Fprintf(c.Progress, "sweep: %d/%d range(s) done, %d lease(s) reclaimed\n",
					done, st.Ranges, st.Reclaimed)
			}
		}
		if done == st.Ranges {
			c.Events.Emit(runner.Event{Type: "sweep_done", Ranges: st.Ranges, Reclaimed: st.Reclaimed})
			return st, nil
		}
		ids, err := c.Dir.ReclaimExpired(c.Manifest.Ranges)
		for _, id := range ids {
			st.Reclaimed++
			c.Events.Emit(runner.Event{Type: "lease_reclaimed", Range: id})
			if c.Progress != nil {
				fmt.Fprintf(c.Progress, "sweep: reclaimed expired lease on %s\n", id)
			}
		}
		if err != nil {
			return st, err
		}
		select {
		case <-time.After(c.poll()):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}
