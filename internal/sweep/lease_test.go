package sweep

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable clock for the lease state machine tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testDir(t *testing.T) (*Dir, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	return &Dir{Path: t.TempDir(), TTL: 10 * time.Second, Now: clk.Now}, clk
}

func TestLeaseClaimIsExclusive(t *testing.T) {
	d, _ := testDir(t)
	ok, err := d.Claim("F6.0-4", "alpha")
	if err != nil || !ok {
		t.Fatalf("first claim: ok=%v err=%v", ok, err)
	}
	ok, err = d.Claim("F6.0-4", "beta")
	if err != nil {
		t.Fatalf("second claim errored: %v", err)
	}
	if ok {
		t.Fatal("two workers claimed the same range")
	}
	l, held, err := d.Holder("F6.0-4")
	if err != nil || !held {
		t.Fatalf("holder: held=%v err=%v", held, err)
	}
	if l.Worker != "alpha" {
		t.Fatalf("holder = %q, want alpha", l.Worker)
	}
}

func TestLeaseRenewExtendsDeadline(t *testing.T) {
	d, clk := testDir(t)
	if ok, _ := d.Claim("r", "alpha"); !ok {
		t.Fatal("claim failed")
	}
	before, _, _ := d.Holder("r")
	clk.Advance(7 * time.Second)
	lost, err := d.Renew("r", "alpha")
	if err != nil || lost {
		t.Fatalf("renew: lost=%v err=%v", lost, err)
	}
	after, _, _ := d.Holder("r")
	if after.Deadline <= before.Deadline {
		t.Fatalf("renew did not extend deadline: %d -> %d", before.Deadline, after.Deadline)
	}
}

// A worker whose lease was reclaimed and re-claimed by someone else must
// learn it lost and must not clobber the new holder's lease.
func TestLeaseRenewDetectsLoss(t *testing.T) {
	d, clk := testDir(t)
	if ok, _ := d.Claim("r", "alpha"); !ok {
		t.Fatal("claim failed")
	}
	clk.Advance(16 * time.Second) // past TTL + default grace (TTL/2)
	reclaimed, err := d.ReclaimExpired([]Range{{ID: "r"}})
	if err != nil || len(reclaimed) != 1 {
		t.Fatalf("reclaim: %v %v", reclaimed, err)
	}
	if ok, _ := d.Claim("r", "beta"); !ok {
		t.Fatal("re-claim after reclaim failed")
	}
	lost, err := d.Renew("r", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !lost {
		t.Fatal("alpha renewed a lease beta holds")
	}
	l, _, _ := d.Holder("r")
	if l.Worker != "beta" {
		t.Fatalf("holder = %q after alpha's late renew, want beta", l.Worker)
	}
}

// Renew on a reclaimed-but-unclaimed range re-asserts the lease: the
// original worker is still alive and executing, so it keeps ownership.
func TestLeaseRenewReasserts(t *testing.T) {
	d, _ := testDir(t)
	if ok, _ := d.Claim("r", "alpha"); !ok {
		t.Fatal("claim failed")
	}
	if err := d.Release("r"); err != nil {
		t.Fatal(err)
	}
	lost, err := d.Renew("r", "alpha")
	if err != nil || lost {
		t.Fatalf("re-assert: lost=%v err=%v", lost, err)
	}
	l, held, _ := d.Holder("r")
	if !held || l.Worker != "alpha" {
		t.Fatalf("lease not re-asserted: held=%v worker=%q", held, l.Worker)
	}
}

func TestReclaimRespectsGrace(t *testing.T) {
	d, clk := testDir(t)
	if ok, _ := d.Claim("r", "alpha"); !ok {
		t.Fatal("claim failed")
	}
	// Past the deadline but inside the grace window: not reclaimable.
	clk.Advance(12 * time.Second)
	ids, err := d.ReclaimExpired([]Range{{ID: "r"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("lease reclaimed inside grace window: %v", ids)
	}
	clk.Advance(4 * time.Second) // now past TTL + TTL/2
	ids, err = d.ReclaimExpired([]Range{{ID: "r"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "r" {
		t.Fatalf("expired lease not reclaimed: %v", ids)
	}
	if _, held, _ := d.Holder("r"); held {
		t.Fatal("lease file survived reclaim")
	}
}

func TestReclaimSkipsDoneAndLive(t *testing.T) {
	d, clk := testDir(t)
	ranges := []Range{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	if ok, _ := d.Claim("a", "w1"); !ok {
		t.Fatal("claim a")
	}
	if ok, _ := d.Claim("b", "w2"); !ok {
		t.Fatal("claim b")
	}
	if err := d.MarkDone("a", "w1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute)
	// b is expired; a is done (never reclaimed even though its lease file
	// still exists); c was never claimed.
	ids, err := d.ReclaimExpired(ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "b" {
		t.Fatalf("reclaimed %v, want [b]", ids)
	}
	if d.CountDone(ranges) != 1 {
		t.Fatalf("CountDone = %d, want 1", d.CountDone(ranges))
	}
}

// A lease file with unreadable content (should be impossible — writes are
// atomic) is reclaimed only by file age, the conservative fallback.
func TestReclaimUnreadableLeaseFallsBackToMtime(t *testing.T) {
	d, clk := testDir(t)
	path := filepath.Join(d.Path, "lease.r.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	ids, err := d.ReclaimExpired([]Range{{ID: "r"}})
	if err != nil || len(ids) != 0 {
		t.Fatalf("fresh unreadable lease reclaimed: %v %v", ids, err)
	}
	// Age the file well past TTL+grace; the fake clock does not move the
	// filesystem's mtime, so backdate it.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour)
	// mtime comparison uses d.now() against real mtimes; with the fake
	// clock at unix 1e6 the hour-old real mtime is "in the future", so use
	// a real clock for this half of the assertion.
	d.Now = nil
	ids, err = d.ReclaimExpired([]Range{{ID: "r"}})
	if err != nil || len(ids) != 1 {
		t.Fatalf("stale unreadable lease not reclaimed: %v %v", ids, err)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	d, _ := testDir(t)
	if err := d.Release("never-claimed"); err != nil {
		t.Fatalf("release of missing lease: %v", err)
	}
}

func TestDoneMarkerIdempotent(t *testing.T) {
	d, _ := testDir(t)
	if err := d.MarkDone("r", "alpha"); err != nil {
		t.Fatal(err)
	}
	// A second worker that executed the same reclaimed range marks it done
	// again; both executions produced identical records, so this is fine.
	if err := d.MarkDone("r", "beta"); err != nil {
		t.Fatal(err)
	}
	if !d.IsDone("r") {
		t.Fatal("done marker missing")
	}
}

// Concurrent claims on the same range: exactly one winner. Run with -race
// in CI.
func TestLeaseClaimRace(t *testing.T) {
	d, _ := testDir(t)
	const workers = 16
	wins := make(chan string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		id := string(rune('a' + i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := d.Claim("r", id)
			if err != nil {
				t.Errorf("claim %s: %v", id, err)
				return
			}
			if ok {
				wins <- id
			}
		}()
	}
	wg.Wait()
	close(wins)
	var winners []string
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("%d winners: %v", len(winners), winners)
	}
	l, held, err := d.Holder("r")
	if err != nil || !held || l.Worker != winners[0] {
		t.Fatalf("holder %q, winner %q (held=%v err=%v)", l.Worker, winners[0], held, err)
	}
}
