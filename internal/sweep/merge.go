package sweep

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dxbsp/internal/runner"
	"dxbsp/internal/sim"
)

// MergeStats summarizes one merge.
type MergeStats struct {
	// Files is the number of journal files read (shard, worker, and any
	// previously merged canonical journal).
	Files int
	// Records is the merged journal's entry count.
	Records int
	// Duplicates counts key collisions across inputs whose results agreed
	// (re-executed reclaimed ranges, shared baselines across shards).
	Duplicates int
	// Skipped counts corrupt or torn records dropped across all inputs.
	Skipped int
}

// Merge combines every journal in dir — static shard journals, dynamic
// worker journals, and an existing canonical journal.jsonl from a prior
// merge — into the canonical journal.jsonl, written deterministically
// (records sorted by key, temp + rename), so the same inputs always
// produce byte-identical output and `-resume` replays the whole sweep
// with zero re-executed simulations.
//
// Safety over silence: journals whose headers carry different sweep
// fingerprints refuse to merge, and a key that maps to two different
// results (impossible unless determinism broke or directories were mixed)
// is an error naming the key, never a coin flip.
func Merge(dir string, warn io.Writer) (MergeStats, error) {
	if warn == nil {
		warn = io.Discard
	}
	var st MergeStats
	names, err := filepath.Glob(filepath.Join(dir, "journal.*.jsonl"))
	if err != nil {
		return st, fmt.Errorf("sweep: %w", err)
	}
	canonical := filepath.Join(dir, "journal.jsonl")
	if _, err := os.Stat(canonical); err == nil {
		names = append(names, canonical)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return st, usageErrorf("sweep: no journals to merge in %s", dir)
	}

	merged := map[string]sim.Result{}
	from := map[string]string{} // key -> file that first contributed it
	config := ""
	for _, name := range names {
		entries, hdr, skipped, err := runner.ReadJournalFile(name, warn)
		if err != nil {
			return st, err
		}
		st.Files++
		st.Skipped += skipped
		if skipped > 0 {
			fmt.Fprintf(warn, "sweep: %s: %d corrupt or torn record(s) skipped\n", filepath.Base(name), skipped)
		}
		if hdr != nil && hdr.Config != "" {
			if config == "" {
				config = hdr.Config
			} else if config != hdr.Config {
				return st, usageErrorf("sweep: %s belongs to a different sweep (config %s, expected %s); refusing to merge",
					filepath.Base(name), hdr.Config, config)
			}
		}
		for key, res := range entries {
			prev, seen := merged[key]
			if !seen {
				merged[key] = res
				from[key] = filepath.Base(name)
				continue
			}
			if prev != res {
				return st, fmt.Errorf("sweep: key %q has conflicting results in %s and %s — determinism violation, refusing to merge",
					key, from[key], filepath.Base(name))
			}
			st.Duplicates++
		}
	}
	st.Records = len(merged)
	if err := runner.WriteJournalFile(canonical, nil, merged); err != nil {
		return st, err
	}
	return st, nil
}
