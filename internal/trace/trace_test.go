package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReadBasic(t *testing.T) {
	in := "# header\n1\n2\n\n0x10\n0XFF\n  7  \n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 16, 255, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"abc\n", "1\n-2\n", "0xZZ\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader("# only comments\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := func(addrs []uint64) bool {
		var b strings.Builder
		if err := Write(&b, "round\ntrip", addrs); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if len(got) != len(addrs) {
			return false
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWriteCommentEscaping(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, "line1\nline2", []uint64{5}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# line1\n# line2\n5\n") {
		t.Errorf("output = %q", out)
	}
}
