// Package trace reads and writes memory-address traces, the interchange
// format of the dxtrace tool: one address per line, decimal or 0x-hex,
// with '#' comments and blank lines ignored. It also captures traces from
// running vector-machine programs so that real algorithm patterns can be
// replayed through the simulator, the way the paper replays patterns
// extracted from the connected-components code.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Read parses one address per line, decimal or 0x-prefixed hex. Blank
// lines and lines starting with '#' are skipped.
func Read(r io.Reader) ([]uint64, error) {
	var addrs []uint64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		base := 10
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			s, base = s[2:], 16
		}
		v, err := strconv.ParseUint(s, base, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		addrs = append(addrs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	return addrs, nil
}

// Write emits addrs one per line in decimal, with an optional comment
// header.
func Write(w io.Writer, comment string, addrs []uint64) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, ln := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "# %s\n", ln); err != nil {
				return err
			}
		}
	}
	for _, a := range addrs {
		if _, err := fmt.Fprintln(bw, a); err != nil {
			return err
		}
	}
	return bw.Flush()
}
