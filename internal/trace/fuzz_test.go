package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the trace parser on arbitrary input: it must never
// panic, and anything it accepts must round-trip through Write.
func FuzzRead(f *testing.F) {
	f.Add("1\n2\n3\n")
	f.Add("# comment\n0x10\n")
	f.Add("")
	f.Add("not a number")
	f.Add("0x")
	f.Add("18446744073709551615\n")
	f.Add("-1\n")
	f.Fuzz(func(t *testing.T, in string) {
		addrs, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var b bytes.Buffer
		if err := Write(&b, "", addrs); err != nil {
			t.Fatalf("Write failed on accepted input: %v", err)
		}
		back, err := Read(&b)
		if err != nil {
			t.Fatalf("round-trip Read failed: %v", err)
		}
		if len(back) != len(addrs) {
			t.Fatalf("round-trip length %d != %d", len(back), len(addrs))
		}
		for i := range addrs {
			if back[i] != addrs[i] {
				t.Fatalf("round-trip mismatch at %d", i)
			}
		}
	})
}
