package surrogate

import (
	"errors"
	"math"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/sim"
)

func testMachine(p, x int) core.Machine {
	return core.Machine{Name: "t", Procs: p, Banks: p * x, D: 6, G: 1, L: 16}
}

func TestEligibleTypedErrors(t *testing.T) {
	base := sim.Config{Machine: testMachine(4, 4)}
	cases := []struct {
		name    string
		mutate  func(*sim.Config)
		feature string // "" means eligible
	}{
		{"fifo", func(c *sim.Config) {}, ""},
		{"fifo windowed", func(c *sim.Config) { c.Window = 4 }, ""},
		{"regulated", func(c *sim.Config) {
			c.Bank = sim.BankConfig{Discipline: sim.Regulated, RegWindow: 12, RegBudget: 2}
		}, ""},
		{"dram", func(c *sim.Config) {
			c.Bank = sim.BankConfig{Discipline: sim.DRAM}
		}, "Bank.Discipline"},
		{"gpu", func(c *sim.Config) {
			c.Bank = sim.BankConfig{Discipline: sim.GPUShared}
		}, "Bank.Discipline"},
		{"fifo cache lines", func(c *sim.Config) {
			c.Bank = sim.BankConfig{Discipline: sim.FIFO, CacheLines: 8}
		}, "Bank.CacheLines"},
		{"combining", func(c *sim.Config) { c.Combining = true }, "Combining"},
		{"sections", func(c *sim.Config) {
			c.UseSections = true
			c.Machine.Sections = 4
			c.Machine.SectionGap = 1
		}, "UseSections"},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := Eligible(cfg)
		if tc.feature == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		var ue *UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("%s: want *UnsupportedError, got %v", tc.name, err)
			continue
		}
		if ue.Feature != tc.feature {
			t.Errorf("%s: feature %q, want %q", tc.name, ue.Feature, tc.feature)
		}
	}
	// Invalid configs surface the simulator's own validation errors, not
	// an eligibility error.
	bad := sim.Config{Machine: core.Machine{Procs: 0, Banks: 4, D: 1, G: 1}}
	if err := Eligible(bad); err == nil {
		t.Error("invalid machine accepted")
	} else {
		var ue *UnsupportedError
		if errors.As(err, &ue) {
			t.Errorf("invalid machine returned UnsupportedError %v; want validation error", err)
		}
	}
}

// TestPredictSerializedBank pins the drain-dominated corner exactly:
// every request to one address means the single hot bank serializes all
// n services, so T = d·n + 2·NetDelay.
func TestPredictSerializedBank(t *testing.T) {
	m := testMachine(4, 4)
	n := 64
	pt := core.NewPattern(make([]uint64, n), m.Procs) // all address 0
	cfg := sim.Config{Machine: m}
	res, err := Predict(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := m.D*float64(n) + m.L // NetDelay defaults to L/2 each way
	if math.Abs(res.Cycles-want) > 1e-9 {
		t.Errorf("all-same cycles %v, want %v", res.Cycles, want)
	}
	if !res.Analytic {
		t.Error("surrogate result not tagged Analytic")
	}
	if res.MaxBankServed != n {
		t.Errorf("MaxBankServed = %d, want %d", res.MaxBankServed, n)
	}
}

// TestPredictConflictFree pins the injection-dominated corner: n
// requests spread one-per-bank leave the last processor at g·(h-1) and
// see an idle bank, so T = g·(h-1) + d + 2·NetDelay.
func TestPredictConflictFree(t *testing.T) {
	m := core.Machine{Name: "t", Procs: 4, Banks: 64, D: 6, G: 3, L: 16}
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = uint64(i) // one request per bank under interleaving
	}
	pt := core.NewPattern(addrs, m.Procs)
	cfg := sim.Config{Machine: m}
	res, err := Predict(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	h := float64(64 / m.Procs)
	want := m.G*(h-1) + m.D + m.L
	if math.Abs(res.Cycles-want) > 1e-9 {
		t.Errorf("conflict-free cycles %v, want %v", res.Cycles, want)
	}
}

// TestPredictWindowLatencyBound pins the closed-loop w=1 single-proc
// corner: one slot circulating through a 2·NetDelay wire and an idle
// bank sustains 1/(2·nd + d) requests per cycle, so T ≈ n·(2·nd + d).
func TestPredictWindowLatencyBound(t *testing.T) {
	m := core.Machine{Name: "t", Procs: 1, Banks: 64, D: 4, G: 1, L: 100}
	n := 256
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i % 64)
	}
	pt := core.NewPattern(addrs, 1)
	cfg := sim.Config{Machine: m, Window: 1}
	res, err := Predict(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * (m.L + m.D) // zDelay = 2·(L/2) = L per round trip
	if math.Abs(res.Cycles-want)/want > 1e-9 {
		t.Errorf("w=1 cycles %v, want %v", res.Cycles, want)
	}
}

// TestPredictStatsConsistent: the moments-only path with the true
// (n, maxLoc) must land near the profile path for a smooth pattern —
// its k comes from the balls-in-bins expectation instead of the exact
// profile, so allow the analytic-vs-realized max-load gap.
func TestPredictStatsConsistent(t *testing.T) {
	s := SweepSpec{Procs: 8, X: 4, D: 6, G: 1, L: 16, Fam: FamUniform, N: 2048, Seed: 7}
	cfg, pt := s.Build()
	exact, err := Predict(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := PredictStats(cfg, pt.N(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Analytic {
		t.Error("PredictStats result not tagged Analytic")
	}
	rel := math.Abs(stats.Cycles-exact.Cycles) / exact.Cycles
	if rel > 0.30 {
		t.Errorf("stats path %v vs profile path %v: rel gap %.3f", stats.Cycles, exact.Cycles, rel)
	}
}

func TestMaxLoadProperties(t *testing.T) {
	if got := MaxLoad(0, 8, 0); got != (MaxLoadStats{}) {
		t.Errorf("zero requests: %+v", got)
	}
	st := MaxLoad(4096, 64, 1)
	if st.Tail < st.Expected {
		t.Errorf("tail %v < expected %v", st.Tail, st.Expected)
	}
	if st.Expected < 4096.0/64 {
		t.Errorf("expected max %v below mean load", st.Expected)
	}
	// The hottest location floors both moments: no bank map splits
	// co-located requests.
	hot := MaxLoad(4096, 64, 300)
	if hot.Expected < 300 || hot.Tail < 300 {
		t.Errorf("maxLoc floor violated: %+v", hot)
	}
	// Tail bound is monotone in n at fixed banks.
	prev := 0.0
	for _, n := range []int{64, 256, 1024, 4096, 1 << 14} {
		cur := MaxLoad(n, 64, 1).Tail
		if cur < prev {
			t.Errorf("tail not monotone: n=%d gives %v after %v", n, cur, prev)
		}
		prev = cur
	}
}

func TestRegimeClassification(t *testing.T) {
	cases := []struct {
		cfg  sim.Config
		want string
	}{
		{sim.Config{Machine: testMachine(4, 16)}, "fifo/open/matched"},
		{sim.Config{Machine: testMachine(4, 2)}, "fifo/open/starved"},
		{sim.Config{Machine: testMachine(4, 16), Window: 8}, "fifo/windowed/matched"},
		{sim.Config{Machine: testMachine(4, 2), Window: 8,
			Bank: sim.BankConfig{Discipline: sim.Regulated, RegWindow: 12, RegBudget: 2}},
			"regulated/windowed/starved"},
	}
	for _, tc := range cases {
		if got := Regime(tc.cfg); got != tc.want {
			t.Errorf("Regime(%+v) = %q, want %q", tc.cfg.Machine, got, tc.want)
		}
	}
}

// TestCrossoverContinuity sweeps d finely through the g·h = d·k
// crossover and requires the prediction to move by at most the model's
// worst-case slope (k per unit d) — no jump discontinuity where the
// dominating term flips.
func TestCrossoverContinuity(t *testing.T) {
	s := SweepSpec{Procs: 8, X: 4, D: 1, G: 2, L: 16, Fam: FamZipf, N: 2048, Seed: 11}
	cfg, pt := s.Build()
	p := core.ComputeProfileCompact(pt, cfg.Normalize().BankMap)
	const step = 0.01
	prev := math.NaN()
	for d := 0.2; d < 6; d += step {
		cfg.Machine.D = d
		res, err := Predict(cfg, pt)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(prev) {
			if jump := math.Abs(res.Cycles - prev); jump > step*float64(p.MaxK+1)+1e-6 {
				t.Fatalf("discontinuity at d=%.2f: %v -> %v", d, prev, res.Cycles)
			}
		}
		prev = res.Cycles
	}
}

func TestPinnedEnvelopeLoads(t *testing.T) {
	e := Pinned()
	if e.Points == 0 || len(e.Regimes) == 0 {
		t.Fatalf("embedded envelope empty: %+v", e)
	}
	if b := MaxRelErr(sim.Config{Machine: testMachine(4, 16)}); b <= 0 || b > 1 {
		t.Errorf("pinned bound for open/matched out of range: %v", b)
	}
	// Unknown regimes report the worst pinned bound.
	dram := sim.Config{Machine: testMachine(4, 16),
		Bank: sim.BankConfig{Discipline: sim.DRAM}}
	worst := 0.0
	for _, st := range e.Regimes {
		worst = math.Max(worst, st.MaxRelErr)
	}
	if got := MaxRelErr(dram); got != worst {
		t.Errorf("unswept regime bound %v, want worst %v", got, worst)
	}
}
