// Package surrogate predicts simulation results in closed form.
//
// The paper's thesis is that T = max(g·max h_i, d·max k_j) + L plus a
// queueing-delay correction predicts a bank-contended machine without
// event simulation. This package is that claim made executable: given
// the same Config and Pattern the event simulator takes, Predict returns
// a Result whose Cycles comes from the (d,x)-BSP law, an M/D/1
// Pollaczek–Khinchine waiting term, and a windowed/pipelined round-trip
// model — in microseconds instead of the simulator's milliseconds to
// seconds, which is what makes p=4096 / x=64 sweeps interactive.
//
// The simulator is the oracle: the surrogate's relative error against it
// is measured over a seeded config sweep, pinned in testdata (see
// envelope.go), and enforced by tests, so routing a point through the
// surrogate trades a *known, bounded* amount of accuracy for speed.
//
// Eligibility is explicit. FIFO and Regulated banks, any issue window,
// any bank map, with a full crossbar and no combining, are supported;
// everything else (DRAM row-buffer state, GPU warp replays, section
// bottlenecks, combining) returns a typed *UnsupportedError so callers
// can fall back to simulation rather than silently mispredict.
package surrogate

import (
	"fmt"
	"math"

	"dxbsp/internal/core"
	"dxbsp/internal/sim"
)

// UnsupportedError reports a configuration the closed form cannot
// predict. Callers distinguish it from misconfiguration with errors.As
// and route the point to the event simulator instead.
type UnsupportedError struct {
	Feature string // the Config knob that is out of scope
	Reason  string // why the closed form has no term for it
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("surrogate: unsupported %s: %s", e.Feature, e.Reason)
}

// Eligible reports whether cfg is predictable in closed form. It
// returns nil, or a *UnsupportedError naming the first out-of-scope
// feature. Invalid configs (Validate errors) are also rejected, with
// the sim package's own typed error.
func Eligible(cfg sim.Config) error {
	c := cfg.Normalize()
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if err := c.Validate(); err != nil {
		return err
	}
	switch c.Bank.Discipline {
	case sim.FIFO:
		if c.Bank.CacheLines > 0 {
			return &UnsupportedError{
				Feature: "Bank.CacheLines",
				Reason:  "row-buffer hit rates depend on access order, which the profile moments do not carry",
			}
		}
	case sim.Regulated:
		// Modeled: regulation caps each bank's sustained service rate at
		// RegBudget/RegWindow, an effective service time in the same law.
	case sim.DRAM:
		return &UnsupportedError{
			Feature: "Bank.Discipline",
			Reason:  "DRAM row hits and bank-group bus slots are stateful; use the event simulator",
		}
	case sim.GPUShared:
		return &UnsupportedError{
			Feature: "Bank.Discipline",
			Reason:  "warp-synchronous replay depends on intra-warp conflict layout; use the event simulator",
		}
	default:
		return &UnsupportedError{
			Feature: "Bank.Discipline",
			Reason:  fmt.Sprintf("unknown discipline %v", c.Bank.Discipline),
		}
	}
	if c.Combining {
		return &UnsupportedError{
			Feature: "Combining",
			Reason:  "combined service counts depend on queue contents at service time",
		}
	}
	if c.UseSections && c.Machine.Sections > 1 {
		return &UnsupportedError{
			Feature: "UseSections",
			Reason:  "section bottlenecks serialize the network in pattern-order; use the event simulator",
		}
	}
	return nil
}

// effectiveBankDelay returns the per-service cycle cost the discipline
// sustains at a saturated bank: D for FIFO, and for Regulated the
// larger of D and the regulation interval RegWindow/RegBudget (the
// sustained inter-service time once the budget binds).
func effectiveBankDelay(c sim.Config) float64 {
	d := c.Machine.D
	if c.Bank.Discipline == sim.Regulated {
		if reg := c.Bank.RegWindow / float64(c.Bank.RegBudget); reg > d {
			return reg
		}
	}
	return d
}

// Predict returns the closed-form result for simulating pt under cfg,
// using the pattern's exact contention profile (max h, max k) in the
// cost law. The returned Result has Analytic set, Cycles from the
// model, and the profile-derivable counters (Requests, BankServices,
// MaxBankServed) filled; queue high-water marks and discipline counters
// are zero. Ineligible configs return the same typed errors as
// Eligible.
func Predict(cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	if err := Eligible(cfg); err != nil {
		return sim.Result{}, err
	}
	c := cfg.Normalize()
	p := core.ComputeProfileCompact(pt, c.BankMap)
	cycles := predictCycles(c, p.N, p.MaxH, p.MaxK)
	return sim.Result{
		Cycles:        cycles,
		Requests:      p.N,
		BankServices:  p.N,
		MaxBankServed: p.MaxK,
		BankBusy:      float64(p.N) * c.Machine.D,
		Analytic:      true,
	}, nil
}

// PredictStats is the moments-only path: no pattern in hand, only its
// summary statistics — n total requests and the maximum per-location
// contention maxLoc. The max-bank-load term comes from the analytic
// balls-in-bins model (MaxLoad) instead of an exact profile, which is
// what makes grids too large to even *generate* patterns for
// predictable. It assumes requests are spread evenly over processors
// and locations are hashed uniformly over banks.
func PredictStats(cfg sim.Config, n, maxLoc int) (sim.Result, error) {
	if err := Eligible(cfg); err != nil {
		return sim.Result{}, err
	}
	c := cfg.Normalize()
	m := c.Machine
	h := ceilDiv(n, m.Procs)
	k := MaxLoad(n, m.Banks, maxLoc).Expected
	kInt := int(math.Ceil(k))
	cycles := predictCycles(c, n, h, kInt)
	return sim.Result{
		Cycles:        cycles,
		Requests:      n,
		BankServices:  n,
		MaxBankServed: kInt,
		BankBusy:      float64(n) * m.D,
		Analytic:      true,
	}, nil
}

// predictCycles is the closed form shared by both paths. Mirroring the
// event engine's timing: processors inject at 0, g, 2g, ...; a request
// transits NetDelay each way and occupies its bank for the effective
// service time; Cycles is the last response arrival (the simulator does
// not add Machine.L — callers account for synchronization separately,
// as dxcost does).
//
// Open loop: the last request leaves its processor at g·(h-1), waits
// the M/D/1 Pollaczek–Khinchine time at its bank, and is serviced; a
// saturated or hot bank instead drains serially, so the in-queue wait
// is clamped so the injection branch never exceeds the drain bound
// dEff·(k-1), and the whole expression is floored by it:
//
//	T = max(g·(h-1) + Wq + dEff, dEff·(k-1) + dEff) + 2·NetDelay
//
// Windowed (w > 0): the system is a *closed* queueing network — p·w
// request slots circulate through a pure-delay leg (issue gap + wire)
// and b bank queues — so both saturation (queues back up) and
// starvation (too few slots to keep every bank busy) emerge from one
// throughput model. A Schweitzer-style mean-value iteration finds the
// sustained throughput X, capped by the issue rate p/g and the
// aggregate bank rate b/dEff; T = n/X, floored by the hottest bank's
// drain and the contention-free pipeline bound.
func predictCycles(c sim.Config, n, maxH, maxK int) float64 {
	if n <= 0 || maxH <= 0 || maxK <= 0 {
		return 0
	}
	m := c.Machine
	dEff := effectiveBankDelay(c)
	h := float64(maxH)
	k := float64(maxK)
	drain := dEff * (k - 1) // in-queue serialization bound at the hottest bank

	if c.Window <= 0 {
		wq := md1Wait(m.G, m.Expansion(), dEff)
		// The last injection happens at g·(h-1); by then the hottest bank
		// has been draining since its first arrival, so the remaining wait
		// cannot exceed what is left of its backlog.
		if rem := drain - m.G*(h-1); wq > rem {
			wq = math.Max(rem, 0)
		}
		inj := m.G*(h-1) + wq + dEff
		ser := drain + dEff
		return math.Max(inj, ser) + 2*c.NetDelay
	}

	// Closed loop. mvaBeta scales the waiting a circulating request sees
	// per queued predecessor: 1/2 is the deterministic-service residual,
	// calibrated up against the event simulator because FIFO arrivals are
	// burstier than the product-form assumption. The issue gap g is not a
	// per-slot delay (a processor's slots share its issue pipeline); it
	// enters as the p/g throughput cap below.
	// Regulation enters the closed loop as a bank *throughput* cap, not a
	// per-visit delay: a lightly loaded bank almost never exhausts its
	// budget, so its visit time stays near D; only the sustainable rate
	// (and the hottest bank's drain) feel RegWindow/RegBudget.
	const mvaBeta = 0.75
	cust := math.Min(float64(c.Window)*float64(m.Procs), float64(n))
	zDelay := 2 * c.NetDelay
	banks := float64(m.Banks)
	q := cust / banks
	r := m.D
	x := 0.0
	for i := 0; i < 64; i++ {
		r = m.D * (1 + mvaBeta*q*(cust-1)/cust)
		x = cust / (zDelay + r)
		if lim := float64(m.Procs) / m.G; x > lim {
			x = lim
		}
		if lim := banks / dEff; x > lim {
			x = lim
		}
		next := x * r / banks
		if math.Abs(next-q) < 1e-9*(next+1) {
			q = next
			break
		}
		q = next
	}
	t := float64(n) / x
	if ser := drain + dEff + 2*c.NetDelay; ser > t {
		t = ser
	}
	if pipe := m.G*(h-1) + dEff + 2*c.NetDelay; pipe > t {
		t = pipe
	}
	return t
}

// md1Wait returns the M/D/1 in-queue wait (Pollaczek–Khinchine) for a
// bank fed at per-processor issue gap g with expansion x and service
// time d: utilization ρ = d/(g·x), wait ρ·d/(2·(1-ρ)). Saturated banks
// (ρ >= 1) return +Inf; callers clamp with the drain bound.
func md1Wait(g, x, d float64) float64 {
	if x <= 0 || g <= 0 {
		return math.Inf(1)
	}
	rho := d / (g * x)
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * d / (2 * (1 - rho))
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
