// The analytic max-bank-load model: the max k_j term of the cost law
// without a pattern in hand. core.ExpectedMaxLoad supplies the
// expectation; the Raghavan–Spencer/Chernoff machinery here adds the
// high-probability tail the QRQW emulation theorems use, so callers can
// budget for the load a hashed pattern will *almost surely* not exceed
// rather than only its mean.

package surrogate

import (
	"math"

	"dxbsp/internal/core"
)

// MaxLoadStats summarizes the analytic distribution of the maximum
// bank load for a hashed access pattern.
type MaxLoadStats struct {
	// Expected is E[max_j k_j] under uniform hashing of distinct
	// locations (core.ExpectedMaxLoad), floored by the contention at the
	// hottest single location, which no bank map can split.
	Expected float64
	// Tail is a Raghavan–Spencer/Chernoff-style upper bound: with
	// probability >= 1 - tailEps, no bank's load exceeds Tail.
	Tail float64
}

// tailEps is the exceedance probability the Tail bound is computed at.
// 1e-3 matches the "with high probability" constant the QRQW emulation
// theorems instantiate for polynomial-size problems.
const tailEps = 1e-3

// MaxLoad returns the analytic max-bank-load statistics for n requests
// over b banks with maximum per-location contention maxLoc. maxLoc <= 1
// means all-distinct locations; co-located requests always share a bank,
// so both the expectation and the tail are floored by maxLoc.
func MaxLoad(n, b, maxLoc int) MaxLoadStats {
	if n <= 0 || b <= 0 {
		return MaxLoadStats{}
	}
	if maxLoc < 1 {
		maxLoc = 1
	}
	if maxLoc > n {
		maxLoc = n
	}
	exp := core.ExpectedMaxLoad(n, b)
	if f := float64(maxLoc); f > exp {
		exp = f
	}
	tail := chernoffMaxLoad(n, b)
	if f := float64(maxLoc); f > tail {
		tail = f
	}
	if tail < exp {
		tail = exp
	}
	return MaxLoadStats{Expected: exp, Tail: tail}
}

// chernoffMaxLoad returns the smallest k such that
// b · P(Binomial(n, 1/b) >= k) <= tailEps by the Chernoff bound
// P(X >= k) <= exp(-μ) (eμ/k)^k for k > μ — the bound Raghavan and
// Spencer's integer-rounding argument instantiates, and the one the
// QRQW papers use for the max-contention term. The walk starts just
// above the mean and the bound is monotone decreasing there, so the
// first crossing is the answer.
func chernoffMaxLoad(n, b int) float64 {
	mu := float64(n) / float64(b)
	budget := math.Log(tailEps) - math.Log(float64(b)) // ln(eps/b)
	k := math.Floor(mu) + 1
	for {
		// ln P(X >= k) <= -mu + k + k·ln(mu/k)
		lp := -mu + k + k*math.Log(mu/k)
		if lp <= budget {
			return k
		}
		// Step proportionally for huge means so the walk stays O(polylog).
		step := math.Ceil(k / 1024)
		k += step
	}
}
