// Error-envelope methodology: the surrogate is only as good as its
// measured distance from the oracle. MeasureEnvelope replays a fixed,
// seeded sweep of eligible configurations through both the event
// simulator and the closed form, buckets the relative errors by regime,
// and summarizes each bucket. The result is pinned in
// testdata/envelope.json (embedded below) and published as a table
// under docs/ — tests fail if the measured envelope drifts from the pin
// (accuracy regressions are caught exactly like perf regressions), and
// the router reports the pinned bound for the regimes it routes.

package surrogate

import (
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
)

// Regime buckets a configuration by the model terms that dominate it:
// discipline (fifo, regulated) × loop (open, windowed) × bandwidth
// match (matched when x >= d/g, else starved). Errors cluster by these
// axes — the open/matched bucket is near-exact while windowed/starved
// leans on the mean-value iteration — so the envelope pins each bucket
// separately.
func Regime(cfg sim.Config) string {
	c := cfg.Normalize()
	var disc string
	switch c.Bank.Discipline {
	case sim.Regulated:
		disc = "regulated"
	case sim.DRAM:
		disc = "dram"
	case sim.GPUShared:
		disc = "gpu"
	default:
		disc = "fifo"
	}
	mode := "open"
	if c.Window > 0 {
		mode = "windowed"
	}
	load := "matched"
	if !c.Machine.BandwidthMatched() {
		load = "starved"
	}
	return disc + "/" + mode + "/" + load
}

// RegimeStats summarizes the surrogate's relative error |T̂-T|/T
// against the simulator over one regime's validation points.
type RegimeStats struct {
	Points       int     `json:"points"`
	MedianRelErr float64 `json:"median"`
	P99RelErr    float64 `json:"p99"`
	MaxRelErr    float64 `json:"max"`
}

// Envelope is the full pinned error envelope.
type Envelope struct {
	Points  int                    `json:"points"`
	Regimes map[string]RegimeStats `json:"regimes"`
}

//go:embed testdata/envelope.json
var pinnedJSON []byte

var pinnedOnce = sync.OnceValue(func() Envelope {
	var e Envelope
	if err := json.Unmarshal(pinnedJSON, &e); err != nil {
		panic(fmt.Sprintf("surrogate: corrupt embedded envelope: %v", err))
	}
	return e
})

// Pinned returns the committed error envelope the tests enforce and the
// router reports.
func Pinned() Envelope { return pinnedOnce() }

// MaxRelErr returns the pinned maximum relative error for cfg's regime,
// or the worst bound across all regimes when the regime was not swept.
func MaxRelErr(cfg sim.Config) float64 {
	e := Pinned()
	if st, ok := e.Regimes[Regime(cfg)]; ok {
		return st.MaxRelErr
	}
	worst := 0.0
	for _, st := range e.Regimes {
		if st.MaxRelErr > worst {
			worst = st.MaxRelErr
		}
	}
	return worst
}

// Pattern families the validation sweep and the fuzz corpus draw from.
const (
	FamUniform     = iota // uniform random addresses
	FamZipf               // zipf(1.1) skewed locations
	FamHot                // n/16-way single-location contention
	FamAllSame            // every request to one address
	FamPermutation        // a random permutation (all distinct)
	FamStrided            // stride = banks: worst case for interleaving
	famCount
)

// SweepSpec is one validation point, in scalars so the fuzz corpus can
// carry it. Build turns it into the (Config, Pattern) pair both the
// simulator and the surrogate consume.
type SweepSpec struct {
	Procs, X  int
	D, G, L   float64
	Window    int
	Fam       int
	Regulated bool
	RegWindow float64
	RegBudget int
	Hashed    bool
	N         int
	Seed      uint64
}

// Build materializes the spec. Procs and X must be powers of two (the
// hash-map families require it); N is the request count.
func (s SweepSpec) Build() (sim.Config, core.Pattern) {
	banks := s.Procs * s.X
	m := core.Machine{Name: "env", Procs: s.Procs, Banks: banks, D: s.D, G: s.G, L: s.L}
	g := rng.New(s.Seed)
	var addrs []uint64
	switch s.Fam {
	case FamZipf:
		addrs = patterns.Zipf(s.N, 1<<16, 1.1, g)
	case FamHot:
		addrs = patterns.Contention(s.N, s.N/16, 1<<20)
	case FamAllSame:
		addrs = patterns.AllSame(s.N, 42)
	case FamPermutation:
		addrs = patterns.Permutation(s.N, g)
	case FamStrided:
		addrs = patterns.Strided(s.N, 0, uint64(banks))
	default:
		addrs = patterns.Uniform(s.N, 1<<20, g)
	}
	cfg := sim.Config{Machine: m, Window: s.Window}
	if s.Regulated {
		cfg.Bank = sim.BankConfig{Discipline: sim.Regulated, RegWindow: s.RegWindow, RegBudget: s.RegBudget}
	}
	if s.Hashed {
		cfg.BankMap = hashfn.Map{F: hashfn.NewLinear(uint(bits.TrailingZeros(uint(banks))), g)}
	}
	return cfg, core.NewPattern(addrs, s.Procs)
}

// envelopeSeed derives per-spec RNG seeds; changing it regenerates the
// whole envelope, so it is part of the pinned identity.
const envelopeSeed = 0x5eed9e11

// DefaultSweep returns the validation sweep the envelope is measured
// over: a compact factorial grid over machine shape, window, and
// discipline, with the pattern family rotating through the grid so
// every regime sees several families. ~250 simulations at n=2048 keeps
// the pin test inside the tier-1 budget.
func DefaultSweep() []SweepSpec {
	var specs []SweepSpec
	i := 0
	add := func(s SweepSpec) {
		s.N = 2048
		s.Seed = envelopeSeed + uint64(i)*0x9e3779b97f4a7c15
		i++
		specs = append(specs, s)
	}
	fams := []int{FamUniform, FamZipf, FamHot, FamPermutation}
	for _, p := range []int{2, 8} {
		for _, x := range []int{1, 4, 16} {
			for _, d := range []float64{2, 6, 14} {
				for _, g := range []float64{1, 3} {
					for _, l := range []float64{0, 50} {
						for _, w := range []int{0, 1, 8} {
							add(SweepSpec{Procs: p, X: x, D: d, G: g, L: l,
								Window: w, Fam: fams[i%len(fams)]})
						}
					}
				}
			}
		}
	}
	// Hashed bank maps over uniform and strided (the map's reason to exist).
	for _, p := range []int{2, 8} {
		for _, x := range []int{4, 16} {
			for _, fam := range []int{FamUniform, FamStrided} {
				for _, w := range []int{0, 8} {
					add(SweepSpec{Procs: p, X: x, D: 6, G: 1, L: 8,
						Window: w, Fam: fam, Hashed: true})
				}
			}
		}
	}
	// Regulated banks, tight and loose budgets.
	for _, p := range []int{2, 8} {
		for _, reg := range []struct {
			w float64
			b int
		}{{12, 1}, {6, 4}} {
			for _, w := range []int{0, 8} {
				add(SweepSpec{Procs: p, X: 4, D: 6, G: 1, L: 8, Window: w,
					Fam: FamUniform, Regulated: true, RegWindow: reg.w, RegBudget: reg.b})
			}
		}
	}
	return specs
}

// patternKey groups sweep specs whose Build produces identical address
// patterns: the seeded families draw a fresh stream per spec, while the
// seedless families (hot, all-same, strided) repeat their content
// whenever the shape fields agree — those specs can share one lockstep
// batch. Over-splitting is harmless (a one-lane batch is still exact),
// so the key conservatively includes every field that can reach the
// address generator.
func (s SweepSpec) patternKey() string {
	key := fmt.Sprintf("f%d n%d p%d b%d", s.Fam, s.N, s.Procs, s.Procs*s.X)
	switch s.Fam {
	case FamHot, FamAllSame, FamStrided:
	default:
		key += fmt.Sprintf(" s%x", s.Seed)
	}
	return key
}

// simOracle runs one validation point through the simulator, taking the
// batched lockstep engine when the config is eligible — the same engine
// production sweeps route through — and the scalar engine otherwise.
// The two are byte-identical by the batch engine's contract, so
// everything measured against this oracle is independent of the route.
func simOracle(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	if sim.BatchEligible(cfg) {
		res, err := sim.RunBatch(ctx, []sim.Config{cfg}, pt)
		if err != nil {
			return sim.Result{}, err
		}
		return res[0], nil
	}
	return sim.RunContext(ctx, cfg, pt)
}

// MeasureEnvelope runs the validation sweep through the simulator and
// the surrogate and returns the per-regime error envelope. It is the
// generator for the pinned testdata and the docs table, and the test
// oracle that detects accuracy regressions.
//
// The simulator side goes through the batched lockstep engine: eligible
// lanes group by shared pattern into sim.RunBatch calls, ineligible
// configs take the scalar engine. Every batched lane is byte-identical
// to its solo run, so the measured envelope — and the committed pin —
// is bit-for-bit unchanged by the routing (TestEnvelopePin asserts
// this against the raw testdata bytes).
func MeasureEnvelope(specs []SweepSpec) (Envelope, error) {
	ctx := context.Background()
	cfgs := make([]sim.Config, len(specs))
	pats := make([]core.Pattern, len(specs))
	results := make([]sim.Result, len(specs))
	groups := make(map[string][]int, len(specs))
	order := make([]string, 0, len(specs))
	for i, s := range specs {
		cfgs[i], pats[i] = s.Build()
		if !sim.BatchEligible(cfgs[i]) {
			res, err := sim.RunContext(ctx, cfgs[i], pats[i])
			if err != nil {
				return Envelope{}, fmt.Errorf("sweep %+v: sim: %w", s, err)
			}
			results[i] = res
			continue
		}
		k := s.patternKey()
		if groups[k] == nil {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		idx := groups[k]
		lanes := make([]sim.Config, len(idx))
		for j, i := range idx {
			lanes[j] = cfgs[i]
		}
		batched, err := sim.RunBatch(ctx, lanes, pats[idx[0]])
		if err != nil {
			return Envelope{}, fmt.Errorf("sweep batch %s: sim: %w", k, err)
		}
		for j, i := range idx {
			results[i] = batched[j]
		}
	}

	// Errors accumulate in spec order, exactly as the per-spec scalar
	// loop did, so regime bucket order — and the summarized floats — are
	// unchanged by the batched execution above.
	byRegime := map[string][]float64{}
	for i, s := range specs {
		res := results[i]
		pred, err := Predict(cfgs[i], pats[i])
		if err != nil {
			return Envelope{}, fmt.Errorf("sweep %+v: surrogate: %w", s, err)
		}
		if res.Cycles <= 0 {
			return Envelope{}, fmt.Errorf("sweep %+v: zero-cycle simulation", s)
		}
		rel := math.Abs(pred.Cycles-res.Cycles) / res.Cycles
		r := Regime(cfgs[i])
		byRegime[r] = append(byRegime[r], rel)
	}
	env := Envelope{Regimes: map[string]RegimeStats{}}
	for r, errs := range byRegime {
		sort.Float64s(errs)
		n := len(errs)
		env.Points += n
		env.Regimes[r] = RegimeStats{
			Points:       n,
			MedianRelErr: errs[n/2],
			P99RelErr:    errs[(n-1)*99/100],
			MaxRelErr:    errs[n-1],
		}
	}
	return env, nil
}

// MarshalCanonical renders the envelope as deterministic, indented
// JSON — the format committed under testdata and compared byte-for-byte
// by the pin test (encoding/json sorts map keys).
func (e Envelope) MarshalCanonical() []byte {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		panic(err) // plain data: cannot fail
	}
	return append(b, '\n')
}

// MarkdownTable renders the envelope as the publishable table that
// lives under docs/.
func (e Envelope) MarkdownTable() string {
	var sb strings.Builder
	sb.WriteString("| regime | points | median rel err | p99 rel err | max rel err |\n")
	sb.WriteString("|---|---:|---:|---:|---:|\n")
	keys := make([]string, 0, len(e.Regimes))
	for k := range e.Regimes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := e.Regimes[k]
		fmt.Fprintf(&sb, "| %s | %d | %.1f%% | %.1f%% | %.1f%% |\n",
			k, st.Points, 100*st.MedianRelErr, 100*st.P99RelErr, 100*st.MaxRelErr)
	}
	return sb.String()
}
