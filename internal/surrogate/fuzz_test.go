package surrogate

import (
	"context"
	"math"
	"testing"

	"dxbsp/internal/core"
)

// specFromFuzz maps raw fuzz bytes onto a valid SweepSpec: processor
// and bank counts snap to powers of two (the hashed families require
// it), delays and gaps clamp to the simulator's validated ranges, and
// the pattern family wraps. Every byte pattern yields an eligible
// config, so the fuzzers explore the model domain rather than the
// validation error paths.
func specFromFuzz(pExp, xExp, d, g, l, window, fam uint8, reg bool, seed uint64) SweepSpec {
	s := SweepSpec{
		Procs:  1 << (pExp%4 + 1), // 2..16
		X:      1 << (xExp % 5),   // 1..16
		D:      float64(d%30) + 1, // 1..30
		G:      float64(g%8) + 1,  // 1..8
		L:      float64(l % 64),   // 0..63
		Window: int(window % 9),   // 0..8
		Fam:    int(fam) % famCount,
		N:      1024,
		Seed:   seed,
	}
	if reg {
		s.Regulated = true
		s.RegWindow = float64(d%20) + 4
		s.RegBudget = int(g%3) + 1
	}
	return s
}

// FuzzSurrogateBounds property-tests the closed form on arbitrary
// eligible configs: predictions are positive and finite, respect the
// contention-free lower bound and the hot-bank drain bound, stay under
// a loose full-serialization upper bound, are monotone in d, g, n, and
// contention, and move continuously under small d perturbations.
func FuzzSurrogateBounds(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(6), uint8(1), uint8(16), uint8(0), uint8(0), false, uint64(1))
	f.Add(uint8(2), uint8(0), uint8(14), uint8(3), uint8(50), uint8(1), uint8(1), false, uint64(2))
	f.Add(uint8(0), uint8(4), uint8(2), uint8(1), uint8(0), uint8(8), uint8(2), false, uint64(3))
	f.Add(uint8(3), uint8(2), uint8(6), uint8(1), uint8(8), uint8(4), uint8(4), true, uint64(4))
	f.Add(uint8(1), uint8(1), uint8(20), uint8(2), uint8(32), uint8(2), uint8(5), false, uint64(5))
	f.Fuzz(func(t *testing.T, pExp, xExp, d, g, l, window, fam uint8, reg bool, seed uint64) {
		s := specFromFuzz(pExp, xExp, d, g, l, window, fam, reg, seed)
		cfg, pt := s.Build()
		res, err := Predict(cfg, pt)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		tPred := res.Cycles
		if tPred <= 0 || math.IsInf(tPred, 0) || math.IsNaN(tPred) {
			t.Fatalf("%+v: degenerate prediction %v", s, tPred)
		}

		c := cfg.Normalize()
		p := core.ComputeProfileCompact(pt, c.BankMap)
		m := c.Machine
		dEff := m.D
		if s.Regulated {
			dEff = math.Max(dEff, s.RegWindow/float64(s.RegBudget))
		}
		h, k := float64(p.MaxH), float64(p.MaxK)

		// Contention-free lower bound: even an idle machine needs the last
		// injection, one service, and the round trip (the LogP-style floor).
		if lower := m.G*(h-1) + m.D + 2*c.NetDelay; tPred < lower-1e-9 {
			t.Fatalf("%+v: %v below contention-free bound %v", s, tPred, lower)
		}
		// Hot-bank drain bound: the busiest bank serializes its k services.
		if lower := dEff*(k-1) + m.D; tPred < lower-1e-9 {
			t.Fatalf("%+v: %v below drain bound %v", s, tPred, lower)
		}
		// Loose serialization upper bound: nothing overlaps, every request
		// pays issue + service + round trip in sequence (slack 4x covers
		// the closed-loop model's sub-unit utilization at tiny windows).
		if upper := 4 * float64(p.N) * (m.G + dEff + 2*c.NetDelay); tPred > upper {
			t.Fatalf("%+v: %v above serialization bound %v", s, tPred, upper)
		}

		// Monotone in d: doubling the service time never speeds things up.
		sd := s
		sd.D = s.D * 2
		if sd.Regulated {
			sd.RegWindow = s.RegWindow // regulation interval fixed; only D moves
		}
		cfgD, _ := sd.Build()
		resD, err := Predict(cfgD, pt)
		if err != nil {
			t.Fatal(err)
		}
		if resD.Cycles < tPred*(1-1e-9) {
			t.Fatalf("%+v: doubling d: %v -> %v", s, tPred, resD.Cycles)
		}

		// Monotone in g: a slower issue rate never speeds things up.
		sg := s
		sg.G = s.G * 2
		cfgG, _ := sg.Build()
		resG, err := Predict(cfgG, pt)
		if err != nil {
			t.Fatal(err)
		}
		if resG.Cycles < tPred*(1-1e-9) {
			t.Fatalf("%+v: doubling g: %v -> %v", s, tPred, resG.Cycles)
		}

		// Continuity across the g·h / d·k crossover: a 0.1% bump in d moves
		// the prediction by at most the worst-case slope (k per unit d) plus
		// iteration tolerance — no cliff where the dominating term flips.
		sc := s
		sc.D = s.D * 1.001
		cfgC, _ := sc.Build()
		resC, err := Predict(cfgC, pt)
		if err != nil {
			t.Fatal(err)
		}
		if jump := math.Abs(resC.Cycles - tPred); jump > 0.001*s.D*(k+1)+1e-3*tPred+1e-6 {
			t.Fatalf("%+v: discontinuous in d: %v -> %v (jump %v)", s, tPred, resC.Cycles, jump)
		}

		// Moments path: monotone in n and in per-location contention.
		st1, err := PredictStats(cfg, p.N, 1)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := PredictStats(cfg, 2*p.N, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st2.Cycles < st1.Cycles*(1-1e-9) {
			t.Fatalf("%+v: doubling n: %v -> %v", s, st1.Cycles, st2.Cycles)
		}
		hot, err := PredictStats(cfg, p.N, p.N/4+1)
		if err != nil {
			t.Fatal(err)
		}
		if hot.Cycles < st1.Cycles*(1-1e-9) {
			t.Fatalf("%+v: raising contention: %v -> %v", s, st1.Cycles, hot.Cycles)
		}
	})
}

// FuzzSurrogateVsSim is the differential test: on arbitrary eligible
// configs the surrogate must stay inside the pinned per-regime error
// envelope, with slack for being off the validation sweep's exact grid
// (smaller n, unswept parameter corners). The corpus seeds every
// validation-sweep regime so `go test` exercises the bound even without
// a fuzz run.
func FuzzSurrogateVsSim(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(6), uint8(1), uint8(16), uint8(0), uint8(0), false, uint64(1))
	f.Add(uint8(2), uint8(0), uint8(14), uint8(3), uint8(50), uint8(1), uint8(1), false, uint64(2))
	f.Add(uint8(0), uint8(4), uint8(2), uint8(1), uint8(0), uint8(8), uint8(2), false, uint64(3))
	f.Add(uint8(3), uint8(2), uint8(6), uint8(1), uint8(8), uint8(4), uint8(0), true, uint64(4))
	f.Add(uint8(2), uint8(4), uint8(10), uint8(2), uint8(40), uint8(6), uint8(4), false, uint64(5))
	f.Add(uint8(3), uint8(0), uint8(30), uint8(1), uint8(0), uint8(1), uint8(3), false, uint64(6))
	f.Fuzz(func(t *testing.T, pExp, xExp, d, g, l, window, fam uint8, reg bool, seed uint64) {
		s := specFromFuzz(pExp, xExp, d, g, l, window, fam, reg, seed)
		cfg, pt := s.Build()
		// The oracle routes through the batched lockstep engine where
		// eligible, like the calibration sweep — so the fuzz also
		// differential-tests the batch path over the surrogate's domain.
		res, err := simOracle(context.Background(), cfg, pt)
		if err != nil {
			t.Fatalf("%+v: sim: %v", s, err)
		}
		pred, err := Predict(cfg, pt)
		if err != nil {
			t.Fatalf("%+v: surrogate: %v", s, err)
		}
		if res.Cycles <= 0 {
			t.Fatalf("%+v: zero-cycle simulation", s)
		}
		rel := math.Abs(pred.Cycles-res.Cycles) / res.Cycles
		if bound := MaxRelErr(cfg) + 0.15; rel > bound {
			t.Fatalf("%+v (regime %s): rel err %.3f exceeds pinned envelope + slack %.3f (sim %v, surrogate %v)",
				s, Regime(cfg), rel, bound, res.Cycles, pred.Cycles)
		}
	})
}
