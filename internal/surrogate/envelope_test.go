package surrogate

import (
	"bytes"
	"flag"
	"math"
	"os"
	"strconv"
	"testing"
)

var update = flag.Bool("update", false,
	"regenerate testdata/envelope.json and docs/surrogate_envelope.md from a fresh sweep")

// Acceptance thresholds the surrogate must meet in every swept regime.
// These are the contract the router's auto mode relies on; tightening
// the model may shrink the pin, but it must never cross these.
const (
	acceptMedianRelErr = 0.10
	acceptP99RelErr    = 0.25
)

// TestEnvelopePin re-measures the error envelope against the event
// simulator and requires it to match the committed pin exactly (the
// sweep is fully seeded, so any drift means the model or the simulator
// changed) and to stay inside the acceptance thresholds. Run with
// -update after an intentional model change to re-pin and regenerate
// the docs table.
func TestEnvelopePin(t *testing.T) {
	if testing.Short() {
		t.Skip("envelope sweep runs a few hundred simulations")
	}
	env, err := MeasureEnvelope(DefaultSweep())
	if err != nil {
		t.Fatalf("MeasureEnvelope: %v", err)
	}
	if *update {
		if err := os.WriteFile("testdata/envelope.json", env.MarshalCanonical(), 0o644); err != nil {
			t.Fatalf("write pin: %v", err)
		}
		doc := "# Surrogate error envelope\n\n" +
			"Relative error of the closed-form surrogate (internal/surrogate)\n" +
			"against the event simulator over the seeded validation sweep\n" +
			"(`surrogate.DefaultSweep`, " + strconv.Itoa(env.Points) + " simulations at n=2048).\n" +
			"Regenerate with:\n\n" +
			"    go test ./internal/surrogate -run TestEnvelopePin -update\n\n" +
			env.MarkdownTable() + "\n" +
			"The pin in `internal/surrogate/testdata/envelope.json` fails the\n" +
			"tier-1 tests if these numbers drift; the acceptance ceiling is\n" +
			"median <= 10% and p99 <= 25% per regime.\n"
		if err := os.WriteFile("../../docs/surrogate_envelope.md", []byte(doc), 0o644); err != nil {
			t.Fatalf("write docs table: %v", err)
		}
		t.Logf("re-pinned %d points across %d regimes", env.Points, len(env.Regimes))
	}

	// The batch-routed measurement must reproduce the committed pin file
	// bit for bit: lockstep lanes are byte-identical to solo runs, so
	// routing the sweep through sim.RunBatch changes nothing — not even
	// the last ulp of a summarized float.
	if !*update && !bytes.Equal(env.MarshalCanonical(), pinnedJSON) {
		t.Errorf("measured envelope differs byte-for-byte from testdata/envelope.json")
	}

	pin := Pinned()
	if env.Points != pin.Points {
		t.Errorf("sweep size %d != pinned %d (run -update after changing DefaultSweep)",
			env.Points, pin.Points)
	}
	for r, got := range env.Regimes {
		want, ok := pin.Regimes[r]
		if !ok {
			t.Errorf("regime %s measured but not pinned", r)
			continue
		}
		if got.Points != want.Points {
			t.Errorf("%s: %d points, pinned %d", r, got.Points, want.Points)
		}
		for _, c := range []struct {
			name      string
			got, want float64
		}{
			{"median", got.MedianRelErr, want.MedianRelErr},
			{"p99", got.P99RelErr, want.P99RelErr},
			{"max", got.MaxRelErr, want.MaxRelErr},
		} {
			if math.Abs(c.got-c.want) > 1e-9 {
				t.Errorf("%s: %s rel err %.6f, pinned %.6f — model accuracy drifted; "+
					"re-pin with -update only if intentional", r, c.name, c.got, c.want)
			}
		}
		// The acceptance ceiling applies to the fresh measurement, so a
		// stale pin cannot mask a regression.
		if got.MedianRelErr > acceptMedianRelErr {
			t.Errorf("%s: median rel err %.3f exceeds acceptance %.2f",
				r, got.MedianRelErr, acceptMedianRelErr)
		}
		if got.P99RelErr > acceptP99RelErr {
			t.Errorf("%s: p99 rel err %.3f exceeds acceptance %.2f",
				r, got.P99RelErr, acceptP99RelErr)
		}
	}
	for r := range pin.Regimes {
		if _, ok := env.Regimes[r]; !ok {
			t.Errorf("regime %s pinned but no longer swept", r)
		}
	}
}
