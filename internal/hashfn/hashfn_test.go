package hashfn

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
)

func TestHashRange(t *testing.T) {
	g := rng.New(1)
	for _, f := range Families(9, g) {
		limit := uint64(1) << f.Bits()
		gg := rng.New(2)
		for i := 0; i < 10000; i++ {
			x := gg.Uint64()
			if h := f.Hash(x); h >= limit {
				t.Fatalf("%s: Hash(%#x) = %d >= %d", f.Name(), x, h, limit)
			}
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	g := rng.New(3)
	f := NewCubic(10, g)
	for i := uint64(0); i < 1000; i++ {
		if f.Hash(i) != f.Hash(i) {
			t.Fatal("hash not a function")
		}
	}
}

func TestLinearTwoUniversalEmpirically(t *testing.T) {
	// For 2-universal families, Pr[h(x)=h(y)] ≈ 2/2^m for multiplicative
	// hashing (DHKP bound). Estimate the collision rate over random pairs
	// and many hash draws.
	const m = 8
	g := rng.New(4)
	pairs := 200
	draws := 200
	collisions := 0
	for i := 0; i < pairs; i++ {
		x, y := g.Uint64(), g.Uint64()
		if x == y {
			continue
		}
		for j := 0; j < draws; j++ {
			f := NewLinear(m, g)
			if f.Hash(x) == f.Hash(y) {
				collisions++
			}
		}
	}
	rate := float64(collisions) / float64(pairs*draws)
	bound := 2.0 / float64(int(1)<<m) // DHKP: ≤ 2/2^m
	if rate > bound*1.8 {
		t.Errorf("collision rate %v exceeds 1.8× the 2-universal bound %v", rate, bound)
	}
}

func TestHashSpreadsWorstCasePattern(t *testing.T) {
	// Stride-of-banks pattern: identity puts everything in one bank; each
	// hash family spreads it to near-uniform.
	const mBits = 9
	banks := 1 << mBits
	n := 8 * banks
	addrs := patterns.WorstCaseBank(n, banks)
	g := rng.New(5)

	id := Analyze(Identity{M: mBits}, addrs)
	if id.MaxBankLoad != n {
		t.Fatalf("identity max bank load = %d, want %d", id.MaxBankLoad, n)
	}
	for _, f := range []Func{NewLinear(mBits, g), NewQuadratic(mBits, g), NewCubic(mBits, g)} {
		c := Analyze(f, addrs)
		// Expect close to n/banks (=8) with fluctuation; certainly far
		// below full serialization.
		if c.MaxBankLoad > n/8 {
			t.Errorf("%s: max bank load %d, want near %d", f.Name(), c.MaxBankLoad, n/banks)
		}
	}
}

func TestOpsCostOrdering(t *testing.T) {
	g := rng.New(6)
	fams := Families(10, g)
	prev := -1.0
	for _, f := range fams {
		c := f.Ops().Cost()
		if c < prev {
			t.Errorf("cost not increasing: %s costs %v after %v", f.Name(), c, prev)
		}
		prev = c
	}
	if (Identity{M: 10}).Ops().Cost() != 0 {
		t.Error("identity should cost 0")
	}
	if got := (Linear{M: 10}).Ops().Cost(); got != 2 {
		t.Errorf("linear cost = %v, want 2", got)
	}
	if got := (Cubic{M: 10}).Ops().Cost(); got != 7 {
		t.Errorf("cubic cost = %v, want 7", got)
	}
}

func TestCheckBitsPanics(t *testing.T) {
	for _, m := range []uint{0, 64, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("m=%d should panic", m)
				}
			}()
			NewLinear(m, rng.New(1))
		}()
	}
}

func TestMapAdapter(t *testing.T) {
	f := Identity{M: 6}
	m := Map{F: f}
	if m.NumBanks() != 64 {
		t.Errorf("NumBanks = %d", m.NumBanks())
	}
	if m.Bank(130) != 2 {
		t.Errorf("Bank(130) = %d, want 2", m.Bank(130))
	}
}

func TestLog2Banks(t *testing.T) {
	cases := map[int]uint{1: 0, 2: 1, 64: 6, 1024: 10}
	for banks, want := range cases {
		if got := Log2Banks(banks); got != want {
			t.Errorf("Log2Banks(%d) = %d, want %d", banks, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two should panic")
		}
	}()
	Log2Banks(100)
}

func TestCongestionRatio(t *testing.T) {
	c := Congestion{MaxBankLoad: 12, MaxLocLoad: 3}
	if c.Ratio() != 4 {
		t.Errorf("Ratio = %v", c.Ratio())
	}
	if (Congestion{}).Ratio() != 1 {
		t.Error("empty ratio should be 1")
	}
}

func TestAnalyzeCountsDuplicates(t *testing.T) {
	// 4 copies of one address: location load 4 is irreducible.
	addrs := []uint64{7, 7, 7, 7, 8, 9}
	c := Analyze(Identity{M: 4}, addrs)
	if c.MaxLocLoad != 4 {
		t.Errorf("MaxLocLoad = %d, want 4", c.MaxLocLoad)
	}
	if c.MaxBankLoad < 4 {
		t.Errorf("MaxBankLoad = %d, want >= 4", c.MaxBankLoad)
	}
}

func TestAverageRatioShrinksWithExpansion(t *testing.T) {
	// The F7 property: for the worst-case pattern, the module-map
	// contention ratio under random hashing falls as banks grow.
	n := 1 << 12
	g := rng.New(9)
	prev := 1e18
	for _, mBits := range []uint{6, 8, 10, 12} {
		addrs := patterns.WorstCaseBank(n, 1<<mBits)
		r := AverageRatio(func(gg *rng.Xoshiro256) Func { return NewLinear(mBits, gg) }, addrs, 5, g)
		if r > prev*1.15 {
			t.Errorf("mBits=%d: ratio %v did not shrink (prev %v)", mBits, r, prev)
		}
		prev = r
	}
	if prev < 1 {
		t.Errorf("final ratio %v below 1", prev)
	}
}

func TestHashPropertyQuick(t *testing.T) {
	// Property: all families stay in range for arbitrary inputs and seeds.
	f := func(seed, x uint64) bool {
		g := rng.New(seed)
		for _, h := range Families(11, g) {
			if h.Hash(x) >= 1<<11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkLinearHash(b *testing.B) {
	f := NewLinear(10, rng.New(1))
	var s uint64
	for i := 0; i < b.N; i++ {
		s = f.Hash(uint64(i))
	}
	_ = s
}

func BenchmarkQuadraticHash(b *testing.B) {
	f := NewQuadratic(10, rng.New(1))
	var s uint64
	for i := 0; i < b.N; i++ {
		s = f.Hash(uint64(i))
	}
	_ = s
}

func BenchmarkCubicHash(b *testing.B) {
	f := NewCubic(10, rng.New(1))
	var s uint64
	for i := 0; i < b.N; i++ {
		s = f.Hash(uint64(i))
	}
	_ = s
}
