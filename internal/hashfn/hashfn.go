// Package hashfn implements the universal hash functions the paper uses
// for pseudo-random mapping of memory locations to memory banks, and the
// machinery for analyzing module-map contention (contention caused by
// multiple distinct locations residing in the same bank).
//
// Three families are provided, as in the paper's Table 3:
//
//	h1 (linear):    h(x) = ((a*x)                 mod 2^u) >> (u-m)
//	h2 (quadratic): h(x) = ((a*x^2 + b*x + c)     mod 2^u) >> (u-m)
//	h3 (cubic):     h(x) = ((a*x^3 + b*x^2 + cx+d) mod 2^u) >> (u-m)
//
// with odd random coefficients. h1 is the multiplicative hashing scheme of
// Knuth [Knu73, p.509], shown 2-universal by Dietzfelbinger et al.
// [DHKP93] in the Carter–Wegman sense [CW79]. Higher-degree polynomials
// buy stronger independence (hence better worst-case congestion bounds
// [DGMP92]) at a higher per-element evaluation cost — exactly the tradeoff
// Table 3 quantifies.
//
// Arithmetic is modulo 2^64 (u = 64), so the "mod 2^u" is free and the
// range reduction is a single shift, matching the vectorizable
// implementation the paper times on the C90.
package hashfn

import (
	"fmt"

	"dxbsp/internal/rng"
)

// Func is a hash function from 64-bit addresses to m-bit bank indices.
type Func interface {
	// Hash maps an address to a bank index in [0, 1<<Bits()).
	Hash(x uint64) uint64
	// Bits returns m, the output width in bits.
	Bits() uint
	// Name identifies the family ("linear", "quadratic", "cubic",
	// "identity").
	Name() string
	// Ops returns the per-element operation counts (multiplies, adds,
	// shifts) of a vectorized evaluation — the inputs to the Table 3 cost
	// model.
	Ops() OpCounts
}

// OpCounts is the per-element instruction mix of one hash evaluation.
type OpCounts struct {
	Mul, Add, Shift int
}

// Cost returns the chime cost of the mix on a vector unit that retires one
// operation per element per chime for each op class. On the Crays all
// three classes are fully pipelined, so cycles/element ≈ total ops (the
// functional units are not all distinct, which the constants absorb).
func (o OpCounts) Cost() float64 {
	return float64(o.Mul + o.Add + o.Shift)
}

const u = 64 // word width; arithmetic is mod 2^64

// Linear is the multiplicative (h1) family.
type Linear struct {
	A uint64
	M uint
}

// NewLinear draws a random odd multiplier.
func NewLinear(m uint, g *rng.Xoshiro256) Linear {
	checkBits(m)
	return Linear{A: g.Uint64() | 1, M: m}
}

// Hash implements Func.
func (h Linear) Hash(x uint64) uint64 { return (h.A * x) >> (u - h.M) }

// Bits implements Func.
func (h Linear) Bits() uint { return h.M }

// Name implements Func.
func (h Linear) Name() string { return "linear" }

// Ops implements Func.
func (h Linear) Ops() OpCounts { return OpCounts{Mul: 1, Shift: 1} }

// Quadratic is the h2 family.
type Quadratic struct {
	A, B, C uint64
	M       uint
}

// NewQuadratic draws random odd coefficients.
func NewQuadratic(m uint, g *rng.Xoshiro256) Quadratic {
	checkBits(m)
	return Quadratic{A: g.Uint64() | 1, B: g.Uint64() | 1, C: g.Uint64(), M: m}
}

// Hash implements Func. Evaluated by Horner's rule: ((a*x + b)*x + c).
func (h Quadratic) Hash(x uint64) uint64 { return ((h.A*x+h.B)*x + h.C) >> (u - h.M) }

// Bits implements Func.
func (h Quadratic) Bits() uint { return h.M }

// Name implements Func.
func (h Quadratic) Name() string { return "quadratic" }

// Ops implements Func.
func (h Quadratic) Ops() OpCounts { return OpCounts{Mul: 2, Add: 2, Shift: 1} }

// Cubic is the h3 family.
type Cubic struct {
	A, B, C, D uint64
	M          uint
}

// NewCubic draws random odd coefficients.
func NewCubic(m uint, g *rng.Xoshiro256) Cubic {
	checkBits(m)
	return Cubic{A: g.Uint64() | 1, B: g.Uint64() | 1, C: g.Uint64() | 1, D: g.Uint64(), M: m}
}

// Hash implements Func (Horner's rule).
func (h Cubic) Hash(x uint64) uint64 { return (((h.A*x+h.B)*x+h.C)*x + h.D) >> (u - h.M) }

// Bits implements Func.
func (h Cubic) Bits() uint { return h.M }

// Name implements Func.
func (h Cubic) Name() string { return "cubic" }

// Ops implements Func.
func (h Cubic) Ops() OpCounts { return OpCounts{Mul: 3, Add: 3, Shift: 1} }

// Identity is the degenerate "hash" used by hardware interleaving:
// bank = low m bits of the address. Zero evaluation cost, but adversarial
// patterns (stride = banks) put every reference in one bank.
type Identity struct {
	M uint
}

// Hash implements Func.
func (h Identity) Hash(x uint64) uint64 { return x & ((1 << h.M) - 1) }

// Bits implements Func.
func (h Identity) Bits() uint { return h.M }

// Name implements Func.
func (h Identity) Name() string { return "identity" }

// Ops implements Func.
func (h Identity) Ops() OpCounts { return OpCounts{} }

func checkBits(m uint) {
	if m == 0 || m >= u {
		panic(fmt.Sprintf("hashfn: output bits %d out of range (0, 64)", m))
	}
}

// Map adapts a Func to the core.BankMap interface (bank count 1<<Bits).
type Map struct {
	F Func
}

// Bank implements core.BankMap.
func (m Map) Bank(addr uint64) int { return int(m.F.Hash(addr)) }

// NumBanks implements core.BankMap.
func (m Map) NumBanks() int { return 1 << m.F.Bits() }

// CacheKey fingerprints the map for result memoization (the runner's
// simulation cache): two Maps with equal keys map every address to the
// same bank. The hash families are plain coefficient structs, so the
// concrete type plus its printed fields identify the function exactly.
func (m Map) CacheKey() string { return fmt.Sprintf("hashfn.Map{%T%+v}", m.F, m.F) }

// Log2Banks returns m for a power-of-two bank count, panicking otherwise.
// Hash maps require power-of-two bank counts.
func Log2Banks(banks int) uint {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic(fmt.Sprintf("hashfn: bank count %d is not a power of two", banks))
	}
	m := uint(0)
	for 1<<m < banks {
		m++
	}
	return m
}

// Families returns one freshly drawn instance of each family at the given
// output width, in increasing cost order, for sweep experiments.
func Families(m uint, g *rng.Xoshiro256) []Func {
	return []Func{
		Identity{M: m},
		NewLinear(m, g),
		NewQuadratic(m, g),
		NewCubic(m, g),
	}
}
