package hashfn

import (
	"fmt"

	"dxbsp/internal/rng"
	"math/bits"
)

// This file adds the exactly k-universal polynomial family over the
// Mersenne prime p = 2^61 - 1. The mod-2^64 families in hashfn.go match
// what the paper vectorizes on the C90 (cheap, approximately universal);
// the prime-field family is the textbook construction ([CW79], [DGMP92])
// with exact independence guarantees, at a higher per-element cost — one
// more point on the cost/quality curve of Table 3.

// mersenne61 is 2^61 - 1, prime.
const mersenne61 = (1 << 61) - 1

// PolyPrime is a degree-(len(Coef)-1) polynomial hash over GF(2^61-1),
// reduced to M output bits. A polynomial with k coefficients drawn
// uniformly yields a k-universal (k-wise independent) family.
type PolyPrime struct {
	Coef []uint64 // c[0] + c[1]*x + c[2]*x^2 + ...
	M    uint
}

// NewPolyPrime draws a degree-(k-1) polynomial (k coefficients) at random.
func NewPolyPrime(k int, m uint, g *rng.Xoshiro256) PolyPrime {
	if k < 1 {
		panic(fmt.Sprintf("hashfn: NewPolyPrime degree %d", k))
	}
	checkBits(m)
	coef := make([]uint64, k)
	for i := range coef {
		coef[i] = g.Uint64n(mersenne61)
	}
	// Leading coefficient non-zero so the degree is exact.
	for coef[k-1] == 0 {
		coef[k-1] = g.Uint64n(mersenne61)
	}
	return PolyPrime{Coef: coef, M: m}
}

// mulmod61 returns a*b mod 2^61-1 using the Mersenne fast reduction.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi*2^64 + lo = hi*8*2^61 + lo ≡ hi*8 + lo (mod 2^61-1), with
	// lo itself split as (lo >> 61) + (lo & mask).
	sum := (hi << 3) | (lo >> 61)
	sum += lo & mersenne61
	// One conditional subtraction suffices after folding once more.
	sum = (sum >> 61) + (sum & mersenne61)
	if sum >= mersenne61 {
		sum -= mersenne61
	}
	return sum
}

// Hash implements Func via Horner evaluation mod 2^61-1. Inputs are first
// folded into the field.
func (h PolyPrime) Hash(x uint64) uint64 {
	// Fold the 64-bit input into the field (lossless enough for bank
	// mapping: inputs beyond 2^61 are folded, not truncated).
	xf := (x >> 61) + (x & mersenne61)
	if xf >= mersenne61 {
		xf -= mersenne61
	}
	acc := uint64(0)
	for i := len(h.Coef) - 1; i >= 0; i-- {
		acc = mulmod61(acc, xf)
		acc += h.Coef[i]
		if acc >= mersenne61 {
			acc -= mersenne61
		}
	}
	// Reduce to M bits by taking the top bits of the field element scaled
	// into [0, 2^M): multiply-shift keeps uniformity.
	hi, _ := bits.Mul64(acc<<3, 1<<h.M) // acc<<3 spreads 61 bits toward 64
	return hi
}

// Bits implements Func.
func (h PolyPrime) Bits() uint { return h.M }

// Name implements Func.
func (h PolyPrime) Name() string {
	return fmt.Sprintf("prime-poly-%d", len(h.Coef))
}

// Ops implements Func: per element, each Horner step is a 128-bit
// multiply (2 vector mults), shifts and adds for the reduction.
func (h PolyPrime) Ops() OpCounts {
	k := len(h.Coef)
	return OpCounts{Mul: 2 * (k - 1), Add: 3 * (k - 1), Shift: 3*(k-1) + 2}
}
