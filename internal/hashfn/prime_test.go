package hashfn

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
)

func TestMulmod61(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 5, 0},
		{1, 1, 1},
		{mersenne61 - 1, 1, mersenne61 - 1},
		{mersenne61 - 1, 2, mersenne61 - 2}, // (p-1)*2 = 2p-2 ≡ p-2
	}
	for _, c := range cases {
		if got := mulmod61(c.a, c.b); got != c.want {
			t.Errorf("mulmod61(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulmod61Property(t *testing.T) {
	// Against big-integer arithmetic via 128-bit decomposition: check
	// (a*b) mod p == mulmod61 for random field elements using the
	// identity on small operands where a*b fits in 64 bits.
	f := func(aRaw, bRaw uint32) bool {
		a, b := uint64(aRaw), uint64(bRaw)
		return mulmod61(a, b) == (a*b)%mersenne61
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolyPrimeRangeAndDeterminism(t *testing.T) {
	g := rng.New(1)
	for _, k := range []int{1, 2, 3, 5} {
		h := NewPolyPrime(k, 9, g)
		gg := rng.New(2)
		for i := 0; i < 5000; i++ {
			x := gg.Uint64()
			v := h.Hash(x)
			if v >= 1<<9 {
				t.Fatalf("k=%d: Hash(%#x) = %d out of range", k, x, v)
			}
			if v != h.Hash(x) {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestPolyPrimePairwiseCollisions(t *testing.T) {
	// Degree-1 polynomials (k=2 coefficients) are exactly 2-universal:
	// collision rate over random draws must be ≈ 2^-m.
	const m = 8
	g := rng.New(3)
	pairs, draws := 100, 200
	collisions := 0
	for i := 0; i < pairs; i++ {
		x, y := g.Uint64n(mersenne61), g.Uint64n(mersenne61)
		if x == y {
			continue
		}
		for j := 0; j < draws; j++ {
			h := NewPolyPrime(2, m, g)
			if h.Hash(x) == h.Hash(y) {
				collisions++
			}
		}
	}
	rate := float64(collisions) / float64(pairs*draws)
	if bound := 1.0 / (1 << m); rate > bound*2.5 {
		t.Errorf("collision rate %v exceeds 2.5x the 2-universal bound %v", rate, bound)
	}
}

func TestPolyPrimeSpreadsWorstCase(t *testing.T) {
	const mBits = 9
	banks := 1 << mBits
	n := 8 * banks
	addrs := patterns.WorstCaseBank(n, banks)
	h := NewPolyPrime(3, mBits, rng.New(4))
	c := Analyze(h, addrs)
	if c.MaxBankLoad > n/8 {
		t.Errorf("prime poly max bank load %d, want near %d", c.MaxBankLoad, n/banks)
	}
}

func TestPolyPrimeCostAboveMod64Families(t *testing.T) {
	g := rng.New(5)
	linear := NewLinear(9, g)
	prime2 := NewPolyPrime(2, 9, g)
	if prime2.Ops().Cost() <= linear.Ops().Cost() {
		t.Errorf("prime field should cost more than mod-2^64: %v vs %v",
			prime2.Ops().Cost(), linear.Ops().Cost())
	}
	prime5 := NewPolyPrime(5, 9, g)
	if prime5.Ops().Cost() <= prime2.Ops().Cost() {
		t.Error("higher degree must cost more")
	}
}

func TestPolyPrimeName(t *testing.T) {
	h := NewPolyPrime(3, 8, rng.New(6))
	if h.Name() != "prime-poly-3" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestNewPolyPrimePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPolyPrime(0, 8, rng.New(1)) },
		func() { NewPolyPrime(2, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
