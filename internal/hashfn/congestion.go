package hashfn

import (
	"dxbsp/internal/rng"
)

// This file implements the module-map contention analysis of Section 4 of
// the paper: when memory locations are pseudo-randomly mapped to banks,
// how much extra time is caused by multiple distinct locations landing in
// the same bank, compared to an idealized mapping where only duplicate
// locations share a bank?

// Congestion reports the bank-load structure of a set of addresses under
// a hash function.
type Congestion struct {
	// MaxBankLoad is the maximum number of references to any one bank.
	MaxBankLoad int
	// MaxLocLoad is the maximum number of references to any one location
	// (contention that no mapping can remove).
	MaxLocLoad int
	// MaxDistinctPerBank is the maximum number of distinct locations in
	// one bank.
	MaxDistinctPerBank int
}

// Ratio returns the module-map contention ratio: the factor by which the
// hot bank's load exceeds the irreducible per-location contention. A ratio
// of 1 means the mapping added no contention at all.
func (c Congestion) Ratio() float64 {
	if c.MaxLocLoad == 0 {
		return 1
	}
	return float64(c.MaxBankLoad) / float64(c.MaxLocLoad)
}

// Analyze computes the congestion of addrs under f.
func Analyze(f Func, addrs []uint64) Congestion {
	banks := 1 << f.Bits()
	bankLoad := make([]int, banks)
	locLoad := make(map[uint64]int, len(addrs))
	for _, a := range addrs {
		bankLoad[f.Hash(a)]++
		locLoad[a]++
	}
	var c Congestion
	for _, l := range bankLoad {
		if l > c.MaxBankLoad {
			c.MaxBankLoad = l
		}
	}
	distinct := make([]int, banks)
	for a, l := range locLoad {
		if l > c.MaxLocLoad {
			c.MaxLocLoad = l
		}
		distinct[f.Hash(a)]++
	}
	for _, d := range distinct {
		if d > c.MaxDistinctPerBank {
			c.MaxDistinctPerBank = d
		}
	}
	return c
}

// AverageRatio draws trials instances of the family produced by mk and
// returns the mean module-map contention ratio on addrs. Averaging over
// hash draws is how the paper's Section 4 figure is produced: for a fixed
// worst-case reference pattern, the expected ratio as a function of the
// expansion factor.
func AverageRatio(mk func(g *rng.Xoshiro256) Func, addrs []uint64, trials int, g *rng.Xoshiro256) float64 {
	if trials <= 0 {
		return 1
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		f := mk(g.Split())
		sum += Analyze(f, addrs).Ratio()
	}
	return sum / float64(trials)
}
