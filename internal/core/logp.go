package core

import (
	"fmt"
	"math"
)

// This file extends the LogP model of Culler et al. [CKP+93] with the
// paper's d and x parameters, as the paper notes is straightforward ("to
// extend the logp it is assumed that the banks are separate modules from
// the processors"). It exists so users of LogP-style analyses can account
// for bank contention without switching cost frameworks.

// DXLogP is the LogP machine — latency L, per-message overhead O, gap G,
// P processors — extended with bank delay D and expansion factor X. The
// memory banks are modules separate from the processors; a request is a
// message to a bank, and the bank is busy D cycles per request.
type DXLogP struct {
	L float64 // end-to-end message latency
	O float64 // processor overhead per message (send or receive)
	G float64 // gap: minimum interval between messages at a processor
	P int     // processors

	D float64 // bank delay
	X float64 // banks per processor
}

// FromMachine derives a DXLogP from a (d,x)-BSP machine, with the given
// per-message processor overhead (BSP has no o; vector machines hide it,
// so o=0 reproduces the BSP-style cost).
func FromMachine(m Machine, o float64) DXLogP {
	return DXLogP{L: m.L, O: o, G: m.G, P: m.Procs, D: m.D, X: m.Expansion()}
}

// Validate reports whether the parameters are usable.
func (m DXLogP) Validate() error {
	switch {
	case m.P <= 0:
		return fmt.Errorf("core: DXLogP: P=%d", m.P)
	case m.G <= 0 || m.D <= 0 || m.X <= 0:
		return fmt.Errorf("core: DXLogP: G, D, X must be positive (g=%g d=%g x=%g)", m.G, m.D, m.X)
	case m.L < 0 || m.O < 0:
		return fmt.Errorf("core: DXLogP: L and O must be non-negative")
	}
	return nil
}

// Banks returns the number of memory-bank modules, x*P rounded.
func (m DXLogP) Banks() int {
	b := int(math.Round(m.X * float64(m.P)))
	if b < 1 {
		b = 1
	}
	return b
}

// MessageCost returns the classic LogP cost of one request/response pair:
// o + L + o going, the bank service, and the return. Under LogP the bank
// service is invisible; under (d,x)-LogP it costs D.
func (m DXLogP) MessageCost() float64 {
	return 2*m.O + m.L + m.D
}

// BulkCost returns the (d,x)-LogP cost of a bulk phase in which each
// processor issues at most h pipelined requests and each bank receives at
// most k: the processor side paces at max(o, g) per message, the bank
// side at D per request, and one latency is paid end to end.
func (m DXLogP) BulkCost(h, k int) float64 {
	per := math.Max(m.O, m.G)
	return math.Max(per*float64(h), m.D*float64(k)) + m.L + 2*m.O
}

// LogPBulkCost is the same phase costed by plain LogP (no D, no X): banks
// are assumed to keep pace. Comparing against BulkCost shows exactly the
// misprediction the paper demonstrates for the BSP.
func (m DXLogP) LogPBulkCost(h int) float64 {
	return math.Max(m.O, m.G)*float64(h) + m.L + 2*m.O
}

// BulkCostProfile applies BulkCost to a measured pattern profile.
func (m DXLogP) BulkCostProfile(p Profile) float64 {
	return m.BulkCost(p.MaxH, p.MaxK)
}
