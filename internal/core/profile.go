package core

import (
	"fmt"
	"slices"
	"sort"
)

// BankMap maps memory addresses (word indices) to memory banks. The
// identity-interleave map models conventional hardware interleaving; the
// hashfn package provides pseudo-random (universal hash) maps.
type BankMap interface {
	// Bank returns the bank index in [0, NumBanks()) holding addr.
	Bank(addr uint64) int
	// NumBanks returns the number of banks the map distributes over.
	NumBanks() int
}

// InterleaveMap is the conventional bank mapping: bank = addr mod banks.
// Consecutive addresses land in consecutive banks, so unit-stride access is
// perfectly spread, while stride-b access concentrates on one bank.
type InterleaveMap struct {
	Banks int
}

// Bank implements BankMap.
func (m InterleaveMap) Bank(addr uint64) int { return int(addr % uint64(m.Banks)) }

// NumBanks implements BankMap.
func (m InterleaveMap) NumBanks() int { return m.Banks }

// GPUSharedMap is the GPU shared-memory bank mapping: successive 32-bit
// words map to successive banks, so for byte addresses
// bank = (addr / 4) mod banks. With the canonical 32 banks, a warp's
// lanes conflict exactly when their word indices collide modulo 32
// (SNIPPETS.md puzzle 32): unit word stride is conflict-free, even
// strides serialize by gcd(stride, 32).
type GPUSharedMap struct {
	Banks int
}

// Bank implements BankMap.
func (m GPUSharedMap) Bank(addr uint64) int { return int((addr / 4) % uint64(m.Banks)) }

// NumBanks implements BankMap.
func (m GPUSharedMap) NumBanks() int { return m.Banks }

// Pattern is a bulk memory access pattern: for each processor, the ordered
// list of addresses it issues during one superstep (one vectorized scatter
// or gather). Patterns are what the model profiles and what the simulator
// executes.
type Pattern struct {
	PerProc [][]uint64
}

// NewPattern distributes a flat address stream round-robin over p
// processors, the way a vectorized loop distributes iterations.
func NewPattern(addrs []uint64, p int) Pattern {
	if p <= 0 {
		panic(fmt.Sprintf("core: NewPattern with p=%d", p))
	}
	per := make([][]uint64, p)
	if len(addrs) == 0 {
		return Pattern{PerProc: per}
	}
	chunk := (len(addrs) + p - 1) / p
	for i := range per {
		per[i] = make([]uint64, 0, chunk)
	}
	for i, a := range addrs {
		per[i%p] = append(per[i%p], a)
	}
	return Pattern{PerProc: per}
}

// NewPatternBlocked distributes a flat address stream in contiguous blocks:
// processor 0 gets the first n/p addresses, and so on. This matches how
// the paper's multiprocessor experiments divide an array among CPUs.
func NewPatternBlocked(addrs []uint64, p int) Pattern {
	if p <= 0 {
		panic(fmt.Sprintf("core: NewPatternBlocked with p=%d", p))
	}
	per := make([][]uint64, p)
	n := len(addrs)
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		per[i] = addrs[lo:hi:hi]
	}
	return Pattern{PerProc: per}
}

// N returns the total number of requests in the pattern.
func (pt Pattern) N() int {
	n := 0
	for _, a := range pt.PerProc {
		n += len(a)
	}
	return n
}

// Procs returns the number of processors in the pattern.
func (pt Pattern) Procs() int { return len(pt.PerProc) }

// Flatten returns all addresses in round-robin issue order.
func (pt Pattern) Flatten() []uint64 {
	out := make([]uint64, 0, pt.N())
	maxLen := 0
	for _, a := range pt.PerProc {
		if len(a) > maxLen {
			maxLen = len(a)
		}
	}
	for j := 0; j < maxLen; j++ {
		for _, a := range pt.PerProc {
			if j < len(a) {
				out = append(out, a[j])
			}
		}
	}
	return out
}

// Profile summarizes the contention structure of a Pattern under a given
// bank mapping. It holds exactly the quantities the (d,x)-BSP cost law
// consumes, plus diagnostics used by the experiments.
type Profile struct {
	N     int // total requests
	Procs int // processors issuing them
	Banks int // banks in the mapping

	MaxH int // max requests issued by one processor (BSP's h)
	MaxK int // max requests received by one bank (the d*k term)

	// MaxLoc is the maximum number of requests addressed to one memory
	// location — the QRQW notion of contention κ. MaxK >= ceil stats of
	// MaxLoc since co-located requests share a bank.
	MaxLoc       int
	DistinctLocs int

	// MaxKDistinct is the maximum, over banks, of the number of *distinct
	// locations* mapped to the bank that are touched by the pattern. The
	// gap between MaxK and MaxLoc that is explained by multiple locations
	// sharing a bank — module-map contention — shows up here.
	MaxKDistinct int

	// BankLoads is the full per-bank request histogram (length Banks) when
	// retained; nil when the profile was computed with retention disabled.
	BankLoads []int
}

// sortAddrs sorts addresses ascending. Large inputs use an LSD radix
// sort — profiling is O(n) end to end, and address streams usually span
// far fewer than 64 significant bits, so constant high bytes make most
// of the 8 passes free.
func sortAddrs(xs []uint64) {
	const radixCutover = 256
	if len(xs) < radixCutover {
		slices.Sort(xs)
		return
	}
	var counts [8][256]int
	for _, x := range xs {
		for b := uint(0); b < 8; b++ {
			counts[b][byte(x>>(8*b))]++
		}
	}
	n := len(xs)
	src, dst := xs, make([]uint64, n)
	for b := uint(0); b < 8; b++ {
		c := &counts[b]
		// A byte position where every address shares one value sorts to
		// the identity permutation; skip the pass.
		if c[byte(src[0]>>(8*b))] == n {
			continue
		}
		offset := 0
		var starts [256]int
		for v := 0; v < 256; v++ {
			starts[v] = offset
			offset += c[v]
		}
		for _, x := range src {
			v := byte(x >> (8 * b))
			dst[starts[v]] = x
			starts[v]++
		}
		src, dst = dst, src
	}
	if &src[0] != &xs[0] {
		copy(xs, src)
	}
}

// ComputeProfile profiles pattern pt under bank map bm.
func ComputeProfile(pt Pattern, bm BankMap) Profile {
	return computeProfile(pt, bm, true)
}

// ComputeProfileCompact is ComputeProfile without retaining the per-bank
// histogram, for very large bank counts in tight loops.
func ComputeProfileCompact(pt Pattern, bm BankMap) Profile {
	return computeProfile(pt, bm, false)
}

func computeProfile(pt Pattern, bm BankMap, keep bool) Profile {
	banks := bm.NumBanks()
	prof := Profile{
		N:     pt.N(),
		Procs: pt.Procs(),
		Banks: banks,
	}
	bankLoad := make([]int, banks)
	addrs := make([]uint64, 0, prof.N)
	for _, per := range pt.PerProc {
		if len(per) > prof.MaxH {
			prof.MaxH = len(per)
		}
		for _, a := range per {
			bankLoad[bm.Bank(a)]++
		}
		addrs = append(addrs, per...)
	}
	for _, k := range bankLoad {
		if k > prof.MaxK {
			prof.MaxK = k
		}
	}
	// Location contention (MaxLoc, DistinctLocs) and distinct locations
	// per bank come from one sort-and-scan over a flat copy of the
	// addresses: equal addresses form runs, each run is one distinct
	// location. A map[uint64]int would compute the same quantities, but
	// costs hundreds of bucket allocations and more wall clock at the
	// 64K-request scale the experiments sweep (this function sits on the
	// runner's per-point hot path next to sim.Run).
	sortAddrs(addrs)
	distinct := make([]int, banks)
	for i := 0; i < len(addrs); {
		j := i + 1
		for j < len(addrs) && addrs[j] == addrs[i] {
			j++
		}
		prof.DistinctLocs++
		if run := j - i; run > prof.MaxLoc {
			prof.MaxLoc = run
		}
		distinct[bm.Bank(addrs[i])]++
		i = j
	}
	for _, k := range distinct {
		if k > prof.MaxKDistinct {
			prof.MaxKDistinct = k
		}
	}
	if keep {
		prof.BankLoads = bankLoad
	}
	return prof
}

// LocationSpectrum returns the contention spectrum of a pattern: for each
// occurring contention level c, the number of distinct locations accessed
// exactly c times. The spectrum is what distinguishes "one hot spot"
// patterns from "everything lukewarm" patterns that share the same MaxLoc.
func LocationSpectrum(pt Pattern) map[int]int {
	counts := make(map[uint64]int)
	for _, addrs := range pt.PerProc {
		for _, a := range addrs {
			counts[a]++
		}
	}
	spectrum := make(map[int]int)
	for _, c := range counts {
		spectrum[c]++
	}
	return spectrum
}

// LoadPercentile returns the q-quantile (0 <= q <= 1) of the per-bank load
// distribution. Requires the profile to have been computed with the
// histogram retained.
func (p Profile) LoadPercentile(q float64) int {
	if p.BankLoads == nil {
		panic("core: LoadPercentile on compact profile")
	}
	loads := make([]int, len(p.BankLoads))
	copy(loads, p.BankLoads)
	sort.Ints(loads)
	idx := int(q * float64(len(loads)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(loads) {
		idx = len(loads) - 1
	}
	return loads[idx]
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("Profile{n=%d p=%d b=%d h=%d k=%d κ=%d distinct=%d}",
		p.N, p.Procs, p.Banks, p.MaxH, p.MaxK, p.MaxLoc, p.DistinctLocs)
}
