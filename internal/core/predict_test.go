package core

import (
	"math"
	"testing"

	"dxbsp/internal/rng"
)

func TestPredictDXBSPVsBSP(t *testing.T) {
	m := J90()
	n := 65536
	// Flat profile: both models agree (memory keeps up, x=64 >= d=14).
	flat := Profile{N: n, Procs: 8, Banks: 512, MaxH: n / 8, MaxK: n / 512}
	if dx, bsp := m.PredictDXBSP(flat), m.PredictBSP(flat); dx != bsp {
		t.Errorf("flat pattern: dx=%v bsp=%v, want equal", dx, bsp)
	}
	// Hot profile: dx prediction must exceed bsp.
	hot := Profile{N: n, Procs: 8, Banks: 512, MaxH: n / 8, MaxK: n}
	if dx, bsp := m.PredictDXBSP(hot), m.PredictBSP(hot); dx <= bsp {
		t.Errorf("hot pattern: dx=%v should exceed bsp=%v", dx, bsp)
	}
}

func TestPredictScatterMonotoneInContention(t *testing.T) {
	m := J90()
	n := 65536
	prev := 0.0
	for k := 1; k <= n; k *= 4 {
		p := m.PredictScatter(n, k)
		if p < prev {
			t.Errorf("PredictScatter not monotone at k=%d: %v < %v", k, p, prev)
		}
		prev = p
	}
	// At k=n the scatter is fully serialized through one bank.
	if got, want := m.PredictScatter(n, n), m.D*float64(n); got < want {
		t.Errorf("full contention prediction %v < serial bound %v", got, want)
	}
}

func TestPredictScatterCrossover(t *testing.T) {
	m := J90()
	n := 65536
	kStar := m.ContentionCrossover(n) // ≈ 585
	// Well below crossover: flat cost.
	lo := m.PredictScatter(n, int(kStar/8))
	flat := m.PredictScatter(n, 1)
	if math.Abs(lo-flat)/flat > 0.05 {
		t.Errorf("below crossover should be ~flat: %v vs %v", lo, flat)
	}
	// Well above: cost ≈ d*k.
	k := int(kStar * 16)
	hi := m.PredictScatter(n, k)
	if want := m.D * float64(k); math.Abs(hi-want)/want > 0.05 {
		t.Errorf("above crossover: %v, want ≈ %v", hi, want)
	}
}

func TestExpectedMaxLoadDense(t *testing.T) {
	// Monte Carlo check in the dense regime.
	const n, b = 100000, 512
	g := rng.New(17)
	trials := 20
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		loads := make([]int, b)
		for i := 0; i < n; i++ {
			loads[g.Uint64n(b)]++
		}
		maxL := 0
		for _, l := range loads {
			if l > maxL {
				maxL = l
			}
		}
		sum += float64(maxL)
	}
	mc := sum / float64(trials)
	est := ExpectedMaxLoad(n, b)
	if ratio := est / mc; ratio < 0.85 || ratio > 1.25 {
		t.Errorf("dense ExpectedMaxLoad=%v vs MC=%v (ratio %v)", est, mc, ratio)
	}
}

func TestExpectedMaxLoadSparse(t *testing.T) {
	// n << b: expected max is small (around ln n / ln ln n); check it is
	// in a sane band via Monte Carlo.
	const n, b = 100, 10000
	g := rng.New(23)
	trials := 50
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		loads := make(map[uint64]int)
		maxL := 0
		for i := 0; i < n; i++ {
			k := g.Uint64n(b)
			loads[k]++
			if loads[k] > maxL {
				maxL = loads[k]
			}
		}
		sum += float64(maxL)
	}
	mc := sum / float64(trials)
	est := ExpectedMaxLoad(n, b)
	if est < 1 || est > mc*3 || mc > est*3 {
		t.Errorf("sparse ExpectedMaxLoad=%v vs MC=%v", est, mc)
	}
}

func TestExpectedMaxLoadEdgeCases(t *testing.T) {
	if got := ExpectedMaxLoad(0, 10); got != 0 {
		t.Errorf("n=0: %v", got)
	}
	if got := ExpectedMaxLoad(10, 0); got != 0 {
		t.Errorf("b=0: %v", got)
	}
	if got := ExpectedMaxLoad(37, 1); got != 37 {
		t.Errorf("b=1: %v, want 37", got)
	}
	if got := ExpectedMaxLoad(1, 100); got < 1 {
		t.Errorf("n=1: %v, want >= 1", got)
	}
}

// TestExpectedMaxLoadRegimes validates every approximation regime and
// every switch-over boundary against Monte Carlo: the exact EGF path
// (n <= 64), both sides of the exact/Poisson seam (n = 64 vs 65), the
// sparse union-bound band, the old silently-misestimated n ≈ b
// boundary, the dense band, and the huge-b case where the exact path's
// polynomial coefficients once underflowed wholesale and returned n
// instead of ≈ 1 (the regression that motivated the range guard).
func TestExpectedMaxLoadRegimes(t *testing.T) {
	cases := []struct {
		n, b   int
		trials int
	}{
		{1, 100, 50},
		{8, 64, 400},
		{16, 16, 400},
		{32, 512, 400},
		{64, 64, 400},      // last exact-path n
		{64, 10000, 400},   // exact range guard trips -> Poisson path
		{65, 64, 400},      // first approximated n
		{100, 10000, 400},  // sparse: the old heuristic overshot here
		{100, 128, 400},    // n ≈ b boundary
		{512, 512, 200},    // n = b
		{3000, 512, 100},   // just below the old dense seam (n/b vs ln b)
		{4000, 512, 100},   // just above it
		{100000, 512, 20},  // dense
		{64, 1 << 20, 100}, // huge b: regression, was 64.0 vs true ≈ 1.0
	}
	g := rng.New(41)
	for _, c := range cases {
		sum := 0.0
		loads := make(map[uint64]int)
		for tr := 0; tr < c.trials; tr++ {
			clear(loads)
			maxL := 0
			for i := 0; i < c.n; i++ {
				k := g.Uint64n(uint64(c.b))
				loads[k]++
				if loads[k] > maxL {
					maxL = loads[k]
				}
			}
			sum += float64(maxL)
		}
		mc := sum / float64(c.trials)
		est := ExpectedMaxLoad(c.n, c.b)
		if ratio := est / mc; ratio < 0.85 || ratio > 1.2 {
			t.Errorf("ExpectedMaxLoad(%d, %d) = %v vs MC %v (ratio %.3f)",
				c.n, c.b, est, mc, ratio)
		}
	}
}

// TestExpectedMaxLoadMonotoneFine walks n by small steps so the
// switch-over points themselves (exact->Poisson at n=65, and the old
// dense seam near n/b = ln b, which used to break monotonicity at
// b=512, n=3195) are crossed one step at a time.
func TestExpectedMaxLoadMonotoneFine(t *testing.T) {
	for _, b := range []int{2, 16, 512, 1 << 20} {
		prev := 0.0
		for n := 1; n <= 1<<17; n = n + 1 + n/64 {
			v := ExpectedMaxLoad(n, b)
			if v < prev {
				t.Fatalf("b=%d: not monotone at n=%d: %v < %v", b, n, v, prev)
			}
			prev = v
		}
	}
}

func TestExpectedMaxLoadMonotone(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 1<<20; n *= 2 {
		v := ExpectedMaxLoad(n, 512)
		if v < prev {
			t.Errorf("ExpectedMaxLoad not monotone in n at %d: %v < %v", n, v, prev)
		}
		prev = v
	}
}

func TestPredictedSlowdownVsFlat(t *testing.T) {
	m := J90()
	n := 65536
	flat := Profile{N: n, Procs: 8, Banks: 512, MaxH: n / 8, MaxK: n / 512}
	if s := m.PredictedSlowdownVsFlat(flat); math.Abs(s-1) > 1e-9 {
		t.Errorf("flat slowdown = %v, want 1", s)
	}
	hot := flat
	hot.MaxK = n
	if s := m.PredictedSlowdownVsFlat(hot); s < 10 {
		t.Errorf("hot slowdown = %v, want large", s)
	}
}

func TestCyclesPerElement(t *testing.T) {
	if got := CyclesPerElement(8000, 1000, 8); got != 64 {
		t.Errorf("CyclesPerElement = %v, want 64", got)
	}
	if got := CyclesPerElement(100, 0, 8); got != 0 {
		t.Errorf("n=0: %v, want 0", got)
	}
}
