package core

import (
	"math"
	"testing"

	"dxbsp/internal/rng"
)

func TestPredictDXBSPVsBSP(t *testing.T) {
	m := J90()
	n := 65536
	// Flat profile: both models agree (memory keeps up, x=64 >= d=14).
	flat := Profile{N: n, Procs: 8, Banks: 512, MaxH: n / 8, MaxK: n / 512}
	if dx, bsp := m.PredictDXBSP(flat), m.PredictBSP(flat); dx != bsp {
		t.Errorf("flat pattern: dx=%v bsp=%v, want equal", dx, bsp)
	}
	// Hot profile: dx prediction must exceed bsp.
	hot := Profile{N: n, Procs: 8, Banks: 512, MaxH: n / 8, MaxK: n}
	if dx, bsp := m.PredictDXBSP(hot), m.PredictBSP(hot); dx <= bsp {
		t.Errorf("hot pattern: dx=%v should exceed bsp=%v", dx, bsp)
	}
}

func TestPredictScatterMonotoneInContention(t *testing.T) {
	m := J90()
	n := 65536
	prev := 0.0
	for k := 1; k <= n; k *= 4 {
		p := m.PredictScatter(n, k)
		if p < prev {
			t.Errorf("PredictScatter not monotone at k=%d: %v < %v", k, p, prev)
		}
		prev = p
	}
	// At k=n the scatter is fully serialized through one bank.
	if got, want := m.PredictScatter(n, n), m.D*float64(n); got < want {
		t.Errorf("full contention prediction %v < serial bound %v", got, want)
	}
}

func TestPredictScatterCrossover(t *testing.T) {
	m := J90()
	n := 65536
	kStar := m.ContentionCrossover(n) // ≈ 585
	// Well below crossover: flat cost.
	lo := m.PredictScatter(n, int(kStar/8))
	flat := m.PredictScatter(n, 1)
	if math.Abs(lo-flat)/flat > 0.05 {
		t.Errorf("below crossover should be ~flat: %v vs %v", lo, flat)
	}
	// Well above: cost ≈ d*k.
	k := int(kStar * 16)
	hi := m.PredictScatter(n, k)
	if want := m.D * float64(k); math.Abs(hi-want)/want > 0.05 {
		t.Errorf("above crossover: %v, want ≈ %v", hi, want)
	}
}

func TestExpectedMaxLoadDense(t *testing.T) {
	// Monte Carlo check in the dense regime.
	const n, b = 100000, 512
	g := rng.New(17)
	trials := 20
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		loads := make([]int, b)
		for i := 0; i < n; i++ {
			loads[g.Uint64n(b)]++
		}
		maxL := 0
		for _, l := range loads {
			if l > maxL {
				maxL = l
			}
		}
		sum += float64(maxL)
	}
	mc := sum / float64(trials)
	est := ExpectedMaxLoad(n, b)
	if ratio := est / mc; ratio < 0.85 || ratio > 1.25 {
		t.Errorf("dense ExpectedMaxLoad=%v vs MC=%v (ratio %v)", est, mc, ratio)
	}
}

func TestExpectedMaxLoadSparse(t *testing.T) {
	// n << b: expected max is small (around ln n / ln ln n); check it is
	// in a sane band via Monte Carlo.
	const n, b = 100, 10000
	g := rng.New(23)
	trials := 50
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		loads := make(map[uint64]int)
		maxL := 0
		for i := 0; i < n; i++ {
			k := g.Uint64n(b)
			loads[k]++
			if loads[k] > maxL {
				maxL = loads[k]
			}
		}
		sum += float64(maxL)
	}
	mc := sum / float64(trials)
	est := ExpectedMaxLoad(n, b)
	if est < 1 || est > mc*3 || mc > est*3 {
		t.Errorf("sparse ExpectedMaxLoad=%v vs MC=%v", est, mc)
	}
}

func TestExpectedMaxLoadEdgeCases(t *testing.T) {
	if got := ExpectedMaxLoad(0, 10); got != 0 {
		t.Errorf("n=0: %v", got)
	}
	if got := ExpectedMaxLoad(10, 0); got != 0 {
		t.Errorf("b=0: %v", got)
	}
	if got := ExpectedMaxLoad(37, 1); got != 37 {
		t.Errorf("b=1: %v, want 37", got)
	}
	if got := ExpectedMaxLoad(1, 100); got < 1 {
		t.Errorf("n=1: %v, want >= 1", got)
	}
}

func TestExpectedMaxLoadMonotone(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 1<<20; n *= 2 {
		v := ExpectedMaxLoad(n, 512)
		if v < prev {
			t.Errorf("ExpectedMaxLoad not monotone in n at %d: %v < %v", n, v, prev)
		}
		prev = v
	}
}

func TestPredictedSlowdownVsFlat(t *testing.T) {
	m := J90()
	n := 65536
	flat := Profile{N: n, Procs: 8, Banks: 512, MaxH: n / 8, MaxK: n / 512}
	if s := m.PredictedSlowdownVsFlat(flat); math.Abs(s-1) > 1e-9 {
		t.Errorf("flat slowdown = %v, want 1", s)
	}
	hot := flat
	hot.MaxK = n
	if s := m.PredictedSlowdownVsFlat(hot); s < 10 {
		t.Errorf("hot slowdown = %v, want large", s)
	}
}

func TestCyclesPerElement(t *testing.T) {
	if got := CyclesPerElement(8000, 1000, 8); got != 64 {
		t.Errorf("CyclesPerElement = %v, want 64", got)
	}
	if got := CyclesPerElement(100, 0, 8); got != 0 {
		t.Errorf("n=0: %v, want 0", got)
	}
}
