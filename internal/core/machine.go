// Package core implements the (d,x)-BSP model of Blelloch, Gibbons, Matias
// and Zagha (SPAA'95): Valiant's bulk-synchronous parallel (BSP) model
// extended with two memory-system parameters,
//
//   - d, the bank delay: the number of machine cycles between successive
//     accesses serviced by a single memory bank, and
//   - x, the expansion factor: the ratio of memory banks to processors.
//
// The model charges a superstep in which every processor issues at most h
// memory requests and every memory bank receives at most k requests
//
//	T = max(g*h, d*k) + L
//
// where g is the per-processor gap (inverse bandwidth) and L the
// latency/synchronization cost. The package provides the machine
// description, the cost law, contention profiles of access patterns, and
// predictors for bulk scatter/gather operations under both the plain BSP
// and the (d,x)-BSP accounting.
package core

import (
	"fmt"
	"math"
)

// Machine describes a high-bandwidth shared-memory multiprocessor in
// (d,x)-BSP terms. All times are in machine cycles.
type Machine struct {
	Name  string
	Procs int // p: number of processors
	Banks int // x*p: number of memory banks

	D float64 // bank delay: cycles a bank is busy per access
	G float64 // gap: cycles between request injections per processor
	L float64 // latency + synchronization cost per superstep

	// Sections is the number of network subsections banks are divided
	// into. Each section has limited aggregate bandwidth; congestion at a
	// section is the effect behind the paper's "version (c)" anomaly. A
	// value <= 1 means the network is a full crossbar with no section
	// bottleneck.
	Sections int

	// SectionGap is the number of cycles between successive requests that
	// a single section can accept. Only meaningful when Sections > 1.
	SectionGap float64
}

// Expansion returns x, the ratio of banks to processors.
func (m Machine) Expansion() float64 {
	if m.Procs == 0 {
		return 0
	}
	return float64(m.Banks) / float64(m.Procs)
}

// Validate reports whether the machine description is usable.
func (m Machine) Validate() error {
	switch {
	case m.Procs <= 0:
		return fmt.Errorf("core: machine %q: Procs must be positive, got %d", m.Name, m.Procs)
	case m.Banks <= 0:
		return fmt.Errorf("core: machine %q: Banks must be positive, got %d", m.Name, m.Banks)
	case m.D <= 0:
		return fmt.Errorf("core: machine %q: D must be positive, got %g", m.Name, m.D)
	case m.G <= 0:
		return fmt.Errorf("core: machine %q: G must be positive, got %g", m.Name, m.G)
	case m.L < 0:
		return fmt.Errorf("core: machine %q: L must be non-negative, got %g", m.Name, m.L)
	case m.Sections > 1 && m.SectionGap <= 0:
		return fmt.Errorf("core: machine %q: SectionGap must be positive when Sections > 1", m.Name)
	case m.Sections > m.Banks:
		return fmt.Errorf("core: machine %q: more sections (%d) than banks (%d)", m.Name, m.Sections, m.Banks)
	}
	return nil
}

// String implements fmt.Stringer.
func (m Machine) String() string {
	return fmt.Sprintf("%s{p=%d b=%d x=%.1f d=%g g=%g L=%g}",
		m.Name, m.Procs, m.Banks, m.Expansion(), m.D, m.G, m.L)
}

// SuperstepCost returns the (d,x)-BSP cost of a superstep in which the
// maximum number of requests issued by any processor is maxH and the
// maximum number of requests received by any bank is maxK.
func (m Machine) SuperstepCost(maxH, maxK int) float64 {
	return math.Max(m.G*float64(maxH), m.D*float64(maxK)) + m.L
}

// BSPCost returns the plain BSP cost of the same superstep: bank delay and
// expansion are ignored, so the cost is g*h + L regardless of how requests
// are distributed over banks. This is the baseline model whose mispredictions
// motivated the paper.
func (m Machine) BSPCost(maxH int) float64 {
	return m.G*float64(maxH) + m.L
}

// EffectiveBankGap returns d/x, the amortized cycles per request per
// processor imposed by the memory banks when requests are perfectly
// balanced. When d/x <= g the memory system keeps up with the processors.
func (m Machine) EffectiveBankGap() float64 {
	x := m.Expansion()
	if x == 0 {
		return math.Inf(1)
	}
	return m.D / x
}

// BandwidthMatched reports whether the aggregate bank bandwidth meets or
// exceeds the aggregate processor request bandwidth, i.e. x >= d/g.
func (m Machine) BandwidthMatched() bool {
	return m.Expansion() >= m.D/m.G
}

// ContentionCrossover returns the location contention k* at which a bulk
// operation of n requests on p processors switches from bandwidth-bound to
// contention-bound: g*(n/p) = d*k*. Patterns with maximum location
// contention below k* cost the same as contention-free ones; above it the
// cost grows linearly in the contention.
func (m Machine) ContentionCrossover(n int) float64 {
	return m.G * float64(n) / (float64(m.Procs) * m.D)
}

// WithExpansion returns a copy of m with the number of banks set to give
// expansion factor x (rounded to at least one bank). Used by the expansion
// sweep (experiment F6).
func (m Machine) WithExpansion(x float64) Machine {
	banks := int(math.Round(x * float64(m.Procs)))
	if banks < 1 {
		banks = 1
	}
	out := m
	out.Banks = banks
	out.Name = fmt.Sprintf("%s(x=%g)", m.Name, x)
	return out
}

// WithProcs returns a copy of m scaled to p processors, holding the
// expansion factor fixed.
func (m Machine) WithProcs(p int) Machine {
	x := m.Expansion()
	out := m
	out.Procs = p
	out.Banks = int(math.Round(x * float64(p)))
	if out.Banks < 1 {
		out.Banks = 1
	}
	return out
}
