package core

import (
	"math"
	"testing"
)

func TestBankUtilization(t *testing.T) {
	m := J90() // d=14, g=1, x=64
	want := 14.0 / 64.0
	if got := m.BankUtilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("ρ = %v, want %v", got, want)
	}
	if rho := (Machine{Procs: 1, Banks: 0}).BankUtilization(); !math.IsInf(rho, 1) {
		t.Errorf("zero banks ρ = %v", rho)
	}
}

func TestExpectedBankDelay(t *testing.T) {
	m := J90()
	w := m.ExpectedBankDelay()
	// Must exceed the bare service time but stay modest at ρ = 0.22.
	if w <= m.D || w > m.D*1.5 {
		t.Errorf("sojourn = %v for d=%v ρ=%.2f", w, m.D, m.BankUtilization())
	}
	// Saturated memory: infinite delay.
	sat := Machine{Procs: 8, Banks: 8, D: 14, G: 1} // ρ = 14
	if !math.IsInf(sat.ExpectedBankDelay(), 1) {
		t.Error("saturated bank delay should be +Inf")
	}
	// Delay grows with utilization.
	lo := Machine{Procs: 8, Banks: 1024, D: 8, G: 1}
	hi := Machine{Procs: 8, Banks: 128, D: 8, G: 1}
	if hi.ExpectedBankDelay() <= lo.ExpectedBankDelay() {
		t.Error("sojourn should grow with ρ")
	}
}

func TestPredictWindowedRegimes(t *testing.T) {
	m := J90()
	n := 1 << 14
	netDelay := 50.0
	open := m.PredictWindowed(n, 0, netDelay)
	// Huge window: same as open loop (bandwidth-bound).
	big := m.PredictWindowed(n, 1024, netDelay)
	if math.Abs(big-open)/open > 0.25 {
		t.Errorf("large window %v far from open loop %v", big, open)
	}
	// Window of 1 with 100-cycle round trip: latency-bound, ~roundTrip
	// per request per processor.
	one := m.PredictWindowed(n, 1, netDelay)
	wantPerReq := 2*netDelay + m.ExpectedBankDelay()
	want := wantPerReq * float64(n/m.Procs)
	if math.Abs(one-want)/want > 0.05 {
		t.Errorf("window=1: %v, want ≈ %v", one, want)
	}
	// Monotone: smaller windows never faster.
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 4, 16, 64, 1024} {
		v := m.PredictWindowed(n, w, netDelay)
		if v > prev*1.0001 {
			t.Errorf("window %d: %v slower than smaller window %v", w, v, prev)
		}
		prev = v
	}
}

// TestPredictWindowedSaturatedFinite pins the ρ >= 1 contract: the
// M/D/1 sojourn alone blows up to +Inf at saturation, but
// PredictWindowed clamps it to the drain bound D·E[max load], so the
// prediction stays finite and is floored by bank throughput.
func TestPredictWindowedSaturatedFinite(t *testing.T) {
	sat := Machine{Procs: 8, Banks: 8, D: 14, G: 1} // ρ = 14
	if !math.IsInf(sat.ExpectedBankDelay(), 1) {
		t.Fatal("precondition: saturated sojourn should be +Inf")
	}
	n := 1 << 12
	for _, w := range []int{1, 4, 64} {
		v := sat.PredictWindowed(n, w, 10)
		if math.IsInf(v, 1) || math.IsNaN(v) {
			t.Fatalf("w=%d: saturated prediction not finite: %v", w, v)
		}
		// Bank throughput floor still applies.
		if floor := sat.D * ExpectedMaxLoad(n, sat.Banks); v < floor {
			t.Errorf("w=%d: %v below bank-drain floor %v", w, v, floor)
		}
	}
}

// TestPredictWindowedZeroWindow pins w <= 0 as the open-loop escape:
// the plain superstep law with the balls-in-bins expected max load as
// the k term, independent of netDelay.
func TestPredictWindowedZeroWindow(t *testing.T) {
	m := J90()
	n := 1 << 14
	want := m.SuperstepCost(ceilDiv(n, m.Procs), int(math.Ceil(ExpectedMaxLoad(n, m.Banks))))
	for _, nd := range []float64{0, 50, 1000} {
		if got := m.PredictWindowed(n, 0, nd); got != want {
			t.Errorf("w=0 netDelay=%v: %v, want open-loop %v", nd, got, want)
		}
		if got := m.PredictWindowed(n, -3, nd); got != want {
			t.Errorf("w=-3 netDelay=%v: %v, want open-loop %v", nd, got, want)
		}
	}
}

// TestPredictWindowedZeroNetDelay: with no wire latency the round trip
// is just the bank sojourn, so a single-slot window costs ~sojourn per
// request — and never less than the pure issue-rate bound g·h + L.
func TestPredictWindowedZeroNetDelay(t *testing.T) {
	m := J90()
	n := 1 << 14
	h := float64(n / m.Procs)
	got := m.PredictWindowed(n, 1, 0)
	want := m.ExpectedBankDelay() * h
	if math.Abs(got-(want+m.L))/got > 0.05 {
		t.Errorf("w=1 netDelay=0: %v, want ≈ %v", got, want+m.L)
	}
	if floor := m.G*h + m.L; got < floor {
		t.Errorf("w=1 netDelay=0: %v below issue-rate floor %v", got, floor)
	}
}

func TestPredictWindowedMatchesSimulatorShape(t *testing.T) {
	// Cross-check against the event simulator: window=1 with latency
	// must land within 25% of the queueing-model prediction. (The
	// simulator lives in a higher package; this test validates only the
	// closed form's internal consistency with the fields it uses.)
	m := J90()
	m.L = 100 // netDelay = 50 each way in the simulator's default
	n := 1 << 10
	pred := m.PredictWindowed(n, 1, 50)
	// Serial round-trip reasoning: h requests, each ~ 100 + d + wait.
	h := float64(n / m.Procs)
	lower := h * (100 + m.D)
	if pred < lower {
		t.Errorf("windowed prediction %v below hard lower bound %v", pred, lower)
	}
}
