package core_test

import (
	"fmt"

	"dxbsp/internal/core"
)

// Describe a machine and query the model's headline quantities.
func ExampleMachine() {
	m := core.J90()
	fmt.Printf("expansion x = %.0f\n", m.Expansion())
	fmt.Printf("effective bank gap d/x = %.3f\n", m.EffectiveBankGap())
	fmt.Printf("bandwidth matched: %v\n", m.BandwidthMatched())
	// Output:
	// expansion x = 64
	// effective bank gap d/x = 0.219
	// bandwidth matched: true
}

// The superstep cost law: max(g*h, d*k) + L.
func ExampleMachine_SuperstepCost() {
	m := core.Machine{Name: "m", Procs: 8, Banks: 512, D: 14, G: 1, L: 100}
	fmt.Println(m.SuperstepCost(8192, 10))   // bandwidth-bound
	fmt.Println(m.SuperstepCost(8192, 4096)) // contention-bound
	// Output:
	// 8292
	// 57444
}

// Profile an access pattern and compare the two models' predictions.
func ExampleComputeProfile() {
	m := core.J90()
	// 16 requests: eight to location 0, eight spread out.
	addrs := []uint64{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}
	pt := core.NewPattern(addrs, m.Procs)
	prof := core.ComputeProfile(pt, core.InterleaveMap{Banks: m.Banks})
	fmt.Printf("h=%d k=%d κ=%d distinct=%d\n", prof.MaxH, prof.MaxK, prof.MaxLoc, prof.DistinctLocs)
	fmt.Printf("BSP=%.0f (d,x)-BSP=%.0f\n", m.PredictBSP(prof), m.PredictDXBSP(prof))
	// Output:
	// h=2 k=8 κ=8 distinct=9
	// BSP=2 (d,x)-BSP=112
}

// The contention crossover: where a scatter stops being bandwidth-bound.
func ExampleMachine_ContentionCrossover() {
	m := core.J90()
	fmt.Printf("k* = %.1f\n", m.ContentionCrossover(65536))
	// Output:
	// k* = 585.1
}
