package core

import "math"

// This file adds a steady-state queueing refinement to the max-based
// superstep law. The (d,x)-BSP charges max(g*h, d*k): exact for the two
// extremes (bandwidth-bound and one-hot-bank-bound) but blind to the
// *waiting time* requests experience at moderately loaded banks. For
// random patterns each bank is approximately an M/D/1 queue with
// deterministic service time d and arrival rate λ = p/(g*x*p) * ...
// = 1/(g*x) per bank per cycle times p processors' aggregate rate; the
// Pollaczek–Khinchine formula then gives the expected in-queue delay.
// The refinement matters for latency-bound machines (small issue windows,
// Tera-style multithreading) where per-request delay, not just
// throughput, sets performance.

// BankUtilization returns ρ, the steady-state utilization of each bank
// under a balanced random pattern: aggregate request rate p/g against
// aggregate service capacity x*p/d, so ρ = d/(g*x).
func (m Machine) BankUtilization() float64 {
	x := m.Expansion()
	if x == 0 {
		return math.Inf(1)
	}
	return m.D / (m.G * x)
}

// ExpectedBankDelay returns the expected per-request sojourn time (wait +
// service) at a bank under the M/D/1 approximation for a balanced random
// pattern: W = d + ρ*d/(2*(1-ρ)) by Pollaczek–Khinchine. It returns +Inf
// when the banks cannot keep up (ρ >= 1).
func (m Machine) ExpectedBankDelay() float64 {
	rho := m.BankUtilization()
	if rho >= 1 {
		return math.Inf(1)
	}
	return m.D + rho*m.D/(2*(1-rho))
}

// PredictWindowed estimates the completion time of n random requests when
// each processor keeps at most w outstanding (a closed-loop issue window,
// as on latency-hiding multithreaded machines): each request occupies its
// slot for a round trip of 2*netDelay + sojourn, so a processor sustains
// w/roundTrip requests per cycle, capped by the open-loop rate 1/g.
//
// This is the model behind the window ablation: for w*g >= roundTrip the
// window is invisible; below that the machine is latency-bound and the
// time inflates by roundTrip/(w*g).
//
// The per-request sojourn is the M/D/1 estimate clamped to the drain
// bound D*ExpectedMaxLoad(n, Banks): a request can never wait longer than
// the busiest bank's whole backlog, so the prediction stays finite even
// when BankUtilization() >= 1 and ExpectedBankDelay alone blows up to
// +Inf (for those machines the bank-throughput floor is the real cost,
// and it still applies below).
func (m Machine) PredictWindowed(n, w int, netDelay float64) float64 {
	if w <= 0 { // unlimited window: open loop
		return m.SuperstepCost(ceilDiv(n, m.Procs), int(math.Ceil(ExpectedMaxLoad(n, m.Banks))))
	}
	maxLoad := ExpectedMaxLoad(n, m.Banks)
	sojourn := m.ExpectedBankDelay()
	if drain := m.D * maxLoad; sojourn > drain {
		sojourn = drain
	}
	roundTrip := 2*netDelay + sojourn
	perReq := math.Max(m.G, roundTrip/float64(w))
	h := float64(ceilDiv(n, m.Procs))
	t := perReq * h
	// Bank throughput still floors the time.
	if floor := m.D * maxLoad; floor > t {
		t = floor
	}
	return t + m.L
}
