package core

import "math"

// This file holds the model predictors used by every experiment: given a
// machine and either a full contention profile or summary statistics, they
// return the predicted cycles for a bulk scatter/gather superstep under
// plain BSP accounting and under (d,x)-BSP accounting.

// PredictDXBSP returns the (d,x)-BSP predicted cycles for executing the
// profiled superstep: max(g*h, d*k) + L.
func (m Machine) PredictDXBSP(p Profile) float64 {
	return m.SuperstepCost(p.MaxH, p.MaxK)
}

// PredictBSP returns the plain BSP prediction g*h + L, which ignores banks
// entirely. Comparing this against PredictDXBSP and against simulation is
// the heart of Figure 1.
func (m Machine) PredictBSP(p Profile) float64 {
	return m.BSPCost(p.MaxH)
}

// PredictScatter returns the (d,x)-BSP prediction for a scatter of n
// requests with maximum location contention maxLoc, assuming locations are
// spread over banks as well as possible (no module-map contention): the
// per-bank load is then the larger of the contention at the hottest
// location and the balanced share with a random-mapping fluctuation term.
func (m Machine) PredictScatter(n, maxLoc int) float64 {
	h := ceilDiv(n, m.Procs)
	k := float64(maxLoc)
	if bal := ExpectedMaxLoad(n, m.Banks); bal > k {
		k = bal
	}
	return math.Max(m.G*float64(h), m.D*k) + m.L
}

// exactMaxLoadCutoff is the largest n for which ExpectedMaxLoad computes
// the balls-in-bins maximum exactly rather than approximating it. The
// exact path is O(n^2 log b) per candidate maximum, so the cutoff keeps
// the worst case (n = 64) under ~100k float operations.
const exactMaxLoadCutoff = 64

// exactMaxLoadRangeBits bounds the coefficient dynamic range (in bits)
// the exact path is allowed: the truncated-EGF polynomial q(z)^b has
// coefficients spanning ≈ n·log2(b) - log2(n!) binades, and each
// squaring in the binary exponentiation transiently doubles that span,
// so ranges past ~half the float64 exponent range (1074 bits incl.
// subnormals) underflow low coefficients to zero — and the zeros
// propagate upward until even [z^n] is lost. 500 bits keeps every
// coefficient alive with headroom; beyond it the Poisson union bound is
// near-exact anyway (it only triggers for n ≪ b).
const exactMaxLoadRangeBits = 500

// poissonSumMeanCutoff is the largest mean load n/b for which the
// Poisson union-bound sum is used; the sum walks O(mean) terms, so for
// extreme means the closed-form dense estimate takes over. The dense
// estimate's deviation term sqrt(2·mean·ln b) upper-bounds the union
// bound's at the seam, so the switch jumps (slightly) upward and
// monotonicity in n is preserved.
const poissonSumMeanCutoff = 1e4

// ExpectedMaxLoad approximates the expected maximum bank load when n
// requests to distinct locations are distributed independently and
// uniformly over b banks (the classical balls-in-bins maximum).
//
// The approximation switch-over points are explicit (this used to be a
// silent heuristic cut at n/b < 1, which overestimated the sparse regime
// near the n ≈ b boundary):
//
//   - n <= exactMaxLoadCutoff (64), when n·log2(b) - log2(n!) fits the
//     float64 exponent budget (exactMaxLoadRangeBits): exact.
//     E[max] = Σ_m P(max > m) with P(max <= m) computed from the
//     truncated exponential generating function,
//     P(max <= m) = n! b^-n [z^n] (Σ_{c<=m} z^c/c!)^b,
//     by binary exponentiation of the truncated polynomial.
//   - n/b <= poissonSumMeanCutoff: the Poisson union-bound sum — each
//     bank's load is ≈ Poisson(n/b), so
//     E[max] = Σ_{m>=1} P(max >= m) ≈ Σ_m min(1, b·P(Poisson(n/b) >= m)),
//     which is continuous and monotone in n across the whole sparse,
//     balanced, and moderately dense range (no seam at n/b = ln b).
//   - n/b > poissonSumMeanCutoff (extreme dense): the concentration
//     estimate n/b + sqrt(2 (n/b) ln b), as a performance escape.
//
// The tests validate every regime, and the switch-over boundaries
// themselves, against Monte Carlo simulation.
func ExpectedMaxLoad(n, b int) float64 {
	if n <= 0 || b <= 0 {
		return 0
	}
	if b == 1 {
		return float64(n)
	}
	if n <= exactMaxLoadCutoff {
		rangeBits := float64(n)*math.Log2(float64(b)) - lgamma(float64(n)+1)/math.Ln2
		if rangeBits <= exactMaxLoadRangeBits {
			return exactMaxLoad(n, b)
		}
	}
	mean := float64(n) / float64(b)
	if mean > poissonSumMeanCutoff {
		return mean + math.Sqrt(2*mean*math.Log(float64(b)))
	}
	return poissonTailMaxLoad(mean, float64(b))
}

// exactMaxLoad computes E[max load] exactly for n balls in b bins:
// E[max] = Σ_{m>=0} (1 - P(max <= m)), with the CDF from the truncated
// EGF product. Polynomials are kept in scaled form (coefficients times
// 2^scale) so intermediate values neither underflow nor overflow for any
// b; the loop stops once the survival probability is negligible.
func exactMaxLoad(n, b int) float64 {
	e := 0.0
	for m := 1; m <= n; m++ {
		p := maxLoadCDF(n, b, m-1) // P(max <= m-1)
		e += 1 - p
		if 1-p < 1e-12 {
			break
		}
	}
	return math.Max(e, 1)
}

// maxLoadCDF returns P(max load <= m) for n balls in b bins, exactly:
// n! b^-n [z^n] q(z)^b with q(z) = Σ_{c=0..m} z^c / c!.
func maxLoadCDF(n, b, m int) float64 {
	if m <= 0 {
		// All bins hold at most 0 balls: only possible with no balls.
		if n == 0 {
			return 1
		}
		return 0
	}
	if m >= n {
		return 1
	}
	// q(z) = Σ_{c<=m} z^c/c!, truncated to degree n.
	deg := n
	q := make([]float64, deg+1)
	for c := 0; c <= m && c <= deg; c++ {
		q[c] = 1 / factorial(c)
	}
	// r = q^b by binary exponentiation, with a power-of-two scale factor
	// carried separately to keep coefficients in float range.
	r := []float64{1}
	rScale := 0
	base, baseScale := q, 0
	for e := b; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = polyMulTrunc(r, base, deg)
			rScale += baseScale
			r, rScale = polyRenorm(r, rScale)
		}
		if e > 1 {
			base = polyMulTrunc(base, base, deg)
			baseScale *= 2
			base, baseScale = polyRenorm(base, baseScale)
		}
	}
	if deg >= len(r) {
		return 0
	}
	// P = n! b^-n r[n] 2^rScale, assembled in log2 space.
	if r[deg] <= 0 {
		return 0
	}
	log2p := math.Log2(r[deg]) + float64(rScale) +
		(lgamma(float64(n)+1)-float64(n)*math.Log(float64(b)))/math.Ln2
	p := math.Exp2(log2p)
	if p > 1 {
		p = 1
	}
	return p
}

// polyMulTrunc multiplies two polynomials, truncating to degree deg.
func polyMulTrunc(a, b []float64, deg int) []float64 {
	n := len(a) + len(b) - 1
	if n > deg+1 {
		n = deg + 1
	}
	out := make([]float64, n)
	for i, ai := range a {
		if ai == 0 || i >= n {
			continue
		}
		for j, bj := range b {
			if i+j >= n {
				break
			}
			out[i+j] += ai * bj
		}
	}
	return out
}

// polyRenorm rescales a polynomial's coefficients by a power of two so the
// largest magnitude sits near 1, accumulating the shift into scale.
func polyRenorm(p []float64, scale int) ([]float64, int) {
	maxC := 0.0
	for _, c := range p {
		if a := math.Abs(c); a > maxC {
			maxC = a
		}
	}
	if maxC == 0 {
		return p, scale
	}
	shift := int(math.Round(math.Log2(maxC)))
	if shift == 0 {
		return p, scale
	}
	f := math.Exp2(float64(-shift))
	for i := range p {
		p[i] *= f
	}
	return p, scale + shift
}

func factorial(c int) float64 {
	f := 1.0
	for i := 2; i <= c; i++ {
		f *= float64(i)
	}
	return f
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// poissonTailMaxLoad estimates E[max load] for n = mean·b balls in b
// bins: each bin's load is ≈ Poisson(mean), so
// P(max >= m) <= min(1, b·P(Poisson(mean) >= m)) by the union bound, and
// E[max] = Σ_{m>=1} P(max >= m) is summed with that cap. The union bound
// is tight wherever exceedances of the running threshold are rare, which
// is exactly where the cap stops saturating; the sum is continuous and
// monotone in n with no seam anywhere in its range (it replaced a
// heuristic that overshot near the n ≈ b boundary and a separate dense
// branch that was discontinuous at n/b = ln b).
//
// The pmf recurrence is anchored at the mode ⌊mean⌋ rather than at zero
// so that e^-mean never underflows for large means. Terms below the mode
// need no tail at all: P(Poisson >= m) >= 1/2 there, so with b >= 2 the
// capped term is exactly 1.
func poissonTailMaxLoad(mean, b float64) float64 {
	mode := int(mean)
	var lp0 float64 // log pmf at the mode
	if mode == 0 {
		lp0 = -mean
	} else {
		lp0 = -mean + float64(mode)*math.Log(mean) - lgamma(float64(mode)+1)
	}
	p0 := math.Exp(lp0)
	// cdf = P(Poisson <= mode), summed downward from the mode.
	cdf := p0
	pmf := p0
	for j := mode; j >= 1; j-- {
		pmf *= float64(j) / mean
		cdf += pmf
		if pmf < 1e-18 {
			break
		}
	}
	e := float64(mode) // terms m = 1..mode: b·tail >= b/2 >= 1, capped at 1
	tail := 1 - cdf    // P(Poisson >= mode+1)
	pmf = p0
	for m := mode + 1; ; m++ {
		term := b * tail
		if term > 1 {
			term = 1
		}
		e += term
		if term < 1e-9 || tail <= 0 {
			return math.Max(e, 1)
		}
		pmf *= mean / float64(m) // P(Poisson = m)
		tail -= pmf              // P(Poisson >= m+1)
	}
}

// PredictedSlowdownVsFlat returns the ratio of the (d,x)-BSP prediction for
// the profiled pattern to the prediction for a perfectly flat pattern of
// the same size (contention-free, balanced banks). Values near 1 mean
// contention is immaterial; large values quantify the contention penalty.
func (m Machine) PredictedSlowdownVsFlat(p Profile) float64 {
	flat := Profile{
		N:     p.N,
		Procs: p.Procs,
		Banks: p.Banks,
		MaxH:  ceilDiv(p.N, p.Procs),
		MaxK:  ceilDiv(p.N, p.Banks),
	}
	f := m.PredictDXBSP(flat)
	if f == 0 {
		return math.Inf(1)
	}
	return m.PredictDXBSP(p) / f
}

// CyclesPerElement converts a total cycle count for an n-element bulk
// operation into the per-element figure the paper's graphs plot (clock
// cycles per element per processor would be cycles*p/n; the paper plots
// per-element wall cycles times p, i.e. processor-cycles per element).
func CyclesPerElement(cycles float64, n, p int) float64 {
	if n == 0 {
		return 0
	}
	return cycles * float64(p) / float64(n)
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
