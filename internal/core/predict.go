package core

import "math"

// This file holds the model predictors used by every experiment: given a
// machine and either a full contention profile or summary statistics, they
// return the predicted cycles for a bulk scatter/gather superstep under
// plain BSP accounting and under (d,x)-BSP accounting.

// PredictDXBSP returns the (d,x)-BSP predicted cycles for executing the
// profiled superstep: max(g*h, d*k) + L.
func (m Machine) PredictDXBSP(p Profile) float64 {
	return m.SuperstepCost(p.MaxH, p.MaxK)
}

// PredictBSP returns the plain BSP prediction g*h + L, which ignores banks
// entirely. Comparing this against PredictDXBSP and against simulation is
// the heart of Figure 1.
func (m Machine) PredictBSP(p Profile) float64 {
	return m.BSPCost(p.MaxH)
}

// PredictScatter returns the (d,x)-BSP prediction for a scatter of n
// requests with maximum location contention maxLoc, assuming locations are
// spread over banks as well as possible (no module-map contention): the
// per-bank load is then the larger of the contention at the hottest
// location and the balanced share with a random-mapping fluctuation term.
func (m Machine) PredictScatter(n, maxLoc int) float64 {
	h := ceilDiv(n, m.Procs)
	k := float64(maxLoc)
	if bal := ExpectedMaxLoad(n, m.Banks); bal > k {
		k = bal
	}
	return math.Max(m.G*float64(h), m.D*k) + m.L
}

// ExpectedMaxLoad approximates the expected maximum bank load when n
// requests to distinct locations are distributed independently and
// uniformly over b banks (the classical balls-in-bins maximum).
//
// Three regimes, with the standard asymptotics:
//   - dense (n/b >> ln b):    n/b + sqrt(2*(n/b)*ln b)
//   - balanced (n ≈ b ln b):  Θ(ln b)
//   - sparse (n << b):        ln n / ln ln n scale
//
// The dense formula with a floor of the sparse/balanced estimate is a good
// working approximation for every regime the experiments touch, and the
// tests validate it against Monte Carlo simulation.
func ExpectedMaxLoad(n, b int) float64 {
	if n <= 0 || b <= 0 {
		return 0
	}
	if b == 1 {
		return float64(n)
	}
	mean := float64(n) / float64(b)
	lnB := math.Log(float64(b))
	dense := mean + math.Sqrt(2*mean*lnB)
	// Sparse regime: maximum of b bins with n balls is about
	// ln(b) / ln(b/n * ln(b)) for n < b (from the Poisson tail).
	if mean < 1 {
		ratio := lnB / math.Max(math.Log(lnB/mean), 1e-9)
		sparse := math.Max(1, ratio)
		if sparse > dense {
			return sparse
		}
	}
	if dense < 1 {
		dense = 1
	}
	return dense
}

// PredictedSlowdownVsFlat returns the ratio of the (d,x)-BSP prediction for
// the profiled pattern to the prediction for a perfectly flat pattern of
// the same size (contention-free, balanced banks). Values near 1 mean
// contention is immaterial; large values quantify the contention penalty.
func (m Machine) PredictedSlowdownVsFlat(p Profile) float64 {
	flat := Profile{
		N:     p.N,
		Procs: p.Procs,
		Banks: p.Banks,
		MaxH:  ceilDiv(p.N, p.Procs),
		MaxK:  ceilDiv(p.N, p.Banks),
	}
	f := m.PredictDXBSP(flat)
	if f == 0 {
		return math.Inf(1)
	}
	return m.PredictDXBSP(p) / f
}

// CyclesPerElement converts a total cycle count for an n-element bulk
// operation into the per-element figure the paper's graphs plot (clock
// cycles per element per processor would be cycles*p/n; the paper plots
// per-element wall cycles times p, i.e. processor-cycles per element).
func CyclesPerElement(cycles float64, n, p int) float64 {
	if n == 0 {
		return 0
	}
	return cycles * float64(p) / float64(n)
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
