package core

import (
	"math"
	"testing"
)

func TestFromMachine(t *testing.T) {
	m := J90()
	lp := FromMachine(m, 2)
	if err := lp.Validate(); err != nil {
		t.Fatal(err)
	}
	if lp.D != m.D || lp.P != m.Procs || lp.O != 2 {
		t.Errorf("FromMachine = %+v", lp)
	}
	if lp.Banks() != m.Banks {
		t.Errorf("Banks = %d, want %d", lp.Banks(), m.Banks)
	}
}

func TestDXLogPValidate(t *testing.T) {
	good := DXLogP{L: 10, O: 1, G: 1, P: 8, D: 6, X: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DXLogP{
		{L: 10, O: 1, G: 1, P: 0, D: 6, X: 64},
		{L: 10, O: 1, G: 0, P: 8, D: 6, X: 64},
		{L: 10, O: 1, G: 1, P: 8, D: 0, X: 64},
		{L: 10, O: 1, G: 1, P: 8, D: 6, X: 0},
		{L: -1, O: 1, G: 1, P: 8, D: 6, X: 64},
		{L: 10, O: -1, G: 1, P: 8, D: 6, X: 64},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad[%d] accepted: %+v", i, m)
		}
	}
}

func TestBanksRounding(t *testing.T) {
	m := DXLogP{G: 1, D: 1, X: 0.01, P: 8}
	if got := m.Banks(); got != 1 {
		t.Errorf("tiny X Banks = %d, want 1", got)
	}
}

func TestMessageCost(t *testing.T) {
	m := DXLogP{L: 10, O: 2, G: 1, P: 8, D: 6, X: 64}
	if got := m.MessageCost(); got != 2*2+10+6 {
		t.Errorf("MessageCost = %v", got)
	}
}

func TestBulkCostRegimes(t *testing.T) {
	m := DXLogP{L: 10, O: 2, G: 1, P: 8, D: 6, X: 64}
	// Processor-bound: per-message pace is max(o,g)=2.
	if got, want := m.BulkCost(1000, 10), 2.0*1000+10+4; got != want {
		t.Errorf("processor-bound = %v, want %v", got, want)
	}
	// Bank-bound.
	if got, want := m.BulkCost(10, 1000), 6.0*1000+10+4; got != want {
		t.Errorf("bank-bound = %v, want %v", got, want)
	}
	// Plain LogP never sees the bank term.
	if got, want := m.LogPBulkCost(10), 2.0*10+10+4; got != want {
		t.Errorf("LogP = %v, want %v", got, want)
	}
	if m.LogPBulkCost(10) >= m.BulkCost(10, 1000) {
		t.Error("LogP should underpredict the contended phase")
	}
}

func TestBulkCostProfileAgreesWithBSPShape(t *testing.T) {
	// With o=0 the (d,x)-LogP bulk cost reduces to the (d,x)-BSP cost.
	mach := J90()
	lp := FromMachine(mach, 0)
	prof := Profile{N: 1 << 14, Procs: 8, Banks: 512, MaxH: 2048, MaxK: 4096}
	got := lp.BulkCostProfile(prof)
	want := mach.PredictDXBSP(prof)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("o=0 (d,x)-LogP %v != (d,x)-BSP %v", got, want)
	}
}
