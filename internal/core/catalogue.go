package core

// This file holds the machine catalogue behind Table 1 of the paper
// ("memory systems with many more memory banks than processors") and the
// two simulated experiment configurations.
//
// The catalogue values (processor counts, bank counts, bank busy times) are
// representative figures from the public literature on these machines; the
// paper's exact table cells are not recoverable from the captured text, so
// treat the absolute entries as reconstructions. The property the table
// exists to demonstrate — expansion factors far above 1, and bank delays
// well above the processor cycle — holds for every entry.

// Catalogue returns the machines of Table 1: vector and multithreaded
// supercomputers whose memory systems provide many more banks than
// processors. D is the bank busy time in processor clocks; G and L are
// nominal single-figure values used only for model illustrations.
func Catalogue() []Machine {
	return []Machine{
		{Name: "Cray X-MP", Procs: 4, Banks: 64, D: 4, G: 1, L: 100},
		{Name: "Cray Y-MP", Procs: 8, Banks: 256, D: 5, G: 1, L: 100},
		{Name: "Cray C90", Procs: 16, Banks: 1024, D: 6, G: 1, L: 100},
		{Name: "Cray J90", Procs: 32, Banks: 1024, D: 14, G: 1, L: 100},
		{Name: "Cray T90", Procs: 32, Banks: 1024, D: 4, G: 1, L: 100},
		{Name: "NEC SX-3", Procs: 4, Banks: 1024, D: 8, G: 1, L: 100},
		{Name: "Convex C4", Procs: 4, Banks: 128, D: 8, G: 1, L: 100},
		{Name: "Tera MTA", Procs: 256, Banks: 512, D: 2, G: 1, L: 100},
	}
}

// C90 returns the simulated stand-in for the 8-processor Cray C90 the
// paper's experiments ran on at the Pittsburgh Supercomputing Center:
// SRAM banks with delay 6, a large expansion factor, and (per the paper)
// negligible L relative to the experiment sizes.
func C90() Machine {
	return Machine{
		Name:       "C90",
		Procs:      8,
		Banks:      1024,
		D:          6,
		G:          1,
		L:          0,
		Sections:   8,
		SectionGap: 0.5,
	}
}

// J90 returns the simulated stand-in for the dedicated 8-processor Cray
// J90 used for most of the paper's graphs: DRAM banks with delay 14.
func J90() Machine {
	return Machine{
		Name:       "J90",
		Procs:      8,
		Banks:      512,
		D:          14,
		G:          1,
		L:          0,
		Sections:   8,
		SectionGap: 0.5,
	}
}

// LookupMachine returns the catalogue or experiment machine with the given
// name, or false if none matches. Matching is exact.
func LookupMachine(name string) (Machine, bool) {
	switch name {
	case "C90":
		return C90(), true
	case "J90":
		return J90(), true
	}
	for _, m := range Catalogue() {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}
