package core

import (
	"math"
	"strings"
	"testing"
)

func TestExpansion(t *testing.T) {
	m := Machine{Procs: 8, Banks: 512}
	if x := m.Expansion(); x != 64 {
		t.Errorf("Expansion() = %v, want 64", x)
	}
	if x := (Machine{}).Expansion(); x != 0 {
		t.Errorf("zero machine Expansion() = %v, want 0", x)
	}
}

func TestValidate(t *testing.T) {
	good := Machine{Name: "m", Procs: 4, Banks: 16, D: 2, G: 1, L: 0}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid machine rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Machine)
	}{
		{"no procs", func(m *Machine) { m.Procs = 0 }},
		{"negative procs", func(m *Machine) { m.Procs = -1 }},
		{"no banks", func(m *Machine) { m.Banks = 0 }},
		{"zero delay", func(m *Machine) { m.D = 0 }},
		{"zero gap", func(m *Machine) { m.G = 0 }},
		{"negative latency", func(m *Machine) { m.L = -1 }},
		{"sections without gap", func(m *Machine) { m.Sections = 4; m.SectionGap = 0 }},
		{"more sections than banks", func(m *Machine) { m.Sections = 32; m.SectionGap = 1 }},
	}
	for _, tc := range cases {
		m := good
		tc.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestSuperstepCost(t *testing.T) {
	m := Machine{Procs: 8, Banks: 64, D: 6, G: 1, L: 100}
	// Bandwidth-bound: g*h dominates.
	if got := m.SuperstepCost(1000, 10); got != 1000+100 {
		t.Errorf("bandwidth-bound cost = %v, want 1100", got)
	}
	// Contention-bound: d*k dominates.
	if got := m.SuperstepCost(10, 1000); got != 6000+100 {
		t.Errorf("contention-bound cost = %v, want 6100", got)
	}
	// BSP ignores k entirely.
	if got := m.BSPCost(10); got != 110 {
		t.Errorf("BSPCost = %v, want 110", got)
	}
}

func TestEffectiveBankGap(t *testing.T) {
	m := Machine{Procs: 8, Banks: 512, D: 14, G: 1}
	want := 14.0 / 64.0
	if got := m.EffectiveBankGap(); math.Abs(got-want) > 1e-12 {
		t.Errorf("EffectiveBankGap = %v, want %v", got, want)
	}
	if !m.BandwidthMatched() {
		t.Error("x=64 >= d/g=14 should be bandwidth matched")
	}
	low := Machine{Procs: 8, Banks: 32, D: 14, G: 1} // x = 4 < 14
	if low.BandwidthMatched() {
		t.Error("x=4 < d/g=14 should NOT be bandwidth matched")
	}
}

func TestContentionCrossover(t *testing.T) {
	m := J90() // p=8, d=14, g=1
	n := 65536
	want := float64(n) / (8 * 14)
	if got := m.ContentionCrossover(n); math.Abs(got-want) > 1e-9 {
		t.Errorf("crossover = %v, want %v", got, want)
	}
	// Sanity: patterns with contention below crossover cost the same as flat.
	kBelow := int(want / 2)
	kAbove := int(want * 4)
	h := n / m.Procs
	if m.SuperstepCost(h, kBelow) != m.BSPCost(h) {
		t.Error("below crossover, (d,x)-BSP should equal BSP")
	}
	if m.SuperstepCost(h, kAbove) <= m.BSPCost(h) {
		t.Error("above crossover, (d,x)-BSP should exceed BSP")
	}
}

func TestWithExpansion(t *testing.T) {
	m := C90()
	for _, x := range []float64{1, 2, 6, 64, 128} {
		mx := m.WithExpansion(x)
		if got := mx.Expansion(); math.Abs(got-x) > 0.01 {
			t.Errorf("WithExpansion(%v).Expansion() = %v", x, got)
		}
		if mx.D != m.D || mx.Procs != m.Procs {
			t.Errorf("WithExpansion changed d or p: %+v", mx)
		}
	}
	// Tiny expansion never yields zero banks.
	if got := m.WithExpansion(0.0001).Banks; got < 1 {
		t.Errorf("WithExpansion(0.0001).Banks = %d, want >= 1", got)
	}
}

func TestWithProcs(t *testing.T) {
	m := C90()
	m2 := m.WithProcs(4)
	if m2.Procs != 4 {
		t.Fatalf("Procs = %d", m2.Procs)
	}
	if math.Abs(m2.Expansion()-m.Expansion()) > 0.01 {
		t.Errorf("expansion changed: %v -> %v", m.Expansion(), m2.Expansion())
	}
}

func TestCatalogueExpansionsExceedOne(t *testing.T) {
	for _, m := range Catalogue() {
		if err := m.Validate(); err != nil {
			t.Errorf("catalogue machine invalid: %v", err)
		}
		if m.Expansion() <= 1 {
			t.Errorf("%s: expansion %v <= 1; Table 1's premise is banks >> processors", m.Name, m.Expansion())
		}
	}
}

func TestExperimentMachines(t *testing.T) {
	c, j := C90(), J90()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.D != 6 {
		t.Errorf("C90 delay = %v, want 6 (SRAM)", c.D)
	}
	if j.D != 14 {
		t.Errorf("J90 delay = %v, want 14 (DRAM)", j.D)
	}
	if c.Procs != 8 || j.Procs != 8 {
		t.Error("experiment machines are 8-processor systems")
	}
}

func TestLookupMachine(t *testing.T) {
	if m, ok := LookupMachine("J90"); !ok || m.D != 14 {
		t.Errorf("LookupMachine(J90) = %+v, %v", m, ok)
	}
	if m, ok := LookupMachine("Tera MTA"); !ok || m.Procs != 256 {
		t.Errorf("LookupMachine(Tera MTA) = %+v, %v", m, ok)
	}
	if _, ok := LookupMachine("ENIAC"); ok {
		t.Error("LookupMachine(ENIAC) should fail")
	}
}

func TestMachineString(t *testing.T) {
	s := J90().String()
	for _, want := range []string{"J90", "p=8", "d=14"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
