package core

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

func TestNewPatternRoundRobin(t *testing.T) {
	addrs := []uint64{0, 1, 2, 3, 4, 5, 6}
	pt := NewPattern(addrs, 3)
	if pt.Procs() != 3 {
		t.Fatalf("Procs = %d", pt.Procs())
	}
	if pt.N() != 7 {
		t.Fatalf("N = %d", pt.N())
	}
	wantLens := []int{3, 2, 2}
	for i, w := range wantLens {
		if len(pt.PerProc[i]) != w {
			t.Errorf("proc %d got %d addrs, want %d", i, len(pt.PerProc[i]), w)
		}
	}
	if pt.PerProc[0][0] != 0 || pt.PerProc[1][0] != 1 || pt.PerProc[2][0] != 2 {
		t.Errorf("round-robin order wrong: %v", pt.PerProc)
	}
}

func TestNewPatternBlocked(t *testing.T) {
	addrs := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	pt := NewPatternBlocked(addrs, 4)
	for i := 0; i < 4; i++ {
		if len(pt.PerProc[i]) != 2 {
			t.Fatalf("proc %d len %d", i, len(pt.PerProc[i]))
		}
	}
	if pt.PerProc[0][0] != 10 || pt.PerProc[3][1] != 17 {
		t.Errorf("blocked layout wrong: %v", pt.PerProc)
	}
}

func TestNewPatternEmptyAndPanics(t *testing.T) {
	pt := NewPattern(nil, 4)
	if pt.N() != 0 || pt.Procs() != 4 {
		t.Errorf("empty pattern: N=%d procs=%d", pt.N(), pt.Procs())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p=0")
		}
	}()
	NewPattern([]uint64{1}, 0)
}

func TestFlattenPreservesMultiset(t *testing.T) {
	g := rng.New(42)
	addrs := make([]uint64, 1000)
	for i := range addrs {
		addrs[i] = g.Uint64n(100)
	}
	pt := NewPattern(addrs, 7)
	flat := pt.Flatten()
	if len(flat) != len(addrs) {
		t.Fatalf("Flatten length %d, want %d", len(flat), len(addrs))
	}
	count := map[uint64]int{}
	for _, a := range addrs {
		count[a]++
	}
	for _, a := range flat {
		count[a]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("multiset mismatch at %d: %d", k, v)
		}
	}
}

func TestProfileAllSameLocation(t *testing.T) {
	// n requests all to address 17: κ = n, one hot bank with k = n.
	n, p := 64, 8
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = 17
	}
	pt := NewPattern(addrs, p)
	prof := ComputeProfile(pt, InterleaveMap{Banks: 32})
	if prof.MaxLoc != n {
		t.Errorf("MaxLoc = %d, want %d", prof.MaxLoc, n)
	}
	if prof.MaxK != n {
		t.Errorf("MaxK = %d, want %d", prof.MaxK, n)
	}
	if prof.MaxH != n/p {
		t.Errorf("MaxH = %d, want %d", prof.MaxH, n/p)
	}
	if prof.DistinctLocs != 1 {
		t.Errorf("DistinctLocs = %d, want 1", prof.DistinctLocs)
	}
	if prof.MaxKDistinct != 1 {
		t.Errorf("MaxKDistinct = %d, want 1", prof.MaxKDistinct)
	}
}

func TestProfileUnitStride(t *testing.T) {
	// Unit stride over exactly banks*r addresses: perfectly balanced.
	banks, r, p := 16, 4, 4
	n := banks * r
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i)
	}
	prof := ComputeProfile(NewPattern(addrs, p), InterleaveMap{Banks: banks})
	if prof.MaxK != r {
		t.Errorf("MaxK = %d, want %d", prof.MaxK, r)
	}
	if prof.MaxLoc != 1 {
		t.Errorf("MaxLoc = %d, want 1", prof.MaxLoc)
	}
	if prof.DistinctLocs != n {
		t.Errorf("DistinctLocs = %d, want %d", prof.DistinctLocs, n)
	}
}

func TestProfileBankStride(t *testing.T) {
	// Stride = banks: all distinct locations but all in bank 0.
	banks := 8
	n := 32
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(i * banks)
	}
	prof := ComputeProfile(NewPattern(addrs, 4), InterleaveMap{Banks: banks})
	if prof.MaxLoc != 1 {
		t.Errorf("MaxLoc = %d, want 1 (all distinct)", prof.MaxLoc)
	}
	if prof.MaxK != n {
		t.Errorf("MaxK = %d, want %d (all same bank)", prof.MaxK, n)
	}
	if prof.MaxKDistinct != n {
		t.Errorf("MaxKDistinct = %d, want %d", prof.MaxKDistinct, n)
	}
}

func TestProfileCompactMatches(t *testing.T) {
	g := rng.New(9)
	addrs := make([]uint64, 500)
	for i := range addrs {
		addrs[i] = g.Uint64n(1000)
	}
	pt := NewPattern(addrs, 8)
	bm := InterleaveMap{Banks: 64}
	full := ComputeProfile(pt, bm)
	compact := ComputeProfileCompact(pt, bm)
	if full.MaxK != compact.MaxK || full.MaxLoc != compact.MaxLoc ||
		full.MaxH != compact.MaxH || full.DistinctLocs != compact.DistinctLocs {
		t.Errorf("compact profile differs: %+v vs %+v", full, compact)
	}
	if compact.BankLoads != nil {
		t.Error("compact profile retained BankLoads")
	}
}

func TestLoadPercentile(t *testing.T) {
	prof := Profile{BankLoads: []int{5, 1, 3, 2, 4}}
	if got := prof.LoadPercentile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := prof.LoadPercentile(1); got != 5 {
		t.Errorf("p100 = %d, want 5", got)
	}
	if got := prof.LoadPercentile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
}

func TestLocationSpectrum(t *testing.T) {
	// 4 copies of addr 1, 2 copies of addr 2, 1 copy each of 3 and 4.
	addrs := []uint64{1, 1, 1, 1, 2, 2, 3, 4}
	sp := LocationSpectrum(NewPattern(addrs, 2))
	if sp[4] != 1 || sp[2] != 1 || sp[1] != 2 {
		t.Errorf("spectrum = %v", sp)
	}
	if len(LocationSpectrum(NewPattern(nil, 2))) != 0 {
		t.Error("empty pattern should have empty spectrum")
	}
	// Spectrum mass equals distinct locations; weighted mass equals n.
	total, weighted := 0, 0
	for c, cnt := range sp {
		total += cnt
		weighted += c * cnt
	}
	if total != 4 || weighted != 8 {
		t.Errorf("mass = %d/%d", total, weighted)
	}
}

// Property: profile invariants hold for arbitrary random patterns.
func TestProfileInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%2000) + 1
		m := uint64(mRaw%1000) + 1
		g := rng.New(seed)
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = g.Uint64n(m)
		}
		pt := NewPattern(addrs, 8)
		prof := ComputeProfile(pt, InterleaveMap{Banks: 64})
		// Invariants from the definitions:
		// κ <= k <= n; h = ceil(n/p); distinct <= n; k >= ceil(n/banks).
		if prof.MaxLoc > prof.MaxK || prof.MaxK > n {
			return false
		}
		if prof.MaxH != (n+7)/8 {
			return false
		}
		if prof.DistinctLocs > n || prof.DistinctLocs < 1 {
			return false
		}
		if prof.MaxK < (n+63)/64 {
			return false
		}
		if prof.MaxKDistinct > prof.DistinctLocs {
			return false
		}
		// Bank loads sum to n.
		sum := 0
		for _, k := range prof.BankLoads {
			sum += k
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
