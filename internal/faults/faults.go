// Package faults injects deterministic failures into the simulation layer
// for chaos testing the experiment engine. An Injector wraps any
// experiments.SimRunner and, at configurable rates, panics, returns
// transient errors, delays, or cancels requests, and corrupts checkpoint
// journal records on their way to disk.
//
// Every decision is a pure function of (seed, simulation key, call number
// for that key), never of wall-clock time or goroutine scheduling, so a
// chaos run is reproducible for any worker count: the same simulations
// fault in the same way no matter which worker issues them. By default a
// key faults only on its first call (Repeat = 1), so a retried point
// always converges — which is what makes the engine's byte-identical
// output guarantee testable under fault injection.
package faults

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/rng"
	"dxbsp/internal/runner"
	"dxbsp/internal/sim"
)

// Spec configures the injector: per-call fault rates (fractions in [0, 1];
// panic+error+delay+cancel must not exceed 1), the journal corruption
// rate, and the repetition budget.
type Spec struct {
	// Seed drives every fault decision.
	Seed uint64
	// Panic is the rate of injected panics (permanent failures: the point
	// is footnoted, not retried).
	Panic float64
	// Error is the rate of injected transient errors.
	Error float64
	// Delay is the rate of injected delays (up to MaxDelay; the request
	// then succeeds — this exercises point timeouts).
	Delay float64
	// Cancel is the rate of injected cancellations: the request runs under
	// an already-cancelled context, so the simulator's cancellation polling
	// aborts it mid-run and the engine sees a transient failure.
	Cancel float64
	// Corrupt is the rate of checkpoint-journal record corruption (applied
	// by CorruptRecord, independent of the call-level rates).
	Corrupt float64
	// Torn is the rate of torn checkpoint-journal writes: the record is
	// truncated mid-line on its way to disk, as if the process died with
	// the write half-flushed. Applied by CorruptRecord alongside Corrupt;
	// the journal's checksum must turn both into recomputes.
	Torn float64
	// MaxDelay bounds injected delays. Defaults to 2ms.
	MaxDelay time.Duration
	// Repeat is the maximum number of faulting calls per simulation key.
	// Values < 1 mean the default of 1: a key faults at most once, so a
	// retry always succeeds.
	Repeat int

	// KillAfter, when positive, is process-level chaos: after that many
	// checkpoint-journal appends the process SIGKILLs itself — a
	// deterministic stand-in for `kill -9` mid-sweep. Wire it up via
	// KillOnAppend; only sweep workers and chaos harnesses should.
	KillAfter int
	// StallHeartbeat is process-level chaos for the distributed sweep: the
	// worker claims leases but never renews them, so the coordinator must
	// reclaim its ranges even though the process is still alive.
	StallHeartbeat bool
}

func (s Spec) maxDelay() time.Duration {
	if s.MaxDelay <= 0 {
		return 2 * time.Millisecond
	}
	return s.MaxDelay
}

func (s Spec) repeat() int {
	if s.Repeat < 1 {
		return 1
	}
	return s.Repeat
}

// Validate checks the rates.
func (s Spec) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"panic", s.Panic}, {"error", s.Error}, {"delay", s.Delay}, {"cancel", s.Cancel}, {"corrupt", s.Corrupt}, {"torn", s.Torn}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %g outside [0, 1]", r.name, r.v)
		}
	}
	if sum := s.Panic + s.Error + s.Delay + s.Cancel; sum > 1 {
		return fmt.Errorf("faults: call fault rates sum to %g > 1", sum)
	}
	if sum := s.Corrupt + s.Torn; sum > 1 {
		return fmt.Errorf("faults: record fault rates sum to %g > 1", sum)
	}
	if s.KillAfter < 0 {
		return fmt.Errorf("faults: kill count %d negative", s.KillAfter)
	}
	return nil
}

// ParseSpec parses a -chaos specification: either a bare rate ("0.1",
// shorthand for error=0.1) or comma-separated k=v pairs with keys panic,
// error, delay, cancel, corrupt, torn (rates), seed (uint), maxdelay
// (duration), repeat (int), and the process-level keys kill (SIGKILL self
// after N journal appends) and stallhb (1: claim sweep leases but never
// renew them). Example: "error=0.1,cancel=0.05,seed=7".
func ParseSpec(arg string) (Spec, error) {
	var s Spec
	arg = strings.TrimSpace(arg)
	if arg == "" {
		return s, fmt.Errorf("faults: empty spec")
	}
	if v, err := strconv.ParseFloat(arg, 64); err == nil {
		s.Error = v
		return s, s.Validate()
	}
	for _, field := range strings.Split(arg, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return s, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		var err error
		switch k {
		case "panic", "error", "delay", "cancel", "corrupt", "torn":
			var rate float64
			if rate, err = strconv.ParseFloat(v, 64); err == nil {
				switch k {
				case "panic":
					s.Panic = rate
				case "error":
					s.Error = rate
				case "delay":
					s.Delay = rate
				case "cancel":
					s.Cancel = rate
				case "corrupt":
					s.Corrupt = rate
				case "torn":
					s.Torn = rate
				}
			}
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		case "maxdelay":
			s.MaxDelay, err = time.ParseDuration(v)
		case "repeat":
			s.Repeat, err = strconv.Atoi(v)
		case "kill":
			s.KillAfter, err = strconv.Atoi(v)
		case "stallhb":
			var b bool
			if b, err = strconv.ParseBool(v); err == nil {
				s.StallHeartbeat = b
			}
		default:
			return s, fmt.Errorf("faults: unknown key %q", k)
		}
		if err != nil {
			return s, fmt.Errorf("faults: bad value for %s: %v", k, err)
		}
	}
	return s, s.Validate()
}

// Error is an injected failure. It declares itself transient so the
// runner's retry policy re-executes the point (classification is
// structural — see internal/runner's IsTransient).
type Error struct {
	// Kind is "error" or "cancel".
	Kind string
	// Key identifies the faulted simulation.
	Key string
	// Err is the underlying cause, if any (the context error for cancels).
	Err error
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("injected %s fault", e.Kind)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *Error) Unwrap() error   { return e.Err }
func (e *Error) Transient() bool { return true }

// Panic is the value thrown by an injected panic fault; the runner's
// point guard recovers it into a permanent *runner.PanicError.
type Panic struct{ Key string }

func (p Panic) String() string { return "injected panic fault" }

// Stats counts injected faults by kind.
type Stats struct {
	Panics, Errors, Delays, Cancels, Corrupted, Torn uint64
}

// Total returns the number of injected faults of all kinds.
func (s Stats) Total() uint64 {
	return s.Panics + s.Errors + s.Delays + s.Cancels + s.Corrupted + s.Torn
}

// String renders the nonzero counters, e.g. "errors=3 cancels=1".
func (s Stats) String() string {
	parts := []string{}
	for _, c := range []struct {
		name string
		v    uint64
	}{{"panics", s.Panics}, {"errors", s.Errors}, {"delays", s.Delays}, {"cancels", s.Cancels}, {"corrupted", s.Corrupted}, {"torn", s.Torn}} {
		if c.v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c.name, c.v))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Injector wraps a SimRunner with deterministic fault injection. Create
// with New; safe for concurrent use.
type Injector struct {
	spec   Spec
	next   experiments.SimRunner
	events *runner.EventLog

	mu    sync.Mutex
	calls map[string]int // per-key call count
	shots map[string]int // per-key injected fault count

	panics, errors, delays, cancels, corrupted, torn atomic.Uint64
}

// New returns an injector that forwards to next (sim.RunContext when nil)
// and logs fault_injected events to events (which may be nil).
func New(spec Spec, next experiments.SimRunner, events *runner.EventLog) *Injector {
	return &Injector{
		spec:   spec,
		next:   next,
		events: events,
		calls:  map[string]int{},
		shots:  map[string]int{},
	}
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Panics:    in.panics.Load(),
		Errors:    in.errors.Load(),
		Delays:    in.delays.Load(),
		Cancels:   in.cancels.Load(),
		Corrupted: in.corrupted.Load(),
		Torn:      in.torn.Load(),
	}
}

// Spec returns the injector's configuration — sweep workers read the
// process-level knobs (KillAfter, StallHeartbeat) from it.
func (in *Injector) Spec() Spec { return in.spec }

// KillOnAppend is the checkpoint journal's OnAppend hook for kill-worker
// chaos: once the process has journaled KillAfter results it SIGKILLs
// itself — no deferred cleanup, no lease release, exactly the crash the
// coordinator's reclaim path must absorb. A no-op unless KillAfter > 0.
func (in *Injector) KillOnAppend(appended uint64) {
	if in.spec.KillAfter <= 0 || appended < uint64(in.spec.KillAfter) {
		return
	}
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		os.Exit(137)
	}
	in.events.Emit(runner.Event{Type: "fault_injected", Fault: "kill"})
	_ = p.Kill()
	// Kill is asynchronous on some platforms; make death certain.
	select {}
}

// draw maps (seed, key, call#) to a uniform value in [0, 1).
func draw(seed uint64, key string, call int) float64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	var buf [8]byte
	for b := 0; b < 8; b++ {
		buf[b] = byte(uint64(call) >> (8 * b))
	}
	h.Write(buf[:])
	r := rng.NewSplitMix64(seed ^ h.Sum64()).Next()
	return float64(r>>11) / float64(uint64(1)<<53)
}

// decide returns the fault kind for this call of key ("" for none) and
// records it against the key's repetition budget.
func (in *Injector) decide(key string) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	call := in.calls[key]
	in.calls[key]++
	if in.shots[key] >= in.spec.repeat() {
		return ""
	}
	u := draw(in.spec.Seed, key, call)
	kind := ""
	for _, c := range []struct {
		name string
		rate float64
	}{{"panic", in.spec.Panic}, {"error", in.spec.Error}, {"delay", in.spec.Delay}, {"cancel", in.spec.Cancel}} {
		if u < c.rate {
			kind = c.name
			break
		}
		u -= c.rate
	}
	if kind != "" {
		in.shots[key]++
	}
	return kind
}

// RunSim implements experiments.SimRunner, injecting at most one fault
// per call before (or instead of) forwarding downstream.
func (in *Injector) RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	key, ok := runner.SimKey(cfg, pt)
	if !ok {
		// Uncacheable requests share one budget; none exist in the suite.
		key = "unkeyed"
	}
	kind := in.decide(key)
	if kind != "" {
		in.events.Emit(runner.Event{Type: "fault_injected", Fault: kind})
	}
	switch kind {
	case "panic":
		in.panics.Add(1)
		panic(Panic{Key: key})
	case "error":
		in.errors.Add(1)
		return sim.Result{}, &Error{Kind: "error", Key: key}
	case "delay":
		in.delays.Add(1)
		// Deterministic duration; the sleep itself races the caller's
		// deadline, which is the point — it exercises point timeouts.
		frac := draw(in.spec.Seed^0xde1a9, key, 0)
		select {
		case <-time.After(time.Duration(frac * float64(in.spec.maxDelay()))):
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
	case "cancel":
		in.cancels.Add(1)
		// Run under an already-cancelled sub-context so the simulator's
		// cancellation polling aborts mid-run. Small simulations may finish
		// before the first poll; a completed result is returned as-is.
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		res, err := in.forward(cctx, cfg, pt)
		if err != nil && ctx.Err() == nil {
			return sim.Result{}, &Error{Kind: "cancel", Key: key, Err: err}
		}
		return res, err
	}
	return in.forward(ctx, cfg, pt)
}

func (in *Injector) forward(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	if in.next != nil {
		return in.next.RunSim(ctx, cfg, pt)
	}
	return sim.RunContext(ctx, cfg, pt)
}

// CorruptRecord is the checkpoint journal's Corrupt hook: at the spec's
// corrupt rate (decided deterministically from the record content) it
// overwrites a span of bytes mid-record, and at the torn rate it
// truncates the record mid-line as a died-while-flushing write. Either
// way the journal's checksum must catch it on resume.
func (in *Injector) CorruptRecord(line []byte) []byte {
	if (in.spec.Corrupt <= 0 && in.spec.Torn <= 0) || len(line) == 0 {
		return line
	}
	h := fnv.New64a()
	h.Write(line)
	u := float64(rng.NewSplitMix64(in.spec.Seed^h.Sum64()^0xc0440).Next()>>11) / float64(uint64(1)<<53)
	if u < in.spec.Corrupt {
		in.corrupted.Add(1)
		out := append([]byte(nil), line...)
		start := len(out) / 3
		for i := start; i < start+8 && i < len(out); i++ {
			out[i] = 'X'
		}
		return out
	}
	if u < in.spec.Corrupt+in.spec.Torn {
		in.torn.Add(1)
		// Keep a strict prefix: the record loses its checksum field and
		// closing brace, exactly what a half-flushed append leaves behind.
		return append([]byte(nil), line[:len(line)*3/5]...)
	}
	return line
}
