package faults

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/runner"
	"dxbsp/internal/sim"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("0.25")
	if err != nil || s.Error != 0.25 {
		t.Errorf("bare rate: %+v, %v", s, err)
	}
	s, err = ParseSpec("panic=0.1,error=0.2,delay=0.05,cancel=0.02,corrupt=0.3,seed=42,maxdelay=5ms,repeat=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Panic: 0.1, Error: 0.2, Delay: 0.05, Cancel: 0.02, Corrupt: 0.3,
		Seed: 42, MaxDelay: 5 * time.Millisecond, Repeat: 2}
	if s != want {
		t.Errorf("spec = %+v, want %+v", s, want)
	}
	for _, bad := range []string{"", "nonsense", "bogus=1", "error=x", "error=1.5", "panic=0.6,error=0.6", "seed=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// Injected errors must classify as transient for the runner's retry
// policy; injected panics must surface as permanent PanicErrors.
func TestErrorClassification(t *testing.T) {
	if !runner.IsTransient(&Error{Kind: "error"}) {
		t.Error("injected fault not transient")
	}
	wrapped := &runner.PointError{Err: &Error{Kind: "cancel", Err: context.Canceled}}
	if !runner.IsTransient(wrapped) {
		t.Error("wrapped injected fault not transient")
	}
}

func testSim() (sim.Config, core.Pattern) {
	cfg := sim.Config{Machine: core.Machine{Name: "t", Procs: 4, Banks: 32, D: 4, G: 1, L: 8}}
	return cfg, core.NewPattern(patterns.Uniform(4096, 1<<20, rng.New(1)), 4)
}

// With rate 1 and the default repeat budget, a key faults exactly once:
// the first call fails, every later call succeeds. That is the property
// that makes retried chaos runs converge.
func TestFaultsAtMostOncePerKey(t *testing.T) {
	cfg, pt := testSim()
	in := New(Spec{Error: 1, Seed: 9}, nil, nil)
	if _, err := in.RunSim(context.Background(), cfg, pt); err == nil {
		t.Fatal("first call did not fault")
	} else {
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != "error" {
			t.Fatalf("unexpected error %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := in.RunSim(context.Background(), cfg, pt); err != nil {
			t.Fatalf("call %d after the fault failed: %v", i+2, err)
		}
	}
	if st := in.Stats(); st.Errors != 1 || st.Total() != 1 {
		t.Errorf("stats = %+v, want exactly one fault", st)
	}
}

// The injected panic carries the sentinel value the runner's guard
// recovers into a PanicError.
func TestPanicFault(t *testing.T) {
	cfg, pt := testSim()
	in := New(Spec{Panic: 1}, nil, nil)
	defer func() {
		v := recover()
		if _, ok := v.(Panic); !ok {
			t.Errorf("recovered %v (%T), want faults.Panic", v, v)
		}
	}()
	in.RunSim(context.Background(), cfg, pt)
	t.Error("no panic injected")
}

// A cancel fault aborts the simulation mid-flight via the simulator's own
// polling and reports a transient error; the parent context stays live.
func TestCancelFault(t *testing.T) {
	cfg, pt := testSim()
	in := New(Spec{Cancel: 1}, nil, nil)
	ctx := context.Background()
	_, err := in.RunSim(ctx, cfg, pt)
	if err == nil {
		t.Skip("simulation finished before the first cancellation poll")
	}
	if !runner.IsTransient(err) {
		t.Errorf("cancel fault %v not transient", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancel fault %v does not wrap context.Canceled", err)
	}
	if ctx.Err() != nil {
		t.Error("parent context was cancelled")
	}
	if _, err := in.RunSim(ctx, cfg, pt); err != nil {
		t.Errorf("retry after cancel fault failed: %v", err)
	}
}

// A delay fault sleeps, then the request succeeds unchanged.
func TestDelayFault(t *testing.T) {
	cfg, pt := testSim()
	clean, err := sim.Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Spec{Delay: 1, MaxDelay: time.Millisecond}, nil, nil)
	got, err := in.RunSim(context.Background(), cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	if got != clean {
		t.Errorf("delayed result %+v differs from clean %+v", got, clean)
	}
	if st := in.Stats(); st.Delays != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// Fault decisions depend only on (seed, key, call number): two injectors
// with the same spec agree call for call, regardless of the interleaving
// of other keys.
func TestDecisionsDeterministic(t *testing.T) {
	spec := Spec{Error: 0.5, Seed: 123, Repeat: 1000}
	keys := []string{"a", "b", "c", "d"}
	record := func(order []string) map[string][]bool {
		in := New(spec, nil, nil)
		out := map[string][]bool{}
		for _, k := range order {
			out[k] = append(out[k], in.decide(k) != "")
		}
		return out
	}
	var interleaved, grouped []string
	for call := 0; call < 16; call++ {
		for _, k := range keys {
			interleaved = append(interleaved, k)
		}
	}
	for _, k := range keys {
		for call := 0; call < 16; call++ {
			grouped = append(grouped, k)
		}
	}
	a, b := record(interleaved), record(grouped)
	for _, k := range keys {
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				t.Fatalf("key %s call %d: decision depends on interleaving", k, i)
			}
		}
	}
}

// End-to-end chaos determinism at the engine level: a transient-fault
// chaos run renders byte-identical output to the fault-free run for every
// worker count.
func TestChaosRunDeterministic(t *testing.T) {
	e, ok := experiments.Lookup("F2")
	if !ok {
		t.Fatal("F2 missing")
	}
	cfg := experiments.QuickConfig()
	baseRunner := &runner.Runner{Parallel: 1, Cache: runner.NewCache()}
	baseRes, err := baseRunner.RunExperiment(context.Background(), e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var base strings.Builder
	baseRes.Output.Render(&base)

	for _, workers := range []int{1, 4, 8} {
		cache := runner.NewCache()
		cache.Next = New(Spec{Error: 0.2, Cancel: 0.1, Delay: 0.1, Seed: 7}, nil, nil)
		r := &runner.Runner{
			Parallel: workers,
			Cache:    cache,
			Retry:    runner.RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Microsecond},
			Degraded: true,
		}
		res, err := r.RunExperiment(context.Background(), e, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.Failed != 0 {
			t.Fatalf("workers=%d: %d points failed under transient-only chaos", workers, res.Stats.Failed)
		}
		var out strings.Builder
		res.Output.Render(&out)
		if out.String() != base.String() {
			t.Errorf("workers=%d: chaos output differs from fault-free baseline", workers)
		}
	}
}

// Concurrent callers must not corrupt the injector's bookkeeping (run
// with -race in CI's chaos job).
func TestInjectorConcurrent(t *testing.T) {
	cfg, pt := testSim()
	in := New(Spec{Error: 0.5, Seed: 3}, nil, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				in.RunSim(context.Background(), cfg, pt)
			}
		}()
	}
	wg.Wait()
	if st := in.Stats(); st.Total() > 32 {
		t.Errorf("more faults than calls: %+v", st)
	}
}

// CorruptRecord at rate 1 must damage the record so the journal checksum
// rejects it on reload — never silently serve corrupted data.
func TestCorruptRecordCaughtByJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := runner.OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Spec{Corrupt: 1, Seed: 11}, nil, nil)
	j.Corrupt = in.CorruptRecord
	cfg, pt := testSim()
	res, err := sim.Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := runner.SimKey(cfg, pt)
	if !ok {
		t.Fatal("unkeyable test sim")
	}
	j.Append(key, res)
	j.Close()
	if in.Stats().Corrupted != 1 {
		t.Fatalf("stats = %+v, want 1 corrupted", in.Stats())
	}

	var warn strings.Builder
	j2, err := runner.OpenJournal(dir, true, &warn)
	if err != nil {
		t.Fatalf("resume from corrupted journal was fatal: %v", err)
	}
	defer j2.Close()
	if _, ok := j2.Lookup(key); ok {
		t.Error("corrupted record served as a hit")
	}
	if j2.Stats().Skipped != 1 {
		t.Errorf("stats = %+v, want 1 skipped", j2.Stats())
	}
	if !strings.Contains(warn.String(), "skipping") {
		t.Errorf("no warning:\n%s", warn.String())
	}
}

// The process-level chaos knobs parse and validate like the rates do.
func TestParseSpecProcessChaos(t *testing.T) {
	s, err := ParseSpec("torn=0.2,kill=5,stallhb=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Torn: 0.2, KillAfter: 5, StallHeartbeat: true}
	if s != want {
		t.Errorf("spec = %+v, want %+v", s, want)
	}
	for _, bad := range []string{"torn=1.5", "torn=-0.1", "corrupt=0.6,torn=0.6", "kill=-1", "kill=x", "stallhb=maybe"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// A torn record — truncated mid-line as if the process died while the
// write was half-flushed — must be skipped on resume, never served.
func TestTornRecordCaughtByJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := runner.OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Spec{Torn: 1, Seed: 11}, nil, nil)
	j.Corrupt = in.CorruptRecord
	cfg, pt := testSim()
	res, err := sim.Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	key, ok := runner.SimKey(cfg, pt)
	if !ok {
		t.Fatal("unkeyable test sim")
	}
	j.Append(key, res)
	j.Close()
	if in.Stats().Torn != 1 {
		t.Fatalf("stats = %+v, want 1 torn", in.Stats())
	}

	var warn strings.Builder
	j2, err := runner.OpenJournal(dir, true, &warn)
	if err != nil {
		t.Fatalf("resume from torn journal was fatal: %v", err)
	}
	defer j2.Close()
	if _, ok := j2.Lookup(key); ok {
		t.Error("torn record served as a hit")
	}
	if j2.Stats().Skipped != 1 {
		t.Errorf("stats = %+v, want 1 skipped", j2.Stats())
	}
	if !strings.Contains(warn.String(), "offset") {
		t.Errorf("warning does not name the record offset:\n%s", warn.String())
	}
}

// KillOnAppend below the threshold is a no-op — the counterpart above the
// threshold SIGKILLs the process, which the dxbench helper-process test
// covers; it cannot run in-process.
func TestKillOnAppendBelowThreshold(t *testing.T) {
	in := New(Spec{KillAfter: 3}, nil, nil)
	in.KillOnAppend(1)
	in.KillOnAppend(2)
	off := New(Spec{}, nil, nil)
	off.KillOnAppend(1 << 30) // KillAfter unset: never kills
}

// The injector logs fault_injected events.
func TestFaultEvents(t *testing.T) {
	var log strings.Builder
	cfg, pt := testSim()
	in := New(Spec{Error: 1}, nil, runner.NewEventLog(&log))
	in.RunSim(context.Background(), cfg, pt)
	if !strings.Contains(log.String(), `"fault_injected"`) || !strings.Contains(log.String(), `"fault":"error"`) {
		t.Errorf("event log:\n%s", log.String())
	}
}

var _ experiments.SimRunner = (*Injector)(nil)
