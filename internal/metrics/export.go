package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file renders snapshots in two machine-readable shapes: OpenMetrics
// text (the Prometheus exposition superset) and JSON lines-of-series.
// Both emit samples in snapshot order (sorted by series id) and format
// floats with one shared routine, so equal snapshots produce equal bytes.

// FormatValue renders a float the way both exporters do: shortest
// round-trippable decimal, with the OpenMetrics spellings of the
// non-finite values.
func FormatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value for OpenMetrics: backslash,
// double quote and newline have escape sequences; everything else passes
// through (the format is UTF-8).
func escapeLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline only (quotes are
// legal in help strings).
func escapeHelp(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// SanitizeName maps an arbitrary string onto the OpenMetrics metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*; invalid runes become '_' and an
// empty or digit-led name gains a '_' prefix.
func SanitizeName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if i == 0 && r >= '0' && r <= '9' {
				b.WriteByte('_')
			}
			r = '_'
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// labelBlock renders {k="v",...} with extra appended last, or "" when
// there is nothing to render.
func labelBlock(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = SanitizeName(l.Key) + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteOpenMetrics renders the samples as OpenMetrics text, ending with
// the mandatory "# EOF" terminator. Series of the same family (equal
// names, differing labels) share one HELP/TYPE header.
func WriteOpenMetrics(w io.Writer, samples []Sample) error {
	var b strings.Builder
	lastFamily := ""
	for _, s := range samples {
		name := SanitizeName(s.Name)
		if name != lastFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(s.Help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, s.Kind)
			lastFamily = name
		}
		switch s.Kind {
		case KindCounter:
			fmt.Fprintf(&b, "%s_total%s %s\n", name, labelBlock(s.Labels), FormatValue(s.Value))
		case KindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", name, labelBlock(s.Labels), FormatValue(s.Value))
		case KindHistogram:
			cum := uint64(0)
			for i, c := range s.Buckets {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = FormatValue(s.Bounds[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, labelBlock(s.Labels, Label{"le", le}), cum)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", name, labelBlock(s.Labels), FormatValue(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", name, labelBlock(s.Labels), s.Count)
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the samples as one JSON document. The document is
// assembled by hand rather than encoding/json so that (a) series order is
// the deterministic snapshot order, and (b) ±Inf and NaN — which JSON
// number syntax cannot express — render as the same strings the
// OpenMetrics exporter uses.
func WriteJSON(w io.Writer, samples []Sample) error {
	var b strings.Builder
	b.WriteString("{\n  \"metrics\": [")
	for i, s := range samples {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n    {")
		fmt.Fprintf(&b, "\"name\": %s, \"kind\": %s", jsonString(s.Name), jsonString(s.Kind.String()))
		if len(s.Labels) > 0 {
			b.WriteString(", \"labels\": {")
			for j, l := range s.Labels {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s: %s", jsonString(l.Key), jsonString(l.Value))
			}
			b.WriteString("}")
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(&b, ", \"value\": %s", jsonNumber(s.Value))
		case KindHistogram:
			b.WriteString(", \"buckets\": [")
			for j, c := range s.Buckets {
				if j > 0 {
					b.WriteString(", ")
				}
				le := "+Inf"
				if j < len(s.Bounds) {
					le = FormatValue(s.Bounds[j])
				}
				fmt.Fprintf(&b, "{\"le\": %q, \"count\": %d}", le, c)
			}
			fmt.Fprintf(&b, "], \"sum\": %s, \"count\": %d", jsonNumber(s.Sum), s.Count)
		}
		b.WriteString("}")
	}
	b.WriteString("\n  ]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonNumber renders v as a JSON number, or as a quoted string for the
// non-finite values JSON cannot express.
func jsonNumber(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return `"` + FormatValue(v) + `"`
	}
	return FormatValue(v)
}

// jsonString renders s as a JSON string literal. Go's %q is not JSON
// (it emits \x escapes for control bytes and invalid UTF-8), so this
// routes through encoding/json, which replaces invalid UTF-8 with U+FFFD
// and uses \u escapes.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return `""`
	}
	return string(b)
}
