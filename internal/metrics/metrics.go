// Package metrics is the observability core: a small, allocation-free
// registry of counters, gauges and histograms with deterministic snapshot
// and export (JSON and OpenMetrics text).
//
// Design constraints, in order:
//
//   - The update path (Add, Inc, Set, SetMax, Observe) performs zero
//     allocations and takes no locks: every instrument is a fixed set of
//     atomics. Callers hold on to the instrument handle; get-or-create
//     goes through the registry's mutex exactly once per instrument.
//   - Snapshots are deterministic: instruments are emitted sorted by
//     (name, label fingerprint) regardless of registration or update
//     order, and float rendering goes through one shared formatter, so
//     two runs that record the same values export the same bytes.
//   - Wall-clock-derived instruments are marked Volatile at creation.
//     Snapshot(false) excludes them, which is what lets `dxbench
//     -metrics` promise byte-identical output for any -parallel worker
//     count: everything it exports is a pure function of the simulated
//     work, not of scheduling.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument types in snapshots.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the OpenMetrics type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name/value pair attached to an instrument.
type Label struct {
	Key, Value string
}

// Opt configures an instrument at creation.
type Opt func(*instrument)

// WithLabels attaches labels. Two instruments with the same name and
// different labels are distinct series of the same metric family.
func WithLabels(labels ...Label) Opt {
	return func(in *instrument) { in.labels = append(in.labels, labels...) }
}

// Volatile marks an instrument whose value depends on wall-clock time or
// scheduling (latencies, utilization, cache traffic under contention).
// Volatile instruments are excluded from deterministic snapshots.
func Volatile() Opt {
	return func(in *instrument) { in.volatile = true }
}

// instrument is the registry's record of one series.
type instrument struct {
	name     string
	help     string
	kind     Kind
	labels   []Label
	volatile bool

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// id returns the series identity: name plus label fingerprint.
func (in *instrument) id() string {
	if len(in.labels) == 0 {
		return in.name
	}
	s := in.name + "{"
	for i, l := range in.labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + "=" + l.Value
	}
	return s + "}"
}

// Registry holds a set of named instruments. The zero value is not
// usable; create with NewRegistry. Safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*instrument)}
}

// get returns the instrument for id, creating it with mk when absent. It
// panics when the same series was previously registered as another kind —
// that is a programming error, not a runtime condition.
func (r *Registry) get(name, help string, kind Kind, opts []Opt, mk func(*instrument)) *instrument {
	probe := &instrument{name: name, help: help, kind: kind}
	for _, o := range opts {
		o(probe)
	}
	sort.SliceStable(probe.labels, func(i, j int) bool { return probe.labels[i].Key < probe.labels[j].Key })
	id := probe.id()

	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byID[id]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", id, in.kind, kind))
		}
		return in
	}
	mk(probe)
	r.byID[id] = probe
	return probe
}

// Counter returns (creating if needed) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, opts ...Opt) *Counter {
	in := r.get(name, help, KindCounter, opts, func(in *instrument) { in.counter = &Counter{} })
	return in.counter
}

// Gauge returns (creating if needed) a gauge.
func (r *Registry) Gauge(name, help string, opts ...Opt) *Gauge {
	in := r.get(name, help, KindGauge, opts, func(in *instrument) { in.gauge = &Gauge{} })
	return in.gauge
}

// Histogram returns (creating if needed) a histogram with the given
// ascending upper bucket bounds. An implicit +Inf bucket is always
// appended. Bounds are fixed at creation; a second call for the same
// series returns the existing histogram and ignores the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64, opts ...Opt) *Histogram {
	in := r.get(name, help, KindHistogram, opts, func(in *instrument) { in.hist = newHistogram(bounds) })
	return in.hist
}

// Counter is a float64 counter with an atomic, allocation-free Add.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v. Negative or NaN deltas are ignored:
// counters are monotone by contract.
func (c *Counter) Add(v float64) {
	if !(v > 0) { // also rejects NaN
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 gauge with atomic Set/SetMax/Add.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax raises the gauge to v if v is larger (high-water-mark use).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if !(v > math.Float64frombits(old)) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Add increases (or with negative v, decreases) the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with ascending upper
// bounds, plus an implicit +Inf overflow bucket. NaN observations are
// counted (in count and the +Inf bucket) but excluded from sum, so a
// stray NaN cannot poison the aggregate.
type Histogram struct {
	bounds  []float64 // ascending; excludes the +Inf bucket
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (NaN: len, the +Inf bucket)
	h.buckets[i].Add(1)
	h.count.Add(1)
	if !math.IsNaN(v) {
		for {
			old := h.sumBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + v)
			if h.sumBits.CompareAndSwap(old, next) {
				return
			}
		}
	}
}

// Sample is the exported state of one series at snapshot time.
type Sample struct {
	Name     string
	Help     string
	Kind     Kind
	Labels   []Label
	Volatile bool

	// Value is the counter or gauge value; unused for histograms.
	Value float64

	// Histogram state: Bounds are the finite upper bounds, Buckets the
	// per-bucket (non-cumulative) counts with the +Inf overflow last.
	Bounds  []float64
	Buckets []uint64
	Sum     float64
	Count   uint64
}

// Snapshot returns the registry's state sorted by series id, excluding
// volatile instruments unless includeVolatile is set. The result is a
// deep copy: later updates do not affect it.
func (r *Registry) Snapshot(includeVolatile bool) []Sample {
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.byID))
	for _, in := range r.byID {
		if in.volatile && !includeVolatile {
			continue
		}
		ins = append(ins, in)
	}
	r.mu.Unlock()

	sort.Slice(ins, func(i, j int) bool { return ins[i].id() < ins[j].id() })
	out := make([]Sample, 0, len(ins))
	for _, in := range ins {
		s := Sample{Name: in.name, Help: in.help, Kind: in.kind, Volatile: in.volatile,
			Labels: append([]Label(nil), in.labels...)}
		switch in.kind {
		case KindCounter:
			s.Value = in.counter.Value()
		case KindGauge:
			s.Value = in.gauge.Value()
		case KindHistogram:
			h := in.hist
			s.Bounds = append([]float64(nil), h.bounds...)
			s.Buckets = make([]uint64, len(h.buckets))
			for i := range h.buckets {
				s.Buckets[i] = h.buckets[i].Load()
			}
			s.Sum = math.Float64frombits(h.sumBits.Load())
			s.Count = h.count.Load()
		}
		out = append(out, s)
	}
	return out
}
