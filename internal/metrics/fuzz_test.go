package metrics

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzOpenMetricsEncoder throws arbitrary metric names, label pairs and
// values (including ±Inf and NaN via bit patterns) at the exporters and
// checks the structural invariants the consumers rely on:
//
//   - every exposition line is either a comment or `name[{labels}] value`
//     with a parseable value and balanced, properly escaped quotes;
//   - label values round-trip through the escaper;
//   - the text ends with the mandatory "# EOF";
//   - the JSON exporter's output is valid JSON for the same snapshot.
func FuzzOpenMetricsEncoder(f *testing.F) {
	f.Add("req_total", "component", "bank", 1.5)
	f.Add("weird name", "k", `quote"backslash\`, math.Inf(1))
	f.Add("", "", "newline\nin label", math.Inf(-1))
	f.Add("0digit", "le", "+Inf", math.NaN())
	f.Add("a:b", "k", "v,w=x", -0.0)
	f.Add("h", "k", "\x00\xff", 1e308)

	f.Fuzz(func(t *testing.T, name, lkey, lval string, value float64) {
		r := NewRegistry()
		r.Counter(name, "fuzzed help\nwith newline", WithLabels(Label{lkey, lval})).Add(value)
		r.Gauge(name+"_g", "g").Set(value)
		h := r.Histogram(name+"_h", "h", []float64{1, value})
		h.Observe(value)
		snap := r.Snapshot(false)

		var om strings.Builder
		if err := WriteOpenMetrics(&om, snap); err != nil {
			t.Fatal(err)
		}
		checkExposition(t, om.String())

		var js strings.Builder
		if err := WriteJSON(&js, snap); err != nil {
			t.Fatal(err)
		}
		var doc map[string]interface{}
		if err := json.Unmarshal([]byte(js.String()), &doc); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, js.String())
		}
	})
}

// checkExposition validates the line grammar of an OpenMetrics text
// exposition.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("empty line in exposition:\n%s", out)
		}
		if strings.HasPrefix(line, "# ") {
			continue
		}
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name := rest[:i]
			checkMetricName(t, name, line)
			body, ok := cutLabelBlock(rest[i:])
			if !ok {
				t.Fatalf("unbalanced label block in %q", line)
			}
			rest = body
		} else {
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				t.Fatalf("no value on line %q", line)
			}
			checkMetricName(t, rest[:sp], line)
			rest = rest[sp:]
		}
		val := strings.TrimSpace(rest)
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			// ParseFloat accepts +Inf/-Inf/NaN, so anything failing here
			// is a genuinely malformed value (histogram counts parse as
			// integers, which ParseFloat also accepts).
			t.Fatalf("unparseable value %q on line %q: %v", val, line, err)
		}
	}
}

func checkMetricName(t *testing.T, name, line string) {
	t.Helper()
	if name == "" {
		t.Fatalf("empty metric name on line %q", line)
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			t.Fatalf("invalid rune %q in metric name %q (line %q)", r, name, line)
		}
	}
}

// cutLabelBlock consumes a {k="v",...} block (honoring escapes inside
// quoted values) and returns what follows it.
func cutLabelBlock(s string) (rest string, ok bool) {
	if len(s) == 0 || s[0] != '{' {
		return "", false
	}
	inQuotes := false
	for i := 1; i < len(s); i++ {
		c := s[i]
		if inQuotes {
			switch c {
			case '\\':
				i++ // skip escaped rune
			case '"':
				inQuotes = false
			case '\n':
				return "", false // raw newline inside a label value
			}
			continue
		}
		switch c {
		case '"':
			inQuotes = true
		case '}':
			return s[i+1:], true
		}
	}
	return "", false
}
