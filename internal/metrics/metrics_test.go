package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs", "requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-1)         // ignored: counters are monotone
	c.Add(math.NaN()) // ignored
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value = %g, want 3.5", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(4)
	g.SetMax(2) // no-op
	g.SetMax(9)
	g.Add(1)
	if got := g.Value(); got != 10 {
		t.Errorf("Value = %g, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot(false)
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples", len(snap))
	}
	s := snap[0]
	// le=1 gets 0.5 and 1 (bounds are inclusive), le=2 gets 1.5, le=4
	// gets 3, +Inf gets 100.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (buckets %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Errorf("count %d sum %g, want 5, 106", s.Count, s.Sum)
	}
}

func TestHistogramNaNObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	h.Observe(math.NaN())
	h.Observe(0.5)
	s := r.Snapshot(false)[0]
	if s.Count != 2 {
		t.Errorf("count = %d, want 2 (NaN counted)", s.Count)
	}
	if s.Sum != 0.5 {
		t.Errorf("sum = %g, want 0.5 (NaN excluded from sum)", s.Sum)
	}
	if s.Buckets[len(s.Buckets)-1] != 1 {
		t.Errorf("NaN not in overflow bucket: %v", s.Buckets)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h")
	b := r.Counter("c", "h")
	if a != b {
		t.Error("same series produced distinct counters")
	}
	// Distinct labels are distinct series.
	l1 := r.Counter("c", "h", WithLabels(Label{"k", "v1"}))
	l2 := r.Counter("c", "h", WithLabels(Label{"k", "v2"}))
	if l1 == l2 || l1 == a {
		t.Error("labeled series not distinct")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestSnapshotSortedAndVolatileFiltered(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz", "last").Inc()
	r.Gauge("aa", "first").Set(1)
	r.Counter("mm", "wall clock", Volatile()).Inc()
	r.Counter("bb", "labeled", WithLabels(Label{"x", "2"})).Inc()
	r.Counter("bb", "labeled", WithLabels(Label{"x", "1"})).Inc()

	det := r.Snapshot(false)
	var ids []string
	for _, s := range det {
		ids = append(ids, s.Name+labelBlock(s.Labels))
	}
	want := []string{`aa`, `bb{x="1"}`, `bb{x="2"}`, `zz`}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
	all := r.Snapshot(true)
	if len(all) != 5 {
		t.Errorf("Snapshot(true) has %d samples, want 5", len(all))
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "", WithLabels(Label{"b", "2"}, Label{"a", "1"}))
	b := r.Counter("c", "", WithLabels(Label{"a", "1"}, Label{"b", "2"}))
	if a != b {
		t.Error("label order changed series identity")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(float64(w*1000 + i))
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %g, want 8000", c.Value())
	}
	if g.Value() != 7999 {
		t.Errorf("gauge max = %g, want 7999", g.Value())
	}
	s := r.Snapshot(false)
	for _, sm := range s {
		if sm.Name == "h" && sm.Count != 8000 {
			t.Errorf("histogram count = %d, want 8000", sm.Count)
		}
	}
}

func TestUpdatePathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4, 8})
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(3)
		g.SetMax(5)
		h.Observe(3)
	})
	if allocs != 0 {
		t.Errorf("update path allocates %.1f per op, want 0", allocs)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	c.Add(1)
	snap := r.Snapshot(false)
	c.Add(41)
	if snap[0].Value != 1 {
		t.Errorf("snapshot mutated by later update: %g", snap[0].Value)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"good_name":   "good_name",
		"with:colons": "with:colons",
		"bad-dash":    "bad_dash",
		"0starts":     "__starts",
		"":            "_",
		"sp ace":      "sp_ace",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		1.5:          "1.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		1e21:         "1e+21",
	}
	for in, want := range cases {
		if got := FormatValue(in); got != want {
			t.Errorf("FormatValue(%g) = %q, want %q", in, got, want)
		}
	}
	if got := FormatValue(math.NaN()); got != "NaN" {
		t.Errorf("FormatValue(NaN) = %q", got)
	}
}

func TestOpenMetricsOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("req", "total requests").Add(3)
	r.Gauge("inf_gauge", "can be infinite").Set(math.Inf(1))
	h := r.Histogram("lat", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	r.Counter("lbl", "with labels", WithLabels(Label{"comp", `a"b\c` + "\n"})).Inc()

	var b strings.Builder
	if err := WriteOpenMetrics(&b, r.Snapshot(false)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req counter",
		"req_total 3",
		"inf_gauge +Inf",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_sum 11",
		"lat_count 3",
		`lbl_total{comp="a\"b\\c\n"} 1`,
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("output does not end with # EOF")
	}
}

func TestJSONOutputParsesAndIsDeterministic(t *testing.T) {
	mk := func() string {
		r := NewRegistry()
		r.Counter("b", "second").Add(2)
		r.Counter("a", "first").Add(1)
		h := r.Histogram("h", "", []float64{1})
		h.Observe(0.5)
		r.Gauge("inf", "").Set(math.Inf(-1))
		var b strings.Builder
		if err := WriteJSON(&b, r.Snapshot(false)); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	one, two := mk(), mk()
	if one != two {
		t.Error("JSON export not byte-identical across identical registries")
	}
	var doc map[string]interface{}
	if err := json.Unmarshal([]byte(one), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, one)
	}
	// -Inf must be a quoted string, not an invalid bare token.
	if !strings.Contains(one, `"-Inf"`) {
		t.Errorf("-Inf not quoted:\n%s", one)
	}
	if strings.Index(one, `"name": "a"`) > strings.Index(one, `"name": "b"`) {
		t.Errorf("series not sorted:\n%s", one)
	}
}
