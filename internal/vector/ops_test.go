package vector

import (
	"testing"

	"dxbsp/internal/core"
)

func TestBroadcastSemantics(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{7, 8, 9})
	dst := vm.Alloc(100)
	vm.Broadcast(dst, src, 1)
	for _, v := range dst.Data {
		if v != 8 {
			t.Fatalf("Broadcast value %d, want 8", v)
		}
	}
	if vm.MaxLocContention() != 100 {
		t.Errorf("naive broadcast contention = %d, want 100", vm.MaxLocContention())
	}
}

func TestReplicatedBroadcastSemanticsAndContention(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{5})
	dst := vm.Alloc(4096)
	scratch := vm.Alloc(vm.Mach().Procs)
	vm.ReplicatedBroadcast(dst, src, 0, scratch)
	for _, v := range dst.Data {
		if v != 5 {
			t.Fatalf("ReplicatedBroadcast value %d, want 5", v)
		}
	}
	// Contention bounded by n/p (plus small tree steps).
	if got, want := vm.MaxLocContention(), 4096/vm.Mach().Procs; got > want {
		t.Errorf("replicated broadcast contention = %d, want <= %d", got, want)
	}
}

func TestReplicatedBroadcastCheaper(t *testing.T) {
	n := 1 << 14
	vmA := newVM(t)
	src := vmA.AllocInit([]int64{1})
	dst := vmA.Alloc(n)
	vmA.Reset()
	vmA.Broadcast(dst, src, 0)
	naive := vmA.Cycles()

	vmB := newVM(t)
	src2 := vmB.AllocInit([]int64{1})
	dst2 := vmB.Alloc(n)
	scratch := vmB.Alloc(vmB.Mach().Procs)
	vmB.Reset()
	vmB.ReplicatedBroadcast(dst2, src2, 0, scratch)
	repl := vmB.Cycles()

	if repl >= naive/5 {
		t.Errorf("replicated %v should be far below naive %v", repl, naive)
	}
}

func TestReplicatedBroadcastPanics(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{1})
	dst := vm.Alloc(4)
	small := vm.Alloc(1)
	mustPanic(t, "small scratch", func() { vm.ReplicatedBroadcast(dst, src, 0, small) })
	scratch := vm.Alloc(vm.Mach().Procs)
	mustPanic(t, "bad index", func() { vm.ReplicatedBroadcast(dst, src, 9, scratch) })
}

func TestScanMax(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{3, 1, 4, 1, 5})
	dst := vm.Alloc(5)
	vm.ScanMax(dst, src)
	ident := int64(-1) << 62
	want := []int64{ident, 3, 3, 4, 4}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("ScanMax = %v, want %v", dst.Data, want)
		}
	}
}

func TestSegScanMaxCopyScan(t *testing.T) {
	vm := newVM(t)
	ident := int64(-1) << 62
	// Two segments with values only at heads: copy-scan propagates them.
	src := vm.AllocInit([]int64{10, ident, ident, 20, ident})
	flags := vm.AllocInit([]int64{1, 0, 0, 1, 0})
	dst := vm.Alloc(5)
	vm.SegScanMax(dst, src, flags)
	want := []int64{ident, 10, 10, ident, 20}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("SegScanMax = %v, want %v", dst.Data, want)
		}
	}
}

func TestReduceMax(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{-5, 12, 3})
	if got := vm.ReduceMax(src); got != 12 {
		t.Errorf("ReduceMax = %d", got)
	}
	empty := vm.Alloc(0)
	if got := vm.ReduceMax(empty); got != int64(-1)<<62 {
		t.Errorf("empty ReduceMax = %d", got)
	}
}

func TestTraceObservesIrregularOps(t *testing.T) {
	var ops []string
	var totalCycles float64
	vm := New(core.J90(), WithTrace(func(op string, prof core.Profile, cycles float64) {
		ops = append(ops, op)
		totalCycles += cycles
	}))
	src := vm.AllocInit([]int64{1, 2, 3, 4})
	idx := vm.AllocInit([]int64{0, 1, 2, 3})
	dst := vm.Alloc(4)
	vm.Gather(dst, src, idx)
	vm.Scatter(dst, src, idx)
	vm.Fill(dst, 0) // stride-only: not traced
	if len(ops) != 2 || ops[0] != "gather" || ops[1] != "scatter" {
		t.Errorf("traced ops = %v", ops)
	}
	if totalCycles <= 0 {
		t.Error("trace saw no cycles")
	}
}

func TestSetTraceReturnsPrevious(t *testing.T) {
	vm := newVM(t)
	calls := 0
	f := func(op string, prof core.Profile, cycles float64) { calls++ }
	if prev := vm.SetTrace(f); prev != nil {
		t.Error("fresh machine had a trace")
	}
	src := vm.AllocInit([]int64{1})
	idx := vm.AllocInit([]int64{0})
	dst := vm.Alloc(1)
	vm.Gather(dst, src, idx)
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
	old := vm.SetTrace(nil)
	if old == nil {
		t.Error("SetTrace did not return the installed trace")
	}
	vm.Gather(dst, src, idx)
	if calls != 1 {
		t.Error("removed trace still fired")
	}
}

func TestChargeElementwise(t *testing.T) {
	vm := newVM(t)
	before := vm.Cycles()
	vm.ChargeElementwise(8000, 1)
	bandwidth := vm.Cycles() - before
	// 2 streams at g=1 over 8000 elements on 8 procs = 2000 cycles.
	if bandwidth != 2000 {
		t.Errorf("bandwidth-bound charge = %v, want 2000", bandwidth)
	}
	before = vm.Cycles()
	vm.ChargeElementwise(8000, 10)
	compute := vm.Cycles() - before
	// compute-bound: 10*8000/8 = 10000.
	if compute != 10000 {
		t.Errorf("compute-bound charge = %v, want 10000", compute)
	}
}
