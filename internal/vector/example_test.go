package vector_test

import (
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/vector"
)

// Gather with a hot index costs far more than a spread gather of the same
// size — the machine charges the (d,x)-BSP superstep law per operation.
func ExampleMachine_Gather() {
	vm := vector.New(core.J90())
	src := vm.Alloc(1024)
	dst := vm.Alloc(1024)

	spread := vm.Alloc(1024)
	vm.Iota(spread)
	vm.Reset()
	vm.Gather(dst, src, spread)
	flat := vm.Cycles()

	hot := vm.Alloc(1024) // all zeros: every lane reads src[0]
	vm.Reset()
	vm.Gather(dst, src, hot)
	contended := vm.Cycles()

	fmt.Printf("flat %.0f cycles, contended %.0f cycles (%.0fx)\n",
		flat, contended, contended/flat)
	// Output:
	// flat 384 cycles, contended 14592 cycles (38x)
}

// Segmented scans are the substrate of the sparse-matrix kernels.
func ExampleMachine_SegScanAdd() {
	vm := vector.New(core.J90())
	vals := vm.AllocInit([]int64{1, 2, 3, 10, 20})
	flags := vm.AllocInit([]int64{1, 0, 0, 1, 0})
	out := vm.Alloc(5)
	vm.SegScanAdd(out, vals, flags)
	fmt.Println(out.Data)
	// Output:
	// [0 1 3 0 10]
}
