package vector

import (
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

// Randomized semantic equivalence: a random sequence of vector operations
// executed on the Machine must produce exactly the same data as a plain
// Go reference interpreter. This guards the invariant the whole algorithm
// layer rests on: cost accounting never perturbs semantics.

type refState struct {
	vecs [][]int64
}

func TestRandomProgramSemantics(t *testing.T) {
	const (
		trials  = 30
		nVecs   = 4
		vecLen  = 64
		opCount = 40
	)
	for trial := 0; trial < trials; trial++ {
		g := rng.New(uint64(trial)*0x9e37 + 1)
		vm := New(core.J90())
		ref := refState{}
		var vs []*Vec
		for i := 0; i < nVecs; i++ {
			data := make([]int64, vecLen)
			for j := range data {
				data[j] = int64(g.Intn(100))
			}
			vs = append(vs, vm.AllocInit(data))
			ref.vecs = append(ref.vecs, append([]int64(nil), data...))
		}
		idxData := make([]int64, vecLen)
		for j := range idxData {
			idxData[j] = int64(g.Intn(vecLen))
		}
		idx := vm.AllocInit(idxData)

		for op := 0; op < opCount; op++ {
			a, b, dst := g.Intn(nVecs), g.Intn(nVecs), g.Intn(nVecs)
			switch g.Intn(8) {
			case 0: // Fill
				v := int64(g.Intn(50))
				vm.Fill(vs[dst], v)
				for j := range ref.vecs[dst] {
					ref.vecs[dst][j] = v
				}
			case 1: // Iota
				vm.Iota(vs[dst])
				for j := range ref.vecs[dst] {
					ref.vecs[dst][j] = int64(j)
				}
			case 2: // Map2 add
				vm.Map2(vs[dst], vs[a], vs[b], func(x, y int64) int64 { return x + y }, 1)
				for j := range ref.vecs[dst] {
					ref.vecs[dst][j] = ref.vecs[a][j] + ref.vecs[b][j]
				}
			case 3: // Gather
				if dst == a {
					continue
				}
				vm.Gather(vs[dst], vs[a], idx)
				for j := range ref.vecs[dst] {
					ref.vecs[dst][j] = ref.vecs[a][idxData[j]]
				}
			case 4: // Scatter (last writer wins, vector order)
				if dst == a {
					continue
				}
				vm.Scatter(vs[dst], vs[a], idx)
				for j := range ref.vecs[a] {
					ref.vecs[dst][idxData[j]] = ref.vecs[a][j]
				}
			case 5: // ScanAdd
				if dst == a {
					continue
				}
				vm.ScanAdd(vs[dst], vs[a])
				acc := int64(0)
				for j := range ref.vecs[a] {
					ref.vecs[dst][j] = acc
					acc += ref.vecs[a][j]
				}
			case 6: // ScatterAdd
				if dst == a {
					continue
				}
				vm.ScatterAdd(vs[dst], vs[a], idx)
				for j := range ref.vecs[a] {
					ref.vecs[dst][idxData[j]] += ref.vecs[a][j]
				}
			case 7: // Map1 negate
				vm.Map1(vs[dst], vs[a], func(x int64) int64 { return -x }, 1)
				for j := range ref.vecs[dst] {
					ref.vecs[dst][j] = -ref.vecs[a][j]
				}
			}
		}

		for i := range vs {
			for j := range vs[i].Data {
				if vs[i].Data[j] != ref.vecs[i][j] {
					t.Fatalf("trial %d: vec %d[%d] = %d, reference %d",
						trial, i, j, vs[i].Data[j], ref.vecs[i][j])
				}
			}
		}
		if vm.Cycles() <= 0 {
			t.Fatalf("trial %d: no cycles charged", trial)
		}
	}
}
