// Package vector provides the vectorized-primitive layer the paper's
// algorithms are written against: gather, scatter, elementwise operations,
// scans, segmented scans and pack, executing on simulated arrays while
// charging machine cycles under the (d,x)-BSP accounting.
//
// Every operation both computes its result (so algorithms built on top are
// semantically real) and charges time to a cycle ledger. Irregular
// accesses (gather/scatter index streams) are charged either analytically
// — max(g*h, d*k) from the contention profile of the actual addresses — or
// exactly, by running the discrete-event bank simulator on them. Unit-
// stride streams are charged at bandwidth (g cycles per element per
// processor per stream): with interleaved banks and x >= d/g they never
// bottleneck, which the simulator tests confirm.
//
// Arrays live in a simulated flat address space: each allocation gets a
// base address, so gather/scatter target addresses (and hence bank
// conflicts, including module-map conflicts between different arrays)
// are physically meaningful.
package vector

import (
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/sim"
)

// Mode selects how irregular accesses are charged.
type Mode int

const (
	// Analytic charges irregular supersteps with the (d,x)-BSP closed
	// form applied to the pattern's contention profile. Fast; this is the
	// default.
	Analytic Mode = iota
	// Simulate runs the discrete-event bank simulator on every irregular
	// superstep. Slower, exact queueing.
	Simulate
)

// Vec is a vector in the simulated address space.
type Vec struct {
	Data []int64
	Base uint64
}

// Len returns the number of elements.
func (v *Vec) Len() int { return len(v.Data) }

// Machine executes vector primitives and accounts their cost.
type Machine struct {
	mach core.Machine
	bm   core.BankMap
	mode Mode

	heap uint64 // bump allocator for simulated addresses

	cycles     float64
	supersteps int
	opCycles   map[string]float64
	maxLoc     int // worst location contention seen in any superstep

	trace   TraceFunc
	capture CaptureFunc
}

// TraceFunc observes every irregular superstep: the operation name, the
// contention profile of its addresses, and the cycles charged. Experiments
// use it to extract per-phase access patterns from running algorithms.
type TraceFunc func(op string, prof core.Profile, cycles float64)

// CaptureFunc receives the raw address stream of every irregular
// superstep, for replaying algorithm traces through other machinery (the
// QRQW bridge, the dxtrace format). The slice is only valid during the
// call; copy it to retain it.
type CaptureFunc func(op string, addrs []uint64)

// Option configures a Machine.
type Option func(*Machine)

// WithMode selects analytic or simulated charging.
func WithMode(m Mode) Option { return func(vm *Machine) { vm.mode = m } }

// WithBankMap installs a bank mapping (e.g. a hashfn.Map). Defaults to
// hardware interleave over the machine's banks.
func WithBankMap(bm core.BankMap) Option { return func(vm *Machine) { vm.bm = bm } }

// WithTrace installs a callback observing every irregular superstep.
func WithTrace(f TraceFunc) Option { return func(vm *Machine) { vm.trace = f } }

// SetTrace replaces the trace callback and returns the previous one, so
// algorithms can interpose per-phase observers and restore the caller's.
func (vm *Machine) SetTrace(f TraceFunc) TraceFunc {
	old := vm.trace
	vm.trace = f
	return old
}

// WithCapture installs a raw address-stream observer.
func WithCapture(f CaptureFunc) Option { return func(vm *Machine) { vm.capture = f } }

// New returns a vector machine over m. It panics if m is invalid.
func New(m core.Machine, opts ...Option) *Machine {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	vm := &Machine{
		mach:     m,
		bm:       core.InterleaveMap{Banks: m.Banks},
		opCycles: make(map[string]float64),
	}
	for _, o := range opts {
		o(vm)
	}
	if vm.bm.NumBanks() != m.Banks {
		panic(fmt.Sprintf("vector: bank map covers %d banks, machine has %d", vm.bm.NumBanks(), m.Banks))
	}
	return vm
}

// Mach returns the underlying machine description.
func (vm *Machine) Mach() core.Machine { return vm.mach }

// Cycles returns total charged cycles since the last Reset.
func (vm *Machine) Cycles() float64 { return vm.cycles }

// Supersteps returns the number of supersteps (bulk operations) charged.
func (vm *Machine) Supersteps() int { return vm.supersteps }

// MaxLocContention returns the largest per-location contention observed in
// any irregular superstep since the last Reset.
func (vm *Machine) MaxLocContention() int { return vm.maxLoc }

// OpCycles returns a copy of the per-operation cycle breakdown.
func (vm *Machine) OpCycles() map[string]float64 {
	out := make(map[string]float64, len(vm.opCycles))
	for k, v := range vm.opCycles {
		out[k] = v
	}
	return out
}

// Reset clears the cycle ledger (allocations are kept).
func (vm *Machine) Reset() {
	vm.cycles = 0
	vm.supersteps = 0
	vm.maxLoc = 0
	vm.opCycles = make(map[string]float64)
}

// Alloc allocates a zeroed vector of n elements at a fresh base address.
func (vm *Machine) Alloc(n int) *Vec {
	v := &Vec{Data: make([]int64, n), Base: vm.heap}
	vm.heap += uint64(n)
	return v
}

// AllocInit allocates a vector holding a copy of data.
func (vm *Machine) AllocInit(data []int64) *Vec {
	v := vm.Alloc(len(data))
	copy(v.Data, data)
	return v
}

// charge records cycles against an operation name.
func (vm *Machine) charge(op string, cycles float64) {
	vm.cycles += cycles
	vm.opCycles[op] += cycles
	vm.supersteps++
}

// strideCost returns the cost of streaming k unit-stride vectors of n
// elements: bandwidth-bound at g per element per processor per stream.
func (vm *Machine) strideCost(n, k int) float64 {
	p := float64(vm.mach.Procs)
	return vm.mach.G * float64(k) * float64(n) / p
}

// irregularCost charges the superstep cost of n irregular requests at the
// given simulated addresses.
func (vm *Machine) irregularCost(op string, addrs []uint64) float64 {
	if vm.capture != nil {
		vm.capture(op, addrs)
	}
	pt := core.NewPattern(addrs, vm.mach.Procs)
	prof := core.ComputeProfileCompact(pt, vm.bm)
	if prof.MaxLoc > vm.maxLoc {
		vm.maxLoc = prof.MaxLoc
	}
	var cycles float64
	switch vm.mode {
	case Simulate:
		r, err := sim.Run(sim.Config{Machine: vm.mach, BankMap: vm.bm}, pt)
		if err != nil {
			panic(fmt.Sprintf("vector: simulation failed: %v", err))
		}
		cycles = r.Cycles + vm.mach.L
	default:
		cycles = vm.mach.PredictDXBSP(prof)
	}
	if vm.trace != nil {
		vm.trace(op, prof, cycles)
	}
	return cycles
}

// ChargeElementwise charges the cost of one hand-rolled elementwise pass
// over n elements with the given per-element compute op count, for
// algorithm steps that compute directly on Vec.Data (e.g. register-resident
// virtual-processor loops) and must still account their time.
func (vm *Machine) ChargeElementwise(n int, ops float64) {
	c := vm.strideCost(n, 2)
	if comp := ops * float64(n) / float64(vm.mach.Procs); comp > c {
		c = comp
	}
	vm.charge("map", c+vm.mach.L)
}

// Fill sets every element of v to val. Cost: one output stream.
func (vm *Machine) Fill(v *Vec, val int64) {
	for i := range v.Data {
		v.Data[i] = val
	}
	vm.charge("fill", vm.strideCost(v.Len(), 1)+vm.mach.L)
}

// Iota fills v with 0, 1, 2, ...
func (vm *Machine) Iota(v *Vec) {
	for i := range v.Data {
		v.Data[i] = int64(i)
	}
	vm.charge("iota", vm.strideCost(v.Len(), 1)+vm.mach.L)
}

// Map1 computes dst[i] = f(a[i]). ops is the compute operation count per
// element; the charge is the max of compute and the two unit-stride
// streams (vector units chain compute with memory).
func (vm *Machine) Map1(dst, a *Vec, f func(int64) int64, ops float64) {
	vm.checkLen("Map1", dst, a)
	for i := range a.Data {
		dst.Data[i] = f(a.Data[i])
	}
	n := float64(a.Len()) / float64(vm.mach.Procs)
	c := vm.strideCost(a.Len(), 2)
	if comp := ops * n; comp > c {
		c = comp
	}
	vm.charge("map", c+vm.mach.L)
}

// Map2 computes dst[i] = f(a[i], b[i]).
func (vm *Machine) Map2(dst, a, b *Vec, f func(int64, int64) int64, ops float64) {
	vm.checkLen("Map2", dst, a)
	vm.checkLen("Map2", a, b)
	for i := range a.Data {
		dst.Data[i] = f(a.Data[i], b.Data[i])
	}
	n := float64(a.Len()) / float64(vm.mach.Procs)
	c := vm.strideCost(a.Len(), 3)
	if comp := ops * n; comp > c {
		c = comp
	}
	vm.charge("map", c+vm.mach.L)
}

// Gather computes dst[i] = src[idx[i]]. The irregular read stream is
// profiled/simulated at src's real addresses; reading idx and writing dst
// are unit-stride.
func (vm *Machine) Gather(dst, src, idx *Vec) {
	vm.checkLen("Gather", dst, idx)
	addrs := make([]uint64, idx.Len())
	for i, ix := range idx.Data {
		vm.checkIndex("Gather", ix, src)
		addrs[i] = src.Base + uint64(ix)
		dst.Data[i] = src.Data[ix]
	}
	vm.charge("gather", vm.strideCost(idx.Len(), 2)+vm.irregularCost("gather", addrs))
}

// Scatter computes dst[idx[i]] = src[i]. On duplicate indices the highest
// vector position wins, which is the deterministic behaviour of a
// vectorized scatter on the machines modeled (last write in vector order).
func (vm *Machine) Scatter(dst, src, idx *Vec) {
	vm.checkLen("Scatter", src, idx)
	addrs := make([]uint64, idx.Len())
	for i, ix := range idx.Data {
		vm.checkIndex("Scatter", ix, dst)
		addrs[i] = dst.Base + uint64(ix)
		dst.Data[ix] = src.Data[i]
	}
	vm.charge("scatter", vm.strideCost(idx.Len(), 2)+vm.irregularCost("scatter", addrs))
}

// ScatterConst scatters the constant val to dst at idx.
func (vm *Machine) ScatterConst(dst *Vec, val int64, idx *Vec) {
	addrs := make([]uint64, idx.Len())
	for i, ix := range idx.Data {
		vm.checkIndex("ScatterConst", ix, dst)
		addrs[i] = dst.Base + uint64(ix)
		dst.Data[ix] = val
	}
	vm.charge("scatter", vm.strideCost(idx.Len(), 1)+vm.irregularCost("scatter-const", addrs))
}

// ScatterAdd atomically (in vector-order) adds src[i] into dst[idx[i]].
// Machines without combining implement this via sorting or virtual-
// processor privatization; the charge model treats it like a scatter
// (contention serializes at banks identically) — algorithms that need a
// cheaper histogram build one explicitly, as the radix sort does.
func (vm *Machine) ScatterAdd(dst, src, idx *Vec) {
	vm.checkLen("ScatterAdd", src, idx)
	addrs := make([]uint64, idx.Len())
	for i, ix := range idx.Data {
		vm.checkIndex("ScatterAdd", ix, dst)
		addrs[i] = dst.Base + uint64(ix)
		dst.Data[ix] += src.Data[i]
	}
	vm.charge("scatter", vm.strideCost(idx.Len(), 2)+vm.irregularCost("scatter-add", addrs))
}

// ScanAdd writes the exclusive prefix sum of src into dst (dst[0] = 0).
// Charged as two passes over the data plus a logarithmic tree term.
func (vm *Machine) ScanAdd(dst, src *Vec) {
	vm.checkLen("ScanAdd", dst, src)
	acc := int64(0)
	for i, v := range src.Data {
		dst.Data[i] = acc
		acc += v
	}
	vm.charge("scan", vm.strideCost(src.Len(), 4)+2*vm.mach.L)
}

// SegScanAdd writes the exclusive segmented prefix sum of src into dst;
// flags[i] != 0 marks the start of a segment. This is the primitive behind
// the sparse matrix kernels [BHZ93].
func (vm *Machine) SegScanAdd(dst, src, flags *Vec) {
	vm.checkLen("SegScanAdd", dst, src)
	vm.checkLen("SegScanAdd", src, flags)
	acc := int64(0)
	for i, v := range src.Data {
		if flags.Data[i] != 0 {
			acc = 0
		}
		dst.Data[i] = acc
		acc += v
	}
	vm.charge("segscan", vm.strideCost(src.Len(), 5)+2*vm.mach.L)
}

// Reduce returns the sum of src. Charged as one pass.
func (vm *Machine) Reduce(src *Vec) int64 {
	acc := int64(0)
	for _, v := range src.Data {
		acc += v
	}
	vm.charge("reduce", vm.strideCost(src.Len(), 1)+2*vm.mach.L)
	return acc
}

// Pack writes the elements of src whose mask is non-zero into the prefix
// of dst, preserving order, and returns how many were written. Charged as
// a scan plus a write pass.
func (vm *Machine) Pack(dst, src, mask *Vec) int {
	vm.checkLen("Pack", src, mask)
	k := 0
	for i, m := range mask.Data {
		if m != 0 {
			if k >= dst.Len() {
				panic(fmt.Sprintf("vector: Pack: dst too small (%d)", dst.Len()))
			}
			dst.Data[k] = src.Data[i]
			k++
		}
	}
	vm.charge("pack", vm.strideCost(src.Len(), 4)+2*vm.mach.L)
	return k
}

func (vm *Machine) checkLen(op string, a, b *Vec) {
	if a.Len() != b.Len() {
		panic(fmt.Sprintf("vector: %s: length mismatch %d vs %d", op, a.Len(), b.Len()))
	}
}

func (vm *Machine) checkIndex(op string, ix int64, v *Vec) {
	if ix < 0 || ix >= int64(v.Len()) {
		panic(fmt.Sprintf("vector: %s: index %d out of range [0,%d)", op, ix, v.Len()))
	}
}
