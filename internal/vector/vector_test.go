package vector

import (
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

func newVM(t *testing.T, opts ...Option) *Machine {
	t.Helper()
	return New(core.J90(), opts...)
}

func TestAllocAddresses(t *testing.T) {
	vm := newVM(t)
	a := vm.Alloc(100)
	b := vm.Alloc(50)
	if a.Base == b.Base {
		t.Error("allocations share a base address")
	}
	if b.Base < a.Base+100 {
		t.Errorf("allocations overlap: a=[%d,%d) b starts %d", a.Base, a.Base+100, b.Base)
	}
}

func TestFillIotaReduce(t *testing.T) {
	vm := newVM(t)
	v := vm.Alloc(10)
	vm.Fill(v, 7)
	if got := vm.Reduce(v); got != 70 {
		t.Errorf("Reduce = %d, want 70", got)
	}
	vm.Iota(v)
	if got := vm.Reduce(v); got != 45 {
		t.Errorf("Reduce(iota) = %d, want 45", got)
	}
	if vm.Cycles() <= 0 {
		t.Error("no cycles charged")
	}
}

func TestMapOps(t *testing.T) {
	vm := newVM(t)
	a := vm.AllocInit([]int64{1, 2, 3})
	b := vm.AllocInit([]int64{10, 20, 30})
	dst := vm.Alloc(3)
	vm.Map1(dst, a, func(x int64) int64 { return x * x }, 1)
	if dst.Data[2] != 9 {
		t.Errorf("Map1 = %v", dst.Data)
	}
	vm.Map2(dst, a, b, func(x, y int64) int64 { return x + y }, 1)
	if dst.Data[1] != 22 {
		t.Errorf("Map2 = %v", dst.Data)
	}
}

func TestGatherScatterSemantics(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{10, 11, 12, 13})
	idx := vm.AllocInit([]int64{3, 0, 2, 1})
	dst := vm.Alloc(4)
	vm.Gather(dst, src, idx)
	want := []int64{13, 10, 12, 11}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("Gather: %v, want %v", dst.Data, want)
		}
	}
	out := vm.Alloc(4)
	vm.Scatter(out, src, idx)
	// out[3]=10, out[0]=11, out[2]=12, out[1]=13
	want = []int64{11, 13, 12, 10}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("Scatter: %v, want %v", out.Data, want)
		}
	}
}

func TestScatterDuplicateLastWins(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{1, 2, 3})
	idx := vm.AllocInit([]int64{0, 0, 0})
	dst := vm.Alloc(1)
	vm.Scatter(dst, src, idx)
	if dst.Data[0] != 3 {
		t.Errorf("duplicate scatter: got %d, want 3 (last wins)", dst.Data[0])
	}
}

func TestScatterAdd(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{1, 2, 3, 4})
	idx := vm.AllocInit([]int64{0, 1, 0, 1})
	dst := vm.Alloc(2)
	vm.ScatterAdd(dst, src, idx)
	if dst.Data[0] != 4 || dst.Data[1] != 6 {
		t.Errorf("ScatterAdd = %v, want [4 6]", dst.Data)
	}
}

func TestScanAdd(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{3, 1, 4, 1, 5})
	dst := vm.Alloc(5)
	vm.ScanAdd(dst, src)
	want := []int64{0, 3, 4, 8, 9}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("ScanAdd = %v, want %v", dst.Data, want)
		}
	}
}

func TestSegScanAdd(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{1, 2, 3, 4, 5})
	flags := vm.AllocInit([]int64{1, 0, 1, 0, 0})
	dst := vm.Alloc(5)
	vm.SegScanAdd(dst, src, flags)
	want := []int64{0, 1, 0, 3, 7}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("SegScanAdd = %v, want %v", dst.Data, want)
		}
	}
}

func TestPack(t *testing.T) {
	vm := newVM(t)
	src := vm.AllocInit([]int64{10, 20, 30, 40})
	mask := vm.AllocInit([]int64{1, 0, 1, 1})
	dst := vm.Alloc(4)
	k := vm.Pack(dst, src, mask)
	if k != 3 {
		t.Fatalf("Pack count = %d", k)
	}
	want := []int64{10, 30, 40}
	for i := range want {
		if dst.Data[i] != want[i] {
			t.Fatalf("Pack = %v, want %v", dst.Data[:k], want)
		}
	}
}

func TestContentionChargesMore(t *testing.T) {
	// A scatter with all-equal indices must be charged far more than a
	// permutation scatter of the same size.
	n := 8192
	vmHot := newVM(t)
	src := vmHot.Alloc(n)
	dst := vmHot.Alloc(n)
	hotIdx := vmHot.Alloc(n) // all zeros
	vmHot.Reset()
	vmHot.Scatter(dst, src, hotIdx)
	hotCycles := vmHot.Cycles()

	vmFlat := newVM(t)
	src2 := vmFlat.Alloc(n)
	dst2 := vmFlat.Alloc(n)
	perm := rng.New(1).Perm(n)
	idxData := make([]int64, n)
	for i, v := range perm {
		idxData[i] = int64(v)
	}
	flatIdx := vmFlat.AllocInit(idxData)
	vmFlat.Reset()
	vmFlat.Scatter(dst2, src2, flatIdx)
	flatCycles := vmFlat.Cycles()

	if hotCycles < 10*flatCycles {
		t.Errorf("hot scatter %v should dwarf flat scatter %v", hotCycles, flatCycles)
	}
	if vmHot.MaxLocContention() != n {
		t.Errorf("MaxLocContention = %d, want %d", vmHot.MaxLocContention(), n)
	}
}

func TestAnalyticVsSimulateAgree(t *testing.T) {
	// The two charging modes should agree within a factor of 2 on a
	// random gather (the sim_test validates tighter bounds directly).
	n := 4096
	g := rng.New(5)
	idxData := make([]int64, n)
	for i := range idxData {
		idxData[i] = int64(g.Intn(n))
	}
	run := func(mode Mode) float64 {
		vm := New(core.J90(), WithMode(mode))
		src := vm.Alloc(n)
		dst := vm.Alloc(n)
		idx := vm.AllocInit(idxData)
		vm.Reset()
		vm.Gather(dst, src, idx)
		return vm.Cycles()
	}
	a, s := run(Analytic), run(Simulate)
	if ratio := s / a; ratio < 0.5 || ratio > 2.0 {
		t.Errorf("modes disagree: analytic=%v simulate=%v ratio=%.2f", a, s, ratio)
	}
}

func TestOpCyclesBreakdown(t *testing.T) {
	vm := newVM(t)
	v := vm.Alloc(100)
	vm.Fill(v, 1)
	idx := vm.Alloc(100)
	vm.Iota(idx)
	dst := vm.Alloc(100)
	vm.Gather(dst, v, idx)
	oc := vm.OpCycles()
	if oc["fill"] <= 0 || oc["iota"] <= 0 || oc["gather"] <= 0 {
		t.Errorf("missing op breakdown: %v", oc)
	}
	if vm.Supersteps() != 3 {
		t.Errorf("Supersteps = %d, want 3", vm.Supersteps())
	}
	vm.Reset()
	if vm.Cycles() != 0 || vm.Supersteps() != 0 || len(vm.OpCycles()) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	vm := newVM(t)
	a := vm.Alloc(4)
	b := vm.Alloc(5)
	mustPanic(t, "length mismatch", func() { vm.Map1(a, b, func(x int64) int64 { return x }, 1) })
	idx := vm.AllocInit([]int64{99})
	dst := vm.Alloc(1)
	mustPanic(t, "gather oob", func() { vm.Gather(dst, a, idx) })
	mustPanic(t, "scatter oob", func() { vm.Scatter(a, dst, idx) })
	neg := vm.AllocInit([]int64{-1})
	mustPanic(t, "negative index", func() { vm.Gather(dst, a, neg) })
	small := vm.Alloc(0)
	mask := vm.AllocInit([]int64{1})
	src := vm.AllocInit([]int64{5})
	mustPanic(t, "pack overflow", func() { vm.Pack(small, src, mask) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestNewPanicsOnInvalid(t *testing.T) {
	mustPanic(t, "invalid machine", func() { New(core.Machine{}) })
	mustPanic(t, "mismatched map", func() {
		New(core.J90(), WithBankMap(core.InterleaveMap{Banks: 3}))
	})
}
