package vector

import "fmt"

// This file holds the second tier of primitives: broadcast and the
// non-additive scan family. They are built on the same accounting as the
// core primitives in vector.go.

// Broadcast reads one element of src and replicates it into every element
// of dst. On the modeled machines a broadcast is a gather in which every
// processor reads the same location — per-location contention n — unless
// the value is first replicated; ReplicatedBroadcast does that. Having
// both makes the cost of naive broadcasting visible, which is the
// replicated-tree binary search's whole premise.
func (vm *Machine) Broadcast(dst, src *Vec, at int64) {
	vm.checkIndex("Broadcast", at, src)
	n := dst.Len()
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = src.Base + uint64(at)
		dst.Data[i] = src.Data[at]
	}
	vm.charge("gather", vm.strideCost(n, 1)+vm.irregularCost("broadcast", addrs))
}

// ReplicatedBroadcast replicates src[at] into a p-entry scratch vector via
// a lg(p)-deep doubling tree (each step contention 1), then gathers from
// the scratch with per-location contention n/p. scratch must have at
// least Procs elements.
func (vm *Machine) ReplicatedBroadcast(dst, src *Vec, at int64, scratch *Vec) {
	p := vm.mach.Procs
	if scratch.Len() < p {
		panic(fmt.Sprintf("vector: ReplicatedBroadcast: scratch %d < procs %d", scratch.Len(), p))
	}
	vm.checkIndex("ReplicatedBroadcast", at, src)
	// Doubling tree: step k copies 2^k replicas to 2^k fresh slots.
	scratch.Data[0] = src.Data[at]
	made := 1
	for made < p {
		cnt := made
		if made+cnt > p {
			cnt = p - made
		}
		addrs := make([]uint64, cnt)
		for i := 0; i < cnt; i++ {
			scratch.Data[made+i] = scratch.Data[i]
			addrs[i] = scratch.Base + uint64(i)
		}
		vm.charge("gather", vm.strideCost(cnt, 1)+vm.irregularCost("broadcast-tree", addrs))
		made += cnt
	}
	// Final fan-out: processor i reads replica i (round-robin assignment
	// matches the charging layout).
	n := dst.Len()
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = scratch.Base + uint64(i%p)
		dst.Data[i] = scratch.Data[i%p]
	}
	vm.charge("gather", vm.strideCost(n, 1)+vm.irregularCost("broadcast", addrs))
}

// ScanMax writes the exclusive prefix maximum of src into dst; dst[0]
// gets the identity (minimum int64).
func (vm *Machine) ScanMax(dst, src *Vec) {
	vm.checkLen("ScanMax", dst, src)
	acc := int64(-1) << 62
	for i, v := range src.Data {
		dst.Data[i] = acc
		if v > acc {
			acc = v
		}
	}
	vm.charge("scan", vm.strideCost(src.Len(), 4)+2*vm.mach.L)
}

// SegScanMax is the segmented exclusive prefix maximum; flags[i] != 0
// starts a segment. This is the "copy-scan" workhorse: with src holding
// values only at segment heads and -inf elsewhere, it propagates each
// head's value through its segment.
func (vm *Machine) SegScanMax(dst, src, flags *Vec) {
	vm.checkLen("SegScanMax", dst, src)
	vm.checkLen("SegScanMax", src, flags)
	acc := int64(-1) << 62
	for i, v := range src.Data {
		if flags.Data[i] != 0 {
			acc = int64(-1) << 62
		}
		dst.Data[i] = acc
		if v > acc {
			acc = v
		}
	}
	vm.charge("segscan", vm.strideCost(src.Len(), 5)+2*vm.mach.L)
}

// ReduceMax returns the maximum of src, or the identity for empty input.
func (vm *Machine) ReduceMax(src *Vec) int64 {
	acc := int64(-1) << 62
	for _, v := range src.Data {
		if v > acc {
			acc = v
		}
	}
	vm.charge("reduce", vm.strideCost(src.Len(), 1)+2*vm.mach.L)
	return acc
}
