package stats

import (
	"math"
	"sort"
	"testing"

	"dxbsp/internal/rng"
)

// These tests check stats against brute-force oracles on randomized
// inputs (deterministic generator, so failures reproduce). The oracle for
// Percentile is order-statistic selection: whatever interpolation rule
// the implementation uses, a q-quantile that escapes the two bracketing
// order statistics is wrong.

func randomSample(g *rng.Xoshiro256, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch g.Intn(4) {
		case 0: // small integers force duplicates
			xs[i] = float64(g.Intn(8))
		case 1:
			xs[i] = g.Float64()*200 - 100
		case 2:
			xs[i] = math.Exp(g.Float64()*20 - 10)
		default:
			xs[i] = -xs[max(0, i-1)] // correlated sign flips
		}
	}
	return xs
}

func TestPercentileAgainstOrderStatisticOracle(t *testing.T) {
	g := rng.New(0xdecaf)
	for trial := 0; trial < 200; trial++ {
		n := 1 + g.Intn(50)
		sorted := randomSample(g, n)
		sort.Float64s(sorted)

		// Bracketing: for any q, the result lies between the order
		// statistics at floor and ceil of the interpolation position.
		for probe := 0; probe < 20; probe++ {
			q := g.Float64()
			got := Percentile(sorted, q)
			pos := q * float64(n-1)
			lo, hi := sorted[int(math.Floor(pos))], sorted[int(math.Ceil(pos))]
			if got < lo || got > hi {
				t.Fatalf("Percentile(n=%d, q=%g) = %g escapes bracket [%g, %g]", n, q, got, lo, hi)
			}
		}

		// Exactness at grid points: q = k/(n-1) must return sorted[k]
		// up to one interpolation ulp between the bracketing values.
		for k := 0; k < n; k++ {
			q := 0.0
			if n > 1 {
				q = float64(k) / float64(n-1)
			}
			got := Percentile(sorted, q)
			want := sorted[k]
			span := math.Abs(sorted[min(k+1, n-1)]-sorted[max(k-1, 0)]) + math.Abs(want)
			if math.Abs(got-want) > 1e-9*span {
				t.Fatalf("Percentile(n=%d, q=%d/%d) = %g, want order statistic %g", n, k, n-1, got, want)
			}
		}

		// Monotonicity in q.
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := Percentile(sorted, q)
			if v < prev {
				t.Fatalf("Percentile not monotone at q=%g: %g < %g (n=%d)", q, v, prev, n)
			}
			prev = v
		}
	}
}

func TestSummarizeAgainstBruteForce(t *testing.T) {
	g := rng.New(0xfeed)
	for trial := 0; trial < 100; trial++ {
		xs := randomSample(g, 1+g.Intn(40))
		s := Summarize(xs)

		min0, max0, sum := xs[0], xs[0], 0.0
		for _, x := range xs {
			if x < min0 {
				min0 = x
			}
			if x > max0 {
				max0 = x
			}
			sum += x
		}
		if s.N != len(xs) || s.Min != min0 || s.Max != max0 {
			t.Fatalf("Summarize extrema wrong: %+v vs min=%g max=%g", s, min0, max0)
		}
		if math.Abs(s.Sum-sum) > 1e-9*(1+math.Abs(sum)) {
			t.Fatalf("Sum = %g, want %g", s.Sum, sum)
		}
		if math.Abs(s.Mean-sum/float64(len(xs))) > 1e-9*(1+math.Abs(s.Mean)) {
			t.Fatalf("Mean = %g, want %g", s.Mean, sum/float64(len(xs)))
		}
		if s.Std < 0 || math.IsNaN(s.Std) {
			t.Fatalf("Std = %g", s.Std)
		}
	}
}

func TestGeoMeanProperties(t *testing.T) {
	g := rng.New(0xbead)
	for trial := 0; trial < 100; trial++ {
		n := 1 + g.Intn(20)
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = math.Exp(g.Float64()*10 - 5)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		gm := GeoMean(xs)
		if gm < lo*(1-1e-9) || gm > hi*(1+1e-9) {
			t.Fatalf("GeoMean %g escapes [%g, %g]", gm, lo, hi)
		}
		// Scale equivariance: GeoMean(c·xs) = c·GeoMean(xs).
		scaled := make([]float64, n)
		for i, x := range xs {
			scaled[i] = 3 * x
		}
		if got := GeoMean(scaled); math.Abs(got-3*gm) > 1e-9*(1+3*gm) {
			t.Fatalf("GeoMean not scale-equivariant: %g vs %g", got, 3*gm)
		}
	}
	if got := GeoMean([]float64{7}); got != 7 {
		t.Errorf("GeoMean single = %g, want 7", got)
	}
	if GeoMean([]float64{-1, 2}) != 0 {
		t.Error("GeoMean with negative input should be 0")
	}
}

// TestHistogramProperties pins bin assignment behavior on randomized
// inputs: counts conserve non-NaN mass, NaNs are dropped, ±Inf clamp to
// the edge bins, and every finite in-range value lands in the bin whose
// half-open interval [min + b·w, min + (b+1)·w) contains it (values on an
// interior edge belong to the upper bin; the top bin is closed at max).
func TestHistogramProperties(t *testing.T) {
	g := rng.New(0xc0de)
	for trial := 0; trial < 200; trial++ {
		nBins := 1 + g.Intn(12)
		min := g.Float64()*100 - 50
		max := min + g.Float64()*100 + 0.001
		n := g.Intn(60)
		xs := make([]float64, n)
		nan := 0
		for i := range xs {
			switch g.Intn(8) {
			case 0:
				xs[i] = math.NaN()
				nan++
			case 1:
				xs[i] = math.Inf(1)
			case 2:
				xs[i] = math.Inf(-1)
			case 3: // exact bin edge
				w := (max - min) / float64(nBins)
				xs[i] = min + float64(g.Intn(nBins+1))*w
			default:
				xs[i] = min + (g.Float64()*1.5-0.25)*(max-min)
			}
		}
		h := NewHistogram(xs, min, max, nBins)

		total := 0
		for _, c := range h.Counts {
			total += c
		}
		if total != n-nan {
			t.Fatalf("histogram counts %d values, want %d (n=%d, %d NaN)", total, n-nan, n, nan)
		}
		w := (max - min) / float64(nBins)
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			want := 0
			if pos := (x - min) / w; pos >= float64(nBins) {
				want = nBins - 1
			} else if pos > 0 {
				want = int(pos)
			}
			// Re-binning a single value must agree with the bulk pass.
			h1 := NewHistogram([]float64{x}, min, max, nBins)
			if h1.Counts[want] != 1 {
				t.Fatalf("value %g binned inconsistently (want bin %d): %v", x, want, h1.Counts)
			}
		}
	}
}

func TestHistogramInfAndNaN(t *testing.T) {
	h := NewHistogram([]float64{math.Inf(-1), math.Inf(1), math.NaN(), 0.5}, 0, 1, 4)
	if h.Counts[0] != 1 {
		t.Errorf("-Inf should clamp to bin 0: %v", h.Counts)
	}
	if h.Counts[3] != 1 {
		t.Errorf("+Inf should clamp to last bin: %v", h.Counts)
	}
	if h.Counts[2] != 1 {
		t.Errorf("0.5 should land in bin 2: %v", h.Counts)
	}
	if total := h.Counts[0] + h.Counts[1] + h.Counts[2] + h.Counts[3]; total != 3 {
		t.Errorf("NaN not dropped: %v", h.Counts)
	}
}

func TestHistogramExactEdges(t *testing.T) {
	// Edges at 0,1,2,3,4 with 4 bins: interior edge values go up, max
	// stays in the top bin.
	h := NewHistogram([]float64{0, 1, 2, 3, 4}, 0, 4, 4)
	want := []int{1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("edge binning = %v, want %v", h.Counts, want)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
