// Package stats provides the small statistical helpers the experiment
// harness uses: summaries, histograms, and series utilities.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Std     float64
	P50, P90, P99 float64
	Sum           float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, x := range xs {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MaxInt returns the maximum of xs, or 0 for an empty slice.
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// MeanInt returns the arithmetic mean of xs, or 0 for an empty slice.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs; it returns 0 if any
// value is non-positive or the slice is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	acc := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

// Histogram counts xs into nBins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of xs with nBins bins. Values outside
// [min, max] are clamped to the first/last bin.
func NewHistogram(xs []float64, min, max float64, nBins int) Histogram {
	if nBins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram with nBins=%d", nBins))
	}
	h := Histogram{Min: min, Max: max, Counts: make([]int, nBins)}
	if max <= min {
		h.Counts[0] = len(xs)
		return h
	}
	w := (max - min) / float64(nBins)
	for _, x := range xs {
		b := int((x - min) / w)
		if b < 0 {
			b = 0
		}
		if b >= nBins {
			b = nBins - 1
		}
		h.Counts[b]++
	}
	return h
}

// Mode returns the index of the fullest bin.
func (h Histogram) Mode() int {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for a
// perfectly even distribution, approaching 1 as the mass concentrates in
// one element. Used to summarize per-bank load imbalance.
func Gini(xs []int) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]int, n)
	copy(sorted, xs)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		cum += float64(x)
		weighted += float64(x) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// Ratio returns a/b, or +Inf when b is zero and a positive, or 1 when both
// are zero (used for predicted-vs-measured tables).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}
