// Package stats provides the small statistical helpers the experiment
// harness uses: summaries, histograms, and series utilities.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, Std     float64
	P50, P90, P99 float64
	Sum           float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, x := range xs {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample, linearly interpolating between the two closest order statistics
// (the Hyndman–Fan type-7 definition, numpy's default): the result always
// lies between sorted[floor(q·(n-1))] and sorted[ceil(q·(n-1))] and hits
// the order statistic exactly when q·(n-1) is integral. q outside [0, 1]
// clamps to the sample extremes.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	// a + (b-a)·frac rather than a·(1-frac) + b·frac: with b-a rounded
	// once to a non-negative constant, the product and sum are monotone
	// in frac, so Percentile is monotone in q. The symmetric form is not:
	// its two oppositely-rounded terms can overshoot b by an ulp, making
	// P99 exceed the sample maximum (caught by the order-statistic
	// oracle). The clamp handles the one remaining rounding direction,
	// fl(a + fl(b-a)) > b.
	v := sorted[lo] + (sorted[hi]-sorted[lo])*frac
	if v > sorted[hi] {
		v = sorted[hi]
	}
	return v
}

// MaxInt returns the maximum of xs, or 0 for an empty slice.
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// MeanInt returns the arithmetic mean of xs, or 0 for an empty slice.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs; it returns 0 if any
// value is non-positive or the slice is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	acc := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

// Histogram counts xs into nBins equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of xs with nBins bins. Values outside
// [min, max] (including ±Inf) are clamped to the first/last bin; NaN
// values are dropped — the previous behavior funneled them through
// int(NaN), whose result is platform-defined, so a stray NaN landed in an
// arbitrary bin on some architectures and bin 0 on others.
func NewHistogram(xs []float64, min, max float64, nBins int) Histogram {
	if nBins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram with nBins=%d", nBins))
	}
	h := Histogram{Min: min, Max: max, Counts: make([]int, nBins)}
	degenerate := !(max > min) // equal, inverted, or NaN bounds
	w := (max - min) / float64(nBins)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if degenerate {
			h.Counts[0]++
			continue
		}
		// Clamp in float space before converting: int(f) for f outside
		// the int range (±Inf, or a finite value magnitudes beyond the
		// histogram span) is platform-defined in Go.
		b := 0
		if pos := (x - min) / w; pos >= float64(nBins) {
			b = nBins - 1
		} else if pos > 0 {
			b = int(pos)
		}
		h.Counts[b]++
	}
	return h
}

// Mode returns the index of the fullest bin.
func (h Histogram) Mode() int {
	best, bestC := 0, -1
	for i, c := range h.Counts {
		if c > bestC {
			best, bestC = i, c
		}
	}
	return best
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for a
// perfectly even distribution, approaching 1 as the mass concentrates in
// one element. Used to summarize per-bank load imbalance.
func Gini(xs []int) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]int, n)
	copy(sorted, xs)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		cum += float64(x)
		weighted += float64(x) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// Ratio returns a/b, or +Inf when b is zero and a positive, or 1 when both
// are zero (used for predicted-vs-measured tables).
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}
