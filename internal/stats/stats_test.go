package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("bad extrema: %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.Sum != 15 {
		t.Errorf("Sum = %v", s.Sum)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.Std != 0 {
		t.Errorf("single summary: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxMeanInt(t *testing.T) {
	if MaxInt(nil) != 0 {
		t.Error("MaxInt(nil)")
	}
	if MaxInt([]int{-5, -2, -9}) != -2 {
		t.Error("MaxInt negatives")
	}
	if MeanInt([]int{2, 4}) != 3 {
		t.Error("MeanInt")
	}
	if MeanInt(nil) != 0 {
		t.Error("MeanInt(nil)")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil)")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 10, -5}, 0, 4, 4)
	// -5 clamps to bin 0, 10 clamps to bin 3.
	if h.Counts[0] != 2 { // 0 and -5
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[3] != 2 { // 3 and 10
		t.Errorf("bin3 = %d", h.Counts[3])
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 6 {
		t.Errorf("total = %d", total)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3}, 5, 5, 3)
	if h.Counts[0] != 3 {
		t.Errorf("degenerate range: %v", h.Counts)
	}
	defer func() {
		if recover() == nil {
			t.Error("nBins=0 should panic")
		}
	}()
	NewHistogram(nil, 0, 1, 0)
}

func TestHistogramMode(t *testing.T) {
	h := Histogram{Counts: []int{1, 5, 2}}
	if h.Mode() != 1 {
		t.Errorf("Mode = %d", h.Mode())
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("even Gini = %v", g)
	}
	// All mass in one of many bins: approaches 1.
	xs := make([]int, 100)
	xs[0] = 1000
	if g := Gini(xs); g < 0.95 {
		t.Errorf("concentrated Gini = %v", g)
	}
	if Gini(nil) != 0 || Gini([]int{0, 0}) != 0 {
		t.Error("degenerate Gini should be 0")
	}
	// Skewed beats uniform.
	if Gini([]int{1, 2, 3, 10}) <= Gini([]int{4, 4, 4, 4}) {
		t.Error("Gini ordering wrong")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3)")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Error("Ratio(1,0)")
	}
	if Ratio(0, 0) != 1 {
		t.Error("Ratio(0,0)")
	}
}
