// Package patterns generates the memory access patterns used by the
// paper's experiments: maximum-contention patterns with a controlled
// number of duplicates (Experiment 1), uniform random patterns
// (Experiment 2), the Thearling–Smith entropy-family patterns obtained by
// iterated bitwise AND (Experiment 3), strided patterns, and permutations.
//
// A pattern here is just a flat []uint64 of memory addresses; core.Pattern
// distributes it over processors.
package patterns

import (
	"fmt"
	"math"

	"dxbsp/internal/rng"
)

// AllSame returns n requests to the single address addr: maximum location
// contention κ = n.
func AllSame(n int, addr uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = addr
	}
	return a
}

// Contention returns n addresses with maximum location contention exactly
// k (for k dividing n): k copies each of n/k distinct locations. The
// locations are spaced spread apart so that, under interleaved mapping
// with at least n/k banks, no two distinct locations share a bank —
// isolating location contention from module-map contention exactly as the
// paper's Experiment 1 requires. Copies of the same location are spread
// round-robin across the stream so every processor touches every hot
// location equally.
func Contention(n, k int, spread uint64) []uint64 {
	if k <= 0 || n%k != 0 {
		panic(fmt.Sprintf("patterns: Contention(%d,%d): k must be positive and divide n", n, k))
	}
	if spread == 0 {
		spread = 1
	}
	m := n / k // distinct locations
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i%m) * spread
	}
	return a
}

// Uniform returns n addresses drawn independently and uniformly from
// [0, m).
func Uniform(n int, m uint64, g *rng.Xoshiro256) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = g.Uint64n(m)
	}
	return a
}

// Strided returns n addresses at the given stride starting from base:
// base, base+stride, base+2*stride, ...
func Strided(n int, base, stride uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = base + uint64(i)*stride
	}
	return a
}

// Permutation returns a uniformly random permutation of the addresses
// [0, n): every location touched exactly once (κ = 1), in random order.
func Permutation(n int, g *rng.Xoshiro256) []uint64 {
	p := g.Perm(n)
	a := make([]uint64, n)
	for i, v := range p {
		a[i] = uint64(v)
	}
	return a
}

// Entropy generates the Thearling–Smith family of skewed key
// distributions [TS92], as used in the paper's Experiment 3: start from n
// uniform random keys in [0, m); then, rounds times, replace each key by
// the bitwise AND of itself and another key chosen uniformly at random.
// Each round lowers the entropy of the distribution; after many rounds all
// keys are zero (maximum contention).
func Entropy(n int, m uint64, rounds int, g *rng.Xoshiro256) []uint64 {
	if m == 0 || m&(m-1) != 0 {
		panic(fmt.Sprintf("patterns: Entropy: m=%d must be a power of two", m))
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = g.Uint64n(m)
	}
	tmp := make([]uint64, n)
	for r := 0; r < rounds; r++ {
		for i := range tmp {
			tmp[i] = keys[i] & keys[g.Intn(n)]
		}
		keys, tmp = tmp, keys
	}
	return keys
}

// Zipf returns n addresses drawn from a Zipf(s) distribution over [0, m):
// address k has probability proportional to 1/(k+1)^s. Skewed reference
// distributions like this are the natural model for irregular application
// data (degree distributions, word frequencies), sitting between the
// uniform and iterated-AND families in contention structure. Sampling is
// by inversion on the precomputed CDF.
func Zipf(n int, m int, s float64, g *rng.Xoshiro256) []uint64 {
	if m <= 0 || s < 0 {
		panic(fmt.Sprintf("patterns: Zipf(m=%d, s=%g)", m, s))
	}
	cdf := make([]float64, m)
	acc := 0.0
	for k := 0; k < m; k++ {
		acc += 1 / math.Pow(float64(k+1), s)
		cdf[k] = acc
	}
	total := cdf[m-1]
	a := make([]uint64, n)
	for i := range a {
		u := g.Float64() * total
		// Binary search the CDF.
		lo, hi := 0, m-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		a[i] = uint64(lo)
	}
	return a
}

// MeasureEntropy returns the empirical Shannon entropy, in bits, of the
// address distribution.
func MeasureEntropy(addrs []uint64) float64 {
	if len(addrs) == 0 {
		return 0
	}
	counts := make(map[uint64]int, len(addrs))
	for _, a := range addrs {
		counts[a]++
	}
	n := float64(len(addrs))
	h := 0.0
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// MaxContention returns the maximum number of occurrences of any single
// address (the QRQW contention κ of the pattern).
func MaxContention(addrs []uint64) int {
	counts := make(map[uint64]int, len(addrs))
	maxC := 0
	for _, a := range addrs {
		counts[a]++
		if counts[a] > maxC {
			maxC = counts[a]
		}
	}
	return maxC
}

// Shuffle returns a copy of addrs in a random order. The paper observes
// that injection order affects network behaviour; the order ablation bench
// uses this.
func Shuffle(addrs []uint64, g *rng.Xoshiro256) []uint64 {
	out := make([]uint64, len(addrs))
	copy(out, addrs)
	g.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// WorstCaseBank returns n distinct addresses that all map to bank 0 under
// interleaved mapping over banks banks (stride = banks). This is the
// worst-case reference pattern of the module-map contention study (F7):
// hardware interleaving serializes it completely, while a random hash map
// spreads it.
func WorstCaseBank(n, banks int) []uint64 {
	return Strided(n, 0, uint64(banks))
}
