package patterns

import (
	"math"
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

func TestAllSame(t *testing.T) {
	a := AllSame(100, 42)
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for _, v := range a {
		if v != 42 {
			t.Fatalf("value %d != 42", v)
		}
	}
	if MaxContention(a) != 100 {
		t.Errorf("contention = %d, want 100", MaxContention(a))
	}
}

func TestContentionExact(t *testing.T) {
	for _, k := range []int{1, 2, 4, 16, 64, 256} {
		n := 256
		a := Contention(n, k, 1)
		if got := MaxContention(a); got != k {
			t.Errorf("Contention(%d,%d): measured contention %d", n, k, got)
		}
		if len(a) != n {
			t.Errorf("len = %d", len(a))
		}
	}
}

func TestContentionSpreadSeparatesBanks(t *testing.T) {
	// With spread = banks+1 (coprime-ish spacing), distinct locations land
	// in distinct banks for small m.
	n, k, banks := 64, 8, 512
	a := Contention(n, k, uint64(banks+1))
	seen := map[int]bool{}
	for _, addr := range a {
		seen[int(addr%uint64(banks))] = true
	}
	if len(seen) != n/k {
		t.Errorf("distinct banks = %d, want %d", len(seen), n/k)
	}
}

func TestContentionPanics(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Contention(%d,%d) should panic", tc.n, tc.k)
				}
			}()
			Contention(tc.n, tc.k, 1)
		}()
	}
}

func TestUniformRange(t *testing.T) {
	g := rng.New(1)
	a := Uniform(10000, 1000, g)
	for _, v := range a {
		if v >= 1000 {
			t.Fatalf("value %d out of range", v)
		}
	}
	// Contention of 10000 balls in 1000 bins should be small (~4-8).
	if c := MaxContention(a); c > 40 {
		t.Errorf("uniform contention %d suspiciously high", c)
	}
}

func TestStrided(t *testing.T) {
	a := Strided(5, 10, 3)
	want := []uint64{10, 13, 16, 19, 22}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}

func TestPermutationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1024) + 1
		a := Permutation(n, rng.New(seed))
		if len(a) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range a {
			if v >= uint64(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return MaxContention(a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEntropyMonotone(t *testing.T) {
	// More AND rounds → lower entropy, higher contention.
	n := 1 << 14
	m := uint64(1 << 16)
	g := rng.New(5)
	prevH := math.Inf(1)
	prevC := 0
	for _, rounds := range []int{0, 1, 2, 4, 8} {
		a := Entropy(n, m, rounds, rng.New(7)) // fresh deterministic stream per family member
		h := MeasureEntropy(a)
		c := MaxContention(a)
		if h > prevH+0.25 {
			t.Errorf("rounds=%d: entropy %v rose from %v", rounds, h, prevH)
		}
		if c < prevC/2 {
			t.Errorf("rounds=%d: contention %d fell sharply from %d", rounds, c, prevC)
		}
		prevH, prevC = h, c
	}
	_ = g
	// Many rounds: keys collapse toward 0.
	far := Entropy(n, m, 40, rng.New(7))
	if c := MaxContention(far); c < n/2 {
		t.Errorf("after 40 rounds contention = %d, want ≈ n", c)
	}
}

func TestEntropyPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two m")
		}
	}()
	Entropy(10, 1000, 1, rng.New(1))
}

func TestMeasureEntropy(t *testing.T) {
	if h := MeasureEntropy(nil); h != 0 {
		t.Errorf("empty entropy = %v", h)
	}
	if h := MeasureEntropy(AllSame(100, 7)); h != 0 {
		t.Errorf("constant entropy = %v, want 0", h)
	}
	// Uniform over 2^k distinct values appearing once each: entropy = k.
	a := Strided(256, 0, 1)
	if h := MeasureEntropy(a); math.Abs(h-8) > 1e-9 {
		t.Errorf("uniform-256 entropy = %v, want 8", h)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	g := rng.New(2)
	a := Uniform(1000, 50, g)
	b := Shuffle(a, g)
	if len(a) != len(b) {
		t.Fatal("length changed")
	}
	ca, cb := map[uint64]int{}, map[uint64]int{}
	for i := range a {
		ca[a[i]]++
		cb[b[i]]++
	}
	for k, v := range ca {
		if cb[k] != v {
			t.Fatalf("multiset mismatch at %d", k)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	g := rng.New(12)
	n, m := 20000, 1000
	a := Zipf(n, m, 1.2, g)
	counts := map[uint64]int{}
	for _, v := range a {
		if v >= uint64(m) {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate and the distribution must be heavy-headed.
	if counts[0] < counts[1] {
		t.Errorf("count(0)=%d < count(1)=%d", counts[0], counts[1])
	}
	if counts[0] < n/20 {
		t.Errorf("head count %d too small for s=1.2", counts[0])
	}
	// s=0 degenerates to uniform: head should NOT dominate.
	u := Zipf(n, m, 0, rng.New(13))
	if c := MaxContention(u); c > n/m*5 {
		t.Errorf("s=0 contention %d, want near uniform %d", c, n/m)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Zipf(1, 0, 1, rng.New(1)) },
		func() { Zipf(1, 10, -1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWorstCaseBank(t *testing.T) {
	banks := 64
	a := WorstCaseBank(100, banks)
	for _, v := range a {
		if v%uint64(banks) != 0 {
			t.Fatalf("address %d not in bank 0", v)
		}
	}
	if MaxContention(a) != 1 {
		t.Error("worst-case pattern should have distinct locations")
	}
}
