// Package program defines a declarative, JSON-serializable description of
// a bulk-synchronous workload — a sequence of supersteps, each with an
// access-pattern specification and optional per-processor compute — and
// costs it under the BSP, (d,x)-BSP and (d,x)-LogP models or by running
// it through the bank simulator. It is the input format of the dxcost
// tool: performance modeling of a sketched algorithm without writing any
// Go.
package program

import (
	"encoding/json"
	"fmt"
	"io"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/surrogate"
)

// PatternSpec declares how to generate one superstep's address stream.
type PatternSpec struct {
	// Kind selects the generator: "contention", "uniform", "entropy",
	// "stride", "allsame", "permutation", "zipf", "explicit".
	Kind string `json:"kind"`
	// N is the number of requests (ignored for "explicit").
	N int `json:"n"`
	// K is the location contention for "contention".
	K int `json:"k,omitempty"`
	// M is the address range for "uniform"/"zipf" and the (power-of-two)
	// key space for "entropy".
	M uint64 `json:"m,omitempty"`
	// Rounds is the AND-round count for "entropy".
	Rounds int `json:"rounds,omitempty"`
	// Stride is the step for "stride".
	Stride uint64 `json:"stride,omitempty"`
	// S is the Zipf exponent.
	S float64 `json:"s,omitempty"`
	// Addrs holds the explicit address list for "explicit".
	Addrs []uint64 `json:"addrs,omitempty"`
}

// maxZipfRange bounds the CDF table a "zipf" spec may request.
const maxZipfRange = 1 << 26

// Build generates the address stream.
func (ps PatternSpec) Build(g *rng.Xoshiro256) ([]uint64, error) {
	if ps.N < 0 {
		return nil, fmt.Errorf("program: negative n %d", ps.N)
	}
	if ps.Kind == "zipf" && ps.M > maxZipfRange {
		return nil, fmt.Errorf("program: zipf range %d exceeds %d", ps.M, maxZipfRange)
	}
	switch ps.Kind {
	case "contention":
		if ps.K <= 0 || ps.N <= 0 || ps.N%ps.K != 0 {
			return nil, fmt.Errorf("program: contention needs k>0 dividing n (n=%d k=%d)", ps.N, ps.K)
		}
		return patterns.Contention(ps.N, ps.K, 1), nil
	case "uniform":
		if ps.M == 0 {
			return nil, fmt.Errorf("program: uniform needs m > 0")
		}
		return patterns.Uniform(ps.N, ps.M, g), nil
	case "entropy":
		if ps.M == 0 || ps.M&(ps.M-1) != 0 {
			return nil, fmt.Errorf("program: entropy needs power-of-two m, got %d", ps.M)
		}
		return patterns.Entropy(ps.N, ps.M, ps.Rounds, g), nil
	case "stride":
		if ps.Stride == 0 {
			return nil, fmt.Errorf("program: stride needs stride > 0")
		}
		return patterns.Strided(ps.N, 0, ps.Stride), nil
	case "allsame":
		return patterns.AllSame(ps.N, 0), nil
	case "permutation":
		return patterns.Permutation(ps.N, g), nil
	case "zipf":
		if ps.M == 0 {
			return nil, fmt.Errorf("program: zipf needs m > 0")
		}
		return patterns.Zipf(ps.N, int(ps.M), ps.S, g), nil
	case "explicit":
		if len(ps.Addrs) == 0 {
			return nil, fmt.Errorf("program: explicit needs addrs")
		}
		return ps.Addrs, nil
	}
	return nil, fmt.Errorf("program: unknown pattern kind %q", ps.Kind)
}

// Superstep is one phase of the workload.
type Superstep struct {
	// Name labels the phase in reports.
	Name string `json:"name"`
	// Pattern is the memory traffic; omit (zero Kind) for compute-only.
	Pattern PatternSpec `json:"pattern,omitempty"`
	// ComputePerProc is local work in cycles per processor.
	ComputePerProc float64 `json:"compute,omitempty"`
	// Repeat executes the superstep this many times (default 1).
	Repeat int `json:"repeat,omitempty"`
}

// Program is a complete workload.
type Program struct {
	Name       string      `json:"name"`
	Seed       uint64      `json:"seed,omitempty"`
	Supersteps []Superstep `json:"supersteps"`
}

// Parse reads a Program from JSON.
func Parse(r io.Reader) (Program, error) {
	var p Program
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Program{}, fmt.Errorf("program: %v", err)
	}
	if len(p.Supersteps) == 0 {
		return Program{}, fmt.Errorf("program: no supersteps")
	}
	return p, nil
}

// StepCost is the costing of one superstep under all models.
type StepCost struct {
	Name     string
	Repeat   int
	Requests int
	Kappa    int // location contention
	BSP      float64
	DXBSP    float64
	DXLogP   float64
	Sim      float64 // 0 unless simulation requested
	// Surrogate is the closed-form queueing surrogate's prediction
	// (internal/surrogate), on the same completion-plus-L basis as Sim.
	// 0 unless requested via CostWith.
	Surrogate float64
}

// Report is the full costing.
type Report struct {
	Machine core.Machine
	Steps   []StepCost
	// Totals across repeats.
	TotalBSP, TotalDXBSP, TotalDXLogP, TotalSim float64
	TotalSurrogate                              float64
}

// Cost evaluates the program on machine m. If simulate is true, each
// superstep also runs through the bank simulator. The per-message
// overhead o parameterizes the (d,x)-LogP column.
func Cost(p Program, m core.Machine, o float64, simulate bool) (Report, error) {
	return CostWith(p, m, o, simulate, false)
}

// CostWith is Cost with the closed-form surrogate as an additional
// column: when surr is true every memory superstep is also predicted by
// internal/surrogate.Predict, directly comparable to the simulated
// column (and to it alone — the BSP-family columns cost a whole
// superstep including synchronization structure, while Sim and
// Surrogate cost the bulk access).
func CostWith(p Program, m core.Machine, o float64, simulate, surr bool) (Report, error) {
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	g := rng.New(p.Seed | 1)
	lp := core.FromMachine(m, o)
	rep := Report{Machine: m}
	for i, st := range p.Supersteps {
		repeat := st.Repeat
		if repeat <= 0 {
			repeat = 1
		}
		sc := StepCost{Name: st.Name, Repeat: repeat}
		if sc.Name == "" {
			sc.Name = fmt.Sprintf("step%d", i)
		}
		if st.Pattern.Kind != "" {
			addrs, err := st.Pattern.Build(g)
			if err != nil {
				return Report{}, fmt.Errorf("superstep %q: %w", sc.Name, err)
			}
			pt := core.NewPattern(addrs, m.Procs)
			prof := core.ComputeProfileCompact(pt, core.InterleaveMap{Banks: m.Banks})
			sc.Requests = prof.N
			sc.Kappa = prof.MaxLoc
			sc.BSP = m.PredictBSP(prof)
			sc.DXBSP = m.PredictDXBSP(prof)
			sc.DXLogP = lp.BulkCostProfile(prof)
			if simulate {
				r, err := sim.Run(sim.Config{Machine: m}, pt)
				if err != nil {
					return Report{}, err
				}
				sc.Sim = r.Cycles + m.L
			}
			if surr {
				r, err := surrogate.Predict(sim.Config{Machine: m}, pt)
				if err != nil {
					return Report{}, fmt.Errorf("superstep %q: %w", sc.Name, err)
				}
				sc.Surrogate = r.Cycles + m.L
			}
		}
		sc.BSP += st.ComputePerProc
		sc.DXBSP += st.ComputePerProc
		sc.DXLogP += st.ComputePerProc
		if simulate {
			sc.Sim += st.ComputePerProc
		}
		if surr {
			sc.Surrogate += st.ComputePerProc
		}
		rep.Steps = append(rep.Steps, sc)
		rep.TotalBSP += sc.BSP * float64(repeat)
		rep.TotalDXBSP += sc.DXBSP * float64(repeat)
		rep.TotalDXLogP += sc.DXLogP * float64(repeat)
		rep.TotalSim += sc.Sim * float64(repeat)
		rep.TotalSurrogate += sc.Surrogate * float64(repeat)
	}
	return rep, nil
}
