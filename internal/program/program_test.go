package program

import (
	"math"
	"strings"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
)

const sampleJSON = `{
  "name": "toy",
  "seed": 7,
  "supersteps": [
    {"name": "spread", "pattern": {"kind": "permutation", "n": 4096}},
    {"name": "hot", "pattern": {"kind": "contention", "n": 4096, "k": 512}, "repeat": 3},
    {"name": "think", "compute": 1000}
  ]
}`

func TestParse(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "toy" || len(p.Supersteps) != 3 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Supersteps[1].Repeat != 3 {
		t.Errorf("repeat = %d", p.Supersteps[1].Repeat)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		``, `{}`, `{"supersteps": []}`,
		`{"supersteps": [{}], "bogusfield": 1}`,
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestPatternSpecBuild(t *testing.T) {
	g := rng.New(1)
	cases := []PatternSpec{
		{Kind: "contention", N: 64, K: 8},
		{Kind: "uniform", N: 64, M: 1000},
		{Kind: "entropy", N: 64, M: 256, Rounds: 2},
		{Kind: "stride", N: 64, Stride: 3},
		{Kind: "allsame", N: 64},
		{Kind: "permutation", N: 64},
		{Kind: "zipf", N: 64, M: 100, S: 1.1},
		{Kind: "explicit", Addrs: []uint64{1, 2, 3}},
	}
	for _, ps := range cases {
		addrs, err := ps.Build(g)
		if err != nil {
			t.Errorf("%s: %v", ps.Kind, err)
			continue
		}
		if len(addrs) == 0 {
			t.Errorf("%s: empty", ps.Kind)
		}
	}
	bad := []PatternSpec{
		{Kind: "nope", N: 4},
		{Kind: "contention", N: 10, K: 3},
		{Kind: "contention", N: 10, K: 0},
		{Kind: "uniform", N: 4},
		{Kind: "entropy", N: 4, M: 100},
		{Kind: "stride", N: 4},
		{Kind: "zipf", N: 4},
		{Kind: "explicit"},
	}
	for _, ps := range bad {
		if _, err := ps.Build(g); err == nil {
			t.Errorf("%+v accepted", ps)
		}
	}
}

func TestCostReport(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Cost(p, core.J90(), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 3 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
	spread, hot, think := rep.Steps[0], rep.Steps[1], rep.Steps[2]
	// The hot phase must show κ=512 and a dx cost above BSP.
	if hot.Kappa != 512 {
		t.Errorf("hot κ = %d", hot.Kappa)
	}
	if hot.DXBSP <= hot.BSP {
		t.Errorf("hot: dx %v should exceed bsp %v", hot.DXBSP, hot.BSP)
	}
	// Spread phase: models agree.
	if spread.DXBSP != spread.BSP {
		t.Errorf("spread: dx %v vs bsp %v", spread.DXBSP, spread.BSP)
	}
	// Compute-only phase.
	if think.Requests != 0 || think.BSP != 1000 {
		t.Errorf("think = %+v", think)
	}
	// Simulation column populated and near the dx prediction for hot.
	if hot.Sim <= 0 || hot.Sim > hot.DXBSP*1.5 || hot.Sim < hot.DXBSP*0.5 {
		t.Errorf("hot sim %v vs dx %v", hot.Sim, hot.DXBSP)
	}
	// Totals respect repeats.
	wantTotal := spread.DXBSP + 3*hot.DXBSP + think.DXBSP
	if diff := rep.TotalDXBSP - wantTotal; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("TotalDXBSP = %v, want %v", rep.TotalDXBSP, wantTotal)
	}
}

func TestCostErrors(t *testing.T) {
	p := Program{Supersteps: []Superstep{{Pattern: PatternSpec{Kind: "nope", N: 4}}}}
	if _, err := Cost(p, core.J90(), 0, false); err == nil {
		t.Error("bad pattern accepted")
	}
	good := Program{Supersteps: []Superstep{{ComputePerProc: 10}}}
	if _, err := Cost(good, core.Machine{}, 0, false); err == nil {
		t.Error("bad machine accepted")
	}
}

func TestCostDeterministic(t *testing.T) {
	p, _ := Parse(strings.NewReader(sampleJSON))
	a, err := Cost(p, core.J90(), 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cost(p, core.J90(), 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDXBSP != b.TotalDXBSP || a.TotalDXLogP != b.TotalDXLogP {
		t.Error("costing not deterministic")
	}
}

// TestCostWithSurrogate: the surrogate column fills for memory steps,
// carries compute, and tracks the simulated column within the pinned
// envelope for the standard workload shapes.
func TestCostWithSurrogate(t *testing.T) {
	p := Program{Name: "s", Supersteps: []Superstep{
		{Name: "hot", Pattern: PatternSpec{Kind: "contention", N: 4096, K: 512}},
		{Name: "calc", ComputePerProc: 100},
	}}
	m := core.J90()
	rep, err := CostWith(p, m, 0, true, true)
	if err != nil {
		t.Fatal(err)
	}
	hot := rep.Steps[0]
	if hot.Surrogate <= 0 {
		t.Fatal("surrogate column empty for memory superstep")
	}
	if rel := math.Abs(hot.Surrogate-hot.Sim) / hot.Sim; rel > 0.25 {
		t.Errorf("surrogate %v vs sim %v: rel err %.3f", hot.Surrogate, hot.Sim, rel)
	}
	if calc := rep.Steps[1]; calc.Surrogate != 100 {
		t.Errorf("compute-only surrogate = %v, want 100", calc.Surrogate)
	}
	if rep.TotalSurrogate <= 0 {
		t.Error("total surrogate empty")
	}
	// Cost (no surrogate) leaves the column zero.
	rep2, err := Cost(p, m, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Steps[0].Surrogate != 0 || rep2.TotalSurrogate != 0 {
		t.Error("surrogate column filled without being requested")
	}
}
