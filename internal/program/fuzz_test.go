package program

import (
	"strings"
	"testing"

	"dxbsp/internal/core"
)

// FuzzParse exercises the workload parser and coster on arbitrary JSON:
// neither may panic, and any accepted program must cost successfully or
// fail with an error (never crash).
func FuzzParse(f *testing.F) {
	f.Add(sampleJSON)
	f.Add(`{"supersteps":[{"compute":5}]}`)
	f.Add(`{"supersteps":[{"pattern":{"kind":"allsame","n":4}}]}`)
	f.Add(`{"supersteps":[{"pattern":{"kind":"contention","n":4,"k":3}}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, in string) {
		p, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		// Clamp sizes so the fuzzer cannot allocate absurd patterns.
		for i := range p.Supersteps {
			if p.Supersteps[i].Pattern.N > 1<<12 {
				p.Supersteps[i].Pattern.N = 1 << 12
			}
			if len(p.Supersteps[i].Pattern.Addrs) > 1<<12 {
				p.Supersteps[i].Pattern.Addrs = p.Supersteps[i].Pattern.Addrs[:1<<12]
			}
		}
		_, _ = Cost(p, core.J90(), 0, false) // must not panic
	})
}
