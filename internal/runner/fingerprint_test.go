package runner

import (
	"strings"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/sim"
)

// TestConfigPrefixCompat pins the cache fingerprint against the exact key
// strings minted before the discipline API existed (captured from the
// pre-refactor build). Checkpoint journals persist results under these
// keys, so a drift here silently invalidates every journal on disk: the
// legacy FIFO encoding (bcl/bhd/brs) must survive the Bank sub-config
// refactor byte for byte.
func TestConfigPrefixCompat(t *testing.T) {
	m := core.J90()
	pt := core.NewPattern([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	for _, tc := range []struct {
		name string
		cfg  sim.Config
		want string
	}{
		{"default", sim.Config{Machine: m},
			"m=J90{p=8 b=512 x=64.0 d=14 g=1 L=0}|bm=interleave:512|w=0|comb=false|nd=0|sect=false|bcl=0|bhd=0|brs=0|pt=fec0f7d148bcf389:8"},
		{"windowed", sim.Config{Machine: m, Window: 8},
			"m=J90{p=8 b=512 x=64.0 d=14 g=1 L=0}|bm=interleave:512|w=8|comb=false|nd=0|sect=false|bcl=0|bhd=0|brs=0|pt=fec0f7d148bcf389:8"},
		{"combining", sim.Config{Machine: m, Combining: true},
			"m=J90{p=8 b=512 x=64.0 d=14 g=1 L=0}|bm=interleave:512|w=0|comb=true|nd=0|sect=false|bcl=0|bhd=0|brs=0|pt=fec0f7d148bcf389:8"},
		{"cached default", sim.Config{Machine: m, BankCacheLines: 4},
			"m=J90{p=8 b=512 x=64.0 d=14 g=1 L=0}|bm=interleave:512|w=0|comb=false|nd=0|sect=false|bcl=4|bhd=1|brs=5|pt=fec0f7d148bcf389:8"},
		{"cached explicit", sim.Config{Machine: m, BankCacheLines: 2, BankHitDelay: 2, BankRowShift: 8},
			"m=J90{p=8 b=512 x=64.0 d=14 g=1 L=0}|bm=interleave:512|w=0|comb=false|nd=0|sect=false|bcl=2|bhd=2|brs=8|pt=fec0f7d148bcf389:8"},
		{"sections", sim.Config{Machine: m, UseSections: true, NetDelay: 3},
			"m=J90{p=8 b=512 x=64.0 d=14 g=1 L=0}|bm=interleave:512|w=0|comb=false|nd=3|sect=true|bcl=0|bhd=0|brs=0|pt=fec0f7d148bcf389:8"},
	} {
		got, ok := SimKey(tc.cfg, pt)
		if !ok {
			t.Errorf("%s: not keyable", tc.name)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: key drifted from the pre-refactor capture\n got: %s\nwant: %s", tc.name, got, tc.want)
		}
	}
}

// The deprecated HS93 fields and the Bank sub-config they fold into must
// produce identical keys, so configs migrated field-by-field keep hitting
// their journaled results.
func TestConfigPrefixLegacyFieldEquivalence(t *testing.T) {
	m := core.J90()
	pt := core.NewPattern([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	for _, tc := range []struct {
		name   string
		legacy sim.Config
		bank   sim.Config
	}{
		{"defaults",
			sim.Config{Machine: m, BankCacheLines: 4},
			sim.Config{Machine: m, Bank: sim.BankConfig{CacheLines: 4}}},
		{"explicit",
			sim.Config{Machine: m, BankCacheLines: 2, BankHitDelay: 2, BankRowShift: 8},
			sim.Config{Machine: m, Bank: sim.BankConfig{CacheLines: 2, HitDelay: 2, RowWords: 1 << 8}}},
	} {
		lk, ok1 := SimKey(tc.legacy, pt)
		bk, ok2 := SimKey(tc.bank, pt)
		if !ok1 || !ok2 {
			t.Fatalf("%s: not keyable", tc.name)
		}
		if lk != bk {
			t.Errorf("%s: legacy and Bank sub-config keys differ\nlegacy: %s\n  bank: %s", tc.name, lk, bk)
		}
	}
}

// Non-FIFO disciplines extend the key after the legacy block: every knob
// must be covered (two configs differing in any knob get distinct keys),
// and the GPU bank map must be keyable.
func TestConfigPrefixDisciplines(t *testing.T) {
	m := core.J90()
	pt := core.NewPattern([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	configs := []sim.Config{
		{Machine: m, Bank: sim.BankConfig{Discipline: sim.DRAM}},
		{Machine: m, Bank: sim.BankConfig{Discipline: sim.DRAM, CacheLines: 2}},
		{Machine: m, Bank: sim.BankConfig{Discipline: sim.DRAM, MissDelay: 20}},
		{Machine: m, Bank: sim.BankConfig{Discipline: sim.DRAM, Groups: 8, GroupGap: 2}},
		{Machine: m, Bank: sim.BankConfig{Discipline: sim.Regulated}},
		{Machine: m, Bank: sim.BankConfig{Discipline: sim.Regulated, RegWindow: 100, RegBudget: 3}},
		{Machine: m, Bank: sim.BankConfig{Discipline: sim.GPUShared}},
		{Machine: m, Bank: sim.BankConfig{Discipline: sim.GPUShared, WarpSize: 16}},
	}
	seen := make(map[string]int)
	for i, cfg := range configs {
		k, ok := SimKey(cfg, pt)
		if !ok {
			t.Fatalf("config %d: not keyable", i)
		}
		if !strings.Contains(k, "disc="+cfg.Bank.Discipline.String()+"|") {
			t.Errorf("config %d: key %q does not name its discipline", i, k)
		}
		if j, dup := seen[k]; dup {
			t.Errorf("configs %d and %d collide on key %q", j, i, k)
		}
		seen[k] = i
	}
}
