package runner

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one record of the machine-readable run log: experiment and
// point lifecycle, with wall-clock durations in milliseconds. Events are
// emitted in completion order, which under parallelism is not sweep order;
// the rendered tables, not the event log, carry the determinism guarantee.
type Event struct {
	// Type is "experiment_start", "point_done", "point_retry",
	// "point_failed", "fault_injected", "experiment_done",
	// "checkpoint_loaded", "run_done", or one of the distributed-sweep
	// types: "shard_done", "range_claimed", "range_done",
	// "lease_reclaimed", "worker_done", "merge_done", "sweep_done".
	Type string `json:"type"`
	// ElapsedMS is the time since the log was opened.
	ElapsedMS float64 `json:"elapsed_ms"`

	Experiment string  `json:"experiment,omitempty"`
	Point      string  `json:"point,omitempty"`
	Index      *int    `json:"index,omitempty"`
	Points     int     `json:"points,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`

	Workers     int     `json:"workers,omitempty"`
	Utilization float64 `json:"utilization,omitempty"`

	// Attempt is the attempt number that failed (point_retry,
	// point_failed); Error is its message. Fault is the injected fault kind
	// (fault_injected). Failed counts permanently failed points
	// (experiment_done, run_done) — nonzero means a degraded run.
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
	Fault   string `json:"fault,omitempty"`
	Failed  int    `json:"failed,omitempty"`

	CacheHits     uint64 `json:"cache_hits,omitempty"`
	CacheMisses   uint64 `json:"cache_misses,omitempty"`
	CacheBypassed uint64 `json:"cache_bypassed,omitempty"`

	// Checkpoint journal counters (checkpoint_loaded, run_done).
	CheckpointEntries  int    `json:"checkpoint_entries,omitempty"`
	CheckpointSkipped  int    `json:"checkpoint_skipped,omitempty"`
	CheckpointRestored uint64 `json:"checkpoint_restored,omitempty"`
	CheckpointAppended uint64 `json:"checkpoint_appended,omitempty"`

	// Distributed-sweep fields: Shard is the static shard spec ("1/4"),
	// Worker the claiming worker's id, Range the manifest range id
	// (range_claimed, range_done, lease_reclaimed). Ranges counts manifest
	// ranges (worker_done, sweep_done: ranges completed by that worker /
	// in total); Reclaimed counts leases reclaimed from expired workers.
	Shard     string `json:"shard,omitempty"`
	Worker    string `json:"worker,omitempty"`
	Range     string `json:"range,omitempty"`
	Ranges    int    `json:"ranges,omitempty"`
	Reclaimed int    `json:"reclaimed,omitempty"`
}

// EventLog serializes events as JSON lines to a writer. Safe for
// concurrent use; a nil *EventLog discards everything.
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	enc   *json.Encoder
	start time.Time
}

// NewEventLog opens a JSON-lines event log on w.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, enc: json.NewEncoder(w), start: time.Now()}
}

// Emit appends one event to the log, stamping its elapsed time. Callers
// that drive RunExperiment directly (cmd/dxbench) use it to record
// run-level events; a nil receiver discards the event.
func (l *EventLog) Emit(ev Event) { l.emit(ev) }

func (l *EventLog) emit(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.ElapsedMS = float64(time.Since(l.start)) / float64(time.Millisecond)
	// Encoding a fixed struct cannot fail; a write error on the log sink
	// must not abort the run, so it is deliberately dropped.
	_ = l.enc.Encode(ev)
}
