package runner

import (
	"bytes"
	"io"
	"testing"
)

// FuzzJournalDecode drives the checkpoint loader with arbitrary bytes: it
// must never panic, never serve a record that fails its checksum, and be
// stable — decoding, re-encoding the surviving entries and decoding again
// must reproduce them exactly with nothing skipped.
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{garbage"))
	f.Add([]byte(`{"k":"","r":{},"s":"0000000000000000"}`))
	good := encodeRecord("key1", testResult(1))
	f.Add(append(good, '\n'))
	f.Add(good[:len(good)/2])
	two := append(append(append([]byte{}, good...), '\n'), encodeRecord("key2", testResult(2))...)
	f.Add(two)
	corrupted := bytes.Replace(good, []byte(`"Cycles"`), []byte(`"CyXles"`), 1)
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, _, skipped := decodeJournal(data, io.Discard)
		if skipped < 0 {
			t.Fatalf("negative skip count %d", skipped)
		}
		for key, res := range entries {
			if key == "" {
				t.Fatal("empty key survived decoding")
			}
			// Every surviving record must verify: a mismatch here means a
			// corrupted record was served as a hit.
			line := encodeRecord(key, res)
			re, _, reSkipped := decodeJournal(append(line, '\n'), io.Discard)
			if reSkipped != 0 {
				t.Fatalf("surviving record fails its own checksum: %q", line)
			}
			if got := re[key]; got != res {
				t.Fatalf("round trip changed %q: %+v -> %+v", key, res, got)
			}
		}
	})
}
