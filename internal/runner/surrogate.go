package runner

import (
	"context"
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/sim"
	"dxbsp/internal/surrogate"
)

// SurrogateMode selects how the runner routes simulation requests to the
// closed-form surrogate (internal/surrogate).
type SurrogateMode int

const (
	// SurrogateNever routes nothing: every request event-simulates.
	SurrogateNever SurrogateMode = iota
	// SurrogateAuto routes eligible requests at or above the size
	// threshold; small points keep the simulator's exact answer.
	SurrogateAuto
	// SurrogateAlways routes every eligible request. Ineligible
	// configurations (DRAM, GPU, combining, sections) still simulate.
	SurrogateAlways
)

// DefaultSurrogateThreshold is the request count at which auto mode
// switches a point from event simulation to the closed form. Simulator
// wall time grows linearly in the request count while the surrogate's
// is constant, so the threshold is sized where a point starts costing
// tens of milliseconds — below it exactness is free, above it the sweep
// stops being interactive.
const DefaultSurrogateThreshold = 65536

func (m SurrogateMode) String() string {
	switch m {
	case SurrogateAuto:
		return "auto"
	case SurrogateAlways:
		return "always"
	default:
		return "never"
	}
}

// ParseSurrogateMode maps a CLI name to its SurrogateMode.
func ParseSurrogateMode(s string) (SurrogateMode, error) {
	switch s {
	case "never", "":
		return SurrogateNever, nil
	case "auto":
		return SurrogateAuto, nil
	case "always":
		return SurrogateAlways, nil
	}
	return SurrogateNever, fmt.Errorf("unknown surrogate mode %q (want never, auto, or always)", s)
}

// SurrogateRouting configures the runner's surrogate routing. The zero
// value (SurrogateNever) is a no-op.
type SurrogateRouting struct {
	Mode SurrogateMode
	// Threshold is the minimum request count auto mode routes; 0 means
	// DefaultSurrogateThreshold. Ignored by never and always.
	Threshold int
}

// surrogateRouter sits outermost in the RunSim chain — above the probe
// and the cache — so a routed point skips simulation entirely: no probe
// contribution, no cache entry, no journal append. Results it produces
// carry Result.Analytic, and the observer tallies them under the
// dxbsp_surrogate_* series instead of the dxbsp_sim_* ones.
type surrogateRouter struct {
	policy SurrogateRouting
	next   experiments.SimRunner // nil means sim.RunContext directly
	obs    *Observer
}

func (s *surrogateRouter) RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	if s.route(pt) {
		if res, err := surrogate.Predict(cfg, pt); err == nil {
			if s.obs != nil {
				s.obs.ObserveSurrogate(cfg, pt, surrogate.MaxRelErr(cfg))
			}
			return res, nil
		}
		// Ineligible (or invalid) for the closed form: let the simulator
		// produce the exact answer or the authoritative validation error.
	}
	if s.next != nil {
		return s.next.RunSim(ctx, cfg, pt)
	}
	return sim.RunContext(ctx, cfg, pt)
}

func (s *surrogateRouter) route(pt core.Pattern) bool {
	switch s.policy.Mode {
	case SurrogateAlways:
		return true
	case SurrogateAuto:
		th := s.policy.Threshold
		if th <= 0 {
			th = DefaultSurrogateThreshold
		}
		return pt.N() >= th
	}
	return false
}
