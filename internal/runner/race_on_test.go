//go:build race

package runner

// raceEnabled reports whether this test binary was built with the race
// detector, which deliberately defeats sync.Pool caching; allocation
// pins on pooled paths only hold without it.
const raceEnabled = true
