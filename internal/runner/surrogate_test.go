package runner

import (
	"context"
	"strings"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
)

func TestParseSurrogateMode(t *testing.T) {
	for in, want := range map[string]SurrogateMode{
		"": SurrogateNever, "never": SurrogateNever,
		"auto": SurrogateAuto, "always": SurrogateAlways,
	} {
		got, err := ParseSurrogateMode(in)
		if err != nil || got != want {
			t.Errorf("ParseSurrogateMode(%q) = %v, %v; want %v", in, got, err, want)
		}
		if in != "" && got.String() != in {
			t.Errorf("String() = %q, want %q", got.String(), in)
		}
	}
	if _, err := ParseSurrogateMode("sometimes"); err == nil {
		t.Error("bad mode accepted")
	}
}

func surrogateTestInputs(n int) (sim.Config, core.Pattern) {
	m := core.Machine{Name: "t", Procs: 4, Banks: 64, D: 6, G: 1, L: 16}
	addrs := patterns.Uniform(n, 1<<20, rng.New(3))
	return sim.Config{Machine: m}, core.NewPattern(addrs, m.Procs)
}

// countingRunner counts delegated simulations.
type countingRunner struct{ calls int }

func (c *countingRunner) RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	c.calls++
	return sim.RunContext(ctx, cfg, pt)
}

func TestSurrogateRouterModes(t *testing.T) {
	cfg, pt := surrogateTestInputs(256)
	ctx := context.Background()

	// never: always delegates.
	next := &countingRunner{}
	router := &surrogateRouter{policy: SurrogateRouting{Mode: SurrogateNever}, next: next}
	res, err := router.RunSim(ctx, cfg, pt)
	if err != nil || res.Analytic || next.calls != 1 {
		t.Fatalf("never: res.Analytic=%v calls=%d err=%v", res.Analytic, next.calls, err)
	}

	// always: eligible points come back analytic without touching next.
	next = &countingRunner{}
	router = &surrogateRouter{policy: SurrogateRouting{Mode: SurrogateAlways}, next: next}
	res, err = router.RunSim(ctx, cfg, pt)
	if err != nil || !res.Analytic || next.calls != 0 {
		t.Fatalf("always: res.Analytic=%v calls=%d err=%v", res.Analytic, next.calls, err)
	}

	// always + ineligible discipline: falls through to the simulator.
	dram := cfg
	dram.Bank = sim.BankConfig{Discipline: sim.DRAM}
	res, err = router.RunSim(ctx, dram, pt)
	if err != nil || res.Analytic || next.calls != 1 {
		t.Fatalf("always/ineligible: res.Analytic=%v calls=%d err=%v", res.Analytic, next.calls, err)
	}

	// auto: threshold splits small from large.
	next = &countingRunner{}
	router = &surrogateRouter{policy: SurrogateRouting{Mode: SurrogateAuto, Threshold: 1024}, next: next}
	if res, _ := router.RunSim(ctx, cfg, pt); res.Analytic || next.calls != 1 {
		t.Fatalf("auto/small: routed below threshold")
	}
	bigCfg, bigPt := surrogateTestInputs(1024)
	if res, _ := router.RunSim(ctx, bigCfg, bigPt); !res.Analytic || next.calls != 1 {
		t.Fatalf("auto/large: not routed at threshold")
	}

	// nil next delegates straight to the engine.
	router = &surrogateRouter{policy: SurrogateRouting{Mode: SurrogateNever}}
	if res, err := router.RunSim(ctx, cfg, pt); err != nil || res.Cycles <= 0 {
		t.Fatalf("nil next: %v %v", res.Cycles, err)
	}
}

// TestObserveSurrogateMetrics pins the conditional-registration contract:
// a run with no surrogate routing exports exactly the pre-router series
// set, and routed runs add deduplicated dxbsp_surrogate_* series.
func TestObserveSurrogateMetrics(t *testing.T) {
	o := NewObserver()
	for _, s := range o.Snapshot(true) {
		if strings.HasPrefix(s.Name, "dxbsp_surrogate") {
			t.Fatalf("surrogate series %s present with no routed points", s.Name)
		}
	}

	cfg, pt := surrogateTestInputs(256)
	o.ObserveSurrogate(cfg, pt, 0.17)
	o.ObserveSurrogate(cfg, pt, 0.17) // re-execution dedupes
	cfg2, pt2 := surrogateTestInputs(512)
	o.ObserveSurrogate(cfg2, pt2, 0.23)

	var points, bound float64
	seen := map[string]bool{}
	for _, s := range o.Snapshot(true) {
		seen[s.Name] = true
		switch s.Name {
		case "dxbsp_surrogate_points":
			points = s.Value
		case "dxbsp_surrogate_maxrelerr":
			bound = s.Value
		}
	}
	if !seen["dxbsp_surrogate_points"] || !seen["dxbsp_surrogate_maxrelerr"] {
		t.Fatalf("surrogate series missing after routing: %v", seen)
	}
	if points != 2 {
		t.Errorf("surrogate points = %v, want 2 (dedup by content key)", points)
	}
	if bound != 0.23 {
		t.Errorf("maxrelerr = %v, want 0.23", bound)
	}
}

// TestRunnerSurrogateExperiment runs a real experiment through the
// composed chain with Mode=always and checks the routed results skip
// the cache (no entries) while the output stays assembled normally.
func TestRunnerSurrogateExperiment(t *testing.T) {
	cache := NewCache()
	obs := NewObserver()
	r := &Runner{Parallel: 2, Cache: cache, Metrics: obs,
		Surrogate: SurrogateRouting{Mode: SurrogateAlways}}
	exps := experiments.Huge()
	if len(exps) == 0 {
		t.Fatal("no huge experiments registered")
	}
	res, err := r.RunExperiment(context.Background(), exps[0], experiments.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Points == 0 {
		t.Fatal("no points executed")
	}
	cs := cache.Stats()
	if cs.Misses != 0 || cs.Hits != 0 {
		t.Errorf("routed points touched the cache: %+v", cs)
	}
	var sb strings.Builder
	res.Output.Render(&sb)
	if !strings.Contains(sb.String(), "*") {
		t.Errorf("no surrogate-tagged cells in output:\n%s", sb.String())
	}
	found := false
	for _, s := range obs.Snapshot(false) {
		if s.Name == "dxbsp_surrogate_points" && s.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("dxbsp_surrogate_points not exported after routed experiment")
	}
}
