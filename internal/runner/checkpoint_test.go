package runner

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dxbsp/internal/sim"
)

func testResult(i int) sim.Result {
	return sim.Result{Cycles: 1000.25 + float64(i)/3, Requests: 10 * i, BankServices: 9 * i,
		MaxBankServed: i, MaxBankQueue: i + 1, BankBusy: 0.125 * float64(i), RowHits: i % 2}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		j.Append(string(rune('a'+i)), testResult(i))
	}
	j.Append("a", testResult(99)) // duplicate key: first write wins
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 5 {
		t.Fatalf("reloaded %d entries, want 5", j2.Len())
	}
	for i := 0; i < 5; i++ {
		got, ok := j2.Lookup(string(rune('a' + i)))
		if !ok {
			t.Fatalf("entry %d missing after reload", i)
		}
		if got != testResult(i) {
			t.Errorf("entry %d = %+v, want %+v (JSON round-trip must be exact)", i, got, testResult(i))
		}
	}
	st := j2.Stats()
	if st.Loaded != 5 || st.Skipped != 0 || st.Restored != 5 {
		t.Errorf("stats = %+v", st)
	}
}

// Opening without resume truncates: a fresh run must not silently reuse a
// stale journal.
func TestJournalTruncatesWithoutResume(t *testing.T) {
	dir := t.TempDir()
	j, _ := OpenJournal(dir, false, nil)
	j.Append("k", testResult(1))
	j.Close()
	j2, err := OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 0 {
		t.Errorf("non-resume open kept %d entries", j2.Len())
	}
}

// Corrupt and truncated records are skipped with a warning, never fatal,
// and never a false hit; intact records around them survive.
func TestJournalSkipsCorruptRecords(t *testing.T) {
	good1 := string(encodeRecord("k1", testResult(1)))
	good2 := string(encodeRecord("k2", testResult(2)))
	tampered := strings.Replace(string(encodeRecord("k3", testResult(3))), `"Cycles":1001.25`, `"Cycles":9999`, 1)
	data := good1 + "\n" + "{garbage\n" + tampered + "\n" + good2 + "\n" + good2[:len(good2)/2]

	var warn strings.Builder
	entries, _, skipped := decodeJournal([]byte(data), &warn)
	if skipped != 3 {
		t.Errorf("skipped = %d, want 3 (garbage, tampered, truncated)", skipped)
	}
	if len(entries) != 2 {
		t.Errorf("entries = %d, want 2", len(entries))
	}
	if _, ok := entries["k3"]; ok {
		t.Error("tampered record served as a hit")
	}
	if warn.Len() == 0 {
		t.Error("no warnings emitted")
	}
}

func TestJournalResumeFromCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	line := encodeRecord("k", testResult(4))
	content := append(append([]byte{}, line...), []byte("\nnot json at all\n")...)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	var warn strings.Builder
	j, err := OpenJournal(dir, true, &warn)
	if err != nil {
		t.Fatalf("corrupt journal was fatal: %v", err)
	}
	defer j.Close()
	if j.Len() != 1 || j.Stats().Skipped != 1 {
		t.Errorf("Len=%d Skipped=%d, want 1/1", j.Len(), j.Stats().Skipped)
	}
	if !strings.Contains(warn.String(), "skipping") {
		t.Errorf("warning missing:\n%s", warn.String())
	}
}

// The cache serves journal hits without executing and journals every
// computed result; errors are never journaled.
func TestCacheJournalIntegration(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.Journal = j
	cfg, pt := testConfig(), testPattern(256, 1)
	want, err := c.RunSim(context.Background(), cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Window = -1
	if _, err := c.RunSim(context.Background(), bad, pt); err == nil {
		t.Fatal("invalid config succeeded")
	}
	j.Close()

	// A fresh cache resuming from the journal serves the result without a
	// miss; the failed simulation was not journaled.
	j2, err := OpenJournal(dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("journal holds %d entries, want 1 (errors must not be journaled)", j2.Len())
	}
	c2 := NewCache()
	c2.Journal = j2
	got, err := c2.RunSim(context.Background(), cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("restored result %+v differs from computed %+v", got, want)
	}
	if st := c2.Stats(); st.Misses != 0 {
		t.Errorf("resume re-executed the simulation: %+v", st)
	}
	if js := j2.Stats(); js.Restored != 1 {
		t.Errorf("journal stats = %+v, want 1 restored", js)
	}
}

// A disabled journal (write failure) must not fail the run.
func TestJournalWriteFailureNonFatal(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var warn strings.Builder
	j.warn = &warn
	j.f.Close() // force the next write to fail
	j.Append("k", testResult(1))
	if _, ok := j.Lookup("k"); !ok {
		t.Error("in-memory entry lost after write failure")
	}
	if !strings.Contains(warn.String(), "journaling disabled") {
		t.Errorf("no warning: %q", warn.String())
	}
	j.f = nil // already closed
}
