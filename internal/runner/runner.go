// Package runner executes experiments over a worker pool with memoized
// simulation, preserving the serial path's output byte for byte.
//
// The engine exploits the three-stage experiment decomposition
// (Points/RunPoint/Assemble): Points runs serially — it performs the
// shared-RNG input generation and so must see the draws in sweep order —
// then the points fan out across workers, and Assemble consumes results
// ordered by point index, not completion order. Determinism therefore
// holds for any worker count.
//
// A Cache installed on the Runner memoizes every simulation issued through
// experiments.Config.RunSim, keyed by the full request content (machine,
// config knobs, bank map fingerprint, pattern digest), so baselines shared
// between sweeps — and between experiments — execute once per run.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"dxbsp/internal/experiments"
)

// Runner executes experiments. The zero value runs serially with no
// cache, no progress and no event log.
type Runner struct {
	// Parallel is the worker count for point execution; values < 1 mean
	// GOMAXPROCS.
	Parallel int
	// Cache, when non-nil, memoizes simulations across points and across
	// experiments for the lifetime of the Runner.
	Cache *Cache
	// Events, when non-nil, receives a JSON event per lifecycle step.
	Events *EventLog
	// Progress, when non-nil, receives human-readable one-line updates as
	// points complete (typically stderr, so stdout stays parseable).
	Progress io.Writer
}

// Stats describes one experiment's execution.
type Stats struct {
	// Points is the number of sweep points executed.
	Points int
	// Workers is the number of goroutines the points were spread over.
	Workers int
	// Wall is the experiment's total wall time (Points + RunPoint fan-out
	// + Assemble).
	Wall time.Duration
	// Busy is point execution time summed over workers; Busy/(Wall*Workers)
	// is the pool utilization.
	Busy time.Duration
}

// Utilization returns the fraction of the pool's wall-time capacity spent
// executing points: 1.0 means every worker was busy for the whole run.
func (s Stats) Utilization() float64 {
	if s.Wall <= 0 || s.Workers <= 0 {
		return 0
	}
	u := float64(s.Busy) / (float64(s.Wall) * float64(s.Workers))
	if u > 1 {
		u = 1
	}
	return u
}

// Result couples an experiment's rendered output with its execution stats.
type Result struct {
	ID     string
	Title  string
	Output experiments.Renderable
	Stats  Stats
}

func (r *Runner) workers() int {
	if r.Parallel >= 1 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// RunExperiment executes one experiment: Points serially, RunPoint across
// the pool, Assemble on the index-ordered results. The output is
// byte-identical to experiments.Experiment.Run for every worker count.
func (r *Runner) RunExperiment(ctx context.Context, e experiments.Experiment, cfg experiments.Config) (Result, error) {
	if r.Cache != nil && cfg.Sim == nil {
		cfg.Sim = r.Cache
	}
	start := time.Now()

	pts := e.Points(cfg)
	workers := r.workers()
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers < 1 {
		workers = 1
	}
	r.Events.emit(Event{Type: "experiment_start", Experiment: e.ID, Points: len(pts), Workers: workers})

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		results  = make([]experiments.PointResult, len(pts))
		todo     = make(chan int)
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		busy     time.Duration
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localBusy time.Duration
			for i := range todo {
				p := pts[i]
				t0 := time.Now()
				res, err := e.RunPoint(ctx, cfg, p)
				d := time.Since(t0)
				localBusy += d
				if err != nil {
					fail(fmt.Errorf("%s/%s: %w", e.ID, p.Label, err))
					continue
				}
				results[i] = res
				idx := p.Index
				r.Events.emit(Event{Type: "point_done", Experiment: e.ID, Point: p.Label, Index: &idx,
					DurationMS: float64(d) / float64(time.Millisecond)})
				mu.Lock()
				done++
				n := done
				mu.Unlock()
				if r.Progress != nil {
					fmt.Fprintf(r.Progress, "[%s] %d/%d %s\n", e.ID, n, len(pts), p.Label)
				}
			}
			mu.Lock()
			busy += localBusy
			mu.Unlock()
		}()
	}
dispatch:
	for i := range pts {
		select {
		case todo <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(todo)
	wg.Wait()

	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			firstErr = fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	if firstErr != nil {
		return Result{}, firstErr
	}

	out := e.Assemble(cfg, results)
	st := Stats{Points: len(pts), Workers: workers, Wall: time.Since(start), Busy: busy}
	r.Events.emit(Event{Type: "experiment_done", Experiment: e.ID, Points: st.Points, Workers: st.Workers,
		DurationMS: float64(st.Wall) / float64(time.Millisecond), Utilization: st.Utilization()})
	return Result{ID: e.ID, Title: e.Title, Output: out, Stats: st}, nil
}

// RunAll executes the experiments in order, stopping at the first error.
// Each experiment's points run across the pool; the shared Cache carries
// memoized simulations from one experiment to the next. The final
// "run_done" event carries the cache totals.
func (r *Runner) RunAll(ctx context.Context, exps []experiments.Experiment, cfg experiments.Config) ([]Result, error) {
	out := make([]Result, 0, len(exps))
	for _, e := range exps {
		res, err := r.RunExperiment(ctx, e, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	ev := Event{Type: "run_done", Points: totalPoints(out)}
	if r.Cache != nil {
		cs := r.Cache.Stats()
		ev.CacheHits, ev.CacheMisses, ev.CacheBypassed = cs.Hits, cs.Misses, cs.Bypassed
	}
	r.Events.emit(ev)
	return out, nil
}

func totalPoints(rs []Result) int {
	n := 0
	for _, r := range rs {
		n += r.Stats.Points
	}
	return n
}
