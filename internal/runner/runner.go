// Package runner executes experiments over a worker pool with memoized
// simulation, preserving the serial path's output byte for byte.
//
// The engine exploits the three-stage experiment decomposition
// (Points/RunPoint/Assemble): Points runs serially — it performs the
// shared-RNG input generation and so must see the draws in sweep order —
// then the points fan out across workers, and Assemble consumes results
// ordered by point index, not completion order. Determinism therefore
// holds for any worker count.
//
// A Cache installed on the Runner memoizes every simulation issued through
// experiments.Config.RunSim, keyed by the full request content (machine,
// config knobs, bank map fingerprint, pattern digest), so baselines shared
// between sweeps — and between experiments — execute once per run.
//
// The runner is also the engine's failure boundary: every point attempt
// runs under a recover() guard and an optional deadline, transient
// failures retry with deterministic seeded backoff (RetryPolicy), and in
// degraded mode a point that exhausts its budget becomes a footnoted cell
// instead of aborting the suite. A Journal on the Cache checkpoints
// completed simulations to disk for crash-safe resume.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"dxbsp/internal/experiments"
)

// Runner executes experiments. The zero value runs serially with no
// cache, no progress and no event log, fails fast, and never retries.
type Runner struct {
	// Parallel is the worker count for point execution; values < 1 mean
	// GOMAXPROCS.
	Parallel int
	// Cache, when non-nil, memoizes simulations across points and across
	// experiments for the lifetime of the Runner.
	Cache *Cache
	// Events, when non-nil, receives a JSON event per lifecycle step.
	Events *EventLog
	// Progress, when non-nil, receives human-readable one-line updates as
	// points complete (typically stderr, so stdout stays parseable).
	Progress io.Writer
	// Metrics, when non-nil, collects telemetry: it is attached as a
	// sim.Probe to every simulation issued through the experiment config
	// (above the cache, so the probe rides through injector and cache
	// without affecting cache identity) and receives runner-level
	// observations as points and experiments complete.
	Metrics *Observer

	// Retry bounds re-execution of points whose failure is classified
	// transient (IsTransient). The zero value disables retrying.
	Retry RetryPolicy
	// PointTimeout, when positive, is the deadline for a single point
	// attempt. Expiry is a transient failure (the run is still live), so
	// the retry budget applies.
	PointTimeout time.Duration
	// Degraded keeps the suite running when a point exhausts its retry
	// budget: the failure is recorded as the point's result (rendered as a
	// footnoted cell by Assemble) instead of aborting the experiment.
	// Run-level cancellation still aborts.
	Degraded bool

	// Surrogate routes simulation requests to the closed-form surrogate
	// (internal/surrogate) by mode and size threshold. The router sits
	// outermost — above probe, cache and journal — so routed points skip
	// the whole simulation stack. The zero value routes nothing.
	Surrogate SurrogateRouting
}

// Stats describes one experiment's execution.
type Stats struct {
	// Points is the number of sweep points executed.
	Points int
	// Workers is the number of goroutines the points were spread over.
	Workers int
	// Wall is the experiment's total wall time (Points + RunPoint fan-out
	// + Assemble).
	Wall time.Duration
	// Busy is point execution time summed over workers; Busy/(Wall*Workers)
	// is the pool utilization.
	Busy time.Duration
	// Retries counts point re-executions after transient failures.
	Retries int
	// Failed counts points that exhausted their retry budget (degraded
	// mode only; fail-fast runs abort on the first such point).
	Failed int
}

// Utilization returns the fraction of the pool's wall-time capacity spent
// executing points: 1.0 means every worker was busy for the whole run.
func (s Stats) Utilization() float64 {
	if s.Wall <= 0 || s.Workers <= 0 {
		return 0
	}
	u := float64(s.Busy) / (float64(s.Wall) * float64(s.Workers))
	if u > 1 {
		u = 1
	}
	return u
}

// Result couples an experiment's rendered output with its execution stats.
type Result struct {
	ID     string
	Title  string
	Output experiments.Renderable
	Stats  Stats
	// Failed lists the points that exhausted their retry budget, ordered
	// by point index. Non-empty only in degraded mode; the corresponding
	// cells are footnoted in Output.
	Failed []*PointError
}

func (r *Runner) workers() int {
	if r.Parallel >= 1 {
		return r.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runPointOnce executes a single attempt of one point under the panic
// guard and the per-point deadline. A recovered panic becomes a
// *PanicError (permanent: a deterministic point that panicked once will
// panic again); a failure caused by the point deadline alone — the run
// context still live — is marked transient so the retry budget applies.
func (r *Runner) runPointOnce(ctx context.Context, e experiments.Experiment, cfg experiments.Config, p experiments.Point) (res experiments.PointResult, err error) {
	pctx := ctx
	if r.PointTimeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, r.PointTimeout)
		defer cancel()
	}
	defer func() {
		if v := recover(); v != nil {
			stack := make([]byte, 64<<10)
			stack = stack[:runtime.Stack(stack, false)]
			err = &PanicError{Value: v, Stack: stack}
		}
	}()
	res, err = e.RunPoint(pctx, cfg, p)
	if err != nil && pctx.Err() != nil && ctx.Err() == nil {
		err = MarkTransient(fmt.Errorf("point deadline (%v) exceeded: %w", r.PointTimeout, err))
	}
	return res, err
}

// runPoint executes one point under the retry policy. On success the
// number of attempts consumed is returned; on failure the error is a
// *PointError carrying the final attempt's cause.
func (r *Runner) runPoint(ctx context.Context, e experiments.Experiment, cfg experiments.Config, p experiments.Point) (experiments.PointResult, int, *PointError) {
	budget := r.Retry.attempts()
	for attempt := 1; ; attempt++ {
		res, err := r.runPointOnce(ctx, e, cfg, p)
		if err == nil {
			return res, attempt, nil
		}
		if attempt >= budget || !IsTransient(err) || ctx.Err() != nil {
			return experiments.PointResult{}, attempt,
				&PointError{Experiment: e.ID, Point: p.Label, Index: p.Index, Attempts: attempt, Err: err}
		}
		idx := p.Index
		r.Events.emit(Event{Type: "point_retry", Experiment: e.ID, Point: p.Label, Index: &idx,
			Attempt: attempt, Error: err.Error()})
		select {
		case <-time.After(r.Retry.Backoff(e.ID, p.Index, attempt)):
		case <-ctx.Done():
			return experiments.PointResult{}, attempt,
				&PointError{Experiment: e.ID, Point: p.Label, Index: p.Index, Attempts: attempt, Err: ctx.Err()}
		}
	}
}

// RunExperiment executes one experiment: Points serially, RunPoint across
// the pool, Assemble on the index-ordered results. The output is
// byte-identical to experiments.Experiment.Run for every worker count.
func (r *Runner) RunExperiment(ctx context.Context, e experiments.Experiment, cfg experiments.Config) (Result, error) {
	if r.Cache != nil && cfg.Sim == nil {
		cfg.Sim = r.Cache
	}
	if r.Metrics != nil {
		cfg.Sim = &probeRunner{next: cfg.Sim, probe: r.Metrics}
	}
	if r.Surrogate.Mode != SurrogateNever {
		cfg.Sim = &surrogateRouter{policy: r.Surrogate, next: cfg.Sim, obs: r.Metrics}
	}
	start := time.Now()

	pts := e.Points(cfg)
	workers := r.workers()
	if workers > len(pts) {
		workers = len(pts)
	}
	if workers < 1 {
		workers = 1
	}
	r.Events.emit(Event{Type: "experiment_start", Experiment: e.ID, Points: len(pts), Workers: workers})

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		results  = make([]experiments.PointResult, len(pts))
		todo     = make(chan int)
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		busy     time.Duration
		retries  int
		failed   []*PointError
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var localBusy time.Duration
			for i := range todo {
				p := pts[i]
				t0 := time.Now()
				res, attempts, perr := r.runPoint(ctx, e, cfg, p)
				d := time.Since(t0)
				localBusy += d
				if r.Metrics != nil {
					r.Metrics.ObservePoint(d)
				}
				mu.Lock()
				retries += attempts - 1
				mu.Unlock()
				idx := p.Index
				if perr != nil {
					if ctx.Err() != nil {
						// The run is being torn down; the cancellation, not
						// this point, is the story.
						continue
					}
					if !r.Degraded {
						fail(perr)
						continue
					}
					results[i] = experiments.PointResult{Index: p.Index, Label: p.Label, Err: perr}
					mu.Lock()
					failed = append(failed, perr)
					mu.Unlock()
					r.Events.emit(Event{Type: "point_failed", Experiment: e.ID, Point: p.Label, Index: &idx,
						Attempt: perr.Attempts, Error: perr.Err.Error()})
				} else {
					results[i] = res
					r.Events.emit(Event{Type: "point_done", Experiment: e.ID, Point: p.Label, Index: &idx,
						DurationMS: float64(d) / float64(time.Millisecond)})
				}
				mu.Lock()
				done++
				n := done
				mu.Unlock()
				if r.Progress != nil {
					status := ""
					if perr != nil {
						status = " FAILED"
					}
					fmt.Fprintf(r.Progress, "[%s] %d/%d %s%s\n", e.ID, n, len(pts), p.Label, status)
				}
			}
			mu.Lock()
			busy += localBusy
			mu.Unlock()
		}()
	}
dispatch:
	for i := range pts {
		select {
		case todo <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(todo)
	wg.Wait()

	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			firstErr = fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	if firstErr != nil {
		return Result{}, firstErr
	}
	sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })

	out := e.Assemble(cfg, results)
	st := Stats{Points: len(pts), Workers: workers, Wall: time.Since(start), Busy: busy,
		Retries: retries, Failed: len(failed)}
	if r.Metrics != nil {
		r.Metrics.ObserveExperiment(st)
	}
	r.Events.emit(Event{Type: "experiment_done", Experiment: e.ID, Points: st.Points, Workers: st.Workers,
		DurationMS: float64(st.Wall) / float64(time.Millisecond), Utilization: st.Utilization(),
		Failed: st.Failed})
	return Result{ID: e.ID, Title: e.Title, Output: out, Stats: st, Failed: failed}, nil
}

// RunAll executes the experiments in order, stopping at the first error.
// In degraded mode a point failure is not an error: the experiment's
// output carries footnoted cells and the suite continues. Each
// experiment's points run across the pool; the shared Cache carries
// memoized simulations from one experiment to the next. The final
// "run_done" event carries the cache, failure and checkpoint totals.
func (r *Runner) RunAll(ctx context.Context, exps []experiments.Experiment, cfg experiments.Config) ([]Result, error) {
	out := make([]Result, 0, len(exps))
	for _, e := range exps {
		res, err := r.RunExperiment(ctx, e, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	if r.Metrics != nil && r.Cache != nil {
		r.Metrics.ObserveCache(r.Cache.Stats())
		if r.Cache.Journal != nil {
			r.Metrics.ObserveJournal(r.Cache.Journal.Stats())
		}
	}
	ev := Event{Type: "run_done", Points: totalPoints(out), Failed: totalFailed(out)}
	if r.Cache != nil {
		cs := r.Cache.Stats()
		ev.CacheHits, ev.CacheMisses, ev.CacheBypassed = cs.Hits, cs.Misses, cs.Bypassed
		if r.Cache.Journal != nil {
			js := r.Cache.Journal.Stats()
			ev.CheckpointEntries, ev.CheckpointSkipped = js.Loaded, js.Skipped
			ev.CheckpointRestored, ev.CheckpointAppended = js.Restored, js.Appended
		}
	}
	r.Events.emit(ev)
	return out, nil
}

func totalPoints(rs []Result) int {
	n := 0
	for _, r := range rs {
		n += r.Stats.Points
	}
	return n
}

func totalFailed(rs []Result) int {
	n := 0
	for _, r := range rs {
		n += r.Stats.Failed
	}
	return n
}
