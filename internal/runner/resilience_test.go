package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dxbsp/internal/experiments"
	"dxbsp/internal/tablefmt"
)

// fakeExperiment builds an experiment with n points whose RunPoint is
// supplied by the test; Assemble renders one row per point so output
// comparisons catch any misplaced or missing result.
func fakeExperiment(n int, runPoint func(ctx context.Context, p experiments.Point, attempt int) error) experiments.Experiment {
	var mu sync.Mutex
	attempts := map[int]int{}
	return experiments.Experiment{
		ID:    "FAKE",
		Title: "synthetic resilience experiment",
		Points: func(experiments.Config) []experiments.Point {
			pts := make([]experiments.Point, n)
			for i := range pts {
				pts[i] = experiments.Point{Index: i, Label: fmt.Sprintf("p%d", i)}
			}
			return pts
		},
		RunPoint: func(ctx context.Context, cfg experiments.Config, p experiments.Point) (experiments.PointResult, error) {
			mu.Lock()
			attempts[p.Index]++
			a := attempts[p.Index]
			mu.Unlock()
			if err := runPoint(ctx, p, a); err != nil {
				return experiments.PointResult{}, err
			}
			return experiments.PointResult{Index: p.Index, Label: p.Label}, nil
		},
		Assemble: func(cfg experiments.Config, results []experiments.PointResult) experiments.Renderable {
			t := tablefmt.New("fake", "point", "status")
			for _, r := range results {
				if r.Err != nil {
					ref := t.AddFootnote(fmt.Sprintf("%s: %v", r.Label, r.Err))
					t.AddRow(r.Label, fmt.Sprintf("FAILED [%d]", ref))
					continue
				}
				t.AddRow(r.Label, "ok")
			}
			return t
		},
	}
}

// A panicking point must not take down the run: in degraded mode the
// suite completes, the point is footnoted, and the failure carries the
// recovered panic.
func TestPanicIsolation(t *testing.T) {
	e := fakeExperiment(5, func(_ context.Context, p experiments.Point, _ int) error {
		if p.Index == 2 {
			panic("boom at point 2")
		}
		return nil
	})
	r := &Runner{Parallel: 3, Degraded: true}
	res, err := r.RunExperiment(context.Background(), e, experiments.Config{})
	if err != nil {
		t.Fatalf("degraded run failed hard: %v", err)
	}
	if res.Stats.Failed != 1 || len(res.Failed) != 1 {
		t.Fatalf("Failed = %d / %d entries, want 1", res.Stats.Failed, len(res.Failed))
	}
	var pe *PanicError
	if !errors.As(res.Failed[0], &pe) || fmt.Sprint(pe.Value) != "boom at point 2" {
		t.Errorf("failure %v does not carry the panic", res.Failed[0])
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError has no stack")
	}
	out := render(t, res.Output)
	if !strings.Contains(out, "FAILED [1]") || !strings.Contains(out, "boom at point 2") {
		t.Errorf("output not footnoted:\n%s", out)
	}
}

// Without degraded mode a panic is still recovered — the process
// survives — but the experiment fails with a *PointError.
func TestPanicFailsFastWhenNotDegraded(t *testing.T) {
	e := fakeExperiment(3, func(_ context.Context, p experiments.Point, _ int) error {
		if p.Index == 1 {
			panic("boom")
		}
		return nil
	})
	r := &Runner{Parallel: 2}
	_, err := r.RunExperiment(context.Background(), e, experiments.Config{})
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PointError", err)
	}
	var panicErr *PanicError
	if !errors.As(err, &panicErr) {
		t.Errorf("error %v does not unwrap to the panic", err)
	}
}

// Transient failures are retried within the budget and the point
// ultimately succeeds; the retries are counted and logged.
func TestRetryTransient(t *testing.T) {
	e := fakeExperiment(4, func(_ context.Context, p experiments.Point, attempt int) error {
		if p.Index%2 == 0 && attempt < 3 {
			return MarkTransient(fmt.Errorf("flaky %s attempt %d", p.Label, attempt))
		}
		return nil
	})
	var log strings.Builder
	r := &Runner{
		Parallel: 2,
		Retry:    RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond},
		Events:   NewEventLog(&log),
	}
	res, err := r.RunExperiment(context.Background(), e, experiments.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Failed != 0 {
		t.Errorf("Failed = %d, want 0", res.Stats.Failed)
	}
	if want := 4; res.Stats.Retries != want { // points 0 and 2, two retries each
		t.Errorf("Retries = %d, want %d", res.Stats.Retries, want)
	}
	if !strings.Contains(log.String(), `"point_retry"`) {
		t.Errorf("no point_retry events:\n%s", log.String())
	}
}

// A permanent error must not consume retry budget.
func TestPermanentErrorNotRetried(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	e := fakeExperiment(1, func(_ context.Context, _ experiments.Point, _ int) error {
		mu.Lock()
		calls++
		mu.Unlock()
		return fmt.Errorf("deterministic failure")
	})
	r := &Runner{Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Microsecond}, Degraded: true}
	res, err := r.RunExperiment(context.Background(), e, experiments.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("permanent error executed %d times", calls)
	}
	if len(res.Failed) != 1 || res.Failed[0].Attempts != 1 {
		t.Errorf("Failed = %+v, want one single-attempt failure", res.Failed)
	}
}

// A point that exhausts its budget on transient errors fails with the
// attempt count and the last cause.
func TestRetryBudgetExhausted(t *testing.T) {
	e := fakeExperiment(1, func(_ context.Context, _ experiments.Point, attempt int) error {
		return MarkTransient(fmt.Errorf("still flaky (attempt %d)", attempt))
	})
	r := &Runner{Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond}, Degraded: true}
	res, err := r.RunExperiment(context.Background(), e, experiments.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("Failed = %+v", res.Failed)
	}
	f := res.Failed[0]
	if f.Attempts != 3 || !strings.Contains(f.Error(), "after 3 attempt(s)") {
		t.Errorf("failure %v, want 3 attempts", f)
	}
}

// Degraded output is deterministic: the same failures land in the same
// cells for any worker count.
func TestDegradedDeterministicAcrossWorkers(t *testing.T) {
	mk := func() experiments.Experiment {
		return fakeExperiment(9, func(_ context.Context, p experiments.Point, _ int) error {
			if p.Index%3 == 0 {
				return fmt.Errorf("bad point %d", p.Index)
			}
			return nil
		})
	}
	var want string
	for i, workers := range []int{1, 3, 8} {
		r := &Runner{Parallel: workers, Degraded: true}
		res, err := r.RunExperiment(context.Background(), mk(), experiments.Config{})
		if err != nil {
			t.Fatal(err)
		}
		out := render(t, res.Output)
		if i == 0 {
			want = out
			if !strings.Contains(want, "FAILED") {
				t.Fatalf("no failures rendered:\n%s", want)
			}
			continue
		}
		if out != want {
			t.Errorf("workers=%d output differs:\n--- want ---\n%s\n--- got ---\n%s", workers, want, out)
		}
	}
}

// The per-point deadline is transient (the run is still live), so a slow
// point is retried; a fast retry then succeeds.
func TestPointTimeoutRetried(t *testing.T) {
	e := fakeExperiment(1, func(ctx context.Context, _ experiments.Point, attempt int) error {
		if attempt == 1 {
			<-ctx.Done() // stall until the point deadline fires
			return ctx.Err()
		}
		return nil
	})
	r := &Runner{
		PointTimeout: 20 * time.Millisecond,
		Retry:        RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
	}
	res, err := r.RunExperiment(context.Background(), e, experiments.Config{})
	if err != nil {
		t.Fatalf("timed-out point not retried: %v", err)
	}
	if res.Stats.Retries != 1 {
		t.Errorf("Retries = %d, want 1", res.Stats.Retries)
	}
}

// Mid-suite cancellation: deterministic partial results, a context error,
// and no goroutine leaks.
func TestCancellationCleanShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	e := fakeExperiment(16, func(ctx context.Context, _ experiments.Point, _ int) error {
		once.Do(func() { close(started) })
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	r := &Runner{Parallel: 4}
	done := make(chan error, 1)
	go func() {
		_, err := r.RunExperiment(ctx, e, experiments.Config{})
		done <- err
	}()
	<-started
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}

	// Workers must all have exited; give the runtime a moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// RunAll in degraded mode finishes the whole suite and reports the
// failure totals on run_done.
func TestRunAllDegradedContinues(t *testing.T) {
	bad := fakeExperiment(2, func(_ context.Context, p experiments.Point, _ int) error {
		if p.Index == 0 {
			return fmt.Errorf("bad")
		}
		return nil
	})
	good := fakeExperiment(2, func(context.Context, experiments.Point, int) error { return nil })
	good.ID = "GOOD"
	var log strings.Builder
	r := &Runner{Degraded: true, Events: NewEventLog(&log)}
	results, err := r.RunAll(context.Background(), []experiments.Experiment{bad, good}, experiments.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("suite stopped early: %d results", len(results))
	}
	if !strings.Contains(log.String(), `"point_failed"`) {
		t.Errorf("no point_failed event:\n%s", log.String())
	}
	var runDone string
	for _, line := range strings.Split(log.String(), "\n") {
		if strings.Contains(line, `"run_done"`) {
			runDone = line
		}
	}
	if !strings.Contains(runDone, `"failed":1`) {
		t.Errorf("run_done missing failure total: %s", runDone)
	}
}
