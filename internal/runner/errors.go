package runner

import (
	"errors"
	"fmt"
)

// The error taxonomy: every point failure the runner sees is classified as
// transient (worth retrying — injected faults, point deadlines, flaky
// infrastructure) or permanent (a deterministic simulation that failed
// once will fail again — misconfiguration, panics, cancellation of the
// whole run). Classification is structural: any error in the chain may
// declare itself by implementing Transient() bool, so packages like
// internal/faults participate without importing this one.

// transienter is the marker interface of the taxonomy.
type transienter interface{ Transient() bool }

// transientError marks a wrapped error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient classifies an error for the retry policy. An explicit
// Transient() declaration anywhere in the chain wins; everything
// unclassified — including context cancellation of the run and panics —
// is permanent.
func IsTransient(err error) bool {
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// PanicError is a panic recovered from a point execution, carrying the
// panic value and the goroutine stack at the throw site. It is permanent:
// a deterministic point that panicked once will panic again.
type PanicError struct {
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// PointError reports one sweep point that failed after its retry budget,
// with enough identity for degraded reporting: the experiment, the
// point's label and index, and how many attempts were made. Err is the
// final attempt's error (a *PanicError when the point panicked).
type PointError struct {
	Experiment string
	Point      string
	Index      int
	Attempts   int
	Err        error
}

func (e *PointError) Error() string {
	return fmt.Sprintf("%s/%s: failed after %d attempt(s): %v", e.Experiment, e.Point, e.Attempts, e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }
