package runner

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/metrics"
	"dxbsp/internal/sim"
)

// omExport renders an observer's deterministic snapshot as OpenMetrics
// text — the byte-level artifact the determinism contract is stated over.
func omExport(t *testing.T, o *Observer) string {
	t.Helper()
	var b strings.Builder
	if err := metrics.WriteOpenMetrics(&b, o.Snapshot(false)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func runWithObserver(t *testing.T, r *Runner, ids ...string) *Observer {
	t.Helper()
	o := NewObserver()
	r.Metrics = o
	cfg := experiments.QuickConfig()
	for _, id := range ids {
		e, ok := experiments.Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		if _, err := r.RunExperiment(context.Background(), e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

// The tentpole contract, runner half: the deterministic metric export is
// byte-identical for any worker count, with and without the cache.
func TestObserverDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, tc := range []struct {
		name    string
		workers int
		cache   bool
	}{
		{"serial-cached", 1, true},
		{"parallel4-cached", 4, true},
		{"parallel8-cached", 8, true},
		{"parallel4-uncached", 4, false},
	} {
		r := &Runner{Parallel: tc.workers}
		if tc.cache {
			r.Cache = NewCache()
		}
		got := omExport(t, runWithObserver(t, r, "T2", "X2"))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s: metric export differs from serial-cached baseline\n--- want ---\n%s\n--- got ---\n%s",
				tc.name, want, got)
		}
	}
	if !strings.Contains(want, "dxbsp_sim_runs") || !strings.Contains(want, "# EOF") {
		t.Errorf("export missing expected series:\n%s", want)
	}
}

// Attaching the observer must not change experiment output (the sim-level
// differential test covers cycle counts; this covers the rendered tables).
func TestObserverDoesNotChangeOutput(t *testing.T) {
	cfg := experiments.QuickConfig()
	e, _ := experiments.Lookup("T2")
	plain, err := (&Runner{Parallel: 4, Cache: NewCache()}).RunExperiment(context.Background(), e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Parallel: 4, Cache: NewCache(), Metrics: NewObserver()}
	probed, err := r.RunExperiment(context.Background(), e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if render(t, plain.Output) != render(t, probed.Output) {
		t.Error("observer changed experiment output")
	}
	if r.Metrics.Runs() == 0 {
		t.Error("observer saw no simulations")
	}
}

// flakyRunner fails the first attempt of every distinct simulation with a
// transient error — a deterministic stand-in for the chaos injector's
// seat below the cache (the real injector lives in internal/faults, which
// imports this package). Retried attempts succeed, so with a retry budget
// the run completes and the metric export must equal a clean run's.
type flakyRunner struct {
	mu     sync.Mutex
	seen   map[string]bool
	faults int
}

func (f *flakyRunner) RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	key, _ := SimKey(cfg, pt)
	f.mu.Lock()
	// At most one fault per key and two in total, so a point that issues
	// several simulations cannot draw a fresh fault on every retry and
	// exhaust its budget.
	fault := !f.seen[key] && f.faults < 2
	f.seen[key] = true
	if fault {
		f.faults++
	}
	f.mu.Unlock()
	if fault {
		return sim.Result{}, MarkTransient(fmt.Errorf("injected transient fault"))
	}
	return sim.RunContext(ctx, cfg, pt)
}

func TestObserverDeterministicUnderTransientFaults(t *testing.T) {
	clean := omExport(t, runWithObserver(t, &Runner{Parallel: 4, Cache: NewCache()}, "T2"))

	r := &Runner{Parallel: 4, Cache: NewCache(), Retry: RetryPolicy{MaxAttempts: 3}}
	r.Cache.Next = &flakyRunner{seen: make(map[string]bool)}
	faulty := omExport(t, runWithObserver(t, r, "T2"))

	if faulty != clean {
		t.Errorf("metric export differs under transient faults\n--- clean ---\n%s\n--- faulty ---\n%s", clean, faulty)
	}
}

// Failed attempts must contribute nothing: a run that never completes has
// no RunDone, so an all-faulting simulation leaves the contribution map
// empty even though bank/section hooks fired before the abort.
func TestObserverIgnoresIncompleteRuns(t *testing.T) {
	o := NewObserver()
	cfg := sim.Config{Machine: core.J90()}.Normalize()
	pt := core.NewPattern([]uint64{1, 2, 3, 4}, 4)
	rp := o.RunStart(cfg, pt)
	rp.BankArrive(0, 1, 0)
	rp.BankStart(0, 1, 8, 0, false, false, 0)
	// No RunDone: simulate a cancellation mid-run.
	if o.Runs() != 0 {
		t.Errorf("incomplete run committed a contribution")
	}
	if len(o.Snapshot(false)) == 0 {
		t.Fatal("empty snapshot should still carry the series")
	}
	for _, s := range o.Snapshot(false) {
		if s.Name == "dxbsp_sim_requests" && s.Value != 0 {
			t.Errorf("incomplete run leaked %g requests", s.Value)
		}
	}
}

// Re-executing the same simulation (no cache, or retry after a fault)
// must be idempotent: contributions are keyed by content, so N runs of
// one simulation count once.
func TestObserverIdempotentOnReexecution(t *testing.T) {
	o := NewObserver()
	cfg := sim.Config{Machine: core.J90(), Probe: o}
	pt := core.NewPattern([]uint64{10, 20, 30, 40, 50, 60, 70, 80}, core.J90().Procs)
	for i := 0; i < 3; i++ {
		if _, err := sim.Run(cfg, pt); err != nil {
			t.Fatal(err)
		}
	}
	if o.Runs() != 1 {
		t.Errorf("3 executions of one simulation committed %d contributions, want 1", o.Runs())
	}
	for _, s := range o.Snapshot(false) {
		if s.Name == "dxbsp_sim_requests" && s.Value != float64(pt.N()) {
			t.Errorf("dxbsp_sim_requests = %g, want %d", s.Value, pt.N())
		}
	}
}

func TestObserverVolatileSplit(t *testing.T) {
	o := runWithObserver(t, &Runner{Parallel: 2, Cache: NewCache()}, "T2")
	o.ObserveCache(CacheStats{Hits: 1, Misses: 2})

	det := o.Snapshot(false)
	for _, s := range det {
		if s.Volatile {
			t.Errorf("volatile series %s in deterministic snapshot", s.Name)
		}
		if strings.HasPrefix(s.Name, "dxbsp_runner_") || strings.HasPrefix(s.Name, "dxbsp_cache_") {
			t.Errorf("wall-clock series %s not marked volatile", s.Name)
		}
	}
	all := o.Snapshot(true)
	var haveLat, haveCache, havePoints bool
	for _, s := range all {
		switch s.Name {
		case "dxbsp_runner_point_seconds":
			haveLat = s.Count > 0
		case "dxbsp_cache_hits":
			haveCache = true
		case "dxbsp_runner_points":
			havePoints = s.Value > 0
		}
	}
	if !haveLat || !haveCache || !havePoints {
		t.Errorf("volatile snapshot incomplete: latency=%t cache=%t points=%t", haveLat, haveCache, havePoints)
	}
}

func TestObserverBankProfileAndSummaries(t *testing.T) {
	o := runWithObserver(t, &Runner{Parallel: 4, Cache: NewCache()}, "T2")

	labels, rows := o.BankProfile()
	if len(labels) != 3 || len(rows) != 3 {
		t.Fatalf("profile shape: %d labels, %d rows", len(labels), len(rows))
	}
	loadSum := 0.0
	for _, v := range rows[0] {
		loadSum += v
	}
	var requests float64
	for _, s := range o.Snapshot(false) {
		if s.Name == "dxbsp_sim_requests" {
			requests = s.Value
		}
	}
	if loadSum != requests {
		t.Errorf("heatmap load total %g != dxbsp_sim_requests %g", loadSum, requests)
	}

	cs := o.CycleSummary()
	if cs.N != o.Runs() {
		t.Errorf("cycle summary over %d runs, observer has %d", cs.N, o.Runs())
	}
	if cs.Min <= 0 || cs.Max < cs.Min {
		t.Errorf("implausible cycle summary: %+v", cs)
	}
	// Repeated reads are deterministic.
	if a, b := omExport(t, o), omExport(t, o); a != b {
		t.Error("repeated snapshot export not byte-identical")
	}
}
