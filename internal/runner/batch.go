package runner

import (
	"context"
	"sync"
	"time"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/sim"
)

// defaultBatchWindow is how long a partially-filled batch group waits
// for more lanes before flushing. Sweep workers submit cache misses in
// bursts, so a full group normally forms in microseconds; the window
// only matters for stragglers at a sweep's edges (fewer pending points
// than K) and is kept well under a single simulation's runtime.
const defaultBatchWindow = 500 * time.Microsecond

// Batcher is the SimRunner middleware that groups concurrent simulation
// calls over the same pattern into lockstep batches (sim.RunBatch). It
// slots below the cache and the fault injector — cache → faults →
// Batcher → sim — so only genuine cache misses batch, journaling keeps
// its per-lane keys, and fault injection keeps per-lane (per-call)
// semantics: a faulted call never reaches the batcher, and a batch
// failure is re-run per-lane so one lane's cancellation cannot leak
// into a sibling's result (DESIGN.md §14).
//
// Batching is transparent by construction: every lane of sim.RunBatch
// is byte-identical to the scalar engine, so output bytes do not depend
// on K, on how lanes happened to group, or on worker count — pinned by
// TestBatcherByteIdentical and the dxbench -batch CLI tests.
type Batcher struct {
	// K is the target lanes per batch; values <= 1 make the Batcher a
	// passthrough.
	K int
	// Window overrides defaultBatchWindow when > 0.
	Window time.Duration
	// Next, when non-nil, runs lanes the batcher does not handle
	// (passthrough and per-lane fallback). Nil means sim.RunContext.
	Next experiments.SimRunner
	// Observe, when non-nil, receives every call's batching outcome
	// while batching is on: reason "" for lanes admitted to the
	// lockstep fast path, otherwise the sim.BatchFallbackReason label
	// for the forwarded call. Observer.ObserveBatchLane fits directly.
	Observe func(cfg sim.Config, pt core.Pattern, reason string)

	mu     sync.Mutex
	groups map[string]*batchGroup
}

// NewBatcher returns a Batcher grouping up to k lanes per batch.
func NewBatcher(k int) *Batcher { return &Batcher{K: k} }

type batchLane struct {
	ctx  context.Context
	cfg  sim.Config
	res  sim.Result
	err  error
	done chan struct{}
}

type batchGroup struct {
	pt    core.Pattern
	lanes []*batchLane
	timer *time.Timer
}

func (b *Batcher) window() time.Duration {
	if b.Window > 0 {
		return b.Window
	}
	return defaultBatchWindow
}

// forward runs one lane without batching.
func (b *Batcher) forward(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	if b.Next != nil {
		return b.Next.RunSim(ctx, cfg, pt)
	}
	return sim.RunContext(ctx, cfg, pt)
}

// RunSim implements experiments.SimRunner. Eligible calls park in the
// group for their pattern until K lanes have gathered (the K-th caller
// becomes the leader and executes the batch inline) or the window timer
// flushes a partial group. Ineligible calls — batching off, lockstep-
// ineligible configs, already-cancelled contexts — forward untouched.
func (b *Batcher) RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	if b.K <= 1 || ctx.Err() != nil {
		return b.forward(ctx, cfg, pt)
	}
	if reason := sim.BatchFallbackReason(cfg); reason != "" {
		if b.Observe != nil {
			b.Observe(cfg, pt, reason)
		}
		return b.forward(ctx, cfg, pt)
	}
	if b.Observe != nil {
		b.Observe(cfg, pt, "")
	}

	lane := &batchLane{ctx: ctx, cfg: cfg, done: make(chan struct{})}
	key := patDigests.digestOf(pt)
	b.mu.Lock()
	if b.groups == nil {
		b.groups = make(map[string]*batchGroup)
	}
	g := b.groups[key]
	if g == nil {
		g = &batchGroup{pt: pt}
		b.groups[key] = g
		g.timer = time.AfterFunc(b.window(), func() { b.flush(key, g) })
	}
	g.lanes = append(g.lanes, lane)
	var run []*batchLane
	if len(g.lanes) >= b.K {
		run = b.takeLocked(key, g)
	}
	b.mu.Unlock()

	if run != nil {
		b.runBatch(run, g.pt)
	}
	<-lane.done
	if lane.err != nil {
		// The shared pass failed (typically the leader's context died).
		// Re-run this lane alone under its own context: isolation means a
		// sibling's fate never decides this lane's result or error.
		return b.forward(ctx, cfg, pt)
	}
	return lane.res, nil
}

// takeLocked detaches g from the group table (stopping its timer) and
// returns its lanes for execution. Caller holds b.mu.
func (b *Batcher) takeLocked(key string, g *batchGroup) []*batchLane {
	if b.groups[key] != g {
		return nil // already flushed
	}
	delete(b.groups, key)
	g.timer.Stop()
	return g.lanes
}

// flush is the window-timer path: execute whatever lanes gathered.
func (b *Batcher) flush(key string, g *batchGroup) {
	b.mu.Lock()
	run := b.takeLocked(key, g)
	b.mu.Unlock()
	if run != nil {
		b.runBatch(run, g.pt)
	}
}

// runBatch executes one gathered batch under the first lane's context
// and distributes per-lane results. On error every lane is marked
// failed; each waiter then falls back to a solo run under its own
// context (see RunSim).
func (b *Batcher) runBatch(lanes []*batchLane, pt core.Pattern) {
	cfgs := make([]sim.Config, len(lanes))
	for i, ln := range lanes {
		cfgs[i] = ln.cfg
	}
	res, err := sim.RunBatch(lanes[0].ctx, cfgs, pt)
	for i, ln := range lanes {
		if err != nil {
			ln.err = err
		} else {
			ln.res = res[i]
		}
		close(ln.done)
	}
}
