package runner

import (
	"context"
	"strings"
	"sync"
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
)

func render(t *testing.T, r experiments.Renderable) string {
	t.Helper()
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// The headline guarantee: for every experiment, the parallel runner's
// output is byte-identical to the serial path, for several worker counts,
// with and without the cache. T3 is excluded: one of its columns is a
// wall-clock measurement of the host machine.
func TestParallelOutputMatchesSerial(t *testing.T) {
	cfg := experiments.QuickConfig()
	ctx := context.Background()
	for _, e := range experiments.All() {
		if e.ID == "T3" {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			want := render(t, e.MustRun(cfg))
			for _, workers := range []int{1, 3, 8} {
				r := &Runner{Parallel: workers, Cache: NewCache()}
				res, err := r.RunExperiment(ctx, e, cfg)
				if err != nil {
					t.Fatalf("parallel=%d: %v", workers, err)
				}
				if got := render(t, res.Output); got != want {
					t.Errorf("parallel=%d output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
						workers, want, got)
				}
			}
			nc := &Runner{Parallel: 4} // no cache
			res, err := nc.RunExperiment(ctx, e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := render(t, res.Output); got != want {
				t.Errorf("uncached output differs from serial")
			}
		})
	}
}

// Sweeps share simulation baselines (the contention sweep appears in T2,
// F2, X2 and X5; X13 re-derives its open-loop baseline per point), so a
// suite run must hit the cache.
func TestCacheHitsAcrossExperiments(t *testing.T) {
	cfg := experiments.QuickConfig()
	r := &Runner{Parallel: 2, Cache: NewCache()}
	for _, id := range []string{"T2", "F2", "X2", "X5", "X13"} {
		e, ok := experiments.Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		if _, err := r.RunExperiment(context.Background(), e, cfg); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Cache.Stats()
	if st.Hits == 0 {
		t.Errorf("no cache hits across shared-baseline experiments: %+v", st)
	}
	if st.Misses == 0 {
		t.Errorf("cache recorded no misses: %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() >= 1 {
		t.Errorf("implausible hit rate %v", st.HitRate())
	}
}

func TestRunAllStopsOnError(t *testing.T) {
	boom := experiments.Experiment{
		ID:    "BOOM",
		Title: "always fails",
		Points: func(experiments.Config) []experiments.Point {
			e, _ := experiments.Lookup("F2")
			return e.Points(experiments.QuickConfig())[:1]
		},
		RunPoint: func(ctx context.Context, cfg experiments.Config, p experiments.Point) (experiments.PointResult, error) {
			return experiments.PointResult{}, context.DeadlineExceeded
		},
		Assemble: func(experiments.Config, []experiments.PointResult) experiments.Renderable {
			t.Fatal("Assemble called after point failure")
			return nil
		},
	}
	r := &Runner{Parallel: 2}
	e2, _ := experiments.Lookup("T1")
	results, err := r.RunAll(context.Background(), []experiments.Experiment{boom, e2}, experiments.QuickConfig())
	if err == nil {
		t.Fatal("RunAll swallowed the point error")
	}
	if len(results) != 0 {
		t.Errorf("RunAll continued past the failure: %d results", len(results))
	}
	if !strings.Contains(err.Error(), "BOOM") {
		t.Errorf("error %q does not name the experiment", err)
	}
}

func TestRunExperimentCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, _ := experiments.Lookup("F2")
	r := &Runner{Parallel: 2}
	if _, err := r.RunExperiment(ctx, e, experiments.QuickConfig()); err == nil {
		t.Error("cancelled run reported success")
	}
}

func TestStatsPlausible(t *testing.T) {
	e, _ := experiments.Lookup("F2")
	r := &Runner{Parallel: 2}
	res, err := r.RunExperiment(context.Background(), e, experiments.QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Points != len(e.Points(experiments.QuickConfig())) {
		t.Errorf("Points = %d", st.Points)
	}
	if st.Workers < 1 || st.Workers > 2 {
		t.Errorf("Workers = %d", st.Workers)
	}
	if st.Wall <= 0 || st.Busy <= 0 {
		t.Errorf("non-positive times: %+v", st)
	}
	if u := st.Utilization(); u <= 0 || u > 1 {
		t.Errorf("Utilization = %v", u)
	}
}

// --- cache unit tests ----------------------------------------------------

func testPattern(n int, seed uint64) core.Pattern {
	return core.NewPattern(patterns.Uniform(n, 1<<20, rng.New(seed)), 4)
}

func testConfig() sim.Config {
	return sim.Config{Machine: core.Machine{Name: "t", Procs: 4, Banks: 32, D: 4, G: 1, L: 8}}
}

func TestCacheMemoizes(t *testing.T) {
	c := NewCache()
	cfg, pt := testConfig(), testPattern(256, 1)
	r1, err := c.RunSim(context.Background(), cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.RunSim(context.Background(), cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("cached result differs: %+v vs %+v", r1, r2)
	}
	direct, err := sim.Run(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != direct {
		t.Errorf("cached result differs from direct sim.Run: %+v vs %+v", r1, direct)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.Bypassed != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// Every knob of sim.Config must discriminate the key: flipping any one of
// them on the same pattern must miss.
func TestCacheKeyDiscriminates(t *testing.T) {
	base := testConfig()
	pt := testPattern(256, 1)
	variants := []sim.Config{
		{Machine: base.Machine, Window: 4},
		{Machine: base.Machine, Combining: true},
		{Machine: base.Machine, NetDelay: 9},
		{Machine: base.Machine, UseSections: true},
		{Machine: base.Machine, BankCacheLines: 2},
		{Machine: base.Machine, BankCacheLines: 2, BankHitDelay: 3},
		{Machine: base.Machine, BankCacheLines: 2, BankRowShift: 7},
		{Machine: func() core.Machine { m := base.Machine; m.D = 9; return m }()},
		{Machine: base.Machine, BankMap: hashfn.Map{F: hashfn.Identity{M: 5}}},
	}
	c := NewCache()
	if _, err := c.RunSim(context.Background(), base, pt); err != nil {
		t.Fatal(err)
	}
	for i, v := range variants {
		if _, err := c.RunSim(context.Background(), v, pt); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
	}
	// A different pattern with the same shape must also miss.
	if _, err := c.RunSim(context.Background(), base, testPattern(256, 2)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 0 {
		t.Errorf("distinct configs produced cache hits: %+v", st)
	}
	if want := uint64(len(variants) + 2); st.Misses != want {
		t.Errorf("misses = %d, want %d", st.Misses, want)
	}
}

// The normalized defaults and their explicit spellings are the same key.
func TestCacheKeyNormalizes(t *testing.T) {
	m := testConfig().Machine
	pt := testPattern(256, 1)
	c := NewCache()
	if _, err := c.RunSim(context.Background(), sim.Config{Machine: m}, pt); err != nil {
		t.Fatal(err)
	}
	explicit := sim.Config{
		Machine:  m,
		BankMap:  core.InterleaveMap{Banks: m.Banks},
		NetDelay: m.L / 2,
	}
	if _, err := c.RunSim(context.Background(), explicit, pt); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("explicit defaults missed the cache: %+v", st)
	}
}

// An unknown bank map type cannot be fingerprinted; the cache must bypass
// rather than guess.
type opaqueMap struct{ banks int }

func (m opaqueMap) Bank(addr uint64) int { return int(addr) % m.banks }
func (m opaqueMap) NumBanks() int        { return m.banks }

func TestCacheBypassesUnknownBankMap(t *testing.T) {
	c := NewCache()
	cfg := testConfig()
	cfg.BankMap = opaqueMap{banks: 32}
	pt := testPattern(256, 1)
	for i := 0; i < 2; i++ {
		if _, err := c.RunSim(context.Background(), cfg, pt); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Bypassed != 2 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 2 bypassed", st)
	}
}

// Concurrent identical requests must be deduplicated into one execution
// and all receive the same result.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	cfg, pt := testConfig(), testPattern(1024, 3)
	const callers = 8
	results := make([]sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.RunSim(context.Background(), cfg, pt)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got %+v, caller 0 got %+v", i, results[i], results[0])
		}
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, callers-1)
	}
}

func TestCacheReturnsErrors(t *testing.T) {
	c := NewCache()
	bad := testConfig()
	bad.Window = -1
	pt := testPattern(16, 1)
	for i := 0; i < 2; i++ {
		if _, err := c.RunSim(context.Background(), bad, pt); err == nil {
			t.Fatal("invalid config succeeded")
		}
	}
}
