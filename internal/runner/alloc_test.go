package runner

import (
	"testing"

	"dxbsp/internal/core"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
)

// TestObserverProbedAllocBudget pins the probed path's end-to-end
// allocation budget, mirroring sim's TestProbesOffAllocBudget: a warm
// run with the Observer attached draws a pooled engine and a pooled
// collector, re-arms both in place, and commits through the memoized
// SimKey into an existing contribution — so the per-run cost is a
// handful of allocations (the key string and its Sprintf internals),
// not the thousands the append-grown collectors used to cost. The
// budget of 64 is the regression contract from the zero-allocation
// sweeps PR (down from 4,377); if this fails, a collector or engine
// stopped retaining storage, or the digest memo stopped hitting.
func TestObserverProbedAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement under -short")
	}
	if raceEnabled {
		t.Skip("race mode defeats sync.Pool caching, so the pooled-run budget cannot hold")
	}
	const budget = 64
	m := core.J90()
	pt := core.NewPattern(patterns.Uniform(1<<14, 1<<30, rng.New(7)), m.Procs)
	for _, tc := range []struct {
		name string
		cfg  sim.Config
	}{
		{"open-loop", sim.Config{Machine: m}},
		{"windowed", sim.Config{Machine: m, Window: 8}},
		{"sections", sim.Config{Machine: m, UseSections: true}},
	} {
		obs := NewObserver()
		cfg := tc.cfg
		cfg.Probe = obs
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := sim.Run(cfg, pt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > budget {
			t.Errorf("%s: %.1f allocs per probed run, budget is %d", tc.name, allocs, budget)
		}
		t.Logf("%s: %.1f allocs per probed run (budget %d)", tc.name, allocs, budget)
	}
}

// TestProbedMatchesBareResults guards the probe neutrality contract at
// the runner level with the pooled collectors: attaching the Observer
// must not change cycle counts, and the recycled collectors must commit
// the same contributions a fresh Observer would.
func TestProbedMatchesBareResults(t *testing.T) {
	m := core.J90()
	obs := NewObserver()
	for i := 0; i < 5; i++ {
		pt := core.NewPattern(patterns.Uniform(1<<10, 1<<24, rng.New(uint64(i))), m.Procs)
		for _, cfg := range []sim.Config{
			{Machine: m},
			{Machine: m, Window: 4},
			{Machine: m, UseSections: true},
		} {
			bare, err := sim.Run(cfg, pt)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Probe = obs
			probed, err := sim.Run(cfg, pt)
			if err != nil {
				t.Fatal(err)
			}
			if bare != probed {
				t.Fatalf("pattern %d cfg %+v: probed result %+v differs from bare %+v", i, cfg, probed, bare)
			}
		}
	}
	if got, want := obs.Runs(), 15; got != want {
		t.Fatalf("observer committed %d distinct runs, want %d", got, want)
	}
}
