package runner

import (
	"hash/fnv"
	"io"
	"time"

	"dxbsp/internal/rng"
)

// RetryPolicy bounds per-point retries of transient failures with
// exponential backoff and deterministic seeded jitter: the same (Seed,
// experiment, point, attempt) always produces the same delay, so a chaos
// run's schedule is reproducible, and concurrent retries of neighboring
// points decorrelate instead of thundering together.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per point, first run
	// included. Values <= 1 disable retrying (the zero value keeps the
	// runner's original fail-fast behavior).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles each
	// further attempt. Defaults to 5ms when retries are enabled.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Defaults to 250ms.
	MaxDelay time.Duration
	// Seed drives the jitter.
	Seed uint64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the delay before retry number attempt (1-based: the
// delay between attempt N failing and attempt N+1 starting) of the given
// point: BaseDelay·2^(attempt-1) capped at MaxDelay, scaled by a jitter
// factor in [0.5, 1) derived deterministically from the policy seed and
// the point's identity.
func (p RetryPolicy) Backoff(experiment string, index, attempt int) time.Duration {
	base, cap := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	if attempt < 1 {
		attempt = 1
	}
	d := cap
	if shift := attempt - 1; shift < 30 {
		if exp := base << uint(shift); exp < cap {
			d = exp
		}
	}
	h := fnv.New64a()
	io.WriteString(h, experiment)
	var buf [16]byte
	for i, v := range [2]int{index, attempt} {
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(uint64(v) >> (8 * b))
		}
	}
	h.Write(buf[:])
	r := rng.NewSplitMix64(p.Seed ^ h.Sum64()).Next()
	jitter := 0.5 + float64(r>>11)/float64(uint64(1)<<53)/2
	return time.Duration(float64(d) * jitter)
}
