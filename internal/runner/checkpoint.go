package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dxbsp/internal/sim"
)

// Journal is the crash-safe checkpoint store: an append-only JSON-lines
// file of simulation results keyed by the cache's content key (SimKey).
// Each record carries an FNV-64a checksum, so a journal left behind by a
// killed run is always usable: decoding skips truncated or corrupted
// records with a warning, never fails, and never serves a false hit.
//
// The journal persists at the simulation layer rather than the point
// layer deliberately: sim.Result is a flat struct that round-trips
// exactly through JSON, so a resumed run replays every point against
// journaled results and renders byte-identical output without
// re-executing any journaled simulation.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	entries  map[string]sim.Result
	disabled bool // set after a write error; lookups keep working
	skipped  int  // corrupt records dropped during load

	// Corrupt, when non-nil, may transform an encoded record before it is
	// written — the fault injector's hook for corrupted-entry faults. The
	// returned bytes must not contain newlines.
	Corrupt func([]byte) []byte

	warn     io.Writer
	restored atomic.Uint64
	appended atomic.Uint64
}

// journalFile is the journal's name inside the checkpoint directory.
const journalFile = "journal.jsonl"

// OpenJournal opens the checkpoint journal in dir, creating the directory
// if needed. With resume set, previously journaled results are loaded
// (corrupt records skipped with a warning on warn) and new results are
// appended; otherwise any existing journal is truncated and the run
// starts a fresh one.
func OpenJournal(dir string, resume bool, warn io.Writer) (*Journal, error) {
	if warn == nil {
		warn = io.Discard
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	j := &Journal{entries: map[string]sim.Result{}, warn: warn}
	flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if resume {
		flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		j.entries, j.skipped = decodeJournal(data, warn)
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j.f = f
	return j, nil
}

// Close flushes and closes the journal file. Lookups keep working.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Len returns the number of results currently held (loaded + appended).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Lookup returns the journaled result for key, if present.
func (j *Journal) Lookup(key string) (sim.Result, bool) {
	j.mu.Lock()
	r, ok := j.entries[key]
	j.mu.Unlock()
	if ok {
		j.restored.Add(1)
	}
	return r, ok
}

// Append journals one computed result. Write failures disable further
// journaling with a warning — losing checkpoints must never fail the run.
func (j *Journal) Append(key string, res sim.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[key]; ok {
		return
	}
	j.entries[key] = res
	if j.f == nil || j.disabled {
		return
	}
	line := encodeRecord(key, res)
	if j.Corrupt != nil {
		line = j.Corrupt(line)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.disabled = true
		fmt.Fprintf(j.warn, "checkpoint: write failed, journaling disabled: %v\n", err)
		return
	}
	j.appended.Add(1)
}

// JournalStats snapshots the journal's effectiveness counters.
type JournalStats struct {
	// Loaded is the number of results currently held.
	Loaded int
	// Skipped counts corrupt or truncated records dropped during load.
	Skipped int
	// Restored counts lookups served from the journal this run.
	Restored uint64
	// Appended counts records written this run.
	Appended uint64
}

// Stats returns a snapshot of the counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	loaded, skipped := len(j.entries), j.skipped
	j.mu.Unlock()
	return JournalStats{
		Loaded:   loaded,
		Skipped:  skipped,
		Restored: j.restored.Load(),
		Appended: j.appended.Load(),
	}
}

// journalRecord is one line of the journal file.
type journalRecord struct {
	Key string     `json:"k"`
	Res sim.Result `json:"r"`
	Sum string     `json:"s"`
}

// recordSum fingerprints one record's payload. %+v of sim.Result is
// deterministic (flat struct, shortest-round-trip floats), so the sum is
// stable across processes.
func recordSum(key string, res sim.Result) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%+v", key, res)
	return fmt.Sprintf("%016x", h.Sum64())
}

func encodeRecord(key string, res sim.Result) []byte {
	// A fixed struct of strings and scalars cannot fail to marshal.
	line, _ := json.Marshal(journalRecord{Key: key, Res: res, Sum: recordSum(key, res)})
	return line
}

// decodeJournal parses journal bytes tolerantly: records that fail to
// parse, have no key, or whose checksum does not match are counted and
// skipped with a warning — a truncated tail is the normal residue of a
// killed run, and a corrupted record must become a recompute, never a
// false hit. Later records win over earlier duplicates.
func decodeJournal(data []byte, warn io.Writer) (map[string]sim.Result, int) {
	if warn == nil {
		warn = io.Discard
	}
	entries := map[string]sim.Result{}
	skipped := 0
	for i, line := range bytes.Split(data, []byte{'\n'}) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++
			fmt.Fprintf(warn, "checkpoint: skipping unreadable record at line %d: %v\n", i+1, err)
			continue
		}
		if rec.Key == "" || rec.Sum != recordSum(rec.Key, rec.Res) {
			skipped++
			fmt.Fprintf(warn, "checkpoint: skipping corrupt record at line %d (checksum mismatch)\n", i+1)
			continue
		}
		entries[rec.Key] = rec.Res
	}
	return entries, skipped
}
