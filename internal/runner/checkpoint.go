package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dxbsp/internal/sim"
)

// Journal is the crash-safe checkpoint store: an append-only JSON-lines
// file of simulation results keyed by the cache's content key (SimKey).
// Each record carries an FNV-64a checksum, so a journal left behind by a
// killed run is always usable: decoding skips truncated or corrupted
// records with a warning, never fails, and never serves a false hit.
//
// The journal persists at the simulation layer rather than the point
// layer deliberately: sim.Result is a flat struct that round-trips
// exactly through JSON, so a resumed run replays every point against
// journaled results and renders byte-identical output without
// re-executing any journaled simulation.
//
// A journal may open under a shard-specific name (OpenJournalFile) and
// carry a Header identifying which shard of which sweep produced it;
// internal/sweep merges such journals back into the canonical
// journal.jsonl with MergeEntries + WriteJournalFile.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	entries  map[string]sim.Result
	hdr      *JournalHeader
	disabled bool // set after a write error; lookups keep working
	skipped  int  // corrupt records dropped during load

	// Corrupt, when non-nil, may transform an encoded record before it is
	// written — the fault injector's hook for corrupted-entry and torn-
	// write faults. The returned bytes must not contain newlines.
	Corrupt func([]byte) []byte

	// OnAppend, when non-nil, is called after each successful append with
	// the number of records written this run — the fault injector's seat
	// for kill-after-N-checkpoints process chaos.
	OnAppend func(appended uint64)

	warn     io.Writer
	restored atomic.Uint64
	appended atomic.Uint64
}

// journalFile is the canonical journal name inside the checkpoint
// directory: the one a plain -checkpoint run writes and -resume reads.
const journalFile = "journal.jsonl"

// JournalHeader identifies the producer of a shard or worker journal. It
// is written as the file's first record and checked on resume and merge,
// so journals from different shard layouts or differently configured
// sweeps are never silently combined.
type JournalHeader struct {
	// Shard and Of identify the static shard (Shard in [0, Of)); both are
	// zero for dynamic worker journals.
	Shard int `json:"shard"`
	Of    int `json:"of,omitempty"`
	// Worker names the producing worker in dynamic coordination mode.
	Worker string `json:"worker,omitempty"`
	// Config fingerprints the sweep configuration (experiment set, n,
	// seed, quick); journals only merge when it agrees.
	Config string `json:"config,omitempty"`
}

// ShardJournalName returns the journal file name for static shard i of n.
func ShardJournalName(i, n int) string {
	return fmt.Sprintf("journal.shard-%d-of-%d.jsonl", i, n)
}

// WorkerJournalName returns the journal file name for a dynamic worker.
func WorkerJournalName(id string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, id)
	return fmt.Sprintf("journal.worker-%s.jsonl", clean)
}

// OpenJournal opens the canonical checkpoint journal in dir, creating the
// directory if needed. With resume set, previously journaled results are
// loaded (corrupt records skipped with a warning on warn) and new results
// are appended; otherwise any existing journal is truncated and the run
// starts a fresh one.
func OpenJournal(dir string, resume bool, warn io.Writer) (*Journal, error) {
	return OpenJournalFile(dir, journalFile, resume, warn)
}

// OpenJournalFile opens the journal stored under the given file name in
// dir — shard and worker journals live beside the canonical one under
// ShardJournalName / WorkerJournalName.
func OpenJournalFile(dir, name string, resume bool, warn io.Writer) (*Journal, error) {
	if warn == nil {
		warn = io.Discard
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, name)
	j := &Journal{entries: map[string]sim.Result{}, warn: warn}
	flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if resume {
		flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		j.entries, j.hdr, j.skipped = decodeJournal(data, warn)
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j.f = f
	return j, nil
}

// Close flushes and closes the journal file. Lookups keep working.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Sync forces journaled records to stable storage. Workers call it before
// publishing a range-done marker: the marker must never become visible
// before the records it vouches for.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Header returns the journal's header record, if one was loaded on resume
// or written this run.
func (j *Journal) Header() (JournalHeader, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.hdr == nil {
		return JournalHeader{}, false
	}
	return *j.hdr, true
}

// WriteHeader records h as the journal's producer identity. On a fresh
// journal the header is written as the first record; on resume the loaded
// header must match h exactly — a mismatch means the caller is about to
// append shard i/n records to a journal produced by a different shard
// layout or sweep configuration, and is an error, not a warning.
func (j *Journal) WriteHeader(h JournalHeader) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.hdr != nil {
		if *j.hdr != h {
			return fmt.Errorf("checkpoint: journal header mismatch: journal was written by %+v, this run is %+v", *j.hdr, h)
		}
		return nil
	}
	j.hdr = &h
	if j.f == nil || j.disabled {
		return nil
	}
	if _, err := j.f.Write(append(encodeHeader(h), '\n')); err != nil {
		j.disabled = true
		fmt.Fprintf(j.warn, "checkpoint: write failed, journaling disabled: %v\n", err)
	}
	return nil
}

// Len returns the number of results currently held (loaded + appended).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Entries returns a copy of the journal's result map — the merge path's
// view of a loaded shard journal.
func (j *Journal) Entries() map[string]sim.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]sim.Result, len(j.entries))
	for k, v := range j.entries {
		out[k] = v
	}
	return out
}

// Lookup returns the journaled result for key, if present.
func (j *Journal) Lookup(key string) (sim.Result, bool) {
	j.mu.Lock()
	r, ok := j.entries[key]
	j.mu.Unlock()
	if ok {
		j.restored.Add(1)
	}
	return r, ok
}

// Append journals one computed result. Write failures disable further
// journaling with a warning — losing checkpoints must never fail the run.
func (j *Journal) Append(key string, res sim.Result) {
	j.mu.Lock()
	if _, ok := j.entries[key]; ok {
		j.mu.Unlock()
		return
	}
	j.entries[key] = res
	if j.f == nil || j.disabled {
		j.mu.Unlock()
		return
	}
	line := encodeRecord(key, res)
	if j.Corrupt != nil {
		line = j.Corrupt(line)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.disabled = true
		fmt.Fprintf(j.warn, "checkpoint: write failed, journaling disabled: %v\n", err)
		j.mu.Unlock()
		return
	}
	n := j.appended.Add(1)
	hook := j.OnAppend
	j.mu.Unlock()
	if hook != nil {
		hook(n)
	}
}

// JournalStats snapshots the journal's effectiveness counters.
type JournalStats struct {
	// Loaded is the number of results currently held.
	Loaded int
	// Skipped counts corrupt or truncated records dropped during load.
	Skipped int
	// Restored counts lookups served from the journal this run.
	Restored uint64
	// Appended counts records written this run.
	Appended uint64
}

// Stats returns a snapshot of the counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	loaded, skipped := len(j.entries), j.skipped
	j.mu.Unlock()
	return JournalStats{
		Loaded:   loaded,
		Skipped:  skipped,
		Restored: j.restored.Load(),
		Appended: j.appended.Load(),
	}
}

// journalRecord is one result line of the journal file.
type journalRecord struct {
	Key string     `json:"k"`
	Res sim.Result `json:"r"`
	Sum string     `json:"s"`
}

// headerRecord is the journal's producer-identity line.
type headerRecord struct {
	Hdr JournalHeader `json:"h"`
	Sum string        `json:"s"`
}

// anyRecord is the decode-side union of the two line shapes.
type anyRecord struct {
	Key string         `json:"k"`
	Res sim.Result     `json:"r"`
	Hdr *JournalHeader `json:"h"`
	Sum string         `json:"s"`
}

// recordSum fingerprints one record's payload. %+v of sim.Result is
// deterministic (flat struct, shortest-round-trip floats), so the sum is
// stable across processes.
func recordSum(key string, res sim.Result) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%+v", key, res)
	return fmt.Sprintf("%016x", h.Sum64())
}

// headerSum fingerprints the header record; JournalHeader is flat, so
// %+v is deterministic.
func headerSum(h JournalHeader) string {
	f := fnv.New64a()
	fmt.Fprintf(f, "hdr|%+v", h)
	return fmt.Sprintf("%016x", f.Sum64())
}

func encodeRecord(key string, res sim.Result) []byte {
	// A fixed struct of strings and scalars cannot fail to marshal.
	line, _ := json.Marshal(journalRecord{Key: key, Res: res, Sum: recordSum(key, res)})
	return line
}

func encodeHeader(h JournalHeader) []byte {
	line, _ := json.Marshal(headerRecord{Hdr: h, Sum: headerSum(h)})
	return line
}

// decodeJournal parses journal bytes tolerantly: records that fail to
// parse, have no key, or whose checksum does not match are counted and
// skipped with a warning carrying the record's byte offset — a truncated
// tail is the normal residue of a killed run, and a corrupted record must
// become a recompute, never a false hit. Later records win over earlier
// duplicates; the first valid header wins.
func decodeJournal(data []byte, warn io.Writer) (map[string]sim.Result, *JournalHeader, int) {
	if warn == nil {
		warn = io.Discard
	}
	entries := map[string]sim.Result{}
	var hdr *JournalHeader
	skipped := 0
	offset := 0
	for lineNo := 1; len(data) > 0; lineNo++ {
		line := data
		next := len(data)
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, next = data[:i], i+1
		}
		recOff := offset
		offset += next
		data = data[next:]
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec anyRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++
			fmt.Fprintf(warn, "checkpoint: skipping unreadable record at line %d (offset %d): %v\n", lineNo, recOff, err)
			continue
		}
		if rec.Hdr != nil {
			if rec.Sum != headerSum(*rec.Hdr) {
				skipped++
				fmt.Fprintf(warn, "checkpoint: skipping corrupt header at line %d (offset %d, checksum mismatch)\n", lineNo, recOff)
			} else if hdr == nil {
				hdr = rec.Hdr
			}
			continue
		}
		if rec.Key == "" || rec.Sum != recordSum(rec.Key, rec.Res) {
			skipped++
			fmt.Fprintf(warn, "checkpoint: skipping corrupt record at line %d (offset %d, checksum mismatch)\n", lineNo, recOff)
			continue
		}
		entries[rec.Key] = rec.Res
	}
	return entries, hdr, skipped
}

// ReadJournalFile loads one journal file tolerantly: its header (if any),
// its valid records, and the count of records skipped as corrupt or torn.
// A missing file is not an error; it reads as empty.
func ReadJournalFile(path string, warn io.Writer) (map[string]sim.Result, *JournalHeader, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]sim.Result{}, nil, 0, nil
		}
		return nil, nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	entries, hdr, skipped := decodeJournal(data, warn)
	return entries, hdr, skipped, nil
}

// WriteJournalFile writes entries as a canonical journal: header first
// (when non-nil), then records sorted by key, built in a temp file and
// atomically renamed into place — the merge path's deterministic output.
// The same entry set always produces byte-identical bytes.
func WriteJournalFile(path string, hdr *JournalHeader, entries map[string]sim.Result) error {
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	if hdr != nil {
		buf.Write(encodeHeader(*hdr))
		buf.WriteByte('\n')
	}
	for _, k := range keys {
		buf.Write(encodeRecord(k, entries[k]))
		buf.WriteByte('\n')
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}
