package runner

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sync"
	"sync/atomic"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/sim"
)

// CacheKeyer is implemented by bank maps that can fingerprint themselves
// for result memoization. Two maps with equal keys must assign every
// address to the same bank. Bank maps that do not implement it (and are
// not the built-in interleave map) make a simulation uncacheable: the
// cache falls through to sim.Run rather than risk a false hit.
type CacheKeyer interface {
	CacheKey() string
}

// Cache memoizes simulation results by the full content of the request:
// machine parameters, every sim.Config knob, the bank map fingerprint and
// a digest of the access pattern. Experiments share baselines (the same
// pattern simulated on the same machine appears in several sweeps), so a
// run of the whole suite executes each distinct simulation once.
//
// Concurrent requests for the same key are deduplicated: one caller runs
// the simulation, the rest wait for its result. Failed simulations are
// never cached: the entry is evicted so a retry re-executes, and a panic
// below the cache evicts too (waiters receive a retryable error while the
// panic continues to the runner's point guard). Cache implements
// experiments.SimRunner and is safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	// Next, when non-nil, executes cache misses — the fault injector's
	// seat in chaos runs. Nil means sim.RunContext.
	Next experiments.SimRunner

	// Journal, when non-nil, persists every computed result and serves
	// journaled ones without re-running the simulation (checkpoint/resume).
	Journal *Journal

	hits     atomic.Uint64
	misses   atomic.Uint64
	bypassed atomic.Uint64
}

type cacheEntry struct {
	done chan struct{} // closed when res/err are valid
	res  sim.Result
	err  error
}

// NewCache returns an empty simulation cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits counts requests served from a completed or in-flight entry.
	Hits uint64
	// Misses counts requests that executed the simulation.
	Misses uint64
	// Bypassed counts requests that could not be keyed (unknown bank map
	// type) and went straight to sim.Run.
	Bypassed uint64
}

// HitRate returns hits / (hits + misses), or 0 when the cache is unused.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Bypassed: c.bypassed.Load(),
	}
}

// downstream executes a request below the cache: the configured Next
// runner (fault injector) or the simulator itself. The sim.RunContext
// terminal draws from sim's engine pool, so each cache miss re-arms a
// retained engine rather than building one — in steady state a worker's
// misses run allocation-free.
func (c *Cache) downstream(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	if c.Next != nil {
		return c.Next.RunSim(ctx, cfg, pt)
	}
	return sim.RunContext(ctx, cfg, pt)
}

func (c *Cache) evict(key string) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// RunSim implements experiments.SimRunner: it serves the result from the
// cache (or the checkpoint journal) when an identical simulation has
// already run, and executes and stores it otherwise.
func (c *Cache) RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	key, ok := cacheKey(cfg, pt)
	if !ok {
		c.bypassed.Add(1)
		return c.downstream(ctx, cfg, pt)
	}

	c.mu.Lock()
	if e, found := c.entries[key]; found {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.res, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	if c.Journal != nil {
		if res, found := c.Journal.Lookup(key); found {
			e.res = res
			close(e.done)
			return res, nil
		}
	}

	c.misses.Add(1)
	finished := false
	defer func() {
		// A panic below the cache (injected fault, simulator bug) must not
		// leave waiters blocked or a poisoned entry in the map: evict,
		// hand waiters a retryable error, and let the panic continue to
		// the runner's point guard.
		if !finished {
			c.evict(key)
			e.err = MarkTransient(fmt.Errorf("simulation aborted by a panic in a concurrent caller"))
			close(e.done)
		}
	}()
	e.res, e.err = c.downstream(ctx, cfg, pt)
	finished = true
	if e.err != nil {
		// Failures are not cached: evict so a retry re-executes.
		c.evict(key)
	} else if c.Journal != nil {
		c.Journal.Append(key, e.res)
	}
	close(e.done)
	return e.res, e.err
}

// SimKey exposes the cache's content fingerprint of one simulation
// request; the checkpoint journal and the fault injector key on it too.
// ok is false when the request cannot be fingerprinted (unknown bank map).
func SimKey(cfg sim.Config, pt core.Pattern) (string, bool) {
	return cacheKey(cfg, pt)
}

// cacheKey fingerprints one simulation request. The config is normalized
// first so a default-valued knob and its explicit default produce the same
// key. Returns ok=false when the bank map cannot be fingerprinted.
//
// The key is a config prefix plus a pattern digest, computed separately
// because they have different costs: the prefix is a cheap Sprintf over
// scalars, while the digest hashes every address in the pattern — so the
// digest is memoized by slice identity (see digestMemo). Sweeps simulate
// the same handful of patterns under hundreds of configs, and the
// Observer recomputes the key on every RunDone; without the memo the
// probed path would re-hash megabytes per run.
func cacheKey(cfg sim.Config, pt core.Pattern) (string, bool) {
	cfg = cfg.Normalize()
	prefix, ok := configPrefix(cfg)
	if !ok {
		return "", false
	}
	return prefix + patDigests.digestOf(pt), true
}

// configPrefix fingerprints every behavioral knob of the normalized cfg.
// Returns ok=false when the bank map cannot be fingerprinted.
//
// The FIFO row-buffer knobs are emitted in the historical bcl/bhd/brs
// encoding, derived from the normalized Bank sub-config (brs is log2 of
// the row size, exactly what the deprecated BankRowShift field held), and
// non-FIFO disciplines append their sub-config after it — so every key
// minted before the discipline API exists unchanged, and the checkpoint
// journals and memo entries keyed under it stay valid.
// TestConfigPrefixCompat pins the exact legacy strings.
func configPrefix(cfg sim.Config) (string, bool) {
	bmKey, ok := bankMapKey(cfg.BankMap)
	if !ok {
		return "", false
	}
	brs := 0
	if cfg.Bank.CacheLines > 0 && cfg.Bank.RowWords > 0 {
		brs = bits.TrailingZeros(uint(cfg.Bank.RowWords))
	}
	ext := ""
	if cfg.Bank.Discipline != sim.FIFO {
		// BankConfig is all scalar fields, so %+v is a complete fingerprint.
		ext = fmt.Sprintf("disc=%s|bank=%+v|", cfg.Bank.Discipline, cfg.Bank)
	}
	// Machine is all scalar fields, so %+v is a complete fingerprint.
	return fmt.Sprintf("m=%+v|bm=%s|w=%d|comb=%t|nd=%g|sect=%t|bcl=%d|bhd=%g|brs=%d|%spt=",
		cfg.Machine, bmKey,
		cfg.Window, cfg.Combining, cfg.NetDelay, cfg.UseSections,
		cfg.Bank.CacheLines, cfg.Bank.HitDelay, brs, ext), true
}

func bankMapKey(bm core.BankMap) (string, bool) {
	switch m := bm.(type) {
	case nil:
		return "nil", true
	case core.InterleaveMap:
		return fmt.Sprintf("interleave:%d", m.Banks), true
	case core.GPUSharedMap:
		return fmt.Sprintf("gpushared:%d", m.Banks), true
	case CacheKeyer:
		return m.CacheKey(), true
	default:
		return "", false
	}
}

// digestMemo caches recent pattern digests by slice identity. A pattern's
// digest hashes its full address content, which is the dominant cost of
// keying a run; but the suite simulates a small set of patterns over and
// over (every sweep point, every RunDone commit), so identity — the same
// per-processor slices, by pointer and length — almost always answers
// before content hashing is needed.
//
// Correctness of the identity check rests on two facts. First, each memo
// entry retains the pattern it fingerprinted, so the backing arrays stay
// reachable and their addresses cannot be recycled for different content
// while the entry lives. Second, callers of the cache already must not
// mutate a pattern after submitting it — the cache fingerprints content
// at submit time, so in-place mutation silently breaks memoization and
// journaling with or without this memo. The entry table is small and
// round-robin evicted: it bounds how many patterns the memo pins while
// covering the handful a concurrent sweep has in flight.
type digestMemo struct {
	mu      sync.Mutex
	entries [8]struct {
		pt     core.Pattern
		digest string
	}
	next int // round-robin eviction cursor
}

// patDigests is the process-wide digest memo, shared by the cache and
// (via SimKey) the Observer's commit path.
var patDigests digestMemo

func (m *digestMemo) digestOf(pt core.Pattern) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.entries {
		if samePatternIdentity(m.entries[i].pt, pt) {
			return m.entries[i].digest
		}
	}
	d := patternDigest(pt)
	m.entries[m.next].pt = pt
	m.entries[m.next].digest = d
	m.next = (m.next + 1) % len(m.entries)
	return d
}

// samePatternIdentity reports whether a and b are structurally the same
// slices: the same processor count and, per processor, the same backing
// pointer and length. Identity implies content equality under the
// no-mutation-after-submit contract.
func samePatternIdentity(a, b core.Pattern) bool {
	if len(a.PerProc) != len(b.PerProc) || len(a.PerProc) == 0 {
		return false
	}
	for i := range a.PerProc {
		x, y := a.PerProc[i], b.PerProc[i]
		if len(x) != len(y) {
			return false
		}
		if len(x) > 0 && &x[0] != &y[0] {
			return false
		}
	}
	return true
}

// patternDigest hashes the full address content of a pattern (FNV-1a 64
// over every address, with per-processor framing) plus its shape, so two
// patterns collide only if their per-processor address streams agree.
func patternDigest(pt core.Pattern) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(pt.PerProc)))
	h.Write(buf[:])
	n := 0
	for _, addrs := range pt.PerProc {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(addrs)))
		h.Write(buf[:])
		for _, a := range addrs {
			binary.LittleEndian.PutUint64(buf[:], a)
			h.Write(buf[:])
		}
		n += len(addrs)
	}
	return fmt.Sprintf("%016x:%d", h.Sum64(), n)
}
