package runner

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"dxbsp/internal/core"
	"dxbsp/internal/sim"
)

// CacheKeyer is implemented by bank maps that can fingerprint themselves
// for result memoization. Two maps with equal keys must assign every
// address to the same bank. Bank maps that do not implement it (and are
// not the built-in interleave map) make a simulation uncacheable: the
// cache falls through to sim.Run rather than risk a false hit.
type CacheKeyer interface {
	CacheKey() string
}

// Cache memoizes simulation results by the full content of the request:
// machine parameters, every sim.Config knob, the bank map fingerprint and
// a digest of the access pattern. Experiments share baselines (the same
// pattern simulated on the same machine appears in several sweeps), so a
// run of the whole suite executes each distinct simulation once.
//
// Concurrent requests for the same key are deduplicated: one caller runs
// the simulation, the rest wait for its result. Cache implements
// experiments.SimRunner and is safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits     atomic.Uint64
	misses   atomic.Uint64
	bypassed atomic.Uint64
}

type cacheEntry struct {
	done chan struct{} // closed when res/err are valid
	res  sim.Result
	err  error
}

// NewCache returns an empty simulation cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits counts requests served from a completed or in-flight entry.
	Hits uint64
	// Misses counts requests that executed the simulation.
	Misses uint64
	// Bypassed counts requests that could not be keyed (unknown bank map
	// type) and went straight to sim.Run.
	Bypassed uint64
}

// HitRate returns hits / (hits + misses), or 0 when the cache is unused.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Bypassed: c.bypassed.Load(),
	}
}

// RunSim implements experiments.SimRunner: it serves the result from the
// cache when an identical simulation has already run (or is running), and
// executes and stores it otherwise.
func (c *Cache) RunSim(cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	key, ok := cacheKey(cfg, pt)
	if !ok {
		c.bypassed.Add(1)
		return sim.Run(cfg, pt)
	}

	c.mu.Lock()
	if e, found := c.entries[key]; found {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.res, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	c.misses.Add(1)
	e.res, e.err = sim.Run(cfg, pt)
	close(e.done)
	return e.res, e.err
}

// cacheKey fingerprints one simulation request. The config is normalized
// first so a default-valued knob and its explicit default produce the same
// key. Returns ok=false when the bank map cannot be fingerprinted.
func cacheKey(cfg sim.Config, pt core.Pattern) (string, bool) {
	cfg = cfg.Normalize()
	bmKey, ok := bankMapKey(cfg.BankMap)
	if !ok {
		return "", false
	}
	// Machine is all scalar fields, so %+v is a complete fingerprint.
	return fmt.Sprintf("m=%+v|bm=%s|w=%d|comb=%t|nd=%g|sect=%t|bcl=%d|bhd=%g|brs=%d|pt=%s",
		cfg.Machine, bmKey,
		cfg.Window, cfg.Combining, cfg.NetDelay, cfg.UseSections,
		cfg.BankCacheLines, cfg.BankHitDelay, cfg.BankRowShift,
		patternDigest(pt)), true
}

func bankMapKey(bm core.BankMap) (string, bool) {
	switch m := bm.(type) {
	case nil:
		return "nil", true
	case core.InterleaveMap:
		return fmt.Sprintf("interleave:%d", m.Banks), true
	case CacheKeyer:
		return m.CacheKey(), true
	default:
		return "", false
	}
}

// patternDigest hashes the full address content of a pattern (FNV-1a 64
// over every address, with per-processor framing) plus its shape, so two
// patterns collide only if their per-processor address streams agree.
func patternDigest(pt core.Pattern) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(pt.PerProc)))
	h.Write(buf[:])
	n := 0
	for _, addrs := range pt.PerProc {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(addrs)))
		h.Write(buf[:])
		for _, a := range addrs {
			binary.LittleEndian.PutUint64(buf[:], a)
			h.Write(buf[:])
		}
		n += len(addrs)
	}
	return fmt.Sprintf("%016x:%d", h.Sum64(), n)
}
