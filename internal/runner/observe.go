package runner

import (
	"context"
	"sort"
	"sync"
	"time"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/metrics"
	"dxbsp/internal/sim"
	"dxbsp/internal/stats"
)

// Observer is the runner's metrics collector. It implements sim.Probe, so
// installing it on Runner.Metrics threads it through the cache and the
// fault injector into every simulation the run executes, and it
// additionally receives runner-level observations (point latencies,
// experiment stats, cache and checkpoint traffic).
//
// The determinism contract: everything Snapshot(false) exports is a pure
// function of the set of distinct successfully-completed simulations.
// Three mechanisms make that hold for any worker count and under chaos:
//
//   - Per-run collectors commit their totals only from sim's RunDone
//     hook, which never fires for a cancelled or faulted run — a chaos
//     abort mid-simulation contributes nothing.
//   - Contributions are stored in a map keyed by SimKey (the cache's
//     content fingerprint), so re-executions of the same simulation —
//     cache disabled, or a post-fault retry — overwrite with identical
//     values instead of double-counting.
//   - Snapshot reduces contributions in sorted-key order, so the float
//     additions happen in one canonical order no matter which workers
//     finished first.
//
// Wall-clock observations (latency, utilization, cache hit/miss under
// racing dedup, retries) are registered Volatile and appear only in
// Snapshot(true).
type Observer struct {
	mu       sync.Mutex
	contribs map[string]*contribution
	unkeyed  uint64 // successful runs with no SimKey (custom bank map)

	// surr holds the routed-to-surrogate points, keyed like contribs so
	// re-executions dedupe; the value is the pinned max-rel-err bound for
	// the point's regime. surrUnkeyed tallies unfingerprintable routes.
	surr        map[string]float64
	surrUnkeyed uint64

	// batchFast and batchFall record batching outcomes per distinct
	// simulation, keyed like contribs so re-submissions dedupe: a key in
	// batchFast took the lockstep fast path, a key in batchFall maps to
	// its sim.BatchFallbackReason label. batchUnkeyed tallies
	// unfingerprintable lanes by the same reason labels ("" = fast).
	batchFast    map[string]struct{}
	batchFall    map[string]string
	batchUnkeyed map[string]uint64

	// collPool recycles per-run collectors: RunStart draws one and re-arms
	// its retained arrival FIFOs in place, RunDone returns it after
	// committing. A steady-state sweep therefore collects with ~0
	// allocations per run (TestObserverProbedAllocBudget pins the probed
	// end-to-end budget). Collectors abandoned by cancelled runs (RunDone
	// never fires) are simply collected by the GC; the pool refills.
	collPool sync.Pool

	volMu       sync.Mutex
	pointSecs   []float64
	experiments int
	points      int
	retries     int
	failedPts   int
	busy        time.Duration
	poolSecs    float64 // Σ wall·workers, the pool's capacity
	cache       CacheStats
	journal     JournalStats
	hasJournal  bool
}

// posBuckets is the resolution of the relative-bank-position profile:
// per-bank data from machines of any size folds into this many buckets so
// heterogeneous sweeps aggregate into one heatmap row.
const posBuckets = 32

// contribution is the committed outcome of one distinct simulation.
type contribution struct {
	res sim.Result

	bankWait    float64 // Σ (service start − arrival) over bank requests
	sectWait    float64 // Σ (forward start − arrival) over section passes
	windowStall float64 // Σ blocked time across processors
	combined    int     // requests satisfied by another request's service
	queuedBank  int     // bank services that started from the queue

	posLoad  [posBuckets]float64 // services per relative bank position
	posBusy  [posBuckets]float64 // busy cycles per relative bank position
	posQueue [posBuckets]float64 // max arrival-observed depth per position
}

// NewObserver returns an empty Observer.
func NewObserver() *Observer {
	return &Observer{contribs: make(map[string]*contribution)}
}

// RunStart implements sim.Probe: it hands the engine a per-run collector
// that accumulates locally (no locks on the hot path) and commits into
// the observer at RunDone.
func (o *Observer) RunStart(cfg sim.Config, pt core.Pattern) sim.RunProbe {
	rc, _ := o.collPool.Get().(*runCollector)
	if rc == nil {
		rc = &runCollector{}
	}
	rc.arm(o, cfg, pt)
	return rc
}

// runCollector gathers one simulation run's events. It reconstructs
// per-request waiting time from the arrival/start hook pairs: each bank
// keeps a FIFO of arrival times, popped as services start. Under
// combining this pairing is approximate — extractAddr removes matching
// requests from the middle of the bank queue, while the collector pops in
// FIFO order — so combined-run wait totals are an estimate; everything
// else is exact.
type runCollector struct {
	o     *Observer
	cfg   sim.Config
	pt    core.Pattern
	banks int

	bankArr  [][]float64 // per-bank FIFO of arrival times
	bankHead []int
	sectArr  [][]float64 // per-section FIFO of arrival times
	sectHead []int

	c contribution
}

// arm readies a (possibly recycled) collector for one run. The arrival
// FIFOs are re-armed over their full new extent — lengths back to zero,
// capacities kept — so a reused collector allocates only when a station's
// arrival stream outgrows every previous run's (amortized, then never).
func (rc *runCollector) arm(o *Observer, cfg sim.Config, pt core.Pattern) {
	rc.o, rc.cfg, rc.pt = o, cfg, pt
	rc.banks = cfg.Machine.Banks
	rc.c = contribution{}
	rc.bankArr, rc.bankHead = armFIFOs(rc.bankArr, rc.bankHead, cfg.Machine.Banks)
	nSections := 0
	if cfg.UseSections && cfg.Machine.Sections > 1 {
		nSections = cfg.Machine.Sections
	}
	rc.sectArr, rc.sectHead = armFIFOs(rc.sectArr, rc.sectHead, nSections)
}

// armFIFOs resizes a retained set of per-station arrival FIFOs to n
// stations, reusing the backing storage when it fits. A fresh build
// carves every station's initial storage from one slab (the ring.go
// pattern), so first-run allocation is O(1) in the station count; only a
// station whose FIFO outgrows its carve reallocates, and it keeps the
// bigger capacity for later runs.
func armFIFOs(arr [][]float64, head []int, n int) ([][]float64, []int) {
	if cap(arr) >= n && cap(head) >= n {
		arr, head = arr[:n], head[:n]
		for i := range arr {
			arr[i] = arr[i][:0]
			head[i] = 0
		}
		return arr, head
	}
	arr = make([][]float64, n)
	head = make([]int, n)
	const per = 8
	slab := make([]float64, n*per)
	for i := range arr {
		arr[i] = slab[:0:per]
		slab = slab[per:]
	}
	return arr, head
}

// bucket folds a bank index into a relative-position bucket.
func (rc *runCollector) bucket(bank int) int {
	if rc.banks <= 0 {
		return 0
	}
	b := bank * posBuckets / rc.banks
	if b >= posBuckets {
		b = posBuckets - 1
	}
	return b
}

func (rc *runCollector) BankArrive(bank int, now float64, depth int) {
	rc.bankArr[bank] = append(rc.bankArr[bank], now)
	if p := rc.bucket(bank); float64(depth) > rc.c.posQueue[p] {
		rc.c.posQueue[p] = float64(depth)
	}
}

func (rc *runCollector) BankStart(bank int, now float64, service, stall float64, rowHit, queued bool, combined int) {
	p := rc.bucket(bank)
	rc.c.posLoad[p] += float64(1 + combined)
	rc.c.posBusy[p] += service
	if queued {
		rc.c.queuedBank++
	}
	rc.c.combined += combined
	for i := 0; i <= combined; i++ {
		if rc.bankHead[bank] < len(rc.bankArr[bank]) {
			if w := now - rc.bankArr[bank][rc.bankHead[bank]]; w > 0 {
				rc.c.bankWait += w
			}
			rc.bankHead[bank]++
		}
	}
}

func (rc *runCollector) SectionArrive(sec int, now float64, depth int) {
	// arm sized the FIFOs from the config; the loop is a defensive
	// fallback for a section index the config did not predict.
	for len(rc.sectArr) <= sec {
		rc.sectArr = append(rc.sectArr, nil)
		rc.sectHead = append(rc.sectHead, 0)
	}
	rc.sectArr[sec] = append(rc.sectArr[sec], now)
}

func (rc *runCollector) SectionStart(sec int, now float64, queued bool) {
	if sec < len(rc.sectArr) && rc.sectHead[sec] < len(rc.sectArr[sec]) {
		if w := now - rc.sectArr[sec][rc.sectHead[sec]]; w > 0 {
			rc.c.sectWait += w
		}
		rc.sectHead[sec]++
	}
}

func (rc *runCollector) WindowStall(proc int, from, to float64) {
	if d := to - from; d > 0 {
		rc.c.windowStall += d
	}
}

// RunDone commits the run and recycles the collector. This is the only
// collector method that touches shared state, and it only fires for
// completed simulations.
func (rc *runCollector) RunDone(res sim.Result) {
	rc.c.res = res
	key, ok := SimKey(rc.cfg, rc.pt)
	o := rc.o
	o.mu.Lock()
	switch {
	case !ok:
		// No content fingerprint (custom bank map without a CacheKeyer):
		// the run cannot be deduplicated, so counting it would make the
		// totals depend on how many times the scheduler re-executed it.
		// It is tallied separately and excluded from deterministic series.
		o.unkeyed++
	case o.contribs[key] != nil:
		// A re-execution of a known simulation (cache disabled, or a
		// post-fault retry) commits identical values: overwrite in place
		// rather than allocating a fresh contribution.
		*o.contribs[key] = rc.c
	default:
		c := rc.c // copy: rc is recycled below
		o.contribs[key] = &c
	}
	o.mu.Unlock()

	// The engine drops its RunProbe reference after RunDone; release the
	// run's borrowed references and return the collector to the pool.
	rc.o = nil
	rc.cfg = sim.Config{}
	rc.pt = core.Pattern{}
	o.collPool.Put(rc)
}

// ObserveSurrogate records one simulation request answered by the
// closed-form surrogate instead of the event simulator, with the pinned
// error bound for its regime. Keyed by the same content fingerprint as
// simulations, so routed totals stay a pure function of the distinct
// routed set for any worker count.
func (o *Observer) ObserveSurrogate(cfg sim.Config, pt core.Pattern, bound float64) {
	key, ok := SimKey(cfg, pt)
	o.mu.Lock()
	switch {
	case !ok:
		o.surrUnkeyed++
	default:
		if o.surr == nil {
			o.surr = make(map[string]float64)
		}
		o.surr[key] = bound
	}
	o.mu.Unlock()
}

// ObserveBatchLane records one batched simulation call's outcome:
// reason "" means the lane was admitted to the lockstep fast path,
// otherwise it is the sim.BatchFallbackReason label for why the call
// forwarded to the scalar engine. Keyed by the same content fingerprint
// as simulations, so the efficacy counters stay a pure function of the
// distinct submitted set for any worker count. The Batcher's Observe
// field takes this method directly.
func (o *Observer) ObserveBatchLane(cfg sim.Config, pt core.Pattern, reason string) {
	key, ok := SimKey(cfg, pt)
	o.mu.Lock()
	switch {
	case !ok:
		if o.batchUnkeyed == nil {
			o.batchUnkeyed = make(map[string]uint64)
		}
		o.batchUnkeyed[reason]++
	case reason == "":
		if o.batchFast == nil {
			o.batchFast = make(map[string]struct{})
		}
		o.batchFast[key] = struct{}{}
	default:
		if o.batchFall == nil {
			o.batchFall = make(map[string]string)
		}
		o.batchFall[key] = reason
	}
	o.mu.Unlock()
}

// ObservePoint records one point execution's wall time.
func (o *Observer) ObservePoint(d time.Duration) {
	o.volMu.Lock()
	o.pointSecs = append(o.pointSecs, d.Seconds())
	o.volMu.Unlock()
}

// ObserveExperiment accumulates one experiment's execution stats.
func (o *Observer) ObserveExperiment(st Stats) {
	o.volMu.Lock()
	o.experiments++
	o.points += st.Points
	o.retries += st.Retries
	o.failedPts += st.Failed
	o.busy += st.Busy
	o.poolSecs += st.Wall.Seconds() * float64(st.Workers)
	o.volMu.Unlock()
}

// ObserveCache records the cache's counter snapshot (latest wins).
func (o *Observer) ObserveCache(cs CacheStats) {
	o.volMu.Lock()
	o.cache = cs
	o.volMu.Unlock()
}

// ObserveJournal records the checkpoint journal's counter snapshot.
func (o *Observer) ObserveJournal(js JournalStats) {
	o.volMu.Lock()
	o.journal, o.hasJournal = js, true
	o.volMu.Unlock()
}

// simCyclesBounds buckets per-run cycle counts across the scales the
// experiment suite produces (quick J90 points to production C90 sweeps).
var simCyclesBounds = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576}

// pointSecsBounds buckets point wall times from sub-millisecond cache
// hits to multi-second production points.
var pointSecsBounds = []float64{0.001, 0.01, 0.1, 1, 10, 60}

// Registry materializes the observer's state into a fresh
// metrics.Registry. Deterministic series are reduced from the
// contribution map in sorted-key order; volatile series carry the
// wall-clock aggregates. Calling it twice on unchanged state produces
// registries with byte-identical exports.
func (o *Observer) Registry() *metrics.Registry {
	reg := metrics.NewRegistry()

	o.mu.Lock()
	keys := make([]string, 0, len(o.contribs))
	for k := range o.contribs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	runs := reg.Counter("dxbsp_sim_runs", "distinct successful simulations")
	requests := reg.Counter("dxbsp_sim_requests", "memory requests simulated")
	services := reg.Counter("dxbsp_sim_bank_services", "bank service occupations")
	rowHits := reg.Counter("dxbsp_sim_row_hits", "bank services satisfied from the row buffer")
	rowConfC := reg.Counter("dxbsp_sim_row_conflicts", "DRAM services that missed every open row")
	throttleC := reg.Counter("dxbsp_sim_throttle_stalls", "bank services deferred by bandwidth regulation")
	throttleCyC := reg.Counter("dxbsp_sim_throttle_stall_cycles", "time bank services waited on regulation windows")
	replayC := reg.Counter("dxbsp_sim_warp_replays", "GPU shared-memory bank-conflict warp replays")
	combinedC := reg.Counter("dxbsp_sim_combined_requests", "requests satisfied by combining")
	queuedC := reg.Counter("dxbsp_sim_queued_bank_starts", "bank services that waited in the queue")
	busyC := reg.Counter("dxbsp_sim_bank_busy_cycles", "total bank busy time")
	bankWaitC := reg.Counter("dxbsp_sim_wait_bank_cycles", "time requests spent queued at banks")
	sectWaitC := reg.Counter("dxbsp_sim_wait_section_cycles", "time requests spent queued at network sections")
	windowC := reg.Counter("dxbsp_sim_stall_window_cycles", "processor time blocked on the outstanding-request window")
	cyclesH := reg.Histogram("dxbsp_sim_cycles", "per-run completion time distribution", simCyclesBounds)
	bankHWM := reg.Gauge("dxbsp_sim_bank_queue_depth_hwm", "deepest bank queue observed in any run")
	sectHWM := reg.Gauge("dxbsp_sim_section_queue_depth_hwm", "deepest section queue observed in any run")

	for _, k := range keys {
		c := o.contribs[k]
		runs.Inc()
		requests.Add(float64(c.res.Requests))
		services.Add(float64(c.res.BankServices))
		rowHits.Add(float64(c.res.RowHits))
		rowConfC.Add(float64(c.res.RowConflicts))
		throttleC.Add(float64(c.res.ThrottleStalls))
		throttleCyC.Add(c.res.ThrottleStallCycles)
		replayC.Add(float64(c.res.WarpReplays))
		combinedC.Add(float64(c.combined))
		queuedC.Add(float64(c.queuedBank))
		busyC.Add(c.res.BankBusy)
		bankWaitC.Add(c.bankWait)
		sectWaitC.Add(c.sectWait)
		windowC.Add(c.windowStall)
		cyclesH.Observe(c.res.Cycles)
		bankHWM.SetMax(float64(c.res.MaxBankQueue))
		sectHWM.SetMax(float64(c.res.MaxSectionQueue))
	}
	// Surrogate series exist only when routing happened: a run that never
	// touched the surrogate exports the exact same series set as before
	// the router existed.
	if len(o.surr) > 0 || o.surrUnkeyed > 0 {
		surrPts := reg.Counter("dxbsp_surrogate_points", "simulation requests answered by the closed-form surrogate")
		surrPts.Add(float64(len(o.surr)) + float64(o.surrUnkeyed))
		bound := 0.0
		for _, b := range o.surr {
			if b > bound {
				bound = b
			}
		}
		reg.Gauge("dxbsp_surrogate_maxrelerr", "worst pinned error bound among routed regimes").Set(bound)
	}
	// Batch-efficacy series exist only when batching ran: a run without
	// -batch exports the exact same series set as before the batcher
	// existed, so metrics goldens are unaffected.
	if len(o.batchFast) > 0 || len(o.batchFall) > 0 || len(o.batchUnkeyed) > 0 {
		fast := float64(len(o.batchFast)) + float64(o.batchUnkeyed[""])
		reg.Counter("dxbsp_batch_fast_lanes", "batched simulation calls admitted to the lockstep fast path").Add(fast)
		byReason := make(map[string]float64)
		for _, r := range o.batchFall {
			byReason[r]++
		}
		for r, n := range o.batchUnkeyed {
			if r != "" {
				byReason[r] += float64(n)
			}
		}
		reasons := make([]string, 0, len(byReason))
		for r := range byReason {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			reg.Counter("dxbsp_batch_fallback_lanes", "batched simulation calls forwarded to the scalar engine",
				metrics.WithLabels(metrics.Label{Key: "reason", Value: r})).Add(byReason[r])
		}
	}
	unkeyed := o.unkeyed
	o.mu.Unlock()

	o.volMu.Lock()
	defer o.volMu.Unlock()
	reg.Counter("dxbsp_sim_unkeyed_runs", "successful runs with no content fingerprint (excluded from sim series)",
		metrics.Volatile()).Add(float64(unkeyed))
	reg.Counter("dxbsp_runner_experiments", "experiments executed", metrics.Volatile()).Add(float64(o.experiments))
	reg.Counter("dxbsp_runner_points", "sweep points executed", metrics.Volatile()).Add(float64(o.points))
	reg.Counter("dxbsp_runner_retries", "point re-executions after transient failures", metrics.Volatile()).Add(float64(o.retries))
	reg.Counter("dxbsp_runner_failed_points", "points that exhausted their retry budget", metrics.Volatile()).Add(float64(o.failedPts))
	lat := reg.Histogram("dxbsp_runner_point_seconds", "point wall time", pointSecsBounds, metrics.Volatile())
	for _, s := range o.pointSecs {
		lat.Observe(s)
	}
	util := 0.0
	if o.poolSecs > 0 {
		util = o.busy.Seconds() / o.poolSecs
		if util > 1 {
			util = 1
		}
	}
	reg.Gauge("dxbsp_runner_pool_utilization", "fraction of pool capacity spent executing points",
		metrics.Volatile()).Set(util)
	reg.Counter("dxbsp_cache_hits", "simulations served from the memo cache", metrics.Volatile()).Add(float64(o.cache.Hits))
	reg.Counter("dxbsp_cache_misses", "simulations executed on cache miss", metrics.Volatile()).Add(float64(o.cache.Misses))
	reg.Counter("dxbsp_cache_bypassed", "unkeyable simulations run uncached", metrics.Volatile()).Add(float64(o.cache.Bypassed))
	if o.hasJournal {
		reg.Counter("dxbsp_checkpoint_restored", "simulations restored from the checkpoint journal",
			metrics.Volatile()).Add(float64(o.journal.Restored))
		reg.Counter("dxbsp_checkpoint_appended", "simulations appended to the checkpoint journal",
			metrics.Volatile()).Add(float64(o.journal.Appended))
		reg.Gauge("dxbsp_checkpoint_entries", "results held by the checkpoint journal",
			metrics.Volatile()).Set(float64(o.journal.Loaded))
		reg.Counter("dxbsp_journal_skipped_records", "corrupt or torn journal records dropped during load",
			metrics.Volatile()).Add(float64(o.journal.Skipped))
	}
	return reg
}

// Snapshot is shorthand for Registry().Snapshot(includeVolatile).
func (o *Observer) Snapshot(includeVolatile bool) []metrics.Sample {
	return o.Registry().Snapshot(includeVolatile)
}

// BankProfile returns the relative-bank-position heatmap rows, reduced
// over all contributions in sorted-key order: requests served, busy
// cycles, and the maximum arrival-observed queue depth, each indexed by
// position bucket. Deterministic for any worker count.
func (o *Observer) BankProfile() (labels []string, rows [][]float64) {
	var load, busy, queue [posBuckets]float64
	o.mu.Lock()
	keys := make([]string, 0, len(o.contribs))
	for k := range o.contribs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := o.contribs[k]
		for i := 0; i < posBuckets; i++ {
			load[i] += c.posLoad[i]
			busy[i] += c.posBusy[i]
			if c.posQueue[i] > queue[i] {
				queue[i] = c.posQueue[i]
			}
		}
	}
	o.mu.Unlock()
	return []string{"load (requests)", "busy (cycles)", "queue depth max"},
		[][]float64{load[:], busy[:], queue[:]}
}

// CycleSummary summarizes per-run completion times over the distinct
// simulations, in cycles. Deterministic for any worker count.
func (o *Observer) CycleSummary() stats.Summary {
	o.mu.Lock()
	cycles := make([]float64, 0, len(o.contribs))
	for _, c := range o.contribs {
		cycles = append(cycles, c.res.Cycles)
	}
	o.mu.Unlock()
	sort.Float64s(cycles)
	return stats.Summarize(cycles)
}

// PointLatencySummary summarizes observed point wall times in seconds.
// Wall-clock data: volatile, for human reporting only.
func (o *Observer) PointLatencySummary() stats.Summary {
	o.volMu.Lock()
	secs := append([]float64(nil), o.pointSecs...)
	o.volMu.Unlock()
	sort.Float64s(secs)
	return stats.Summarize(secs)
}

// Runs returns the number of distinct simulations observed.
func (o *Observer) Runs() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.contribs)
}

// probeRunner attaches a sim.Probe to every simulation request passing
// through it, then delegates to the rest of the chain (cache → injector →
// simulator). It sits at the top so the probe rides the Config through
// layers that forward it untouched; the cache's key function fingerprints
// behavioral fields explicitly, so the probe never affects cache identity.
type probeRunner struct {
	next  experiments.SimRunner // nil means sim.RunContext directly
	probe sim.Probe
}

func (p *probeRunner) RunSim(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
	cfg.Probe = p.probe
	if p.next != nil {
		return p.next.RunSim(ctx, cfg, pt)
	}
	return sim.RunContext(ctx, cfg, pt)
}
