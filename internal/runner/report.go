package runner

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"dxbsp/internal/metrics"
	"dxbsp/internal/stats"
	"dxbsp/internal/tablefmt"
)

// WriteReport renders the human-facing observability report: the bank
// occupancy heatmap, the deterministic metric series as OpenMetrics text,
// and a per-run cycle summary footer. Everything here derives from
// Snapshot(false)-class data, so the report is byte-identical for any
// worker count and unaffected by cache state or transient faults.
func (o *Observer) WriteReport(w io.Writer) error {
	labels, rows := o.BankProfile()
	hm := tablefmt.NewHeatmap("bank occupancy, all distinct simulations",
		fmt.Sprintf("relative bank position (%d buckets)", posBuckets))
	for i, l := range labels {
		hm.AddRow(l, rows[i])
	}
	hm.Render(w)

	fmt.Fprintln(w)
	if err := metrics.WriteOpenMetrics(w, o.Snapshot(false)); err != nil {
		return err
	}

	fmt.Fprintln(w)
	writeSummaryLine(w, "sim cycles/run", o.CycleSummary())
	return nil
}

// writeSummaryLine renders one stats.Summary as a single footer line,
// using the exporters' float formatting so equal summaries are equal
// bytes.
func writeSummaryLine(w io.Writer, label string, s stats.Summary) {
	f := metrics.FormatValue
	fmt.Fprintf(w, "%s: n=%d min=%s p50=%s p90=%s p99=%s max=%s mean=%s\n",
		label, s.N, f(s.Min), f(s.P50), f(s.P90), f(s.P99), f(s.Max), f(s.Mean))
}

// WritePointLatency renders the volatile point wall-time summary (for
// -timing style human reporting; not deterministic).
func (o *Observer) WritePointLatency(w io.Writer) {
	writeSummaryLine(w, "  point seconds", o.PointLatencySummary())
}

// ExportFile writes the deterministic snapshot to w in the format implied
// by the destination's file name: JSON for a .json extension, OpenMetrics
// text otherwise.
func (o *Observer) ExportFile(w io.Writer, name string) error {
	if strings.EqualFold(filepath.Ext(name), ".json") {
		return metrics.WriteJSON(w, o.Snapshot(false))
	}
	return metrics.WriteOpenMetrics(w, o.Snapshot(false))
}
