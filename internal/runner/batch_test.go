package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dxbsp/internal/core"
	"dxbsp/internal/experiments"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
)

func batcherTestPattern(n int) core.Pattern {
	rg := rng.New(42)
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = rg.Uint64n(1 << 30)
	}
	return core.NewPattern(addrs, 8)
}

func batcherTestConfig(x int, d float64) sim.Config {
	return sim.Config{Machine: core.Machine{Name: "bt", Procs: 8, Banks: 8 * x, D: d, G: 1, L: 2}}
}

// TestBatcherByteIdentical drives concurrent lanes through a Batcher —
// more lanes than K, so full flushes and timer flushes both occur — and
// pins every result to the scalar engine's.
func TestBatcherByteIdentical(t *testing.T) {
	pt := batcherTestPattern(4096)
	b := NewBatcher(4)
	var cfgs []sim.Config
	for _, x := range []int{1, 2, 4, 8, 16} {
		for _, d := range []float64{2, 6, 14} {
			cfgs = append(cfgs, batcherTestConfig(x, d))
		}
	}
	got := make([]sim.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg sim.Config) {
			defer wg.Done()
			got[i], errs[i] = b.RunSim(context.Background(), cfg, pt)
		}(i, cfg)
	}
	wg.Wait()
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		want, err := sim.Run(cfg, pt)
		if err != nil {
			t.Fatalf("scalar %d: %v", i, err)
		}
		if got[i] != want {
			t.Errorf("lane %d: batched %+v != scalar %+v", i, got[i], want)
		}
	}
}

// TestBatcherPassthrough pins that ineligible work never batches: K<=1,
// lockstep-ineligible configs, and dead contexts all forward straight to
// Next.
func TestBatcherPassthrough(t *testing.T) {
	pt := batcherTestPattern(64)
	var forwarded atomic.Int32
	next := experiments.SimRunnerFunc(func(ctx context.Context, cfg sim.Config, pt core.Pattern) (sim.Result, error) {
		forwarded.Add(1)
		return sim.RunContext(ctx, cfg, pt)
	})

	b := &Batcher{K: 1, Next: next}
	if _, err := b.RunSim(context.Background(), batcherTestConfig(2, 4), pt); err != nil {
		t.Fatal(err)
	}

	b = &Batcher{K: 4, Next: next}
	gpu := batcherTestConfig(2, 4)
	gpu.Bank = sim.BankConfig{Discipline: sim.GPUShared}
	if _, err := b.RunSim(context.Background(), gpu, pt); err != nil {
		t.Fatal(err)
	}

	// A dead context forwards rather than parking in a group (the run
	// itself is small enough to finish between cancellation polls, so the
	// call is not required to error — only to bypass batching).
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.RunSim(dead, batcherTestConfig(2, 4), pt); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}

	if n := forwarded.Load(); n != 3 {
		t.Fatalf("forwarded %d calls, want 3", n)
	}
	if b.groups != nil && len(b.groups) != 0 {
		t.Fatalf("passthrough calls left %d groups behind", len(b.groups))
	}
}

// TestBatcherLaneFaultIsolation is the lane-isolation drill: lane A
// joins a group and then its context is cancelled before the batch
// runs, so the shared pass (executed under A's context — A is the first
// lane) fails for everyone. A must surface its cancellation; sibling
// lane B must still return a result byte-identical to the scalar
// engine, via its per-lane fallback.
func TestBatcherLaneFaultIsolation(t *testing.T) {
	pt := batcherTestPattern(16384)
	cfgA := batcherTestConfig(2, 6)
	cfgB := batcherTestConfig(4, 10)

	b := NewBatcher(2)
	b.Window = time.Hour // only a full group flushes; no timer races
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()

	var wg sync.WaitGroup
	var errA error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errA = b.RunSim(ctxA, cfgA, pt)
	}()

	// Wait until A has parked in the group, then kill its context: the
	// batch B triggers will run under a dead leader context and fail.
	for {
		b.mu.Lock()
		parked := false
		for _, g := range b.groups {
			parked = len(g.lanes) > 0
		}
		b.mu.Unlock()
		if parked {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	cancelA()

	resB, errB := b.RunSim(context.Background(), cfgB, pt)
	wg.Wait()

	if errA == nil || !errors.Is(errA, context.Canceled) {
		t.Errorf("lane A: want context.Canceled, got %v", errA)
	}
	if errB != nil {
		t.Fatalf("lane B: %v", errB)
	}
	want, err := sim.Run(cfgB, pt)
	if err != nil {
		t.Fatal(err)
	}
	if resB != want {
		t.Errorf("lane B perturbed by sibling fault: %+v != %+v", resB, want)
	}
}

// TestBatcherEfficacyCounters pins the batch observability contract:
// lanes reported through Observer.ObserveBatchLane export SimKey-deduped
// fast/fallback counters with per-reason labels, re-submissions do not
// double-count, and an observer that never saw batching exports no batch
// series at all — so metrics goldens without -batch stay byte-identical.
func TestBatcherEfficacyCounters(t *testing.T) {
	pt := batcherTestPattern(256)
	o := NewObserver()
	b := NewBatcher(2)
	b.Window = time.Millisecond
	b.Observe = o.ObserveBatchLane

	fast1 := batcherTestConfig(2, 4)
	fast2 := batcherTestConfig(2, 4)
	fast2.Window = 4 // windowed lanes are fast-path now
	gpu := batcherTestConfig(2, 4)
	gpu.Bank = sim.BankConfig{Discipline: sim.GPUShared}
	grouped := batcherTestConfig(2, 4)
	grouped.Bank = sim.BankConfig{Discipline: sim.DRAM, Groups: 2}

	run := func() {
		var wg sync.WaitGroup
		for _, cfg := range []sim.Config{fast1, fast2, gpu, grouped} {
			wg.Add(1)
			go func(cfg sim.Config) {
				defer wg.Done()
				if _, err := b.RunSim(context.Background(), cfg, pt); err != nil {
					t.Error(err)
				}
			}(cfg)
		}
		wg.Wait()
	}
	run()
	run() // resubmission: SimKey dedup must keep every counter unchanged

	out := omExport(t, o)
	for _, want := range []string{
		"dxbsp_batch_fast_lanes_total 2",
		`dxbsp_batch_fallback_lanes_total{reason="gpu-shared"} 1`,
		`dxbsp_batch_fallback_lanes_total{reason="dram-groups"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(omExport(t, NewObserver()), "dxbsp_batch") {
		t.Error("observer without batching exported batch series")
	}
}

// TestBatcherTimerFlush pins that a lone lane — no siblings to fill the
// group — completes via the window timer rather than hanging.
func TestBatcherTimerFlush(t *testing.T) {
	pt := batcherTestPattern(512)
	b := NewBatcher(64)
	b.Window = time.Millisecond
	cfg := batcherTestConfig(2, 4)
	done := make(chan struct{})
	var res sim.Result
	var err error
	go func() {
		res, err = b.RunSim(context.Background(), cfg, pt)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("lone lane never flushed")
	}
	if err != nil {
		t.Fatal(err)
	}
	want, _ := sim.Run(cfg, pt)
	if res != want {
		t.Errorf("timer-flushed lane: %+v != %+v", res, want)
	}
}
