package algos

import (
	"fmt"

	"dxbsp/internal/vector"
)

// This file implements list ranking, the second future-work algorithm the
// paper names (Reid-Miller's Cray C-90 study [RM94]): given a linked list
// as a successor array, compute each node's distance to the tail.
//
// Wyllie's pointer jumping runs lg n rounds of rank[i] += rank[next[i]];
// next[i] = next[next[i]]. Its contention structure is the interesting
// part: in early rounds every gather is a permutation (κ = 1), but as
// pointers collapse onto the tail the gathers concentrate — by the last
// round, half the nodes read the tail node, κ = Θ(n). The (d,x)-BSP
// charges those late rounds accordingly; a model without d misses them.

// ListRankResult reports a ranking run.
type ListRankResult struct {
	// Ranks[i] is the number of links from node i to the tail.
	Ranks []int64
	// Rounds is the number of pointer-jumping rounds.
	Rounds int
	// RoundContention[r] is the running maximum gather contention after
	// round r — it grows geometrically as pointers pile onto the tail.
	RoundContention []int
}

// ListRankWyllie ranks the list given by next (next[i] = successor of i;
// the tail points to itself). It panics if next is not a valid list
// structure.
func ListRankWyllie(vm *vector.Machine, next []int64) ListRankResult {
	n := len(next)
	if n == 0 {
		return ListRankResult{}
	}
	validateList(next)

	nxt := vm.AllocInit(next)
	rank := vm.Alloc(n)
	for i := range rank.Data {
		if next[i] == int64(i) {
			rank.Data[i] = 0
		} else {
			rank.Data[i] = 1
		}
	}
	vm.ChargeElementwise(n, 2)

	res := ListRankResult{}
	nr := vm.Alloc(n)
	nn := vm.Alloc(n)
	for {
		// Converged at the pointer-jumping fixpoint: every pointer's
		// target is itself a terminal (next[next[i]] == next[i]). On the
		// machine this is a gather + compare + reduce; the gather result
		// is reused below, so charge the compare/reduce pass here.
		fixed := true
		for _, v := range nxt.Data {
			if nxt.Data[v] != v {
				fixed = false
				break
			}
		}
		vm.ChargeElementwise(n, 2)
		if fixed {
			break
		}
		res.Rounds++

		vm.Gather(nr, rank, nxt) // rank[next[i]]
		vm.Gather(nn, nxt, nxt)  // next[next[i]]
		res.RoundContention = append(res.RoundContention, vm.MaxLocContention())

		vm.Map2(rank, rank, nr, func(a, b int64) int64 { return a + b }, 1)
		vm.Map1(nxt, nn, func(x int64) int64 { return x }, 0)
	}
	res.Ranks = append([]int64(nil), rank.Data...)
	return res
}

// SerialListRank is the reference ranking.
func SerialListRank(next []int64) []int64 {
	n := len(next)
	validateList(next)
	ranks := make([]int64, n)
	// Find the tail, then walk from each node (memoized via reverse
	// topological order: compute by following with memo).
	memo := make([]int64, n)
	for i := range memo {
		memo[i] = -1
	}
	var rankOf func(i int64) int64
	rankOf = func(i int64) int64 {
		if next[i] == i {
			return 0
		}
		if memo[i] >= 0 {
			return memo[i]
		}
		// Iterative walk to avoid deep recursion on long lists.
		var path []int64
		j := i
		for next[j] != j && memo[j] < 0 {
			path = append(path, j)
			j = next[j]
		}
		base := int64(0)
		if memo[j] >= 0 {
			base = memo[j]
		}
		for k := len(path) - 1; k >= 0; k-- {
			base++
			memo[path[k]] = base
		}
		return memo[i]
	}
	for i := range ranks {
		ranks[i] = rankOf(int64(i))
	}
	return ranks
}

// MakeList builds the successor array of a single list over nodes 0..n-1
// visiting them in the order given by perm (perm[k] is the k-th node in
// list order; the last one is the tail, pointing to itself).
func MakeList(perm []int64) []int64 {
	n := len(perm)
	if n == 0 {
		return nil
	}
	if !IsPermutation(perm) {
		panic("algos: MakeList requires a permutation")
	}
	next := make([]int64, n)
	for k := 0; k+1 < n; k++ {
		next[perm[k]] = perm[k+1]
	}
	next[perm[n-1]] = perm[n-1]
	return next
}

func validateList(next []int64) {
	n := len(next)
	tails := 0
	indeg := make([]int, n)
	for i, v := range next {
		if v < 0 || v >= int64(n) {
			panic(fmt.Sprintf("algos: list: next[%d]=%d out of range", i, v))
		}
		if v == int64(i) {
			tails++
		} else {
			indeg[v]++
		}
	}
	if tails == 0 {
		panic("algos: list has no tail (self-loop)")
	}
	for i, d := range indeg {
		if d > 1 {
			panic(fmt.Sprintf("algos: node %d has in-degree %d; not a list", i, d))
		}
	}
}
