package algos

import (
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

// This file implements the connected-components experiment (Figure 1 /
// F13): a data-parallel random-mate algorithm in the style of Greiner's
// hybrid [Gre94], built from hooking, shortcutting and contraction phases.
// Each phase's gathers and scatters carry real contention — hooking
// concentrates on popular roots, shortcutting on the parents of large
// trees — which is exactly the contention the paper measures and the
// (d,x)-BSP accounts for.

// Graph is an undirected graph as an edge list.
type Graph struct {
	N int // vertices 0..N-1
	U []int64
	V []int64
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.U) }

// Validate checks the edge list.
func (g *Graph) Validate() error {
	if g.N <= 0 {
		return fmt.Errorf("algos: graph with %d vertices", g.N)
	}
	if len(g.U) != len(g.V) {
		return fmt.Errorf("algos: edge list lengths differ: %d vs %d", len(g.U), len(g.V))
	}
	for i := range g.U {
		if g.U[i] < 0 || g.U[i] >= int64(g.N) || g.V[i] < 0 || g.V[i] >= int64(g.N) {
			return fmt.Errorf("algos: edge %d (%d,%d) out of range", i, g.U[i], g.V[i])
		}
	}
	return nil
}

// RandomGraph returns a graph with n vertices and m uniformly random
// edges (self-loops allowed; they are harmless).
func RandomGraph(n, m int, g *rng.Xoshiro256) *Graph {
	gr := &Graph{N: n, U: make([]int64, m), V: make([]int64, m)}
	for i := 0; i < m; i++ {
		gr.U[i] = int64(g.Intn(n))
		gr.V[i] = int64(g.Intn(n))
	}
	return gr
}

// StarGraph returns the n-vertex star centered at 0 — the maximum-
// contention input: every hook and every shortcut converges on the hub.
func StarGraph(n int) *Graph {
	gr := &Graph{N: n, U: make([]int64, n-1), V: make([]int64, n-1)}
	for i := 1; i < n; i++ {
		gr.U[i-1] = 0
		gr.V[i-1] = int64(i)
	}
	return gr
}

// PathGraph returns the n-vertex path — the minimum-contention input.
func PathGraph(n int) *Graph {
	gr := &Graph{N: n, U: make([]int64, n-1), V: make([]int64, n-1)}
	for i := 0; i < n-1; i++ {
		gr.U[i] = int64(i)
		gr.V[i] = int64(i + 1)
	}
	return gr
}

// PhaseStat accumulates per-phase accounting for a components run.
type PhaseStat struct {
	Cycles        float64
	Supersteps    int
	MaxContention int
}

// CCResult reports a connected-components run.
type CCResult struct {
	// Labels[v] is the component representative of vertex v.
	Labels []int64
	// Rounds is the number of hook-and-contract rounds executed.
	Rounds int
	// Phases maps phase name ("hook", "shortcut", "contract") to its
	// accumulated accounting.
	Phases map[string]*PhaseStat
}

// ConnectedComponents labels the components of gr on vm using random-mate
// hooking: every round each root flips a coin; edges whose tail root came
// up "tail" and head root "head" hook the tail root under the head root,
// then one pointer-jumping pass re-flattens the forest and edges inside a
// component are contracted away. Expected O(lg n) rounds.
func ConnectedComponents(vm *vector.Machine, gr *Graph, g *rng.Xoshiro256) CCResult {
	if err := gr.Validate(); err != nil {
		panic(err)
	}
	n := gr.N
	res := CCResult{
		Phases: map[string]*PhaseStat{
			"hook":     {},
			"shortcut": {},
			"contract": {},
		},
	}

	// Phase interposer: tag every irregular superstep with the phase.
	phase := ""
	var prevTrace vector.TraceFunc
	prevTrace = vm.SetTrace(func(op string, prof core.Profile, cycles float64) {
		if st, ok := res.Phases[phase]; ok {
			st.Supersteps++
			if prof.MaxLoc > st.MaxContention {
				st.MaxContention = prof.MaxLoc
			}
		}
		if prevTrace != nil {
			prevTrace(op, prof, cycles)
		}
	})
	defer vm.SetTrace(prevTrace)
	markCycles := vm.Cycles()
	account := func(name string) {
		res.Phases[name].Cycles += vm.Cycles() - markCycles
		markCycles = vm.Cycles()
	}

	parent := vm.Alloc(n)
	vm.Iota(parent)
	coin := vm.Alloc(n)

	// Live edge endpoints (shrinking).
	eu := vm.AllocInit(gr.U)
	ev := vm.AllocInit(gr.V)
	live := gr.M()

	for live > 0 {
		res.Rounds++

		euV := &vector.Vec{Data: eu.Data[:live], Base: eu.Base}
		evV := &vector.Vec{Data: ev.Data[:live], Base: ev.Base}

		// --- contract: find root labels of endpoints, drop internal edges.
		phase = "contract"
		ru := vm.Alloc(live)
		rv := vm.Alloc(live)
		vm.Gather(ru, parent, euV)
		vm.Gather(rv, parent, evV)
		keep := vm.Alloc(live)
		vm.Map2(keep, ru, rv, func(a, b int64) int64 {
			if a != b {
				return 1
			}
			return 0
		}, 1)
		nu := vm.Alloc(live)
		nv := vm.Alloc(live)
		ku := vm.Pack(nu, ru, keep)
		_ = vm.Pack(nv, rv, keep)
		copy(eu.Data[:ku], nu.Data[:ku])
		copy(ev.Data[:ku], nv.Data[:ku])
		live = ku
		account("contract")
		if live == 0 {
			break
		}

		euV = &vector.Vec{Data: eu.Data[:live], Base: eu.Base}
		evV = &vector.Vec{Data: ev.Data[:live], Base: ev.Base}

		// --- hook: random mate. Endpoints are roots (parent is flat).
		phase = "hook"
		for i := 0; i < n; i++ {
			coin.Data[i] = int64(g.Uint64() & 1)
		}
		vm.ChargeElementwise(n, 2)
		cu := vm.Alloc(live)
		cv := vm.Alloc(live)
		vm.Gather(cu, coin, euV)
		vm.Gather(cv, coin, evV)

		// Tails (coin 0) hook under heads (coin 1), in both directions.
		// Build the hook scatter: src = head root, idx = tail root.
		hookIdx := make([]int64, 0, live)
		hookSrc := make([]int64, 0, live)
		for i := 0; i < live; i++ {
			u, v := eu.Data[i], ev.Data[i]
			switch {
			case cu.Data[i] == 0 && cv.Data[i] == 1:
				hookIdx = append(hookIdx, u)
				hookSrc = append(hookSrc, v)
			case cu.Data[i] == 1 && cv.Data[i] == 0:
				hookIdx = append(hookIdx, v)
				hookSrc = append(hookSrc, u)
			}
		}
		vm.ChargeElementwise(live, 3)
		if len(hookIdx) > 0 {
			hi := vm.AllocInit(hookIdx)
			hs := vm.AllocInit(hookSrc)
			vm.Scatter(parent, hs, hi) // colliding hooks: any winner is valid
		}
		account("hook")

		// --- shortcut: one jump pass re-flattens (tails point at heads,
		// heads are roots).
		phase = "shortcut"
		pp := vm.Alloc(n)
		vm.Gather(pp, parent, parent) // P[P[v]]
		vm.Map1(parent, pp, func(x int64) int64 { return x }, 0)
		account("shortcut")
	}

	res.Labels = append([]int64(nil), parent.Data...)
	return res
}

// SerialComponents is the reference labeling via union-find; labels are
// the minimum vertex of each component.
func SerialComponents(gr *Graph) []int64 {
	parent := make([]int, gr.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := range gr.U {
		a, b := find(int(gr.U[i])), find(int(gr.V[i]))
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	labels := make([]int64, gr.N)
	minLabel := make(map[int]int)
	for v := 0; v < gr.N; v++ {
		r := find(v)
		if cur, ok := minLabel[r]; !ok || v < cur {
			minLabel[r] = v
		}
	}
	for v := 0; v < gr.N; v++ {
		labels[v] = int64(minLabel[find(v)])
	}
	return labels
}

// SameComponents reports whether two labelings induce the same partition.
func SameComponents(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int64]int64)
	rev := make(map[int64]int64)
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := rev[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}
