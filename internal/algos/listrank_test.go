package algos

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

func randomList(n int, seed uint64) []int64 {
	perm := make([]int64, n)
	for i, v := range rng.New(seed).Perm(n) {
		perm[i] = int64(v)
	}
	return MakeList(perm)
}

func TestMakeListStructure(t *testing.T) {
	next := MakeList([]int64{2, 0, 1})
	// List order: 2 -> 0 -> 1(tail).
	if next[2] != 0 || next[0] != 1 || next[1] != 1 {
		t.Errorf("next = %v", next)
	}
	if MakeList(nil) != nil {
		t.Error("empty MakeList should be nil")
	}
}

func TestSerialListRank(t *testing.T) {
	next := MakeList([]int64{3, 1, 0, 2}) // 3 -> 1 -> 0 -> 2(tail)
	ranks := SerialListRank(next)
	want := []int64{1, 2, 0, 3}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("ranks = %v, want %v", ranks, want)
			break
		}
	}
}

func TestListRankWyllieMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 100, 4096} {
		next := randomList(n, uint64(n))
		got := ListRankWyllie(newVM(), next)
		want := SerialListRank(next)
		for i := range want {
			if got.Ranks[i] != want[i] {
				t.Fatalf("n=%d: Ranks[%d] = %d, want %d", n, i, got.Ranks[i], want[i])
			}
		}
	}
}

func TestListRankRoundsLogarithmic(t *testing.T) {
	n := 1 << 12
	res := ListRankWyllie(newVM(), randomList(n, 7))
	// Wyllie halves the longest chain each round: ceil(lg n) + 1 rounds.
	if res.Rounds > 15 {
		t.Errorf("rounds = %d for n=4096, want ~12", res.Rounds)
	}
	if res.Rounds < 10 {
		t.Errorf("rounds = %d suspiciously low", res.Rounds)
	}
}

func TestListRankContentionPilesOntoTail(t *testing.T) {
	// The running max contention must grow geometrically: by the last
	// round about half the nodes read the tail.
	n := 1 << 12
	res := ListRankWyllie(newVM(), randomList(n, 9))
	last := res.RoundContention[len(res.RoundContention)-1]
	if last < n/4 {
		t.Errorf("final contention %d, want Θ(n)", last)
	}
	first := res.RoundContention[0]
	if first > 4 {
		t.Errorf("first-round contention %d, want ~1 (list is a permutation)", first)
	}
	for r := 1; r < len(res.RoundContention); r++ {
		if res.RoundContention[r] < res.RoundContention[r-1] {
			t.Errorf("running max contention decreased at round %d", r)
		}
	}
}

func TestListRankEmptyAndSingle(t *testing.T) {
	res := ListRankWyllie(newVM(), nil)
	if len(res.Ranks) != 0 {
		t.Error("empty list nonempty result")
	}
	res = ListRankWyllie(newVM(), []int64{0})
	if len(res.Ranks) != 1 || res.Ranks[0] != 0 {
		t.Errorf("single node: %+v", res)
	}
}

func TestListValidatePanics(t *testing.T) {
	for _, next := range [][]int64{
		{1, 0},    // two-cycle, no tail
		{5},       // out of range
		{2, 2, 2}, // in-degree 2 at node 2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("list %v accepted", next)
				}
			}()
			ListRankWyllie(newVM(), next)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("MakeList of non-permutation accepted")
		}
	}()
	MakeList([]int64{0, 0})
}

func TestListRankProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		next := randomList(n, seed)
		got := ListRankWyllie(newVM(), next)
		want := SerialListRank(next)
		for i := range want {
			if got.Ranks[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
