package algos

import (
	"sort"
	"testing"

	"dxbsp/internal/rng"
)

func sortedDict(m int, g *rng.Xoshiro256) []int64 {
	d := make([]int64, m)
	for i := range d {
		d[i] = int64(g.Intn(1 << 20))
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d
}

func TestSerialPredecessor(t *testing.T) {
	dict := []int64{10, 20, 20, 30}
	qs := []int64{5, 10, 15, 20, 25, 30, 99}
	want := []int64{-1, 0, 0, 2, 2, 3, 3}
	got := SerialPredecessor(dict, qs)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %d: got %d, want %d", qs[i], got[i], want[i])
		}
	}
}

func TestTreeSearchMatchesSerial(t *testing.T) {
	g := rng.New(1)
	dict := sortedDict(1000, g)
	queries := make([]int64, 500)
	for i := range queries {
		queries[i] = int64(g.Intn(1 << 20))
	}
	want := SerialPredecessor(dict, queries)
	for _, r := range []int{1, 8, 64} {
		vm := newVM()
		tree := BuildSearchTree(vm, dict, r)
		res := tree.Search(queries, rng.New(2))
		for i := range want {
			if res.Ranks[i] != want[i] {
				t.Fatalf("r=%d query[%d]=%d: got %d, want %d", r, i, queries[i], res.Ranks[i], want[i])
			}
		}
	}
}

func TestTreeSearchDuplicateKeys(t *testing.T) {
	dict := []int64{5, 5, 5, 5, 5, 5, 5}
	vm := newVM()
	tree := BuildSearchTree(vm, dict, 4)
	res := tree.Search([]int64{4, 5, 6}, rng.New(3))
	want := []int64{-1, 6, 6}
	for i := range want {
		if res.Ranks[i] != want[i] {
			t.Errorf("dup dict query %d: got %d, want %d", i, res.Ranks[i], want[i])
		}
	}
}

func TestTreeSearchEmptyQueries(t *testing.T) {
	vm := newVM()
	tree := BuildSearchTree(vm, []int64{1, 2, 3}, 2)
	res := tree.Search(nil, rng.New(1))
	if len(res.Ranks) != 0 {
		t.Error("non-empty result for no queries")
	}
}

func TestReplicationCutsContention(t *testing.T) {
	g := rng.New(4)
	dict := sortedDict(1023, g)
	n := 8192
	queries := make([]int64, n)
	for i := range queries {
		queries[i] = int64(g.Intn(1 << 20))
	}
	contention := func(r int) int {
		vm := newVM()
		tree := BuildSearchTree(vm, dict, r)
		return tree.Search(queries, rng.New(5)).MaxContention
	}
	c1 := contention(1)
	c64 := contention(64)
	if c1 != n {
		t.Errorf("unreplicated root contention = %d, want %d", c1, n)
	}
	if c64 > c1/16 {
		t.Errorf("replication 64 should cut contention: %d vs %d", c64, c1)
	}
}

func TestReplicationCutsCycles(t *testing.T) {
	// F10's headline: replicated QRQW search is much cheaper than the
	// naive descent once n is large.
	g := rng.New(6)
	dict := sortedDict(1023, g)
	n := 1 << 14
	queries := make([]int64, n)
	for i := range queries {
		queries[i] = int64(g.Intn(1 << 20))
	}
	cycles := func(r int) float64 {
		vm := newVM()
		tree := BuildSearchTree(vm, dict, r)
		vm.Reset()
		tree.Search(queries, rng.New(7))
		return vm.Cycles()
	}
	naive := cycles(1)
	repl := cycles(256)
	// Replication removes the contention term; what remains is bandwidth,
	// so the gain is bounded but must be substantial.
	if repl >= naive/2.5 {
		t.Errorf("replicated %v cycles, naive %v: want >= 2.5x improvement", repl, naive)
	}
}

func TestSearchEREWMatchesSerial(t *testing.T) {
	g := rng.New(8)
	dict := sortedDict(700, g)
	queries := make([]int64, 300)
	for i := range queries {
		queries[i] = int64(g.Intn(1 << 20))
	}
	want := SerialPredecessor(dict, queries)
	vm := newVM()
	res := SearchEREW(vm, dict, queries, 1<<20)
	for i := range want {
		if res.Ranks[i] != want[i] {
			t.Fatalf("query[%d]=%d: got %d, want %d", i, queries[i], res.Ranks[i], want[i])
		}
	}
}

func TestSearchEREWEdge(t *testing.T) {
	vm := newVM()
	res := SearchEREW(vm, []int64{5}, nil, 10)
	if len(res.Ranks) != 0 {
		t.Error("non-empty result for no queries")
	}
	// Query below all dict keys.
	res = SearchEREW(newVM(), []int64{10, 20}, []int64{1}, 30)
	if res.Ranks[0] != -1 {
		t.Errorf("below-all query: %d, want -1", res.Ranks[0])
	}
}

func TestQRQWSearchBeatsEREW(t *testing.T) {
	// The replicated tree search beats the sort-based EREW lookup when
	// the dictionary is large relative to the query batch: the EREW
	// algorithm must sort all m+n keys, the QRQW one only touches
	// n*lg(m). (With m << n the sort wins — that crossover is the
	// content of experiment F10.)
	g := rng.New(9)
	dict := sortedDict((1<<17)-1, g)
	n := 1 << 13
	queries := make([]int64, n)
	for i := range queries {
		queries[i] = int64(g.Intn(1 << 20))
	}
	vmQ := newVM()
	tree := BuildSearchTree(vmQ, dict, 256)
	vmQ.Reset()
	tree.Search(queries, rng.New(10))

	vmE := newVM()
	SearchEREW(vmE, dict, queries, 1<<20)

	if vmQ.Cycles() >= vmE.Cycles() {
		t.Errorf("QRQW search %v cycles should beat EREW %v", vmQ.Cycles(), vmE.Cycles())
	}
}

func TestBuildSearchTreePanics(t *testing.T) {
	for _, f := range []func(){
		func() { BuildSearchTree(newVM(), nil, 1) },
		func() { BuildSearchTree(newVM(), []int64{1}, 0) },
		func() { BuildSearchTree(newVM(), []int64{2, 1}, 1) },
		func() { SearchEREW(newVM(), []int64{2, 1}, []int64{1}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
