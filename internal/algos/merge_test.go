package algos

import (
	"sort"
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

func sortedRandom(n int, maxKey int64, seed uint64) []int64 {
	g := rng.New(seed)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(g.Uint64n(uint64(maxKey + 1)))
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs
}

func TestSerialMerge(t *testing.T) {
	got := SerialMerge([]int64{1, 3, 5}, []int64{2, 3, 4})
	want := []int64{1, 2, 3, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SerialMerge = %v, want %v", got, want)
		}
	}
}

func TestMergeQRQWMatchesSerial(t *testing.T) {
	a := sortedRandom(500, 1<<16, 1)
	b := sortedRandom(700, 1<<16, 2)
	want := SerialMerge(a, b)
	got := MergeQRQW(newVM(), a, b, 64, rng.New(3))
	for i := range want {
		if got.Merged[i] != want[i] {
			t.Fatalf("Merged[%d] = %d, want %d", i, got.Merged[i], want[i])
		}
	}
}

func TestMergeEREWMatchesSerial(t *testing.T) {
	a := sortedRandom(500, 1<<16, 4)
	b := sortedRandom(300, 1<<16, 5)
	want := SerialMerge(a, b)
	got := MergeEREW(newVM(), a, b, 1<<16)
	for i := range want {
		if got.Merged[i] != want[i] {
			t.Fatalf("Merged[%d] = %d, want %d", i, got.Merged[i], want[i])
		}
	}
}

func TestMergeEmptySides(t *testing.T) {
	a := []int64{1, 2}
	res := MergeQRQW(newVM(), a, nil, 8, rng.New(1))
	if len(res.Merged) != 2 || res.Merged[1] != 2 {
		t.Errorf("a-only merge = %v", res.Merged)
	}
	res = MergeQRQW(newVM(), nil, a, 8, rng.New(1))
	if len(res.Merged) != 2 || res.Merged[0] != 1 {
		t.Errorf("b-only merge = %v", res.Merged)
	}
	res = MergeQRQW(newVM(), nil, nil, 8, rng.New(1))
	if len(res.Merged) != 0 {
		t.Errorf("empty merge = %v", res.Merged)
	}
}

func TestMergeHeavyDuplicates(t *testing.T) {
	// All-equal inputs: the worst case for search-path contention.
	a := make([]int64, 512)
	b := make([]int64, 512)
	for i := range a {
		a[i], b[i] = 7, 7
	}
	want := SerialMerge(a, b)
	got := MergeQRQW(newVM(), a, b, 128, rng.New(9))
	for i := range want {
		if got.Merged[i] != want[i] {
			t.Fatalf("dup merge wrong at %d", i)
		}
	}
}

func TestMergeReplicationCutsContention(t *testing.T) {
	a := sortedRandom(4096, 1<<18, 6)
	b := sortedRandom(4096, 1<<18, 7)
	lo := MergeQRQW(newVM(), a, b, 1, rng.New(8))
	hi := MergeQRQW(newVM(), a, b, 256, rng.New(8))
	if hi.MaxContention >= lo.MaxContention/8 {
		t.Errorf("replication should cut contention: r=1 %d vs r=256 %d",
			lo.MaxContention, hi.MaxContention)
	}
}

func TestMergeQRQWCheaperThanSortForWideKeys(t *testing.T) {
	// The cross-ranking merge does lg(n) search levels regardless of key
	// width; the radix sort pays a pass per 11 key bits. With 60-bit keys
	// the sort needs 6 passes and the merge wins. (With narrow keys the
	// sort wins — that crossover is a real property, not a bug.)
	a := sortedRandom(1<<13, 1<<60, 10)
	b := sortedRandom(1<<13, 1<<60, 11)
	vmQ := newVM()
	MergeQRQW(vmQ, a, b, 256, rng.New(12))
	vmE := newVM()
	MergeEREW(vmE, a, b, 1<<60)
	if vmQ.Cycles() >= vmE.Cycles() {
		t.Errorf("cross-ranking merge %v should beat re-sorting %v on wide keys", vmQ.Cycles(), vmE.Cycles())
	}
}

func TestMergePanics(t *testing.T) {
	for _, f := range []func(){
		func() { MergeQRQW(newVM(), []int64{2, 1}, nil, 8, rng.New(1)) },
		func() { MergeQRQW(newVM(), []int64{-1, 2}, nil, 8, rng.New(1)) },
		func() { MergeEREW(newVM(), []int64{3, 1}, nil, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMergeProperty(t *testing.T) {
	f := func(seed uint64, naRaw, nbRaw uint8) bool {
		na, nb := int(naRaw)%100, int(nbRaw)%100
		a := sortedRandom(na, 1000, seed)
		b := sortedRandom(nb, 1000, seed^0xff)
		want := SerialMerge(a, b)
		got := MergeQRQW(newVM(), a, b, 16, rng.New(seed^0xabc))
		if len(got.Merged) != len(want) {
			return false
		}
		for i := range want {
			if got.Merged[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
