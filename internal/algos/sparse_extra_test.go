package algos

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

func TestDiagonalCSR(t *testing.T) {
	m := DiagonalCSR(5, []int{-1, 0, 1}, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Tridiagonal 5x5: 4 + 5 + 4 = 13 non-zeros.
	if m.NNZ() != 13 {
		t.Errorf("NNZ = %d, want 13", m.NNZ())
	}
	// y = A*ones: interior rows sum 3 diagonals = 6, ends = 4.
	x := []int64{1, 1, 1, 1, 1}
	y := SerialSpMV(m, x)
	want := []int64{4, 6, 6, 6, 4}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y = %v, want %v", y, want)
			break
		}
	}
}

func TestDiagonalCSRLowContention(t *testing.T) {
	m := DiagonalCSR(2048, []int{-1, 0, 1}, 1)
	vm := newVM()
	SpMV(vm, m, make([]int64, 2048))
	if vm.MaxLocContention() > 3 {
		t.Errorf("banded SpMV contention = %d, want <= 3", vm.MaxLocContention())
	}
}

func TestPowerLawCSRSkew(t *testing.T) {
	m := PowerLawCSR(4096, 1024, 4, 1.1, rng.New(1))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zipf s=1.1 over 1024 columns: the hot column should absorb a large
	// share of the 16384 entries.
	if f := m.MaxColumnFrequency(); f < 500 {
		t.Errorf("power-law max column frequency = %d, want skewed", f)
	}
	// s = 0 is uniform: no hot column.
	u := PowerLawCSR(4096, 1024, 4, 0, rng.New(2))
	if f := u.MaxColumnFrequency(); f > 100 {
		t.Errorf("uniform max column frequency = %d", f)
	}
}

func csrEqual(a, b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func TestTransposeMatchesSerial(t *testing.T) {
	a := RandomCSR(200, 100, 5, 40, rng.New(3))
	got := Transpose(newVM(), a)
	want := SerialTranspose(a)
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if !csrEqual(got, want) {
		t.Error("transpose differs from serial reference")
	}
}

func TestTransposeInvolution(t *testing.T) {
	a := RandomCSR(100, 150, 4, 10, rng.New(4))
	vm := newVM()
	att := Transpose(vm, Transpose(vm, a))
	// (A^T)^T holds the same entries row by row, but with each row's
	// entries re-sorted by column (transposition canonicalizes order), so
	// compare per-row multisets.
	if att.Rows != a.Rows || att.Cols != a.Cols || att.NNZ() != a.NNZ() {
		t.Fatalf("shape changed: %+v", att)
	}
	for r := 0; r < a.Rows; r++ {
		want := map[[2]int64]int{}
		got := map[[2]int64]int{}
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			want[[2]int64{a.ColIdx[i], a.Val[i]}]++
		}
		for i := att.RowPtr[r]; i < att.RowPtr[r+1]; i++ {
			got[[2]int64{att.ColIdx[i], att.Val[i]}]++
		}
		if len(want) != len(got) {
			t.Fatalf("row %d entry sets differ", r)
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("row %d entry %v count %d != %d", r, k, got[k], v)
			}
		}
	}
}

func TestTransposeEmptyAndSpMVAgree(t *testing.T) {
	empty := &CSR{Rows: 3, Cols: 2, RowPtr: []int64{0, 0, 0, 0}}
	got := Transpose(newVM(), empty)
	if got.Rows != 2 || got.NNZ() != 0 {
		t.Errorf("empty transpose = %+v", got)
	}

	// y^T = x^T A  <=>  A^T x for symmetric check via values.
	a := RandomCSR(50, 60, 3, 5, rng.New(5))
	at := SerialTranspose(a)
	g := rng.New(6)
	x := make([]int64, a.Cols)
	for i := range x {
		x[i] = int64(g.Intn(10))
	}
	z := make([]int64, a.Rows)
	for i := range z {
		z[i] = int64(g.Intn(10))
	}
	// z' A x computed both ways must agree: (z'A)x = z'(Ax).
	ax := SerialSpMV(a, x)
	atz := SerialSpMV(at, z)
	var lhs, rhs int64
	for i := range z {
		lhs += z[i] * ax[i]
	}
	for j := range x {
		rhs += atz[j] * x[j]
	}
	if lhs != rhs {
		t.Errorf("bilinear check failed: %d != %d", lhs, rhs)
	}
}

func TestTransposeProperty(t *testing.T) {
	f := func(seed uint64, rRaw, cRaw uint8) bool {
		rows := int(rRaw)%50 + 1
		cols := int(cRaw)%50 + 1
		a := RandomCSR(rows, cols, 3, rows/2, rng.New(seed))
		return csrEqual(Transpose(newVM(), a), SerialTranspose(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSpMM(t *testing.T) {
	a := RandomCSR(100, 80, 4, 10, rng.New(7))
	g := rng.New(8)
	x := make([][]int64, 3)
	for j := range x {
		x[j] = make([]int64, a.Cols)
		for c := range x[j] {
			x[j][c] = int64(g.Intn(10))
		}
	}
	y := SpMM(newVM(), a, x)
	for j := range x {
		want := SerialSpMV(a, x[j])
		for r := range want {
			if y[j][r] != want[r] {
				t.Fatalf("SpMM[%d][%d] = %d, want %d", j, r, y[j][r], want[r])
			}
		}
	}
}

func TestDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DiagonalCSR(0, []int{0}, 1)
}
