package algos

import (
	"fmt"
	"sort"

	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

// This file implements the paper's binary-search experiment (F10): n keys
// are looked up in a balanced binary search tree of size m. The QRQW
// algorithm [GMR94a] replicates nodes near the root and picks a random
// replica at each level, trading a little memory and randomness for
// bounded contention; the EREW baseline sorts the queries against the
// dictionary. A naive unreplicated descent — whose root sees all n
// queries, contention κ = n — is included to show what the replication
// buys.

// SearchTree is a perfect binary search tree over a sorted dictionary,
// stored level by level with per-level replication.
type SearchTree struct {
	vm     *vector.Machine
	levels []*vector.Vec // levels[l]: replicas*width keys
	repls  []int         // replicas per level
	widths []int         // nodes per level (2^l)
	height int
	m      int // real dictionary size (before padding)
}

// BuildSearchTree builds a perfect BST over dict (which must be sorted
// ascending) with replication factor r: level l holds max(1, r/2^l) copies
// of its nodes, so that with n simultaneous random descents the expected
// contention per node copy is about n/r at every replicated level. r = 1
// gives the naive unreplicated tree. The dictionary is padded to 2^h - 1
// entries with +inf sentinels.
func BuildSearchTree(vm *vector.Machine, dict []int64, r int) *SearchTree {
	if len(dict) == 0 {
		panic("algos: BuildSearchTree on empty dictionary")
	}
	if r < 1 {
		panic(fmt.Sprintf("algos: BuildSearchTree replication %d < 1", r))
	}
	if !sort.SliceIsSorted(dict, func(i, j int) bool { return dict[i] < dict[j] }) {
		panic("algos: BuildSearchTree requires a sorted dictionary")
	}
	height := 1
	for (1<<height)-1 < len(dict) {
		height++
	}
	size := (1 << height) - 1
	const inf = int64(1) << 62
	padded := make([]int64, size)
	copy(padded, dict)
	for i := len(dict); i < size; i++ {
		padded[i] = inf
	}

	t := &SearchTree{vm: vm, height: height, m: len(dict)}
	for l := 0; l < height; l++ {
		width := 1 << l
		repl := 1
		if r > width {
			repl = r / width
		}
		lv := vm.Alloc(width * repl)
		for j := 0; j < width; j++ {
			// In-order rank of node (l, j) in a perfect tree of height h:
			// j*2^(h-l) + 2^(h-l-1) - 1.
			rank := j*(1<<(height-l)) + (1 << (height - l - 1)) - 1
			key := padded[rank]
			for c := 0; c < repl; c++ {
				lv.Data[c*width+j] = key
			}
		}
		t.levels = append(t.levels, lv)
		t.repls = append(t.repls, repl)
		t.widths = append(t.widths, width)
	}
	// Building the tree is a handful of bulk copies; charge one pass over
	// the replicated storage.
	total := 0
	for _, lv := range t.levels {
		total += lv.Len()
	}
	vm.ChargeElementwise(total, 1)
	return t
}

// SearchResult reports a batched tree-search run.
type SearchResult struct {
	// Ranks[i] is the number of dictionary keys <= queries[i], minus one:
	// the index of the predecessor in the sorted dictionary, or -1.
	Ranks []int64
	// MaxContention is the largest per-location contention of any level's
	// gather.
	MaxContention int
}

// Search looks up all queries simultaneously, level by level: at each
// level every outstanding query picks a uniformly random replica of its
// current node, gathers the node key, and descends. The per-level
// contention is ~n/(width*repl), which the (d,x)-BSP charges via the
// gather's profile.
func (t *SearchTree) Search(queries []int64, g *rng.Xoshiro256) SearchResult {
	vm := t.vm
	n := len(queries)
	res := SearchResult{Ranks: make([]int64, n)}
	if n == 0 {
		return res
	}
	q := vm.AllocInit(queries)
	node := make([]int64, n) // index-in-level of each query's current node
	lo := make([]int64, n)   // number of dictionary keys known <= query
	idx := vm.Alloc(n)
	keys := vm.Alloc(n)

	before := vm.MaxLocContention()
	for l := 0; l < t.height; l++ {
		width, repl := t.widths[l], t.repls[l]
		// Random replica choice per query, then gather node keys.
		for i := 0; i < n; i++ {
			c := 0
			if repl > 1 {
				c = g.Intn(repl)
			}
			idx.Data[i] = int64(c*width) + node[i]
		}
		vm.ChargeElementwise(n, 3)
		vm.Gather(keys, t.levels[l], idx)

		// Descend; update in-order rank bound.
		half := int64(1) << (t.height - l - 1)
		for i := 0; i < n; i++ {
			if q.Data[i] >= keys.Data[i] {
				lo[i] += half
				node[i] = node[i]*2 + 1
			} else {
				node[i] = node[i] * 2
			}
		}
		vm.ChargeElementwise(n, 3)
	}
	for i := 0; i < n; i++ {
		r := lo[i] - 1
		if r >= int64(t.m) {
			r = int64(t.m) - 1
		}
		res.Ranks[i] = r
	}
	vm.ChargeElementwise(n, 2)
	res.MaxContention = vm.MaxLocContention()
	if before > res.MaxContention {
		res.MaxContention = before
	}
	return res
}

// SearchEREW answers the same predecessor queries the EREW way: sort the
// queries together with the dictionary ([ZB91] radix sort on key values,
// dictionary entries ordered before equal queries), sweep once to
// propagate the latest dictionary rank, and scatter answers back to query
// order (a contention-free permutation).
func SearchEREW(vm *vector.Machine, dict, queries []int64, maxKey int64) SearchResult {
	n, m := len(queries), len(dict)
	res := SearchResult{Ranks: make([]int64, n)}
	if n == 0 {
		return res
	}
	if !sort.SliceIsSorted(dict, func(i, j int) bool { return dict[i] < dict[j] }) {
		panic("algos: SearchEREW requires a sorted dictionary")
	}
	// Combined keys: key*2 | isQuery. Dictionary first so that stability
	// puts a dictionary entry before the queries equal to it.
	comb := vm.Alloc(m + n)
	for i, k := range dict {
		comb.Data[i] = k * 2
	}
	for i, k := range queries {
		comb.Data[m+i] = k*2 + 1
	}
	vm.ChargeElementwise(m+n, 2)

	sorted := RadixSort(vm, comb, maxKey*2+1, 11)

	// inv[pos] = original combined index at sorted position pos.
	inv := make([]int64, m+n)
	for orig, pos := range sorted.Ranks {
		inv[pos] = int64(orig)
	}
	// Sweep: propagate the most recent dictionary rank. On the machine
	// this is a copy-scan (max-scan); charge accordingly.
	ansByQuery := vm.Alloc(n)
	carry := int64(-1)
	for pos := 0; pos < m+n; pos++ {
		orig := inv[pos]
		if orig < int64(m) {
			carry = orig
		} else {
			ansByQuery.Data[orig-int64(m)] = carry
		}
	}
	vm.ChargeElementwise(m+n, 4)
	copy(res.Ranks, ansByQuery.Data)
	res.MaxContention = vm.MaxLocContention()
	return res
}

// SerialPredecessor is the reference answer: for each query, the index of
// the largest dict key <= query, or -1. dict must be sorted.
func SerialPredecessor(dict, queries []int64) []int64 {
	out := make([]int64, len(queries))
	for i, q := range queries {
		lo, hi := 0, len(dict) // predecessor index+1 in [lo,hi]
		for lo < hi {
			mid := (lo + hi) / 2
			if dict[mid] <= q {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = int64(lo) - 1
	}
	return out
}
