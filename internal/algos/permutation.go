package algos

import (
	"fmt"

	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

// This file implements the paper's random-permutation experiment
// (Figure 11): the QRQW dart-throwing algorithm of [GMR94a] versus the
// EREW approach of sorting random keys with the [ZB91] radix sort.

// PermutationResult reports a permutation-generation run.
type PermutationResult struct {
	// Perm[i] is the destination of element i; a permutation of [0, n).
	Perm []int64
	// Rounds is the number of dart-throwing rounds (1 for the sort-based
	// algorithm).
	Rounds int
	// MaxContention is the largest per-location contention the algorithm
	// induced in any superstep.
	MaxContention int
}

// DartSlackFactor sizes the dart board: the destination array has
// DartSlackFactor*n slots, keeping the per-round success probability
// bounded below by a constant so the number of rounds is O(lg n) w.h.p.
const DartSlackFactor = 2

// RandomPermuteQRQW generates a uniformly distributed random permutation
// of [0, n) by dart throwing [GMR94a]: every active element writes its
// identity into a random slot of a (DartSlackFactor*n)-slot array;
// elements that read their own identity back from a previously free slot
// have claimed it and drop out; the rest retry in the next round. When all
// elements are placed, the claimed slots are packed into contiguous
// positions (a prefix sum over slot occupancy), producing the permutation.
// The algorithm runs in O(n/p + lg n) expected time on a QRQW PRAM: the
// per-round contention is the maximum number of darts on one slot,
// Θ(lg n / lg lg n) w.h.p. — modest, well-accounted contention in exchange
// for avoiding a full sort.
func RandomPermuteQRQW(vm *vector.Machine, n int, g *rng.Xoshiro256) PermutationResult {
	if n <= 0 {
		panic(fmt.Sprintf("algos: RandomPermuteQRQW n=%d", n))
	}
	m := DartSlackFactor * n
	slots := vm.Alloc(m) // claimed identity per slot, -1 if free
	vm.Fill(slots, -1)

	active := vm.Alloc(n) // identities of still-unplaced elements
	vm.Iota(active)
	nActive := n

	darts := vm.Alloc(n)
	prev := vm.Alloc(n)
	got := vm.Alloc(n)
	mask := vm.Alloc(n)
	nextActive := vm.Alloc(n)

	res := PermutationResult{Perm: make([]int64, n)}
	for nActive > 0 {
		res.Rounds++
		// Draw a random slot per active element. Random number generation
		// is elementwise work (the paper's timings exclude it; we charge a
		// nominal 4 ops/element — EXPERIMENTS.md notes the difference).
		aDarts := darts.Data[:nActive]
		for i := range aDarts {
			aDarts[i] = int64(g.Intn(m))
		}
		vm.ChargeElementwise(nActive, 4)

		dartsV := &vector.Vec{Data: aDarts, Base: darts.Base}
		activeV := &vector.Vec{Data: active.Data[:nActive], Base: active.Base}
		prevV := &vector.Vec{Data: prev.Data[:nActive], Base: prev.Base}
		gotV := &vector.Vec{Data: got.Data[:nActive], Base: got.Base}
		maskV := &vector.Vec{Data: mask.Data[:nActive], Base: mask.Base}

		// Read current owners, write identities, read back the winners.
		vm.Gather(prevV, slots, dartsV)
		vm.Scatter(slots, activeV, dartsV)
		vm.Gather(gotV, slots, dartsV)

		// An element wins if its slot was free and it was the last writer.
		// Losers that overwrote a claimed slot restore the owner (on the
		// real machine this is done by re-scattering the saved values;
		// charge it as part of the elementwise fix-up pass).
		for i := 0; i < nActive; i++ {
			if prevV.Data[i] == -1 && gotV.Data[i] == activeV.Data[i] {
				maskV.Data[i] = 0 // placed
			} else {
				maskV.Data[i] = 1 // retry
				if prevV.Data[i] != -1 {
					slots.Data[aDarts[i]] = prevV.Data[i]
				}
			}
		}
		vm.ChargeElementwise(nActive, 4)

		// Pack the losers for the next round.
		k := vm.Pack(nextActive, activeV, maskV)
		copy(active.Data[:k], nextActive.Data[:k])
		nActive = k
	}

	// Pack claimed slots into contiguous positions: perm[identity] =
	// number of claimed slots before its slot.
	occ := vm.Alloc(m)
	vm.Map1(occ, slots, func(s int64) int64 {
		if s >= 0 {
			return 1
		}
		return 0
	}, 1)
	ranks := vm.Alloc(m)
	vm.ScanAdd(ranks, occ)
	for slot, id := range slots.Data {
		if id >= 0 {
			res.Perm[id] = ranks.Data[slot]
		}
	}
	vm.ChargeElementwise(m, 2)
	res.MaxContention = vm.MaxLocContention()
	return res
}

// RandomPermuteEREW generates a random permutation the EREW way: draw a
// random key per element from a range large enough that duplicates are
// rare, radix-sort the keys [ZB91], and use each element's rank as its
// permutation value. Duplicate keys are broken by index (the sort is
// stable), which biases the permutation negligibly for keyBits >> lg n.
func RandomPermuteEREW(vm *vector.Machine, n int, keyBits uint, g *rng.Xoshiro256) PermutationResult {
	if n <= 0 {
		panic(fmt.Sprintf("algos: RandomPermuteEREW n=%d", n))
	}
	if keyBits == 0 || keyBits > 62 {
		panic(fmt.Sprintf("algos: RandomPermuteEREW keyBits=%d out of (0,62]", keyBits))
	}
	keys := vm.Alloc(n)
	space := uint64(1) << keyBits
	for i := range keys.Data {
		keys.Data[i] = int64(g.Uint64n(space))
	}
	vm.ChargeElementwise(n, 4)

	sorted := RadixSort(vm, keys, int64(space-1), 11)
	return PermutationResult{
		Perm:          sorted.Ranks,
		Rounds:        1,
		MaxContention: vm.MaxLocContention(),
	}
}

// IsPermutation reports whether p is a permutation of [0, len(p)).
func IsPermutation(p []int64) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= int64(len(p)) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
