package algos

import (
	"fmt"

	"dxbsp/internal/vector"
)

// This file implements the multiprefix operation of Sheffler [She93],
// which the paper names as future work for its contention analysis:
// given keys and values, compute for every element the running sum of the
// values of earlier elements with the same key, plus per-key totals.
// Multiprefix generalizes histogramming and is the workhorse behind
// counting sorts and bucketing on vector machines.
//
// Two formulations with very different contention structure are provided:
//
//   - MultiprefixDirect: the QRQW formulation — a queued fetch&add
//     straight into the per-key totals. One pass, but the scatter-add's
//     per-location contention equals the maximum key frequency, so the
//     (d,x)-BSP charges skewed key distributions heavily.
//   - MultiprefixSorted: radix-sort the keys, segmented-scan the values,
//     scatter back (every irregular access a permutation, κ = 1).
//     EREW-style: immune to skew but pays the full sort.
//
// The crossover between them as key skew grows is the contention story
// the paper's framework predicts.

// MultiprefixResult reports a multiprefix run.
type MultiprefixResult struct {
	// Prefix[i] = sum of Vals[j] for j < i with Keys[j] == Keys[i].
	Prefix []int64
	// Totals[k] = total value per key.
	Totals []int64
	// MaxContention is the largest per-location contention observed.
	MaxContention int
}

// MultiprefixDirect computes the multiprefix over small integer keys in
// [0, numKeys) the QRQW way: a queued fetch&add directly into the per-key
// totals. Each element's prefix is the counter value it observed before
// its own addition (the deterministic vector-order semantics of the
// machine's scatter-add). The single irregular superstep has per-location
// contention equal to the maximum key frequency — exactly what the queue
// rule charges, and what the sort-based variant spends a whole sort to
// avoid.
func MultiprefixDirect(vm *vector.Machine, keys, vals []int64, numKeys int) MultiprefixResult {
	checkMultiprefixArgs(keys, vals, numKeys)
	n := len(keys)

	kv := vm.AllocInit(keys)
	vv := vm.AllocInit(vals)

	res := MultiprefixResult{
		Prefix: make([]int64, n),
		Totals: make([]int64, numKeys),
	}
	// The prefixes are the fetch half of the fetch&add — the value each
	// element observes before its own addition, in the machine's
	// deterministic vector order. They ride along with the scatter-add
	// superstep at no extra charge.
	running := make([]int64, numKeys)
	for i, k := range keys {
		res.Prefix[i] = running[k]
		running[k] += vals[i]
	}
	totals := vm.Alloc(numKeys)
	vm.Fill(totals, 0)
	vm.ScatterAdd(totals, vv, kv)
	copy(res.Totals, totals.Data)
	res.MaxContention = vm.MaxLocContention()
	return res
}

// MultiprefixSorted computes the same result the EREW way: stable
// radix-sort element indices by key, segmented-scan the values in sorted
// order, and scatter the per-element prefixes back — every irregular
// access is a permutation (κ = 1).
func MultiprefixSorted(vm *vector.Machine, keys, vals []int64, numKeys int) MultiprefixResult {
	checkMultiprefixArgs(keys, vals, numKeys)
	n := len(keys)

	kv := vm.AllocInit(keys)
	sorted := RadixSort(vm, kv, int64(numKeys-1), 11)

	// inv[pos] = original index at sorted position.
	inv := make([]int64, n)
	for orig, pos := range sorted.Ranks {
		inv[pos] = int64(orig)
	}
	invV := vm.AllocInit(inv)

	// Permute values into sorted order (κ=1 gather).
	vv := vm.AllocInit(vals)
	sv := vm.Alloc(n)
	vm.Gather(sv, vv, invV)

	// Segment flags at key boundaries in sorted order.
	flags := vm.Alloc(n)
	for pos := 0; pos < n; pos++ {
		if pos == 0 || sorted.Sorted[pos] != sorted.Sorted[pos-1] {
			flags.Data[pos] = 1
		}
	}
	vm.ChargeElementwise(n, 2)

	scan := vm.Alloc(n)
	vm.SegScanAdd(scan, sv, flags)

	// Scatter prefixes back to original positions (κ=1 scatter).
	out := vm.Alloc(n)
	vm.Scatter(out, scan, invV)

	res := MultiprefixResult{
		Prefix: append([]int64(nil), out.Data...),
		Totals: make([]int64, numKeys),
	}
	for i, k := range keys {
		res.Totals[k] += vals[i]
	}
	vm.ChargeElementwise(n, 1)
	res.MaxContention = vm.MaxLocContention()
	return res
}

// SerialMultiprefix is the reference implementation.
func SerialMultiprefix(keys, vals []int64, numKeys int) MultiprefixResult {
	checkMultiprefixArgs(keys, vals, numKeys)
	res := MultiprefixResult{
		Prefix: make([]int64, len(keys)),
		Totals: make([]int64, numKeys),
	}
	for i, k := range keys {
		res.Prefix[i] = res.Totals[k]
		res.Totals[k] += vals[i]
	}
	return res
}

func checkMultiprefixArgs(keys, vals []int64, numKeys int) {
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("algos: multiprefix: %d keys vs %d values", len(keys), len(vals)))
	}
	if numKeys <= 0 {
		panic(fmt.Sprintf("algos: multiprefix: numKeys=%d", numKeys))
	}
	for _, k := range keys {
		if k < 0 || k >= int64(numKeys) {
			panic(fmt.Sprintf("algos: multiprefix: key %d out of [0,%d)", k, numKeys))
		}
	}
}
