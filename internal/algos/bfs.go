package algos

import (
	"fmt"

	"dxbsp/internal/vector"
)

// This file implements level-synchronous breadth-first search, the
// canonical irregular frontier algorithm on the class of machines the
// paper models. Each level gathers the adjacency lists of the frontier
// and scatters level labels to the discovered vertices; the contention
// carrier is the scatter — many frontier edges discover the same popular
// vertex simultaneously, so per-location contention tracks the in-degree
// of hubs, exactly the quantity the (d,x)-BSP charges and BSP misses.

// AdjGraph is a graph in adjacency (CSR) form for traversal.
type AdjGraph struct {
	N      int
	AdjPtr []int64 // len N+1
	Adj    []int64 // concatenated neighbor lists
}

// BuildAdj converts an edge list into symmetric adjacency form.
func BuildAdj(gr *Graph) *AdjGraph {
	if err := gr.Validate(); err != nil {
		panic(err)
	}
	deg := make([]int64, gr.N)
	for i := range gr.U {
		if gr.U[i] == gr.V[i] {
			continue // self-loops add nothing to traversal
		}
		deg[gr.U[i]]++
		deg[gr.V[i]]++
	}
	a := &AdjGraph{N: gr.N, AdjPtr: make([]int64, gr.N+1)}
	for v := 0; v < gr.N; v++ {
		a.AdjPtr[v+1] = a.AdjPtr[v] + deg[v]
	}
	a.Adj = make([]int64, a.AdjPtr[gr.N])
	fill := make([]int64, gr.N)
	copy(fill, a.AdjPtr[:gr.N])
	for i := range gr.U {
		u, v := gr.U[i], gr.V[i]
		if u == v {
			continue
		}
		a.Adj[fill[u]] = v
		fill[u]++
		a.Adj[fill[v]] = u
		fill[v]++
	}
	return a
}

// MaxDegree returns the largest vertex degree.
func (a *AdjGraph) MaxDegree() int64 {
	var m int64
	for v := 0; v < a.N; v++ {
		if d := a.AdjPtr[v+1] - a.AdjPtr[v]; d > m {
			m = d
		}
	}
	return m
}

// BFSResult reports a traversal.
type BFSResult struct {
	// Level[v] is the BFS distance from the source, or -1 if unreachable.
	Level []int64
	// Levels is the number of frontier expansions performed.
	Levels int
	// MaxContention is the largest per-location contention of any
	// superstep (≈ the largest simultaneous in-discovery of one vertex).
	MaxContention int
}

// BFS runs level-synchronous breadth-first search from src on vm.
// Per level: gather the frontier's adjacency spans, expand them into an
// edge frontier (segmented structure), gather the neighbors' current
// levels, and scatter the new level into undiscovered neighbors.
func BFS(vm *vector.Machine, a *AdjGraph, src int64) BFSResult {
	if src < 0 || src >= int64(a.N) {
		panic(fmt.Sprintf("algos: BFS source %d out of range", src))
	}
	level := vm.Alloc(a.N)
	vm.Fill(level, -1)
	level.Data[src] = 0
	adj := vm.AllocInit(a.Adj)

	frontier := []int64{src}
	res := BFSResult{}
	for cur := int64(0); len(frontier) > 0; cur++ {
		res.Levels++

		// Expand: total edges out of the frontier.
		total := 0
		for _, v := range frontier {
			total += int(a.AdjPtr[v+1] - a.AdjPtr[v])
		}
		vm.ChargeElementwise(len(frontier), 2) // degree gather + scan on the machine
		if total == 0 {
			break
		}

		// Edge frontier: for every frontier vertex, the indices of its
		// adjacency span (a segmented iota: scan + elementwise on the
		// machine, plain loop here).
		eIdx := vm.Alloc(total)
		k := 0
		for _, v := range frontier {
			for e := a.AdjPtr[v]; e < a.AdjPtr[v+1]; e++ {
				eIdx.Data[k] = e
				k++
			}
		}
		vm.ChargeElementwise(total, 2)

		// Gather neighbor ids, then their levels (irregular: hubs hit).
		nbr := vm.Alloc(total)
		vm.Gather(nbr, adj, eIdx)
		nlv := vm.Alloc(total)
		vm.Gather(nlv, level, nbr)

		// Discovered = neighbors with level -1; scatter cur+1 into them.
		// Colliding discoveries of one vertex are benign (same value).
		newIdxData := make([]int64, 0, total)
		for i := 0; i < total; i++ {
			if nlv.Data[i] == -1 {
				newIdxData = append(newIdxData, nbr.Data[i])
			}
		}
		vm.ChargeElementwise(total, 2)
		next := make([]int64, 0, len(newIdxData))
		if len(newIdxData) > 0 {
			ni := vm.AllocInit(newIdxData)
			vm.ScatterConst(level, cur+1, ni)
			// Deduplicate for the next frontier (the scatter already
			// resolved winners; a vertex appears once regardless).
			seen := make(map[int64]bool, len(newIdxData))
			for _, v := range newIdxData {
				if !seen[v] {
					seen[v] = true
					next = append(next, v)
				}
			}
			vm.ChargeElementwise(len(newIdxData), 2)
		}
		frontier = next
	}
	res.Level = append([]int64(nil), level.Data...)
	res.MaxContention = vm.MaxLocContention()
	return res
}

// SerialBFS is the reference traversal.
func SerialBFS(a *AdjGraph, src int64) []int64 {
	level := make([]int64, a.N)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []int64{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for e := a.AdjPtr[v]; e < a.AdjPtr[v+1]; e++ {
			w := a.Adj[e]
			if level[w] == -1 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return level
}
