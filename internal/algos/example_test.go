package algos_test

import (
	"fmt"

	"dxbsp/internal/algos"
	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

// Sort on the simulated machine; the [ZB91] formulation keeps every
// superstep's contention far below n.
func ExampleRadixSort() {
	vm := vector.New(core.J90())
	v := vm.AllocInit([]int64{30, 10, 20, 10})
	res := algos.RadixSort(vm, v, 30, 8)
	fmt.Println(res.Sorted)
	fmt.Println(res.Ranks) // stable: the two 10s keep their order
	// Output:
	// [10 10 20 30]
	// [3 0 2 1]
}

// The dense column of Figure 12: SpMV's gather contention is the
// maximum column frequency.
func ExampleSpMV() {
	a := &algos.CSR{
		Rows: 3, Cols: 2,
		RowPtr: []int64{0, 2, 3, 4},
		ColIdx: []int64{0, 1, 0, 0}, // column 0 appears in every row
		Val:    []int64{1, 2, 3, 4},
	}
	vm := vector.New(core.J90())
	res := algos.SpMV(vm, a, []int64{10, 100})
	fmt.Println(res.Y)
	fmt.Println("gather contention:", res.GatherContention)
	// Output:
	// [210 30 40]
	// gather contention: 3
}

// Components of a small forest.
func ExampleConnectedComponents() {
	gr := &algos.Graph{N: 5, U: []int64{0, 2}, V: []int64{1, 3}}
	vm := vector.New(core.J90())
	res := algos.ConnectedComponents(vm, gr, rng.New(1))
	same := res.Labels[0] == res.Labels[1] && res.Labels[2] == res.Labels[3]
	split := res.Labels[0] != res.Labels[2] && res.Labels[4] != res.Labels[0]
	fmt.Println(same, split)
	// Output:
	// true true
}

// Multiprefix: running per-key sums, the fetch&add way.
func ExampleMultiprefixDirect() {
	vm := vector.New(core.J90())
	keys := []int64{0, 1, 0, 1, 0}
	vals := []int64{1, 10, 2, 20, 3}
	res := algos.MultiprefixDirect(vm, keys, vals, 2)
	fmt.Println(res.Prefix)
	fmt.Println(res.Totals)
	// Output:
	// [0 0 1 10 3]
	// [6 30]
}
