package algos

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

func TestSerialComponentsSanity(t *testing.T) {
	gr := &Graph{N: 6, U: []int64{0, 2, 4}, V: []int64{1, 3, 4}}
	labels := SerialComponents(gr)
	// Components: {0,1}, {2,3}, {4}, {5}.
	if labels[0] != labels[1] || labels[2] != labels[3] {
		t.Errorf("labels = %v", labels)
	}
	if labels[0] == labels[2] || labels[4] == labels[5] || labels[4] == labels[0] {
		t.Errorf("merged distinct components: %v", labels)
	}
}

func TestSameComponents(t *testing.T) {
	if !SameComponents([]int64{1, 1, 2}, []int64{7, 7, 9}) {
		t.Error("isomorphic labelings rejected")
	}
	if SameComponents([]int64{1, 1, 2}, []int64{7, 8, 9}) {
		t.Error("split component accepted")
	}
	if SameComponents([]int64{1, 2}, []int64{7, 7}) {
		t.Error("merged component accepted")
	}
	if SameComponents([]int64{1}, []int64{1, 2}) {
		t.Error("length mismatch accepted")
	}
}

func TestConnectedComponentsRandomGraphs(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{10, 5}, {100, 50}, {100, 300}, {1000, 800}, {1000, 4000},
	} {
		gr := RandomGraph(tc.n, tc.m, rng.New(uint64(tc.n*31+tc.m)))
		vm := newVM()
		res := ConnectedComponents(vm, gr, rng.New(99))
		want := SerialComponents(gr)
		if !SameComponents(res.Labels, want) {
			t.Fatalf("n=%d m=%d: wrong components", tc.n, tc.m)
		}
		if res.Rounds < 1 {
			t.Errorf("rounds = %d", res.Rounds)
		}
	}
}

func TestConnectedComponentsStar(t *testing.T) {
	gr := StarGraph(4096)
	vm := newVM()
	res := ConnectedComponents(vm, gr, rng.New(1))
	want := SerialComponents(gr)
	if !SameComponents(res.Labels, want) {
		t.Fatal("star mislabeled")
	}
	// Star: hooks and shortcuts converge on the hub — the high-contention
	// phases the paper measures.
	hub := res.Phases["hook"].MaxContention
	if sc := res.Phases["shortcut"].MaxContention; sc > hub {
		hub = sc
	}
	if hub < 1024 {
		t.Errorf("star should show hub contention, got %d", hub)
	}
}

func TestConnectedComponentsPath(t *testing.T) {
	gr := PathGraph(2048)
	res := ConnectedComponents(newVM(), gr, rng.New(2))
	want := SerialComponents(gr)
	if !SameComponents(res.Labels, want) {
		t.Fatal("path mislabeled")
	}
}

func TestConnectedComponentsEmptyEdges(t *testing.T) {
	gr := &Graph{N: 5}
	res := ConnectedComponents(newVM(), gr, rng.New(3))
	for v, l := range res.Labels {
		if l != int64(v) {
			t.Errorf("isolated vertex %d labeled %d", v, l)
		}
	}
	if res.Rounds != 0 {
		t.Errorf("rounds = %d, want 0 (no live edges)", res.Rounds)
	}
}

func TestConnectedComponentsSelfLoops(t *testing.T) {
	gr := &Graph{N: 3, U: []int64{0, 1}, V: []int64{0, 2}}
	res := ConnectedComponents(newVM(), gr, rng.New(4))
	want := SerialComponents(gr)
	if !SameComponents(res.Labels, want) {
		t.Fatal("self-loop graph mislabeled")
	}
}

func TestConnectedComponentsPhasesAccounted(t *testing.T) {
	gr := RandomGraph(2000, 4000, rng.New(5))
	vm := newVM()
	res := ConnectedComponents(vm, gr, rng.New(6))
	total := 0.0
	for name, st := range res.Phases {
		if st.Cycles < 0 {
			t.Errorf("phase %s negative cycles", name)
		}
		total += st.Cycles
	}
	if total <= 0 {
		t.Error("no phase cycles recorded")
	}
	// Phase cycles should account for nearly all VM cycles (setup aside).
	if total < vm.Cycles()*0.8 {
		t.Errorf("phases cover %v of %v cycles", total, vm.Cycles())
	}
	if res.Phases["contract"].Supersteps == 0 || res.Phases["hook"].Supersteps == 0 {
		t.Error("missing phase supersteps")
	}
}

func TestConnectedComponentsRoundsLogarithmic(t *testing.T) {
	gr := RandomGraph(1<<14, 1<<15, rng.New(7))
	res := ConnectedComponents(newVM(), gr, rng.New(8))
	if res.Rounds > 64 {
		t.Errorf("rounds = %d for n=2^14, expected O(lg n)", res.Rounds)
	}
}

func TestConnectedComponentsProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 2
		m := int(mRaw % 400)
		gr := RandomGraph(n, m, rng.New(seed))
		res := ConnectedComponents(newVM(), gr, rng.New(seed^0xabc))
		return SameComponents(res.Labels, SerialComponents(gr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGraphValidate(t *testing.T) {
	if err := (&Graph{N: 0}).Validate(); err == nil {
		t.Error("empty graph accepted")
	}
	if err := (&Graph{N: 2, U: []int64{0}, V: []int64{5}}).Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := (&Graph{N: 2, U: []int64{0}, V: []int64{}}).Validate(); err == nil {
		t.Error("ragged edge list accepted")
	}
}
