package algos

import (
	"fmt"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

// This file implements the paper's sparse matrix–vector multiplication
// experiment (Figure 12). The matrix is stored in compressed row format;
// the computation gathers source-vector entries by column index, multiplies
// elementwise with the non-zero values, and reduces each row with a
// segmented sum [BHZ93] — so latency is hidden regardless of the matrix
// structure, and the only contention-carrying step is the gather: its
// per-location contention equals the maximum column frequency. The
// workload densifies one column to a parameterized length, reproducing the
// paper's "length of the dense column" sweep.

// CSR is a sparse matrix in compressed row storage.
type CSR struct {
	Rows, Cols int
	RowPtr     []int64 // len Rows+1
	ColIdx     []int64 // len NNZ
	Val        []int64 // len NNZ (integer values keep the simulated machine exact)
}

// NNZ returns the number of stored non-zeros.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// Validate checks structural invariants.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("algos: CSR: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.Rows] != int64(m.NNZ()) {
		return fmt.Errorf("algos: CSR: RowPtr endpoints %d..%d, want 0..%d", m.RowPtr[0], m.RowPtr[m.Rows], m.NNZ())
	}
	if len(m.Val) != m.NNZ() {
		return fmt.Errorf("algos: CSR: %d values for %d column indices", len(m.Val), m.NNZ())
	}
	for r := 0; r < m.Rows; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("algos: CSR: row %d has negative length", r)
		}
	}
	for _, c := range m.ColIdx {
		if c < 0 || c >= int64(m.Cols) {
			return fmt.Errorf("algos: CSR: column index %d out of [0,%d)", c, m.Cols)
		}
	}
	return nil
}

// MaxColumnFrequency returns the largest number of rows containing any one
// column — the gather contention of SpMV.
func (m *CSR) MaxColumnFrequency() int {
	counts := make(map[int64]int)
	maxC := 0
	for _, c := range m.ColIdx {
		counts[c]++
		if counts[c] > maxC {
			maxC = counts[c]
		}
	}
	return maxC
}

// RandomCSR builds a rows x cols matrix with nnzPerRow random non-zeros
// per row (column indices drawn uniformly, duplicates within a row
// allowed, as in the paper's synthetic workload), then makes column
// denseCol appear in the first denseLen rows (replacing each such row's
// first entry), producing a maximum column frequency of about denseLen.
func RandomCSR(rows, cols, nnzPerRow, denseLen int, g *rng.Xoshiro256) *CSR {
	if rows <= 0 || cols <= 0 || nnzPerRow <= 0 {
		panic(fmt.Sprintf("algos: RandomCSR(%d,%d,%d)", rows, cols, nnzPerRow))
	}
	if denseLen > rows {
		denseLen = rows
	}
	m := &CSR{Rows: rows, Cols: cols}
	m.RowPtr = make([]int64, rows+1)
	denseCol := int64(cols / 2)
	for r := 0; r < rows; r++ {
		m.RowPtr[r] = int64(len(m.ColIdx))
		for j := 0; j < nnzPerRow; j++ {
			var c int64
			if j == 0 && r < denseLen {
				c = denseCol
			} else {
				c = int64(g.Intn(cols))
			}
			m.ColIdx = append(m.ColIdx, c)
			m.Val = append(m.Val, int64(g.Intn(8)+1))
		}
	}
	m.RowPtr[rows] = int64(len(m.ColIdx))
	return m
}

// SpMVResult reports one multiplication.
type SpMVResult struct {
	Y []int64
	// GatherContention is the max per-location contention of the column
	// gather (≈ dense column length).
	GatherContention int
	// PredictedBSP and PredictedDXBSP are the model predictions for the
	// gather superstep, for the Figure 12 comparison.
	PredictedBSP   float64
	PredictedDXBSP float64
}

// SpMV computes y = A*x on vm with the segmented-operation formulation of
// [BHZ93]: gather x by column index, multiply by values, segmented-sum by
// rows.
func SpMV(vm *vector.Machine, a *CSR, x []int64) SpMVResult {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("algos: SpMV: x has %d entries for %d columns", len(x), a.Cols))
	}
	nnz := a.NNZ()
	xv := vm.AllocInit(x)
	col := vm.AllocInit(a.ColIdx)
	val := vm.AllocInit(a.Val)

	// Predictions for the gather superstep (the contention carrier).
	mach := vm.Mach()
	addrs := make([]uint64, nnz)
	for i, c := range a.ColIdx {
		addrs[i] = xv.Base + uint64(c)
	}
	prof := core.ComputeProfileCompact(core.NewPattern(addrs, mach.Procs), core.InterleaveMap{Banks: mach.Banks})
	res := SpMVResult{
		GatherContention: prof.MaxLoc,
		PredictedBSP:     mach.PredictBSP(prof),
		PredictedDXBSP:   mach.PredictDXBSP(prof),
	}

	// Gather x entries by column index; multiply with values.
	gx := vm.Alloc(nnz)
	vm.Gather(gx, xv, col)
	prod := vm.Alloc(nnz)
	vm.Map2(prod, gx, val, func(p, v int64) int64 { return p * v }, 1)

	// Segment flags from RowPtr (empty rows produce no flag — their sum
	// is zero by construction below).
	flags := vm.Alloc(nnz)
	for r := 0; r < a.Rows; r++ {
		if a.RowPtr[r] < a.RowPtr[r+1] {
			flags.Data[a.RowPtr[r]] = 1
		}
	}
	vm.ChargeElementwise(a.Rows, 1)

	// Segmented inclusive sums: exclusive seg-scan + element, then pick
	// the last element of each non-empty segment.
	scan := vm.Alloc(nnz)
	vm.SegScanAdd(scan, prod, flags)
	incl := vm.Alloc(nnz)
	vm.Map2(incl, scan, prod, func(s, p int64) int64 { return s + p }, 1)

	res.Y = make([]int64, a.Rows)
	lastIdx := make([]int64, 0, a.Rows)
	rowsWith := make([]int, 0, a.Rows)
	for r := 0; r < a.Rows; r++ {
		if a.RowPtr[r] < a.RowPtr[r+1] {
			lastIdx = append(lastIdx, a.RowPtr[r+1]-1)
			rowsWith = append(rowsWith, r)
		}
	}
	if len(lastIdx) > 0 {
		li := vm.AllocInit(lastIdx)
		out := vm.Alloc(len(lastIdx))
		vm.Gather(out, incl, li) // κ=1: one read per segment end
		for i, r := range rowsWith {
			res.Y[r] = out.Data[i]
		}
		vm.ChargeElementwise(len(rowsWith), 1)
	}
	return res
}

// SerialSpMV is the reference y = A*x.
func SerialSpMV(a *CSR, x []int64) []int64 {
	y := make([]int64, a.Rows)
	for r := 0; r < a.Rows; r++ {
		var acc int64
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			acc += a.Val[i] * x[a.ColIdx[i]]
		}
		y[r] = acc
	}
	return y
}
