package algos

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

func randKV(n, numKeys int, seed uint64) ([]int64, []int64) {
	g := rng.New(seed)
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(g.Intn(numKeys))
		vals[i] = int64(g.Intn(10))
	}
	return keys, vals
}

func TestSerialMultiprefix(t *testing.T) {
	keys := []int64{0, 1, 0, 1, 0}
	vals := []int64{1, 10, 2, 20, 3}
	res := SerialMultiprefix(keys, vals, 2)
	wantPrefix := []int64{0, 0, 1, 10, 3}
	for i := range wantPrefix {
		if res.Prefix[i] != wantPrefix[i] {
			t.Errorf("Prefix = %v, want %v", res.Prefix, wantPrefix)
			break
		}
	}
	if res.Totals[0] != 6 || res.Totals[1] != 30 {
		t.Errorf("Totals = %v", res.Totals)
	}
}

func TestMultiprefixDirectMatchesSerial(t *testing.T) {
	keys, vals := randKV(3000, 17, 1)
	want := SerialMultiprefix(keys, vals, 17)
	got := MultiprefixDirect(newVM(), keys, vals, 17)
	assertMultiprefixEqual(t, got, want)
}

func TestMultiprefixSortedMatchesSerial(t *testing.T) {
	keys, vals := randKV(3000, 17, 2)
	want := SerialMultiprefix(keys, vals, 17)
	got := MultiprefixSorted(newVM(), keys, vals, 17)
	assertMultiprefixEqual(t, got, want)
}

func assertMultiprefixEqual(t *testing.T, got, want MultiprefixResult) {
	t.Helper()
	for i := range want.Prefix {
		if got.Prefix[i] != want.Prefix[i] {
			t.Fatalf("Prefix[%d] = %d, want %d", i, got.Prefix[i], want.Prefix[i])
		}
	}
	for k := range want.Totals {
		if got.Totals[k] != want.Totals[k] {
			t.Fatalf("Totals[%d] = %d, want %d", k, got.Totals[k], want.Totals[k])
		}
	}
}

func TestMultiprefixProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%300 + 1
		numKeys := int(kRaw)%20 + 1
		keys, vals := randKV(n, numKeys, seed)
		want := SerialMultiprefix(keys, vals, numKeys)
		d := MultiprefixDirect(newVM(), keys, vals, numKeys)
		s := MultiprefixSorted(newVM(), keys, vals, numKeys)
		for i := range want.Prefix {
			if d.Prefix[i] != want.Prefix[i] || s.Prefix[i] != want.Prefix[i] {
				return false
			}
		}
		for k := range want.Totals {
			if d.Totals[k] != want.Totals[k] || s.Totals[k] != want.Totals[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMultiprefixSkewContention(t *testing.T) {
	// Direct's contention tracks key skew; Sorted stays κ=1-ish (bounded
	// by the radix sort's own small bucket contention).
	n := 1 << 13
	allSame := make([]int64, n)
	vals := make([]int64, n)
	dSk := MultiprefixDirect(newVM(), allSame, vals, 4)
	if dSk.MaxContention < n/16 {
		t.Errorf("direct on fully-skewed keys: contention %d, want ~n/p", dSk.MaxContention)
	}
	sSk := MultiprefixSorted(newVM(), allSame, vals, 4)
	if sSk.MaxContention >= dSk.MaxContention/2 {
		t.Errorf("sorted should avoid skew contention: %d vs %d", sSk.MaxContention, dSk.MaxContention)
	}
}

func TestMultiprefixCyclesCrossover(t *testing.T) {
	// Uniform keys: direct is much cheaper than the sort-based variant.
	// Fully-skewed keys: direct pays contention, narrowing (or flipping)
	// the gap — the framework's predicted crossover behaviour.
	n := 1 << 13
	keysU, vals := randKV(n, 64, 3)
	vmDU := newVM()
	MultiprefixDirect(vmDU, keysU, vals, 64)
	vmSU := newVM()
	MultiprefixSorted(vmSU, keysU, vals, 64)
	if vmDU.Cycles() >= vmSU.Cycles()/2 {
		t.Errorf("uniform keys: direct %v should be far below sorted %v", vmDU.Cycles(), vmSU.Cycles())
	}

	skew := make([]int64, n)
	vmDS := newVM()
	MultiprefixDirect(vmDS, skew, vals, 64)
	gapU := vmSU.Cycles() / vmDU.Cycles()
	vmSS := newVM()
	MultiprefixSorted(vmSS, skew, vals, 64)
	gapS := vmSS.Cycles() / vmDS.Cycles()
	if gapS >= gapU {
		t.Errorf("skew should erode direct's advantage: gap %v (uniform) vs %v (skewed)", gapU, gapS)
	}
}

func TestMultiprefixPanics(t *testing.T) {
	for _, f := range []func(){
		func() { MultiprefixDirect(newVM(), []int64{0}, []int64{}, 1) },
		func() { MultiprefixDirect(newVM(), []int64{5}, []int64{1}, 3) },
		func() { MultiprefixDirect(newVM(), []int64{-1}, []int64{1}, 3) },
		func() { MultiprefixSorted(newVM(), []int64{0}, []int64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
