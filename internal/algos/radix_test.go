package algos

import (
	"sort"
	"testing"
	"testing/quick"

	"dxbsp/internal/core"
	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

func newVM() *vector.Machine {
	return vector.New(core.J90())
}

func TestRadixSortSortsRandom(t *testing.T) {
	vm := newVM()
	g := rng.New(1)
	n := 4096
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(g.Intn(100000))
	}
	v := vm.AllocInit(data)
	res := RadixSort(vm, v, 100000, 11)

	want := append([]int64(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if res.Sorted[i] != want[i] {
			t.Fatalf("Sorted[%d] = %d, want %d", i, res.Sorted[i], want[i])
		}
	}
	// Ranks must be the inverse placement: data[i] ends at Ranks[i].
	for i, r := range res.Ranks {
		if res.Sorted[r] != data[i] {
			t.Fatalf("Ranks[%d]=%d but Sorted there is %d, want %d", i, r, res.Sorted[r], data[i])
		}
	}
	if vm.Cycles() <= 0 {
		t.Error("no cycles charged")
	}
}

func TestRadixSortStable(t *testing.T) {
	// Keys with many duplicates: equal keys must keep input order.
	vm := newVM()
	g := rng.New(2)
	n := 2000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(g.Intn(7)) // heavy duplication
	}
	v := vm.AllocInit(data)
	res := RadixSort(vm, v, 6, 4)
	// For every pair i<j with equal keys, rank[i] < rank[j].
	lastRank := map[int64]int64{}
	for i := 0; i < n; i++ {
		k := data[i]
		if r, ok := lastRank[k]; ok && res.Ranks[i] <= r {
			t.Fatalf("instability at key %d: rank %d after %d", k, res.Ranks[i], r)
		}
		lastRank[k] = res.Ranks[i]
	}
}

func TestRadixSortEdgeCases(t *testing.T) {
	vm := newVM()
	// Single element.
	one := vm.AllocInit([]int64{42})
	res := RadixSort(vm, one, 42, 8)
	if res.Sorted[0] != 42 || res.Ranks[0] != 0 {
		t.Errorf("single: %+v", res)
	}
	// All equal.
	eq := vm.AllocInit([]int64{5, 5, 5, 5})
	res = RadixSort(vm, eq, 5, 8)
	for i, r := range res.Ranks {
		if r != int64(i) {
			t.Errorf("all-equal stability: Ranks = %v", res.Ranks)
			break
		}
	}
	// All zero keys (maxKey 0): one pass, identity.
	z := vm.AllocInit([]int64{0, 0, 0})
	res = RadixSort(vm, z, 0, 8)
	if res.Passes != 1 {
		t.Errorf("zero keys: %d passes", res.Passes)
	}
}

func TestRadixSortPassCount(t *testing.T) {
	vm := newVM()
	v := vm.AllocInit([]int64{1, 2, 3})
	res := RadixSort(vm, v, (1<<22)-1, 11)
	if res.Passes != 2 {
		t.Errorf("Passes = %d, want 2 for 22-bit keys at 11 bits/digit", res.Passes)
	}
}

func TestRadixSortPanics(t *testing.T) {
	vm := newVM()
	v := vm.AllocInit([]int64{1})
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"digitBits 0", func() { RadixSort(vm, v, 1, 0) }},
		{"digitBits 17", func() { RadixSort(vm, v, 1, 17) }},
		{"negative maxKey", func() { RadixSort(vm, v, -1, 8) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestRadixSortProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		g := rng.New(seed)
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(g.Intn(1 << 16))
		}
		vm := newVM()
		v := vm.AllocInit(data)
		res := RadixSort(vm, v, (1<<16)-1, 8)
		if !sort.SliceIsSorted(res.Sorted, func(i, j int) bool { return res.Sorted[i] < res.Sorted[j] }) {
			return false
		}
		if !IsPermutation(res.Ranks) {
			return false
		}
		for i, r := range res.Ranks {
			if res.Sorted[r] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRadixSortContentionBounded(t *testing.T) {
	// The point of the [ZB91] formulation: with per-processor buckets,
	// no superstep sees contention anywhere near n.
	vm := newVM()
	g := rng.New(3)
	n := 1 << 14
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(g.Intn(1 << 22))
	}
	v := vm.AllocInit(data)
	RadixSort(vm, v, (1<<22)-1, 11)
	if vm.MaxLocContention() > n/64 {
		t.Errorf("radix sort contention %d too high for n=%d", vm.MaxLocContention(), n)
	}
}
