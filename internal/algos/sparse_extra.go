package algos

import (
	"fmt"
	"math"

	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

// This file rounds out the [BHZ93] sparse-matrix substrate beyond the
// Figure 12 kernel: matrix constructors with controlled structure,
// transpose, and multi-vector multiplication. Transpose is the
// interesting one for the model — it is a bulk permutation whose
// destination computation is a multiprefix over column indices, so its
// cost connects straight back to the contention machinery.

// DiagonalCSR returns an n x n matrix with the given diagonals (offsets
// relative to the main diagonal), each filled with val. A classic banded
// structure: gathers are near-stride, contention-free.
func DiagonalCSR(n int, offsets []int, val int64) *CSR {
	if n <= 0 {
		panic(fmt.Sprintf("algos: DiagonalCSR(n=%d)", n))
	}
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int64, n+1)}
	for r := 0; r < n; r++ {
		m.RowPtr[r] = int64(len(m.ColIdx))
		for _, off := range offsets {
			c := r + off
			if c >= 0 && c < n {
				m.ColIdx = append(m.ColIdx, int64(c))
				m.Val = append(m.Val, val)
			}
		}
	}
	m.RowPtr[n] = int64(len(m.ColIdx))
	return m
}

// PowerLawCSR returns a rows x cols matrix whose column indices follow a
// Zipf-like distribution: a few hot columns appear in many rows. This is
// the realistic version of the synthetic dense-column workload — degree
// skew in graph/matrix data is where high gather contention comes from in
// practice.
func PowerLawCSR(rows, cols, nnzPerRow int, s float64, g *rng.Xoshiro256) *CSR {
	if rows <= 0 || cols <= 0 || nnzPerRow <= 0 {
		panic(fmt.Sprintf("algos: PowerLawCSR(%d,%d,%d)", rows, cols, nnzPerRow))
	}
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	// Zipf over columns via inversion on the CDF.
	cdf := make([]float64, cols)
	acc := 0.0
	for k := 0; k < cols; k++ {
		acc += 1 / powF(float64(k+1), s)
		cdf[k] = acc
	}
	total := cdf[cols-1]
	for r := 0; r < rows; r++ {
		m.RowPtr[r] = int64(len(m.ColIdx))
		for j := 0; j < nnzPerRow; j++ {
			u := g.Float64() * total
			lo, hi := 0, cols-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			m.ColIdx = append(m.ColIdx, int64(lo))
			m.Val = append(m.Val, int64(g.Intn(8)+1))
		}
	}
	m.RowPtr[rows] = int64(len(m.ColIdx))
	return m
}

func powF(base, exp float64) float64 {
	return math.Pow(base, exp)
}

// Transpose returns A^T computed on the machine: the destination of each
// non-zero is colStart[col] + (running rank of that column so far), a
// multiprefix over column indices [She93] followed by a permutation
// scatter. Its contention is the maximum column frequency — the same
// quantity that drives SpMV's gather, now driving the fetch&add.
func Transpose(vm *vector.Machine, a *CSR) *CSR {
	nnz := a.NNZ()
	out := &CSR{Rows: a.Cols, Cols: a.Rows, RowPtr: make([]int64, a.Cols+1)}
	out.ColIdx = make([]int64, nnz)
	out.Val = make([]int64, nnz)
	if nnz == 0 {
		return out
	}

	// Column counts and destinations via the direct multiprefix.
	ones := make([]int64, nnz)
	for i := range ones {
		ones[i] = 1
	}
	mp := MultiprefixDirect(vm, a.ColIdx, ones, a.Cols)

	// Column start offsets: exclusive scan of totals.
	totalsV := vm.AllocInit(mp.Totals)
	starts := vm.Alloc(a.Cols)
	vm.ScanAdd(starts, totalsV)
	for c := 0; c < a.Cols; c++ {
		out.RowPtr[c] = starts.Data[c]
	}
	out.RowPtr[a.Cols] = int64(nnz)
	vm.ChargeElementwise(a.Cols, 1)

	// Row index of each non-zero (segmented copy of row numbers).
	rowOf := make([]int64, nnz)
	for r := 0; r < a.Rows; r++ {
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			rowOf[i] = int64(r)
		}
	}
	vm.ChargeElementwise(nnz, 1)

	// Destination = column start + within-column rank; a permutation.
	dest := vm.Alloc(nnz)
	for i := 0; i < nnz; i++ {
		dest.Data[i] = starts.Data[a.ColIdx[i]] + mp.Prefix[i]
	}
	vm.ChargeElementwise(nnz, 2)

	rowV := vm.AllocInit(rowOf)
	valV := vm.AllocInit(a.Val)
	dstCol := vm.Alloc(nnz)
	dstVal := vm.Alloc(nnz)
	vm.Scatter(dstCol, rowV, dest)
	vm.Scatter(dstVal, valV, dest)
	copy(out.ColIdx, dstCol.Data)
	copy(out.Val, dstVal.Data)
	return out
}

// SpMM computes Y = A * X for k dense column vectors packed in x
// (x[j][c] is column j's entry c), amortizing the index gathers across
// vectors the way blocked SpMV does.
func SpMM(vm *vector.Machine, a *CSR, x [][]int64) [][]int64 {
	y := make([][]int64, len(x))
	for j := range x {
		res := SpMV(vm, a, x[j])
		y[j] = res.Y
	}
	return y
}

// SerialTranspose is the reference transpose.
func SerialTranspose(a *CSR) *CSR {
	nnz := a.NNZ()
	out := &CSR{Rows: a.Cols, Cols: a.Rows, RowPtr: make([]int64, a.Cols+1)}
	out.ColIdx = make([]int64, nnz)
	out.Val = make([]int64, nnz)
	counts := make([]int64, a.Cols)
	for _, c := range a.ColIdx {
		counts[c]++
	}
	for c := 0; c < a.Cols; c++ {
		out.RowPtr[c+1] = out.RowPtr[c] + counts[c]
	}
	fill := make([]int64, a.Cols)
	copy(fill, out.RowPtr[:a.Cols])
	for r := 0; r < a.Rows; r++ {
		for i := a.RowPtr[r]; i < a.RowPtr[r+1]; i++ {
			c := a.ColIdx[i]
			out.ColIdx[fill[c]] = int64(r)
			out.Val[fill[c]] = a.Val[i]
			fill[c]++
		}
	}
	return out
}
