// Package algos implements the paper's algorithm studies on top of the
// vector-machine primitive layer: the vectorized radix sort of Zagha and
// Blelloch [ZB91] (the EREW workhorse), the QRQW binary search and random
// permutation of Gibbons, Matias and Ramachandran [GMR94a] with their EREW
// counterparts, sparse matrix–vector multiplication with segmented
// operations [BHZ93], and Greiner's connected-components algorithm
// [Gre94]. Each algorithm computes real results while its memory traffic
// is charged under (d,x)-BSP accounting, so both correctness and the
// paper's performance comparisons are testable.
package algos

import (
	"fmt"

	"dxbsp/internal/vector"
)

// RadixSortResult reports a sort run.
type RadixSortResult struct {
	// Ranks[i] is the position of element i in the sorted order (a
	// permutation: the sort is stable).
	Ranks []int64
	// Sorted holds the keys in ascending order.
	Sorted []int64
	// Passes is the number of digit passes performed.
	Passes int
}

// RadixSort stable-sorts the non-negative keys in v on machine vm using
// LSD radix sort with digitBits-bit digits, the vectorized counting-sort
// formulation of [ZB91]: each pass histograms digits into per-processor
// buckets (privatization bounds the scatter contention at n/2^digitBits
// per bucket-group rather than per single counter), prefix-sums the bucket
// array, and permutes elements to their destinations with a
// contention-free scatter.
//
// maxKey bounds the key range; passes = ceil(bits(maxKey)/digitBits).
func RadixSort(vm *vector.Machine, v *vector.Vec, maxKey int64, digitBits uint) RadixSortResult {
	if digitBits == 0 || digitBits > 16 {
		panic(fmt.Sprintf("algos: RadixSort digitBits=%d out of (0,16]", digitBits))
	}
	if maxKey < 0 {
		panic("algos: RadixSort requires non-negative keys")
	}
	n := v.Len()
	procs := vm.Mach().Procs
	radix := 1 << digitBits

	// Working vectors.
	keys := vm.Alloc(n)
	vm.Map1(keys, v, func(x int64) int64 { return x }, 0)
	order := vm.Alloc(n) // current permutation: order[i] = original index
	vm.Iota(order)

	digits := vm.Alloc(n)
	bucketIdx := vm.Alloc(n)
	buckets := vm.Alloc(radix * procs)
	bucketPos := vm.Alloc(radix * procs)
	vm.Iota(bucketPos)
	offsets := vm.Alloc(radix * procs)
	elemOff := vm.Alloc(n)
	dest := vm.Alloc(n)
	nextKeys := vm.Alloc(n)
	nextOrder := vm.Alloc(n)

	passes := 0
	for shift := uint(0); ; shift += digitBits {
		if maxKey>>shift == 0 && shift > 0 {
			break
		}
		passes++

		// Extract digit of each key.
		mask := int64(radix - 1)
		sh := shift
		vm.Map1(digits, keys, func(x int64) int64 { return (x >> sh) & mask }, 2)

		// Per-processor bucket index: digit-major, processor-minor, with
		// elements assigned to processors in contiguous blocks (as [ZB91]
		// does). Blocked assignment is what makes each pass stable: for
		// equal digits, a smaller element index never lands in a larger
		// processor's bucket.
		for i := range bucketIdx.Data {
			bucketIdx.Data[i] = digits.Data[i]*int64(procs) + int64(i*procs/n)
		}
		vm.ChargeElementwise(n, 2)

		// Histogram. [ZB91]'s key trick: the per-virtual-processor counts
		// accumulate in vector registers (each lane owns its counters),
		// so the accumulation is an elementwise pass with NO memory
		// contention; only the final counter values are written out, one
		// store per counter (κ=1). This is what makes the radix sort the
		// contention-free EREW baseline the paper describes.
		for i := range buckets.Data {
			buckets.Data[i] = 0
		}
		for _, b := range bucketIdx.Data {
			buckets.Data[b]++
		}
		vm.ChargeElementwise(n, 2)
		vm.Scatter(buckets, buckets, bucketPos) // κ=1 store of the counters

		// Exclusive scan of the bucket array gives the first destination
		// of each (digit, processor) group.
		vm.ScanAdd(offsets, buckets)

		// Each element's destination: its group's offset plus its running
		// rank within the group. The running rank is computed in vector
		// registers on the real machine (the virtual-processor loop of
		// [ZB91]); here it is an elementwise pass.
		vm.Gather(elemOff, offsets, bucketIdx)
		running := make(map[int64]int64, radix*procs)
		for i := range dest.Data {
			b := bucketIdx.Data[i]
			dest.Data[i] = elemOff.Data[i] + running[b]
			running[b]++
		}
		vm.ChargeElementwise(n, 3)

		// Permute keys and order by dest — a permutation scatter (κ=1).
		vm.Scatter(nextKeys, keys, dest)
		vm.Scatter(nextOrder, order, dest)
		keys, nextKeys = nextKeys, keys
		order, nextOrder = nextOrder, order

		if shift+digitBits >= 63 {
			break
		}
	}

	res := RadixSortResult{
		Sorted: append([]int64(nil), keys.Data...),
		Ranks:  make([]int64, n),
		Passes: passes,
	}
	for pos, orig := range order.Data {
		res.Ranks[orig] = int64(pos)
	}
	return res
}
