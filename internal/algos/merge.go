package algos

import (
	"fmt"
	"sort"

	"dxbsp/internal/rng"
	"dxbsp/internal/vector"
)

// This file implements parallel merging, the remaining algorithm on the
// paper's "currently looking into" list (with multiprefix and list
// ranking): merge two sorted arrays by cross-ranking — each element's
// output position is its own index plus its rank in the other array.
//
// The ranks are computed with batched binary search, so the contention
// structure is the replicated-tree story of [GMR94a] again: with heavy
// duplication in the inputs, many searches traverse the same tree path
// and the tree root is hot; replication bounds it. The EREW baseline
// simply radix-sorts the concatenation.

// MergeResult reports a merge run.
type MergeResult struct {
	// Merged is the merged ascending sequence.
	Merged []int64
	// MaxContention is the largest per-location contention observed.
	MaxContention int
}

// MergeQRQW merges sorted a and b by cross-ranking with replicated-tree
// binary search (replication factor r). Elements of a precede equal
// elements of b, so the merge is stable. Keys must be non-negative (the
// tie-break uses key-1 queries).
func MergeQRQW(vm *vector.Machine, a, b []int64, r int, g *rng.Xoshiro256) MergeResult {
	checkSortedNonNegative("MergeQRQW", a)
	checkSortedNonNegative("MergeQRQW", b)
	na, nb := len(a), len(b)
	out := make([]int64, na+nb)
	res := MergeResult{}
	if na == 0 || nb == 0 {
		copy(out, a)
		copy(out[na:], b)
		res.Merged = out
		return res
	}

	// Rank of a[i] in b: number of b-elements strictly below a[i]
	// (so equal keys from b land after), i.e. count(b <= a[i]-1).
	treeB := BuildSearchTree(vm, b, r)
	qa := make([]int64, na)
	for i, v := range a {
		qa[i] = v - 1
	}
	vm.ChargeElementwise(na, 1)
	ra := treeB.Search(qa, g)

	// Rank of b[j] in a: count(a <= b[j]).
	treeA := BuildSearchTree(vm, a, r)
	rb := treeA.Search(b, g)

	// Scatter to output positions: pos(a[i]) = i + rank, pos(b[j]) = j +
	// rank. The destinations form a permutation (κ = 1).
	posA := vm.Alloc(na)
	for i := range posA.Data {
		posA.Data[i] = int64(i) + ra.Ranks[i] + 1
	}
	posB := vm.Alloc(nb)
	for j := range posB.Data {
		posB.Data[j] = int64(j) + rb.Ranks[j] + 1
	}
	vm.ChargeElementwise(na+nb, 2)

	dst := vm.Alloc(na + nb)
	av := vm.AllocInit(a)
	bv := vm.AllocInit(b)
	vm.Scatter(dst, av, posA)
	vm.Scatter(dst, bv, posB)
	copy(out, dst.Data)
	res.Merged = out
	res.MaxContention = vm.MaxLocContention()
	return res
}

// MergeEREW merges by radix-sorting the concatenation (a's elements
// first, so stability preserves the same tie order as MergeQRQW).
func MergeEREW(vm *vector.Machine, a, b []int64, maxKey int64) MergeResult {
	checkSortedNonNegative("MergeEREW", a)
	checkSortedNonNegative("MergeEREW", b)
	comb := vm.Alloc(len(a) + len(b))
	copy(comb.Data, a)
	copy(comb.Data[len(a):], b)
	vm.ChargeElementwise(len(a)+len(b), 1)
	sorted := RadixSort(vm, comb, maxKey, 11)
	return MergeResult{Merged: sorted.Sorted, MaxContention: vm.MaxLocContention()}
}

// SerialMerge is the reference stable merge.
func SerialMerge(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func checkSortedNonNegative(op string, xs []int64) {
	if !sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) {
		panic(fmt.Sprintf("algos: %s: input not sorted", op))
	}
	if len(xs) > 0 && xs[0] < 0 {
		panic(fmt.Sprintf("algos: %s: negative keys unsupported", op))
	}
}
