package algos

import (
	"testing"

	"dxbsp/internal/rng"
)

func TestRandomPermuteQRQWValid(t *testing.T) {
	for _, n := range []int{1, 2, 100, 4096} {
		vm := newVM()
		res := RandomPermuteQRQW(vm, n, rng.New(uint64(n)))
		if !IsPermutation(res.Perm) {
			t.Fatalf("n=%d: not a permutation: %v", n, res.Perm[:min(n, 20)])
		}
		if res.Rounds < 1 {
			t.Errorf("n=%d: rounds = %d", n, res.Rounds)
		}
	}
}

func TestRandomPermuteQRQWRoundsLogarithmic(t *testing.T) {
	vm := newVM()
	n := 1 << 14
	res := RandomPermuteQRQW(vm, n, rng.New(7))
	// With a slack factor of 2 the per-round success probability is a
	// constant, so rounds should be well under lg^2 n; 40 is generous.
	if res.Rounds > 40 {
		t.Errorf("rounds = %d for n=%d, expected O(lg n)", res.Rounds, n)
	}
}

func TestRandomPermuteQRQWContentionSmall(t *testing.T) {
	// Dart throwing's whole point: per-round contention is tiny
	// (Θ(lg n / lg lg n)), unlike a hot-spot pattern.
	vm := newVM()
	n := 1 << 14
	res := RandomPermuteQRQW(vm, n, rng.New(9))
	if res.MaxContention > 32 {
		t.Errorf("contention = %d, want small", res.MaxContention)
	}
}

func TestRandomPermuteQRQWDeterministicPerSeed(t *testing.T) {
	a := RandomPermuteQRQW(newVM(), 512, rng.New(3))
	b := RandomPermuteQRQW(newVM(), 512, rng.New(3))
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	c := RandomPermuteQRQW(newVM(), 512, rng.New(4))
	same := 0
	for i := range a.Perm {
		if a.Perm[i] == c.Perm[i] {
			same++
		}
	}
	if same == len(a.Perm) {
		t.Error("different seeds produced identical permutations")
	}
}

func TestRandomPermuteEREWValid(t *testing.T) {
	for _, n := range []int{1, 100, 4096} {
		vm := newVM()
		res := RandomPermuteEREW(vm, n, 40, rng.New(uint64(n)*7+1))
		if !IsPermutation(res.Perm) {
			t.Fatalf("n=%d: not a permutation", n)
		}
		if res.Rounds != 1 {
			t.Errorf("rounds = %d", res.Rounds)
		}
	}
}

func TestQRQWBeatsEREWInCycles(t *testing.T) {
	// The Figure 11 headline: the dart-throwing algorithm, with its
	// well-accounted small contention, costs fewer cycles than the full
	// radix sort.
	n := 1 << 14
	vmQ := newVM()
	RandomPermuteQRQW(vmQ, n, rng.New(11))
	vmE := newVM()
	RandomPermuteEREW(vmE, n, 40, rng.New(11))
	if vmQ.Cycles() >= vmE.Cycles() {
		t.Errorf("QRQW %v cycles should beat EREW %v cycles at n=%d", vmQ.Cycles(), vmE.Cycles(), n)
	}
}

func TestPermutePanics(t *testing.T) {
	for _, f := range []func(){
		func() { RandomPermuteQRQW(newVM(), 0, rng.New(1)) },
		func() { RandomPermuteEREW(newVM(), 0, 30, rng.New(1)) },
		func() { RandomPermuteEREW(newVM(), 10, 0, rng.New(1)) },
		func() { RandomPermuteEREW(newVM(), 10, 63, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int64{2, 0, 1}) {
		t.Error("valid rejected")
	}
	if IsPermutation([]int64{0, 0, 1}) {
		t.Error("duplicate accepted")
	}
	if IsPermutation([]int64{0, 3}) {
		t.Error("out of range accepted")
	}
	if !IsPermutation(nil) {
		t.Error("empty should be valid")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
