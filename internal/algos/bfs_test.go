package algos

import (
	"testing"
	"testing/quick"

	"dxbsp/internal/rng"
)

func TestBuildAdjSymmetric(t *testing.T) {
	gr := &Graph{N: 4, U: []int64{0, 1, 2}, V: []int64{1, 2, 2}} // includes self-loop 2-2
	a := BuildAdj(gr)
	if a.AdjPtr[4] != 4 { // 2 real edges, both directions
		t.Fatalf("total adjacency = %d, want 4", a.AdjPtr[4])
	}
	// Vertex 1 must list 0 and 2.
	nbrs := map[int64]bool{}
	for e := a.AdjPtr[1]; e < a.AdjPtr[2]; e++ {
		nbrs[a.Adj[e]] = true
	}
	if !nbrs[0] || !nbrs[2] {
		t.Errorf("vertex 1 neighbors wrong: %v", nbrs)
	}
	if a.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", a.MaxDegree())
	}
}

func TestBFSMatchesSerial(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{10, 15}, {200, 400}, {1000, 3000}} {
		gr := RandomGraph(tc.n, tc.m, rng.New(uint64(tc.n)))
		a := BuildAdj(gr)
		got := BFS(newVM(), a, 0)
		want := SerialBFS(a, 0)
		for v := range want {
			if got.Level[v] != want[v] {
				t.Fatalf("n=%d m=%d: Level[%d] = %d, want %d", tc.n, tc.m, v, got.Level[v], want[v])
			}
		}
	}
}

func TestBFSPath(t *testing.T) {
	a := BuildAdj(PathGraph(100))
	res := BFS(newVM(), a, 0)
	for v := 0; v < 100; v++ {
		if res.Level[v] != int64(v) {
			t.Fatalf("path Level[%d] = %d", v, res.Level[v])
		}
	}
	if res.Levels < 99 {
		t.Errorf("path Levels = %d", res.Levels)
	}
}

func TestBFSStarContention(t *testing.T) {
	// From a leaf: level 1 discovers the hub, level 2 discovers all other
	// leaves THROUGH the hub — but the hub's own discovery at level 1 is
	// the hot scatter when starting from the hub side:
	// from the hub, all leaves are discovered at once with contention 1
	// each; from a leaf, level 2's gather of the hub's adjacency and the
	// level gather at nbr=leaves are wide but contention comes from the
	// repeated hub reads at level 1 of every leaf... measure both.
	n := 4096
	a := BuildAdj(StarGraph(n))
	fromLeaf := BFS(newVM(), a, 1)
	if fromLeaf.Level[0] != 1 {
		t.Fatalf("hub level = %d", fromLeaf.Level[0])
	}
	for v := 2; v < n; v++ {
		if fromLeaf.Level[v] != 2 {
			t.Fatalf("leaf %d level = %d", v, fromLeaf.Level[v])
		}
	}
	fromHub := BFS(newVM(), a, 0)
	for v := 1; v < n; v++ {
		if fromHub.Level[v] != 1 {
			t.Fatalf("from hub: leaf level = %d", fromHub.Level[v])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	gr := &Graph{N: 5, U: []int64{0}, V: []int64{1}}
	a := BuildAdj(gr)
	res := BFS(newVM(), a, 0)
	if res.Level[1] != 1 {
		t.Errorf("Level[1] = %d", res.Level[1])
	}
	for _, v := range []int{2, 3, 4} {
		if res.Level[v] != -1 {
			t.Errorf("unreachable %d got level %d", v, res.Level[v])
		}
	}
}

func TestBFSIsolatedSource(t *testing.T) {
	gr := &Graph{N: 3, U: []int64{1}, V: []int64{2}}
	a := BuildAdj(gr)
	res := BFS(newVM(), a, 0)
	if res.Level[0] != 0 || res.Level[1] != -1 {
		t.Errorf("levels = %v", res.Level)
	}
}

func TestBFSPanics(t *testing.T) {
	a := BuildAdj(PathGraph(4))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad source")
		}
	}()
	BFS(newVM(), a, 99)
}

func TestBFSProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%150 + 2
		m := int(mRaw) % 300
		gr := RandomGraph(n, m, rng.New(seed))
		a := BuildAdj(gr)
		src := int64(int(seed) % n)
		if src < 0 {
			src = 0
		}
		got := BFS(newVM(), a, src)
		want := SerialBFS(a, src)
		for v := range want {
			if got.Level[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
