package algos

import (
	"testing"

	"dxbsp/internal/rng"
)

func TestCSRValidate(t *testing.T) {
	m := RandomCSR(100, 200, 5, 0, rng.New(1))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 500 {
		t.Errorf("NNZ = %d", m.NNZ())
	}
	bad := &CSR{Rows: 2, Cols: 2, RowPtr: []int64{0, 1}, ColIdx: []int64{0}, Val: []int64{1}}
	if err := bad.Validate(); err == nil {
		t.Error("short RowPtr accepted")
	}
	bad2 := &CSR{Rows: 1, Cols: 2, RowPtr: []int64{0, 1}, ColIdx: []int64{5}, Val: []int64{1}}
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestRandomCSRDenseColumn(t *testing.T) {
	rows := 1000
	for _, dl := range []int{0, 10, 100, 1000, 5000} {
		m := RandomCSR(rows, 512, 4, dl, rng.New(2))
		want := dl
		if want > rows {
			want = rows
		}
		got := m.MaxColumnFrequency()
		if got < want {
			t.Errorf("denseLen=%d: max column frequency %d < %d", dl, got, want)
		}
		// Random collisions can add a little, but not double.
		if want > 50 && got > want+rows/10 {
			t.Errorf("denseLen=%d: max column frequency %d >> %d", dl, got, want)
		}
	}
}

func TestSpMVMatchesSerial(t *testing.T) {
	g := rng.New(3)
	a := RandomCSR(200, 300, 6, 40, g)
	x := make([]int64, a.Cols)
	for i := range x {
		x[i] = int64(g.Intn(100))
	}
	vm := newVM()
	res := SpMV(vm, a, x)
	want := SerialSpMV(a, x)
	for r := range want {
		if res.Y[r] != want[r] {
			t.Fatalf("row %d: got %d, want %d", r, res.Y[r], want[r])
		}
	}
	if vm.Cycles() <= 0 {
		t.Error("no cycles charged")
	}
}

func TestSpMVEmptyRows(t *testing.T) {
	// Matrix with empty rows: their y must be 0.
	a := &CSR{
		Rows: 4, Cols: 3,
		RowPtr: []int64{0, 2, 2, 3, 3},
		ColIdx: []int64{0, 1, 2},
		Val:    []int64{1, 2, 3},
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	x := []int64{10, 20, 30}
	res := SpMV(newVM(), a, x)
	want := []int64{50, 0, 90, 0}
	for i := range want {
		if res.Y[i] != want[i] {
			t.Fatalf("Y = %v, want %v", res.Y, want)
		}
	}
}

func TestSpMVContentionTracksDenseColumn(t *testing.T) {
	g := rng.New(4)
	rows := 4096
	var prev int
	for _, dl := range []int{1, 64, 512, 4096} {
		a := RandomCSR(rows, 1024, 4, dl, g.Split())
		res := SpMV(newVM(), a, make([]int64, a.Cols))
		if res.GatherContention < dl {
			t.Errorf("denseLen=%d: gather contention %d", dl, res.GatherContention)
		}
		if res.GatherContention < prev {
			t.Errorf("contention not monotone at denseLen=%d", dl)
		}
		prev = res.GatherContention
	}
}

func TestSpMVPredictionsDiverge(t *testing.T) {
	// The Figure 12 shape: BSP's prediction ignores the dense column;
	// the (d,x)-BSP prediction grows with it.
	g := rng.New(5)
	rows := 4096
	small := SpMV(newVM(), RandomCSR(rows, 1024, 4, 1, g.Split()), make([]int64, 1024))
	big := SpMV(newVM(), RandomCSR(rows, 1024, 4, rows, g.Split()), make([]int64, 1024))
	if big.PredictedBSP > small.PredictedBSP*1.05 {
		t.Errorf("BSP prediction should be ~flat: %v vs %v", small.PredictedBSP, big.PredictedBSP)
	}
	if big.PredictedDXBSP < 5*small.PredictedDXBSP {
		t.Errorf("(d,x)-BSP prediction should grow: %v vs %v", small.PredictedDXBSP, big.PredictedDXBSP)
	}
}

func TestSpMVPanics(t *testing.T) {
	a := RandomCSR(10, 10, 2, 0, rng.New(6))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong x length")
		}
	}()
	SpMV(newVM(), a, make([]int64, 5))
}

func TestRandomCSRPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RandomCSR(0, 10, 1, 0, rng.New(1))
}
