// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// All experiments in this repository must be exactly reproducible, so we
// avoid math/rand's global state and instead pass explicit generator values.
// Two generators are provided:
//
//   - SplitMix64: a tiny 64-bit generator, mainly used for seeding and for
//     splitting one seed into many independent streams.
//   - Xoshiro256: xoshiro256**, a high-quality general-purpose generator.
//
// Both are from the public-domain reference implementations by Blackman and
// Vigna, transcribed to Go.
package rng

import "math/bits"

// SplitMix64 is a 64-bit generator with a single word of state. Its primary
// use here is turning one user-provided seed into arbitrarily many
// well-distributed seeds for other generators (one per processor stream, one
// per experiment trial, and so on).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** generator: 256 bits of state, period
// 2^256-1, and excellent statistical quality for non-cryptographic use.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via SplitMix64, per
// the authors' recommendation (the raw seed must not be used directly
// because an all-zero state is invalid).
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var g Xoshiro256
	for i := range g.s {
		g.s[i] = sm.Next()
	}
	// Astronomically unlikely, but the all-zero state is the one invalid
	// state for xoshiro; nudge it.
	if g.s[0]|g.s[1]|g.s[2]|g.s[3] == 0 {
		g.s[0] = 0x9e3779b97f4a7c15
	}
	return &g
}

// Clone returns an independent copy of g: the clone and the original
// produce the same stream from this point on without affecting each other.
// Experiment sweep points stash a clone of their input generator so that
// running the same point twice yields identical results.
func (g *Xoshiro256) Clone() *Xoshiro256 {
	c := *g
	return &c
}

// Split returns a new generator with a stream independent of g, derived
// deterministically from g's current state. Splitting then drawing from
// both generators yields streams that do not overlap in practice.
func (g *Xoshiro256) Split() *Xoshiro256 {
	return New(g.Uint64() ^ 0xd2b74407b1ce6e93)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (g *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(g.s[1]*5, 7) * 9
	t := g.s[1] << 17

	g.s[2] ^= g.s[0]
	g.s[3] ^= g.s[1]
	g.s[1] ^= g.s[2]
	g.s[0] ^= g.s[3]
	g.s[2] ^= t
	g.s[3] = bits.RotateLeft64(g.s[3], 45)

	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (g *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return g.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(g.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(g.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n) as an int. It panics if n <= 0.
func (g *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(g.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (g *Xoshiro256) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) via Fisher-Yates.
func (g *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the n elements addressed by swap.
func (g *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		swap(i, j)
	}
}
