package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("iteration %d: %#x != %#x", i, av, bv)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the canonical C implementation.
	s := NewSplitMix64(1234567)
	got := []uint64{s.Next(), s.Next(), s.Next()}
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d: got %#x want %#x", i, got[i], want[i])
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("iteration %d: %#x != %#x", i, av, bv)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(99)
	b := a.Split()
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[a.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 1000; i++ {
		if seen[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("split stream collided with parent %d times", collisions)
	}
}

func TestUint64nRange(t *testing.T) {
	g := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 5} {
		for i := 0; i < 200; i++ {
			if v := g.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for n == %d", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; very loose threshold to keep the
	// test robust while still catching gross bias (e.g. modulo bias).
	g := New(12345)
	const buckets = 10
	const samples = 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[g.Uint64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; p=0.001 critical value is ~27.9.
	if chi2 > 27.9 {
		t.Errorf("chi-squared %.2f exceeds 27.9; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(8)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %.4f far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(5)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := g.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	// Property: for any seed and size, Perm returns a valid permutation.
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 512)
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	g := New(77)
	a := []int{1, 2, 2, 3, 5, 8, 13, 21}
	sumBefore := 0
	for _, v := range a {
		sumBefore += v
	}
	g.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	sumAfter := 0
	for _, v := range a {
		sumAfter += v
	}
	if sumBefore != sumAfter {
		t.Errorf("shuffle changed contents: %v", a)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	g := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = g.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	g := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = g.Uint64n(1000003)
	}
	_ = sink
}

func TestCloneReplaysStream(t *testing.T) {
	g := New(42)
	g.Uint64() // advance off the seed state
	c := g.Clone()
	for i := 0; i < 100; i++ {
		if a, b := g.Uint64(), c.Uint64(); a != b {
			t.Fatalf("draw %d: original %d, clone %d", i, a, b)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := New(7)
	c := g.Clone()
	g.Uint64() // advancing the original must not move the clone
	c2 := g.Clone()
	if a, b := c.Uint64(), c2.Uint64(); a == b {
		t.Fatalf("clone shares state with original: %d == %d", a, b)
	}
}
