package dxbsp

import (
	"io"
	"strings"
	"testing"

	"dxbsp/internal/experiments"
)

// TestEveryExperimentHasABench ensures the bench harness and the
// experiment registry stay in lockstep: every registered experiment must
// be runnable at bench scale, and the IDs the benches reference must
// resolve. (The benchmarks themselves are exercised by
// `go test -bench=.`; this test guards the mapping under plain
// `go test`.)
func TestEveryExperimentHasABench(t *testing.T) {
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			cfg := experiments.QuickConfig()
			r := e.MustRun(cfg)
			var b strings.Builder
			r.Render(&b)
			if b.Len() == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

// TestBenchConfigScale pins the harness configuration: bench runs must be
// large enough to show the paper's shapes (the contention crossover must
// exist within the sweep) while staying fast.
func TestBenchConfigScale(t *testing.T) {
	cfg := benchConfig()
	if cfg.N < 1<<12 {
		t.Errorf("bench N = %d too small to exhibit the crossover", cfg.N)
	}
	e, ok := experiments.Lookup("F2")
	if !ok {
		t.Fatal("F2 missing")
	}
	e.MustRun(cfg).Render(io.Discard)
}
