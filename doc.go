// Package dxbsp reproduces "Accounting for Memory Bank Contention and
// Delay in High-Bandwidth Multiprocessors" (Blelloch, Gibbons, Matias,
// Zagha; SPAA 1995): the (d,x)-BSP machine model, a cycle-level memory
// bank simulator standing in for the Cray C90/J90, universal hashing for
// pseudo-random bank maps, a QRQW PRAM emulation layer, and the paper's
// algorithm studies.
//
// Start with internal/core for the model, internal/sim for the simulator,
// and cmd/dxbench to regenerate every table and figure. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package dxbsp
