module dxbsp

go 1.22
