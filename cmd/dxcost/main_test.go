package main

import (
	"strings"
	"testing"
)

const wl = `{
  "name": "t",
  "supersteps": [
    {"name": "hot", "pattern": {"kind": "contention", "n": 4096, "k": 512}},
    {"name": "calc", "compute": 100}
  ]
}`

func TestRunFromStdin(t *testing.T) {
	var out, errb strings.Builder
	code := run(nil, strings.NewReader(wl), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"hot", "calc", "TOTAL", "(d,x)-BSP", "underpredicts"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-simulate", "../../testdata/workload.json"}, nil, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "simulated") {
		t.Errorf("missing simulated column:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "example-irregular-app") {
		t.Error("workload name missing")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-machine", "ENIAC"}, strings.NewReader(wl), &out, &errb); code != 2 {
		t.Errorf("bad machine: %d", code)
	}
	errb.Reset()
	if code := run(nil, strings.NewReader("{"), &out, &errb); code != 2 {
		t.Errorf("bad json: %d", code)
	}
	if code := run([]string{"/nonexistent/file.json"}, nil, &out, &errb); code != 2 {
		t.Errorf("missing file: %d", code)
	}
	if code := run([]string{"-nope"}, nil, &out, &errb); code != 2 {
		t.Errorf("bad flag: %d", code)
	}
}

// TestRunSurrogateColumn: -surrogate adds the closed-form column, and
// with -simulate the two land close for a contention-bound workload (the
// hot superstep is drain-dominated, where the closed form is exact).
func TestRunSurrogateColumn(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-surrogate", "-simulate"}, strings.NewReader(wl), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "surrogate") {
		t.Errorf("missing surrogate column:\n%s", out.String())
	}
}
