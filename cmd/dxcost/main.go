// Command dxcost costs a declarative workload description (JSON) under
// the BSP, (d,x)-BSP and (d,x)-LogP models, optionally validating against
// the bank simulator — performance modeling for a sketched algorithm
// without writing Go.
//
// Usage:
//
//	dxcost workload.json
//	dxcost -machine C90 -simulate < workload.json
//	dxcost -machine C90 -surrogate < workload.json   # closed form, no simulation
//
// Workload format (see internal/program):
//
//	{
//	  "name": "my-algorithm",
//	  "seed": 7,
//	  "supersteps": [
//	    {"name": "gather x", "pattern": {"kind": "zipf", "n": 65536, "m": 65536, "s": 1.1}},
//	    {"name": "hot hook", "pattern": {"kind": "contention", "n": 65536, "k": 4096}, "repeat": 10},
//	    {"name": "local",    "compute": 20000}
//	  ]
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dxbsp/internal/core"
	"dxbsp/internal/program"
	"dxbsp/internal/tablefmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with injectable streams, for testing.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dxcost", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		machine  = fs.String("machine", "J90", "machine name (J90, C90, or a Table 1 entry)")
		overhead = fs.Float64("o", 0, "per-message overhead for the (d,x)-LogP column")
		simulate = fs.Bool("simulate", false, "also run each superstep through the bank simulator")
		surr     = fs.Bool("surrogate", false, "also predict each superstep with the closed-form surrogate")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m, ok := core.LookupMachine(*machine)
	if !ok {
		return fail(stderr, "unknown machine %q", *machine)
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return fail(stderr, "%v", err)
		}
		defer f.Close()
		in = f
	}
	p, err := program.Parse(in)
	if err != nil {
		return fail(stderr, "%v", err)
	}
	rep, err := program.CostWith(p, m, *overhead, *simulate, *surr)
	if err != nil {
		return fail(stderr, "%v", err)
	}

	headers := []string{"superstep", "xN", "requests", "κ", "BSP", "(d,x)-BSP", "(d,x)-LogP"}
	if *simulate {
		headers = append(headers, "simulated")
	}
	if *surr {
		headers = append(headers, "surrogate")
	}
	t := tablefmt.New(fmt.Sprintf("%s on %s", p.Name, m), headers...)
	for _, sc := range rep.Steps {
		row := []interface{}{sc.Name, sc.Repeat, sc.Requests, sc.Kappa, sc.BSP, sc.DXBSP, sc.DXLogP}
		if *simulate {
			row = append(row, sc.Sim)
		}
		if *surr {
			row = append(row, sc.Surrogate)
		}
		t.AddRow(row...)
	}
	total := []interface{}{"TOTAL", "", "", "", rep.TotalBSP, rep.TotalDXBSP, rep.TotalDXLogP}
	if *simulate {
		total = append(total, rep.TotalSim)
	}
	if *surr {
		total = append(total, rep.TotalSurrogate)
	}
	t.AddRow(total...)
	t.Render(stdout)

	if rep.TotalBSP > 0 {
		fmt.Fprintf(stdout, "\nBSP underpredicts by %.2fx on this workload.\n", rep.TotalDXBSP/rep.TotalBSP)
	}
	return 0
}

func fail(stderr io.Writer, format string, args ...interface{}) int {
	fmt.Fprintf(stderr, "dxcost: "+format+"\n", args...)
	return 2
}
