package main

import (
	"testing"

	"dxbsp/internal/core"
)

func TestBankMapSelection(t *testing.T) {
	m := core.J90()
	for _, name := range []string{"interleave", "linear", "quadratic", "cubic"} {
		bm, err := bankMap(m, name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bm.NumBanks() != m.Banks {
			t.Errorf("%s: NumBanks = %d, want %d", name, bm.NumBanks(), m.Banks)
		}
		// Mapping must be total and in range.
		for a := uint64(0); a < 1000; a++ {
			if b := bm.Bank(a); b < 0 || b >= m.Banks {
				t.Fatalf("%s: Bank(%d) = %d", name, a, b)
			}
		}
	}
	if _, err := bankMap(m, "sha256", 1); err == nil {
		t.Error("unknown hash accepted")
	}
}

func TestBankMapDeterministicPerSeed(t *testing.T) {
	m := core.J90()
	a, _ := bankMap(m, "linear", 7)
	b, _ := bankMap(m, "linear", 7)
	for x := uint64(0); x < 100; x++ {
		if a.Bank(x) != b.Bank(x) {
			t.Fatal("same seed gave different maps")
		}
	}
}
