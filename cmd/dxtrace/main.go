// Command dxtrace reads a memory address trace (one decimal or 0x-hex
// address per line; '#' comments and blank lines ignored) and reports its
// contention profile and predicted cost on each experiment machine. Use it
// to analyze traces captured from real applications the way the paper
// analyzed patterns extracted from the connected-components code.
//
// Usage:
//
//	dxtrace trace.txt
//	dxtrace -machine J90 -hash linear < trace.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/rng"
	"dxbsp/internal/sim"
	"dxbsp/internal/trace"
)

func main() {
	var (
		machine = flag.String("machine", "", "restrict to one machine (default: J90 and C90)")
		hash    = flag.String("hash", "interleave", "bank map: interleave, linear, quadratic, cubic")
		seed    = flag.Uint64("seed", 1, "hash draw seed")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	}
	addrs, err := trace.Read(in)
	if err != nil {
		fail("%v", err)
	}
	if len(addrs) == 0 {
		fail("empty trace")
	}

	machines := []core.Machine{core.J90(), core.C90()}
	if *machine != "" {
		m, ok := core.LookupMachine(*machine)
		if !ok {
			fail("unknown machine %q", *machine)
		}
		machines = []core.Machine{m}
	}

	for _, m := range machines {
		bm, err := bankMap(m, *hash, *seed)
		if err != nil {
			fail("%v", err)
		}
		pt := core.NewPattern(addrs, m.Procs)
		prof := core.ComputeProfile(pt, bm)
		r, err := sim.Run(sim.Config{Machine: m, BankMap: bm}, pt)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("%s: n=%d h=%d k=%d κ=%d distinct=%d\n",
			m.Name, prof.N, prof.MaxH, prof.MaxK, prof.MaxLoc, prof.DistinctLocs)
		fmt.Printf("  BSP=%.0f  (d,x)-BSP=%.0f  simulated=%.0f cycles (%.3f cyc/elem)\n",
			m.PredictBSP(prof), m.PredictDXBSP(prof), r.Cycles,
			core.CyclesPerElement(r.Cycles, prof.N, m.Procs))
	}
}

func bankMap(m core.Machine, name string, seed uint64) (core.BankMap, error) {
	if name == "interleave" {
		return core.InterleaveMap{Banks: m.Banks}, nil
	}
	bits := hashfn.Log2Banks(m.Banks)
	g := rng.New(seed)
	switch name {
	case "linear":
		return hashfn.Map{F: hashfn.NewLinear(bits, g)}, nil
	case "quadratic":
		return hashfn.Map{F: hashfn.NewQuadratic(bits, g)}, nil
	case "cubic":
		return hashfn.Map{F: hashfn.NewCubic(bits, g)}, nil
	}
	return nil, fmt.Errorf("unknown hash %q", name)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dxtrace: "+format+"\n", args...)
	os.Exit(2)
}
