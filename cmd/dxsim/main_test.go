package main

import "testing"

func TestNextPow2(t *testing.T) {
	cases := map[uint64]uint64{
		1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024, 1024: 1024,
	}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
