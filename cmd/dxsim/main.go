// Command dxsim runs a single bulk scatter/gather through the bank
// simulator and the (d,x)-BSP predictors and reports the contention
// profile, model predictions, and simulated cycles.
//
// Usage:
//
//	dxsim -machine J90 -pattern contention -k 1024 -n 65536
//	dxsim -machine C90 -pattern uniform -m 4096
//	dxsim -machine J90 -pattern entropy -rounds 4 -hash linear
//	dxsim -machine J90 -pattern stride -stride 512
//	dxsim -machine J90 -pattern stride -stride 3 -discipline dram
//	dxsim -journal runs/ckpt/journal.shard-0-of-4.jsonl
//
// Patterns: contention (k duplicates/location), uniform (over [0,m)),
// entropy (Thearling–Smith with -rounds AND rounds), stride, allsame,
// permutation, worstbank, zipf (-s exponent over [0,m)).
// Hash maps: interleave (default), linear, quadratic, cubic.
// Disciplines: fifo (default), dram, regulated, gpu (word-interleaved
// banks, warp-synchronous issue) — each run with its documented defaults
// and an extra per-discipline report line.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"dxbsp/internal/core"
	"dxbsp/internal/hashfn"
	"dxbsp/internal/patterns"
	"dxbsp/internal/rng"
	"dxbsp/internal/runner"
	"dxbsp/internal/sim"
	"dxbsp/internal/stats"
)

func main() {
	var (
		machine  = flag.String("machine", "J90", "machine name (J90, C90, or a Table 1 entry)")
		pattern  = flag.String("pattern", "uniform", "access pattern family")
		n        = flag.Int("n", 1<<16, "number of requests")
		k        = flag.Int("k", 16, "location contention for -pattern contention")
		m        = flag.Uint64("m", 1<<20, "address range for -pattern uniform/entropy")
		rounds   = flag.Int("rounds", 2, "AND rounds for -pattern entropy")
		stride   = flag.Uint64("stride", 1, "stride for -pattern stride")
		hash     = flag.String("hash", "interleave", "bank map: interleave, linear, quadratic, cubic")
		seed     = flag.Uint64("seed", 1, "random seed")
		sections = flag.Bool("sections", false, "model network section bandwidth")
		window   = flag.Int("window", 0, "max outstanding requests per processor (0 = unlimited)")
		discName = flag.String("discipline", "fifo", "bank service discipline: fifo, dram, regulated, gpu")
		zipfS    = flag.Float64("s", 1.1, "Zipf exponent for -pattern zipf")
		metricsF = flag.Bool("metrics", false, "append the observability report: bank heatmap + metric series")
		journalF = flag.String("journal", "", "inspect a checkpoint journal file and exit")
	)
	flag.Parse()

	if *journalF != "" {
		inspectJournal(*journalF)
		return
	}

	mach, ok := core.LookupMachine(*machine)
	if !ok {
		fail("unknown machine %q", *machine)
	}
	disc, err := sim.ParseDiscipline(*discName)
	if err != nil {
		fail("%v", err)
	}
	g := rng.New(*seed)

	var addrs []uint64
	switch *pattern {
	case "contention":
		if *n%*k != 0 {
			fail("-k must divide -n")
		}
		addrs = patterns.Contention(*n, *k, 1)
	case "uniform":
		addrs = patterns.Uniform(*n, *m, g)
	case "entropy":
		addrs = patterns.Entropy(*n, nextPow2(*m), *rounds, g)
	case "stride":
		addrs = patterns.Strided(*n, 0, *stride)
	case "allsame":
		addrs = patterns.AllSame(*n, 0)
	case "permutation":
		addrs = patterns.Permutation(*n, g)
	case "worstbank":
		addrs = patterns.WorstCaseBank(*n, mach.Banks)
	case "zipf":
		addrs = patterns.Zipf(*n, int(*m), *zipfS, g)
	default:
		fail("unknown pattern %q", *pattern)
	}

	var bm core.BankMap = core.InterleaveMap{Banks: mach.Banks}
	if disc == sim.GPUShared {
		// GPU shared memory is word-interleaved: bank = (addr/4) % banks.
		bm = core.GPUSharedMap{Banks: mach.Banks}
	}
	if *hash != "interleave" {
		bits := hashfn.Log2Banks(mach.Banks)
		switch *hash {
		case "linear":
			bm = hashfn.Map{F: hashfn.NewLinear(bits, g)}
		case "quadratic":
			bm = hashfn.Map{F: hashfn.NewQuadratic(bits, g)}
		case "cubic":
			bm = hashfn.Map{F: hashfn.NewCubic(bits, g)}
		default:
			fail("unknown hash %q", *hash)
		}
	}

	pt := core.NewPattern(addrs, mach.Procs)
	prof := core.ComputeProfile(pt, bm)
	var obs *runner.Observer
	cfg := sim.Config{Machine: mach, BankMap: bm, UseSections: *sections, Window: *window,
		Bank: sim.BankConfig{Discipline: disc}}
	if *metricsF {
		obs = runner.NewObserver()
		cfg.Probe = obs
	}
	r, err := sim.Run(cfg, pt)
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("machine    %v\n", mach)
	fmt.Printf("pattern    %s, n=%d\n", *pattern, prof.N)
	fmt.Printf("profile    h=%d  bank k=%d  location κ=%d  distinct=%d  bank-load gini=%.3f\n",
		prof.MaxH, prof.MaxK, prof.MaxLoc, prof.DistinctLocs, stats.Gini(prof.BankLoads))
	spectrum := core.LocationSpectrum(pt)
	levels := make([]int, 0, len(spectrum))
	for c := range spectrum {
		levels = append(levels, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	if len(levels) > 4 {
		levels = levels[:4]
	}
	fmt.Printf("spectrum   ")
	for _, c := range levels {
		fmt.Printf("κ=%d ×%d  ", c, spectrum[c])
	}
	fmt.Println()
	fmt.Printf("predicted  BSP=%.0f  (d,x)-BSP=%.0f cycles\n",
		mach.PredictBSP(prof), mach.PredictDXBSP(prof))
	fmt.Printf("simulated  %.0f cycles  (%.3f cycles/element, ratio to (d,x)-BSP %.3f)\n",
		r.Cycles, core.CyclesPerElement(r.Cycles, prof.N, mach.Procs),
		r.Cycles/mach.PredictDXBSP(prof))
	fmt.Printf("banks      max served=%d  max queue=%d  busy=%.0f cycles total\n",
		r.MaxBankServed, r.MaxBankQueue, r.BankBusy)
	if *sections {
		fmt.Printf("sections   max queue=%d\n", r.MaxSectionQueue)
	}
	switch disc {
	case sim.DRAM:
		fmt.Printf("dram       row hits=%d (%.1f%%)  row conflicts=%d\n",
			r.RowHits, 100*float64(r.RowHits)/float64(prof.N), r.RowConflicts)
	case sim.Regulated:
		fmt.Printf("regulated  throttle stalls=%d  stall cycles=%.0f (%.2f/request)\n",
			r.ThrottleStalls, r.ThrottleStallCycles, r.ThrottleStallCycles/float64(prof.N))
	case sim.GPUShared:
		fmt.Printf("gpu        warp replays=%d (%.2f/warp of %d lanes)\n",
			r.WarpReplays, float64(r.WarpReplays)/(float64(prof.N)/32), 32)
	}
	if obs != nil {
		fmt.Println()
		if err := obs.WriteReport(os.Stdout); err != nil {
			fail("%v", err)
		}
	}
}

// inspectJournal summarizes a checkpoint journal: who produced it (shard,
// worker, or a plain single-process run), which sweep configuration it
// fingerprints, and how many records it holds. Corrupt records are counted
// and warned about on stderr with their byte offsets, same as on resume —
// this is the quickest way to triage a journal a sweep refuses to merge.
func inspectJournal(path string) {
	if _, err := os.Stat(path); err != nil {
		fail("%v", err)
	}
	entries, hdr, skipped, err := runner.ReadJournalFile(path, os.Stderr)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("journal    %s\n", path)
	switch {
	case hdr == nil:
		fmt.Printf("producer   none recorded (plain -checkpoint run or merged journal)\n")
	case hdr.Worker != "":
		fmt.Printf("producer   worker %q\n", hdr.Worker)
	case hdr.Of > 0:
		fmt.Printf("producer   shard %d/%d\n", hdr.Shard, hdr.Of)
	default:
		fmt.Printf("producer   unsharded\n")
	}
	if hdr != nil && hdr.Config != "" {
		fmt.Printf("config     %s\n", hdr.Config)
	}
	pats := map[string]struct{}{}
	for k := range entries {
		if i := strings.LastIndex(k, "|pt="); i >= 0 {
			pats[k[i+4:]] = struct{}{}
		}
	}
	fmt.Printf("records    %d  (%d corrupt skipped, %d distinct patterns)\n",
		len(entries), skipped, len(pats))
	if skipped > 0 {
		os.Exit(1)
	}
}

func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p *= 2
	}
	return p
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dxsim: "+format+"\n", args...)
	os.Exit(2)
}
