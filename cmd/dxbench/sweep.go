package main

// Distributed sweep modes of dxbench, built on internal/sweep:
//
//	dxbench -shard 1/4 -checkpoint dir ...   # static: run every 4th point
//	dxbench -merge dir                       # merge shard/worker journals
//	dxbench -coordinate -checkpoint dir ...  # publish manifest, supervise,
//	                                         # merge, render final output
//	dxbench -worker -checkpoint dir ...      # claim ranges, journal sims
//
// Shard and worker runs produce journals, not tables: their stdout stays
// empty and a summary goes to stderr. The coordinator renders the final
// byte-identical output after merging, by replaying the merged journal
// through the ordinary experiment path with zero re-executed simulations.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"dxbsp/internal/experiments"
	"dxbsp/internal/faults"
	"dxbsp/internal/runner"
	"dxbsp/internal/sweep"
)

// sweepEnv carries the shared setup the sweep modes need from run().
type sweepEnv struct {
	cfg      experiments.Config
	todo     []experiments.Experiment
	r        *runner.Runner
	injector *faults.Injector
	dir      string
	resume   bool
	leaseTTL time.Duration
	chunk    int
	workerID string
	format   string
	logx     bool
	logy     bool
	timing   bool
	stdout   io.Writer
	stderr   io.Writer
}

// attachJournal installs j as the run's checkpoint store and wires the
// chaos hooks (record corruption / torn writes, kill-after-N-appends).
func (env *sweepEnv) attachJournal(j *runner.Journal) {
	env.r.Cache.Journal = j
	if env.injector != nil {
		j.Corrupt = env.injector.CorruptRecord
		j.OnAppend = env.injector.KillOnAppend
	}
}

// runMergeMode merges every shard and worker journal in dir into the
// canonical journal.jsonl.
func runMergeMode(dir string, stdout, stderr io.Writer) int {
	st, err := sweep.Merge(dir, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "dxbench: %v\n", err)
		return exitHard
	}
	fmt.Fprintf(stdout, "merged %d record(s) from %d journal(s) into journal.jsonl (%d duplicate(s), %d skipped)\n",
		st.Records, st.Files, st.Duplicates, st.Skipped)
	return exitOK
}

// runShardMode executes shard sh of every selected experiment, journaling
// into the shard's own journal file. Tables are not rendered — a shard
// sees only a cross-section of each sweep; the merged journal plus a
// -resume render reconstructs the full byte-identical output.
func runShardMode(ctx context.Context, env *sweepEnv, sh sweep.Shard) int {
	journal, err := runner.OpenJournalFile(env.dir, runner.ShardJournalName(sh.Index, sh.Count), env.resume, env.stderr)
	if err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	defer journal.Close()
	hdr := runner.JournalHeader{Shard: sh.Index, Of: sh.Count, Config: sweep.Fingerprint(env.cfg, env.todo)}
	if err := journal.WriteHeader(hdr); err != nil {
		// A resumed shard journal written under a different shard spec or
		// sweep configuration: a usage error, not a silent zero-point run.
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	env.attachJournal(journal)

	points, failed := 0, 0
	for _, e := range env.todo {
		se := sweep.Apply(e, sh)
		if len(se.Points(env.cfg)) == 0 {
			continue
		}
		res, err := env.r.RunExperiment(ctx, se, env.cfg)
		if err != nil {
			fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
			return exitHard
		}
		points += res.Stats.Points
		failed += res.Stats.Failed
	}
	if err := journal.Sync(); err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	js := journal.Stats()
	env.r.Events.Emit(runner.Event{Type: "shard_done", Shard: sh.String(), Points: points, Failed: failed,
		CheckpointAppended: js.Appended, CheckpointRestored: js.Restored, CheckpointSkipped: js.Skipped})
	fmt.Fprintf(env.stderr, "shard %s: %d point(s), %d sim(s) journaled, %d restored, %d corrupt skipped\n",
		sh, points, js.Appended, js.Restored, js.Skipped)
	if failed > 0 {
		fmt.Fprintf(env.stderr, "dxbench: shard completed degraded: %d point(s) failed\n", failed)
		return exitDegraded
	}
	return exitOK
}

// waitManifest polls dir until the coordinator's manifest appears.
func waitManifest(ctx context.Context, dir string) (sweep.Manifest, error) {
	for {
		m, err := sweep.LoadManifest(dir)
		if err == nil {
			return m, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return sweep.Manifest{}, err
		}
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
			return sweep.Manifest{}, fmt.Errorf("waiting for manifest in %s: %w", dir, ctx.Err())
		}
	}
}

// runWorkerMode joins the sweep coordinated over env.dir: wait for the
// manifest, verify this process is configured identically, then claim and
// execute ranges until the sweep completes.
func runWorkerMode(ctx context.Context, env *sweepEnv) int {
	man, err := waitManifest(ctx, env.dir)
	if err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	if err := man.VerifyConfig(env.cfg, env.todo); err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	// Resume this worker's own journal: a restarted worker (same id)
	// skips every simulation it already journaled.
	journal, err := runner.OpenJournalFile(env.dir, runner.WorkerJournalName(env.workerID), true, env.stderr)
	if err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	defer journal.Close()
	if err := journal.WriteHeader(runner.JournalHeader{Worker: env.workerID, Config: man.Config}); err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	env.attachJournal(journal)

	byID := make(map[string]experiments.Experiment, len(env.todo))
	for _, e := range env.todo {
		byID[e.ID] = e
	}
	failed := 0
	stall := env.injector != nil && env.injector.Spec().StallHeartbeat
	w := &sweep.Worker{
		Dir:            &sweep.Dir{Path: env.dir, TTL: env.leaseTTL},
		Manifest:       man,
		ID:             env.workerID,
		Events:         env.r.Events,
		StallHeartbeat: stall,
		Exec: func(ctx context.Context, rg sweep.Range) error {
			e, ok := byID[rg.Experiment]
			if !ok {
				return fmt.Errorf("manifest names experiment %q this worker does not have", rg.Experiment)
			}
			res, err := env.r.RunExperiment(ctx, sweep.ApplyRange(e, rg.Start, rg.End), env.cfg)
			if err != nil {
				return err
			}
			// Degraded points stay the worker's problem to report; the
			// range is still done — a deterministic permanent failure would
			// kill every worker that reclaims it, wedging the sweep.
			failed += res.Stats.Failed
			return journal.Sync()
		},
	}
	ranges, err := w.Run(ctx)
	if err != nil {
		fmt.Fprintf(env.stderr, "dxbench: worker %s: %v\n", env.workerID, err)
		return exitHard
	}
	js := journal.Stats()
	fmt.Fprintf(env.stderr, "worker %s: %d range(s) completed, %d sim(s) journaled, %d restored\n",
		env.workerID, ranges, js.Appended, js.Restored)
	if failed > 0 {
		fmt.Fprintf(env.stderr, "dxbench: worker completed degraded: %d point(s) failed\n", failed)
		return exitDegraded
	}
	return exitOK
}

// runCoordinatorMode publishes the manifest, supervises workers (reclaims
// expired leases) until every range is done, merges the journals, and
// renders the full suite from the merged journal — output byte-identical
// to a single-process run, with zero re-executed simulations.
func runCoordinatorMode(ctx context.Context, env *sweepEnv) int {
	man, err := sweep.WriteManifest(env.dir, sweep.BuildManifest(env.cfg, env.todo, env.chunk))
	if err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	coord := &sweep.Coordinator{
		Dir:      &sweep.Dir{Path: env.dir, TTL: env.leaseTTL},
		Manifest: man,
		Events:   env.r.Events,
		Progress: env.stderr,
	}
	st, err := coord.Run(ctx)
	if err != nil {
		fmt.Fprintf(env.stderr, "dxbench: coordinator: %v\n", err)
		return exitHard
	}
	ms, err := sweep.Merge(env.dir, env.stderr)
	if err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	env.r.Events.Emit(runner.Event{Type: "merge_done", Points: ms.Records, Reclaimed: st.Reclaimed,
		CheckpointSkipped: ms.Skipped})
	fmt.Fprintf(env.stderr, "sweep: merged %d record(s) from %d journal(s) (%d duplicate(s), %d skipped), %d lease(s) reclaimed\n",
		ms.Records, ms.Files, ms.Duplicates, ms.Skipped, st.Reclaimed)

	// Final render: replay the merged journal through the ordinary path.
	journal, err := runner.OpenJournal(env.dir, true, env.stderr)
	if err != nil {
		fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
		return exitHard
	}
	defer journal.Close()
	env.attachJournal(journal)
	results := make([]runner.Result, 0, len(env.todo))
	for i, e := range env.todo {
		if i > 0 {
			fmt.Fprintln(env.stdout)
		}
		res, err := env.r.RunExperiment(ctx, e, env.cfg)
		if err != nil {
			fmt.Fprintf(env.stderr, "dxbench: %v\n", err)
			return exitHard
		}
		results = append(results, res)
		renderResult(env.stdout, env.stderr, res.Output, e.ID, env.format, env.logx, env.logy)
		if env.timing {
			prefix := ""
			if env.format == "csv" {
				prefix = "# "
			}
			fmt.Fprintf(env.stdout, "%s[%s in %v]\n", prefix, e.ID, res.Stats.Wall.Round(time.Millisecond))
		}
	}
	summary := runner.Event{Type: "run_done", Points: totalPoints(results), Failed: totalFailed(results)}
	cs := env.r.Cache.Stats()
	summary.CacheHits, summary.CacheMisses, summary.CacheBypassed = cs.Hits, cs.Misses, cs.Bypassed
	js := journal.Stats()
	summary.CheckpointEntries, summary.CheckpointSkipped = js.Loaded, js.Skipped
	summary.CheckpointRestored, summary.CheckpointAppended = js.Restored, js.Appended
	env.r.Events.Emit(summary)
	if env.timing {
		printSummary(env.stderr, env.r, results)
	}
	if failed := totalFailed(results); failed > 0 {
		fmt.Fprintf(env.stderr, "dxbench: completed degraded: %d point(s) failed (see footnotes)\n", failed)
		return exitDegraded
	}
	return exitOK
}
