package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// The tentpole contract at the CLI surface: everything -metrics prints is
// a pure function of the set of distinct simulations, so the whole stdout
// stream (tables + heatmap + series + summary footer) is byte-identical
// for any worker count, with and without the cache.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	base, _, code := runBench(t, "-quick", "-experiment", "T2", "-metrics", "-parallel", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, extra := range [][]string{
		{"-parallel", "4"},
		{"-parallel", "8"},
		{"-parallel", "4", "-nocache"},
	} {
		args := append([]string{"-quick", "-experiment", "T2", "-metrics"}, extra...)
		out, _, code := runBench(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit %d", extra, code)
		}
		if out != base {
			t.Errorf("%v: -metrics output differs from -parallel 1", extra)
		}
	}
}

// Transient chaos must be invisible in the metric export: faulted
// attempts never commit (no RunDone), retries re-execute idempotently,
// so a chaos run that completes cleanly exports the fault-free bytes.
func TestMetricsDeterministicUnderChaos(t *testing.T) {
	clean, _, code := runBench(t, "-quick", "-experiment", "T2", "-metrics", "-parallel", "2")
	if code != 0 {
		t.Fatalf("clean exit %d", code)
	}
	out, errOut, code := runBench(t, "-quick", "-experiment", "T2", "-metrics", "-parallel", "2",
		"-chaos", "error=0.1,seed=11", "-retries", "6")
	if code != 0 {
		t.Fatalf("chaos run exit %d\nstderr:\n%s", code, errOut)
	}
	if out != clean {
		t.Error("-metrics output differs under transient chaos")
	}
}

func TestMetricsReportContents(t *testing.T) {
	out, _, code := runBench(t, "-quick", "-experiment", "T2", "-metrics")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"== bank occupancy",
		"relative bank position",
		"dxbsp_sim_runs_total",
		"dxbsp_sim_cycles_bucket",
		"# EOF",
		"sim cycles/run: n=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics report missing %q:\n%s", want, out)
		}
	}
	// Wall-clock series are volatile and must stay out of the
	// deterministic report.
	for _, ban := range []string{"dxbsp_runner_", "dxbsp_cache_", "dxbsp_checkpoint_"} {
		if strings.Contains(out, ban) {
			t.Errorf("volatile series %s* leaked into the deterministic report", ban)
		}
	}
}

// -timing with -metrics adds the volatile point-latency summary to the
// stderr run summary; stdout stays the deterministic stream.
func TestMetricsTimingLatencySummary(t *testing.T) {
	_, errOut, code := runBench(t, "-quick", "-experiment", "T1", "-metrics", "-timing")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "point seconds: n=") {
		t.Errorf("-timing missing point latency summary:\n%s", errOut)
	}
}

// Golden files pin the two export formats byte-for-byte. Regenerate with
//
//	go test ./cmd/dxbench -run TestMetricsExportGolden -update
func TestMetricsExportGolden(t *testing.T) {
	for _, tc := range []struct{ name, golden string }{
		{"metrics.json", "metrics_T2.json"},
		{"metrics.om", "metrics_T2.om"},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), tc.name)
			_, errOut, code := runBench(t, "-quick", "-experiment", "T2", "-metrics-out", path)
			if code != 0 {
				t.Fatalf("exit %d\nstderr:\n%s", code, errOut)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := filepath.Join("testdata", tc.golden)
			if *updateGolden {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s export differs from golden %s (run with -update to regenerate)\n--- got ---\n%s",
					tc.name, goldenPath, got)
			}
		})
	}
}

// The extension picks the format: .json is a JSON document, anything else
// is OpenMetrics text ending in the mandatory terminator.
func TestMetricsOutFormats(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "m.json")
	omPath := filepath.Join(dir, "m.txt")
	if _, _, code := runBench(t, "-quick", "-experiment", "T1", "-metrics-out", jsonPath); code != 0 {
		t.Fatalf("json export exit %d", code)
	}
	if _, _, code := runBench(t, "-quick", "-experiment", "T1", "-metrics-out", omPath); code != 0 {
		t.Fatalf("om export exit %d", code)
	}
	j, _ := os.ReadFile(jsonPath)
	if !strings.HasPrefix(string(j), "{") || !strings.Contains(string(j), `"metrics"`) {
		t.Errorf("json export:\n%s", j)
	}
	om, _ := os.ReadFile(omPath)
	if !strings.HasPrefix(string(om), "# HELP") || !strings.HasSuffix(string(om), "# EOF\n") {
		t.Errorf("openmetrics export:\n%s", om)
	}
}

// The extension match is case-insensitive: m.JSON (a DOS-shouting user,
// or a file round-tripped through a case-normalizing filesystem) selects
// the JSON format, not the OpenMetrics fallback.
func TestMetricsOutExtensionCaseInsensitive(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"m.JSON", "m.Json"} {
		path := filepath.Join(dir, name)
		if _, _, code := runBench(t, "-quick", "-experiment", "T1", "-metrics-out", path); code != 0 {
			t.Fatalf("%s export exit %d", name, code)
		}
		j, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(j), "{") || !strings.Contains(string(j), `"metrics"`) {
			t.Errorf("%s fell through to OpenMetrics:\n%.200s", name, j)
		}
	}
}

func TestMetricsOutBadPath(t *testing.T) {
	_, errOut, code := runBench(t, "-quick", "-experiment", "T1",
		"-metrics-out", filepath.Join(t.TempDir(), "no", "such", "dir", "m.om"))
	if code != 1 {
		t.Errorf("unwritable -metrics-out: code=%d, want 1\nstderr:\n%s", code, errOut)
	}
}
