package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The profiling flags must produce non-empty files in the formats the Go
// toolchain consumes: pprof profiles are gzipped protobufs (magic
// 0x1f 0x8b), execution traces start with "go 1.".
func TestRunCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	_, errOut, code := runBench(t, "-quick", "-experiment", "T1", "-cpuprofile", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	assertGzipFile(t, path)
}

func TestRunMemProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	_, errOut, code := runBench(t, "-quick", "-experiment", "T1", "-memprofile", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	assertGzipFile(t, path)
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.out")
	_, errOut, code := runBench(t, "-quick", "-experiment", "T1", "-trace", path)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("go 1.")) {
		t.Errorf("trace file does not start with a Go trace header: %q", data[:min(16, len(data))])
	}
}

func TestRunProfileBadPath(t *testing.T) {
	dir := t.TempDir()
	for _, flag := range []string{"-cpuprofile", "-memprofile", "-trace"} {
		_, errOut, code := runBench(t, "-quick", "-experiment", "T1", flag, filepath.Join(dir, "missing", "x"))
		if code != 1 {
			t.Errorf("%s into missing dir: code=%d err=%q", flag, code, errOut)
		}
	}
}

func assertGzipFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		head := data
		if len(head) > 8 {
			head = head[:8]
		}
		t.Errorf("%s is not a gzipped pprof profile (starts %x)", filepath.Base(path), head)
	}
}

// Profiling composes with the rest of the flag surface (parallel run,
// events, timing) without perturbing the experiment output.
func TestRunCPUProfileOutputUnchanged(t *testing.T) {
	plain, _, code := runBench(t, "-quick", "-experiment", "F3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	profiled, _, code := runBench(t, "-quick", "-experiment", "F3",
		"-cpuprofile", filepath.Join(t.TempDir(), "cpu.pprof"), "-timing")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.HasPrefix(profiled, plain) {
		t.Error("-cpuprofile changed the experiment output")
	}
}
